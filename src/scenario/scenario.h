// Declarative experiment scenarios.
//
// A ScenarioSpec is everything needed to reproduce one experiment of the
// paper's kind — design source, variation model, clock-period policy,
// insertion configuration and evaluation budget — parsed from a small JSON
// document.  Running a scenario executes the full flow (design → sequential
// graph → period distribution → buffer insertion → out-of-sample analysis)
// and yields a machine-readable ScenarioResult.  The optional "kind" member
// selects the analysis: "yield" (default, the paper's workload),
// "criticality" or "binning" (src/analysis; see docs/scenarios.md).
//
// Example scenario document:
//
//   {
//     "name": "s9234_muT",
//     "design": {"paper_circuit": "s9234"},
//     "clock": {"sigma_offset": 0.0, "period_samples": 5000,
//               "period_seed": 20160314},
//     "insertion": {"num_samples": 10000, "steps": 20},
//     "evaluation": {"samples": 10000, "seed": 5150},
//     "yield_target": 0.95
//   }
//
// Design sources (exactly one member of "design"):
//   {"bench_file": "path.bench", "skew_sigma_factor": 0.05, "skew_seed": 3}
//   {"synthetic": { ... netlist::SyntheticSpec fields ... }}
//   {"paper_circuit": "s9234"}
//
// The clock policy is either an absolute {"period_ps": 812.0} or the
// paper's derived form {"sigma_offset": k} meaning T = muT + k * sigmaT of
// the sampled zero-tuning minimum-period distribution.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/binning.h"
#include "analysis/criticality.h"
#include "core/engine.h"
#include "core/insertion_config.h"
#include "feas/yield_eval.h"
#include "netlist/generator.h"
#include "netlist/netlist.h"
#include "util/json.h"

namespace clktune::scenario {

/// What a scenario computes after buffer insertion.  `yield` is the paper's
/// original workload (and the default — documents without a "kind" member
/// parse and serialise byte-identically to before kinds existed);
/// `criticality` and `binning` are the sibling-paper workloads served by
/// src/analysis.  The kind rides inside the scenario document, so every
/// exec/serve/fleet backend carries it without wire changes.
enum class ScenarioKind { yield, criticality, binning };

/// Stable wire name of a kind ("yield" / "criticality" / "binning").
const char* kind_name(ScenarioKind kind);
/// Inverse of kind_name; throws util::JsonError on an unknown name.
ScenarioKind kind_from_name(const std::string& name);

/// Where the design under test comes from.
enum class DesignSourceKind { bench_file, synthetic, paper_circuit };

struct DesignSource {
  DesignSourceKind kind = DesignSourceKind::synthetic;
  /// bench_file source: path plus the paper's "added clock skews"
  /// (sigma = skew_sigma_factor * nominal min period, seeded).
  std::string bench_path;
  double skew_sigma_factor = 0.05;
  std::uint64_t skew_seed = 1;
  /// synthetic source: full generator spec.
  netlist::SyntheticSpec synthetic;
  /// paper_circuit source: a name from netlist::paper_circuit_specs().
  std::string paper_circuit;

  /// Materialises the design (generation or file I/O + skew injection).
  netlist::Design build() const;
};

/// Optional overrides of the library's process-variation model; unset
/// members keep the library defaults.
struct VariationOverrides {
  std::optional<double> local_sigma;
  std::optional<double> regional_sigma;
  std::optional<double> global_sens_scale;  ///< scales all three sensitivities

  bool any() const {
    return local_sigma || regional_sigma || global_sens_scale;
  }
  void apply(netlist::Design& design) const;
};

/// How the target clock period is chosen.
struct ClockPolicy {
  /// Absolute period (ps); when unset, derived as mu + sigma_offset * sigma
  /// of the sampled minimum-period distribution.
  std::optional<double> period_ps;
  double sigma_offset = 0.0;
  std::uint64_t period_samples = 5000;
  std::uint64_t period_seed = 20160314;

  /// The paper's setting label ("muT", "muT+s", "muT+2s", or "fixed").
  std::string label() const;
};

struct EvaluationBudget {
  std::uint64_t samples = 10000;
  std::uint64_t seed = 5150;
};

/// The binning kind's clock-period ladder: either explicit periods or rungs
/// derived from the sampled minimum-period distribution as mu + k * sigma
/// (exactly one form; both strictly ascending).
struct BinLadder {
  std::vector<double> periods_ps;
  std::vector<double> sigma_offsets;

  bool any() const { return !periods_ps.empty() || !sigma_offsets.empty(); }
};

struct ScenarioSpec {
  std::string name = "scenario";
  ScenarioKind kind = ScenarioKind::yield;
  DesignSource design;
  VariationOverrides variation;
  ClockPolicy clock;
  core::InsertionConfig insertion;
  EvaluationBudget evaluation;
  /// criticality kind: report depth.
  analysis::CriticalityOptions criticality;
  /// binning kind: the period ladder.
  BinLadder bins;
  /// Optional acceptance bar on tuned yield (probability); scenarios whose
  /// tuned yield falls below are flagged in results and campaign summaries.
  /// Only meaningful for the yield kind.
  std::optional<double> yield_target;

  /// Parses and validates a scenario document; throws util::JsonError on
  /// malformed or out-of-range input (unknown keys are rejected so typos
  /// fail loudly instead of silently running defaults).
  static ScenarioSpec from_json(const util::Json& j);
  util::Json to_json() const;

  /// Throws util::JsonError when any field is out of range.
  void validate() const;
};

/// Everything a scenario run produces.  Exactly one kind payload is
/// populated: `yield` for ScenarioKind::yield (artifact unchanged from
/// before kinds existed), `criticality` / `binning` for the analysis kinds
/// (kind-tagged artifacts).
struct ScenarioResult {
  std::string name;
  ScenarioKind kind = ScenarioKind::yield;
  std::string setting;  ///< clock policy label
  double clock_period_ps = 0.0;
  double period_mu_ps = 0.0;     ///< sampled minimum-period mean
  double period_sigma_ps = 0.0;  ///< and standard deviation
  int num_flipflops = 0;
  int num_gates = 0;
  std::size_t num_arcs = 0;
  core::InsertionResult insertion;
  feas::YieldReport yield;                   ///< yield kind
  analysis::CriticalityReport criticality;   ///< criticality kind
  analysis::BinningReport binning;           ///< binning kind
  bool met_target = true;  ///< tuned yield >= yield_target (if set)
  double seconds = 0.0;    ///< wall-clock (excluded from deterministic JSON)

  /// Deterministic by default; timing fields only with `include_timing`.
  util::Json to_json(bool include_timing = false) const;

  /// Rebuilds a result from a serialised artifact.  Round-trip safe for
  /// deterministic artifacts: from_json(r.to_json()).to_json() reproduces
  /// the original bytes, which is what lets the result cache substitute a
  /// stored artifact for a recomputation.  Wall-clock fields come back 0
  /// unless present.  Throws util::JsonError on shape errors.
  static ScenarioResult from_json(const util::Json& j);
};

/// Executes one scenario start to finish.  `threads` caps worker threads
/// for the inner (per-scenario) parallel loops; 0 = hardware concurrency.
ScenarioResult run_scenario(const ScenarioSpec& spec, int threads = 0);

}  // namespace clktune::scenario
