#include "cache/maintenance.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "cache/result_cache.h"
#include "scenario/scenario.h"
#include "util/json.h"

namespace clktune::cache {

namespace fs = std::filesystem;
using util::Json;

namespace {

struct Entry {
  fs::path path;
  std::uint64_t bytes = 0;
  fs::file_time_type mtime;
};

bool is_temp_file(const fs::path& path) {
  return path.filename().string().find(".tmp.") != std::string::npos;
}

bool is_entry_file(const fs::path& path) {
  return path.extension() == ".json" && !is_temp_file(path);
}

/// Cache entries (and, separately, writer temp files) under `directory`.
std::vector<Entry> scan(const std::string& directory,
                        std::vector<fs::path>* temp_files = nullptr) {
  if (!fs::is_directory(directory))
    throw std::runtime_error("cache: no such cache directory: " + directory);
  std::vector<Entry> entries;
  for (const fs::directory_entry& item : fs::directory_iterator(directory)) {
    if (!item.is_regular_file()) continue;
    if (is_temp_file(item.path())) {
      if (temp_files != nullptr) temp_files->push_back(item.path());
      continue;
    }
    if (!is_entry_file(item.path())) continue;
    Entry entry;
    entry.path = item.path();
    std::error_code ec;
    entry.bytes = item.file_size(ec);
    entry.mtime = item.last_write_time(ec);
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace

DiskCacheStats disk_cache_stats(const std::string& directory) {
  DiskCacheStats stats;
  for (const Entry& entry : scan(directory)) {
    ++stats.entries;
    stats.bytes += entry.bytes;
  }
  return stats;
}

GcReport gc_cache_dir(const std::string& directory, std::uint64_t max_bytes) {
  std::vector<fs::path> temp_files;
  std::vector<Entry> entries = scan(directory, &temp_files);

  GcReport report;
  for (const fs::path& temp : temp_files) {
    std::error_code ec;
    if (fs::remove(temp, ec)) ++report.temp_files_removed;
  }

  report.scanned = entries.size();
  std::uint64_t total = 0;
  for (const Entry& entry : entries) total += entry.bytes;

  // Oldest-first by mtime — the disk layer's LRU order (ResultCache writes
  // an entry once and never touches it again, so mtime is last use by a
  // writer; readers are not tracked, which keeps eviction lock-free).
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });

  for (const Entry& entry : entries) {
    if (total <= max_bytes) {
      ++report.kept;
      report.kept_bytes += entry.bytes;
      continue;
    }
    std::error_code ec;
    if (fs::remove(entry.path, ec)) {
      ++report.removed;
      report.removed_bytes += entry.bytes;
      total -= entry.bytes;
    } else {
      ++report.kept;
      report.kept_bytes += entry.bytes;
    }
  }
  return report;
}

VerifyReport verify_cache_dir(const std::string& directory) {
  VerifyReport report;
  for (const Entry& entry : scan(directory)) {
    ++report.checked;
    const std::string file = entry.path.filename().string();
    try {
      // Same integrity contract the runtime applies on a disk hit: the
      // filename stem is the key the entry must unwrap under.
      const Json artifact = unwrap_disk_entry(
          entry.path.stem().string(),
          util::read_json_file(entry.path.string()));
      // The byte-exact round trip is what a cache hit substitutes for a
      // recomputation; an artifact that fails it must never be served.
      const scenario::ScenarioResult result =
          scenario::ScenarioResult::from_json(artifact);
      if (result.to_json().dump() != artifact.dump())
        throw std::runtime_error(
            "artifact does not round-trip through ScenarioResult");
    } catch (const std::exception& e) {
      report.issues.push_back({file, e.what()});
    }
  }
  return report;
}

}  // namespace clktune::cache
