// Minimal deterministic parallel-for.  Work is split into contiguous index
// ranges, one per worker; each worker writes only to its own accumulator, and
// results are merged in worker order so the outcome is independent of
// scheduling.  The paper notes the sampling flow "can be parallelized easily
// onto multiple CPU cores" — this is that knob.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace clktune::util {

/// Number of workers to use: explicit request, else hardware concurrency
/// (at least 1).
std::size_t resolve_thread_count(std::size_t requested);

/// Invoke fn(worker_index, begin, end) on `workers` threads over [0, n)
/// split into contiguous chunks.  Blocks until all complete.  fn must only
/// touch worker-private state (indexed by worker_index).
void parallel_chunks(
    std::size_t n, std::size_t workers,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// Invoke fn(worker_index, i) for every i in [0, n), with worker w taking
/// indices w, w + workers, w + 2*workers, ...  Interleaving spreads
/// expensive clustered items evenly (Monte-Carlo samples with violations
/// come in bursts).  Only safe when per-index work writes to index-keyed or
/// worker-keyed state whose final reduction is order-independent.
void parallel_strided(std::size_t n, std::size_t workers,
                      const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace clktune::util
