// Execution observers: streamed progress, per-cell completion and
// cooperative cancellation for every exec backend.
//
// An Observer is handed to Executor::execute and receives the same event
// sequence no matter which backend runs the request: one on_begin with the
// request's expansion size, one on_cell per finished cell (tagged with the
// cell's *global* expansion index, so sharded and remote execution report
// the same indices a plain local run would), and a cancelled() poll between
// cells.  Campaign cells finish on worker threads, so on_cell may be
// invoked concurrently — implementations that share state must lock.
//
// Cancellation is cooperative: when cancelled() returns true, the backend
// stops starting new cells, lets in-flight ones finish, and raises
// CancelledError instead of returning an Outcome.  Results already computed
// still land in the request's cache, so a cancelled campaign resumes warm.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "scenario/scenario.h"

namespace clktune::exec {

/// One finished cell of a request (a scenario is a single cell at index 0).
struct CellEvent {
  /// Global expansion index of the cell within its campaign.
  std::size_t index = 0;
  const scenario::ScenarioResult& result;
  bool cached = false;    ///< served from a result cache, not computed
  double seconds = 0.0;   ///< wall clock of this cell (0 when cached)
};

class Observer {
 public:
  virtual ~Observer() = default;

  /// Once per execution, before any cell runs: how many cells the request
  /// expands to in total and how many this execution will produce (they
  /// differ only for a shard slice).
  virtual void on_begin(std::size_t total_cells, std::size_t own_cells) {
    (void)total_cells;
    (void)own_cells;
  }

  /// Per finished cell, possibly from a worker thread.  Must not throw:
  /// an observer that wants to stop the run returns true from cancelled().
  virtual void on_cell(const CellEvent& event) { (void)event; }

  /// Polled between cells; return true to cancel the run cooperatively.
  virtual bool cancelled() { return false; }
};

/// Raised by Executor::execute when the observer cancelled the run.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace clktune::exec
