// Integer-keyed histogram used for buffer tuning-value distributions
// (Fig. 5 of the paper).  Keys are tuning values in discrete step units and
// may be negative.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace clktune::util {

class IntHistogram {
 public:
  void add(int key, std::uint64_t weight = 1) { counts_[key] += weight; }

  void merge(const IntHistogram& other) {
    for (const auto& [k, c] : other.counts_) counts_[k] += c;
  }

  std::uint64_t count(int key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& [k, c] : counts_) t += c;
    return t;
  }

  bool empty() const { return counts_.empty(); }
  int min_key() const { return counts_.empty() ? 0 : counts_.begin()->first; }
  int max_key() const { return counts_.empty() ? 0 : counts_.rbegin()->first; }

  /// Sum of counts whose key lies in [lo, hi] (inclusive).
  std::uint64_t count_in_window(int lo, int hi) const;

  /// Slide a window of `width` keys (covering width+1 grid points, i.e.
  /// [lo, lo+width]) across the support and return the lo that covers the
  /// most mass.  Ties prefer the window whose interval contains 0 and, among
  /// those, the smallest |lo|.  This is step III-A4 of the paper.
  int best_window_lower_bound(int width) const;

  /// Weighted mean of keys; 0 for an empty histogram.
  double mean() const;

  const std::map<int, std::uint64_t>& cells() const { return counts_; }

  /// ASCII rendering used by the Fig.-5 bench ("value: ### count").
  std::string to_ascii(int bar_width = 50) const;

 private:
  std::map<int, std::uint64_t> counts_;
};

}  // namespace clktune::util
