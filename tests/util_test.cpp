#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace clktune::util {
namespace {

TEST(SplitMix64Test, DeterministicForSameSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(SplitMix64Test, UniformDoublesInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SplitMix64Test, NormalMomentsAreStandard) {
  SplitMix64 rng(11);
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.next_normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(CounterRngTest, PureFunctionOfCounter) {
  CounterRng rng(99);
  EXPECT_EQ(rng.uniform(5, 7), rng.uniform(5, 7));
  EXPECT_NE(rng.uniform(5, 7), rng.uniform(5, 8));
  EXPECT_EQ(rng.normal(3, 4), rng.normal(3, 4));
}

TEST(CounterRngTest, NormalMomentsAreStandard) {
  CounterRng rng(123);
  OnlineStats stats;
  for (std::uint64_t i = 0; i < 200000; ++i) stats.add(rng.normal(i, 1));
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(CounterRngTest, DistinctStreamsAreUncorrelated) {
  CounterRng rng(5);
  OnlineCorrelation corr;
  for (std::uint64_t i = 0; i < 50000; ++i)
    corr.add(rng.normal(i, 0), rng.normal(i, 1));
  EXPECT_NEAR(corr.correlation(), 0.0, 0.03);
}

TEST(OnlineStatsTest, MatchesClosedForm) {
  OnlineStats s;
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_NEAR(s.variance(), 12.5, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(OnlineStatsTest, MergeEqualsSequential) {
  OnlineStats whole, part1, part2;
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_normal() * 3.0 + 1.0;
    whole.add(x);
    (i < 400 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-8);
}

TEST(OnlineStatsTest, MergeWithEmptySides) {
  OnlineStats empty, filled;
  filled.add(2.0);
  filled.add(4.0);
  OnlineStats a = filled;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats b = empty;
  b.merge(filled);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(OnlineCorrelationTest, PerfectPositiveAndNegative) {
  OnlineCorrelation pos, neg;
  for (int i = 0; i < 50; ++i) {
    pos.add(i, 2.0 * i + 1.0);
    neg.add(i, -0.5 * i + 3.0);
  }
  EXPECT_NEAR(pos.correlation(), 1.0, 1e-9);
  EXPECT_NEAR(neg.correlation(), -1.0, 1e-9);
}

TEST(OnlineCorrelationTest, ConstantSeriesYieldsZero) {
  OnlineCorrelation c;
  for (int i = 0; i < 10; ++i) c.add(5.0, i);
  EXPECT_EQ(c.correlation(), 0.0);
}

TEST(CorrelationMatrixTest, DiagonalIsOneOffDiagonalTracksData) {
  CorrelationMatrix m(3);
  SplitMix64 rng(17);
  for (int k = 0; k < 20000; ++k) {
    const double a = rng.next_normal();
    const double b = 0.9 * a + 0.1 * rng.next_normal();
    const double c = rng.next_normal();
    const double obs[3] = {a, b, c};
    m.add(obs);
  }
  EXPECT_NEAR(m.correlation(0, 0), 1.0, 1e-9);
  EXPECT_GT(m.correlation(0, 1), 0.98);
  EXPECT_NEAR(m.correlation(0, 2), 0.0, 0.05);
  EXPECT_EQ(m.correlation(1, 0), m.correlation(0, 1));
}

TEST(IntHistogramTest, WindowCounting) {
  IntHistogram h;
  h.add(-2, 3);
  h.add(0, 10);
  h.add(1, 5);
  h.add(7, 1);
  EXPECT_EQ(h.count_in_window(-2, 1), 18u);
  EXPECT_EQ(h.count_in_window(0, 0), 10u);
  EXPECT_EQ(h.count_in_window(2, 6), 0u);
  EXPECT_EQ(h.total(), 19u);
}

TEST(IntHistogramTest, BestWindowCoversDenseMass) {
  IntHistogram h;
  h.add(0, 100);
  h.add(1, 80);
  h.add(2, 60);
  h.add(10, 5);
  const int lo = h.best_window_lower_bound(2);
  EXPECT_EQ(lo, 0);  // [0, 2] captures 240 of 245
}

TEST(IntHistogramTest, BestWindowPrefersZeroCoverOnTies) {
  IntHistogram h;
  h.add(0, 5);
  h.add(5, 5);
  // Window width 0: both keys tie at 5; 0-covering window must win.
  EXPECT_EQ(h.best_window_lower_bound(0), 0);
}

TEST(IntHistogramTest, EmptyHistogramCentersOnZero) {
  IntHistogram h;
  EXPECT_EQ(h.best_window_lower_bound(10), -5);
}

TEST(IntHistogramTest, NegativeKeysAndMean) {
  IntHistogram h;
  h.add(-4, 1);
  h.add(4, 1);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min_key(), -4);
  EXPECT_EQ(h.max_key(), 4);
  h.add(4, 2);
  EXPECT_NEAR(h.mean(), 2.0, 1e-12);
}

TEST(IntHistogramTest, MergeAccumulates) {
  IntHistogram a, b;
  a.add(1, 2);
  b.add(1, 3);
  b.add(-1, 1);
  a.merge(b);
  EXPECT_EQ(a.count(1), 5u);
  EXPECT_EQ(a.count(-1), 1u);
}

TEST(ParallelChunksTest, CoversAllIndicesExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<int> hits(n, 0);
  parallel_chunks(n, 4, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelChunksTest, WorksWithMoreWorkersThanItems) {
  std::vector<int> hits(3, 0);
  parallel_chunks(3, 16, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(hits[0] + hits[1] + hits[2], 3);
}

TEST(ParallelChunksTest, ZeroItemsIsANoop) {
  parallel_chunks(0, 4, [&](std::size_t, std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, end);
  });
}

TEST(YieldCiTest, ShrinksWithSamples) {
  EXPECT_GT(yield_ci95(0.5, 100), yield_ci95(0.5, 10000));
  EXPECT_EQ(yield_ci95(0.5, 0), 1.0);
}

}  // namespace
}  // namespace clktune::util
