// Per-arc and per-register criticality of a post-silicon-tunable circuit.
//
// The criticality of a sequential arc is the probability — estimated over
// Monte-Carlo chips — that the arc is *binding*: that it attains the
// minimum setup/hold slack of the whole circuit, i.e. lies on a binding
// critical path.  Following "Statistical Timing Analysis and Criticality
// Computation for Circuits with Post-Silicon Clock Tuning Elements"
// (PAPERS.md), criticality is computed twice per chip:
//
//   * before tuning — raw slacks at x = 0;
//   * after tuning — slacks under the chip's best feasible buffer
//     configuration (found with the same SPFA solver the yield evaluator
//     uses); chips with no feasible configuration keep their untuned
//     binding arc and are counted in `untunable`.
//
// All statistics are integer sample counts summed across worker partials,
// so reports are bit-identical regardless of thread count — the same
// determinism contract as the yield path.  Register criticality is the
// probability that a flip-flop is an endpoint of a binding arc; each ranked
// register also carries the failing-arc incidence statistic shared with
// core::top_k_criticality_plan (one computation, asserted equal in tests).
#pragma once

#include <cstdint>
#include <vector>

#include "feas/tuning_plan.h"
#include "ssta/seq_graph.h"
#include "util/json.h"

namespace clktune::analysis {

struct CriticalityOptions {
  /// Number of ranked arcs / registers emitted in the report.
  int top_k = 20;
};

/// One ranked sequential arc.
struct ArcCriticality {
  std::size_t arc = 0;  ///< index into graph.arcs
  int src_ff = 0;
  int dst_ff = 0;
  std::uint64_t binding_before = 0;  ///< samples binding at x = 0
  std::uint64_t binding_after = 0;   ///< samples binding under tuning
  double before = 0.0;  ///< binding_before / samples
  double after = 0.0;   ///< binding_after / samples
};

/// One ranked register (flip-flop).
struct RegisterCriticality {
  int ff = 0;
  std::uint64_t binding_before = 0;  ///< samples with a binding arc endpoint
  std::uint64_t binding_after = 0;
  /// Failing-arc incidence at x = 0 — the core::criticality_incidence
  /// statistic the top-k baseline ranks by, reported for cross-reference.
  std::uint64_t failing_incidence = 0;
  double before = 0.0;
  double after = 0.0;
};

struct CriticalityReport {
  std::uint64_t samples = 0;
  std::uint64_t eval_seed = 0;
  double clock_period_ps = 0.0;
  int top_k = 0;
  /// Chips with no feasible buffer configuration (after-tuning criticality
  /// falls back to the untuned binding arc for these).
  std::uint64_t untunable = 0;
  std::vector<ArcCriticality> arcs;            ///< rank order
  std::vector<RegisterCriticality> registers;  ///< rank order

  /// Deterministic artifact; round-trip safe:
  /// from_json(r.to_json()).to_json() reproduces the bytes.
  util::Json to_json() const;
  static CriticalityReport from_json(const util::Json& j);
};

/// Computes the report over `samples` fresh Monte-Carlo chips drawn with
/// `eval_seed`.  Rank order is (binding_before desc, binding_after desc,
/// index asc); arcs/registers that never bind are not reported.
CriticalityReport compute_criticality(const ssta::SeqGraph& graph,
                                      const feas::TuningPlan& plan,
                                      double clock_period_ps,
                                      std::uint64_t eval_seed,
                                      std::uint64_t samples,
                                      const CriticalityOptions& options,
                                      int threads = 0);

}  // namespace clktune::analysis
