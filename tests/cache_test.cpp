// Result-cache subsystem tests: SHA-256 known answers, canonical JSON,
// content-key stability across member-order permutations, LRU hit / miss /
// eviction behaviour, disk persistence across cache instances, the
// byte-exact ScenarioResult JSON round trip the cache depends on, and a
// warm exec::LocalExecutor rerun that computes nothing yet reproduces the
// cold summary bit for bit.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "cache/maintenance.h"
#include "cache/result_cache.h"
#include "exec/local_executor.h"
#include "exec/request.h"
#include "scenario/campaign.h"
#include "scenario/scenario.h"
#include "scenario/summary_diff.h"
#include "util/json.h"
#include "util/sha256.h"

namespace clktune {
namespace {

using util::Json;

// ------------------------------------------------------------------ sha256

TEST(Sha256Test, MatchesKnownVectors) {
  EXPECT_EQ(
      util::sha256_hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      util::sha256_hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      util::sha256_hex(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalUpdatesMatchOneShot) {
  // A message spanning multiple 64-byte blocks, fed in awkward pieces.
  const std::string message(150, 'x');
  util::Sha256 hasher;
  hasher.update(message.substr(0, 1));
  hasher.update(message.substr(1, 63));
  hasher.update(message.substr(64, 64));
  hasher.update(message.substr(128));
  EXPECT_EQ(hasher.hex_digest(), util::sha256_hex(message));
}

// -------------------------------------------------------- canonical JSON

TEST(CanonicalJsonTest, SortsMembersRecursivelyAndCompactly) {
  const Json j = Json::parse(R"({"b": {"y": 1, "x": [2, {"q": 3, "p": 4}]},
                                 "a": true})");
  EXPECT_EQ(util::canonical_dump(j),
            R"({"a":true,"b":{"x":[2,{"p":4,"q":3}],"y":1}})");
  // Arrays keep their order; only object members sort.
  EXPECT_EQ(util::canonical_dump(Json::parse("[3,1,2]")), "[3,1,2]");
}

// ------------------------------------------------------------- cache keys

Json tiny_scenario_doc() {
  return Json::parse(R"({
    "name": "tiny",
    "design": {"synthetic": {"name": "tiny", "num_flipflops": 30,
                             "num_gates": 220, "seed": 5}},
    "clock": {"sigma_offset": 0.0, "period_samples": 400},
    "insertion": {"num_samples": 200, "steps": 8},
    "evaluation": {"samples": 400, "seed": 99}
  })");
}

TEST(CacheKeyTest, StableAcrossMemberOrderPermutations) {
  // The same document with every object's members permuted.
  const Json permuted = Json::parse(R"({
    "evaluation": {"seed": 99, "samples": 400},
    "insertion": {"steps": 8, "num_samples": 200},
    "clock": {"period_samples": 400, "sigma_offset": 0.0},
    "design": {"synthetic": {"seed": 5, "num_gates": 220,
                             "num_flipflops": 30, "name": "tiny"}},
    "name": "tiny"
  })");
  const auto spec_a = scenario::ScenarioSpec::from_json(tiny_scenario_doc());
  const auto spec_b = scenario::ScenarioSpec::from_json(permuted);
  EXPECT_EQ(cache::scenario_cache_key(spec_a),
            cache::scenario_cache_key(spec_b));
  EXPECT_EQ(cache::scenario_cache_key(spec_a).size(), 64u);
}

TEST(CacheKeyTest, ChangesWithAnyResultAffectingField) {
  const auto base = scenario::ScenarioSpec::from_json(tiny_scenario_doc());

  Json changed_seed = tiny_scenario_doc();
  changed_seed.find("design")->find("synthetic")->set("seed", 6);
  Json changed_eval = tiny_scenario_doc();
  changed_eval.find("evaluation")->set("samples", 500);

  EXPECT_NE(cache::scenario_cache_key(base),
            cache::scenario_cache_key(
                scenario::ScenarioSpec::from_json(changed_seed)));
  EXPECT_NE(cache::scenario_cache_key(base),
            cache::scenario_cache_key(
                scenario::ScenarioSpec::from_json(changed_eval)));
}

TEST(CacheKeyTest, BenchFileKeyTracksFileContents) {
  // The document only names the file; the key must change when its bytes
  // do, or an edited netlist would be served stale results.
  const std::string path = testing::TempDir() + "clktune_key_test.bench";
  const auto write_file = [&](const char* text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(text, f);
    std::fclose(f);
  };
  Json doc = Json::object();
  doc.set("name", "bench");
  Json design = Json::object();
  design.set("bench_file", path);
  doc.set("design", std::move(design));
  const auto spec = scenario::ScenarioSpec::from_json(doc);

  write_file("INPUT(a)\n");
  const std::string key_a = cache::scenario_cache_key(spec);
  EXPECT_EQ(key_a, cache::scenario_cache_key(spec));  // content-stable
  write_file("INPUT(b)\n");
  EXPECT_NE(cache::scenario_cache_key(spec), key_a);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------ cache store

Json fake_artifact(int value) {
  Json j = Json::object();
  j.set("value", value);
  return j;
}

TEST(CacheKeyTest, V2SchemaEntriesAreCleanMisses) {
  // Salt bump v2 -> v3 (scenario kinds changed the result artifact space):
  // a perfectly well-formed entry stored under the v2 key of the same
  // document must read as a miss, never deserialize into a v3 run.
  const auto spec = scenario::ScenarioSpec::from_json(tiny_scenario_doc());
  util::Sha256 v2;
  v2.update("clktune-scenario-result-v2\n");
  v2.update(util::canonical_dump(spec.to_json()));
  const std::string v2_key = v2.hex_digest();
  const std::string v3_key = cache::scenario_cache_key(spec);
  ASSERT_NE(v2_key, v3_key);

  const std::string dir = testing::TempDir() + "clktune_cache_v2";
  std::filesystem::remove_all(dir);
  cache::ResultCache cache_store(dir);
  // The v2 entry is intact (valid envelope, matching digest) — the miss
  // below is purely the salt bump, not corruption self-healing.
  cache_store.put(v2_key, fake_artifact(2));
  ASSERT_TRUE(cache::ResultCache(dir).get(v2_key).has_value());

  cache::ResultCache fresh(dir);
  EXPECT_FALSE(fresh.get(v3_key).has_value());
  EXPECT_EQ(fresh.stats().misses, 1u);
  EXPECT_EQ(fresh.stats().self_heals, 0u);

  fresh.put(v3_key, fake_artifact(3));
  const auto hit = cache::ResultCache(dir).get(v3_key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->at("value").as_int(), 3);
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, MemoryHitMissAndStats) {
  cache::ResultCache cache_store;  // memory-only
  EXPECT_FALSE(cache_store.get("k1").has_value());
  cache_store.put("k1", fake_artifact(1));
  const auto hit = cache_store.get("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->at("value").as_int(), 1);

  const cache::CacheStats stats = cache_store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.memory_hits, 1u);
  EXPECT_EQ(stats.disk_hits, 0u);
  EXPECT_EQ(stats.puts, 1u);
}

TEST(ResultCacheTest, LruEvictsLeastRecentlyUsed) {
  cache::ResultCache cache_store(/*directory=*/"", /*memory_capacity=*/2);
  cache_store.put("k1", fake_artifact(1));
  cache_store.put("k2", fake_artifact(2));
  ASSERT_TRUE(cache_store.get("k1").has_value());  // k2 is now the LRU
  cache_store.put("k3", fake_artifact(3));         // evicts k2
  EXPECT_EQ(cache_store.memory_size(), 2u);
  EXPECT_EQ(cache_store.stats().evictions, 1u);
  EXPECT_FALSE(cache_store.get("k2").has_value());
  EXPECT_TRUE(cache_store.get("k1").has_value());
  EXPECT_TRUE(cache_store.get("k3").has_value());
}

TEST(ResultCacheTest, DiskLayerPersistsAcrossInstancesAndEvictions) {
  const std::string dir = testing::TempDir() + "clktune_cache_test";
  std::filesystem::remove_all(dir);
  {
    cache::ResultCache writer(dir, /*memory_capacity=*/1);
    writer.put("k1", fake_artifact(1));
    writer.put("k2", fake_artifact(2));  // k1 evicted from memory, on disk
    const auto hit = writer.get("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->at("value").as_int(), 1);
    EXPECT_EQ(writer.stats().disk_hits, 1u);
  }
  cache::ResultCache reader(dir);
  const auto hit = reader.get("k2");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->at("value").as_int(), 2);
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  EXPECT_FALSE(reader.get("missing").has_value());
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, CorruptDiskEntryReadsAsMiss) {
  const std::string dir = testing::TempDir() + "clktune_cache_corrupt";
  std::filesystem::remove_all(dir);
  cache::ResultCache cache_store(dir);
  {
    std::FILE* f = std::fopen((dir + "/deadbeef.json").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{not json", f);
    std::fclose(f);
  }
  EXPECT_FALSE(cache_store.get("deadbeef").has_value());
  std::filesystem::remove_all(dir);
}

Json tiny_campaign_doc() {
  Json doc = Json::object();
  doc.set("name", "tiny_campaign");
  doc.set("base", tiny_scenario_doc());
  Json sweep = Json::object();
  sweep.set("clock.sigma_offset",
            Json(util::JsonArray{Json(0.0), Json(1.0)}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

// ------------------------------------------------------ disk maintenance

TEST(CacheMaintenanceTest, GcEvictsOldestEntriesAndWriterTempFiles) {
  const std::string dir = testing::TempDir() + "clktune_cache_gc";
  std::filesystem::remove_all(dir);
  cache::ResultCache cache_store(dir);
  cache_store.put("k1", fake_artifact(1));
  cache_store.put("k2", fake_artifact(2));
  cache_store.put("k3", fake_artifact(3));
  // Deterministic LRU order regardless of write timing granularity.
  const auto now = std::filesystem::file_time_type::clock::now();
  std::filesystem::last_write_time(dir + "/k1.json",
                                   now - std::chrono::hours(3));
  std::filesystem::last_write_time(dir + "/k2.json",
                                   now - std::chrono::hours(2));
  std::filesystem::last_write_time(dir + "/k3.json",
                                   now - std::chrono::hours(1));
  {
    std::FILE* f = std::fopen((dir + "/k9.json.tmp.123.0").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("torn", f);
    std::fclose(f);
  }

  const cache::DiskCacheStats before = cache::disk_cache_stats(dir);
  EXPECT_EQ(before.entries, 3u);  // the temp file is not an entry
  ASSERT_GT(before.bytes, 0u);

  // A budget that fits two entries evicts exactly the oldest one.
  const std::uint64_t entry_bytes =
      std::filesystem::file_size(dir + "/k1.json");
  const cache::GcReport report =
      cache::gc_cache_dir(dir, 2 * entry_bytes + entry_bytes / 2);
  EXPECT_EQ(report.scanned, 3u);
  EXPECT_EQ(report.removed, 1u);
  EXPECT_EQ(report.kept, 2u);
  EXPECT_EQ(report.temp_files_removed, 1u);
  EXPECT_FALSE(std::filesystem::exists(dir + "/k1.json"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/k2.json"));

  // Budget 0 clears the layer entirely.
  const cache::GcReport wipe = cache::gc_cache_dir(dir, 0);
  EXPECT_EQ(wipe.removed, 2u);
  EXPECT_EQ(cache::disk_cache_stats(dir).entries, 0u);

  EXPECT_THROW(cache::disk_cache_stats(dir + "/nope"), std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(CacheMaintenanceTest, VerifyReHashesArtifactsAgainstKeys) {
  const std::string dir = testing::TempDir() + "clktune_cache_verify";
  std::filesystem::remove_all(dir);

  // Real entries, written by a cached campaign run.
  const auto spec = scenario::CampaignSpec::from_json(tiny_campaign_doc());
  cache::ResultCache cache_store(dir);
  exec::Request request = exec::Request::for_campaign(spec);
  request.cache = &cache_store;
  exec::LocalExecutor executor;
  const scenario::CampaignSummary cold = executor.execute(request).summary;

  // Every entry is a self-describing envelope keyed by its filename.
  std::vector<std::string> files;
  for (const auto& item : std::filesystem::directory_iterator(dir))
    files.push_back(item.path().string());
  ASSERT_EQ(files.size(), 2u);
  for (const std::string& file : files) {
    const Json envelope = util::read_json_file(file);
    EXPECT_EQ(envelope.at("key").as_string() + ".json",
              std::filesystem::path(file).filename().string());
    EXPECT_EQ(envelope.at("sha256").as_string(),
              util::sha256_hex(util::canonical_dump(envelope.at("result"))));
  }
  EXPECT_TRUE(cache::verify_cache_dir(dir).ok());

  // Tamper with one artifact's bytes (still valid JSON): verify flags the
  // digest mismatch, and a warm run treats the entry as a miss — so
  // corruption self-heals instead of poisoning the summary.
  {
    Json envelope = util::read_json_file(files[0]);
    envelope.find("result")->set("setting", "tampered");
    util::write_json_file(files[0], envelope, -1);
  }
  {
    std::FILE* f = std::fopen((dir + "/not-a-key.json").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"key\":\"other\",\"sha256\":\"x\",\"result\":{}}", f);
    std::fclose(f);
  }
  const cache::VerifyReport report = cache::verify_cache_dir(dir);
  EXPECT_EQ(report.checked, 3u);
  ASSERT_EQ(report.issues.size(), 2u);

  cache::ResultCache reread(dir);
  exec::Request warm_request = exec::Request::for_campaign(spec);
  warm_request.cache = &reread;
  const scenario::CampaignSummary warm =
      executor.execute(warm_request).summary;
  EXPECT_EQ(warm.to_json().dump(), cold.to_json().dump());
  EXPECT_EQ(warm.scenarios_cached, 1u);  // the intact entry still serves
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------- result round trip

TEST(ResultRoundTripTest, ScenarioResultJsonIsByteExact) {
  const auto spec = scenario::ScenarioSpec::from_json(tiny_scenario_doc());
  const scenario::ScenarioResult result = scenario::run_scenario(spec, 1);
  const std::string original = result.to_json().dump();
  const scenario::ScenarioResult rebuilt =
      scenario::ScenarioResult::from_json(Json::parse(original));
  EXPECT_EQ(rebuilt.to_json().dump(), original);
  EXPECT_EQ(rebuilt.seconds, 0.0);  // timing is not part of the artifact
}

// ------------------------------------------------- campaign cache + shard

TEST(CampaignCacheTest, WarmRerunComputesNothingAndMatchesColdBytes) {
  const auto spec = scenario::CampaignSpec::from_json(tiny_campaign_doc());
  cache::ResultCache cache_store;

  exec::Request request = exec::Request::for_campaign(spec);
  request.cache = &cache_store;
  exec::LocalExecutor executor;
  const scenario::CampaignSummary cold = executor.execute(request).summary;
  EXPECT_EQ(cold.scenarios_cached, 0u);
  EXPECT_EQ(cache_store.stats().misses, 2u);

  const scenario::CampaignSummary warm = executor.execute(request).summary;
  EXPECT_EQ(warm.scenarios_cached, warm.scenarios_run);
  EXPECT_EQ(cache_store.stats().hits, 2u);
  EXPECT_EQ(warm.to_json().dump(), cold.to_json().dump());
}

TEST(CampaignShardTest, ShardsPartitionTheExpansion) {
  const auto spec = scenario::CampaignSpec::from_json(tiny_campaign_doc());
  exec::LocalExecutor executor;
  const exec::Request request = exec::Request::for_campaign(spec);
  const scenario::CampaignSummary full = executor.execute(request).summary;

  exec::Request shard0 = request, shard1 = request;
  shard0.shard_index = 0;
  shard0.shard_count = 2;
  shard1.shard_index = 1;
  shard1.shard_count = 2;
  const scenario::CampaignSummary a = executor.execute(shard0).summary;
  const scenario::CampaignSummary b = executor.execute(shard1).summary;

  ASSERT_EQ(full.results.size(), 2u);
  ASSERT_EQ(a.results.size(), 1u);
  ASSERT_EQ(b.results.size(), 1u);
  EXPECT_EQ(a.results[0].to_json().dump(), full.results[0].to_json().dump());
  EXPECT_EQ(b.results[0].to_json().dump(), full.results[1].to_json().dump());

  // Sharded summaries are self-describing; the full one stays unchanged.
  EXPECT_NE(a.to_json().dump().find("\"shard\""), std::string::npos);
  EXPECT_EQ(full.to_json().dump().find("\"shard\""), std::string::npos);

  exec::Request bad = request;
  bad.shard_index = 2;
  bad.shard_count = 2;
  EXPECT_THROW(executor.execute(bad), exec::ExecError);
}

// ---------------------------------------------------------- summary diff

Json fake_summary(const char* name, double yield_a, double yield_b) {
  Json make = Json::parse(R"({"name": "s", "results": []})");
  make.set("name", name);
  const auto cell = [](const char* cell_name, double tuned) {
    Json yield = Json::parse(R"({"tuned": {"yield": 0}})");
    yield.find("tuned")->set("yield", tuned);
    Json r = Json::object();
    r.set("name", cell_name);
    r.set("yield", std::move(yield));
    return r;
  };
  make.find("results")->push_back(cell("c0", yield_a));
  make.find("results")->push_back(cell("c1", yield_b));
  return make;
}

TEST(SummaryDiffTest, FlagsRegressionsBeyondTolerance) {
  const Json a = fake_summary("base", 0.90, 0.80);
  const Json b = fake_summary("cand", 0.896, 0.70);
  const scenario::SummaryDiff diff = scenario::diff_summaries(a, b, 0.005);
  ASSERT_EQ(diff.cells.size(), 2u);
  EXPECT_FALSE(diff.cells[0].regression);  // -0.004 within tolerance
  EXPECT_TRUE(diff.cells[1].regression);   // -0.10 beyond it
  EXPECT_EQ(diff.regressions, 1u);
  EXPECT_FALSE(diff.structural_mismatch());

  // Improvements never flag.
  const scenario::SummaryDiff improved =
      scenario::diff_summaries(b, a, 0.005);
  EXPECT_EQ(improved.regressions, 0u);
}

TEST(SummaryDiffTest, DetectsStructuralMismatch) {
  Json a = fake_summary("base", 0.9, 0.8);
  Json b = fake_summary("cand", 0.9, 0.8);
  b.find("results")->as_array().pop_back();
  const scenario::SummaryDiff diff = scenario::diff_summaries(a, b, 0.0);
  EXPECT_TRUE(diff.structural_mismatch());
  ASSERT_EQ(diff.only_in_a.size(), 1u);
  EXPECT_EQ(diff.only_in_a[0], "c1");
}

Json fake_criticality_cell(const char* name,
                           std::vector<std::pair<int, double>> arcs) {
  Json list = Json::array();
  for (const auto& [index, after] : arcs) {
    Json arc = Json::object();
    arc.set("arc", index);
    arc.set("after", after);
    list.push_back(std::move(arc));
  }
  Json crit = Json::object();
  crit.set("arcs", std::move(list));
  Json r = Json::object();
  r.set("name", name);
  r.set("kind", "criticality");
  r.set("criticality", std::move(crit));
  return r;
}

Json fake_binning_cell(const char* name,
                       std::vector<std::pair<double, double>> bins) {
  Json list = Json::array();
  for (const auto& [period, tuned_yield] : bins) {
    Json tuned = Json::object();
    tuned.set("yield", tuned_yield);
    Json bin = Json::object();
    bin.set("period_ps", period);
    bin.set("tuned", std::move(tuned));
    list.push_back(std::move(bin));
  }
  Json binning = Json::object();
  binning.set("bins", std::move(list));
  Json r = Json::object();
  r.set("name", name);
  r.set("kind", "binning");
  r.set("binning", std::move(binning));
  return r;
}

TEST(SummaryDiffTest, CriticalityComparesTopKRankSetsUnderTolerance) {
  // Same arc set, probabilities within tolerance: clean.
  const Json a = fake_criticality_cell("c", {{3, 0.40}, {7, 0.10}});
  const Json close_b = fake_criticality_cell("c", {{3, 0.41}, {7, 0.10}});
  EXPECT_EQ(scenario::diff_summaries(a, close_b, 0.02).regressions, 0u);

  // An arc that left the ranking counts as probability 0 on that side.
  const Json dropped = fake_criticality_cell("c", {{3, 0.40}});
  const scenario::SummaryDiff d = scenario::diff_summaries(a, dropped, 0.02);
  ASSERT_EQ(d.cells.size(), 1u);
  EXPECT_EQ(d.cells[0].kind, "criticality");
  EXPECT_TRUE(d.cells[0].regression);
  EXPECT_FALSE(d.structural_mismatch());

  // The comparison scalar is the highest after-tuning criticality.
  EXPECT_DOUBLE_EQ(d.cells[0].yield_a, 0.40);
}

TEST(SummaryDiffTest, BinningComparesPerRungAndRejectsLadderChanges) {
  const Json a = fake_binning_cell("c", {{500.0, 0.6}, {550.0, 0.9}});
  const Json better = fake_binning_cell("c", {{500.0, 0.7}, {550.0, 0.9}});
  EXPECT_EQ(scenario::diff_summaries(a, better, 0.01).regressions, 0u);

  const Json worse = fake_binning_cell("c", {{500.0, 0.4}, {550.0, 0.9}});
  const scenario::SummaryDiff d = scenario::diff_summaries(a, worse, 0.01);
  EXPECT_EQ(d.regressions, 1u);
  EXPECT_DOUBLE_EQ(d.cells[0].yield_a, 0.6);  // lowest per-bin tuned yield

  // A different ladder is a structural mismatch, not a regression.
  const Json moved = fake_binning_cell("c", {{500.0, 0.6}, {560.0, 0.9}});
  const scenario::SummaryDiff m = scenario::diff_summaries(a, moved, 0.01);
  EXPECT_TRUE(m.structural_mismatch());
  ASSERT_EQ(m.incomparable.size(), 1u);
  EXPECT_EQ(m.incomparable[0], "c");
}

TEST(SummaryDiffTest, MismatchedKindsAreIncomparable) {
  const Json a = fake_summary("base", 0.9, 0.8).at("results").as_array()[0];
  const Json b = fake_criticality_cell("c0", {{3, 0.4}});
  const scenario::SummaryDiff diff = scenario::diff_summaries(a, b, 0.0);
  EXPECT_TRUE(diff.structural_mismatch());
  ASSERT_EQ(diff.incomparable.size(), 1u);
  EXPECT_EQ(diff.incomparable[0], "c0");
  EXPECT_EQ(diff.regressions, 0u);
}

}  // namespace
}  // namespace clktune
