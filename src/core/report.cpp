#include "core/report.h"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace clktune::core {

std::string format_row(const TableRow& row) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << row.circuit << " [" << row.setting << ", T=" << row.clock_ps
     << " ps]: Nb=" << row.nb << " Ab=" << row.ab << " Y=" << row.yield
     << "% Yi=" << row.improvement() << "% T=" << row.runtime_s << "s";
  return os.str();
}

void print_table(std::ostream& os, const std::vector<TableRow>& rows) {
  os << std::left << std::setw(14) << "Circuit" << std::right << std::setw(6)
     << "ns" << std::setw(7) << "ng" << std::setw(8) << "setting"
     << std::setw(10) << "T(ps)" << std::setw(5) << "Nb" << std::setw(8)
     << "Ab" << std::setw(9) << "Y(%)" << std::setw(9) << "Yi(%)"
     << std::setw(10) << "T(s)" << "\n";
  os << std::string(86, '-') << "\n";
  os << std::fixed;
  for (const TableRow& r : rows) {
    os << std::left << std::setw(14) << r.circuit << std::right
       << std::setw(6) << r.ns << std::setw(7) << r.ng << std::setw(8)
       << r.setting << std::setw(10) << std::setprecision(1) << r.clock_ps
       << std::setw(5) << r.nb << std::setw(8) << std::setprecision(2) << r.ab
       << std::setw(9) << std::setprecision(2) << r.yield << std::setw(9)
       << std::setprecision(2) << r.improvement() << std::setw(10)
       << std::setprecision(2) << r.runtime_s << "\n";
  }
}

}  // namespace clktune::core
