#include "netlist/cell_library.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace clktune::netlist {

double VariationModel::total_sigma() const {
  double v = local_sigma * local_sigma;
  for (double s : global_sens) v += s * s;
  return std::sqrt(v);
}

int CellLibrary::add_cell(CellType cell) {
  cells_.push_back(std::move(cell));
  const int id = static_cast<int>(cells_.size()) - 1;
  if (cells_.back().name == "DFF") dff_cell_ = id;
  return id;
}

namespace {
bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}
}  // namespace

int CellLibrary::find(std::string_view name) const {
  for (int i = 0; i < num_cells(); ++i)
    if (iequals(cells_[static_cast<std::size_t>(i)].name, name)) return i;
  return -1;
}

CellLibrary CellLibrary::standard() {
  CellLibrary lib;
  // Delays loosely follow a 45 nm-class educational library; min delays are
  // the fast-corner early arcs used for hold analysis (~0.7x the late arc,
  // matching hold-padded design practice).
  lib.add_cell({"INV", 1, 8.0, 5.6, 1.2});
  lib.add_cell({"BUF", 1, 10.0, 7.0, 1.0});
  lib.add_cell({"NAND", 2, 12.0, 8.4, 1.4});
  lib.add_cell({"NOR", 2, 14.0, 9.8, 1.6});
  lib.add_cell({"AND", 2, 15.0, 10.5, 1.4});
  lib.add_cell({"OR", 2, 16.0, 11.2, 1.5});
  lib.add_cell({"XOR", 2, 20.0, 14.0, 1.8});
  lib.add_cell({"XNOR", 2, 21.0, 14.7, 1.8});
  lib.add_cell({"NAND3", 3, 16.0, 11.2, 1.6});
  lib.add_cell({"NOR3", 3, 18.0, 12.6, 1.8});
  lib.add_cell({"DFF", 1, 22.0, 15.4, 0.0});  // clk->Q delay
  return lib;
}

}  // namespace clktune::netlist
