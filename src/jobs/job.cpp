#include "jobs/job.h"

namespace clktune::jobs {

using util::Json;

namespace {

/// Envelope schema tag: bumping it orphans old envelopes (load skips
/// them) instead of misreading them.
constexpr const char* kJobSchema = "clktune-job-v1";

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::queued: return "queued";
    case JobState::preparing: return "preparing";
    case JobState::running: return "running";
    case JobState::done: return "done";
    case JobState::error: return "error";
    case JobState::cancelled: return "cancelled";
  }
  return "unknown";
}

JobState job_state_from_string(const std::string& name) {
  if (name == "queued") return JobState::queued;
  if (name == "preparing") return JobState::preparing;
  if (name == "running") return JobState::running;
  if (name == "done") return JobState::done;
  if (name == "error") return JobState::error;
  if (name == "cancelled") return JobState::cancelled;
  throw util::JsonError("unknown job state \"" + name + "\"");
}

bool is_terminal(JobState state) {
  return state == JobState::done || state == JobState::error ||
         state == JobState::cancelled;
}

std::vector<std::size_t> JobRecord::selection() const {
  if (!indices.empty()) return indices;
  std::vector<std::size_t> all;
  all.reserve(cells_total);
  for (std::size_t i = 0; i < cells_total; ++i) all.push_back(i);
  return all;
}

util::Json JobRecord::to_json() const {
  Json j = Json::object();
  j.set("schema", kJobSchema);
  j.set("id", id);
  j.set("seq", seq);
  j.set("state", to_string(state));
  j.set("kind", kind);
  j.set("name", name);
  j.set("doc", doc);
  if (!indices.empty()) {
    Json list = Json::array();
    for (const std::size_t index : indices)
      list.push_back(static_cast<std::uint64_t>(index));
    j.set("indices", std::move(list));
  }
  j.set("cells_total", static_cast<std::uint64_t>(cells_total));
  Json done = Json::array();
  for (const std::size_t index : done_indices)
    done.push_back(static_cast<std::uint64_t>(index));
  j.set("done", std::move(done));
  j.set("cached", cached);
  j.set("targets_missed", targets_missed);
  if (!error.empty()) j.set("error", error);
  j.set("created_ms", created_ms);
  j.set("updated_ms", updated_ms);
  return j;
}

JobRecord JobRecord::from_json(const util::Json& j) {
  const Json* schema = j.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kJobSchema)
    throw util::JsonError("not a clktune job envelope");
  JobRecord rec;
  rec.id = j.at("id").as_string();
  rec.seq = j.at("seq").as_uint();
  rec.state = job_state_from_string(j.at("state").as_string());
  rec.kind = j.at("kind").as_string();
  rec.name = j.at("name").as_string();
  rec.doc = j.at("doc");
  if (const Json* list = j.find("indices"))
    for (const Json& index : list->as_array())
      rec.indices.push_back(static_cast<std::size_t>(index.as_uint()));
  rec.cells_total = static_cast<std::size_t>(j.at("cells_total").as_uint());
  for (const Json& index : j.at("done").as_array())
    rec.done_indices.push_back(static_cast<std::size_t>(index.as_uint()));
  rec.cached = j.at("cached").as_uint();
  rec.targets_missed = j.at("targets_missed").as_uint();
  if (const Json* what = j.find("error")) rec.error = what->as_string();
  rec.created_ms = j.at("created_ms").as_uint();
  rec.updated_ms = j.at("updated_ms").as_uint();
  return rec;
}

util::Json JobRecord::status_json() const {
  Json j = Json::object();
  j.set("event", "job");
  j.set("id", id);
  j.set("state", to_string(state));
  j.set("kind", kind);
  j.set("name", name);
  j.set("cells_total", static_cast<std::uint64_t>(cells_total));
  j.set("cells_done", static_cast<std::uint64_t>(done_indices.size()));
  j.set("cached", cached);
  j.set("targets_missed", targets_missed);
  if (!error.empty()) j.set("error", error);
  j.set("created_ms", created_ms);
  j.set("updated_ms", updated_ms);
  return j;
}

}  // namespace clktune::jobs
