// Self-contained SHA-256 (FIPS 180-4), no external dependencies.
//
// The cache subsystem keys result artifacts by the digest of a canonical
// scenario document, so the hash must be stable across platforms and
// library versions — hence a local implementation instead of linking
// OpenSSL.  Throughput is irrelevant here: inputs are kilobyte-sized JSON
// documents hashed once per scenario.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace clktune::util {

/// Incremental SHA-256 hasher.  update() any number of times, then
/// digest()/hex_digest() exactly once.
class Sha256 {
 public:
  Sha256();

  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Finalises and returns the 32-byte digest.
  std::array<std::uint8_t, 32> digest();
  /// Finalises and returns the digest as 64 lowercase hex characters.
  std::string hex_digest();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience: hex SHA-256 of a byte string.
std::string sha256_hex(std::string_view data);

}  // namespace clktune::util
