#include "fleet/fleet_executor.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "exec/remote_executor.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "util/backoff.h"
#include "util/timer.h"

namespace clktune::fleet {

using exec::CancelledError;
using exec::ExecError;
using util::Json;

namespace {

/// Fleet-dispatch metrics in the process-wide obs registry (these live in
/// the *dispatching* process — the CLI or whoever drives FleetExecutor —
/// not in the daemons).
struct FleetMetrics {
  obs::Counter& dispatched;
  obs::Counter& requeues;
  obs::Counter& busy;
  obs::Counter& probe_failures;

  static FleetMetrics& get() {
    static FleetMetrics m{
        obs::Registry::global().counter("clktune_fleet_units_dispatched_total",
                                        "Work-unit dispatches attempted"),
        obs::Registry::global().counter(
            "clktune_fleet_requeues_total",
            "Work units returned to the queue after a failed dispatch"),
        obs::Registry::global().counter(
            "clktune_fleet_busy_total",
            "Dispatches answered with busy backpressure"),
        obs::Registry::global().counter(
            "clktune_fleet_probe_failures_total",
            "Health probes a pool member failed to answer"),
    };
    return m;
  }
};

/// Per-daemon in-flight gauge with RAII accounting, so every exit path of
/// a dispatch — success, requeue, transport death, cancel — decrements.
class InflightGuard {
 public:
  explicit InflightGuard(const std::string& endpoint)
      : gauge_(obs::Registry::global().gauge(
            "clktune_fleet_inflight_units",
            "Work units currently dispatched to this daemon",
            {{"daemon", endpoint}})) {
    gauge_.add(1);
  }
  ~InflightGuard() { gauge_.add(-1); }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  obs::Gauge& gauge_;
};

/// A slice of the campaign expansion owed to the fleet.  `remaining`
/// shrinks as dispatches stream cells back — a unit that lost its daemon
/// halfway is requeued with only the cells still missing, because cells
/// are deterministic and partial progress counts.
struct WorkUnit {
  std::size_t id = 0;
  std::vector<std::size_t> remaining;
  std::size_t attempts = 0;     ///< failed dispatches so far
  std::size_t busy_streak = 0;  ///< consecutive busy rejections
  std::string last_error;
  /// Job id this unit already holds on each daemon: a re-dispatch to the
  /// same member re-attaches instead of re-submitting, so cells the
  /// daemon computed while the stream was down replay from its cache.
  std::map<std::size_t, std::string> job_ids;
};

/// Every 8th consecutive busy rejection of one unit costs a retry
/// attempt, so a pool that stays saturated indefinitely eventually fails
/// the campaign with a diagnostic instead of spinning forever.
constexpr std::size_t kBusyPerAttempt = 8;

serve::SubmitOptions timeouts_of(const FleetOptions& options) {
  serve::SubmitOptions timeouts;
  timeouts.connect_timeout_ms = options.connect_timeout_ms;
  timeouts.io_timeout_ms = options.io_timeout_ms;
  return timeouts;
}

/// Timeouts for exchanges that answer instantly by design (probe, job
/// admission, cancel): unlike attach streams — where a computing daemon
/// is legitimately silent — these always get a bounded read deadline, or
/// one wedged-but-accepting daemon would hang its dispatcher forever.
serve::SubmitOptions bounded_timeouts_of(const FleetOptions& options) {
  serve::SubmitOptions timeouts = timeouts_of(options);
  if (timeouts.io_timeout_ms <= 0)
    timeouts.io_timeout_ms = timeouts.connect_timeout_ms > 0
                                 ? timeouts.connect_timeout_ms
                                 : 5000;
  return timeouts;
}

/// One status round trip; true when the daemon answered (busy counts as
/// alive-but-saturated, never dead).  The one definition of "healthy",
/// shared by the up-front probe and mid-campaign re-probing.
bool probe_member(const FleetMember& member, const FleetOptions& options,
                  std::string& error) {
  Json status = Json::object();
  status.set("cmd", "status");
  try {
    const serve::SubmitOutcome outcome = serve::submit_raw(
        member.host, member.port, status, {}, bounded_timeouts_of(options));
    const Json* event = outcome.final_event.find("event");
    if (event != nullptr && event->as_string() == "status") return true;
    const Json* code = outcome.final_event.find("code");
    if (code != nullptr && code->is_string() && code->as_string() == "busy")
      return true;
    const Json* message = outcome.final_event.find("message");
    error = message != nullptr ? message->as_string() : "no status response";
  } catch (const std::exception& e) {
    error = e.what();
  }
  FleetMetrics::get().probe_failures.inc();
  return false;
}

/// One campaign's shared dispatch state: the work queue, the recorded
/// cells, the liveness of every pool member and the terminal flags.  The
/// per-daemon dispatcher threads all drain the same queue — that is the
/// whole work-stealing scheme.  An optional monitor thread re-probes
/// retired members and spawns fresh dispatchers when one rejoins.
class CampaignDispatch {
 public:
  CampaignDispatch(const FleetSpec& spec, const FleetOptions& options,
                   const std::vector<char>& alive,
                   const exec::Request& request, exec::Observer* observer)
      : spec_(spec),
        options_(options),
        request_(request),
        observer_(observer),
        document_(request.document()),
        total_cells_(request.expansion_size()),
        cells_(total_cells_),
        member_dead_(spec.members.size()) {
    for (std::size_t m = 0; m < spec_.members.size(); ++m) {
      member_dead_[m].store(alive[m] == 0);
      if (alive[m] != 0) ++alive_members_;
    }
    initial_alive_ = alive_members_;
  }

  scenario::CampaignSummary run() {
    if (observer_ != nullptr) observer_->on_begin(total_cells_, total_cells_);

    const std::size_t unit_cells =
        options_.unit_cells == 0 ? 1 : options_.unit_cells;
    for (std::size_t begin = 0; begin < total_cells_; begin += unit_cells) {
      WorkUnit unit;
      unit.id = pending_.size();
      for (std::size_t i = begin;
           i < begin + unit_cells && i < total_cells_; ++i)
        unit.remaining.push_back(i);
      pending_.push_back(std::move(unit));
    }
    outstanding_ = pending_.size();

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (outstanding_ > 0)
        for (std::size_t m = 0; m < spec_.members.size(); ++m)
          if (!member_dead_[m].load()) spawn_workers_locked(m);
    }
    std::thread monitor;
    if (outstanding_ > 0 && options_.reprobe_interval_ms > 0)
      monitor = std::thread([this] { monitor_loop(); });

    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [this] {
        return workers_running_ == 0 &&
               (outstanding_ == 0 || failed_ || cancelled_);
      });
      monitor_stop_ = true;
    }
    monitor_cv_.notify_all();
    if (monitor.joinable()) monitor.join();
    // The monitor was the only late spawner; with it joined the
    // dispatcher list is final and every thread in it has returned.
    for (std::thread& dispatcher : dispatchers_) dispatcher.join();

    if (cancelled_)
      throw CancelledError("fleet: campaign cancelled by the observer");
    if (failed_) throw ExecError(failure_);

    scenario::CampaignSummary summary;
    summary.name = request_.campaign.name;
    summary.results.reserve(total_cells_);
    for (std::size_t i = 0; i < total_cells_; ++i) {
      if (cells_[i].result == nullptr)
        throw ExecError("fleet: internal error: cell " + std::to_string(i) +
                        " never arrived");
      summary.scenarios_cached += cells_[i].cached ? 1 : 0;
      summary.results.push_back(std::move(*cells_[i].result));
    }
    summary.recount();
    return summary;
  }

 private:
  struct CellSlot {
    std::unique_ptr<scenario::ScenarioResult> result;
    bool cached = false;
  };

  /// Starts this member's dispatchers (weight many).  mutex_ held.
  void spawn_workers_locked(std::size_t member_id) {
    const std::size_t weight = spec_.members[member_id].weight;
    workers_running_ += weight;
    for (std::size_t w = 0; w < weight; ++w)
      dispatchers_.emplace_back(
          [this, member_id] { worker_entry(member_id); });
  }

  void worker_entry(std::size_t member_id) {
    worker(member_id);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --workers_running_;
    }
    done_cv_.notify_all();
  }

  void worker(std::size_t member_id) {
    for (;;) {
      WorkUnit unit;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [this] {
          return failed_ || cancelled_ || outstanding_ == 0 ||
                 !pending_.empty();
        });
        if (failed_ || cancelled_ || outstanding_ == 0) return;
        if (member_dead_[member_id].load()) return;  // sibling saw it die
        if (observer_ != nullptr && observer_->cancelled()) {
          cancelled_ = true;
          ready_.notify_all();
          return;
        }
        unit = std::move(pending_.front());
        pending_.pop_front();
      }
      if (dispatch_unit(member_id, std::move(unit))) return;
    }
  }

  /// Periodically re-probes retired members; a daemon that answers again
  /// rejoins the pool with fresh dispatchers.  While re-probing is armed,
  /// an all-dead pool waits instead of failing — bounded by max_retries+1
  /// consecutive fruitless probe rounds.
  void monitor_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    std::size_t all_dead_rounds = 0;
    const auto interval =
        std::chrono::milliseconds(options_.reprobe_interval_ms);
    for (;;) {
      monitor_cv_.wait_for(lock, interval, [this] {
        return monitor_stop_ || failed_ || cancelled_ || outstanding_ == 0;
      });
      if (monitor_stop_ || failed_ || cancelled_ || outstanding_ == 0)
        return;
      std::vector<std::size_t> dead;
      for (std::size_t m = 0; m < spec_.members.size(); ++m)
        if (member_dead_[m].load()) dead.push_back(m);
      if (dead.empty()) {
        all_dead_rounds = 0;
        continue;
      }
      lock.unlock();  // probes are network round trips
      std::vector<std::size_t> revived;
      for (const std::size_t m : dead) {
        std::string error;
        if (probe_member(spec_.members[m], options_, error))
          revived.push_back(m);
      }
      lock.lock();
      if (monitor_stop_ || failed_ || cancelled_ || outstanding_ == 0)
        return;
      for (const std::size_t m : revived) {
        member_dead_[m].store(false);
        ++alive_members_;
        spawn_workers_locked(m);
      }
      if (!revived.empty()) ready_.notify_all();
      if (alive_members_ > 0) {
        all_dead_rounds = 0;
        continue;
      }
      if (++all_dead_rounds > options_.max_retries) {
        failure_ = "fleet: all " + std::to_string(initial_alive_) +
                   " daemons lost with " + std::to_string(outstanding_) +
                   " work units unfinished; no daemon rejoined within " +
                   std::to_string(all_dead_rounds) + " probe rounds";
        append_unit_errors_locked();
        failed_ = true;
        ready_.notify_all();
        done_cv_.notify_all();
        return;
      }
    }
  }

  /// One dispatch of one unit to one daemon; returns true when this
  /// dispatcher must exit (its daemon died, the campaign failed or was
  /// cancelled).  The unit travels through the daemon's durable job
  /// queue: submit (O(enqueue) admission, or reuse the job a previous
  /// attempt created), then attach and stream.  Speaking the wire
  /// protocol directly — rather than wrapping exec::RemoteExecutor —
  /// keeps the cells a dying daemon streamed before the failure
  /// (RemoteExecutor's contract is all-or-nothing) and the busy/dead
  /// distinction of the terminal frame's "code".
  bool dispatch_unit(std::size_t member_id, WorkUnit unit) {
    const FleetMember& member = spec_.members[member_id];
    // Crash point: the dispatching client process dying mid-campaign —
    // daemons keep their jobs, so a rerun replays from their caches.
    if (fault::armed()) fault::poll("fleet.dispatch");
    FleetMetrics::get().dispatched.inc();
    const InflightGuard inflight(member.endpoint());

    serve::SubmitOutcome stream;
    std::string error;
    bool transport_failure = false;
    std::string job_id;
    const auto known = unit.job_ids.find(member_id);
    if (known != unit.job_ids.end()) job_id = known->second;
    try {
      if (job_id.empty()) {
        Json wire = Json::object();
        wire.set("cmd", "submit");
        wire.set("doc", document_);
        Json indices = Json::array();
        for (const std::size_t index : unit.remaining)
          indices.push_back(static_cast<std::uint64_t>(index));
        wire.set("indices", std::move(indices));
        const serve::SubmitOutcome admitted =
            serve::submit_raw(member.host, member.port, wire, {},
                              bounded_timeouts_of(options_));
        const Json* event = admitted.final_event.find("event");
        if (event != nullptr && event->as_string() == "job") {
          job_id = admitted.final_event.at("id").as_string();
          unit.job_ids[member_id] = job_id;
        } else {
          // Busy backpressure, a protocol error or a clean EOF at
          // admission: fall through to the shared evaluation below.
          stream = admitted;
        }
      }
      if (!job_id.empty()) {
        Json wire = Json::object();
        wire.set("cmd", "attach");
        wire.set("id", job_id);
        stream = serve::submit_raw(
            member.host, member.port, wire,
            [&](const Json& event) { on_stream_event(event); },
            timeouts_of(options_));
      }
    } catch (const CancelledError&) {
      // Best effort: the daemon keeps the job otherwise, and while its
      // cells would only warm the cache, cancelling frees its workers.
      cancel_job(member, job_id);
      const std::lock_guard<std::mutex> lock(mutex_);
      cancelled_ = true;
      ready_.notify_all();
      return true;
    } catch (const std::exception& e) {
      // Connect refusal/timeout, a stalled read, a garbled response
      // line: the daemon is unusable.
      transport_failure = true;
      error = e.what();
    }
    // A stream that ended without any terminal frame is a clean EOF from
    // a dying daemon — every bit as dead as a reset: retire it, or its
    // own worker would redispatch the unit straight back at the corpse
    // and burn the bounded attempts on a single failure.
    if (!transport_failure &&
        stream.final_event.find("event") == nullptr) {
      transport_failure = true;
      error = "connection closed mid-unit";
    }

    bool busy = false;
    bool exit_worker = false;
    std::size_t busy_backoff = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      std::vector<std::size_t> missing;
      for (const std::size_t index : unit.remaining)
        if (cells_[index].result == nullptr) missing.push_back(index);

      if (missing.empty()) {
        // Everything owed arrived — even a daemon that died between its
        // last cell and the done frame completed this unit.
        --outstanding_;
      } else {
        if (!transport_failure) {
          const Json* code = stream.final_event.find("code");
          busy = code != nullptr && code->is_string() &&
                 code->as_string() == "busy";
          const Json* message = stream.final_event.find("message");
          error = message != nullptr ? message->as_string()
                                     : "daemon did not deliver the unit";
        }
        unit.remaining = std::move(missing);
        // Backpressure is not a failure: a saturated-but-healthy daemon
        // must not consume the unit's bounded retry budget, or a briefly
        // busy pool would hard-fail a campaign no daemon ever dropped.
        // But a pool that *stays* saturated must not spin forever either,
        // so a long busy streak slowly bleeds into the attempt count.
        if (busy) {
          FleetMetrics::get().busy.inc();
          ++unit.busy_streak;
          if (unit.busy_streak % kBusyPerAttempt == 0) ++unit.attempts;
        } else {
          unit.busy_streak = 0;
          ++unit.attempts;
        }
        busy_backoff = unit.busy_streak;
        unit.last_error = member.endpoint() + ": " + error;
        if (unit.attempts > options_.max_retries) {
          failed_ = true;
          failure_ = "fleet: work unit " + std::to_string(unit.id) +
                     " (cell " + std::to_string(unit.remaining.front()) +
                     (unit.remaining.size() > 1 ? "…" : "") +
                     ") failed after " + std::to_string(unit.attempts) +
                     " dispatches; last: " + unit.last_error;
          exit_worker = true;
        } else {
          FleetMetrics::get().requeues.inc();
          pending_.push_back(std::move(unit));
        }
      }
    }
    ready_.notify_all();

    if (transport_failure) {
      retire_member(member_id);
      return true;
    }
    if (busy) {
      // The daemon is alive but saturated; a jittered exponential pause
      // (capped) keeps the retry from hot-looping against its admission
      // queue, and the jitter de-synchronises dispatchers that all got
      // the busy frame in the same instant.
      thread_local util::Backoff backoff(20, 1500);
      backoff.pause(busy_backoff);
    }
    return exit_worker;
  }

  void cancel_job(const FleetMember& member, const std::string& job_id) {
    if (job_id.empty()) return;
    Json wire = Json::object();
    wire.set("cmd", "cancel");
    wire.set("id", job_id);
    try {
      serve::submit_raw(member.host, member.port, wire, {},
                        bounded_timeouts_of(options_));
    } catch (const std::exception&) {
      // An unreachable daemon cannot be cancelled anyway.
    }
  }

  void on_stream_event(const Json& event) {
    if (event.at("event").as_string() != "result") return;
    if (observer_ != nullptr && observer_->cancelled())
      throw CancelledError("fleet: stream cancelled");
    const std::size_t index = event.at("index").as_uint();
    auto result = std::make_unique<scenario::ScenarioResult>(
        scenario::ScenarioResult::from_json(event.at("result")));
    const bool cached = event.at("cached").as_bool();
    const scenario::ScenarioResult* recorded = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (index >= cells_.size())
        throw ExecError("fleet: daemon sent out-of-range cell index " +
                        std::to_string(index));
      if (cells_[index].result == nullptr) {
        cells_[index].result = std::move(result);
        cells_[index].cached = cached;
        recorded = cells_[index].result.get();
      }
    }
    // Forward outside the lock: the slot is write-once and the vector
    // never reallocates, so the pointer stays valid.  A duplicate (a
    // requeued unit whose first owner already streamed this cell, or a
    // re-attach replaying cells we already hold) is dropped so the
    // observer sees every index exactly once.
    if (recorded != nullptr && observer_ != nullptr) {
      exec::CellEvent forwarded{index, *recorded, cached,
                                cached ? 0.0 : recorded->seconds};
      observer_->on_cell(forwarded);
    }
  }

  /// Appends up to three pending units' last errors to failure_.
  /// mutex_ held.
  void append_unit_errors_locked() {
    std::size_t shown = 0;
    for (const WorkUnit& unit : pending_) {
      if (unit.last_error.empty()) continue;
      failure_ +=
          (shown == 0 ? "; last errors: " : " | ") + unit.last_error;
      if (++shown == 3) break;
    }
  }

  /// Marks a daemon dead (once).  Without re-probing, the death of the
  /// last daemon with work unfinished fails the campaign; with it, the
  /// monitor keeps probing and the all-dead bound lives there instead.
  void retire_member(std::size_t member_id) {
    if (member_dead_[member_id].exchange(true)) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    --alive_members_;
    if (alive_members_ == 0 && outstanding_ > 0 && !failed_ && !cancelled_ &&
        options_.reprobe_interval_ms <= 0) {
      failure_ = "fleet: all " + std::to_string(initial_alive_) +
                 " daemons lost with " + std::to_string(outstanding_) +
                 " work units unfinished";
      append_unit_errors_locked();
      failed_ = true;
    }
    ready_.notify_all();
  }

  const FleetSpec& spec_;
  const FleetOptions& options_;
  const exec::Request& request_;
  exec::Observer* observer_;
  const Json document_;
  const std::size_t total_cells_;

  std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable done_cv_;      ///< run() completion + worker exits
  std::condition_variable monitor_cv_;   ///< wakes the monitor early
  std::deque<WorkUnit> pending_;
  std::size_t outstanding_ = 0;  ///< units not yet fully delivered
  std::size_t alive_members_ = 0;
  std::size_t initial_alive_ = 0;
  std::size_t workers_running_ = 0;
  bool monitor_stop_ = false;
  std::deque<std::thread> dispatchers_;  ///< deque: grows while running
  std::vector<CellSlot> cells_;
  std::vector<std::atomic<bool>> member_dead_;
  bool failed_ = false;
  bool cancelled_ = false;
  std::string failure_;
};

/// Scenario failover: suppresses the child RemoteExecutor's own on_begin
/// (the fleet already announced the run) and deduplicates on_cell across
/// retry attempts, so the caller's observer sees the contract events
/// exactly once.
class OnceObserver : public exec::Observer {
 public:
  explicit OnceObserver(exec::Observer* target) : target_(target) {}

  void on_begin(std::size_t, std::size_t) override {}
  void on_cell(const exec::CellEvent& event) override {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (cell_seen_) return;
      cell_seen_ = true;
    }
    if (target_ != nullptr) target_->on_cell(event);
  }
  bool cancelled() override {
    return target_ != nullptr && target_->cancelled();
  }

 private:
  exec::Observer* target_;
  std::mutex mutex_;
  bool cell_seen_ = false;
};

}  // namespace

FleetExecutor::FleetExecutor(FleetSpec spec, FleetOptions options)
    : spec_(std::move(spec)), options_(options) {
  if (spec_.members.empty())
    throw ExecError("fleet: needs at least one daemon");
}

exec::Outcome FleetExecutor::execute(const exec::Request& request,
                                     exec::Observer* observer) {
  request.validate();
  if (request.shard_count != 1 || !request.indices.empty())
    throw ExecError("fleet: request already carries a selection");
  const util::Stopwatch timer;

  // Health probe: a status round trip per daemon, in parallel (dead hosts
  // each cost one connect timeout).  Dispatch would discover deaths on its
  // own; probing just retires them before any unit is wasted on one.
  std::vector<std::size_t> healthy;
  std::vector<std::string> down;
  if (options_.probe) {
    std::vector<char> alive(spec_.members.size(), 0);
    std::vector<std::string> probe_errors(spec_.members.size());
    std::vector<std::thread> probes;
    probes.reserve(spec_.members.size());
    for (std::size_t m = 0; m < spec_.members.size(); ++m) {
      probes.emplace_back([this, m, &alive, &probe_errors] {
        if (probe_member(spec_.members[m], options_, probe_errors[m]))
          alive[m] = 1;
      });
    }
    for (std::thread& probe : probes) probe.join();
    for (std::size_t m = 0; m < spec_.members.size(); ++m) {
      if (alive[m])
        healthy.push_back(m);
      else
        down.push_back(spec_.members[m].endpoint() + ": " + probe_errors[m]);
    }
    // A probe timeout is ambiguous: the daemon may just be saturated with
    // long cells (its handlers busy, the probe parked in the admission
    // queue).  When *everything* timed out, fall back to dispatching at
    // the timed-out members and let dispatch decide — only a pool of
    // positively-refused daemons fails fast here.
    if (healthy.empty()) {
      for (std::size_t m = 0; m < spec_.members.size(); ++m)
        if (!alive[m] &&
            probe_errors[m].find("timed out") != std::string::npos)
          healthy.push_back(m);
    }
  } else {
    for (std::size_t m = 0; m < spec_.members.size(); ++m)
      healthy.push_back(m);
  }
  if (healthy.empty()) {
    std::string what = "fleet: no healthy daemon in the pool";
    for (const std::string& reason : down) what += "; " + reason;
    throw ExecError(what);
  }

  if (request.kind == exec::Request::Kind::scenario) {
    if (observer != nullptr) {
      observer->on_begin(1, 1);
      if (observer->cancelled())
        throw CancelledError("fleet: cancelled before the scenario started");
    }
    OnceObserver once(observer);
    std::string diagnostics;
    for (std::size_t attempt = 0; attempt <= options_.max_retries;
         ++attempt) {
      const FleetMember& member =
          spec_.members[healthy[attempt % healthy.size()]];
      exec::RemoteExecutor remote(member.host, member.port,
                                  timeouts_of(options_));
      try {
        exec::Outcome outcome = remote.execute(request, &once);
        outcome.backend = name();
        outcome.seconds = timer.seconds();
        return outcome;
      } catch (const CancelledError&) {
        throw;
      } catch (const std::exception& e) {
        diagnostics += (diagnostics.empty() ? "" : " | ");
        diagnostics += e.what();
      }
      // Jittered exponential pause between failover attempts (capped): a
      // briefly busy pool must not burn the whole budget within
      // milliseconds, and concurrent clients should not retry in step.
      if (attempt < options_.max_retries) {
        thread_local util::Backoff backoff(20, 500);
        backoff.pause(attempt);
      }
    }
    throw ExecError("fleet: scenario failed on every attempt: " +
                    diagnostics);
  }

  std::vector<char> alive(spec_.members.size(), 0);
  for (const std::size_t m : healthy) alive[m] = 1;
  CampaignDispatch dispatch(spec_, options_, alive, request, observer);
  scenario::CampaignSummary summary = dispatch.run();
  summary.total_seconds = timer.seconds();
  return exec::Outcome::from_summary(std::move(summary), name());
}

}  // namespace clktune::fleet
