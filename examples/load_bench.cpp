// Loads an ISCAS89 .bench netlist (s27 shipped in assets/), injects the
// paper's synthetic clock skew, and runs the insertion flow — the path a
// user with real benchmark files would take.
//
// Usage: load_bench [path/to/file.bench]
#include <cstdio>
#include <string>

#include "core/engine.h"
#include "feas/yield_eval.h"
#include "mc/period_mc.h"
#include "netlist/bench_io.h"
#include "netlist/nominal_sta.h"
#include "ssta/seq_graph.h"

using namespace clktune;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "assets/s27.bench";
  netlist::Design design;
  try {
    design = netlist::read_bench_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(), e.what());
    std::fprintf(stderr, "run from the repository root or pass a path\n");
    return 1;
  }
  std::printf("%s: %zu inputs, %zu outputs, %zu gates, %zu flip-flops\n",
              design.name.c_str(), design.netlist.primary_inputs().size(),
              design.netlist.primary_outputs().size(),
              design.netlist.gates().size(),
              design.netlist.flipflops().size());

  // The paper adds clock skews "so that they have more critical paths".
  const double t0 = netlist::nominal_min_period(design);
  netlist::apply_synthetic_skew(design, 0.05 * t0, /*seed=*/13);
  std::printf("nominal min period %.1f ps, injected skew sigma %.1f ps\n", t0,
              0.05 * t0);

  const ssta::SeqGraph graph = ssta::extract_seq_graph(design);
  const mc::Sampler sampler(graph, 20160314);
  const mc::PeriodStats period = mc::sample_min_period(sampler, 5000);

  core::InsertionConfig config;
  config.num_samples = 5000;
  const double t = period.mu();
  core::BufferInsertionEngine engine(design, graph, t, config);
  const core::InsertionResult res = engine.run();

  const mc::Sampler eval(graph, 777);
  const double before = feas::original_yield(graph, t, eval, 5000).yield;
  const double after = feas::YieldEvaluator(graph, res.plan, t)
                           .evaluate(eval, 5000)
                           .yield;
  std::printf("T=%.1f ps: yield %.2f%% -> %.2f%% with %d buffers\n", t,
              100.0 * before, 100.0 * after, res.plan.physical_buffers());
  for (const core::BufferInfo& b : res.buffers)
    std::printf("  buffer on %s  range [%d, %d] steps\n",
                design.netlist
                    .node(design.netlist.flipflops()[
                        static_cast<std::size_t>(b.ff)])
                    .name.c_str(),
                b.range_lo, b.range_hi);
  return 0;
}
