#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/sample_solver.h"
#include "mc/arc_constants.h"
#include "mc/sampler.h"
#include "netlist/nominal_sta.h"
#include "util/assert.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace clktune::core {
namespace {

using SparseSolution = std::vector<std::pair<int, int>>;

struct PassOutput {
  std::vector<SparseSolution> solutions;
  std::vector<SparseSolution> mincount;
  std::vector<int> nk;
  std::vector<char> fixable;
  PhaseDiagnostics diag;
};

PassOutput run_pass(const ssta::SeqGraph& graph,
                    mc::SampleConstantCache& cache, bool first_pass,
                    std::uint64_t samples, const CandidateWindows& windows,
                    double step_ps, double clock_period, ConcentrateMode mode,
                    const std::vector<double>* targets,
                    const InsertionConfig& config, bool keep_mincount) {
  PassOutput out;
  out.solutions.resize(samples);
  if (keep_mincount) out.mincount.resize(samples);
  out.nk.assign(samples, 0);
  out.fixable.assign(samples, 1);

  const SampleSolver solver(graph, step_ps, clock_period, windows,
                            config.milp_max_nodes);
  const std::size_t workers = util::resolve_thread_count(
      config.threads <= 0 ? 0 : static_cast<std::size_t>(config.threads));
  std::vector<PhaseDiagnostics> diags(workers);

  // Strided scheduling: failing samples (the expensive ones) cluster, and
  // interleaving spreads them across workers.  All per-sample outputs are
  // written to sample-indexed slots, so the result is schedule-independent.
  // The first pass derives every sample's quantized arc constants (storing
  // them when the cache fits its byte budget); later passes reuse them —
  // concurrent fill() calls touch disjoint per-sample slices.
  util::parallel_strided(
      static_cast<std::size_t>(samples), workers,
      [&](std::size_t w, std::size_t k) {
        thread_local mc::ArcConstants scratch;  // per-worker scratch
        thread_local SolveWorkspace ws;
        const mc::ArcConstantsView constants =
            first_pass ? cache.fill(k, scratch) : cache.get(k, scratch);
        SampleSolution sol = solver.solve(constants, mode, targets, ws);
        PhaseDiagnostics& d = diags[w];
        d.milps_solved += static_cast<std::uint64_t>(sol.milps_solved);
        d.milp_nodes += static_cast<std::uint64_t>(sol.milp_nodes);
        d.lazy_rounds += static_cast<std::uint64_t>(sol.lazy_rounds);
        d.truncated_milps += sol.truncated ? 1 : 0;
        if (!sol.fixable) {
          out.fixable[k] = 0;
          ++d.unfixable_samples;
          ++d.samples_with_violations;
          return;
        }
        if (sol.nk > 0) ++d.samples_with_violations;
        out.nk[k] = sol.nk;
        out.solutions[k] = std::move(sol.tunings);
        if (keep_mincount) out.mincount[k] = std::move(sol.mincount_tunings);
      });
  for (const PhaseDiagnostics& d : diags) out.diag.merge(d);
  return out;
}

}  // namespace

BufferInsertionEngine::BufferInsertionEngine(const netlist::Design& design,
                                             const ssta::SeqGraph& graph,
                                             double clock_period_ps,
                                             InsertionConfig config)
    : design_(&design),
      graph_(&graph),
      clock_period_(clock_period_ps),
      config_(config) {
  CLKTUNE_EXPECTS(clock_period_ps > 0.0);
  CLKTUNE_EXPECTS(config_.steps >= 2);
  tau_ps_ = config_.max_range_ps > 0.0
                ? config_.max_range_ps
                : netlist::nominal_min_period(design) / 8.0;
  CLKTUNE_EXPECTS(tau_ps_ > 0.0);
  step_ps_ = tau_ps_ / config_.steps;
}

InsertionResult BufferInsertionEngine::run() {
  util::Stopwatch total;
  const int ns = graph_->num_ffs;
  const std::uint64_t samples = config_.num_samples;
  InsertionResult res;
  res.step_ps = step_ps_;
  res.tau_ps = tau_ps_;
  res.clock_period_ps = clock_period_;
  res.plan.step_ps = step_ps_;
  res.plan.reset_groups();

  const mc::Sampler sampler(*graph_, config_.sample_seed);
  // All three passes see identical per-sample constants (same sampler, T
  // and step grid), so step 1 computes them once and steps 2a/2b reuse.
  mc::SampleConstantCache cache(
      sampler, clock_period_, step_ps_, samples,
      config_.enable_sample_cache ? config_.sample_cache_max_bytes : 0);

  // ------------------- step 1: floating lower bounds ----------------------
  util::Stopwatch sw1;
  const CandidateWindows floating =
      CandidateWindows::floating(ns, config_.steps);
  const ConcentrateMode mode1 = config_.enable_concentration
                                    ? ConcentrateMode::toward_zero
                                    : ConcentrateMode::none;
  PassOutput p1 = run_pass(*graph_, cache, true, samples, floating, step_ps_,
                           clock_period_, mode1, nullptr, config_, true);
  res.step1 = p1.diag;
  res.step1.seconds = sw1.seconds();

  res.step1_usage.assign(static_cast<std::size_t>(ns), 0);
  res.hist_step1_min.assign(static_cast<std::size_t>(ns), {});
  res.hist_step1_conc.assign(static_cast<std::size_t>(ns), {});
  for (std::uint64_t k = 0; k < samples; ++k) {
    for (const auto& [ff, kv] : p1.mincount[k])
      res.hist_step1_min[static_cast<std::size_t>(ff)].add(kv);
    for (const auto& [ff, kv] : p1.solutions[k]) {
      res.hist_step1_conc[static_cast<std::size_t>(ff)].add(kv);
      ++res.step1_usage[static_cast<std::size_t>(ff)];
    }
  }

  // ------------------- pruning (III-A2) -----------------------------------
  res.kept_after_prune.assign(static_cast<std::size_t>(ns), 1);
  res.pruned_count = 0;
  if (config_.enable_pruning) {
    const std::uint64_t prune_max = config_.prune_usage_max();
    const std::uint64_t critical = config_.critical_usage();
    for (int f = 0; f < ns; ++f) {
      const auto fs = static_cast<std::size_t>(f);
      if (res.step1_usage[fs] > prune_max) continue;
      bool critical_neighbor = false;
      for (int e : graph_->arcs_of_ff[fs]) {
        const ssta::SeqArc& arc = graph_->arcs[static_cast<std::size_t>(e)];
        const int other = arc.src_ff == f ? arc.dst_ff : arc.src_ff;
        if (other != f &&
            res.step1_usage[static_cast<std::size_t>(other)] >= critical) {
          critical_neighbor = true;
          break;
        }
      }
      if (!critical_neighbor) {
        res.kept_after_prune[fs] = 0;
        ++res.pruned_count;
      }
    }
  }

  // ------------------- window assignment (III-A4) -------------------------
  CandidateWindows fixed = CandidateWindows::none(ns);
  std::vector<int> kept;
  for (int f = 0; f < ns; ++f) {
    const auto fs = static_cast<std::size_t>(f);
    if (!res.kept_after_prune[fs]) continue;
    int lo = res.hist_step1_conc[fs].best_window_lower_bound(config_.steps);
    // The window is the buffer's physical range: it must contain the
    // resting value 0 so unadjusted chips are realisable.
    lo = std::clamp(lo, -config_.steps, 0);
    fixed.candidate[fs] = 1;
    fixed.k_lo[fs] = lo;
    fixed.k_hi[fs] = lo + config_.steps;
    kept.push_back(f);
  }

  // ------------------- skip rule (III-B1) ---------------------------------
  std::uint64_t missing = 0;
  for (std::uint64_t k = 0; k < samples; ++k) {
    bool out_of_window = false;
    for (const auto& [ff, kv] : p1.solutions[k]) {
      const auto fs = static_cast<std::size_t>(ff);
      if (!fixed.candidate[fs] || kv < fixed.k_lo[fs] || kv > fixed.k_hi[fs]) {
        out_of_window = true;
        break;
      }
    }
    missing += out_of_window ? 1 : 0;
  }
  res.out_of_window_fraction =
      samples == 0 ? 0.0
                   : static_cast<double>(missing) / static_cast<double>(samples);
  res.step2a_skipped =
      res.out_of_window_fraction < config_.window_skip_fraction;

  // ------------------- step 2a: re-simulate with fixed bounds -------------
  PassOutput p2a;
  if (!res.step2a_skipped) {
    util::Stopwatch sw;
    p2a = run_pass(*graph_, cache, false, samples, fixed, step_ps_,
                   clock_period_, ConcentrateMode::none, nullptr, config_,
                   false);
    res.step2a = p2a.diag;
    res.step2a.seconds = sw.seconds();
  } else {
    // Reuse step-1 tunings, clamped into the assigned windows, as the
    // basis for the averages (the <0.1 % of samples that fall outside are
    // the approximation the paper accepts here).
    p2a.solutions.resize(samples);
    p2a.nk = p1.nk;
    p2a.fixable = p1.fixable;
    for (std::uint64_t k = 0; k < samples; ++k) {
      for (const auto& [ff, kv] : p1.solutions[k]) {
        const auto fs = static_cast<std::size_t>(ff);
        if (!fixed.candidate[fs]) continue;
        const int clamped = std::clamp(kv, fixed.k_lo[fs], fixed.k_hi[fs]);
        if (clamped != 0) p2a.solutions[k].emplace_back(ff, clamped);
      }
    }
  }

  // ------------------- x_avg (III-B2) --------------------------------------
  std::vector<double> targets(static_cast<std::size_t>(ns), 0.0);
  {
    std::vector<double> sum(static_cast<std::size_t>(ns), 0.0);
    std::vector<std::uint64_t> nonzero(static_cast<std::size_t>(ns), 0);
    for (std::uint64_t k = 0; k < samples; ++k)
      for (const auto& [ff, kv] : p2a.solutions[k]) {
        sum[static_cast<std::size_t>(ff)] += kv;
        ++nonzero[static_cast<std::size_t>(ff)];
      }
    for (int f : kept) {
      const auto fs = static_cast<std::size_t>(f);
      if (config_.average_nonzero_only) {
        targets[fs] = nonzero[fs] == 0
                          ? 0.0
                          : sum[fs] / static_cast<double>(nonzero[fs]);
      } else {
        targets[fs] =
            samples == 0 ? 0.0 : sum[fs] / static_cast<double>(samples);
      }
      // The target must be representable inside the window.
      targets[fs] = std::clamp(targets[fs],
                               static_cast<double>(fixed.k_lo[fs]),
                               static_cast<double>(fixed.k_hi[fs]));
    }
  }

  // ------------------- step 2b: concentrate toward the average ------------
  util::Stopwatch sw2b;
  const ConcentrateMode mode2 = config_.enable_concentration
                                    ? ConcentrateMode::toward_target
                                    : ConcentrateMode::none;
  PassOutput p2b = run_pass(*graph_, cache, false, samples, fixed, step_ps_,
                            clock_period_, mode2, &targets, config_, false);
  res.step2b = p2b.diag;
  res.step2b.seconds = sw2b.seconds();

  // ------------------- final per-buffer statistics ------------------------
  res.hist_step2.assign(static_cast<std::size_t>(ns), {});
  const std::size_t nk_kept = kept.size();
  std::vector<int> kept_index(static_cast<std::size_t>(ns), -1);
  for (std::size_t i = 0; i < nk_kept; ++i)
    kept_index[static_cast<std::size_t>(kept[i])] = static_cast<int>(i);

  std::vector<std::uint64_t> usage(nk_kept, 0);
  std::vector<int> min_k(nk_kept, std::numeric_limits<int>::max());
  std::vector<int> max_k(nk_kept, std::numeric_limits<int>::min());
  std::vector<double> sx(nk_kept, 0.0), sxx(nk_kept, 0.0);
  // Sparse pair products: tunings are zero in most samples, so E[x_i x_j]
  // only accumulates when both are adjusted in the same sample.
  std::vector<std::vector<double>> sxy(nk_kept,
                                       std::vector<double>(nk_kept, 0.0));
  for (std::uint64_t k = 0; k < samples; ++k) {
    const SparseSolution& sol = p2b.solutions[k];
    for (std::size_t a = 0; a < sol.size(); ++a) {
      const int ia = kept_index[static_cast<std::size_t>(sol[a].first)];
      CLKTUNE_ASSERT(ia >= 0);
      const auto ias = static_cast<std::size_t>(ia);
      const double ka = sol[a].second;
      res.hist_step2[static_cast<std::size_t>(sol[a].first)].add(sol[a].second);
      ++usage[ias];
      min_k[ias] = std::min(min_k[ias], sol[a].second);
      max_k[ias] = std::max(max_k[ias], sol[a].second);
      sx[ias] += ka;
      sxx[ias] += ka * ka;
      for (std::size_t b = a + 1; b < sol.size(); ++b) {
        const int ib = kept_index[static_cast<std::size_t>(sol[b].first)];
        const auto ibs = static_cast<std::size_t>(ib);
        const double kb = sol[b].second;
        sxy[std::min(ias, ibs)][std::max(ias, ibs)] += ka * kb;
      }
    }
  }

  // ------------------- final buffer selection -----------------------------
  const std::uint64_t usage_min = config_.final_usage_min();
  std::vector<int> final_local;  // indices into `kept`
  for (std::size_t i = 0; i < nk_kept; ++i)
    if (usage[i] >= usage_min) final_local.push_back(static_cast<int>(i));

  res.buffers.clear();
  res.plan.buffers.clear();
  for (int i : final_local) {
    const auto is = static_cast<std::size_t>(i);
    const int ff = kept[is];
    const auto fs = static_cast<std::size_t>(ff);
    BufferInfo info;
    info.ff = ff;
    info.window_lo = fixed.k_lo[fs];
    info.window_hi = fixed.k_hi[fs];
    info.range_lo = std::min(min_k[is], 0);
    info.range_hi = std::max(max_k[is], 0);
    info.usage_step1 = res.step1_usage[fs];
    info.usage_final = usage[is];
    info.avg_k = usage[is] == 0 ? 0.0 : sx[is] / static_cast<double>(usage[is]);
    res.buffers.push_back(info);
    res.plan.buffers.push_back(
        feas::BufferWindow{ff, info.range_lo, info.range_hi});
  }

  // Correlation over the final buffer list (population moments; zeros
  // included implicitly via the sparse sums).
  const std::size_t nb = final_local.size();
  res.correlation.assign(nb, std::vector<double>(nb, 0.0));
  const double n = static_cast<double>(samples);
  for (std::size_t a = 0; a < nb; ++a) {
    const auto ia = static_cast<std::size_t>(final_local[a]);
    const double mean_a = sx[ia] / n;
    const double var_a = sxx[ia] / n - mean_a * mean_a;
    for (std::size_t b = a; b < nb; ++b) {
      const auto ib = static_cast<std::size_t>(final_local[b]);
      if (a == b) {
        res.correlation[a][b] = var_a > 1e-12 ? 1.0 : 0.0;
        continue;
      }
      const double mean_b = sx[ib] / n;
      const double var_b = sxx[ib] / n - mean_b * mean_b;
      const double cov =
          sxy[std::min(ia, ib)][std::max(ia, ib)] / n - mean_a * mean_b;
      const double denom = std::sqrt(std::max(var_a, 0.0) *
                                     std::max(var_b, 0.0));
      const double corr = denom > 1e-12 ? cov / denom : 0.0;
      res.correlation[a][b] = corr;
      res.correlation[b][a] = corr;
    }
  }

  // ------------------- step 3: grouping (III-C) ---------------------------
  res.plan.reset_groups();
  if (config_.enable_grouping && nb > 1) {
    const double dt = config_.dist_factor * design_->ff_pitch;
    auto eligible = [&](std::size_t a, std::size_t b) {
      if (res.correlation[a][b] < config_.corr_threshold) return false;
      const auto& pa =
          design_->ff_position[static_cast<std::size_t>(res.buffers[a].ff)];
      const auto& pb =
          design_->ff_position[static_cast<std::size_t>(res.buffers[b].ff)];
      return netlist::manhattan(pa, pb) <= dt;
    };
    // Complete-linkage agglomeration in descending correlation order.
    struct Pair {
      std::size_t a, b;
      double corr;
    };
    std::vector<Pair> pairs;
    for (std::size_t a = 0; a < nb; ++a)
      for (std::size_t b = a + 1; b < nb; ++b)
        if (eligible(a, b)) pairs.push_back({a, b, res.correlation[a][b]});
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair& x, const Pair& y) { return x.corr > y.corr; });
    std::vector<int> group(nb);
    std::iota(group.begin(), group.end(), 0);
    std::vector<std::vector<std::size_t>> members(nb);
    for (std::size_t i = 0; i < nb; ++i) members[i] = {i};
    for (const Pair& p : pairs) {
      const int ga = group[p.a];
      const int gb = group[p.b];
      if (ga == gb) continue;
      bool all_ok = true;
      for (std::size_t x : members[static_cast<std::size_t>(ga)])
        for (std::size_t y : members[static_cast<std::size_t>(gb)])
          all_ok = all_ok && eligible(x, y);
      if (!all_ok) continue;
      for (std::size_t y : members[static_cast<std::size_t>(gb)]) {
        group[y] = ga;
        members[static_cast<std::size_t>(ga)].push_back(y);
      }
      members[static_cast<std::size_t>(gb)].clear();
    }
    // Compact group ids.
    std::vector<int> remap(nb, -1);
    int next = 0;
    res.plan.group_of.assign(nb, 0);
    for (std::size_t i = 0; i < nb; ++i) {
      const auto gs = static_cast<std::size_t>(group[i]);
      if (remap[gs] < 0) remap[gs] = next++;
      res.plan.group_of[i] = remap[gs];
    }
    res.plan.num_groups = next;
  }

  // ------------------- designer cap on buffer count -----------------------
  if (config_.max_buffers >= 0 &&
      res.plan.num_groups > config_.max_buffers) {
    // Drop whole groups with the fewest total tunings until within budget.
    std::vector<std::uint64_t> group_usage(
        static_cast<std::size_t>(res.plan.num_groups), 0);
    for (std::size_t i = 0; i < res.buffers.size(); ++i)
      group_usage[static_cast<std::size_t>(res.plan.group_of[i])] +=
          res.buffers[i].usage_final;
    std::vector<int> order(res.plan.num_groups);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return group_usage[static_cast<std::size_t>(a)] <
             group_usage[static_cast<std::size_t>(b)];
    });
    std::vector<char> dropped(static_cast<std::size_t>(res.plan.num_groups), 0);
    for (int i = 0; i < res.plan.num_groups - config_.max_buffers; ++i)
      dropped[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = 1;
    std::vector<BufferInfo> keep_info;
    feas::TuningPlan pruned_plan;
    pruned_plan.step_ps = res.plan.step_ps;
    std::vector<int> gremap(static_cast<std::size_t>(res.plan.num_groups), -1);
    int next = 0;
    for (std::size_t i = 0; i < res.buffers.size(); ++i) {
      const int g = res.plan.group_of[i];
      if (dropped[static_cast<std::size_t>(g)]) continue;
      if (gremap[static_cast<std::size_t>(g)] < 0)
        gremap[static_cast<std::size_t>(g)] = next++;
      keep_info.push_back(res.buffers[i]);
      pruned_plan.buffers.push_back(res.plan.buffers[i]);
      pruned_plan.group_of.push_back(gremap[static_cast<std::size_t>(g)]);
    }
    pruned_plan.num_groups = next;
    res.buffers = std::move(keep_info);
    res.plan = std::move(pruned_plan);
  }

  for (std::size_t i = 0; i < res.buffers.size(); ++i)
    res.buffers[i].group = res.plan.group_of[i];

  res.total_seconds = total.seconds();
  return res;
}

}  // namespace clktune::core
