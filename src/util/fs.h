// Crash-durable file commits.
//
// write_file_atomic() is the one tmp+rename implementation behind every
// on-disk envelope (result cache entries, job-store records): write to a
// unique temporary in the same directory, fsync the file, rename over the
// final path, fsync the parent directory.  After it returns, the commit
// survives power loss; at any crash point before the rename the final
// path still holds the previous complete version (readers never observe a
// torn file through the final path).
//
// When the fault registry is armed and `fault_site` is non-null, the
// commit exposes injection points named  <site>.write  (short_write /
// enospc / fail / crash),  <site>.fsync  (fail / crash — crash *after*
// the tmp file exists, before the rename),  <site>.rename  (crash
// *before* the rename commits), and  <site>.commit  (crash *after* the
// rename, before the directory fsync).  docs/robustness.md catalogues
// them.
#pragma once

#include <string>
#include <string_view>

namespace clktune::util {

/// Atomically (and, unless `durable` is false, durably) replaces `path`
/// with `contents`.  Throws std::runtime_error on any I/O failure, with
/// the temporary already cleaned up.
void write_file_atomic(const std::string& path, std::string_view contents,
                       bool durable = true,
                       const char* fault_site = nullptr);

}  // namespace clktune::util
