#include "feas/tuning_plan.h"

#include <algorithm>
#include <limits>

namespace clktune::feas {

BufferWindow TuningPlan::group_window(int g) const {
  CLKTUNE_EXPECTS(g >= 0 && g < num_groups);
  BufferWindow w;
  w.ff = -1;
  w.k_lo = std::numeric_limits<int>::max();
  w.k_hi = std::numeric_limits<int>::min();
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    if (group_of[i] != g) continue;
    if (w.ff < 0) w.ff = buffers[i].ff;
    w.k_lo = std::min(w.k_lo, buffers[i].k_lo);
    w.k_hi = std::max(w.k_hi, buffers[i].k_hi);
  }
  CLKTUNE_ENSURES(w.ff >= 0);
  return w;
}

double TuningPlan::average_range() const {
  if (num_groups == 0) return 0.0;
  double sum = 0.0;
  for (int g = 0; g < num_groups; ++g)
    sum += group_window(g).range();
  return sum / num_groups;
}

}  // namespace clktune::feas
