// Scenario / campaign subsystem tests: the JSON reader-writer, spec
// parsing and validation (including loud rejection of malformed input),
// sweep expansion, and an end-to-end campaign on a tiny synthetic design
// whose JSON artifact must be bit-identical across runs and thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/report_json.h"
#include "exec/local_executor.h"
#include "exec/request.h"
#include "scenario/campaign.h"
#include "scenario/scenario.h"
#include "util/json.h"

namespace clktune {
namespace {

using util::Json;
using util::JsonError;

// ----------------------------------------------------------------- JSON

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").as_double(), -1250.0);
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(JsonTest, ParsesNestedStructures) {
  const Json j = Json::parse(
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "f": -0.25})");
  EXPECT_EQ(j.at("a").as_array().size(), 3u);
  EXPECT_EQ(j.at("a").as_array()[2].at("b").as_string(), "c");
  EXPECT_TRUE(j.at("d").at("e").is_null());
  EXPECT_DOUBLE_EQ(j.at("f").as_double(), -0.25);
  EXPECT_FALSE(j.contains("missing"));
  EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(JsonTest, RoundTripPreservesValueAndOrder) {
  const std::string text =
      R"({"z":1,"a":[true,null,"x"],"m":{"k2":2.5,"k1":"é"}})";
  const Json j = Json::parse(text);
  // Member order is preserved, so a parse -> dump -> parse -> dump cycle is
  // a fixed point.
  EXPECT_EQ(j.dump(), Json::parse(j.dump()).dump());
  EXPECT_EQ(j.dump(), text);
}

TEST(JsonTest, DumpIsDeterministicAndPrettyRoundTrips) {
  Json j = Json::object();
  j.set("name", "x");
  j.set("values", Json(util::JsonArray{Json(1), Json(2.5), Json(false)}));
  EXPECT_EQ(j.dump(), j.dump());
  EXPECT_EQ(Json::parse(j.dump(2)).dump(), j.dump());
  // Integral doubles print without a decimal point; seeds survive exactly.
  Json k = Json::object();
  k.set("seed", std::uint64_t{20160314});
  EXPECT_EQ(k.dump(), "{\"seed\":20160314}");
  EXPECT_EQ(Json::parse(k.dump()).at("seed").as_uint(), 20160314u);
}

TEST(JsonTest, StringEscapes) {
  Json j = Json::object();
  j.set("s", std::string("a\"b\\c\n\t\x01"));
  const std::string dumped = j.dump();
  EXPECT_EQ(Json::parse(dumped).at("s").as_string(), "a\"b\\c\n\t\x01");
  EXPECT_NE(dumped.find("\\u0001"), std::string::npos);
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1, 2,,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\": 1,}"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("01"), JsonError);
  EXPECT_THROW(Json::parse("1."), JsonError);
  EXPECT_THROW(Json::parse("1e"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("\"bad\\q\""), JsonError);
  EXPECT_THROW(Json::parse("[1] trailing"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,\"a\":2}"), JsonError);
}

TEST(JsonTest, ErrorsCarryLineAndColumn) {
  try {
    Json::parse("{\n  \"a\": flase\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JsonTest, TypeMismatchThrows) {
  const Json j = Json::parse(R"({"a": 1.5})");
  EXPECT_THROW(j.at("a").as_string(), JsonError);
  EXPECT_THROW(j.at("a").as_int(), JsonError);   // non-integral
  EXPECT_THROW(j.at("b"), JsonError);            // missing key
  EXPECT_THROW(Json::parse("[-1]").as_array()[0].as_uint(), JsonError);
}

// ----------------------------------------------------------- ScenarioSpec

Json tiny_scenario_doc(std::uint64_t design_seed = 5) {
  Json design = Json::object();
  Json synth = Json::object();
  synth.set("name", "tiny");
  synth.set("num_flipflops", 30);
  synth.set("num_gates", 220);
  synth.set("seed", design_seed);
  design.set("synthetic", std::move(synth));

  Json clock = Json::object();
  clock.set("sigma_offset", 0.0);
  clock.set("period_samples", 400);

  Json insertion = Json::object();
  insertion.set("num_samples", 200);
  insertion.set("steps", 8);

  Json evaluation = Json::object();
  evaluation.set("samples", 400);
  evaluation.set("seed", 99);

  Json doc = Json::object();
  doc.set("name", "tiny");
  doc.set("design", std::move(design));
  doc.set("clock", std::move(clock));
  doc.set("insertion", std::move(insertion));
  doc.set("evaluation", std::move(evaluation));
  return doc;
}

TEST(ScenarioSpecTest, ParsesCompleteDocument) {
  const auto spec = scenario::ScenarioSpec::from_json(tiny_scenario_doc());
  EXPECT_EQ(spec.name, "tiny");
  EXPECT_EQ(spec.design.kind, scenario::DesignSourceKind::synthetic);
  EXPECT_EQ(spec.design.synthetic.num_flipflops, 30);
  EXPECT_EQ(spec.insertion.num_samples, 200u);
  EXPECT_EQ(spec.insertion.steps, 8);
  EXPECT_EQ(spec.evaluation.samples, 400u);
  EXPECT_EQ(spec.evaluation.seed, 99u);
  EXPECT_FALSE(spec.yield_target.has_value());
}

TEST(ScenarioSpecTest, SpecRoundTripsThroughJson) {
  const auto spec = scenario::ScenarioSpec::from_json(tiny_scenario_doc());
  const auto again = scenario::ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(spec.to_json().dump(), again.to_json().dump());
}

TEST(ScenarioSpecTest, DefaultsApplyWhenSectionsOmitted) {
  Json doc = Json::object();
  doc.set("name", "defaults");
  Json design = Json::object();
  design.set("paper_circuit", "s9234");
  doc.set("design", std::move(design));
  const auto spec = scenario::ScenarioSpec::from_json(doc);
  const core::InsertionConfig defaults;
  EXPECT_EQ(spec.insertion.num_samples, defaults.num_samples);
  EXPECT_EQ(spec.insertion.steps, defaults.steps);
  EXPECT_EQ(spec.clock.sigma_offset, 0.0);
  EXPECT_EQ(spec.clock.label(), "muT");
}

TEST(ScenarioSpecTest, RejectsMalformedSpecs) {
  // Unknown top-level key.
  Json doc = tiny_scenario_doc();
  doc.set("numsamples", 5);
  EXPECT_THROW(scenario::ScenarioSpec::from_json(doc), JsonError);

  // Typo inside a section.
  doc = tiny_scenario_doc();
  doc.find("insertion")->set("nm_samples", 5);
  EXPECT_THROW(scenario::ScenarioSpec::from_json(doc), JsonError);

  // Missing design.
  doc = tiny_scenario_doc();
  Json stripped = Json::object();
  stripped.set("name", "x");
  EXPECT_THROW(scenario::ScenarioSpec::from_json(stripped), JsonError);

  // Two design sources at once.
  doc = tiny_scenario_doc();
  doc.find("design")->set("paper_circuit", "s9234");
  EXPECT_THROW(scenario::ScenarioSpec::from_json(doc), JsonError);

  // Unknown paper circuit name surfaces on build().
  Json named = Json::object();
  named.set("name", "x");
  Json d = Json::object();
  d.set("paper_circuit", "does_not_exist");
  named.set("design", std::move(d));
  const auto spec = scenario::ScenarioSpec::from_json(named);
  EXPECT_THROW(spec.design.build(), JsonError);

  // Out-of-range values.
  doc = tiny_scenario_doc();
  doc.find("insertion")->set("num_samples", 0);
  EXPECT_THROW(scenario::ScenarioSpec::from_json(doc), JsonError);
  doc = tiny_scenario_doc();
  doc.find("clock")->set("period_ps", -5.0);
  EXPECT_THROW(scenario::ScenarioSpec::from_json(doc), JsonError);
  doc = tiny_scenario_doc();
  doc.set("yield_target", 1.5);
  EXPECT_THROW(scenario::ScenarioSpec::from_json(doc), JsonError);
}

TEST(ScenarioSpecTest, ClockLabels) {
  scenario::ClockPolicy clock;
  EXPECT_EQ(clock.label(), "muT");
  clock.sigma_offset = 1.0;
  EXPECT_EQ(clock.label(), "muT+s");
  clock.sigma_offset = 2.0;
  EXPECT_EQ(clock.label(), "muT+2s");
  clock.sigma_offset = -0.5;
  EXPECT_EQ(clock.label(), "muT-0.5s");
  clock.period_ps = 800.0;
  EXPECT_EQ(clock.label(), "fixed");
}

// -------------------------------------------------------------- Campaign

Json tiny_campaign_doc() {
  Json doc = Json::object();
  doc.set("name", "tiny_campaign");
  doc.set("base", tiny_scenario_doc());
  Json sweep = Json::object();
  sweep.set("design.synthetic.seed",
            Json(util::JsonArray{Json(5), Json(6)}));
  sweep.set("clock.sigma_offset",
            Json(util::JsonArray{Json(0.0), Json(1.0)}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

TEST(CampaignTest, ExpandsCrossProductInDeclarationOrder) {
  const auto spec = scenario::CampaignSpec::from_json(tiny_campaign_doc());
  const auto scenarios = spec.expand();
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_EQ(scenarios[0].name, "tiny/seed=5/sigma_offset=0");
  EXPECT_EQ(scenarios[1].name, "tiny/seed=5/sigma_offset=1");
  EXPECT_EQ(scenarios[2].name, "tiny/seed=6/sigma_offset=0");
  EXPECT_EQ(scenarios[3].name, "tiny/seed=6/sigma_offset=1");
  EXPECT_EQ(scenarios[0].design.synthetic.seed, 5u);
  EXPECT_EQ(scenarios[3].design.synthetic.seed, 6u);
  EXPECT_EQ(scenarios[3].clock.sigma_offset, 1.0);
  // seed_stride gives every expansion a distinct sampling seed.
  EXPECT_EQ(scenarios[1].insertion.sample_seed,
            scenarios[0].insertion.sample_seed + 1);
  EXPECT_EQ(scenarios[3].insertion.sample_seed,
            scenarios[0].insertion.sample_seed + 3);
}

TEST(CampaignTest, ExplicitSeedAxisOverridesStride) {
  // Sweeping sample_seed directly must run exactly the requested seeds,
  // not stride-perturbed ones.
  Json doc = tiny_campaign_doc();
  Json sweep = Json::object();
  sweep.set("insertion.sample_seed",
            Json(util::JsonArray{Json(100), Json(200)}));
  doc.set("sweep", std::move(sweep));
  const auto scenarios = scenario::CampaignSpec::from_json(doc).expand();
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].insertion.sample_seed, 100u);
  EXPECT_EQ(scenarios[1].insertion.sample_seed, 200u);
}

TEST(CampaignTest, RejectsMalformedCampaigns) {
  // Unknown top-level key.
  Json doc = tiny_campaign_doc();
  doc.set("sweeps", 1);
  EXPECT_THROW(scenario::CampaignSpec::from_json(doc), JsonError);
  // Missing base.
  Json no_base = Json::object();
  no_base.set("name", "x");
  EXPECT_THROW(scenario::CampaignSpec::from_json(no_base), JsonError);
  // Empty axis.
  doc = tiny_campaign_doc();
  doc.find("sweep")->set("insertion.steps", Json::array());
  EXPECT_THROW(scenario::CampaignSpec::from_json(doc), JsonError);
  // Axis path through a non-object.
  doc = tiny_campaign_doc();
  doc.find("sweep")->set("name.x", Json(util::JsonArray{Json(1)}));
  EXPECT_THROW(scenario::CampaignSpec::from_json(doc).expand(), JsonError);
  // Swept value that fails scenario validation.
  doc = tiny_campaign_doc();
  doc.find("sweep")->set("insertion.steps",
                         Json(util::JsonArray{Json(0)}));
  EXPECT_THROW(scenario::CampaignSpec::from_json(doc).expand(), JsonError);
}

TEST(CampaignTest, EndToEndDeterministicAcrossRunsAndThreadCounts) {
  auto spec = scenario::CampaignSpec::from_json(tiny_campaign_doc());
  exec::LocalExecutor executor;
  spec.threads = 4;
  const scenario::CampaignSummary a =
      executor.execute(exec::Request::for_campaign(spec)).summary;
  spec.threads = 1;
  const scenario::CampaignSummary b =
      executor.execute(exec::Request::for_campaign(spec)).summary;

  ASSERT_EQ(a.results.size(), 4u);
  EXPECT_EQ(a.scenarios_run, 4u);
  // Bit-identical artifacts: same bytes regardless of scheduling.
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());

  for (const scenario::ScenarioResult& r : a.results) {
    EXPECT_EQ(r.num_flipflops, 30);
    EXPECT_GT(r.clock_period_ps, 0.0);
    EXPECT_GE(r.yield.tuned.yield, r.yield.original.yield);
    EXPECT_EQ(r.yield.original.samples, 400u);
  }
  // muT scenarios must leave ~half the chips failing originally; tuning
  // must rescue a visible fraction.
  EXPECT_NEAR(a.results[0].yield.original.yield, 0.5, 0.2);
  EXPECT_GT(a.results[0].yield.improvement(), 0.05);
}

TEST(CampaignTest, YieldTargetsAreChecked) {
  Json doc = tiny_campaign_doc();
  doc.find("base")->set("yield_target", 1.0);  // unreachable at muT
  exec::LocalExecutor executor;
  const scenario::CampaignSummary summary =
      executor
          .execute(exec::Request::for_campaign(
              scenario::CampaignSpec::from_json(doc)))
          .summary;
  EXPECT_GT(summary.targets_missed, 0u);
  bool missed_flagged = false;
  for (const scenario::ScenarioResult& r : summary.results)
    missed_flagged |= !r.met_target;
  EXPECT_TRUE(missed_flagged);
}

// -------------------------------------------------------- Result artifacts

TEST(ReportJsonTest, TuningPlanRoundTripsThroughResultJson) {
  const auto spec = scenario::ScenarioSpec::from_json(tiny_scenario_doc());
  const scenario::ScenarioResult result = scenario::run_scenario(spec, 1);
  ASSERT_FALSE(result.insertion.plan.empty());

  const Json artifact = result.to_json();
  const feas::TuningPlan plan =
      core::tuning_plan_from_json(artifact.at("insertion"));
  EXPECT_EQ(plan.buffers.size(), result.insertion.plan.buffers.size());
  EXPECT_EQ(plan.num_groups, result.insertion.plan.num_groups);
  EXPECT_DOUBLE_EQ(plan.step_ps, result.insertion.plan.step_ps);
  for (std::size_t i = 0; i < plan.buffers.size(); ++i) {
    EXPECT_EQ(plan.buffers[i].ff, result.insertion.plan.buffers[i].ff);
    EXPECT_EQ(plan.buffers[i].k_lo, result.insertion.plan.buffers[i].k_lo);
    EXPECT_EQ(plan.buffers[i].k_hi, result.insertion.plan.buffers[i].k_hi);
    EXPECT_EQ(plan.group_of[i], result.insertion.plan.group_of[i]);
  }
  EXPECT_DOUBLE_EQ(plan.average_range(),
                   result.insertion.plan.average_range());
}

TEST(ReportJsonTest, TimingFieldsOnlyWithOptIn) {
  const auto spec = scenario::ScenarioSpec::from_json(tiny_scenario_doc());
  const scenario::ScenarioResult result = scenario::run_scenario(spec, 1);
  const std::string deterministic = result.to_json(false).dump();
  const std::string timed = result.to_json(true).dump();
  EXPECT_EQ(deterministic.find("seconds"), std::string::npos);
  EXPECT_NE(timed.find("seconds"), std::string::npos);
}

}  // namespace
}  // namespace clktune
