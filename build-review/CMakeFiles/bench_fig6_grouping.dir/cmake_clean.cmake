file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_grouping.dir/bench/fig6_grouping.cpp.o"
  "CMakeFiles/bench_fig6_grouping.dir/bench/fig6_grouping.cpp.o.d"
  "bench_fig6_grouping"
  "bench_fig6_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
