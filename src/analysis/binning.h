// Clock binning: tuned yield across a ladder of clock periods.
//
// Speed binning sells each manufactured chip at the fastest clock it can
// sustain.  Following "Design-Phase Buffer Allocation for Post-Silicon
// Clock Binning by Iterative Learning" (PAPERS.md), a binning scenario
// evaluates one tuning plan against every rung of a period ladder and
// reports, per bin, the original and tuned yield plus the fraction of chips
// whose *fastest* feasible bin it is (the sell histogram), and overall the
// unsellable fraction and the expected sell period.
//
// The ladder is nearly free: each Monte-Carlo chip is sampled exactly once
// (through the SampleDelayCache fill protocol — realised delays do not
// depend on the clock period) and every rung re-evaluates the same delays
// against its own precomputed constraint graph.  A metrics counter pair
// (sampling passes vs rung evaluations) makes the no-per-rung-resampling
// property observable and testable.  All tallies are integer counts summed
// across worker partials, so reports are bit-identical for any thread
// count.
#pragma once

#include <cstdint>
#include <vector>

#include "feas/tuning_plan.h"
#include "feas/yield_eval.h"
#include "ssta/seq_graph.h"
#include "util/json.h"

namespace clktune::analysis {

/// One rung of the ladder.
struct BinYield {
  double period_ps = 0.0;
  feas::YieldResult original;  ///< no buffers
  feas::YieldResult tuned;     ///< with the plan's buffers
  /// Chips whose fastest feasible (tuned) bin is this one.
  std::uint64_t sell = 0;
  double sell_fraction = 0.0;  ///< sell / samples
};

struct BinningReport {
  std::uint64_t samples = 0;
  std::uint64_t eval_seed = 0;
  std::vector<BinYield> bins;  ///< ascending period
  /// Chips infeasible at every rung even with tuning.
  std::uint64_t unsellable = 0;
  double unsellable_fraction = 0.0;
  /// Mean fastest-feasible period over sellable chips (0 when none sell).
  double expected_sell_period_ps = 0.0;

  /// Deterministic artifact; round-trip safe:
  /// from_json(r.to_json()).to_json() reproduces the bytes.
  util::Json to_json() const;
  static BinningReport from_json(const util::Json& j);
};

/// Evaluates `plan` at every period of `periods_ps` (must be strictly
/// ascending and positive; throws util::JsonError otherwise) over `samples`
/// fresh Monte-Carlo chips drawn with `eval_seed`.  One sampling pass total.
BinningReport compute_binning(const ssta::SeqGraph& graph,
                              const feas::TuningPlan& plan,
                              const std::vector<double>& periods_ps,
                              std::uint64_t eval_seed, std::uint64_t samples,
                              int threads = 0);

}  // namespace clktune::analysis
