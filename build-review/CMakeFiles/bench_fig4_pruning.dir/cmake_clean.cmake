file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_pruning.dir/bench/fig4_pruning.cpp.o"
  "CMakeFiles/bench_fig4_pruning.dir/bench/fig4_pruning.cpp.o.d"
  "bench_fig4_pruning"
  "bench_fig4_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
