#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace clktune::lp {
namespace {

enum class VarStatus : unsigned char { basic, at_lower, at_upper, free_zero };

// Internal solver state.  Column layout: structurals [0, n), slacks
// [n, n+m), artificials [n+m, n+2m).  The tableau holds B^-1 * A for all
// columns; `value` holds the current value of every variable.
class Simplex {
 public:
  Simplex(const Model& model, const SimplexOptions& options)
      : model_(model), opt_(options) {}

  Solution run() {
    build();
    Solution sol;
    // Phase 1: minimise the sum of artificial variables.
    Status s = iterate(phase1_cost_);
    sol.iterations = iterations_;
    if (s == Status::iteration_limit) {
      sol.status = s;
      return sol;
    }
    if (phase_objective(phase1_cost_) > opt_.feasibility_tolerance) {
      sol.status = Status::infeasible;
      return sol;
    }
    pivot_out_artificials();
    freeze_artificials();
    // Phase 2: original objective.
    s = iterate(phase2_cost_);
    sol.iterations = iterations_;
    sol.status = s;
    if (s == Status::optimal) {
      sol.x.assign(value_.begin(), value_.begin() + n_);
      sol.objective = model_.objective_value(sol.x);
    }
    return sol;
  }

 private:
  std::size_t cols() const { return static_cast<std::size_t>(n_ + 2 * m_); }
  double& tab(int row, int col) {
    return tableau_[static_cast<std::size_t>(row) * cols() +
                    static_cast<std::size_t>(col)];
  }
  double tab(int row, int col) const {
    return tableau_[static_cast<std::size_t>(row) * cols() +
                    static_cast<std::size_t>(col)];
  }

  void build() {
    n_ = model_.num_variables();
    m_ = model_.num_rows();
    const int total = n_ + 2 * m_;
    lower_.assign(static_cast<std::size_t>(total), 0.0);
    upper_.assign(static_cast<std::size_t>(total), 0.0);
    value_.assign(static_cast<std::size_t>(total), 0.0);
    status_.assign(static_cast<std::size_t>(total), VarStatus::at_lower);
    phase1_cost_.assign(static_cast<std::size_t>(total), 0.0);
    phase2_cost_.assign(static_cast<std::size_t>(total), 0.0);
    tableau_.assign(static_cast<std::size_t>(m_) * cols(), 0.0);
    basis_.assign(static_cast<std::size_t>(m_), -1);

    for (int j = 0; j < n_; ++j) {
      lower_[static_cast<std::size_t>(j)] = model_.lower(j);
      upper_[static_cast<std::size_t>(j)] = model_.upper(j);
      phase2_cost_[static_cast<std::size_t>(j)] = model_.cost(j);
      init_nonbasic(j);
    }
    // Slack variable bounds encode the row sense:  a'x + s = b.
    for (int i = 0; i < m_; ++i) {
      const int sj = n_ + i;
      const Row& row = model_.rows()[static_cast<std::size_t>(i)];
      switch (row.sense) {
        case Sense::less_equal:
          lower_[static_cast<std::size_t>(sj)] = 0.0;
          upper_[static_cast<std::size_t>(sj)] = kInf;
          break;
        case Sense::greater_equal:
          lower_[static_cast<std::size_t>(sj)] = -kInf;
          upper_[static_cast<std::size_t>(sj)] = 0.0;
          break;
        case Sense::equal:
          lower_[static_cast<std::size_t>(sj)] = 0.0;
          upper_[static_cast<std::size_t>(sj)] = 0.0;
          break;
      }
      init_nonbasic(sj);
    }
    // Residuals at the initial nonbasic point decide artificial signs.
    for (int i = 0; i < m_; ++i) {
      const Row& row = model_.rows()[static_cast<std::size_t>(i)];
      double activity = value_[static_cast<std::size_t>(n_ + i)];  // slack
      for (const Coefficient& cf : row.coefficients)
        activity += cf.value * value_[static_cast<std::size_t>(cf.var)];
      const double residual = row.rhs - activity;
      const double sign = residual >= 0.0 ? 1.0 : -1.0;
      // Tableau row = sign * original row (so the artificial column is +1).
      for (const Coefficient& cf : row.coefficients)
        tab(i, cf.var) += sign * cf.value;
      tab(i, n_ + i) = sign;          // slack column
      const int aj = n_ + m_ + i;     // artificial column
      tab(i, aj) = 1.0;
      lower_[static_cast<std::size_t>(aj)] = 0.0;
      upper_[static_cast<std::size_t>(aj)] = kInf;
      value_[static_cast<std::size_t>(aj)] = std::abs(residual);
      status_[static_cast<std::size_t>(aj)] = VarStatus::basic;
      phase1_cost_[static_cast<std::size_t>(aj)] = 1.0;
      basis_[static_cast<std::size_t>(i)] = aj;
    }
  }

  void init_nonbasic(int j) {
    const auto js = static_cast<std::size_t>(j);
    if (std::isfinite(lower_[js])) {
      status_[js] = VarStatus::at_lower;
      value_[js] = lower_[js];
    } else if (std::isfinite(upper_[js])) {
      status_[js] = VarStatus::at_upper;
      value_[js] = upper_[js];
    } else {
      status_[js] = VarStatus::free_zero;
      value_[js] = 0.0;
    }
  }

  double phase_objective(const std::vector<double>& cost) const {
    double obj = 0.0;
    for (std::size_t j = 0; j < cost.size(); ++j) obj += cost[j] * value_[j];
    return obj;
  }

  // Reduced costs d_j = c_j - c_B' * (B^-1 A_j), recomputed from scratch each
  // iteration.  O(m * cols) per iteration keeps the code simple and immune to
  // drift; model sizes here make this affordable.
  void compute_reduced_costs(const std::vector<double>& cost) {
    reduced_.assign(cols(), 0.0);
    multipliers_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i)
      multipliers_[static_cast<std::size_t>(i)] =
          cost[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
    for (std::size_t j = 0; j < cols(); ++j) {
      if (status_[j] == VarStatus::basic) continue;
      double d = cost[j];
      for (int i = 0; i < m_; ++i)
        d -= multipliers_[static_cast<std::size_t>(i)] *
             tab(i, static_cast<int>(j));
      reduced_[j] = d;
    }
  }

  bool eligible_entering(std::size_t j, double d) const {
    switch (status_[j]) {
      case VarStatus::at_lower:
        return d < -opt_.cost_tolerance;
      case VarStatus::at_upper:
        return d > opt_.cost_tolerance;
      case VarStatus::free_zero:
        return std::abs(d) > opt_.cost_tolerance;
      case VarStatus::basic:
        return false;
    }
    return false;
  }

  Status iterate(const std::vector<double>& cost) {
    int stall = 0;
    while (true) {
      if (++iterations_ > opt_.iteration_limit)
        return Status::iteration_limit;
      compute_reduced_costs(cost);

      const bool bland = stall >= opt_.stall_threshold;
      int enter = -1;
      double best_score = 0.0;
      for (std::size_t j = 0; j < cols(); ++j) {
        if (!eligible_entering(j, reduced_[j])) continue;
        if (bland) {
          enter = static_cast<int>(j);
          break;
        }
        const double score = std::abs(reduced_[j]);
        if (score > best_score) {
          best_score = score;
          enter = static_cast<int>(j);
        }
      }
      if (enter < 0) return Status::optimal;

      const auto ej = static_cast<std::size_t>(enter);
      const double d = reduced_[ej];
      // Direction of change for the entering variable.
      double dir = 0.0;
      if (status_[ej] == VarStatus::at_lower)
        dir = 1.0;
      else if (status_[ej] == VarStatus::at_upper)
        dir = -1.0;
      else
        dir = d < 0.0 ? 1.0 : -1.0;  // free variable moves downhill

      // Ratio test.
      double limit = kInf;
      int leave_row = -1;
      bool leave_at_upper = false;
      // Bound flip limit for the entering variable itself.
      if (std::isfinite(lower_[ej]) && std::isfinite(upper_[ej]))
        limit = upper_[ej] - lower_[ej];
      for (int i = 0; i < m_; ++i) {
        const double alpha = tab(i, enter);
        const double rate = -alpha * dir;  // d(basic_i)/dt
        if (std::abs(rate) <= opt_.pivot_tolerance) continue;
        const int bv = basis_[static_cast<std::size_t>(i)];
        const auto bs = static_cast<std::size_t>(bv);
        double t = kInf;
        bool hits_upper = false;
        if (rate > 0.0) {
          if (std::isfinite(upper_[bs])) {
            t = (upper_[bs] - value_[bs]) / rate;
            hits_upper = true;
          }
        } else {
          if (std::isfinite(lower_[bs])) t = (value_[bs] - lower_[bs]) / -rate;
        }
        t = std::max(t, 0.0);
        const bool tie = std::abs(t - limit) <= 1e-12;
        const bool better =
            t < limit - 1e-12 ||
            (tie && leave_row >= 0 &&
             (bland
                  ? bv < basis_[static_cast<std::size_t>(leave_row)]
                  : std::abs(alpha) >
                        std::abs(tab(leave_row, enter))));
        if (better || (t < limit && leave_row < 0)) {
          limit = t;
          leave_row = i;
          leave_at_upper = hits_upper;
        }
      }

      if (!std::isfinite(limit)) return Status::unbounded;
      stall = limit <= opt_.feasibility_tolerance ? stall + 1 : 0;

      // Apply the move to all variable values.
      const double delta = dir * limit;
      for (int i = 0; i < m_; ++i) {
        const int bv = basis_[static_cast<std::size_t>(i)];
        value_[static_cast<std::size_t>(bv)] -= tab(i, enter) * delta;
      }
      value_[ej] += delta;

      if (leave_row < 0) {
        // Bound flip: the entering variable traverses to its other bound.
        status_[ej] = status_[ej] == VarStatus::at_lower ? VarStatus::at_upper
                                                         : VarStatus::at_lower;
        // Snap exactly to the bound to avoid drift.
        value_[ej] = status_[ej] == VarStatus::at_lower ? lower_[ej] : upper_[ej];
        continue;
      }

      // Pivot: entering becomes basic in leave_row.
      const int leaving = basis_[static_cast<std::size_t>(leave_row)];
      const auto ls = static_cast<std::size_t>(leaving);
      status_[ls] = leave_at_upper ? VarStatus::at_upper : VarStatus::at_lower;
      value_[ls] = leave_at_upper ? upper_[ls] : lower_[ls];
      status_[ej] = VarStatus::basic;
      basis_[static_cast<std::size_t>(leave_row)] = enter;
      gauss_jordan(leave_row, enter);
    }
  }

  void gauss_jordan(int pivot_row, int pivot_col) {
    const double piv = tab(pivot_row, pivot_col);
    CLKTUNE_ASSERT(std::abs(piv) > opt_.pivot_tolerance);
    const double inv = 1.0 / piv;
    for (std::size_t j = 0; j < cols(); ++j) tab(pivot_row, static_cast<int>(j)) *= inv;
    tab(pivot_row, pivot_col) = 1.0;
    for (int i = 0; i < m_; ++i) {
      if (i == pivot_row) continue;
      const double factor = tab(i, pivot_col);
      if (std::abs(factor) <= 1e-14) {
        tab(i, pivot_col) = 0.0;
        continue;
      }
      for (std::size_t j = 0; j < cols(); ++j)
        tab(i, static_cast<int>(j)) -= factor * tab(pivot_row, static_cast<int>(j));
      tab(i, pivot_col) = 0.0;
    }
  }

  // Drive artificials that linger in the basis (at value ~0 after a feasible
  // phase 1) out via degenerate pivots where possible.
  void pivot_out_artificials() {
    for (int i = 0; i < m_; ++i) {
      const int bv = basis_[static_cast<std::size_t>(i)];
      if (bv < n_ + m_) continue;  // not artificial
      int enter = -1;
      for (int j = 0; j < n_ + m_; ++j) {
        if (status_[static_cast<std::size_t>(j)] == VarStatus::basic) continue;
        if (std::abs(tab(i, j)) > 1e-7) {
          enter = j;
          break;
        }
      }
      if (enter < 0) continue;  // redundant row; artificial stays pinned at 0
      const auto ej = static_cast<std::size_t>(enter);
      const auto bs = static_cast<std::size_t>(bv);
      // Degenerate pivot: values do not change (artificial is at 0).
      status_[bs] = VarStatus::at_lower;
      value_[bs] = 0.0;
      status_[ej] = VarStatus::basic;
      basis_[static_cast<std::size_t>(i)] = enter;
      gauss_jordan(i, enter);
    }
  }

  void freeze_artificials() {
    for (int i = 0; i < m_; ++i) {
      const auto aj = static_cast<std::size_t>(n_ + m_ + i);
      lower_[aj] = 0.0;
      upper_[aj] = 0.0;
      if (status_[aj] != VarStatus::basic) {
        status_[aj] = VarStatus::at_lower;
        value_[aj] = 0.0;
      }
    }
  }

  const Model& model_;
  SimplexOptions opt_;
  int n_ = 0, m_ = 0;
  std::vector<double> tableau_;
  std::vector<double> lower_, upper_, value_;
  std::vector<double> phase1_cost_, phase2_cost_;
  std::vector<double> reduced_, multipliers_;
  std::vector<VarStatus> status_;
  std::vector<int> basis_;
  long iterations_ = 0;
};

}  // namespace

double Model::infeasibility(std::span<const double> x) const {
  CLKTUNE_EXPECTS(x.size() == static_cast<std::size_t>(num_variables()));
  double worst = 0.0;
  for (int j = 0; j < num_variables(); ++j) {
    const auto js = static_cast<std::size_t>(j);
    worst = std::max(worst, lower_[js] - x[js]);
    worst = std::max(worst, x[js] - upper_[js]);
  }
  for (const Row& row : rows_) {
    double activity = 0.0;
    for (const Coefficient& cf : row.coefficients)
      activity += cf.value * x[static_cast<std::size_t>(cf.var)];
    switch (row.sense) {
      case Sense::less_equal:
        worst = std::max(worst, activity - row.rhs);
        break;
      case Sense::greater_equal:
        worst = std::max(worst, row.rhs - activity);
        break;
      case Sense::equal:
        worst = std::max(worst, std::abs(activity - row.rhs));
        break;
    }
  }
  return worst;
}

Solution solve(const Model& model, const SimplexOptions& options) {
  Simplex simplex(model, options);
  return simplex.run();
}

}  // namespace clktune::lp
