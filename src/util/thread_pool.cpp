#include "util/thread_pool.h"

#include <algorithm>

namespace clktune::util {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_strided(std::size_t n, std::size_t workers,
                      const std::function<void(std::size_t, std::size_t)>& fn) {
  workers = std::max<std::size_t>(1, std::min(workers, n == 0 ? 1 : n));
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&fn, w, n, workers] {
      for (std::size_t i = w; i < n; i += workers) fn(w, i);
    });
  }
  for (auto& t : threads) t.join();
}

void parallel_chunks(
    std::size_t n, std::size_t workers,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  workers = std::max<std::size_t>(1, std::min(workers, n == 0 ? 1 : n));
  if (workers == 1) {
    fn(0, 0, n);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = std::min(n, w * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    threads.emplace_back([&fn, w, begin, end] { fn(w, begin, end); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace clktune::util
