// Fault-injection and robustness tests.  The load-bearing properties:
// the registry is deterministic (same plan + same poll sequence = same
// fault schedule) and free when disarmed; the atomic file commit never
// leaves a torn final file except under an explicit `truncate` fault;
// torn envelopes — cache or job store — degrade to a self-healing miss /
// a skipped load, never a crash; a cache that cannot write its disk
// layer goes read-only instead of aborting the campaign; a stalled job
// is re-queued by the watchdog and still finishes byte-identically; a
// draining daemon finishes in-flight work and a restart recovers the
// rest; and the capstone chaos soak: a 3-daemon fleet campaign under a
// seeded plan of resets, torn frames, one ENOSPC and a daemon
// stop/restart produces a summary byte-identical to a clean local run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.h"
#include "exec/local_executor.h"
#include "exec/request.h"
#include "fault/fault.h"
#include "fleet/fleet_executor.h"
#include "fleet/fleet_spec.h"
#include "jobs/job_scheduler.h"
#include "jobs/job_store.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/backoff.h"
#include "util/fs.h"
#include "util/json.h"
#include "util/socket.h"

namespace clktune {
namespace {

using util::Json;

Json tiny_scenario_doc() {
  return Json::parse(R"({
    "name": "tiny",
    "design": {"synthetic": {"name": "tiny", "num_flipflops": 30,
                             "num_gates": 220, "seed": 5}},
    "clock": {"sigma_offset": 0.0, "period_samples": 400},
    "insertion": {"num_samples": 200, "steps": 8},
    "evaluation": {"samples": 400, "seed": 99}
  })");
}

/// A 4-cell campaign: enough cells that faults land mid-campaign.
Json small_campaign_doc() {
  Json doc = Json::object();
  doc.set("name", "fault_campaign");
  doc.set("base", tiny_scenario_doc());
  Json sweep = Json::object();
  sweep.set("clock.sigma_offset",
            Json(util::JsonArray{Json(0.0), Json(1.0)}));
  sweep.set("insertion.num_samples",
            Json(util::JsonArray{Json(150), Json(200)}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

std::filesystem::path fresh_dir(const std::string& stem) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      (stem + "_" + std::to_string(::getpid()) + "_" +
       ::testing::UnitTest::GetInstance()->current_test_info()->name());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Every test leaves the process disarmed, whatever path it exits on.
class FaultGuard {
 public:
  ~FaultGuard() { fault::disarm(); }
};

// --------------------------------------------------------------- registry

TEST(FaultRegistryTest, DisarmedSitesAreInertNoOps) {
  fault::disarm();
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(static_cast<bool>(fault::poll("socket.write")));
  EXPECT_FALSE(static_cast<bool>(fault::check("socket.read")));
  EXPECT_FALSE(fault::status_json().at("armed").as_bool());
}

TEST(FaultRegistryTest, NthEveryAndCountTriggerDeterministically) {
  FaultGuard guard;
  fault::arm(Json::parse(R"({"sites": {
    "t.nth":   {"action": "fail", "nth": 3},
    "t.every": {"action": "fail", "every": 2, "count": 2}
  }})"));
  ASSERT_TRUE(fault::armed());

  // nth: exactly the third poll fires, nothing before or after.
  std::vector<bool> nth_fires;
  for (int i = 0; i < 6; ++i)
    nth_fires.push_back(static_cast<bool>(fault::poll("t.nth")));
  EXPECT_EQ(nth_fires, (std::vector<bool>{false, false, true, false, false,
                                          false}));

  // every 2, count 2: hits 2 and 4 fire, the count cap silences hit 6.
  std::vector<bool> every_fires;
  for (int i = 0; i < 6; ++i)
    every_fires.push_back(static_cast<bool>(fault::poll("t.every")));
  EXPECT_EQ(every_fires, (std::vector<bool>{false, true, false, true, false,
                                            false}));

  // Unmatched sites never fire.
  EXPECT_FALSE(static_cast<bool>(fault::poll("t.unlisted")));
}

TEST(FaultRegistryTest, ProbabilityStreamIsSeededAndReproducible) {
  FaultGuard guard;
  const Json plan = Json::parse(
      R"({"seed": 42, "sites": {"t.p": {"action": "fail",
                                        "probability": 0.5}}})");
  const auto run = [&plan] {
    fault::arm(plan);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i)
      fires.push_back(static_cast<bool>(fault::poll("t.p")));
    return fires;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);  // re-arming replays the same schedule

  const std::size_t fired =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 50u);  // p=0.5 over 200 polls; binomial tails are tiny
  EXPECT_LT(fired, 150u);

  // A different seed gives a different schedule.
  fault::arm(Json::parse(
      R"({"seed": 43, "sites": {"t.p": {"action": "fail",
                                        "probability": 0.5}}})"));
  std::vector<bool> reseeded;
  for (int i = 0; i < 200; ++i)
    reseeded.push_back(static_cast<bool>(fault::poll("t.p")));
  EXPECT_NE(first, reseeded);
}

TEST(FaultRegistryTest, CheckMapsActionsToNamedExceptions) {
  FaultGuard guard;
  fault::arm(Json::parse(R"({"sites": {
    "t.fail":   {"action": "fail"},
    "t.enospc": {"action": "enospc"},
    "t.reset":  {"action": "reset"},
    "t.delay":  {"action": "delay", "delay_ms": 1}
  }})"));
  try {
    fault::check("t.fail");
    FAIL() << "expected an injected failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fault injected at t.fail"),
              std::string::npos);
  }
  try {
    fault::check("t.enospc");
    FAIL() << "expected an injected ENOSPC";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("ENOSPC"), std::string::npos);
  }
  EXPECT_THROW(fault::check("t.reset"), std::runtime_error);
  // delay continues normally (after sleeping) and counts as a fire.
  const std::uint64_t before = fault::injected_total();
  EXPECT_FALSE(static_cast<bool>(fault::check("t.delay")));
  EXPECT_EQ(fault::injected_total(), before + 1);
}

TEST(FaultRegistryTest, MalformedPlansAreRejectedAtArmTime) {
  FaultGuard guard;
  // Unknown action.
  EXPECT_ANY_THROW(fault::arm(Json::parse(
      R"({"sites": {"s": {"action": "explode"}}})")));
  // Missing action.
  EXPECT_ANY_THROW(fault::arm(Json::parse(R"({"sites": {"s": {"nth": 1}}})")));
  // A rejected plan must not leave the registry half-armed.
  EXPECT_FALSE(fault::armed());
}

TEST(FaultRegistryTest, StatusJsonReportsHitsAndFires) {
  FaultGuard guard;
  fault::arm(Json::parse(
      R"({"sites": {"t.s": {"action": "fail", "every": 2}}})"));
  for (int i = 0; i < 4; ++i) fault::poll("t.s");
  const Json status = fault::status_json();
  EXPECT_TRUE(status.at("armed").as_bool());
  const Json& site = status.at("sites").at("t.s");
  EXPECT_EQ(site.at("action").as_string(), "fail");
  EXPECT_EQ(site.at("hits").as_uint(), 4u);
  EXPECT_EQ(site.at("fires").as_uint(), 2u);
}

// ---------------------------------------------------------------- backoff

TEST(BackoffTest, DelaysAreDeterministicCappedAndJittered) {
  util::Backoff a(20, 1500);
  util::Backoff b(20, 1500);
  for (std::size_t attempt = 0; attempt < 24; ++attempt) {
    const int da = a.delay_ms(attempt);
    EXPECT_EQ(da, b.delay_ms(attempt));  // same seed, same stream
    const int raw = static_cast<int>(
        std::min<std::uint64_t>(1500, 20ull << std::min(attempt, 16ul)));
    EXPECT_GE(da, raw / 2);  // jitter floor is half the raw delay
    EXPECT_LT(da, raw + 1);
    EXPECT_LE(da, 1500);
  }
  // Different seeds give different jitter streams.
  util::Backoff c(20, 1500, 7);
  bool differs = false;
  for (std::size_t attempt = 0; attempt < 24 && !differs; ++attempt)
    differs = c.delay_ms(attempt) != a.delay_ms(attempt);
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------- atomic file commits

TEST(AtomicWriteTest, ShortWriteFailsCommitAndLeavesNoFile) {
  FaultGuard guard;
  const std::filesystem::path dir = fresh_dir("clktune_fault_fs");
  const std::string target = (dir / "entry.json").string();

  fault::arm(Json::parse(R"({"sites": {
    "tfs.write": {"action": "short_write", "nth": 1, "keep_bytes": 4}
  }})"));
  EXPECT_THROW(
      util::write_file_atomic(target, "0123456789", true, "tfs"),
      std::runtime_error);
  // The torn temporary is cleaned up and the final path never appears.
  EXPECT_FALSE(std::filesystem::exists(target));
  EXPECT_TRUE(std::filesystem::is_empty(dir));

  // The next commit (fault consumed) succeeds durably.
  util::write_file_atomic(target, "0123456789", true, "tfs");
  std::ifstream in(target);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "0123456789");
  std::filesystem::remove_all(dir);
}

TEST(AtomicWriteTest, FsyncAndRenameFaultsNeverCommitAPartialFile) {
  FaultGuard guard;
  const std::filesystem::path dir = fresh_dir("clktune_fault_fs");
  const std::string target = (dir / "entry.json").string();

  fault::arm(Json::parse(R"({"sites": {
    "tfs.fsync":  {"action": "enospc", "nth": 1},
    "tfs.rename": {"action": "fail", "nth": 1}
  }})"));
  EXPECT_THROW(util::write_file_atomic(target, "abc", true, "tfs"),
               std::runtime_error);  // the fsync ENOSPC
  EXPECT_THROW(util::write_file_atomic(target, "abc", true, "tfs"),
               std::runtime_error);  // the rename failure
  EXPECT_FALSE(std::filesystem::exists(target));
  EXPECT_TRUE(std::filesystem::is_empty(dir));  // no leaked temporaries
  std::filesystem::remove_all(dir);
}

TEST(AtomicWriteTest, TruncateFaultCommitsATornFile) {
  // `truncate` deliberately commits the torn bytes — it models a file torn
  // by a crash *after* rename, and is the generator the torn-envelope
  // tests below build on.
  FaultGuard guard;
  const std::filesystem::path dir = fresh_dir("clktune_fault_fs");
  const std::string target = (dir / "entry.json").string();

  fault::arm(Json::parse(R"({"sites": {
    "tfs.write": {"action": "truncate", "nth": 1, "keep_bytes": 4}
  }})"));
  util::write_file_atomic(target, "0123456789", true, "tfs");
  std::ifstream in(target);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "0123");
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------- degraded-mode cache

TEST(CacheDegradedTest, DiskWriteFailureDegradesToReadOnlyNotAnAbort) {
  FaultGuard guard;
  const std::filesystem::path dir = fresh_dir("clktune_fault_cache");
  cache::ResultCache cache(dir.string());

  Json artifact = Json::object();
  artifact.set("name", "a");
  cache.put("aaaa", artifact);  // clean commit
  ASSERT_TRUE(cache.get("aaaa").has_value());
  EXPECT_FALSE(cache.degraded());

  fault::arm(Json::parse(
      R"({"sites": {"cache.write": {"action": "enospc", "nth": 1}}})"));
  Json second = Json::object();
  second.set("name", "b");
  cache.put("bbbb", second);  // must NOT throw: degrade instead
  EXPECT_TRUE(cache.degraded());
  EXPECT_EQ(cache.stats().write_failures, 1u);

  // The memory layer still serves the failed put; the earlier disk entry
  // still serves; new puts skip the disk silently.
  EXPECT_TRUE(cache.get("bbbb").has_value());
  EXPECT_TRUE(cache.get("aaaa").has_value());
  fault::disarm();
  Json third = Json::object();
  third.set("name", "c");
  cache.put("cccc", third);  // degraded is sticky: no disk write attempted
  EXPECT_TRUE(cache.get("cccc").has_value());
  EXPECT_FALSE(std::filesystem::exists(dir / "bbbb.json"));
  EXPECT_FALSE(std::filesystem::exists(dir / "cccc.json"));
  EXPECT_EQ(cache.stats().write_failures, 1u);

  // A fresh instance on the same directory starts healthy.
  cache::ResultCache fresh(dir.string());
  EXPECT_FALSE(fresh.degraded());
  EXPECT_TRUE(fresh.get("aaaa").has_value());
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------------- torn envelopes

TEST(TornEnvelopeTest, TornCacheEntryIsASelfHealingMissNotAThrow) {
  const std::filesystem::path dir = fresh_dir("clktune_fault_torn");
  Json artifact = Json::object();
  artifact.set("name", "torn");
  {
    cache::ResultCache cache(dir.string());
    cache.put("feedbeef", artifact);
  }
  // Tear the envelope mid-JSON, as a crash after a truncate fault would.
  const std::filesystem::path entry = dir / "feedbeef.json";
  ASSERT_TRUE(std::filesystem::exists(entry));
  std::filesystem::resize_file(entry,
                               std::filesystem::file_size(entry) / 2);

  cache::ResultCache reopened(dir.string());
  EXPECT_FALSE(reopened.get("feedbeef").has_value());  // miss, no throw
  EXPECT_EQ(reopened.stats().self_heals, 1u);

  // Re-putting overwrites the torn entry and the key serves again.
  reopened.put("feedbeef", artifact);
  cache::ResultCache third(dir.string());
  EXPECT_TRUE(third.get("feedbeef").has_value());
  std::filesystem::remove_all(dir);
}

TEST(TornEnvelopeTest, TornJobEnvelopeIsSkippedOnLoadIntactOnesRequeue) {
  const std::filesystem::path dir = fresh_dir("clktune_fault_jobs");
  std::string torn_id;
  std::string intact_id;
  {
    jobs::JobStore store(dir.string());
    store.load();
    exec::Request request = exec::Request::from_json(small_campaign_doc());
    request.validate();
    torn_id = store.create(request.document(), "campaign", "torn", {}, 4).id;
    intact_id =
        store.create(request.document(), "campaign", "intact", {}, 4).id;
    store.set_state(intact_id, jobs::JobState::running);
  }
  const std::filesystem::path torn_path = dir / (torn_id + ".json");
  ASSERT_TRUE(std::filesystem::exists(torn_path));
  std::filesystem::resize_file(torn_path,
                               std::filesystem::file_size(torn_path) / 2);

  // Reload: the torn envelope is skipped (a daemon restart must never
  // crash on a half-written file), the intact running one re-queues.
  jobs::JobStore recovered(dir.string());
  EXPECT_EQ(recovered.load(), 1u);
  EXPECT_FALSE(recovered.get(torn_id).has_value());
  ASSERT_TRUE(recovered.get(intact_id).has_value());
  EXPECT_EQ(recovered.get(intact_id)->state, jobs::JobState::queued);
  const auto claimed = recovered.claim_next();
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->id, intact_id);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------ socket seams

TEST(SocketFaultTest, ConnectReadAndWriteSitesInjectNamedFailures) {
  FaultGuard guard;
  const util::TcpSocket listener = util::tcp_listen(0);
  const std::uint16_t port = util::tcp_local_port(listener);

  fault::arm(Json::parse(
      R"({"sites": {"socket.connect": {"action": "reset", "nth": 1}}})"));
  try {
    util::tcp_connect("127.0.0.1", port, 1000);
    FAIL() << "expected the injected connect reset";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("socket.connect"),
              std::string::npos);
  }
  // The fault is consumed: the second connect succeeds for real.
  const util::TcpSocket alive = util::tcp_connect("127.0.0.1", port, 1000);

  fault::arm(Json::parse(R"({"sites": {
    "socket.write": {"action": "truncate", "nth": 1, "keep_bytes": 2}
  }})"));
  try {
    util::tcp_write_all(alive, "0123456789\n");
    FAIL() << "expected the injected torn frame";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("torn"), std::string::npos);
  }
}

// ---------------------------------------------------------- stuck-job watchdog

TEST(WatchdogTest, StalledJobIsRequeuedAndStillFinishes) {
  FaultGuard guard;
  const std::filesystem::path dir = fresh_dir("clktune_fault_watchdog");
  cache::ResultCache cache((dir / "cache").string());

  // The first checkpoint sleeps far past the stall deadline, so the
  // watchdog flags the job; the executor observes the flag before the
  // next cell and the worker re-queues instead of cancelling.  The rerun
  // replays finished cells from the cache and completes.
  fault::arm(Json::parse(R"({"sites": {
    "scheduler.checkpoint": {"action": "delay", "nth": 1,
                              "delay_ms": 1500}
  }})"));
  jobs::JobSchedulerOptions options;
  options.workers = 1;
  options.threads = 2;
  options.stall_timeout_ms = 300;
  jobs::JobScheduler scheduler((dir / "jobs").string(), &cache, options);
  scheduler.start();
  const std::uint64_t requeues_before =
      obs::Registry::global()
          .counter("clktune_jobs_stall_requeues_total",
                   "Stalled jobs re-queued by the watchdog")
          .value();

  const jobs::JobRecord job = scheduler.submit(small_campaign_doc(), {});
  jobs::JobRecord finished = job;
  for (int i = 0; i < 3000; ++i) {
    const auto state = scheduler.get(job.id);
    ASSERT_TRUE(state.has_value());
    finished = *state;
    if (finished.state == jobs::JobState::done ||
        finished.state == jobs::JobState::error)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(finished.state, jobs::JobState::done);
  EXPECT_EQ(finished.done_indices.size(), 4u);
  EXPECT_GE(obs::Registry::global()
                .counter("clktune_jobs_stall_requeues_total",
                         "Stalled jobs re-queued by the watchdog")
                .value(),
            requeues_before + 1);

  // The requeued job's attach stream is still byte-identical to a clean
  // synchronous sweep.
  exec::LocalExecutor local;
  const exec::Outcome reference =
      local.execute(exec::Request::from_json(small_campaign_doc()));
  std::vector<std::string> streamed;
  scheduler.attach(job.id, [&streamed](const Json& frame) {
    streamed.push_back(frame.at("result").dump());
    return true;
  });
  ASSERT_EQ(streamed.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(streamed[i], reference.summary.results[i].to_json().dump());

  scheduler.stop();
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------ drain + prune

class ServeFaultFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_dir_ = fresh_dir("clktune_fault_serve");
    start_server();
  }
  void TearDown() override {
    fault::disarm();
    if (server_ != nullptr) stop_server();
    std::filesystem::remove_all(cache_dir_);
  }

  void start_server() {
    serve::ServeOptions options;
    options.port = port_;  // 0 first time; the restart reuses the port
    options.threads = 2;
    options.cache_dir = cache_dir_.string();
    options.drain_grace_ms = 10000;
    server_ = std::make_unique<serve::ScenarioServer>(std::move(options));
    server_->start();
    port_ = server_->port();
    thread_ = std::thread([s = server_.get()] { s->serve_forever(); });
  }

  void stop_server() {
    server_->stop();
    if (thread_.joinable()) thread_.join();
    server_.reset();
  }

  serve::SubmitOutcome raw(const Json& wire) {
    return serve::submit_raw("127.0.0.1", port_, wire);
  }

  Json verb(const std::string& cmd) {
    Json wire = Json::object();
    wire.set("cmd", cmd);
    return raw(wire).final_event;
  }

  std::unique_ptr<serve::ScenarioServer> server_;
  std::thread thread_;
  std::uint16_t port_ = 0;
  std::filesystem::path cache_dir_;
};

TEST_F(ServeFaultFixture, DrainVerbStopsAdmissionFinishesAndExitsCleanly) {
  // Seed one finished job so the restart has something to recover.
  Json submit = Json::object();
  submit.set("cmd", "submit");
  submit.set("doc", tiny_scenario_doc());
  const Json admitted = raw(submit).final_event;
  ASSERT_EQ(admitted.at("event").as_string(), "job");
  const std::string id = admitted.at("id").as_string();

  const Json draining = verb("drain");
  ASSERT_EQ(draining.at("event").as_string(), "draining");
  EXPECT_TRUE(draining.at("ok").as_bool());

  // serve_forever must come home on its own: admission is closed, the
  // in-flight work finishes inside the grace window.
  thread_.join();
  EXPECT_TRUE(server_->draining());
  server_.reset();

  // A restart on the same directory still knows the job, and its attach
  // stream matches a clean direct run byte for byte.
  start_server();
  Json status = Json::object();
  status.set("cmd", "status");
  status.set("id", id);
  Json frame = raw(status).final_event;
  ASSERT_EQ(frame.at("event").as_string(), "job");
  for (int i = 0; i < 600 && frame.at("state").as_string() != "done"; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    frame = raw(status).final_event;
  }
  ASSERT_EQ(frame.at("state").as_string(), "done");

  Json attach = Json::object();
  attach.set("cmd", "attach");
  attach.set("id", id);
  const serve::SubmitOutcome stream = raw(attach);
  ASSERT_TRUE(stream.ok());
  ASSERT_EQ(stream.results.size(), 1u);
  const scenario::ScenarioResult direct = scenario::run_scenario(
      scenario::ScenarioSpec::from_json(tiny_scenario_doc()), 2);
  EXPECT_EQ(stream.results[0].dump(), direct.to_json().dump());
}

TEST_F(ServeFaultFixture, PruneVerbDropsTerminalEnvelopes) {
  Json submit = Json::object();
  submit.set("cmd", "submit");
  submit.set("doc", tiny_scenario_doc());
  const std::string id = raw(submit).final_event.at("id").as_string();
  Json status = Json::object();
  status.set("cmd", "status");
  status.set("id", id);
  Json frame = raw(status).final_event;
  for (int i = 0; i < 600 && frame.at("state").as_string() != "done"; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    frame = raw(status).final_event;
  }
  ASSERT_EQ(frame.at("state").as_string(), "done");

  Json prune = Json::object();
  prune.set("cmd", "prune");
  prune.set("keep", 0);
  const Json pruned = raw(prune).final_event;
  ASSERT_EQ(pruned.at("event").as_string(), "pruned");
  EXPECT_EQ(pruned.at("removed").as_uint(), 1u);
  EXPECT_EQ(pruned.at("keep").as_uint(), 0u);

  // The envelope is gone from memory and disk.
  EXPECT_EQ(raw(status).final_event.at("event").as_string(), "error");
  EXPECT_TRUE(std::filesystem::is_empty(cache_dir_ / "jobs"));
}

// -------------------------------------------------------------- chaos soak

TEST(ChaosSoakTest, SeededFaultStormFleetStaysByteIdenticalToCleanRun) {
  FaultGuard guard;
  const exec::Request request =
      exec::Request::from_json(small_campaign_doc());

  // The clean reference, computed before any fault is armed.
  exec::LocalExecutor local;
  const std::string expected = local.execute(request).artifact().dump();

  const std::filesystem::path cache_dir = fresh_dir("clktune_fault_soak");
  std::vector<std::unique_ptr<serve::ScenarioServer>> servers;
  std::vector<std::thread> accept_threads;
  for (std::size_t i = 0; i < 3; ++i) {
    serve::ServeOptions options;
    options.port = 0;
    options.threads = 2;
    options.cache_dir = cache_dir.string();
    servers.push_back(
        std::make_unique<serve::ScenarioServer>(std::move(options)));
    servers.back()->start();
    accept_threads.emplace_back(
        [s = servers.back().get()] { s->serve_forever(); });
  }
  fleet::FleetSpec pool;
  for (const auto& server : servers)
    pool.members.push_back({"127.0.0.1", server->port(), 1});

  // The storm, seeded so a failure reproduces: periodic torn frames and
  // connection resets on the shared socket seams (client and daemon ends
  // both poll them), one ENOSPC that degrades one daemon's cache to
  // read-only mid-campaign.  Every count is capped so the fleet's retry
  // budget always outlasts the plan.
  fault::arm(Json::parse(R"({"seed": 20160, "sites": {
    "socket.write":  {"action": "truncate", "every": 6, "keep_bytes": 64,
                       "count": 4},
    "socket.read":   {"action": "reset", "every": 9, "count": 3},
    "cache.write":   {"action": "enospc", "nth": 1, "count": 1}
  }})"));
  const std::uint64_t injected_before = fault::injected_total();

  fleet::FleetOptions options;
  options.max_retries = 25;  // storm headroom; a clean pool needs 1
  options.reprobe_interval_ms = 50;
  fleet::FleetExecutor executor(std::move(pool), options);

  std::string produced;
  std::string failure;
  std::thread campaign([&] {
    try {
      produced = executor.execute(request).artifact().dump();
    } catch (const std::exception& e) {
      failure = e.what();
    }
  });

  // Mid-storm, daemon 0 goes away entirely and comes back on the same
  // port — the reprobe must fold it back into the pool.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const std::uint16_t lost_port = servers[0]->port();
  servers[0]->stop();
  accept_threads[0].join();
  servers[0].reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  serve::ServeOptions revived_options;
  revived_options.port = lost_port;
  revived_options.threads = 2;
  revived_options.cache_dir = cache_dir.string();
  auto revived =
      std::make_unique<serve::ScenarioServer>(std::move(revived_options));
  revived->start();
  std::thread revived_thread([s = revived.get()] { s->serve_forever(); });

  campaign.join();
  fault::disarm();

  EXPECT_EQ(failure, "");
  EXPECT_EQ(produced, expected);  // byte identity under the storm
  EXPECT_GT(fault::injected_total(), injected_before);  // storm was real

  revived->stop();
  revived_thread.join();
  for (std::size_t i = 1; i < servers.size(); ++i) {
    servers[i]->stop();
    accept_threads[i].join();
  }
  std::filesystem::remove_all(cache_dir);
}

}  // namespace
}  // namespace clktune
