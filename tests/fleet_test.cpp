// Fleet-orchestration tests.  The load-bearing property is fault-tolerant
// byte-identity: a campaign fanned out work-stealing style over a daemon
// pool — including a pool that loses a daemon mid-campaign — must produce
// a summary byte-identical to an unsharded LocalExecutor sweep, with every
// observer cell reported exactly once.  Also covered: pool-spec parsing,
// the health probe, requeue onto survivors, retry exhaustion and scenario
// failover.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/local_executor.h"
#include "exec/observer.h"
#include "exec/request.h"
#include "fleet/fleet_executor.h"
#include "fleet/fleet_spec.h"
#include "scenario/scenario.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/socket.h"

namespace clktune {
namespace {

using util::Json;

Json tiny_scenario_doc() {
  return Json::parse(R"({
    "name": "tiny",
    "design": {"synthetic": {"name": "tiny", "num_flipflops": 30,
                             "num_gates": 220, "seed": 5}},
    "clock": {"sigma_offset": 0.0, "period_samples": 400},
    "insertion": {"num_samples": 200, "steps": 8},
    "evaluation": {"samples": 400, "seed": 99}
  })");
}

/// A 4-cell campaign, so a killed daemon always leaves work to requeue.
Json small_campaign_doc() {
  Json doc = Json::object();
  doc.set("name", "fleet_campaign");
  doc.set("base", tiny_scenario_doc());
  Json sweep = Json::object();
  sweep.set("clock.sigma_offset",
            Json(util::JsonArray{Json(0.0), Json(1.0)}));
  sweep.set("insertion.num_samples",
            Json(util::JsonArray{Json(150), Json(200)}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

/// A loopback port that refuses connections: bound, then released.
std::uint16_t dead_port() {
  const util::TcpSocket listener = util::tcp_listen(0);
  return util::tcp_local_port(listener);
}

/// Thread-safe observer that counts every delivery per index, so duplicate
/// cells from a requeue are detectable.
class CountingObserver : public exec::Observer {
 public:
  void on_begin(std::size_t total, std::size_t own) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    total_cells = total;
    own_cells = own;
    ++begins;
  }
  void on_cell(const exec::CellEvent& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++deliveries[event.index];
  }

  std::set<std::size_t> indices() {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::set<std::size_t> seen;
    for (const auto& [index, count] : deliveries) seen.insert(index);
    return seen;
  }
  bool each_exactly_once(std::size_t expected) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (deliveries.size() != expected) return false;
    for (const auto& [index, count] : deliveries)
      if (count != 1) return false;
    return true;
  }

  std::mutex mutex_;
  std::size_t total_cells = 0;
  std::size_t own_cells = 0;
  int begins = 0;
  std::map<std::size_t, int> deliveries;
};

/// Three daemons on ephemeral loopback ports, accept loops on worker
/// threads.  Individual daemons can be killed mid-test.
class FleetFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kDaemons = 3;

  void SetUp() override {
    // One shared artifact directory: work stealing places units
    // nondeterministically, but any daemon can then serve any cell warm.
    cache_dir_ = std::filesystem::temp_directory_path() /
                 ("clktune_fleet_test_" + std::to_string(::getpid()) + "_" +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(cache_dir_);
    for (std::size_t i = 0; i < kDaemons; ++i) {
      serve::ServeOptions options;
      options.port = 0;
      options.threads = 2;
      options.cache_dir = cache_dir_.string();
      servers_.push_back(
          std::make_unique<serve::ScenarioServer>(std::move(options)));
      servers_.back()->start();
      threads_.emplace_back(
          [server = servers_.back().get()] { server->serve_forever(); });
    }
  }

  void TearDown() override {
    for (auto& server : servers_) server->stop();
    for (auto& thread : threads_)
      if (thread.joinable()) thread.join();
    std::filesystem::remove_all(cache_dir_);
  }

  fleet::FleetMember member(std::size_t i) const {
    return {"127.0.0.1", servers_[i]->port(), 1};
  }

  fleet::FleetSpec whole_pool() const {
    fleet::FleetSpec spec;
    for (std::size_t i = 0; i < kDaemons; ++i)
      spec.members.push_back(member(i));
    return spec;
  }

  std::vector<std::unique_ptr<serve::ScenarioServer>> servers_;
  std::vector<std::thread> threads_;
  std::filesystem::path cache_dir_;
};

// ------------------------------------------------------------ byte identity

TEST_F(FleetFixture, FleetSummaryMatchesLocalSweepByteForByte) {
  const exec::Request request = exec::Request::from_json(small_campaign_doc());

  exec::LocalExecutor local;
  const std::string expected = local.execute(request).artifact().dump();

  fleet::FleetExecutor executor(whole_pool());
  CountingObserver observer;
  const exec::Outcome outcome = executor.execute(request, &observer);

  EXPECT_EQ(outcome.artifact().dump(), expected);
  EXPECT_EQ(outcome.backend, "fleet(3)");
  EXPECT_EQ(outcome.scenarios_run, 4u);
  EXPECT_EQ(observer.begins, 1);
  EXPECT_EQ(observer.total_cells, 4u);
  EXPECT_EQ(observer.own_cells, 4u);
  EXPECT_TRUE(observer.each_exactly_once(4));
}

TEST_F(FleetFixture, MultiCellUnitsAndDaemonCachesStayByteIdentical) {
  const exec::Request request = exec::Request::from_json(small_campaign_doc());
  exec::LocalExecutor local;
  const std::string expected = local.execute(request).artifact().dump();

  fleet::FleetOptions options;
  options.unit_cells = 3;  // uneven split: units of 3 and 1 cells
  fleet::FleetExecutor executor(whole_pool(), options);
  const exec::Outcome cold = executor.execute(request);
  EXPECT_EQ(cold.artifact().dump(), expected);
  EXPECT_EQ(cold.scenarios_cached, 0u);

  // Repeat: every cell now comes from some daemon's content-addressed
  // cache, and the bytes cannot tell.
  const exec::Outcome warm = executor.execute(request);
  EXPECT_EQ(warm.artifact().dump(), expected);
  EXPECT_EQ(warm.scenarios_cached, 4u);
}

TEST_F(FleetFixture, AnalysisKindCampaignsStayByteIdenticalAcrossTheFleet) {
  // Analysis kinds ride inside the scenario documents, so a mixed fleet
  // run needs no fleet/serve awareness of them at all.  A criticality
  // campaign (2 cells) and a lone binning scenario, fleet vs local.
  Json crit_base = tiny_scenario_doc();
  crit_base.set("kind", "criticality");
  Json options = Json::object();
  options.set("top_k", 5);
  crit_base.set("criticality", std::move(options));
  Json campaign = Json::object();
  campaign.set("name", "crit_campaign");
  campaign.set("base", std::move(crit_base));
  Json sweep = Json::object();
  sweep.set("clock.sigma_offset",
            Json(util::JsonArray{Json(0.0), Json(1.0)}));
  campaign.set("sweep", std::move(sweep));
  const exec::Request crit_request = exec::Request::from_json(campaign);

  exec::LocalExecutor local;
  const std::string crit_expected =
      local.execute(crit_request).artifact().dump();
  fleet::FleetExecutor executor(whole_pool());
  EXPECT_EQ(executor.execute(crit_request).artifact().dump(), crit_expected);
  const Json crit_summary = Json::parse(crit_expected);
  for (const Json& r : crit_summary.at("results").as_array())
    EXPECT_EQ(r.at("kind").as_string(), "criticality");

  Json bin_doc = tiny_scenario_doc();
  bin_doc.set("kind", "binning");
  Json bins = Json::object();
  bins.set("sigma_offsets",
           Json(util::JsonArray{Json(0.0), Json(2.0)}));
  bin_doc.set("bins", std::move(bins));
  exec::Request bin_request = exec::Request::from_json(bin_doc);
  bin_request.threads = 2;  // pin to the daemons' worker count
  const scenario::ScenarioResult direct = scenario::run_scenario(
      scenario::ScenarioSpec::from_json(bin_doc), 2);
  const exec::Outcome via_fleet = executor.execute(bin_request);
  EXPECT_EQ(via_fleet.artifact().dump(), direct.to_json().dump());
}

// ---------------------------------------------------------- fault injection

TEST_F(FleetFixture, DaemonKilledMidCampaignIsRequeuedByteIdentically) {
  const exec::Request request = exec::Request::from_json(small_campaign_doc());
  exec::LocalExecutor local;
  const std::string expected = local.execute(request).artifact().dump();

  // The first finished cell kills daemon 0 outright: its accept loop exits
  // and every connection it holds is severed, so an in-flight unit fails
  // mid-stream and must be requeued onto the two survivors.
  struct Killer : CountingObserver {
    explicit Killer(serve::ScenarioServer* victim) : victim_(victim) {}
    void on_cell(const exec::CellEvent& event) override {
      CountingObserver::on_cell(event);
      if (!killed_.exchange(true)) victim_->stop();
    }
    serve::ScenarioServer* victim_;
    std::atomic<bool> killed_{false};
  } observer{servers_[0].get()};

  fleet::FleetExecutor executor(whole_pool());
  const exec::Outcome outcome = executor.execute(request, &observer);
  EXPECT_EQ(outcome.artifact().dump(), expected);
  EXPECT_TRUE(observer.each_exactly_once(4));
  EXPECT_TRUE(observer.killed_.load());
}

TEST_F(FleetFixture, DeadPoolMemberIsDiscoveredAndWorkRequeued) {
  const exec::Request request = exec::Request::from_json(small_campaign_doc());
  exec::LocalExecutor local;
  const std::string expected = local.execute(request).artifact().dump();

  fleet::FleetSpec pool;
  pool.members.push_back({"127.0.0.1", dead_port(), 1});
  pool.members.push_back(member(1));

  // probe off: dispatch itself must hit the dead daemon, retire it and
  // requeue its units on the survivor.
  fleet::FleetOptions options;
  options.probe = false;
  fleet::FleetExecutor executor(std::move(pool), options);
  CountingObserver observer;
  const exec::Outcome outcome = executor.execute(request, &observer);
  EXPECT_EQ(outcome.artifact().dump(), expected);
  EXPECT_TRUE(observer.each_exactly_once(4));
}

TEST_F(FleetFixture, ProbeRetiresUnreachableDaemonsUpFront) {
  const exec::Request request = exec::Request::from_json(small_campaign_doc());
  exec::LocalExecutor local;

  fleet::FleetSpec pool;
  pool.members.push_back({"127.0.0.1", dead_port(), 1});
  pool.members.push_back(member(2));
  fleet::FleetExecutor executor(std::move(pool));
  EXPECT_EQ(executor.execute(request).artifact().dump(),
            local.execute(request).artifact().dump());
}

TEST(FleetFailureTest, AllDaemonsUnreachableFailsWithDiagnostics) {
  const exec::Request request = exec::Request::from_json(small_campaign_doc());
  fleet::FleetSpec pool;
  pool.members.push_back({"127.0.0.1", dead_port(), 1});

  // With the probe on, the pool is rejected before any dispatch.
  try {
    fleet::FleetExecutor(pool).execute(request);
    FAIL() << "expected ExecError";
  } catch (const exec::ExecError& e) {
    EXPECT_NE(std::string(e.what()).find("no healthy daemon"),
              std::string::npos);
  }

  // With the probe off, dispatch discovers the death and reports the
  // per-unit diagnostic of the lost work.
  fleet::FleetOptions options;
  options.probe = false;
  options.max_retries = 1;
  try {
    fleet::FleetExecutor(pool, options).execute(request);
    FAIL() << "expected ExecError";
  } catch (const exec::ExecError& e) {
    EXPECT_NE(std::string(e.what()).find("fleet:"), std::string::npos);
  }
}

TEST(FleetReprobeTest, RestartedDaemonRejoinsMidCampaign) {
  const exec::Request request = exec::Request::from_json(small_campaign_doc());
  exec::LocalExecutor local;
  const std::string expected = local.execute(request).artifact().dump();

  // The pool's only member is dead at dispatch time; with re-probing on,
  // the campaign pauses instead of failing and must finish byte-identical
  // once a daemon comes up on the named port mid-campaign.
  const std::uint16_t port = dead_port();
  fleet::FleetSpec pool;
  pool.members.push_back({"127.0.0.1", port, 1});

  fleet::FleetOptions options;
  options.probe = false;           // dispatch discovers the death itself
  options.reprobe_interval_ms = 50;
  options.max_retries = 100;       // ample all-dead probe rounds
  fleet::FleetExecutor executor(std::move(pool), options);

  CountingObserver observer;
  std::string failure;
  std::string produced;
  std::thread campaign([&] {
    try {
      produced = executor.execute(request, &observer).artifact().dump();
    } catch (const std::exception& e) {
      failure = e.what();
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  serve::ServeOptions serve_options;
  serve_options.port = port;
  serve_options.threads = 2;
  serve::ScenarioServer server(std::move(serve_options));
  server.start();
  std::thread accept([&server] { server.serve_forever(); });

  campaign.join();
  server.stop();
  accept.join();

  EXPECT_EQ(failure, "");
  EXPECT_EQ(produced, expected);
  EXPECT_TRUE(observer.each_exactly_once(4));
}

// ---------------------------------------------------------------- scenarios

TEST_F(FleetFixture, ScenarioFailsOverAcrossThePool) {
  exec::Request request = exec::Request::from_json(tiny_scenario_doc());
  request.threads = 2;  // match the daemons' inner-loop worker count

  fleet::FleetSpec pool;
  pool.members.push_back({"127.0.0.1", dead_port(), 1});
  pool.members.push_back(member(0));
  fleet::FleetOptions options;
  options.probe = false;  // first attempt lands on the dead daemon

  fleet::FleetExecutor executor(std::move(pool), options);
  CountingObserver observer;
  const exec::Outcome outcome = executor.execute(request, &observer);

  const scenario::ScenarioResult direct = scenario::run_scenario(
      scenario::ScenarioSpec::from_json(tiny_scenario_doc()), 2);
  EXPECT_EQ(outcome.artifact().dump(), direct.to_json().dump());
  EXPECT_EQ(observer.begins, 1);
  EXPECT_TRUE(observer.each_exactly_once(1));
}

// ------------------------------------------------------------- cancellation

TEST_F(FleetFixture, CancellationRaisesCancelledError) {
  struct CancelAfterFirst : CountingObserver {
    bool cancelled() override {
      const std::lock_guard<std::mutex> lock(mutex_);
      return !deliveries.empty();
    }
  } observer;

  fleet::FleetExecutor executor(whole_pool());
  EXPECT_THROW(
      executor.execute(exec::Request::from_json(small_campaign_doc()),
                       &observer),
      exec::CancelledError);
}

// -------------------------------------------------------------- pool specs

TEST(FleetSpecTest, ParsesDaemonListsAndFleetDocuments) {
  const fleet::FleetSpec list =
      fleet::FleetSpec::parse_daemon_list("hostA:7001,hostB:7002");
  ASSERT_EQ(list.members.size(), 2u);
  EXPECT_EQ(list.members[0].host, "hostA");
  EXPECT_EQ(list.members[0].port, 7001);
  EXPECT_EQ(list.members[0].weight, 1u);
  EXPECT_EQ(list.members[1].endpoint(), "hostB:7002");

  const fleet::FleetSpec doc = fleet::FleetSpec::from_json(Json::parse(R"({
    "daemons": [
      {"host": "10.0.0.1", "port": 7001, "weight": 2},
      "10.0.0.2:7001"
    ]
  })"));
  ASSERT_EQ(doc.members.size(), 2u);
  EXPECT_EQ(doc.members[0].weight, 2u);
  EXPECT_EQ(doc.members[1].host, "10.0.0.2");

  fleet::FleetSpec merged = list;
  merged.merge(doc);
  EXPECT_EQ(merged.members.size(), 4u);

  EXPECT_THROW(fleet::FleetSpec::parse_daemon_list(""), exec::ExecError);
  EXPECT_THROW(fleet::FleetSpec::parse_daemon_list("no-port"),
               exec::ExecError);
  EXPECT_THROW(fleet::FleetSpec::parse_daemon_list("host:99999"),
               exec::ExecError);
  EXPECT_THROW(
      fleet::FleetSpec::from_json(Json::parse(R"({"daemons": []})")),
      exec::ExecError);
  EXPECT_THROW(fleet::FleetSpec::from_json(Json::parse(
                   R"({"daemons": [{"host": "x", "port": 1, "w": 2}]})")),
               util::JsonError);
  EXPECT_THROW(
      fleet::FleetSpec::from_json(Json::parse(
          R"({"daemons": [{"host": "x", "port": 1, "weight": 0}]})")),
      exec::ExecError);
}

TEST(FleetSpecTest, ExecutorRejectsEmptyPoolsAndPreslicedRequests) {
  EXPECT_THROW(fleet::FleetExecutor(fleet::FleetSpec{}), exec::ExecError);

  fleet::FleetSpec pool;
  pool.members.push_back({"127.0.0.1", 1, 1});
  fleet::FleetExecutor executor(std::move(pool));

  exec::Request sliced = exec::Request::from_json(small_campaign_doc());
  sliced.shard_index = 1;
  sliced.shard_count = 2;
  EXPECT_THROW(executor.execute(sliced), exec::ExecError);

  exec::Request indexed = exec::Request::from_json(small_campaign_doc());
  indexed.indices = {0, 1};
  EXPECT_THROW(executor.execute(indexed), exec::ExecError);
}

}  // namespace
}  // namespace clktune
