# Empty compiler generated dependencies file for load_bench.
# This may be replaced when dependencies are built.
