#include "serve/server.h"

#include <cstdio>
#include <exception>
#include <mutex>
#include <optional>

#include "scenario/campaign.h"
#include "scenario/scenario.h"
#include "util/json.h"

namespace clktune::serve {

using util::Json;

namespace {

void send_event(const util::TcpSocket& connection, const Json& event) {
  util::tcp_write_all(connection, event.dump(-1) + "\n");
}

void send_error(const util::TcpSocket& connection, const std::string& what) {
  Json event = Json::object();
  event.set("event", "error");
  event.set("message", what);
  send_event(connection, event);
}

Json result_event(std::size_t index, bool cached, const Json& artifact) {
  Json event = Json::object();
  event.set("event", "result");
  event.set("index", static_cast<std::uint64_t>(index));
  event.set("cached", cached);
  event.set("result", artifact);
  return event;
}

Json done_event(std::uint64_t scenarios_run, std::uint64_t targets_missed,
                std::uint64_t cached) {
  Json event = Json::object();
  event.set("event", "done");
  event.set("ok", true);
  event.set("scenarios_run", scenarios_run);
  event.set("targets_missed", targets_missed);
  event.set("cached", cached);
  return event;
}

}  // namespace

ScenarioServer::ScenarioServer(ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_dir, options_.cache_capacity) {}

void ScenarioServer::start() {
  listener_ = util::tcp_listen(options_.port);
  port_ = util::tcp_local_port(listener_);
}

void ScenarioServer::serve_forever() {
  while (!stop_.load()) {
    util::TcpSocket connection = util::tcp_accept(listener_);
    if (!connection.valid()) break;  // listener closed by stop()
    ++connections_;
    handle_connection(std::move(connection));
  }
}

void ScenarioServer::stop() {
  stop_.store(true);
  listener_.close();
}

void ScenarioServer::handle_connection(util::TcpSocket connection) {
  util::LineReader reader(connection);
  std::string line;
  while (!stop_.load() && reader.read_line(line)) {
    if (line.empty()) continue;
    try {
      handle_request(connection, line);
    } catch (const std::exception& e) {
      // Parse/validation/runtime failure of one request; the connection
      // stays usable because requests are line-framed.
      try {
        send_error(connection, e.what());
      } catch (const std::exception&) {
        return;  // peer gone mid-error: drop the connection
      }
    }
  }
}

void ScenarioServer::handle_request(const util::TcpSocket& connection,
                                    const std::string& line) {
  const Json request = Json::parse(line);
  const std::string cmd = request.at("cmd").as_string();
  ++requests_;
  if (!options_.quiet)
    std::fprintf(stderr, "clktune-serve: %s\n", cmd.c_str());

  if (cmd == "status") {
    Json event = Json::object();
    event.set("event", "status");
    event.set("requests", requests_);
    event.set("connections", connections_);
    event.set("scenarios_run", scenarios_run_);
    event.set("cache", cache_.stats().to_json());
    send_event(connection, event);
    return;
  }

  if (cmd == "shutdown") {
    stop_.store(true);
    listener_.close();
    send_event(connection, done_event(0, 0, 0));
    return;
  }

  if (cmd == "run") {
    const auto spec = scenario::ScenarioSpec::from_json(request.at("doc"));
    const std::string key = cache::scenario_cache_key(spec);
    bool cached = true;
    std::optional<Json> artifact = cache_.get(key);
    if (!artifact) {
      cached = false;
      const scenario::ScenarioResult result =
          scenario::run_scenario(spec, options_.threads);
      artifact = result.to_json();
      cache_.put(key, *artifact);
    }
    ++scenarios_run_;
    send_event(connection, result_event(0, cached, *artifact));
    const bool met_target =
        artifact->at("met_target").as_bool();
    send_event(connection, done_event(1, met_target ? 0 : 1, cached ? 1 : 0));
    return;
  }

  if (cmd == "sweep") {
    auto spec = scenario::CampaignSpec::from_json(request.at("doc"));
    if (options_.threads > 0) spec.threads = options_.threads;
    const scenario::CampaignRunner runner(std::move(spec));
    scenario::CampaignRunOptions run_options;
    run_options.cache = &cache_;
    std::mutex write_mutex;  // result callbacks fire from worker threads
    bool peer_gone = false;  // a throwing callback would kill the worker
    run_options.on_done = [&](std::size_t index,
                              const scenario::ScenarioResult& result,
                              bool cached) {
      const std::lock_guard<std::mutex> lock(write_mutex);
      if (peer_gone) return;
      try {
        send_event(connection, result_event(index, cached, result.to_json()));
      } catch (const std::exception&) {
        peer_gone = true;  // keep computing: results still land in the cache
      }
    };
    const scenario::CampaignSummary summary = runner.run(run_options);
    scenarios_run_ += summary.scenarios_run;
    if (!peer_gone)
      send_event(connection,
                 done_event(summary.scenarios_run, summary.targets_missed,
                            summary.scenarios_cached));
    return;
  }

  send_error(connection, "unknown cmd \"" + cmd + "\"");
}

}  // namespace clktune::serve
