// Reproduces the data behind Fig. 4: buffer usage counts over the sampling
// run, and the pruning rule "remove nodes adjusted in <= 1 samples that are
// not adjacent to a critical node (>= 5 of 10000)".  Reports the usage-count
// distribution, the pruned/kept split, and the runtime effect of pruning.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "util/timer.h"

namespace {

using namespace clktune;

int run() {
  bench::BenchConfig cfg = bench::BenchConfig::from_env();
  bench::BenchReport report("fig4_pruning");
  auto spec = *netlist::paper_circuit_spec(
      util::env_string("CLKTUNE_FIG4_CIRCUIT", "s13207"));
  const bench::PreparedCircuit pc = bench::prepare(spec, cfg);
  const double t = pc.setting_period(0);

  util::Stopwatch sw_on;
  core::InsertionConfig with_pruning = cfg.insertion();
  core::BufferInsertionEngine engine(pc.design, pc.graph, t, with_pruning);
  const core::InsertionResult res = engine.run();
  const double secs_on = sw_on.seconds();

  std::printf("Fig. 4 reproduction: circuit=%s T=%.1f ps samples=%llu\n\n",
              spec.name.c_str(), t,
              static_cast<unsigned long long>(cfg.samples));

  // Usage-count distribution (the numbers written inside Fig. 4's nodes).
  std::map<std::uint64_t, int> histogram;
  for (std::uint64_t u : res.step1_usage) ++histogram[u];
  std::printf("usage-count distribution after step 1 (count: #flip-flops):\n");
  for (const auto& [usage, n] : histogram)
    if (usage > 0 || n < pc.graph.num_ffs)
      std::printf("  %6llu: %d\n", static_cast<unsigned long long>(usage), n);

  const std::uint64_t critical = with_pruning.critical_usage();
  const std::uint64_t prune_max = with_pruning.prune_usage_max();
  std::printf(
      "\npruning rule: remove usage <= %llu without a neighbour of usage >= "
      "%llu\n",
      static_cast<unsigned long long>(prune_max),
      static_cast<unsigned long long>(critical));
  std::printf("pruned %d of %d flip-flops (%.1f%%), %d candidates remain\n",
              res.pruned_count, pc.graph.num_ffs,
              100.0 * res.pruned_count / pc.graph.num_ffs,
              pc.graph.num_ffs - res.pruned_count);

  // A Fig.-4-style neighbourhood listing for the surviving candidates.
  std::printf("\nsurviving nodes (ff: usage | neighbour usages):\n");
  int shown = 0;
  for (int f = 0; f < pc.graph.num_ffs && shown < 12; ++f) {
    const auto fs = static_cast<std::size_t>(f);
    if (!res.kept_after_prune[fs] || res.step1_usage[fs] == 0) continue;
    std::printf("  ff%-5d %6llu |", f,
                static_cast<unsigned long long>(res.step1_usage[fs]));
    for (int e : pc.graph.arcs_of_ff[fs]) {
      const ssta::SeqArc& arc = pc.graph.arcs[static_cast<std::size_t>(e)];
      const int other = arc.src_ff == f ? arc.dst_ff : arc.src_ff;
      if (other != f)
        std::printf(" %llu",
                    static_cast<unsigned long long>(
                        res.step1_usage[static_cast<std::size_t>(other)]));
    }
    std::printf("\n");
    ++shown;
  }

  // Runtime effect: the same run with pruning disabled.
  core::InsertionConfig no_pruning = cfg.insertion();
  no_pruning.enable_pruning = false;
  util::Stopwatch sw_off;
  core::BufferInsertionEngine engine_off(pc.design, pc.graph, t, no_pruning);
  const core::InsertionResult res_off = engine_off.run();
  const double secs_off = sw_off.seconds();
  std::printf(
      "\nruntime with pruning: %.2f s, without: %.2f s (%d vs %d final "
      "buffers)\n",
      secs_on, secs_off, res.plan.physical_buffers(),
      res_off.plan.physical_buffers());
  report.count_insertion(res, cfg.samples);
  report.count_insertion(res_off, cfg.samples);
  report.metric("seconds_with_pruning", secs_on);
  report.metric("seconds_without_pruning", secs_off);
  return report.write();
}

}  // namespace

int main() { return run(); }
