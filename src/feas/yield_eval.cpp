#include "feas/yield_eval.h"

#include <algorithm>
#include <cmath>

#include "mc/arc_constants.h"
#include "obs/metrics.h"
#include "util/assert.h"
#include "util/thread_pool.h"

namespace clktune::feas {

namespace {

/// MC hot-path metrics.  The evaluate() loops record into these from the
/// worker threads: one counter add per *chunk* (not per sample) and one
/// timed solve every 64th sample, so the instrumentation stays strictly
/// bounded — sample_feasible itself is untouched, which is what keeps the
/// zero-allocation assertions and the perf gate honest.
struct McMetrics {
  obs::Counter& samples;
  obs::Histogram& solve_seconds;

  static McMetrics& get() {
    static McMetrics m{
        obs::Registry::global().counter(
            "clktune_mc_samples_total",
            "Monte-Carlo feasibility samples evaluated"),
        obs::Registry::global().histogram(
            "clktune_mc_solve_seconds",
            "Per-sample feasibility solve wall time (sampled 1-in-64)",
            1e-9),
    };
    return m;
  }
};

/// Stride of the per-sample timing probe: every 64th solve pays two
/// steady-clock reads, the rest pay nothing.
constexpr std::uint64_t kSolveTimingStride = 64;

}  // namespace

void YieldEvaluator::add_static_edge(int u, int v, std::int64_t w) {
  // Constraint x_u - x_v <= w: edge v -> u with weight w.
  edge_to_.push_back(u);
  edge_next_.push_back(head_[static_cast<std::size_t>(v)]);
  head_[static_cast<std::size_t>(v)] =
      static_cast<int>(edge_to_.size()) - 1;
  weights_template_.push_back(w);
}

YieldEvaluator::YieldEvaluator(const ssta::SeqGraph& graph, TuningPlan plan,
                               double clock_period_ps)
    : graph_(&graph), plan_(std::move(plan)), clock_period_(clock_period_ps) {
  CLKTUNE_EXPECTS(clock_period_ps > 0.0);
  if (plan_.group_of.size() != plan_.buffers.size()) plan_.reset_groups();
  var_of_ff_.assign(static_cast<std::size_t>(graph.num_ffs), -1);
  for (std::size_t i = 0; i < plan_.buffers.size(); ++i) {
    const int ff = plan_.buffers[i].ff;
    CLKTUNE_EXPECTS(ff >= 0 && ff < graph.num_ffs);
    var_of_ff_[static_cast<std::size_t>(ff)] = plan_.group_of[i];
  }
  group_windows_.clear();
  for (int g = 0; g < plan_.num_groups; ++g)
    group_windows_.push_back(plan_.group_window(g));

  // Static topology: the reference node is plan_.num_groups.
  const int ref = plan_.num_groups;
  head_.assign(static_cast<std::size_t>(ref) + 1, -1);

  // Window bounds vs the reference node (weights final).
  for (int g = 0; g < plan_.num_groups; ++g) {
    add_static_edge(g, ref, group_windows_[static_cast<std::size_t>(g)].k_hi);
    add_static_edge(ref, g, -group_windows_[static_cast<std::size_t>(g)].k_lo);
  }

  // Arc partition: tuning cancels on same-variable arcs (both unbuffered,
  // or both in one group), leaving a per-sample sign test; the rest get
  // two weight slots in the static graph.
  for (std::size_t e = 0; e < graph.arcs.size(); ++e) {
    const ssta::SeqArc& arc = graph.arcs[e];
    const int vi = var_of_ff_[static_cast<std::size_t>(arc.src_ff)];
    const int vj = var_of_ff_[static_cast<std::size_t>(arc.dst_ff)];
    const int ui = vi < 0 ? ref : vi;
    const int uj = vj < 0 ? ref : vj;
    if (ui == uj) {
      check_arcs_.push_back(static_cast<int>(e));
      continue;
    }
    EdgeArc ea;
    ea.arc = static_cast<int>(e);
    ea.setup_slot = static_cast<int>(weights_template_.size());
    add_static_edge(ui, uj, 0);  // setup: x_ui - x_uj <= setup_steps
    ea.hold_slot = static_cast<int>(weights_template_.size());
    add_static_edge(uj, ui, 0);  // hold:  x_uj - x_ui <= hold_steps
    edge_arcs_.push_back(ea);
  }
}

namespace {

/// Delay provider drawing arcs on demand — only the arcs actually visited
/// before an early exit cost any sampling work.
struct SampledDelays {
  const mc::Sampler& sampler;
  std::uint64_t k;
  std::array<double, ssta::kParams> z;

  SampledDelays(const mc::Sampler& s, std::uint64_t sample)
      : sampler(s), k(sample), z(s.globals(sample)) {}

  void delays(std::size_t e, double& late, double& early) const {
    sampler.arc_delays(k, e, z, late, early);
  }
};

/// Delay provider reading a precomputed cache slice.
struct CachedDelays {
  mc::ArcDelaysView view;

  void delays(std::size_t e, double& late, double& early) const {
    late = view.dmax[e];
    early = view.dmin[e];
  }
};

}  // namespace

template <class Delays>
bool YieldEvaluator::solve_sample_impl(const Delays& provider,
                                       Workspace& ws) const {
  const ssta::SeqGraph& graph = *graph_;

  // ---- check-only arcs: sign tests with early exit ----------------------
  for (const int e : check_arcs_) {
    const auto es = static_cast<std::size_t>(e);
    double late = 0.0, early = 0.0;
    provider.delays(es, late, early);
    double setup_c = 0.0, hold_c = 0.0;
    mc::arc_slack(graph, es, late, early, clock_period_, setup_c, hold_c);
    if (setup_c < 0.0 || hold_c < 0.0) return false;
  }
  if (edge_arcs_.empty() && plan_.num_groups == 0) {
    // No variables at all: feasible, all-zero potentials.
    ws.spfa.dist.assign(1, 0);
    return true;
  }

  // ---- edge arcs: rewrite the per-sample weights ------------------------
  const double step = plan_.step_ps;
  ws.weights.assign(weights_template_.begin(), weights_template_.end());
  for (const EdgeArc& ea : edge_arcs_) {
    const auto es = static_cast<std::size_t>(ea.arc);
    double late = 0.0, early = 0.0;
    provider.delays(es, late, early);
    double setup_c = 0.0, hold_c = 0.0;
    mc::arc_slack(graph, es, late, early, clock_period_, setup_c, hold_c);
    ws.weights[static_cast<std::size_t>(ea.setup_slot)] =
        mc::floor_steps(setup_c, step);
    ws.weights[static_cast<std::size_t>(ea.hold_slot)] =
        mc::floor_steps(hold_c, step);
  }

  // ---- SPFA over the static topology ------------------------------------
  return spfa_potentials(
      plan_.num_groups + 1, ws.spfa,
      [&](int v) { return head_[static_cast<std::size_t>(v)]; },
      [&](int e) { return edge_next_[static_cast<std::size_t>(e)]; },
      [&](int e) { return edge_to_[static_cast<std::size_t>(e)]; },
      [&](int e) { return ws.weights[static_cast<std::size_t>(e)]; });
}

bool YieldEvaluator::solve_sample(const mc::Sampler& sampler, std::uint64_t k,
                                  Workspace& ws) const {
  return solve_sample_impl(SampledDelays(sampler, k), ws);
}

bool YieldEvaluator::sample_feasible(const mc::Sampler& sampler,
                                     std::uint64_t k) const {
  thread_local Workspace ws;
  return solve_sample(sampler, k, ws);
}

bool YieldEvaluator::sample_feasible(const mc::ArcDelaysView& delays) const {
  thread_local Workspace ws;
  return solve_sample_impl(CachedDelays{delays}, ws);
}

std::vector<int> YieldEvaluator::config_from_workspace(
    const Workspace& ws) const {
  // Normalise so the reference node sits at zero.
  const auto ref = static_cast<std::size_t>(plan_.num_groups);
  const std::vector<std::int64_t>& dist = ws.spfa.dist;
  const std::int64_t base = dist.size() > ref ? dist[ref] : 0;
  std::vector<int> config(static_cast<std::size_t>(plan_.num_groups));
  for (int g = 0; g < plan_.num_groups; ++g)
    config[static_cast<std::size_t>(g)] =
        static_cast<int>(dist[static_cast<std::size_t>(g)] - base);
  return config;
}

std::optional<std::vector<int>> YieldEvaluator::find_configuration(
    const mc::Sampler& sampler, std::uint64_t k) const {
  thread_local Workspace ws;
  if (!solve_sample(sampler, k, ws)) return std::nullopt;
  return config_from_workspace(ws);
}

std::optional<std::vector<int>> YieldEvaluator::find_configuration(
    const mc::ArcDelaysView& delays) const {
  thread_local Workspace ws;
  if (!solve_sample_impl(CachedDelays{delays}, ws)) return std::nullopt;
  return config_from_workspace(ws);
}

YieldResult YieldEvaluator::evaluate(const mc::Sampler& sampler,
                                     std::uint64_t samples,
                                     int threads) const {
  const std::size_t workers = util::resolve_thread_count(
      threads <= 0 ? 0 : static_cast<std::size_t>(threads));
  std::vector<std::uint64_t> passing(workers, 0);
  util::parallel_chunks(
      static_cast<std::size_t>(samples), workers,
      [&](std::size_t w, std::size_t begin, std::size_t end) {
        McMetrics& metrics = McMetrics::get();
        for (std::size_t k = begin; k < end; ++k) {
          if ((k & (kSolveTimingStride - 1)) == 0) {
            const std::uint64_t t0 = obs::steady_now_ns();
            passing[w] += sample_feasible(sampler, k) ? 1 : 0;
            metrics.solve_seconds.record(obs::steady_now_ns() - t0);
          } else {
            passing[w] += sample_feasible(sampler, k) ? 1 : 0;
          }
        }
        metrics.samples.inc(end - begin);
      });
  YieldResult result;
  result.samples = samples;
  for (std::uint64_t p : passing) result.passing += p;
  result.yield = samples == 0
                     ? 0.0
                     : static_cast<double>(result.passing) /
                           static_cast<double>(samples);
  result.ci95 = util::yield_ci95(result.yield, samples);
  return result;
}

YieldResult YieldEvaluator::evaluate(mc::SampleDelayCache& delays,
                                     std::uint64_t samples, int threads,
                                     bool fill) const {
  CLKTUNE_EXPECTS(samples <= delays.samples());
  const std::size_t workers = util::resolve_thread_count(
      threads <= 0 ? 0 : static_cast<std::size_t>(threads));
  std::vector<std::uint64_t> passing(workers, 0);
  util::parallel_chunks(
      static_cast<std::size_t>(samples), workers,
      [&](std::size_t w, std::size_t begin, std::size_t end) {
        McMetrics& metrics = McMetrics::get();
        mc::ArcSample scratch;
        for (std::size_t k = begin; k < end; ++k) {
          const mc::ArcDelaysView view =
              fill ? delays.fill(k, scratch) : delays.get(k, scratch);
          if ((k & (kSolveTimingStride - 1)) == 0) {
            const std::uint64_t t0 = obs::steady_now_ns();
            passing[w] += sample_feasible(view) ? 1 : 0;
            metrics.solve_seconds.record(obs::steady_now_ns() - t0);
          } else {
            passing[w] += sample_feasible(view) ? 1 : 0;
          }
        }
        metrics.samples.inc(end - begin);
      });
  YieldResult result;
  result.samples = samples;
  for (std::uint64_t p : passing) result.passing += p;
  result.yield = samples == 0
                     ? 0.0
                     : static_cast<double>(result.passing) /
                           static_cast<double>(samples);
  result.ci95 = util::yield_ci95(result.yield, samples);
  return result;
}

namespace {

TuningPlan empty_plan() {
  TuningPlan empty;
  empty.step_ps = 1.0;
  empty.reset_groups();
  return empty;
}

}  // namespace

YieldResult original_yield(const ssta::SeqGraph& graph, double clock_period_ps,
                           const mc::Sampler& sampler, std::uint64_t samples,
                           int threads) {
  const YieldEvaluator eval(graph, empty_plan(), clock_period_ps);
  return eval.evaluate(sampler, samples, threads);
}

YieldResult original_yield(const ssta::SeqGraph& graph, double clock_period_ps,
                           mc::SampleDelayCache& delays,
                           std::uint64_t samples, int threads, bool fill) {
  const YieldEvaluator eval(graph, empty_plan(), clock_period_ps);
  return eval.evaluate(delays, samples, threads, fill);
}

YieldReport evaluate_yield_report(const ssta::SeqGraph& graph,
                                  const TuningPlan& plan,
                                  double clock_period_ps,
                                  std::uint64_t eval_seed,
                                  std::uint64_t samples, int threads) {
  YieldReport report;
  report.clock_period_ps = clock_period_ps;
  report.eval_seed = eval_seed;
  const mc::Sampler sampler(graph, eval_seed);
  report.original =
      original_yield(graph, clock_period_ps, sampler, samples, threads);
  report.tuned = YieldEvaluator(graph, plan, clock_period_ps)
                     .evaluate(sampler, samples, threads);
  return report;
}

}  // namespace clktune::feas
