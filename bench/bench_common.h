// Shared setup for the reproduction benches: circuit construction, the three
// Table-I clock settings (muT, muT+sigma, muT+2sigma), and env-variable
// configuration.
//
//   CLKTUNE_SAMPLES   insertion Monte-Carlo samples (default 10000, paper)
//   CLKTUNE_EVAL      yield-evaluation samples       (default 10000)
//   CLKTUNE_THREADS   worker threads                 (default: all cores)
//   CLKTUNE_CIRCUITS  comma list to restrict circuits (default: all eight)
//   CLKTUNE_EVAL_CACHE_MB  total delay-cache budget, MB (default 512,
//                          split across a bench's simultaneously resident
//                          caches; oversized circuits fall back to
//                          streaming)
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "core/engine.h"
#include "core/insertion_config.h"
#include "fault/fault.h"
#include "feas/yield_eval.h"
#include "mc/period_mc.h"
#include "mc/sampler.h"
#include "netlist/generator.h"
#include "netlist/paper_circuits.h"
#include "ssta/seq_graph.h"
#include "util/alloc_counter.h"
#include "util/env.h"
#include "util/json.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace clktune::bench {

struct BenchConfig {
  std::uint64_t samples;
  std::uint64_t eval_samples;
  int threads;
  long eval_cache_mb;
  std::vector<std::string> circuits;

  std::uint64_t eval_cache_bytes() const {
    return eval_cache_mb <= 0
               ? 0
               : static_cast<std::uint64_t>(eval_cache_mb) << 20;
  }

  static BenchConfig from_env() {
    // Honour CLKTUNE_FAULT_PLAN in benches too: a bench under faults is a
    // chaos experiment, and the report stamps `faults_injected` so the
    // perf gate can prove production numbers ran disarmed.
    fault::arm_from_environment();
    BenchConfig cfg;
    cfg.samples = static_cast<std::uint64_t>(
        util::env_long("CLKTUNE_SAMPLES", 10000));
    cfg.eval_samples =
        static_cast<std::uint64_t>(util::env_long("CLKTUNE_EVAL", 10000));
    cfg.threads = static_cast<int>(util::env_long("CLKTUNE_THREADS", 0));
    cfg.eval_cache_mb = util::env_long("CLKTUNE_EVAL_CACHE_MB", 512);
    const std::string list = util::env_string("CLKTUNE_CIRCUITS", "");
    if (!list.empty()) {
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > pos) cfg.circuits.push_back(list.substr(pos, end - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    }
    return cfg;
  }

  bool wants(const std::string& name) const {
    if (circuits.empty()) return true;
    for (const std::string& c : circuits)
      if (c == name) return true;
    return false;
  }

  core::InsertionConfig insertion() const {
    core::InsertionConfig ic;
    ic.num_samples = samples;
    ic.threads = threads;
    return ic;
  }
};

/// A circuit plus its sequential graph and measured period distribution.
struct PreparedCircuit {
  netlist::SyntheticSpec spec;
  netlist::Design design;
  ssta::SeqGraph graph;
  mc::PeriodStats period;

  double setting_period(int sigmas) const {
    return period.mu() + sigmas * period.sigma();
  }
};

inline PreparedCircuit prepare(const netlist::SyntheticSpec& spec,
                               const BenchConfig& cfg) {
  PreparedCircuit pc;
  pc.spec = spec;
  pc.design = netlist::generate(spec);
  pc.graph = ssta::extract_seq_graph(pc.design);
  const mc::Sampler sampler(pc.graph, 20160314);
  pc.period = mc::sample_min_period(
      sampler, std::max<std::uint64_t>(2000, cfg.samples / 2), cfg.threads);
  return pc;
}

inline const char* setting_name(int sigmas) {
  switch (sigmas) {
    case 0:
      return "muT";
    case 1:
      return "muT+s";
    default:
      return "muT+2s";
  }
}

/// Evaluation sampler seed is distinct from the insertion seed so reported
/// yields are out-of-sample.
inline constexpr std::uint64_t kEvalSeed = 0xE7A1;

// BenchReport and the provenance helpers (bench_git_sha, bench_hostname)
// moved into the library — src/bench/bench_report.h — so `clktune bench
// load` writes the same gateable artifact shape the reproduction benches
// do.  Included above; the clktune::bench namespace is unchanged.

}  // namespace clktune::bench
