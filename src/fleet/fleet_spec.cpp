#include "fleet/fleet_spec.h"

#include <cstdlib>

#include "exec/request.h"

namespace clktune::fleet {

using util::Json;

namespace {

FleetMember parse_endpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size())
    throw exec::ExecError("fleet: daemon \"" + text +
                          "\" is not host:port");
  char* end = nullptr;
  const unsigned long port = std::strtoul(text.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port == 0 || port > 65535)
    throw exec::ExecError("fleet: daemon \"" + text +
                          "\" has an invalid port");
  FleetMember member;
  member.host = text.substr(0, colon);
  member.port = static_cast<std::uint16_t>(port);
  return member;
}

FleetMember parse_member(const Json& entry) {
  if (entry.is_string()) return parse_endpoint(entry.as_string());
  FleetMember member;
  for (const auto& [key, value] : entry.as_object()) {
    if (key == "host") {
      member.host = value.as_string();
    } else if (key == "port") {
      const std::uint64_t port = value.as_uint();
      if (port == 0 || port > 65535)
        throw exec::ExecError("fleet: port " + std::to_string(port) +
                              " out of range");
      member.port = static_cast<std::uint16_t>(port);
    } else if (key == "weight") {
      member.weight = static_cast<std::size_t>(value.as_uint());
      if (member.weight == 0)
        throw exec::ExecError("fleet: weight must be >= 1");
    } else {
      throw util::JsonError("fleet: unknown daemon member \"" + key + "\"");
    }
  }
  if (member.host.empty() || member.port == 0)
    throw exec::ExecError("fleet: a daemon needs both host and port");
  return member;
}

}  // namespace

FleetSpec FleetSpec::parse_daemon_list(const std::string& list) {
  FleetSpec spec;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > begin)
      spec.members.push_back(parse_endpoint(list.substr(begin, end - begin)));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (spec.members.empty())
    throw exec::ExecError("fleet: empty daemon list");
  return spec;
}

FleetSpec FleetSpec::from_json(const Json& doc) {
  FleetSpec spec;
  for (const Json& entry : doc.at("daemons").as_array())
    spec.members.push_back(parse_member(entry));
  if (spec.members.empty())
    throw exec::ExecError("fleet: fleet file lists no daemons");
  return spec;
}

FleetSpec FleetSpec::from_file(const std::string& path) {
  return from_json(util::read_json_file(path));
}

void FleetSpec::merge(const FleetSpec& other) {
  members.insert(members.end(), other.members.begin(), other.members.end());
}

}  // namespace clktune::fleet
