// `clktune serve` — a long-running scenario service.
//
// The daemon listens on a loopback TCP port and speaks newline-delimited
// JSON: each request line is an object with a "cmd" member, each response
// line an object with an "event" member.  The PR-1 artifact layer is the
// wire format — a streamed "result" event carries exactly the JSON that
// `clktune run` would have written for the same document.
//
//   request                                  response lines
//   {"cmd":"run","doc":{scenario}}       -> result, done
//   {"cmd":"sweep","doc":{campaign}}     -> result per finished cell, done
//   {"cmd":"status"}                     -> status
//   {"cmd":"shutdown"}                   -> done (then the server exits)
//
// A sweep request may carry an optional {"shard":{"index":i,"count":n}}
// member: the daemon then runs only the expansion indices with
// idx % n == i, exactly like `clktune sweep --shard i/n` — the hook that
// lets a coordinator (exec::ShardedExecutor over exec::RemoteExecutors)
// fan one campaign out across several daemons.
//
//   result: {"event":"result","index":i,"cached":bool,"result":{artifact}}
//   done:   {"event":"done","ok":true,"scenarios_run":n,
//            "targets_missed":m,"cached":c}
//   status: {"event":"status","requests":r,"connections":k,
//            "scenarios_run":n,"cache":{hits,misses,...}}
//   error:  {"event":"error","message":"..."}
//
// Sweep results stream in completion order, tagged with their global
// expansion index; scenario execution fans out over the campaign thread
// pool, so one request at a time is admitted (compute is parallel,
// admission is serial).  Requests execute through exec::LocalExecutor —
// the same backend the CLI uses — with a streaming exec::Observer as the
// wire adapter, and every result goes through the content-addressed
// ResultCache, so the daemon never recomputes a document it has already
// solved, across requests and across clients.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "cache/result_cache.h"
#include "util/socket.h"

namespace clktune::serve {

struct ServeOptions {
  std::uint16_t port = 0;   ///< 0 = ephemeral (query via ScenarioServer::port)
  int threads = 0;          ///< campaign workers; 0 = hardware concurrency
  std::string cache_dir;    ///< empty = in-memory cache only
  std::size_t cache_capacity = 256;  ///< LRU entries held in memory
  bool quiet = true;        ///< suppress per-request stderr lines
};

class ScenarioServer {
 public:
  explicit ScenarioServer(ServeOptions options);

  /// Binds and listens; after this, port() is the actual port.
  void start();
  std::uint16_t port() const { return port_; }

  /// Accept loop; returns after a shutdown request or stop().  Connections
  /// are handled one at a time; each may carry any number of request lines.
  void serve_forever();

  /// Thread-safe: asks the accept loop to exit and unblocks it.
  void stop();

  cache::ResultCache& cache() { return cache_; }

 private:
  void handle_connection(util::TcpSocket connection);
  void handle_request(const util::TcpSocket& connection,
                      const std::string& line);

  ServeOptions options_;
  cache::ResultCache cache_;
  util::TcpSocket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::uint64_t requests_ = 0;
  std::uint64_t connections_ = 0;
  std::uint64_t scenarios_run_ = 0;  ///< computed + cache-served
};

}  // namespace clktune::serve
