// In-process backend: the scenario engine, the campaign thread pool and
// the content-addressed result cache behind the Executor interface.
#pragma once

#include "exec/executor.h"

namespace clktune::exec {

/// Runs requests in this process.  A scenario request is one engine run
/// (inner loops use the request's thread budget); a campaign request
/// expands the sweep, slices it by the request's shard, and runs cells
/// concurrently — one worker thread per concurrent cell, each cell's inner
/// loops single-threaded — collecting results in expansion order so the
/// summary is a pure function of the document and the shard slice.  When
/// the request carries a cache, every cell is looked up by content key
/// first and computed results are stored back.
class LocalExecutor : public Executor {
 public:
  Outcome execute(const Request& request,
                  Observer* observer = nullptr) override;

  std::string name() const override { return "local"; }
};

}  // namespace clktune::exec
