file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_steps.dir/bench/ablation_steps.cpp.o"
  "CMakeFiles/bench_ablation_steps.dir/bench/ablation_steps.cpp.o.d"
  "bench_ablation_steps"
  "bench_ablation_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
