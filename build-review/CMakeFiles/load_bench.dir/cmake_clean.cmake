file(REMOVE_RECURSE
  "CMakeFiles/load_bench.dir/examples/load_bench.cpp.o"
  "CMakeFiles/load_bench.dir/examples/load_bench.cpp.o.d"
  "load_bench"
  "load_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
