// Load-harness tests (src/load): schedule determinism, wire-histogram
// percentile math, the cross-check rules on synthetic inputs, and real
// end-to-end runs against in-process daemons — including busy-frame
// accounting on a queue-capacity-1 daemon and the client/server
// latency-histogram agreement the harness gates on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "load/harness.h"
#include "load/workload.h"
#include "load/xcheck.h"
#include "serve/server.h"
#include "util/json.h"

namespace clktune {
namespace {

using util::Json;

// ---- workload schedule -------------------------------------------------

TEST(WorkloadSchedule, IdenticalForIdenticalSeed) {
  const load::WorkloadMix mix;
  const std::vector<std::size_t> weights = {2, 1};
  const std::vector<load::Op> a = load::make_schedule(mix, 42, 512, weights);
  const std::vector<load::Op> b = load::make_schedule(mix, 42, 512, weights);
  ASSERT_EQ(a.size(), 512u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "op " << i;
    EXPECT_EQ(a[i].target, b[i].target) << "op " << i;
    EXPECT_EQ(a[i].fresh_ordinal, b[i].fresh_ordinal) << "op " << i;
  }
}

TEST(WorkloadSchedule, DifferentSeedsDiverge) {
  const load::WorkloadMix mix;
  const std::vector<std::size_t> weights = {1};
  const std::vector<load::Op> a = load::make_schedule(mix, 1, 256, weights);
  const std::vector<load::Op> b = load::make_schedule(mix, 2, 256, weights);
  bool diverged = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    diverged = diverged || a[i].kind != b[i].kind;
  EXPECT_TRUE(diverged);
}

TEST(WorkloadSchedule, HonoursMixWeightsAndNumbersFreshOps) {
  load::WorkloadMix mix;
  mix.run_warm = 1.0;
  mix.run_fresh = 1.0;
  mix.sweep = 0.0;
  mix.status = 0.0;
  mix.job_flow = 0.0;
  const std::vector<load::Op> schedule =
      load::make_schedule(mix, 7, 2000, {1});
  std::size_t warm = 0, fresh = 0;
  std::uint64_t next_ordinal = 0;
  for (const load::Op& op : schedule) {
    ASSERT_TRUE(op.kind == load::OpKind::run_warm ||
                op.kind == load::OpKind::run_fresh);
    if (op.kind == load::OpKind::run_warm) {
      ++warm;
    } else {
      ++fresh;
      // Fresh documents are numbered densely in schedule order, so a
      // duration-mode lap of the schedule can offset them by lap count
      // and never resubmit a seen document.
      EXPECT_EQ(op.fresh_ordinal, next_ordinal++);
    }
  }
  EXPECT_EQ(load::fresh_ops(schedule), fresh);
  // 50/50 mix over 2000 draws: a 10-sigma band is ~±335.
  EXPECT_NEAR(static_cast<double>(warm), 1000.0, 350.0);
}

TEST(WorkloadSchedule, SpreadsTargetsByWeight) {
  const load::WorkloadMix mix;
  const std::vector<load::Op> schedule =
      load::make_schedule(mix, 11, 3000, {3, 1});
  std::size_t first = 0;
  for (const load::Op& op : schedule) first += op.target == 0;
  const double share = static_cast<double>(first) / 3000.0;
  EXPECT_NEAR(share, 0.75, 0.08);
}

TEST(WorkloadMixParse, RejectsBadInput) {
  EXPECT_THROW(load::WorkloadMix::from_json(
                   Json::parse(R"({"run_warm": -1})")),
               std::invalid_argument);
  EXPECT_THROW(load::WorkloadMix::from_json(
                   Json::parse(R"({"runwarm": 1})")),
               std::invalid_argument);
  EXPECT_THROW(load::WorkloadMix::from_json(Json::parse(
                   R"({"run_warm": 0, "run_fresh": 0, "sweep": 0,
                       "status": 0, "job_flow": 0})")),
               std::invalid_argument);
  const load::WorkloadMix mix =
      load::WorkloadMix::from_spec(R"({"status": 3, "sweep": 1})");
  EXPECT_EQ(mix.status, 3.0);
  EXPECT_EQ(mix.sweep, 1.0);
  // A spec lists exactly the workload it wants — unlisted kinds are off.
  EXPECT_EQ(mix.run_warm, 0.0);
  EXPECT_EQ(mix.job_flow, 0.0);
}

TEST(WorkloadDocs, FreshScenariosAreUniqueAndSeedShifted) {
  const Json base = load::default_base_scenario();
  const Json f0 = load::fresh_scenario(base, 0);
  const Json f7 = load::fresh_scenario(base, 7);
  EXPECT_NE(f0.at("name").as_string(), base.at("name").as_string());
  EXPECT_NE(f0.at("name").as_string(), f7.at("name").as_string());
  const std::uint64_t base_seed =
      base.at("design").at("synthetic").at("seed").as_uint();
  EXPECT_EQ(f0.at("design").at("synthetic").at("seed").as_uint(),
            base_seed + 1);
  EXPECT_EQ(f7.at("design").at("synthetic").at("seed").as_uint(),
            base_seed + 8);
  const Json campaign = load::sweep_campaign(base);
  EXPECT_NE(campaign.find("sweep"), nullptr);
  EXPECT_NE(campaign.find("base"), nullptr);
}

// ---- wire-histogram percentile math ------------------------------------

TEST(WireHistogram, QuantilesWalkTheBuckets) {
  load::WireHistogram h;
  h.buckets[0.001] = 50;  // 50 requests <= 1 ms
  h.buckets[0.002] = 40;
  h.buckets[0.004] = 9;
  h.buckets[0.008] = 1;
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.001);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 0.002);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.004);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.008);
}

TEST(WireHistogram, MergeAndDeltaAreInverse) {
  load::ServerSnapshot before, after;
  before.verb_latency["run"].buckets[0.001] = 10;
  before.verb_latency["run"].sum_seconds = 0.01;
  after.verb_latency["run"].buckets[0.001] = 10;  // old traffic, unchanged
  after.verb_latency["run"].buckets[0.002] = 5;   // the run's requests
  after.verb_latency["run"].sum_seconds = 0.02;
  after.busy_rejections = 3;
  const load::ServerSnapshot delta =
      load::ServerSnapshot::delta(before, after);
  ASSERT_EQ(delta.verb_latency.count("run"), 1u);
  EXPECT_EQ(delta.verb_latency.at("run").count(), 5u);
  EXPECT_DOUBLE_EQ(delta.verb_latency.at("run").quantile(0.5), 0.002);
  EXPECT_EQ(delta.busy_rejections, 3u);
}

// ---- cross-check rules on synthetic inputs -----------------------------

load::ClientVerb client_verb(std::uint64_t count, double p50, double p99) {
  load::ClientVerb v;
  v.verb = "run";
  v.count = count;
  v.p50 = p50;
  v.p90 = p99;
  v.p99 = p99;
  return v;
}

load::ServerSnapshot server_with(std::uint64_t count, double le) {
  load::ServerSnapshot s;
  s.verb_latency["run"].buckets[le] = count;
  s.verb_latency["run"].sum_seconds = le * static_cast<double>(count);
  return s;
}

TEST(CrossCheck, AgreesWhenHistogramsMatch) {
  const load::Agreement a =
      load::cross_check({client_verb(100, 0.002, 0.004)},
                        server_with(100, 0.002), 0, {});
  EXPECT_TRUE(a.ok);
  ASSERT_EQ(a.verbs.size(), 1u);
  EXPECT_TRUE(a.verbs[0].note.empty());
}

TEST(CrossCheck, FailsOnCountMismatchBeyondTransportWindow) {
  EXPECT_FALSE(load::cross_check({client_verb(100, 0.002, 0.004)},
                                 server_with(90, 0.002), 4, {})
                   .ok);
  // ...but 10 transport errors explain a 10-request gap.
  EXPECT_TRUE(load::cross_check({client_verb(100, 0.002, 0.004)},
                                server_with(90, 0.002), 10, {})
                  .ok);
}

TEST(CrossCheck, FailsWhenServerExceedsClientObservation) {
  // Server claims 1 s handling for requests the client saw finish in
  // 2 ms — physically impossible, one side's instrumentation lies.
  const load::Agreement a = load::cross_check(
      {client_verb(100, 0.002, 0.004)}, server_with(100, 1.0), 0, {});
  EXPECT_FALSE(a.ok);
}

TEST(CrossCheck, FailsWhenClientOverheadExceedsTolerance) {
  load::XcheckTolerance tight;
  tight.overhead_factor = 2.0;
  tight.slack_seconds = 0.0;
  const load::Agreement a = load::cross_check(
      {client_verb(100, 1.0, 2.0)}, server_with(100, 0.002), 0, tight);
  EXPECT_FALSE(a.ok);
}

TEST(CrossCheck, FailsWhenVerbMissingServerSide) {
  const load::Agreement a = load::cross_check(
      {client_verb(10, 0.002, 0.004)}, load::ServerSnapshot{}, 0, {});
  EXPECT_FALSE(a.ok);
  ASSERT_EQ(a.verbs.size(), 1u);
  EXPECT_FALSE(a.verbs[0].note.empty());
}

// ---- end-to-end against in-process daemons -----------------------------

class LoadServerFixture : public ::testing::Test {
 protected:
  void start(serve::ServeOptions options) {
    options.port = 0;
    options.quiet = true;
    server_ = std::make_unique<serve::ScenarioServer>(std::move(options));
    server_->start();
    thread_ = std::thread([this] { server_->serve_forever(); });
  }

  void TearDown() override {
    if (server_) server_->stop();
    if (thread_.joinable()) thread_.join();
  }

  load::LoadOptions options_for_server() const {
    load::LoadOptions options;
    fleet::FleetMember member;
    member.host = "127.0.0.1";
    member.port = server_->port();
    options.targets.members.push_back(member);
    return options;
  }

  std::unique_ptr<serve::ScenarioServer> server_;
  std::thread thread_;
};

TEST_F(LoadServerFixture, ClosedLoopRunAgreesWithServerHistograms) {
  serve::ServeOptions server_options;
  server_options.threads = 2;
  start(std::move(server_options));

  load::LoadOptions options = options_for_server();
  options.clients = 3;
  options.requests = 30;
  options.seed = 20160;
  const load::LoadResult result = load::run_load(options);

  EXPECT_EQ(result.ops, 30u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.busy, 0u);
  EXPECT_EQ(result.ok, 30u);
  EXPECT_FALSE(result.verbs.empty());
  EXPECT_TRUE(result.server_metrics_available);

  // The headline satellite assertion: client-side and server-side latency
  // histograms of the same run agree within tolerance, per verb.
  EXPECT_TRUE(result.agreement.ok);
  for (const load::VerbAgreement& verb : result.agreement.verbs)
    EXPECT_TRUE(verb.ok) << verb.verb << ": " << verb.note;

  EXPECT_TRUE(result.gates_ok);
  EXPECT_EQ(result.gate_exit_code(), 0);

  // The artifact is gate-ready: provenance-stamped, fault-guarded, with
  // the flat metrics gate.conf rules read.
  const Json& artifact = result.bench_artifact;
  EXPECT_EQ(artifact.at("bench").as_string(), "load");
  EXPECT_EQ(artifact.at("faults_injected").as_uint(), 0u);
  EXPECT_NE(artifact.find("git_sha"), nullptr);
  EXPECT_NE(artifact.find("hostname"), nullptr);
  EXPECT_NE(artifact.find("throughput_rps"), nullptr);
  EXPECT_NE(artifact.find("p50_status_seconds"), nullptr);
  EXPECT_EQ(artifact.at("workload").at("mode").as_string(), "closed");
  EXPECT_EQ(artifact.at("requests").as_uint(), 30u);
}

TEST_F(LoadServerFixture, BusyFramesAccountedAgainstTinyQueue) {
  // One admission thread, one queue slot: every sweep in the workload
  // occupies the daemon while concurrent clients slam into busy frames.
  serve::ServeOptions server_options;
  server_options.threads = 1;
  server_options.admission_threads = 1;
  server_options.queue_capacity = 1;
  start(std::move(server_options));

  load::LoadOptions options = options_for_server();
  options.clients = 4;
  options.duration_seconds = 1.5;
  options.mix = load::WorkloadMix::from_spec(
      R"({"status": 6, "run_warm": 2, "sweep": 2})");
  // On a saturated capacity-1 daemon the client's latency is dominated by
  // queue wait (up to a whole sweep), which the server-side handler time
  // excludes — widen the absolute slack so the cross-check judges the
  // counts and physics, not the queueing.
  options.xcheck.slack_seconds = 2.0;
  const load::LoadResult result = load::run_load(options);

  EXPECT_GT(result.ops, 0u);
  EXPECT_GE(result.busy, 1u);
  // Busy is backpressure, not failure: the classification is disjoint
  // from errors and the two must tile the run with ok.
  EXPECT_EQ(result.ok + result.busy + result.errors, result.ops);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.busy_rate(), 0.0);

  // Every client-counted busy frame is one server-counted rejection —
  // and busy frames stay out of both latency histograms, which is what
  // lets the cross-check still hold on a saturated daemon.
  ASSERT_TRUE(result.server_metrics_available);
  EXPECT_EQ(result.server_busy_rejections, result.busy);
  EXPECT_TRUE(result.agreement.ok);
}

TEST_F(LoadServerFixture, ErrorRateGateFailsTheRun) {
  serve::ServeOptions server_options;
  server_options.threads = 1;
  start(std::move(server_options));

  // Structurally valid JSON that is not a runnable scenario: every run op
  // draws an error frame, which the harness must count (and the server
  // verb-counts too) — then the --max-error-rate gate fails the run.
  load::LoadOptions options = options_for_server();
  options.clients = 2;
  options.requests = 8;
  options.mix = load::WorkloadMix::from_spec(R"({"run_warm": 1})");
  options.base_doc = Json::parse(
      R"({"name": "broken", "design": {}})");  // no design source at all
  options.max_error_rate = 0.5;
  const load::LoadResult result = load::run_load(options);

  EXPECT_EQ(result.errors, result.ops);
  EXPECT_EQ(result.transport_errors, 0u);  // error frames, not hangs
  EXPECT_FALSE(result.gates_ok);
  EXPECT_EQ(result.gate_exit_code(), 3);
  ASSERT_FALSE(result.gate_failures.empty());
  // Error frames are served requests: both sides count them, so the
  // histogram agreement survives a 100%-error run.
  EXPECT_TRUE(result.agreement.ok);
}

TEST(LoadPreflight, UnreachableTargetThrows) {
  load::LoadOptions options;
  fleet::FleetMember member;
  member.host = "127.0.0.1";
  member.port = 1;  // nothing listens on tcp/1
  options.targets.members.push_back(member);
  options.connect_timeout_ms = 200;
  options.requests = 1;
  EXPECT_THROW(load::run_load(options), std::runtime_error);
}

}  // namespace
}  // namespace clktune
