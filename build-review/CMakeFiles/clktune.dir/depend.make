# Empty dependencies file for clktune.
# This may be replaced when dependencies are built.
