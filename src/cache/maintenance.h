// Offline maintenance of the on-disk result-cache layer — the engine
// behind `clktune cache stats|gc|verify`.
//
// The disk layer is a directory of `<key>.json` envelopes (see
// result_cache.h) shared by every process pointing --cache-dir at it; it
// grows without bound unless evicted.  These operations need no running
// cache instance: they walk the directory, so they are safe to run beside
// live writers (entries appear atomically via rename; a concurrently
// evicted entry simply reads as a miss afterwards).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace clktune::cache {

/// Size of the disk layer: how many entries and artifact bytes live under
/// a cache directory.  Throws std::runtime_error when the directory does
/// not exist.
struct DiskCacheStats {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};
DiskCacheStats disk_cache_stats(const std::string& directory);

/// LRU eviction by mtime: removes oldest entries until the layer fits
/// `max_bytes` (0 = remove everything).  Leftover `*.tmp.*` files from
/// crashed writers are always removed.  Closes the ROADMAP cache-eviction
/// item.  Throws std::runtime_error when the directory does not exist.
struct GcReport {
  std::uint64_t scanned = 0;        ///< entries found
  std::uint64_t removed = 0;        ///< entries evicted (oldest first)
  std::uint64_t removed_bytes = 0;
  std::uint64_t kept = 0;
  std::uint64_t kept_bytes = 0;
  std::uint64_t temp_files_removed = 0;
};
GcReport gc_cache_dir(const std::string& directory, std::uint64_t max_bytes);

/// Integrity check: every entry must parse as an envelope whose embedded
/// key matches its filename, whose recorded sha256 matches a re-hash of
/// the artifact, and whose artifact round-trips byte-exactly through
/// ScenarioResult (the property that lets the cache substitute it for a
/// recomputation).  Violations are reported, never repaired — a corrupt
/// entry would be served as a miss at runtime anyway, but naming it lets
/// an operator delete or investigate.  Throws std::runtime_error when the
/// directory does not exist.
struct VerifyIssue {
  std::string file;  ///< entry filename (relative to the directory)
  std::string what;
};
struct VerifyReport {
  std::uint64_t checked = 0;
  std::vector<VerifyIssue> issues;

  bool ok() const { return issues.empty(); }
};
VerifyReport verify_cache_dir(const std::string& directory);

}  // namespace clktune::cache
