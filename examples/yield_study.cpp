// Yield-vs-clock-period study: sweeps the target period around the measured
// distribution and prints yield curves for (a) no buffers, (b) the proposed
// insertion, (c) a buffer on every flip-flop — showing where tuning pays
// and where the unfixable tail takes over.
#include <cstdio>

#include "core/baselines.h"
#include "core/engine.h"
#include "feas/yield_eval.h"
#include "mc/period_mc.h"
#include "netlist/generator.h"
#include "ssta/seq_graph.h"

using namespace clktune;

int main() {
  netlist::SyntheticSpec spec;
  spec.name = "yield_study";
  spec.num_flipflops = 211;
  spec.num_gates = 5597;
  spec.seed = 0x5923401;
  const netlist::Design design = netlist::generate(spec);
  const ssta::SeqGraph graph = ssta::extract_seq_graph(design);
  const mc::Sampler sampler(graph, 20160314);
  const mc::PeriodStats period = mc::sample_min_period(sampler, 5000);
  const mc::Sampler eval(graph, 5150);

  std::printf("# yield curves for %s (mu=%.1f ps, sigma=%.1f ps)\n",
              spec.name.c_str(), period.mu(), period.sigma());
  std::printf("# sigma_offset  T_ps  original%%  proposed%%  every_ff%%  Nb\n");
  for (double off = -1.0; off <= 3.01; off += 0.5) {
    const double t = period.mu() + off * period.sigma();

    core::InsertionConfig config;
    config.num_samples = 4000;
    core::BufferInsertionEngine engine(design, graph, t, config);
    const core::InsertionResult res = engine.run();

    const double original =
        feas::original_yield(graph, t, eval, 4000).yield;
    const double proposed = feas::YieldEvaluator(graph, res.plan, t)
                                .evaluate(eval, 4000)
                                .yield;
    const feas::TuningPlan all =
        core::oracle_plan(graph, config.steps, engine.step_ps());
    const double everyff =
        feas::YieldEvaluator(graph, all, t).evaluate(eval, 4000).yield;

    std::printf("%6.1f  %8.1f  %8.2f  %8.2f  %8.2f  %3d\n", off, t,
                100.0 * original, 100.0 * proposed, 100.0 * everyff,
                res.plan.physical_buffers());
    std::fflush(stdout);
  }
  return 0;
}
