#include "util/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "fault/fault.h"

namespace clktune::util {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("socket: " + what + ": " +
                           std::strerror(errno));
}

/// Connect with a deadline: flip the socket non-blocking, start the
/// connect, poll for writability, read the outcome from SO_ERROR, restore
/// blocking mode.  Returns 0 on success, the failing errno otherwise
/// (ETIMEDOUT when the deadline expired).
int connect_with_timeout(int fd, const sockaddr* addr, socklen_t addrlen,
                         int timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    return errno;
  int result = 0;
  if (::connect(fd, addr, addrlen) != 0) {
    if (errno != EINPROGRESS) {
      result = errno;
    } else {
      pollfd waiter{};
      waiter.fd = fd;
      waiter.events = POLLOUT;
      int rc;
      do {
        rc = ::poll(&waiter, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        result = ETIMEDOUT;
      } else if (rc < 0) {
        result = errno;
      } else {
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0)
          result = errno;
        else
          result = so_error;
      }
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0 && result == 0) result = errno;
  return result;
}

}  // namespace

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpSocket::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);  // unblocks accept()/recv() in other threads
    ::close(fd_);
    fd_ = -1;
  }
}

TcpSocket tcp_listen(std::uint16_t port, int backlog) {
  TcpSocket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) fail("socket()");
  const int one = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    fail("bind(127.0.0.1:" + std::to_string(port) + ")");
  if (::listen(socket.fd(), backlog) != 0) fail("listen()");
  return socket;
}

std::uint16_t tcp_local_port(const TcpSocket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0)
    fail("getsockname()");
  return ntohs(addr.sin_port);
}

TcpSocket tcp_accept(const TcpSocket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return TcpSocket(fd);
    if (errno == EINTR) continue;
    return TcpSocket();  // listener closed (EBADF/EINVAL) or fatal
  }
}

TcpSocket tcp_connect(const std::string& host, std::uint16_t port,
                      int connect_timeout_ms) {
  // Injection: `fail` models a refused connection, `timeout` an expired
  // deadline, `delay` a slow accept queue.
  if (fault::armed()) fault::check("socket.connect");
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &results);
  if (rc != 0)
    throw std::runtime_error("socket: cannot resolve " + host + ": " +
                             gai_strerror(rc));

  TcpSocket socket;
  int last_errno = ECONNREFUSED;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    TcpSocket candidate(
        ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) continue;
    const int err =
        connect_timeout_ms > 0
            ? connect_with_timeout(candidate.fd(), ai->ai_addr,
                                   ai->ai_addrlen, connect_timeout_ms)
            : (::connect(candidate.fd(), ai->ai_addr, ai->ai_addrlen) == 0
                   ? 0
                   : errno);
    if (err == 0) {
      socket = std::move(candidate);
      break;
    }
    last_errno = err;
  }
  ::freeaddrinfo(results);
  if (!socket.valid()) {
    const std::string target = host + ":" + std::to_string(port);
    // A kernel-level ETIMEDOUT in block-forever mode (no deadline set)
    // must not claim a "0 ms" deadline expired — fall through to errno.
    if (last_errno == ETIMEDOUT && connect_timeout_ms > 0)
      throw std::runtime_error("socket: connect(" + target +
                               ") timed out after " +
                               std::to_string(connect_timeout_ms) + " ms");
    errno = last_errno;
    fail("connect(" + target + ")");
  }
  return socket;
}

void tcp_set_recv_timeout(const TcpSocket& socket, int timeout_ms) {
  timeval deadline{};
  deadline.tv_sec = timeout_ms / 1000;
  deadline.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &deadline,
                   sizeof(deadline)) != 0)
    fail("setsockopt(SO_RCVTIMEO)");
}

void tcp_write_all(const TcpSocket& socket, std::string_view data) {
  // Injection: `reset`/`fail` abort before any byte leaves; `truncate`
  // sends only keep_bytes of the frame and then fails, so the peer
  // observes a torn line (no trailing newline) followed by close.
  std::size_t limit = data.size();
  bool tear = false;
  if (fault::armed()) {
    const fault::Fired fired = fault::check("socket.write");
    if (fired.action == fault::Action::truncate) {
      limit = std::min(limit, fired.keep_bytes);
      tear = true;
    }
  }
  std::size_t sent = 0;
  while (sent < limit) {
    const ssize_t n = ::send(socket.fd(), data.data() + sent, limit - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send()");
    }
    sent += static_cast<std::size_t>(n);
  }
  if (tear)
    throw std::runtime_error(
        "socket: fault injected at socket.write: frame torn after " +
        std::to_string(limit) + " bytes");
}

void tcp_drain_pending(const TcpSocket& socket) {
  char discard[4096];
  for (;;) {
    const ssize_t n =
        ::recv(socket.fd(), discard, sizeof(discard), MSG_DONTWAIT);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // empty queue (EAGAIN), EOF, or error — nothing left to eat
    }
  }
}

bool LineReader::read_line(std::string& line) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      line = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    // Injection: `reset` throws as a mid-stream connection reset, `delay`
    // models a slow peer (exercises the recv deadline and the stuck-job
    // watchdog without touching kernel state).
    if (fault::armed()) fault::check("socket.read");
    char chunk[4096];
    const ssize_t n = ::recv(socket_->fd(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw std::runtime_error(
            "socket: recv() timed out waiting for the peer");
      eof_ = true;  // treat a reset peer as end of stream
    } else if (n == 0) {
      eof_ = true;
    } else {
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }
}

}  // namespace clktune::util
