// Post-silicon configuration demo — the paper's "future work" step: after
// buffers are inserted at design time, each manufactured chip is tested and
// its buffers are programmed individually.  This example inserts buffers,
// then plays the role of the tester for a handful of virtual chips and
// prints the per-chip register settings that rescue them.
#include <cstdio>

#include "core/engine.h"
#include "feas/yield_eval.h"
#include "mc/period_mc.h"
#include "netlist/generator.h"
#include "ssta/seq_graph.h"

using namespace clktune;

int main() {
  netlist::SyntheticSpec spec;
  spec.name = "post_silicon";
  spec.num_flipflops = 300;
  spec.num_gates = 2600;
  spec.seed = 99;
  const netlist::Design design = netlist::generate(spec);
  const ssta::SeqGraph graph = ssta::extract_seq_graph(design);
  const mc::Sampler sampler(graph, 20160314);
  const mc::PeriodStats period = mc::sample_min_period(sampler, 4000);
  const double t = period.mu();

  core::InsertionConfig config;
  config.num_samples = 4000;
  core::BufferInsertionEngine engine(design, graph, t, config);
  const core::InsertionResult res = engine.run();
  std::printf("design phase: %d physical buffers inserted at T=%.1f ps\n\n",
              res.plan.physical_buffers(), t);

  // Manufacturing + test: fresh chips, separate randomness from insertion.
  const mc::Sampler fab(graph, 0xFAB);
  const feas::YieldEvaluator tester(graph, res.plan, t);
  int passed_untuned = 0, rescued = 0, dead = 0;
  for (std::uint64_t chip = 0; chip < 24; ++chip) {
    const auto config_steps = tester.find_configuration(fab, chip);
    if (!config_steps.has_value()) {
      std::printf("chip %2llu: DEAD (beyond tuning reach)\n",
                  static_cast<unsigned long long>(chip));
      ++dead;
      continue;
    }
    bool all_zero = true;
    for (int k : *config_steps) all_zero = all_zero && k == 0;
    if (all_zero) {
      std::printf("chip %2llu: passes untuned\n",
                  static_cast<unsigned long long>(chip));
      ++passed_untuned;
      continue;
    }
    std::printf("chip %2llu: rescued with settings [",
                static_cast<unsigned long long>(chip));
    for (std::size_t g = 0; g < config_steps->size(); ++g)
      std::printf("%s%+d x %.1fps", g == 0 ? "" : ", ", (*config_steps)[g],
                  res.plan.step_ps);
    std::printf("]\n");
    ++rescued;
  }
  std::printf(
      "\nof 24 chips: %d pass untuned, %d rescued by configuration, %d "
      "dead\n",
      passed_untuned, rescued, dead);
  return 0;
}
