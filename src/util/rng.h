// Deterministic random number generation for Monte-Carlo sampling.
//
// Two flavours are provided:
//  * SplitMix64 — a tiny sequential PRNG used where a stateful stream is fine.
//  * counter-based hashing (hash_u64 / CounterRng) — stateless, so that the
//    random draw for (seed, sample, entity) is a pure function.  This keeps
//    Monte-Carlo results bit-identical regardless of thread count or
//    iteration order, which the sampling-based insertion flow relies on.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace clktune::util {

/// SplitMix64: fast, well-distributed 64-bit PRNG (public-domain algorithm).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).  n must be positive.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (one value per call; simple and exact
  /// enough for delay sampling).
  double next_normal() {
    // Avoid log(0).
    double u1 = 0.0;
    do {
      u1 = next_double();
    } while (u1 <= 0.0);
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

 private:
  std::uint64_t state_;
};

/// Stateless 64-bit mixing of up to three words (SplitMix-style finalizer).
inline std::uint64_t hash_u64(std::uint64_t a, std::uint64_t b = 0,
                              std::uint64_t c = 0) {
  std::uint64_t z = a * 0x9e3779b97f4a7c15ULL + b * 0xbf58476d1ce4e5b9ULL +
                    c * 0x94d049bb133111ebULL + 0x2545f4914f6cdd1dULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Counter-based generator: each (seed, index pair) maps to an independent
/// uniform/normal draw.  Pure function of its arguments.
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed) : seed_(seed) {}

  double uniform(std::uint64_t i, std::uint64_t j = 0) const {
    return static_cast<double>(hash_u64(seed_, i, j) >> 11) * 0x1.0p-53;
  }

  /// Standard normal draw for counter (i, j), via Box-Muller on two
  /// decorrelated uniforms derived from the same counter.
  double normal(std::uint64_t i, std::uint64_t j = 0) const {
    const std::uint64_t h1 = hash_u64(seed_, i, j);
    const std::uint64_t h2 = hash_u64(~seed_, j + 0x51ed270b, i);
    double u1 = static_cast<double>(h1 >> 11) * 0x1.0p-53;
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace clktune::util
