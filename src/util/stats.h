// Online statistics: Welford mean/variance, min/max tracking, pairwise
// correlation accumulation, and binomial confidence intervals for yields.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "util/assert.h"

namespace clktune::util {

/// Numerically stable running mean / variance / extremes (Welford).
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merge another accumulator (parallel reduction), Chan et al. update.
  void merge(const OnlineStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    n_ += other.n_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Pearson correlation over a streamed sequence of (x, y) pairs.
class OnlineCorrelation {
 public:
  void add(double x, double y) {
    ++n_;
    const double inv = 1.0 / static_cast<double>(n_);
    const double dx = x - mean_x_;
    const double dy = y - mean_y_;
    mean_x_ += dx * inv;
    mean_y_ += dy * inv;
    m2x_ += dx * (x - mean_x_);
    m2y_ += dy * (y - mean_y_);
    cxy_ += dx * (y - mean_y_);
  }

  std::size_t count() const { return n_; }

  /// Returns 0 when either variable is (numerically) constant.
  double correlation() const {
    const double denom = std::sqrt(m2x_ * m2y_);
    if (denom <= 1e-300) return 0.0;
    return cxy_ / denom;
  }

 private:
  std::size_t n_ = 0;
  double mean_x_ = 0.0, mean_y_ = 0.0;
  double m2x_ = 0.0, m2y_ = 0.0, cxy_ = 0.0;
};

/// Symmetric pairwise-correlation accumulator over a fixed set of K series.
class CorrelationMatrix {
 public:
  explicit CorrelationMatrix(std::size_t k) : k_(k), cells_(k * k) {}

  /// Feed one joint observation (vector of length k).
  void add(std::span<const double> obs) {
    CLKTUNE_EXPECTS(obs.size() == k_);
    for (std::size_t i = 0; i < k_; ++i)
      for (std::size_t j = i; j < k_; ++j) cell(i, j).add(obs[i], obs[j]);
  }

  double correlation(std::size_t i, std::size_t j) const {
    if (i > j) std::swap(i, j);
    return cells_[i * k_ + j].correlation();
  }

  std::size_t size() const { return k_; }

 private:
  OnlineCorrelation& cell(std::size_t i, std::size_t j) {
    return cells_[i * k_ + j];
  }

  std::size_t k_;
  std::vector<OnlineCorrelation> cells_;
};

/// Normal-approximation half-width of a 95 % confidence interval for a
/// binomial proportion estimated from n trials.
inline double yield_ci95(double p, std::size_t n) {
  if (n == 0) return 1.0;
  return 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
}

/// Pearson correlation of two equal-length vectors (convenience).
double correlation(std::span<const double> a, std::span<const double> b);

/// Arithmetic mean; 0 for an empty range.
double mean(std::span<const double> v);

}  // namespace clktune::util
