// ISCAS89 ".bench" netlist reader / writer.
//
// The paper evaluates ISCAS89 and TAU-2013 circuits; the .bench format is
// the public interchange format for the former:
//
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = NAND(G0, G1)
//   G7  = DFF(G14)
//
// Gate names are mapped onto the active CellLibrary; n-input AND/OR/NAND/NOR
// fall back to cascaded 2/3-input cells when the library lacks the exact
// arity.  A parsed design gets a default grid placement and zero skew; use
// apply_synthetic_skew() to add the paper's "additional clock skews".
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace clktune::netlist {

/// Parses a .bench stream.  Throws std::runtime_error on malformed input.
Design read_bench(std::istream& in, std::string design_name,
                  CellLibrary library = CellLibrary::standard());

/// Convenience file overload.
Design read_bench_file(const std::string& path,
                       CellLibrary library = CellLibrary::standard());

/// Serialises a netlist back to .bench (placement and skew are not part of
/// the format and are dropped).
void write_bench(std::ostream& out, const Design& design);

/// Assigns a default square-grid placement (pitch design.ff_pitch) to all
/// flip-flops, in flipflop order.
void apply_grid_placement(Design& design);

/// Adds deterministic per-FF clock skew drawn from N(0, sigma_ps), seeded.
void apply_synthetic_skew(Design& design, double sigma_ps,
                          std::uint64_t seed);

}  // namespace clktune::netlist
