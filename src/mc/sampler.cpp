#include "mc/sampler.h"

#include <algorithm>

namespace clktune::mc {

void Sampler::evaluate(std::uint64_t k, ArcSample& out) const {
  const auto& arcs = graph_->arcs;
  out.dmax.resize(arcs.size());
  out.dmin.resize(arcs.size());
  const std::array<double, ssta::kParams> z = globals(k);
  for (std::size_t e = 0; e < arcs.size(); ++e) {
    // One local draw per arc, shared by the late and early delay so their
    // order is preserved almost surely.
    const double zloc = rng_.normal(k, 0x10000 + e);
    double late = arcs[e].dmax.eval(z, zloc);
    double early = arcs[e].dmin.eval(z, zloc);
    late = std::max(late, 0.0);
    early = std::clamp(early, 0.0, late);
    out.dmax[e] = late;
    out.dmin[e] = early;
  }
}

}  // namespace clktune::mc
