// Per-sample ILP machinery: given one Monte-Carlo chip, find the minimum
// number of adjusted buffers (problem (8)-(13) / (III-B1)) and then
// concentrate tuning values (problems (14)-(17) and (18)-(21)).
//
// Two implementation devices keep 10 000-sample runs tractable without
// changing the optima:
//
//  * Lazy constraint generation.  The ILP starts from the violated arcs
//    only; the solved assignment is verified against every arc incident to
//    its support and newly violated arcs are added until the solution is
//    globally feasible.  Because the working model is always a relaxation
//    of the full model, the final solution is optimal for the full model.
//
//  * Greedy warm starts.  A difference-constraint feasibility oracle
//    (Bellman-Ford) grows a buffer set greedily; the resulting incumbent
//    lets branch & bound prune aggressively from the first node.
//
// The hot entry point consumes precomputed quantized constants
// (mc::ArcConstantsView, usually from the engine's cross-pass cache) plus a
// caller-owned SolveWorkspace.  The workspace holds every per-sample
// scratch structure — working-model flags reset in O(active) via epoch
// stamping, pooled component/greedy vectors, a reusable
// difference-constraint system — so solving a sample that meets timing (or
// is rescued without a MILP) performs zero heap allocations in steady
// state, beyond the vectors owned by the returned solution.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "feas/diff_constraints.h"
#include "mc/arc_constants.h"
#include "mc/sampler.h"
#include "milp/branch_and_bound.h"
#include "ssta/seq_graph.h"

namespace clktune::core {

/// Candidate buffers and their discrete windows, indexed by flip-flop.
struct CandidateWindows {
  /// k_lo/k_hi in step units; entries only meaningful where candidate.
  std::vector<int> k_lo, k_hi;
  std::vector<char> candidate;

  static CandidateWindows floating(int num_ffs, int steps);
  static CandidateWindows none(int num_ffs);

  int count() const {
    int n = 0;
    for (char c : candidate) n += c != 0;
    return n;
  }
};

enum class ConcentrateMode {
  none,          ///< stop after minimising the buffer count
  toward_zero,   ///< III-A3: minimise sum |x_i|
  toward_target  ///< III-B2: minimise sum |x_i - x_avg,i|
};

struct SampleSolution {
  /// False when the chip cannot meet timing even with every candidate
  /// buffer at full freedom (or a non-candidate arc fails outright).
  bool fixable = true;
  /// Minimum number of adjusted buffers n_k (0 when the chip passes as-is).
  int nk = 0;
  /// Non-zero tunings (ff, k in steps) of the final assignment.
  std::vector<std::pair<int, int>> tunings;
  /// Non-zero tunings right after the count-minimisation phase, before any
  /// concentration (the scattered values of Fig. 5a).
  std::vector<std::pair<int, int>> mincount_tunings;
  // Diagnostics.
  long milp_nodes = 0;
  int lazy_rounds = 0;
  int milps_solved = 0;
  bool truncated = false;  ///< a branch & bound hit its node limit
};

/// Reusable per-thread scratch for SampleSolver::solve.  All members are
/// internal state: default-construct one per worker thread and pass it to
/// every solve call.  Contents carry no information between calls (epoch
/// stamping invalidates them wholesale), only capacity.
struct SolveWorkspace {
  struct Component {
    std::vector<int> arcs;  ///< active arc ids
    std::vector<int> vars;  ///< working-model var ids
  };

  std::uint64_t epoch = 0;
  // Working model: per-arc membership/violation flags and per-FF variable
  // slots, all valid only where the stamp equals `epoch`.
  std::vector<std::uint64_t> in_model_epoch;  // per arc
  std::vector<std::uint64_t> violated_epoch;  // per arc
  std::vector<std::uint64_t> var_epoch;       // per FF
  std::vector<int> var_of_ff;                 // per FF, guarded by var_epoch
  std::vector<int> active;                    // arc ids in the working model
  std::vector<int> ff_of_var;
  std::vector<std::int64_t> k_of_var;  // current assignment (steps)

  // Connected-component scratch (pooled: inner vectors keep capacity).
  std::vector<Component> comps;
  std::size_t comps_used = 0;
  std::vector<int> parent;
  std::vector<int> comp_of_root;
  std::vector<int> sorted_active;

  // Per-component scratch.
  std::vector<char> covered;
  std::vector<int> local_of_var;
  std::vector<std::int64_t> count_solution;
  std::vector<std::int64_t> final_solution;

  // Greedy-oracle scratch.
  feas::DiffConstraints oracle;
  std::vector<char> greedy_chosen;
  std::vector<int> greedy_dense;
  std::vector<int> greedy_local_of_var;
  std::vector<int> greedy_score;
  std::vector<std::int64_t> greedy_x;

  // Verification / accumulation scratch.
  std::vector<int> fresh;
  std::vector<std::pair<int, int>> mincount_acc;

  // Constants scratch for the ArcSample convenience overload.
  mc::ArcConstants constants;
};

class SampleSolver {
 public:
  SampleSolver(const ssta::SeqGraph& graph, double step_ps,
               double clock_period_ps, CandidateWindows windows,
               long milp_max_nodes = 50000);

  /// Solves one sample from precomputed quantized constants — the hot path.
  /// `targets` (step units, indexed by ff) is required for
  /// ConcentrateMode::toward_target.
  SampleSolution solve(const mc::ArcConstantsView& constants,
                       ConcentrateMode mode,
                       const std::vector<double>* targets,
                       SolveWorkspace& ws) const;

  /// Convenience overload: quantizes `arc_sample` first (thread-local
  /// workspace).  Prefer the view overload in loops.
  SampleSolution solve(const mc::ArcSample& arc_sample, ConcentrateMode mode,
                       const std::vector<double>* targets = nullptr) const;

  /// Integer constraint constants for sample arcs (exposed for tests):
  /// setup:  x_i - x_j <= setup_steps[e];  hold:  x_j - x_i <= hold_steps[e].
  /// Delegates to the shared mc::floor_steps quantizer.
  void arc_constants(const mc::ArcSample& arc_sample,
                     std::vector<std::int64_t>& setup_steps,
                     std::vector<std::int64_t>& hold_steps) const;

  const CandidateWindows& windows() const { return windows_; }
  double step_ps() const { return step_ps_; }
  double clock_period_ps() const { return clock_period_; }

 private:
  struct WorkingModel;

  const ssta::SeqGraph* graph_;
  double step_ps_;
  double clock_period_;
  CandidateWindows windows_;
  long milp_max_nodes_;
};

}  // namespace clktune::core
