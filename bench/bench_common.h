// Shared setup for the reproduction benches: circuit construction, the three
// Table-I clock settings (muT, muT+sigma, muT+2sigma), and env-variable
// configuration.
//
//   CLKTUNE_SAMPLES   insertion Monte-Carlo samples (default 10000, paper)
//   CLKTUNE_EVAL      yield-evaluation samples       (default 10000)
//   CLKTUNE_THREADS   worker threads                 (default: all cores)
//   CLKTUNE_CIRCUITS  comma list to restrict circuits (default: all eight)
//   CLKTUNE_EVAL_CACHE_MB  total delay-cache budget, MB (default 512,
//                          split across a bench's simultaneously resident
//                          caches; oversized circuits fall back to
//                          streaming)
#pragma once

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/insertion_config.h"
#include "fault/fault.h"
#include "feas/yield_eval.h"
#include "mc/period_mc.h"
#include "mc/sampler.h"
#include "netlist/generator.h"
#include "netlist/paper_circuits.h"
#include "ssta/seq_graph.h"
#include "util/alloc_counter.h"
#include "util/env.h"
#include "util/json.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace clktune::bench {

struct BenchConfig {
  std::uint64_t samples;
  std::uint64_t eval_samples;
  int threads;
  long eval_cache_mb;
  std::vector<std::string> circuits;

  std::uint64_t eval_cache_bytes() const {
    return eval_cache_mb <= 0
               ? 0
               : static_cast<std::uint64_t>(eval_cache_mb) << 20;
  }

  static BenchConfig from_env() {
    // Honour CLKTUNE_FAULT_PLAN in benches too: a bench under faults is a
    // chaos experiment, and the report stamps `faults_injected` so the
    // perf gate can prove production numbers ran disarmed.
    fault::arm_from_environment();
    BenchConfig cfg;
    cfg.samples = static_cast<std::uint64_t>(
        util::env_long("CLKTUNE_SAMPLES", 10000));
    cfg.eval_samples =
        static_cast<std::uint64_t>(util::env_long("CLKTUNE_EVAL", 10000));
    cfg.threads = static_cast<int>(util::env_long("CLKTUNE_THREADS", 0));
    cfg.eval_cache_mb = util::env_long("CLKTUNE_EVAL_CACHE_MB", 512);
    const std::string list = util::env_string("CLKTUNE_CIRCUITS", "");
    if (!list.empty()) {
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > pos) cfg.circuits.push_back(list.substr(pos, end - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    }
    return cfg;
  }

  bool wants(const std::string& name) const {
    if (circuits.empty()) return true;
    for (const std::string& c : circuits)
      if (c == name) return true;
    return false;
  }

  core::InsertionConfig insertion() const {
    core::InsertionConfig ic;
    ic.num_samples = samples;
    ic.threads = threads;
    return ic;
  }
};

/// A circuit plus its sequential graph and measured period distribution.
struct PreparedCircuit {
  netlist::SyntheticSpec spec;
  netlist::Design design;
  ssta::SeqGraph graph;
  mc::PeriodStats period;

  double setting_period(int sigmas) const {
    return period.mu() + sigmas * period.sigma();
  }
};

inline PreparedCircuit prepare(const netlist::SyntheticSpec& spec,
                               const BenchConfig& cfg) {
  PreparedCircuit pc;
  pc.spec = spec;
  pc.design = netlist::generate(spec);
  pc.graph = ssta::extract_seq_graph(pc.design);
  const mc::Sampler sampler(pc.graph, 20160314);
  pc.period = mc::sample_min_period(
      sampler, std::max<std::uint64_t>(2000, cfg.samples / 2), cfg.threads);
  return pc;
}

inline const char* setting_name(int sigmas) {
  switch (sigmas) {
    case 0:
      return "muT";
    case 1:
      return "muT+s";
    default:
      return "muT+2s";
  }
}

/// Evaluation sampler seed is distinct from the insertion seed so reported
/// yields are out-of-sample.
inline constexpr std::uint64_t kEvalSeed = 0xE7A1;

/// The commit the bench binary ran against: GITHUB_SHA when CI exports it,
/// otherwise `git rev-parse` against the working tree, otherwise
/// "unknown".  Advisory provenance — never used for comparisons.
inline std::string bench_git_sha() {
  const std::string env = util::env_string("GITHUB_SHA", "");
  if (!env.empty()) return env;
  std::string sha;
  if (std::FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      sha = buf;
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    }
    ::pclose(pipe);
  }
  return sha.empty() ? "unknown" : sha;
}

inline std::string bench_hostname() {
  char buf[256] = {};
  if (::gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf;
}

/// Machine-readable benchmark artifact: construct one at the top of a bench
/// main, feed it counters as the run progresses, and `return report.write()`
/// at the end.  Writes BENCH_<name>.json into the working directory with
/// wall-clock seconds, samples/sec throughput, total MILP nodes and the
/// main thread's heap-allocation count, so perf trajectories are diffable
/// across commits (CI uploads them as artifacts; timings stay advisory).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Monte-Carlo sample problems processed (solves, yield checks, draws).
  void count_samples(std::uint64_t n) { samples_ += n; }
  void count_milp_nodes(std::uint64_t n) { milp_nodes_ += n; }
  /// One engine run: its configured sample count plus its MILP nodes.
  void count_insertion(const core::InsertionResult& res,
                       std::uint64_t samples) {
    samples_ += samples;
    milp_nodes_ += res.step1.milp_nodes + res.step2a.milp_nodes +
                   res.step2b.milp_nodes;
  }
  /// Extra named metric, appended after the standard fields.
  void metric(const std::string& key, double value) {
    extra_.set(key, value);
  }
  /// Headline samples/sec measured externally (micro benches); by default
  /// the report derives it as samples / wall_seconds.
  void override_samples_per_sec(double sps) { samples_per_sec_ = sps; }

  int write() const {
    const double secs = wall_.seconds();
    util::Json j = util::Json::object();
    j.set("bench", name_);
    j.set("wall_seconds", secs);
    j.set("samples", samples_);
    const double sps = samples_per_sec_ >= 0.0
                           ? samples_per_sec_
                           : (secs > 0.0 && samples_ > 0
                                  ? static_cast<double>(samples_) / secs
                                  : 0.0);
    j.set("samples_per_sec", sps);
    j.set("milp_nodes", milp_nodes_);
    j.set("allocations", allocs_.delta());
    // Faults fired during the run.  Nonzero means the fault registry was
    // armed — the numbers describe a chaos experiment, not performance;
    // scripts/perf_gate.sh refuses such a report outright.
    j.set("faults_injected", fault::injected_total());
    // Provenance stamp — which commit, where, how parallel — so a stored
    // BENCH_*.json is attributable long after the run.  Appended after
    // the standard fields; scripts/perf_gate.sh gates on wall_seconds and
    // refuses reports with nonzero faults_injected.
    j.set("git_sha", bench_git_sha());
    j.set("hostname", bench_hostname());
    j.set("threads",
          static_cast<std::uint64_t>(util::resolve_thread_count(
              static_cast<std::size_t>(
                  std::max(0L, util::env_long("CLKTUNE_THREADS", 0))))));
    for (const auto& [key, value] : extra_.as_object()) j.set(key, value);
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
      return 1;
    }
    out << j.dump(2) << "\n";
    std::fprintf(stderr, "wrote %s (%.2f s, %.0f samples/s)\n", path.c_str(),
                 secs, sps);
    return 0;
  }

 private:
  std::string name_;
  util::Stopwatch wall_;
  util::AllocCounterScope allocs_;
  std::uint64_t samples_ = 0;
  std::uint64_t milp_nodes_ = 0;
  double samples_per_sec_ = -1.0;
  util::Json extra_ = util::Json::object();
};

}  // namespace clktune::bench
