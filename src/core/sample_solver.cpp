#include "core/sample_solver.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "lp/model.h"
#include "util/assert.h"

namespace clktune::core {

CandidateWindows CandidateWindows::floating(int num_ffs, int steps) {
  CandidateWindows w;
  w.k_lo.assign(static_cast<std::size_t>(num_ffs), -steps);
  w.k_hi.assign(static_cast<std::size_t>(num_ffs), steps);
  w.candidate.assign(static_cast<std::size_t>(num_ffs), 1);
  return w;
}

CandidateWindows CandidateWindows::none(int num_ffs) {
  CandidateWindows w;
  w.k_lo.assign(static_cast<std::size_t>(num_ffs), 0);
  w.k_hi.assign(static_cast<std::size_t>(num_ffs), 0);
  w.candidate.assign(static_cast<std::size_t>(num_ffs), 0);
  return w;
}

SampleSolver::SampleSolver(const ssta::SeqGraph& graph, double step_ps,
                           double clock_period_ps, CandidateWindows windows,
                           long milp_max_nodes)
    : graph_(&graph),
      step_ps_(step_ps),
      clock_period_(clock_period_ps),
      windows_(std::move(windows)),
      milp_max_nodes_(milp_max_nodes) {
  CLKTUNE_EXPECTS(step_ps_ > 0.0);
  CLKTUNE_EXPECTS(clock_period_ > 0.0);
  CLKTUNE_EXPECTS(windows_.candidate.size() ==
                  static_cast<std::size_t>(graph.num_ffs));
  for (std::size_t f = 0; f < windows_.candidate.size(); ++f) {
    if (!windows_.candidate[f]) continue;
    // "Unadjusted" (c_i = 0) means x_i = 0, so candidate windows must
    // contain zero; the engine clamps assigned windows accordingly.
    CLKTUNE_EXPECTS(windows_.k_lo[f] <= 0 && windows_.k_hi[f] >= 0);
    // Zero-width windows are equivalent to non-candidacy.
    if (windows_.k_lo[f] == 0 && windows_.k_hi[f] == 0)
      windows_.candidate[f] = 0;
  }
}

void SampleSolver::arc_constants(const mc::ArcSample& arc_sample,
                                 std::vector<std::int64_t>& setup_steps,
                                 std::vector<std::int64_t>& hold_steps) const {
  const ssta::SeqGraph& g = *graph_;
  setup_steps.resize(g.arcs.size());
  hold_steps.resize(g.arcs.size());
  for (std::size_t e = 0; e < g.arcs.size(); ++e) {
    double setup_c = 0.0, hold_c = 0.0;
    mc::arc_slack(g, e, arc_sample.dmax[e], arc_sample.dmin[e], clock_period_,
                  setup_c, hold_c);
    setup_steps[e] = mc::floor_steps(setup_c, step_ps_);
    hold_steps[e] = mc::floor_steps(hold_c, step_ps_);
  }
}

namespace {

/// Model variables of one component subproblem.
struct BuiltModel {
  lp::Model model;
  std::vector<int> k_var;  // per component var
  std::vector<int> c_var;
  std::vector<int> u_var;  // empty unless concentrating
  /// Branching variables: the binary c's.  With arc constants floored to
  /// the step grid the k-subsystem is totally unimodular, so the k's come
  /// out integral at LP vertices once the c's are fixed; when they do not
  /// (possible in concentrate models), the caller re-solves with the k's
  /// marked integral as well.
  std::vector<int> int_vars;
  std::vector<int> k_int_vars;
};

using Component = SolveWorkspace::Component;

}  // namespace

// Working state of one sample's lazy-constraint solve: a view over the
// caller's SolveWorkspace.  Constructing one bumps the workspace epoch,
// which invalidates every per-arc / per-FF stamp in O(1); only structures
// actually touched this sample are (re)written.
struct SampleSolver::WorkingModel {
  const SampleSolver& solver;
  const mc::ArcConstantsView& constants;
  SolveWorkspace& ws;

  WorkingModel(const SampleSolver& s, const mc::ArcConstantsView& c,
               SolveWorkspace& w)
      : solver(s), constants(c), ws(w) {
    ++ws.epoch;
    const std::size_t num_arcs = s.graph_->arcs.size();
    const auto num_ffs = static_cast<std::size_t>(s.graph_->num_ffs);
    if (ws.in_model_epoch.size() < num_arcs) {
      ws.in_model_epoch.resize(num_arcs, 0);
      ws.violated_epoch.resize(num_arcs, 0);
    }
    if (ws.var_epoch.size() < num_ffs) {
      ws.var_epoch.resize(num_ffs, 0);
      ws.var_of_ff.resize(num_ffs, -1);
    }
    ws.active.clear();
    ws.ff_of_var.clear();
    ws.k_of_var.clear();
    ws.comps_used = 0;
  }

  std::int64_t setup(int e) const {
    return constants.setup_steps[static_cast<std::size_t>(e)];
  }
  std::int64_t hold(int e) const {
    return constants.hold_steps[static_cast<std::size_t>(e)];
  }

  bool in_model(int e) const {
    return ws.in_model_epoch[static_cast<std::size_t>(e)] == ws.epoch;
  }
  bool violated(int e) const {
    return ws.violated_epoch[static_cast<std::size_t>(e)] == ws.epoch;
  }
  void mark_violated(int e) {
    ws.violated_epoch[static_cast<std::size_t>(e)] = ws.epoch;
  }

  void ensure_var(int ff) {
    if (!solver.windows_.candidate[static_cast<std::size_t>(ff)]) return;
    const auto fs = static_cast<std::size_t>(ff);
    if (ws.var_epoch[fs] == ws.epoch) return;
    ws.var_epoch[fs] = ws.epoch;
    ws.var_of_ff[fs] = static_cast<int>(ws.ff_of_var.size());
    ws.ff_of_var.push_back(ff);
    ws.k_of_var.push_back(0);
  }

  void add_arc(int e) {
    const auto es = static_cast<std::size_t>(e);
    if (ws.in_model_epoch[es] == ws.epoch) return;
    ws.in_model_epoch[es] = ws.epoch;
    ws.active.push_back(e);
    const ssta::SeqArc& arc = solver.graph_->arcs[es];
    ensure_var(arc.src_ff);
    ensure_var(arc.dst_ff);
  }

  int var_of(int ff) const {
    const auto fs = static_cast<std::size_t>(ff);
    return ws.var_epoch[fs] == ws.epoch ? ws.var_of_ff[fs] : -1;
  }

  std::int64_t window_lo(int ff) const {
    return solver.windows_.k_lo[static_cast<std::size_t>(ff)];
  }
  std::int64_t window_hi(int ff) const {
    return solver.windows_.k_hi[static_cast<std::size_t>(ff)];
  }

  /// Connected components of the active arcs over working variables, built
  /// into the workspace pool; returns the component count.  Deterministic:
  /// components ordered by their smallest active-arc index.
  std::size_t components() {
    const std::size_t nv = ws.ff_of_var.size();
    ws.parent.resize(nv);
    for (std::size_t v = 0; v < nv; ++v) ws.parent[v] = static_cast<int>(v);
    const auto find = [&](int v) {
      while (ws.parent[static_cast<std::size_t>(v)] != v) {
        ws.parent[static_cast<std::size_t>(v)] =
            ws.parent[static_cast<std::size_t>(
                ws.parent[static_cast<std::size_t>(v)])];
        v = ws.parent[static_cast<std::size_t>(v)];
      }
      return v;
    };
    for (int e : ws.active) {
      const ssta::SeqArc& arc =
          solver.graph_->arcs[static_cast<std::size_t>(e)];
      const int vi = var_of(arc.src_ff);
      const int vj = var_of(arc.dst_ff);
      if (vi >= 0 && vj >= 0 && vi != vj)
        ws.parent[static_cast<std::size_t>(find(vi))] = find(vj);
    }
    ws.comp_of_root.assign(nv, -1);
    ws.comps_used = 0;
    // Assign arcs in insertion order so component order is deterministic.
    ws.sorted_active.assign(ws.active.begin(), ws.active.end());
    std::sort(ws.sorted_active.begin(), ws.sorted_active.end());
    for (int e : ws.sorted_active) {
      const ssta::SeqArc& arc =
          solver.graph_->arcs[static_cast<std::size_t>(e)];
      const int vi = var_of(arc.src_ff);
      const int vj = var_of(arc.dst_ff);
      const int root = find(vi >= 0 ? vi : vj);
      int& c = ws.comp_of_root[static_cast<std::size_t>(root)];
      if (c < 0) {
        c = static_cast<int>(ws.comps_used);
        if (ws.comps_used == ws.comps.size()) ws.comps.emplace_back();
        Component& fresh = ws.comps[ws.comps_used++];
        fresh.arcs.clear();
        fresh.vars.clear();
      }
      ws.comps[static_cast<std::size_t>(c)].arcs.push_back(e);
    }
    for (std::size_t v = 0; v < nv; ++v) {
      const int c = ws.comp_of_root[static_cast<std::size_t>(
          find(static_cast<int>(v)))];
      if (c >= 0)
        ws.comps[static_cast<std::size_t>(c)].vars.push_back(
            static_cast<int>(v));
    }
    return ws.comps_used;
  }

  /// Vertex-cover lower bound on the adjusted-buffer count of a component,
  /// from its violated arcs.
  int cover_lower_bound(const Component& comp) {
    ws.covered.assign(ws.ff_of_var.size(), 0);
    int lb = 0;
    for (int e : comp.arcs) {
      if (!violated(e)) continue;
      const ssta::SeqArc& arc =
          solver.graph_->arcs[static_cast<std::size_t>(e)];
      const int vi = var_of(arc.src_ff);
      const int vj = var_of(arc.dst_ff);
      if (vi >= 0 && vj >= 0) continue;
      const int forced = vi >= 0 ? vi : vj;
      if (!ws.covered[static_cast<std::size_t>(forced)]) {
        ws.covered[static_cast<std::size_t>(forced)] = 1;
        ++lb;
      }
    }
    for (int e : comp.arcs) {
      if (!violated(e)) continue;
      const ssta::SeqArc& arc =
          solver.graph_->arcs[static_cast<std::size_t>(e)];
      const int vi = var_of(arc.src_ff);
      const int vj = var_of(arc.dst_ff);
      if (vi < 0 || vj < 0) continue;
      if (ws.covered[static_cast<std::size_t>(vi)] ||
          ws.covered[static_cast<std::size_t>(vj)])
        continue;
      ws.covered[static_cast<std::size_t>(vi)] = 1;
      ws.covered[static_cast<std::size_t>(vj)] = 1;
      ++lb;
    }
    return lb;
  }

  /// Single-buffer closed form for a component: a one-buffer rescue must be
  /// incident to every violated arc of the component and satisfy all arcs
  /// incident to it in the whole graph (other flip-flops stay at 0).
  /// Returns (var, lo, hi) of the feasible interval, or nullopt.
  std::optional<std::tuple<int, std::int64_t, std::int64_t>>
  single_buffer_interval(const Component& comp) const {
    int first_violated = -1;
    for (int e : comp.arcs)
      if (violated(e)) {
        first_violated = e;
        break;
      }
    if (first_violated < 0) return std::nullopt;
    const ssta::SeqArc& first =
        solver.graph_->arcs[static_cast<std::size_t>(first_violated)];
    for (const int b : {first.src_ff, first.dst_ff}) {
      if (var_of(b) < 0) continue;
      bool all_incident = true;
      for (int e : comp.arcs) {
        if (!violated(e)) continue;
        const ssta::SeqArc& arc =
            solver.graph_->arcs[static_cast<std::size_t>(e)];
        all_incident = all_incident && (arc.src_ff == b || arc.dst_ff == b);
      }
      if (!all_incident) continue;
      std::int64_t lo = window_lo(b);
      std::int64_t hi = window_hi(b);
      for (int e :
           solver.graph_->arcs_of_ff[static_cast<std::size_t>(b)]) {
        const ssta::SeqArc& arc =
            solver.graph_->arcs[static_cast<std::size_t>(e)];
        if (arc.src_ff == arc.dst_ff) continue;  // tuning cancels
        // Arcs whose far endpoint is a variable of another component are
        // handled by the global verification pass; the closed form treats
        // the far endpoint as 0 (components are disjoint in the active set,
        // and any conflict surfaces as a fresh violated arc).
        if (arc.src_ff == b) {
          hi = std::min(hi, setup(e));  //  x_b <= setup
          lo = std::max(lo, -hold(e));  // -x_b <= hold
        } else {
          lo = std::max(lo, -setup(e));  // -x_b <= setup
          hi = std::min(hi, hold(e));    //  x_b <= hold
        }
      }
      if (lo > hi) continue;
      return std::make_tuple(var_of(b), lo, hi);
    }
    return std::nullopt;
  }

  /// Builds the MILP for one component.  mode none => objective min sum(c);
  /// otherwise min sum(u) subject to sum(c) <= nk_limit.
  BuiltModel build(const Component& comp, ConcentrateMode mode,
                   const std::vector<double>* targets, int nk_limit,
                   std::vector<int>& local_of_var) const {
    BuiltModel bm;
    const std::size_t nv = comp.vars.size();
    bm.k_var.resize(nv);
    bm.c_var.resize(nv);
    const bool concentrate = mode != ConcentrateMode::none;
    if (concentrate) bm.u_var.resize(nv);

    for (std::size_t l = 0; l < nv; ++l) {
      const int v = comp.vars[l];
      local_of_var[static_cast<std::size_t>(v)] = static_cast<int>(l);
      const int ff = ws.ff_of_var[static_cast<std::size_t>(v)];
      const double lo = static_cast<double>(window_lo(ff));
      const double hi = static_cast<double>(window_hi(ff));
      bm.k_var[l] = bm.model.add_variable(lo, hi, 0.0);
      bm.c_var[l] = bm.model.add_variable(0.0, 1.0, concentrate ? 0.0 : 1.0);
      bm.int_vars.push_back(bm.c_var[l]);
      bm.k_int_vars.push_back(bm.k_var[l]);
      // Big-M linking (5)-(6) with the tightest valid constant.
      const double gamma = std::max(-lo, hi);
      bm.model.add_row(lp::Sense::less_equal,
                       {{bm.k_var[l], 1.0}, {bm.c_var[l], -gamma}}, 0.0);
      bm.model.add_row(lp::Sense::less_equal,
                       {{bm.k_var[l], -1.0}, {bm.c_var[l], -gamma}}, 0.0);
      if (concentrate) {
        // Targets are rounded to the step grid: with integral data the LP
        // then has integral-k vertices (fallback below covers exceptions).
        const double t = mode == ConcentrateMode::toward_zero
                             ? 0.0
                             : std::round((*targets)[
                                   static_cast<std::size_t>(ff)]);
        bm.u_var[l] = bm.model.add_variable(0.0, lp::kInf, 1.0);
        bm.model.add_row(lp::Sense::less_equal,
                         {{bm.k_var[l], 1.0}, {bm.u_var[l], -1.0}}, t);
        bm.model.add_row(lp::Sense::less_equal,
                         {{bm.k_var[l], -1.0}, {bm.u_var[l], -1.0}}, -t);
      }
    }
    if (concentrate) {
      std::vector<lp::Coefficient> row;
      for (std::size_t l = 0; l < nv; ++l) row.push_back({bm.c_var[l], 1.0});
      bm.model.add_row(lp::Sense::less_equal, row, nk_limit);
    }

    for (int e : comp.arcs) {
      const ssta::SeqArc& arc =
          solver.graph_->arcs[static_cast<std::size_t>(e)];
      const int vi = var_of(arc.src_ff);
      const int vj = var_of(arc.dst_ff);
      const int li = vi >= 0 ? local_of_var[static_cast<std::size_t>(vi)] : -1;
      const int lj = vj >= 0 ? local_of_var[static_cast<std::size_t>(vj)] : -1;
      CLKTUNE_ASSERT(li >= 0 || lj >= 0);
      CLKTUNE_ASSERT(li != lj);
      std::vector<lp::Coefficient> setup_row, hold_row;
      if (li >= 0) {
        setup_row.push_back({bm.k_var[static_cast<std::size_t>(li)], 1.0});
        hold_row.push_back({bm.k_var[static_cast<std::size_t>(li)], -1.0});
      }
      if (lj >= 0) {
        setup_row.push_back({bm.k_var[static_cast<std::size_t>(lj)], -1.0});
        hold_row.push_back({bm.k_var[static_cast<std::size_t>(lj)], 1.0});
      }
      bm.model.add_row(lp::Sense::less_equal, setup_row,
                       static_cast<double>(setup(e)));
      bm.model.add_row(lp::Sense::less_equal, hold_row,
                       static_cast<double>(hold(e)));
    }
    return bm;
  }

  /// Greedy buffer-set growth with a Bellman-Ford feasibility oracle over
  /// one component.  Fills ws.greedy_x (tunings per component var) and
  /// returns true, or returns false when the component is infeasible even
  /// with all its candidates.  Zero allocations in steady state: the
  /// difference-constraint oracle is a pooled workspace member.
  bool greedy_tunings(const Component& comp) {
    const std::size_t nv = comp.vars.size();
    ws.greedy_chosen.assign(nv, 0);
    ws.greedy_dense.assign(nv, -1);
    ws.greedy_local_of_var.assign(ws.ff_of_var.size(), -1);
    for (std::size_t l = 0; l < nv; ++l)
      ws.greedy_local_of_var[static_cast<std::size_t>(comp.vars[l])] =
          static_cast<int>(l);

    for (std::size_t round = 0; round <= nv; ++round) {
      int n_chosen = 0;
      for (std::size_t l = 0; l < nv; ++l)
        ws.greedy_dense[l] = ws.greedy_chosen[l] ? n_chosen++ : -1;
      const int ref = n_chosen;
      feas::DiffConstraints& sys = ws.oracle;
      sys.reset(n_chosen + 1);
      for (std::size_t l = 0; l < nv; ++l) {
        if (!ws.greedy_chosen[l]) continue;
        const int ff = ws.ff_of_var[static_cast<std::size_t>(comp.vars[l])];
        sys.add(ws.greedy_dense[l], ref, window_hi(ff));
        sys.add(ref, ws.greedy_dense[l], -window_lo(ff));
      }
      for (int e : comp.arcs) {
        const ssta::SeqArc& arc =
            solver.graph_->arcs[static_cast<std::size_t>(e)];
        const int vi = var_of(arc.src_ff);
        const int vj = var_of(arc.dst_ff);
        const int li =
            vi >= 0 ? ws.greedy_local_of_var[static_cast<std::size_t>(vi)]
                    : -1;
        const int lj =
            vj >= 0 ? ws.greedy_local_of_var[static_cast<std::size_t>(vj)]
                    : -1;
        const int ui = li >= 0 && ws.greedy_chosen[static_cast<std::size_t>(li)]
                           ? ws.greedy_dense[static_cast<std::size_t>(li)]
                           : ref;
        const int uj = lj >= 0 && ws.greedy_chosen[static_cast<std::size_t>(lj)]
                           ? ws.greedy_dense[static_cast<std::size_t>(lj)]
                           : ref;
        sys.add(ui, uj, setup(e));
        sys.add(uj, ui, hold(e));
      }
      if (const std::vector<std::int64_t>* sol = sys.solve_inplace()) {
        ws.greedy_x.assign(nv, 0);
        const std::int64_t base = (*sol)[static_cast<std::size_t>(ref)];
        for (std::size_t l = 0; l < nv; ++l)
          if (ws.greedy_chosen[l])
            ws.greedy_x[l] =
                (*sol)[static_cast<std::size_t>(ws.greedy_dense[l])] - base;
        return true;
      }
      if (round == nv) break;
      // Add the unchosen var with the highest incidence on component arcs.
      int best = -1;
      int best_score = -1;
      ws.greedy_score.assign(nv, 0);
      for (int e : comp.arcs) {
        const ssta::SeqArc& arc =
            solver.graph_->arcs[static_cast<std::size_t>(e)];
        for (const int ff : {arc.src_ff, arc.dst_ff}) {
          const int v = var_of(ff);
          if (v < 0) continue;
          const int l = ws.greedy_local_of_var[static_cast<std::size_t>(v)];
          if (l >= 0 && !ws.greedy_chosen[static_cast<std::size_t>(l)])
            ++ws.greedy_score[static_cast<std::size_t>(l)];
        }
      }
      for (std::size_t l = 0; l < nv; ++l) {
        if (ws.greedy_chosen[l]) continue;
        if (ws.greedy_score[l] > best_score) {
          best_score = ws.greedy_score[l];
          best = static_cast<int>(l);
        }
      }
      if (best < 0) break;
      ws.greedy_chosen[static_cast<std::size_t>(best)] = 1;
    }
    return false;
  }

  /// Checks the current global assignment against all arcs incident to
  /// adjusted flip-flops; fills ws.fresh with newly violated arcs not yet
  /// in the model.
  const std::vector<int>& fresh_violations() {
    ws.fresh.clear();
    const auto value_of_ff = [&](int ff) -> std::int64_t {
      const int v = var_of(ff);
      return v < 0 ? 0 : ws.k_of_var[static_cast<std::size_t>(v)];
    };
    for (std::size_t v = 0; v < ws.ff_of_var.size(); ++v) {
      if (ws.k_of_var[v] == 0) continue;
      const int ff = ws.ff_of_var[v];
      for (int e : solver.graph_->arcs_of_ff[static_cast<std::size_t>(ff)]) {
        if (in_model(e)) continue;
        const ssta::SeqArc& arc =
            solver.graph_->arcs[static_cast<std::size_t>(e)];
        if (arc.src_ff == arc.dst_ff) continue;
        const std::int64_t xi = value_of_ff(arc.src_ff);
        const std::int64_t xj = value_of_ff(arc.dst_ff);
        if (xi - xj > setup(e) || xj - xi > hold(e)) ws.fresh.push_back(e);
      }
    }
    std::sort(ws.fresh.begin(), ws.fresh.end());
    ws.fresh.erase(std::unique(ws.fresh.begin(), ws.fresh.end()),
                   ws.fresh.end());
    return ws.fresh;
  }
};

SampleSolution SampleSolver::solve(const mc::ArcSample& arc_sample,
                                   ConcentrateMode mode,
                                   const std::vector<double>* targets) const {
  thread_local SolveWorkspace tls_ws;
  mc::quantize_arc_constants(*graph_, arc_sample, clock_period_, step_ps_,
                             tls_ws.constants);
  return solve(mc::view_of(tls_ws.constants), mode, targets, tls_ws);
}

SampleSolution SampleSolver::solve(const mc::ArcConstantsView& constants,
                                   ConcentrateMode mode,
                                   const std::vector<double>* targets,
                                   SolveWorkspace& ws) const {
  CLKTUNE_EXPECTS(mode != ConcentrateMode::toward_target ||
                  targets != nullptr);
  const ssta::SeqGraph& g = *graph_;
  CLKTUNE_EXPECTS(constants.num_arcs == g.arcs.size());
  SampleSolution out;

  WorkingModel wm(*this, constants, ws);

  // Seed the working model with all violated arcs.
  bool any = false;
  for (std::size_t e = 0; e < g.arcs.size(); ++e) {
    if (constants.setup_steps[e] >= 0 && constants.hold_steps[e] >= 0)
      continue;
    const ssta::SeqArc& arc = g.arcs[e];
    const bool tunable =
        arc.src_ff != arc.dst_ff &&
        (windows_.candidate[static_cast<std::size_t>(arc.src_ff)] ||
         windows_.candidate[static_cast<std::size_t>(arc.dst_ff)]);
    if (!tunable) {
      out.fixable = false;  // failing arc that no buffer can influence
      return out;
    }
    wm.add_arc(static_cast<int>(e));
    wm.mark_violated(static_cast<int>(e));
    any = true;
  }
  if (!any) return out;  // chip meets timing untouched: n_k = 0

  milp::Options milp_opt;
  milp_opt.max_nodes = milp_max_nodes_;

  // Solves a built model; re-solves with integral k's only if the LP-vertex
  // integrality argument fails numerically.
  const auto solve_built = [&](BuiltModel& bm,
                               const std::optional<milp::Incumbent>& warm)
      -> milp::Result {
    milp::Options opt = milp_opt;
    opt.objective_is_integral = true;
    milp::Result res = milp::solve(bm.model, bm.int_vars, opt, warm);
    ++out.milps_solved;
    out.milp_nodes += res.nodes_explored;
    if (res.status == milp::Status::optimal ||
        res.status == milp::Status::feasible) {
      bool k_integral = true;
      for (int kv : bm.k_int_vars) {
        const double x = res.x[static_cast<std::size_t>(kv)];
        k_integral = k_integral && std::abs(x - std::round(x)) <= 1e-6;
      }
      if (!k_integral) {
        std::vector<int> all_ints = bm.int_vars;
        all_ints.insert(all_ints.end(), bm.k_int_vars.begin(),
                        bm.k_int_vars.end());
        res = milp::solve(bm.model, all_ints, opt, warm);
        ++out.milps_solved;
        out.milp_nodes += res.nodes_explored;
      }
    }
    return res;
  };

  // Lazy loop: solve each connected component independently (min-count then
  // concentration), then verify the assembled assignment globally; newly
  // violated arcs join the model and the loop repeats.  Component
  // independence makes the sum of component optima the global optimum.
  for (int round = 0;; ++round) {
    CLKTUNE_ASSERT(round <= static_cast<int>(g.arcs.size()));
    out.lazy_rounds = round + 1;
    ws.mincount_acc.clear();
    std::fill(ws.k_of_var.begin(), ws.k_of_var.end(), 0);
    int nk_total = 0;

    const std::size_t ncomps = wm.components();
    ws.local_of_var.assign(ws.ff_of_var.size(), -1);
    for (std::size_t ci = 0; ci < ncomps; ++ci) {
      const Component& comp = ws.comps[ci];
      bool has_violated = false;
      for (int e : comp.arcs) has_violated |= wm.violated(e);
      if (!has_violated) continue;  // pure side constraints: x = 0 works

      // -- single-buffer closed form ------------------------------------
      if (const auto sb = wm.single_buffer_interval(comp)) {
        const auto [v, lo, hi] = *sb;
        CLKTUNE_ASSERT(lo > 0 || hi < 0);
        // A count-only ILP returns an arbitrary feasible value; emulate the
        // scatter with the endpoint farthest from zero.
        const std::int64_t scatter = std::llabs(lo) >= std::llabs(hi) ? lo : hi;
        std::int64_t k = scatter;
        const int ff = ws.ff_of_var[static_cast<std::size_t>(v)];
        if (mode == ConcentrateMode::toward_zero) {
          k = std::clamp<std::int64_t>(0, lo, hi);
        } else if (mode == ConcentrateMode::toward_target) {
          k = std::clamp<std::int64_t>(
              std::llround((*targets)[static_cast<std::size_t>(ff)]), lo, hi);
        }
        ws.k_of_var[static_cast<std::size_t>(v)] = k;
        ws.mincount_acc.emplace_back(ff, static_cast<int>(scatter));
        nk_total += 1;
        continue;
      }

      // -- greedy + vertex-cover bound ----------------------------------
      // The single-buffer form failed, so this component needs >= 2.
      const int lb = std::max(2, wm.cover_lower_bound(comp));
      const bool has_greedy = wm.greedy_tunings(comp);
      int greedy_support = 0;
      if (has_greedy)
        for (std::int64_t x : ws.greedy_x) greedy_support += x != 0 ? 1 : 0;

      int nk_comp = 0;
      if (has_greedy && greedy_support <= lb) {
        ws.count_solution.assign(ws.greedy_x.begin(), ws.greedy_x.end());
        nk_comp = greedy_support;
      } else {
        BuiltModel bm = wm.build(comp, ConcentrateMode::none, nullptr, -1,
                                 ws.local_of_var);
        std::optional<milp::Incumbent> warm;
        if (has_greedy) {
          milp::Incumbent inc;
          inc.x.assign(static_cast<std::size_t>(bm.model.num_variables()),
                       0.0);
          for (std::size_t l = 0; l < comp.vars.size(); ++l) {
            inc.x[static_cast<std::size_t>(bm.k_var[l])] =
                static_cast<double>(ws.greedy_x[l]);
            inc.x[static_cast<std::size_t>(bm.c_var[l])] =
                ws.greedy_x[l] != 0 ? 1.0 : 0.0;
          }
          inc.objective = bm.model.objective_value(inc.x);
          warm = std::move(inc);
        }
        const milp::Result res = solve_built(bm, warm);
        if (res.status == milp::Status::infeasible) {
          out.fixable = false;
          return out;
        }
        if (res.status != milp::Status::optimal &&
            res.status != milp::Status::feasible) {
          out.fixable = false;
          out.truncated = true;
          return out;
        }
        out.truncated |= res.status == milp::Status::feasible;
        ws.count_solution.resize(comp.vars.size());
        for (std::size_t l = 0; l < comp.vars.size(); ++l)
          ws.count_solution[l] = std::llround(
              res.x[static_cast<std::size_t>(bm.k_var[l])]);
        nk_comp = static_cast<int>(std::llround(res.objective));
      }
      nk_total += nk_comp;
      for (std::size_t l = 0; l < comp.vars.size(); ++l) {
        const int ff = ws.ff_of_var[static_cast<std::size_t>(comp.vars[l])];
        if (ws.count_solution[l] != 0)
          ws.mincount_acc.emplace_back(ff,
                                       static_cast<int>(ws.count_solution[l]));
      }

      // -- concentration (III-A3 / III-B2) ------------------------------
      ws.final_solution.assign(ws.count_solution.begin(),
                               ws.count_solution.end());
      if (mode != ConcentrateMode::none) {
        BuiltModel bm =
            wm.build(comp, mode, targets, nk_comp, ws.local_of_var);
        milp::Incumbent inc;
        inc.x.assign(static_cast<std::size_t>(bm.model.num_variables()), 0.0);
        for (std::size_t l = 0; l < comp.vars.size(); ++l) {
          const int ff =
              ws.ff_of_var[static_cast<std::size_t>(comp.vars[l])];
          const double t =
              mode == ConcentrateMode::toward_zero
                  ? 0.0
                  : std::round((*targets)[static_cast<std::size_t>(ff)]);
          const auto kv = static_cast<double>(ws.count_solution[l]);
          inc.x[static_cast<std::size_t>(bm.k_var[l])] = kv;
          inc.x[static_cast<std::size_t>(bm.c_var[l])] = kv != 0.0 ? 1.0 : 0.0;
          inc.x[static_cast<std::size_t>(bm.u_var[l])] = std::abs(kv - t);
        }
        inc.objective = bm.model.objective_value(inc.x);
        const milp::Result res = solve_built(bm, inc);
        out.truncated |= res.status != milp::Status::optimal;
        CLKTUNE_ASSERT(res.status == milp::Status::optimal ||
                       res.status == milp::Status::feasible);
        for (std::size_t l = 0; l < comp.vars.size(); ++l)
          ws.final_solution[l] = std::llround(
              res.x[static_cast<std::size_t>(bm.k_var[l])]);
      }
      for (std::size_t l = 0; l < comp.vars.size(); ++l)
        ws.k_of_var[static_cast<std::size_t>(comp.vars[l])] =
            ws.final_solution[l];
    }

    out.nk = nk_total;
    const std::vector<int>& fresh = wm.fresh_violations();
    if (fresh.empty()) break;
    for (int e : fresh) wm.add_arc(e);
  }

  out.mincount_tunings.assign(ws.mincount_acc.begin(), ws.mincount_acc.end());
  out.tunings.clear();
  for (std::size_t v = 0; v < ws.ff_of_var.size(); ++v)
    if (ws.k_of_var[v] != 0)
      out.tunings.emplace_back(ws.ff_of_var[v],
                               static_cast<int>(ws.k_of_var[v]));
  return out;
}

}  // namespace clktune::core
