// Linear-program container shared by the simplex solver and the MILP layer.
//
// A model is   minimise  c'x   subject to   rows (<=, >=, =) rhs,
//                                           lo <= x <= hi.
// Rows are stored sparsely.  Variable bounds may be +-infinity.
#pragma once

#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace clktune::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { less_equal, greater_equal, equal };

struct Coefficient {
  int var = 0;
  double value = 0.0;
};

struct Row {
  Sense sense = Sense::less_equal;
  double rhs = 0.0;
  std::vector<Coefficient> coefficients;
};

class Model {
 public:
  /// Adds a variable and returns its index.
  int add_variable(double lo, double hi, double cost,
                   std::string name = std::string()) {
    CLKTUNE_EXPECTS(lo <= hi);
    lower_.push_back(lo);
    upper_.push_back(hi);
    cost_.push_back(cost);
    names_.push_back(std::move(name));
    return static_cast<int>(lower_.size()) - 1;
  }

  /// Adds a constraint row; duplicate variable entries are allowed and are
  /// summed by the solver.
  int add_row(Sense sense, std::vector<Coefficient> coefficients, double rhs) {
    rows_.push_back(Row{sense, rhs, std::move(coefficients)});
    return static_cast<int>(rows_.size()) - 1;
  }

  void set_cost(int var, double cost) { cost_.at(static_cast<size_t>(var)) = cost; }
  void set_bounds(int var, double lo, double hi) {
    CLKTUNE_EXPECTS(lo <= hi);
    lower_.at(static_cast<size_t>(var)) = lo;
    upper_.at(static_cast<size_t>(var)) = hi;
  }

  int num_variables() const { return static_cast<int>(lower_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  double lower(int var) const { return lower_[static_cast<size_t>(var)]; }
  double upper(int var) const { return upper_[static_cast<size_t>(var)]; }
  double cost(int var) const { return cost_[static_cast<size_t>(var)]; }
  const std::string& name(int var) const {
    return names_[static_cast<size_t>(var)];
  }
  const std::vector<Row>& rows() const { return rows_; }

  /// Objective value of an assignment (no feasibility check).
  double objective_value(std::span<const double> x) const {
    CLKTUNE_EXPECTS(x.size() == lower_.size());
    double obj = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) obj += cost_[j] * x[j];
    return obj;
  }

  /// Max constraint/bound violation of an assignment (for tests/diagnostics).
  double infeasibility(std::span<const double> x) const;

 private:
  std::vector<double> lower_, upper_, cost_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
};

}  // namespace clktune::lp
