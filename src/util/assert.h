// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8).  Violations abort with a source location; they
// indicate programming errors, not recoverable conditions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace clktune {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "[clktune] %s violated: %s at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace clktune

#define CLKTUNE_EXPECTS(cond)                                          \
  ((cond) ? static_cast<void>(0)                                       \
          : ::clktune::contract_failure("precondition", #cond, __FILE__, \
                                        __LINE__))

#define CLKTUNE_ENSURES(cond)                                           \
  ((cond) ? static_cast<void>(0)                                        \
          : ::clktune::contract_failure("postcondition", #cond, __FILE__, \
                                        __LINE__))

#define CLKTUNE_ASSERT(cond)                                          \
  ((cond) ? static_cast<void>(0)                                      \
          : ::clktune::contract_failure("invariant", #cond, __FILE__, \
                                        __LINE__))
