// Mixed-integer linear programming by LP-based branch & bound.
//
// This is the "ILP solver" role that Gurobi plays in the paper.  The flow's
// per-sample models (minimise buffer count; concentrate tuning values) are
// solved exactly: depth-first plunge with best-first node ordering on ties,
// most-fractional branching, and ceil-rounding bound pruning when the
// objective is known to be integral (both paper objectives are, in step
// units).  A warm-start incumbent (from the greedy feasibility heuristic)
// makes pruning effective from the first node.
#pragma once

#include <optional>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace clktune::milp {

enum class Status {
  optimal,     // proven optimal integer solution
  feasible,    // integer solution found, search truncated by limits
  infeasible,  // no integer-feasible point exists
  unbounded,
  node_limit,  // search truncated with no solution found
};

struct Options {
  double integrality_tolerance = 1e-6;
  long max_nodes = 200000;
  /// When true, objective values are integers for every integer-feasible
  /// point, enabling ceil() pruning of fractional LP bounds.
  bool objective_is_integral = false;
  double absolute_gap = 1e-9;
  lp::SimplexOptions lp_options;
};

struct Incumbent {
  double objective = 0.0;
  std::vector<double> x;
};

struct Result {
  Status status = Status::node_limit;
  double objective = 0.0;
  std::vector<double> x;
  long nodes_explored = 0;
};

/// Solves `model` with the given variables restricted to integers.  The
/// model is used as scratch space (bounds are modified and restored).
/// `warm_start`, when given, must be integer feasible; it seeds the
/// incumbent.
Result solve(lp::Model& model, const std::vector<int>& integer_vars,
             const Options& options = {},
             const std::optional<Incumbent>& warm_start = std::nullopt);

}  // namespace clktune::milp
