#include "fleet/fleet_executor.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "exec/remote_executor.h"
#include "serve/client.h"
#include "util/timer.h"

namespace clktune::fleet {

using exec::CancelledError;
using exec::ExecError;
using util::Json;

namespace {

/// A slice of the campaign expansion owed to the fleet.  `remaining`
/// shrinks as dispatches stream cells back — a unit that lost its daemon
/// halfway is requeued with only the cells still missing, because cells
/// are deterministic and partial progress counts.
struct WorkUnit {
  std::size_t id = 0;
  std::vector<std::size_t> remaining;
  std::size_t attempts = 0;     ///< failed dispatches so far
  std::size_t busy_streak = 0;  ///< consecutive busy rejections
  std::string last_error;
};

/// Every 8th consecutive busy rejection of one unit costs a retry
/// attempt, so a pool that stays saturated indefinitely eventually fails
/// the campaign with a diagnostic instead of spinning forever.
constexpr std::size_t kBusyPerAttempt = 8;

serve::SubmitOptions timeouts_of(const FleetOptions& options) {
  serve::SubmitOptions timeouts;
  timeouts.connect_timeout_ms = options.connect_timeout_ms;
  timeouts.io_timeout_ms = options.io_timeout_ms;
  return timeouts;
}

/// One campaign's shared dispatch state: the work queue, the recorded
/// cells, the liveness of every pool member and the terminal flags.  The
/// per-daemon dispatcher threads all drain the same queue — that is the
/// whole work-stealing scheme.
class CampaignDispatch {
 public:
  CampaignDispatch(const FleetSpec& spec, const FleetOptions& options,
                   const std::vector<std::size_t>& healthy,
                   const exec::Request& request, exec::Observer* observer)
      : spec_(spec),
        options_(options),
        healthy_(healthy),
        request_(request),
        observer_(observer),
        document_(request.document()),
        total_cells_(request.expansion_size()),
        cells_(total_cells_),
        member_dead_(spec.members.size()) {}

  scenario::CampaignSummary run() {
    if (observer_ != nullptr) observer_->on_begin(total_cells_, total_cells_);

    const std::size_t unit_cells =
        options_.unit_cells == 0 ? 1 : options_.unit_cells;
    for (std::size_t begin = 0; begin < total_cells_; begin += unit_cells) {
      WorkUnit unit;
      unit.id = pending_.size();
      for (std::size_t i = begin;
           i < begin + unit_cells && i < total_cells_; ++i)
        unit.remaining.push_back(i);
      pending_.push_back(std::move(unit));
    }
    outstanding_ = pending_.size();
    alive_members_ = healthy_.size();

    std::vector<std::thread> dispatchers;
    if (outstanding_ > 0) {
      for (const std::size_t member_id : healthy_)
        for (std::size_t w = 0; w < spec_.members[member_id].weight; ++w)
          dispatchers.emplace_back([this, member_id] { worker(member_id); });
    }
    for (std::thread& dispatcher : dispatchers) dispatcher.join();

    if (cancelled_)
      throw CancelledError("fleet: campaign cancelled by the observer");
    if (failed_) throw ExecError(failure_);

    scenario::CampaignSummary summary;
    summary.name = request_.campaign.name;
    summary.results.reserve(total_cells_);
    for (std::size_t i = 0; i < total_cells_; ++i) {
      if (cells_[i].result == nullptr)
        throw ExecError("fleet: internal error: cell " + std::to_string(i) +
                        " never arrived");
      summary.scenarios_cached += cells_[i].cached ? 1 : 0;
      summary.results.push_back(std::move(*cells_[i].result));
    }
    summary.recount();
    return summary;
  }

 private:
  struct CellSlot {
    std::unique_ptr<scenario::ScenarioResult> result;
    bool cached = false;
  };

  void worker(std::size_t member_id) {
    for (;;) {
      WorkUnit unit;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [this] {
          return failed_ || cancelled_ || outstanding_ == 0 ||
                 !pending_.empty();
        });
        if (failed_ || cancelled_ || outstanding_ == 0) return;
        if (member_dead_[member_id].load()) return;  // sibling saw it die
        if (observer_ != nullptr && observer_->cancelled()) {
          cancelled_ = true;
          ready_.notify_all();
          return;
        }
        unit = std::move(pending_.front());
        pending_.pop_front();
      }
      if (dispatch_unit(member_id, std::move(unit))) return;
    }
  }

  /// One dispatch of one unit to one daemon; returns true when this
  /// dispatcher must exit (its daemon died, the campaign failed or was
  /// cancelled).  Deliberately speaks the wire protocol itself instead of
  /// wrapping exec::RemoteExecutor: requeue needs the cells a dying
  /// daemon streamed before the failure (RemoteExecutor's contract is
  /// all-or-nothing) and the busy/dead distinction needs the terminal
  /// frame's "code", which RemoteExecutor folds into an exception string.
  bool dispatch_unit(std::size_t member_id, WorkUnit unit) {
    const FleetMember& member = spec_.members[member_id];
    Json wire = Json::object();
    wire.set("cmd", "sweep");
    wire.set("doc", document_);
    Json indices = Json::array();
    for (const std::size_t index : unit.remaining)
      indices.push_back(static_cast<std::uint64_t>(index));
    wire.set("indices", std::move(indices));

    serve::SubmitOutcome stream;
    std::string error;
    bool transport_failure = false;
    try {
      stream = serve::submit_raw(
          member.host, member.port, wire,
          [&](const Json& event) { on_stream_event(event); },
          timeouts_of(options_));
    } catch (const CancelledError&) {
      const std::lock_guard<std::mutex> lock(mutex_);
      cancelled_ = true;
      ready_.notify_all();
      return true;
    } catch (const std::exception& e) {
      // Connect refusal/timeout, a stalled read, a garbled response
      // line: the daemon is unusable.
      transport_failure = true;
      error = e.what();
    }
    // A stream that ended without any terminal frame is a clean EOF from
    // a dying daemon — every bit as dead as a reset: retire it, or its
    // own worker would redispatch the unit straight back at the corpse
    // and burn the bounded attempts on a single failure.
    if (!transport_failure &&
        stream.final_event.find("event") == nullptr) {
      transport_failure = true;
      error = "connection closed mid-unit";
    }

    bool busy = false;
    bool exit_worker = false;
    std::size_t busy_backoff = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      std::vector<std::size_t> missing;
      for (const std::size_t index : unit.remaining)
        if (cells_[index].result == nullptr) missing.push_back(index);

      if (missing.empty()) {
        // Everything owed arrived — even a daemon that died between its
        // last cell and the done frame completed this unit.
        --outstanding_;
      } else {
        if (!transport_failure) {
          const Json* code = stream.final_event.find("code");
          busy = code != nullptr && code->is_string() &&
                 code->as_string() == "busy";
          const Json* message = stream.final_event.find("message");
          error = message != nullptr ? message->as_string()
                                     : "daemon did not deliver the unit";
        }
        unit.remaining = std::move(missing);
        // Backpressure is not a failure: a saturated-but-healthy daemon
        // must not consume the unit's bounded retry budget, or a briefly
        // busy pool would hard-fail a campaign no daemon ever dropped.
        // But a pool that *stays* saturated must not spin forever either,
        // so a long busy streak slowly bleeds into the attempt count.
        if (busy) {
          ++unit.busy_streak;
          if (unit.busy_streak % kBusyPerAttempt == 0) ++unit.attempts;
        } else {
          unit.busy_streak = 0;
          ++unit.attempts;
        }
        busy_backoff = unit.busy_streak;
        unit.last_error = member.endpoint() + ": " + error;
        if (unit.attempts > options_.max_retries) {
          failed_ = true;
          failure_ = "fleet: work unit " + std::to_string(unit.id) +
                     " (cell " + std::to_string(unit.remaining.front()) +
                     (unit.remaining.size() > 1 ? "…" : "") +
                     ") failed after " + std::to_string(unit.attempts) +
                     " dispatches; last: " + unit.last_error;
          exit_worker = true;
        } else {
          pending_.push_back(std::move(unit));
        }
      }
    }
    ready_.notify_all();

    if (transport_failure) {
      retire_member(member_id);
      return true;
    }
    if (busy) {
      // The daemon is alive but saturated; an escalating pause (capped)
      // keeps the retry from hot-looping against its admission queue.
      const std::size_t shift = busy_backoff < 6 ? busy_backoff : 6;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(20 << shift));
    }
    return exit_worker;
  }

  void on_stream_event(const Json& event) {
    if (event.at("event").as_string() != "result") return;
    if (observer_ != nullptr && observer_->cancelled())
      throw CancelledError("fleet: stream cancelled");
    const std::size_t index = event.at("index").as_uint();
    auto result = std::make_unique<scenario::ScenarioResult>(
        scenario::ScenarioResult::from_json(event.at("result")));
    const bool cached = event.at("cached").as_bool();
    const scenario::ScenarioResult* recorded = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (index >= cells_.size())
        throw ExecError("fleet: daemon sent out-of-range cell index " +
                        std::to_string(index));
      if (cells_[index].result == nullptr) {
        cells_[index].result = std::move(result);
        cells_[index].cached = cached;
        recorded = cells_[index].result.get();
      }
    }
    // Forward outside the lock: the slot is write-once and the vector
    // never reallocates, so the pointer stays valid.  A duplicate (a
    // requeued unit whose first owner already streamed this cell) is
    // dropped so the observer sees every index exactly once.
    if (recorded != nullptr && observer_ != nullptr) {
      exec::CellEvent forwarded{index, *recorded, cached,
                                cached ? 0.0 : recorded->seconds};
      observer_->on_cell(forwarded);
    }
  }

  /// Marks a daemon dead (once) and fails the campaign when it was the
  /// last one standing with work still unfinished.
  void retire_member(std::size_t member_id) {
    if (member_dead_[member_id].exchange(true)) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    --alive_members_;
    if (alive_members_ == 0 && outstanding_ > 0 && !failed_ && !cancelled_) {
      failure_ = "fleet: all " + std::to_string(healthy_.size()) +
                 " daemons lost with " + std::to_string(outstanding_) +
                 " work units unfinished";
      std::size_t shown = 0;
      for (const WorkUnit& unit : pending_) {
        if (unit.last_error.empty()) continue;
        failure_ += (shown == 0 ? "; last errors: " : " | ") +
                    unit.last_error;
        if (++shown == 3) break;
      }
      failed_ = true;
    }
    ready_.notify_all();
  }

  const FleetSpec& spec_;
  const FleetOptions& options_;
  const std::vector<std::size_t>& healthy_;
  const exec::Request& request_;
  exec::Observer* observer_;
  const Json document_;
  const std::size_t total_cells_;

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<WorkUnit> pending_;
  std::size_t outstanding_ = 0;  ///< units not yet fully delivered
  std::size_t alive_members_ = 0;
  std::vector<CellSlot> cells_;
  std::vector<std::atomic<bool>> member_dead_;
  bool failed_ = false;
  bool cancelled_ = false;
  std::string failure_;
};

/// Scenario failover: suppresses the child RemoteExecutor's own on_begin
/// (the fleet already announced the run) and deduplicates on_cell across
/// retry attempts, so the caller's observer sees the contract events
/// exactly once.
class OnceObserver : public exec::Observer {
 public:
  explicit OnceObserver(exec::Observer* target) : target_(target) {}

  void on_begin(std::size_t, std::size_t) override {}
  void on_cell(const exec::CellEvent& event) override {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (cell_seen_) return;
      cell_seen_ = true;
    }
    if (target_ != nullptr) target_->on_cell(event);
  }
  bool cancelled() override {
    return target_ != nullptr && target_->cancelled();
  }

 private:
  exec::Observer* target_;
  std::mutex mutex_;
  bool cell_seen_ = false;
};

}  // namespace

FleetExecutor::FleetExecutor(FleetSpec spec, FleetOptions options)
    : spec_(std::move(spec)), options_(options) {
  if (spec_.members.empty())
    throw ExecError("fleet: needs at least one daemon");
}

exec::Outcome FleetExecutor::execute(const exec::Request& request,
                                     exec::Observer* observer) {
  request.validate();
  if (request.shard_count != 1 || !request.indices.empty())
    throw ExecError("fleet: request already carries a selection");
  const util::Stopwatch timer;

  // Health probe: a status round trip per daemon, in parallel (dead hosts
  // each cost one connect timeout).  Dispatch would discover deaths on its
  // own; probing just retires them before any unit is wasted on one.
  std::vector<std::size_t> healthy;
  std::vector<std::string> down;
  if (options_.probe) {
    std::vector<char> alive(spec_.members.size(), 0);
    std::vector<std::string> probe_errors(spec_.members.size());
    std::vector<std::thread> probes;
    probes.reserve(spec_.members.size());
    // A status probe answers instantly by design, so it always gets a
    // bounded read deadline — unlike units, where a computing daemon is
    // legitimately silent.  Otherwise one wedged-but-accepting daemon
    // would hang the whole fanout at the probe join.
    serve::SubmitOptions probe_timeouts = timeouts_of(options_);
    if (probe_timeouts.io_timeout_ms <= 0)
      probe_timeouts.io_timeout_ms = probe_timeouts.connect_timeout_ms > 0
                                         ? probe_timeouts.connect_timeout_ms
                                         : 5000;
    for (std::size_t m = 0; m < spec_.members.size(); ++m) {
      probes.emplace_back([this, m, &alive, &probe_errors, &probe_timeouts] {
        Json status = Json::object();
        status.set("cmd", "status");
        try {
          const serve::SubmitOutcome outcome =
              serve::submit_raw(spec_.members[m].host, spec_.members[m].port,
                                status, {}, probe_timeouts);
          const Json* event = outcome.final_event.find("event");
          const Json* code = outcome.final_event.find("code");
          if (event != nullptr && event->as_string() == "status") {
            alive[m] = 1;
          } else if (code != nullptr && code->is_string() &&
                     code->as_string() == "busy") {
            // Backpressure means alive-but-saturated, never dead —
            // dispatch already knows how to back off against it.
            alive[m] = 1;
          } else {
            const Json* message = outcome.final_event.find("message");
            probe_errors[m] = message != nullptr ? message->as_string()
                                                 : "no status response";
          }
        } catch (const std::exception& e) {
          probe_errors[m] = e.what();
        }
      });
    }
    for (std::thread& probe : probes) probe.join();
    for (std::size_t m = 0; m < spec_.members.size(); ++m) {
      if (alive[m])
        healthy.push_back(m);
      else
        down.push_back(spec_.members[m].endpoint() + ": " + probe_errors[m]);
    }
    // A probe timeout is ambiguous: the daemon may just be saturated with
    // long cells (its handlers busy, the probe parked in the admission
    // queue).  When *everything* timed out, fall back to dispatching at
    // the timed-out members and let dispatch decide — only a pool of
    // positively-refused daemons fails fast here.
    if (healthy.empty()) {
      for (std::size_t m = 0; m < spec_.members.size(); ++m)
        if (!alive[m] &&
            probe_errors[m].find("timed out") != std::string::npos)
          healthy.push_back(m);
    }
  } else {
    for (std::size_t m = 0; m < spec_.members.size(); ++m)
      healthy.push_back(m);
  }
  if (healthy.empty()) {
    std::string what = "fleet: no healthy daemon in the pool";
    for (const std::string& reason : down) what += "; " + reason;
    throw ExecError(what);
  }

  if (request.kind == exec::Request::Kind::scenario) {
    if (observer != nullptr) {
      observer->on_begin(1, 1);
      if (observer->cancelled())
        throw CancelledError("fleet: cancelled before the scenario started");
    }
    OnceObserver once(observer);
    std::string diagnostics;
    for (std::size_t attempt = 0; attempt <= options_.max_retries;
         ++attempt) {
      const FleetMember& member =
          spec_.members[healthy[attempt % healthy.size()]];
      exec::RemoteExecutor remote(member.host, member.port,
                                  timeouts_of(options_));
      try {
        exec::Outcome outcome = remote.execute(request, &once);
        outcome.backend = name();
        outcome.seconds = timer.seconds();
        return outcome;
      } catch (const CancelledError&) {
        throw;
      } catch (const std::exception& e) {
        diagnostics += (diagnostics.empty() ? "" : " | ");
        diagnostics += e.what();
      }
      // Escalating pause between failover attempts: a briefly busy pool
      // must not burn the whole budget within milliseconds.
      if (attempt < options_.max_retries)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20 * (attempt + 1)));
    }
    throw ExecError("fleet: scenario failed on every attempt: " +
                    diagnostics);
  }

  CampaignDispatch dispatch(spec_, options_, healthy, request, observer);
  scenario::CampaignSummary summary = dispatch.run();
  summary.total_seconds = timer.seconds();
  return exec::Outcome::from_summary(std::move(summary), name());
}

}  // namespace clktune::fleet
