#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "lp/model.h"
#include "milp/branch_and_bound.h"
#include "util/rng.h"

namespace clktune::milp {
namespace {

using lp::Coefficient;
using lp::kInf;
using lp::Model;
using lp::Sense;

TEST(BranchAndBoundTest, PureLpPassesThrough) {
  Model m;
  m.add_variable(0.0, 4.0, -1.0);
  const Result r = solve(m, {});
  ASSERT_EQ(r.status, Status::optimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-9);
}

TEST(BranchAndBoundTest, RoundsUpToIntegerFeasibility) {
  // min x s.t. x >= 2.5, x integer -> 3.
  Model m;
  const int x = m.add_variable(0.0, 10.0, 1.0);
  m.add_row(Sense::greater_equal, {{x, 1.0}}, 2.5);
  const Result r = solve(m, {x});
  ASSERT_EQ(r.status, Status::optimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
  EXPECT_NEAR(r.x[0], 3.0, 1e-9);
}

TEST(BranchAndBoundTest, DetectsIntegerInfeasibility) {
  // 2x = 1 has LP solution x = 0.5 but no integer solution.
  Model m;
  const int x = m.add_variable(0.0, 1.0, 1.0);
  m.add_row(Sense::equal, {{x, 2.0}}, 1.0);
  const Result r = solve(m, {x});
  EXPECT_EQ(r.status, Status::infeasible);
}

TEST(BranchAndBoundTest, KnapsackAgainstBruteForce) {
  // max sum v_i b_i s.t. sum w_i b_i <= W, b binary.
  const std::vector<double> value = {10, 13, 7, 8, 2, 11};
  const std::vector<double> weight = {3, 4, 2, 3, 1, 4};
  const double capacity = 9.0;
  Model m;
  std::vector<int> bins;
  std::vector<Coefficient> row;
  for (std::size_t i = 0; i < value.size(); ++i) {
    bins.push_back(m.add_variable(0.0, 1.0, -value[i]));
    row.push_back({bins.back(), weight[i]});
  }
  m.add_row(Sense::less_equal, row, capacity);
  const Result r = solve(m, bins);
  ASSERT_EQ(r.status, Status::optimal);

  double best = 0.0;
  for (unsigned mask = 0; mask < (1u << value.size()); ++mask) {
    double v = 0.0, w = 0.0;
    for (std::size_t i = 0; i < value.size(); ++i)
      if ((mask >> i) & 1u) {
        v += value[i];
        w += weight[i];
      }
    if (w <= capacity) best = std::max(best, v);
  }
  EXPECT_NEAR(-r.objective, best, 1e-9);
}

TEST(BranchAndBoundTest, BigMIndicatorModelMatchesPaperPattern) {
  // Paper constraints (5)-(7): x free in [-G, G], c binary,
  // x <= c*G and -x <= c*G; minimise sum(c) s.t. x1 - x2 <= -3.
  const double gamma = 10.0;
  Model m;
  const int x1 = m.add_variable(-gamma, gamma, 0.0);
  const int x2 = m.add_variable(-gamma, gamma, 0.0);
  const int c1 = m.add_variable(0.0, 1.0, 1.0);
  const int c2 = m.add_variable(0.0, 1.0, 1.0);
  for (auto [x, c] : {std::pair{x1, c1}, std::pair{x2, c2}}) {
    m.add_row(Sense::less_equal, {{x, 1.0}, {c, -gamma}}, 0.0);
    m.add_row(Sense::less_equal, {{x, -1.0}, {c, -gamma}}, 0.0);
  }
  m.add_row(Sense::less_equal, {{x1, 1.0}, {x2, -1.0}}, -3.0);
  const Result r = solve(m, {x1, x2, c1, c2});
  ASSERT_EQ(r.status, Status::optimal);
  // One buffer suffices: x1 = -3 (or x2 = +3).
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(BranchAndBoundTest, WarmStartIsKeptWhenOptimal) {
  // Incumbent equal to the optimum: solver must not return anything worse.
  Model m;
  const int x = m.add_variable(0.0, 5.0, 1.0);
  m.add_row(Sense::greater_equal, {{x, 1.0}}, 1.2);
  Incumbent warm;
  warm.objective = 2.0;
  warm.x = {2.0};
  const Result r = solve(m, {x}, Options{}, warm);
  ASSERT_EQ(r.status, Status::optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(BranchAndBoundTest, WarmStartImprovedUpon) {
  Model m;
  const int x = m.add_variable(0.0, 5.0, 1.0);
  m.add_row(Sense::greater_equal, {{x, 1.0}}, 1.2);
  Incumbent warm;
  warm.objective = 5.0;
  warm.x = {5.0};
  const Result r = solve(m, {x}, Options{}, warm);
  ASSERT_EQ(r.status, Status::optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(BranchAndBoundTest, IntegralObjectivePruningPreservesOptimum) {
  // Same model solved with and without the integral-objective hint.
  for (bool integral : {false, true}) {
    Model m;
    std::vector<int> ints;
    for (int j = 0; j < 4; ++j) ints.push_back(m.add_variable(0.0, 3.0, 1.0));
    m.add_row(Sense::greater_equal,
              {{ints[0], 1.0}, {ints[1], 1.0}, {ints[2], 1.0}, {ints[3], 1.0}},
              5.5);
    Options opt;
    opt.objective_is_integral = integral;
    const Result r = solve(m, ints, opt);
    ASSERT_EQ(r.status, Status::optimal);
    EXPECT_NEAR(r.objective, 6.0, 1e-9) << "integral=" << integral;
  }
}

TEST(BranchAndBoundTest, NodeLimitReportsTruncation) {
  // A model engineered to need several nodes, with max_nodes = 1.
  Model m;
  std::vector<int> ints;
  std::vector<Coefficient> row;
  for (int j = 0; j < 6; ++j) {
    ints.push_back(m.add_variable(0.0, 1.0, -1.0));
    row.push_back({ints.back(), 2.0});
  }
  m.add_row(Sense::less_equal, row, 5.0);
  Options opt;
  opt.max_nodes = 1;
  const Result r = solve(m, ints, opt);
  EXPECT_TRUE(r.status == Status::node_limit || r.status == Status::feasible);
}

TEST(BranchAndBoundTest, NegativeIntegerDomain) {
  // min |x| modeled as xp + xn, x in [-8, 8] integer, x <= -2.5.
  Model m;
  const int x = m.add_variable(-8.0, 8.0, 0.0);
  const int xp = m.add_variable(0.0, 8.0, 1.0);
  const int xn = m.add_variable(0.0, 8.0, 1.0);
  m.add_row(Sense::equal, {{x, 1.0}, {xp, -1.0}, {xn, 1.0}}, 0.0);
  m.add_row(Sense::less_equal, {{x, 1.0}}, -2.5);
  const Result r = solve(m, {x});
  ASSERT_EQ(r.status, Status::optimal);
  EXPECT_NEAR(r.x[0], -3.0, 1e-9);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Randomized cross-check against exhaustive enumeration of the integer grid.
// Models mimic the paper's structure: difference constraints over integer
// tuning steps plus binary usage indicators with big-M linking.
// ---------------------------------------------------------------------------

class RandomMilpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomMilpTest, MatchesExhaustiveEnumeration) {
  util::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const int nv = 2 + static_cast<int>(rng.next_below(2));  // 2..3 int vars
  const int span = 3;                                      // domain [-3, 3]
  Model m;
  std::vector<int> ints;
  for (int j = 0; j < nv; ++j)
    ints.push_back(m.add_variable(-span, span, rng.next_double(-1.5, 1.5)));
  const int rows = 1 + static_cast<int>(rng.next_below(3));
  for (int r = 0; r < rows; ++r) {
    std::vector<Coefficient> coeffs;
    for (int j = 0; j < nv; ++j)
      coeffs.push_back({ints[static_cast<std::size_t>(j)],
                        std::round(rng.next_double(-2.0, 2.0))});
    m.add_row(rng.next_below(2) == 0 ? Sense::less_equal : Sense::greater_equal,
              coeffs, std::round(rng.next_double(-4.0, 4.0)) + 0.5);
  }

  const Result r = solve(m, ints);

  // Exhaustive enumeration.
  double best = std::numeric_limits<double>::infinity();
  const int base = 2 * span + 1;
  long total = 1;
  for (int j = 0; j < nv; ++j) total *= base;
  std::vector<double> pt(static_cast<std::size_t>(nv));
  for (long code = 0; code < total; ++code) {
    long c = code;
    for (int j = 0; j < nv; ++j) {
      pt[static_cast<std::size_t>(j)] = static_cast<double>(c % base - span);
      c /= base;
    }
    if (m.infeasibility(pt) <= 1e-9)
      best = std::min(best, m.objective_value(pt));
  }

  if (std::isfinite(best)) {
    ASSERT_EQ(r.status, Status::optimal);
    EXPECT_NEAR(r.objective, best, 1e-6);
    EXPECT_LE(m.infeasibility(r.x), 1e-6);
    for (int v : ints) {
      const double xv = r.x[static_cast<std::size_t>(v)];
      EXPECT_NEAR(xv, std::round(xv), 1e-6);
    }
  } else {
    EXPECT_EQ(r.status, Status::infeasible);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomMilpTest, ::testing::Range(0, 60));

}  // namespace
}  // namespace clktune::milp
