# Empty dependencies file for yield_study.
# This may be replaced when dependencies are built.
