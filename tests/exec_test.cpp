// Execution-layer tests.  The load-bearing property is backend
// equivalence: the same request must produce byte-identical artifacts
// through LocalExecutor, RemoteExecutor (a real loopback daemon) and
// ShardedExecutor (shard fan-out + expansion-order merge) — that is what
// makes the backends composable.  Also covered: shard-summary merge
// validation (the `report --merge` path), CampaignSummary round trips,
// observer streaming and cooperative cancellation.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/result_cache.h"
#include "exec/local_executor.h"
#include "exec/merge.h"
#include "exec/observer.h"
#include "exec/remote_executor.h"
#include "exec/request.h"
#include "exec/sharded_executor.h"
#include "scenario/campaign.h"
#include "scenario/scenario.h"
#include "serve/server.h"
#include "util/json.h"

namespace clktune {
namespace {

using util::Json;

Json tiny_scenario_doc() {
  return Json::parse(R"({
    "name": "tiny",
    "design": {"synthetic": {"name": "tiny", "num_flipflops": 30,
                             "num_gates": 220, "seed": 5}},
    "clock": {"sigma_offset": 0.0, "period_samples": 400},
    "insertion": {"num_samples": 200, "steps": 8},
    "evaluation": {"samples": 400, "seed": 99}
  })");
}

Json tiny_campaign_doc() {
  Json doc = Json::object();
  doc.set("name", "tiny_campaign");
  doc.set("base", tiny_scenario_doc());
  Json sweep = Json::object();
  sweep.set("clock.sigma_offset",
            Json(util::JsonArray{Json(0.0), Json(1.0)}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

exec::Request campaign_request() {
  return exec::Request::from_json(tiny_campaign_doc());
}

Json criticality_scenario_doc() {
  Json doc = tiny_scenario_doc();
  doc.set("kind", "criticality");
  Json options = Json::object();
  options.set("top_k", 5);
  doc.set("criticality", std::move(options));
  return doc;
}

Json binning_campaign_doc() {
  Json base = tiny_scenario_doc();
  base.set("kind", "binning");
  Json bins = Json::object();
  bins.set("sigma_offsets",
           Json(util::JsonArray{Json(0.0), Json(1.0), Json(2.0)}));
  base.set("bins", std::move(bins));
  Json doc = Json::object();
  doc.set("name", "binning_campaign");
  doc.set("base", std::move(base));
  Json sweep = Json::object();
  sweep.set("design.synthetic.seed",
            Json(util::JsonArray{Json(5), Json(6)}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

/// Collects every observer event; thread-safe, since campaign cells finish
/// on worker threads.
class RecordingObserver : public exec::Observer {
 public:
  void on_begin(std::size_t total, std::size_t own) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    total_cells = total;
    own_cells = own;
    ++begins;
  }
  void on_cell(const exec::CellEvent& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    indices.insert(event.index);
    cached_cells += event.cached ? 1 : 0;
  }

  std::mutex mutex_;
  std::size_t total_cells = 0;
  std::size_t own_cells = 0;
  int begins = 0;
  std::set<std::size_t> indices;
  std::size_t cached_cells = 0;
};

/// Daemon on an ephemeral loopback port, accept loop on a worker thread.
class ExecServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    serve::ServeOptions options;
    options.port = 0;
    options.threads = 2;
    server_ = std::make_unique<serve::ScenarioServer>(std::move(options));
    server_->start();
    thread_ = std::thread([this] { server_->serve_forever(); });
  }

  void TearDown() override {
    server_->stop();
    if (thread_.joinable()) thread_.join();
  }

  std::unique_ptr<serve::ScenarioServer> server_;
  std::thread thread_;
};

// ------------------------------------------------------ backend equivalence

TEST_F(ExecServerFixture, AllThreeBackendsProduceByteIdenticalSummaries) {
  const exec::Request request = campaign_request();

  exec::LocalExecutor local;
  const exec::Outcome via_local = local.execute(request);

  exec::RemoteExecutor remote("127.0.0.1", server_->port());
  const exec::Outcome via_remote = remote.execute(request);

  std::vector<std::unique_ptr<exec::Executor>> children;
  children.push_back(std::make_unique<exec::LocalExecutor>());
  children.push_back(std::make_unique<exec::LocalExecutor>());
  exec::ShardedExecutor sharded(std::move(children));
  const exec::Outcome via_sharded = sharded.execute(request);

  const std::string expected = via_local.artifact().dump();
  EXPECT_EQ(via_remote.artifact().dump(), expected);
  EXPECT_EQ(via_sharded.artifact().dump(), expected);

  EXPECT_EQ(via_local.backend, "local");
  EXPECT_EQ(via_sharded.backend, "sharded(2)");
  EXPECT_NE(via_remote.backend.find("remote(127.0.0.1:"), std::string::npos);
  for (const exec::Outcome* outcome :
       {&via_local, &via_remote, &via_sharded}) {
    EXPECT_EQ(outcome->scenarios_run, 2u);
    EXPECT_TRUE(outcome->ok());
  }
}

// Analysis kinds ride the scenario document, so they must flow through
// every backend with zero wire changes — the daemon never inspects the
// kind, it just runs the document it was handed.
TEST_F(ExecServerFixture, AnalysisKindsAreByteIdenticalAcrossBackends) {
  // Criticality: a lone kind-tagged scenario, compared against direct
  // in-process execution.
  exec::Request crit = exec::Request::from_json(criticality_scenario_doc());
  ASSERT_EQ(crit.kind, exec::Request::Kind::scenario);
  crit.threads = 2;
  const scenario::ScenarioResult direct = scenario::run_scenario(
      scenario::ScenarioSpec::from_json(criticality_scenario_doc()), 2);
  ASSERT_EQ(direct.kind, scenario::ScenarioKind::criticality);
  const std::string crit_expected = direct.to_json().dump();

  exec::LocalExecutor local;
  EXPECT_EQ(local.execute(crit).artifact().dump(), crit_expected);
  exec::RemoteExecutor remote("127.0.0.1", server_->port());
  EXPECT_EQ(remote.execute(crit).artifact().dump(), crit_expected);

  // Binning: a two-cell campaign through all three backends.
  const exec::Request bins = exec::Request::from_json(binning_campaign_doc());
  const std::string bins_expected = local.execute(bins).artifact().dump();
  EXPECT_EQ(remote.execute(bins).artifact().dump(), bins_expected);

  std::vector<std::unique_ptr<exec::Executor>> children;
  children.push_back(std::make_unique<exec::LocalExecutor>());
  children.push_back(std::make_unique<exec::LocalExecutor>());
  exec::ShardedExecutor sharded(std::move(children));
  EXPECT_EQ(sharded.execute(bins).artifact().dump(), bins_expected);

  // The artifacts really are kind-tagged (not silently downgraded).
  const Json summary = Json::parse(bins_expected);
  for (const Json& r : summary.at("results").as_array())
    EXPECT_EQ(r.at("kind").as_string(), "binning");
}

TEST_F(ExecServerFixture, ScenarioRequestMatchesDirectExecution) {
  exec::Request request = exec::Request::from_json(tiny_scenario_doc());
  ASSERT_EQ(request.kind, exec::Request::Kind::scenario);
  // A lone scenario parallelises its inner Monte-Carlo loops, whose
  // reduction order depends on the worker count — pin it to the daemon's.
  request.threads = 2;

  const scenario::ScenarioResult direct = scenario::run_scenario(
      scenario::ScenarioSpec::from_json(tiny_scenario_doc()), 2);

  exec::LocalExecutor local;
  EXPECT_EQ(local.execute(request).artifact().dump(),
            direct.to_json().dump());

  exec::RemoteExecutor remote("127.0.0.1", server_->port());
  const exec::Outcome cold = remote.execute(request);
  EXPECT_EQ(cold.artifact().dump(), direct.to_json().dump());
  EXPECT_EQ(cold.scenarios_cached, 0u);
  // The daemon's cache serves the repeat byte-identically.
  const exec::Outcome warm = remote.execute(request);
  EXPECT_EQ(warm.scenarios_cached, 1u);
  EXPECT_EQ(warm.artifact().dump(), direct.to_json().dump());
}

TEST_F(ExecServerFixture, RemoteShardSliceMatchesLocalShard) {
  exec::Request request = campaign_request();
  request.shard_index = 0;
  request.shard_count = 2;

  exec::LocalExecutor local;
  exec::RemoteExecutor remote("127.0.0.1", server_->port());
  EXPECT_EQ(remote.execute(request).artifact().dump(),
            local.execute(request).artifact().dump());
}

TEST_F(ExecServerFixture, ExplicitIndicesMatchLocalAndShardSelections) {
  exec::Request request = campaign_request();
  request.indices = {1};

  // The same single cell through an index list and through the equivalent
  // shard slice is byte-identical — both are selections, not computations.
  exec::LocalExecutor local;
  const exec::Outcome via_indices = local.execute(request);
  exec::Request slice = campaign_request();
  slice.shard_index = 1;
  slice.shard_count = 2;
  const exec::Outcome via_shard = local.execute(slice);
  ASSERT_EQ(via_indices.summary.results.size(), 1u);
  EXPECT_EQ(via_indices.summary.results[0].to_json().dump(),
            via_shard.summary.results[0].to_json().dump());

  // And the remote backend forwards the list for daemon-side selection.
  exec::RemoteExecutor remote("127.0.0.1", server_->port());
  RecordingObserver observer;
  EXPECT_EQ(remote.execute(request, &observer).artifact().dump(),
            via_indices.artifact().dump());
  EXPECT_EQ(observer.indices, (std::set<std::size_t>{1}));

  // The full expansion as an explicit list reproduces the plain sweep.
  exec::Request all = campaign_request();
  all.indices = {0, 1};
  EXPECT_EQ(local.execute(all).artifact().dump(),
            local.execute(campaign_request()).artifact().dump());
}

TEST(RequestValidationTest, RejectsMalformedIndexSelections) {
  exec::Request scenario_request =
      exec::Request::from_json(tiny_scenario_doc());
  scenario_request.indices = {0};
  EXPECT_THROW(scenario_request.validate(), exec::ExecError);

  exec::Request doubly_selected = campaign_request();
  doubly_selected.indices = {0};
  doubly_selected.shard_index = 0;
  doubly_selected.shard_count = 2;
  EXPECT_THROW(doubly_selected.validate(), exec::ExecError);

  exec::Request out_of_range = campaign_request();
  out_of_range.indices = {7};
  EXPECT_THROW(out_of_range.validate(), exec::ExecError);

  exec::Request unsorted = campaign_request();
  unsorted.indices = {1, 0};
  EXPECT_THROW(unsorted.validate(), exec::ExecError);

  exec::Request duplicated = campaign_request();
  duplicated.indices = {1, 1};
  EXPECT_THROW(duplicated.validate(), exec::ExecError);

  exec::Request good = campaign_request();
  good.indices = {0, 1};
  good.validate();
  EXPECT_EQ(good.shard_cells(), 2u);
}

TEST(ShardedExecutorTest, ScenarioDelegatesAndDoubleShardingIsRejected) {
  std::vector<std::unique_ptr<exec::Executor>> children;
  children.push_back(std::make_unique<exec::LocalExecutor>());
  exec::ShardedExecutor sharded(std::move(children));

  const exec::Request scenario_request =
      exec::Request::from_json(tiny_scenario_doc());
  const exec::Outcome outcome = sharded.execute(scenario_request);
  EXPECT_EQ(outcome.scenarios_run, 1u);

  exec::Request sliced = campaign_request();
  sliced.shard_index = 1;
  sliced.shard_count = 2;
  EXPECT_THROW(sharded.execute(sliced), exec::ExecError);

  EXPECT_THROW(
      exec::ShardedExecutor(std::vector<std::unique_ptr<exec::Executor>>{}),
      exec::ExecError);
}

TEST(ShardedExecutorTest, ChildFailureSurfacesAsTheRootCause) {
  // An unreachable-daemon stand-in: the failing child aborts immediately,
  // flips the shared abort flag so the healthy sibling stops early, and
  // its ExecError — not a reactive CancelledError — must surface.
  struct FailingExecutor : exec::Executor {
    exec::Outcome execute(const exec::Request&, exec::Observer*) override {
      throw exec::ExecError("daemon unreachable");
    }
    std::string name() const override { return "failing"; }
  };
  std::vector<std::unique_ptr<exec::Executor>> children;
  children.push_back(std::make_unique<FailingExecutor>());
  children.push_back(std::make_unique<exec::LocalExecutor>());
  exec::ShardedExecutor sharded(std::move(children));
  EXPECT_THROW(sharded.execute(campaign_request()), exec::ExecError);
}

// ------------------------------------------------------------------- merge

TEST(MergeTest, ShardSummariesMergeToUnshardedBytes) {
  exec::LocalExecutor local;
  const exec::Request request = campaign_request();
  const scenario::CampaignSummary full = local.execute(request).summary;

  exec::Request shard0 = request, shard1 = request;
  shard0.shard_count = shard1.shard_count = 2;
  shard0.shard_index = 0;
  shard1.shard_index = 1;
  const scenario::CampaignSummary a = local.execute(shard0).summary;
  const scenario::CampaignSummary b = local.execute(shard1).summary;

  // Input order must not matter, and the merged bytes must be exactly the
  // unsharded sweep's (modulo the timing field, which to_json omits).
  const scenario::CampaignSummary merged = exec::merge_shard_summaries({b, a});
  EXPECT_EQ(merged.to_json().dump(), full.to_json().dump());

  // Through the artifact layer too — the `report --merge` path parses the
  // shard summaries back from their JSON files first.
  const scenario::CampaignSummary reparsed = exec::merge_shard_summaries(
      {scenario::CampaignSummary::from_json(a.to_json()),
       scenario::CampaignSummary::from_json(b.to_json())});
  EXPECT_EQ(reparsed.to_json().dump(), full.to_json().dump());
}

TEST(MergeTest, RejectsOverlappingMissingAndMismatchedShards) {
  exec::LocalExecutor local;
  exec::Request shard0 = campaign_request(), shard1 = campaign_request();
  shard0.shard_count = shard1.shard_count = 2;
  shard0.shard_index = 0;
  shard1.shard_index = 1;
  const scenario::CampaignSummary a = local.execute(shard0).summary;
  const scenario::CampaignSummary b = local.execute(shard1).summary;

  EXPECT_THROW(exec::merge_shard_summaries({}), exec::ExecError);
  EXPECT_THROW(exec::merge_shard_summaries({a, a}), exec::ExecError);
  EXPECT_THROW(exec::merge_shard_summaries({a}), exec::ExecError);

  scenario::CampaignSummary renamed = b;
  renamed.name = "other_campaign";
  EXPECT_THROW(exec::merge_shard_summaries({a, renamed}), exec::ExecError);

  scenario::CampaignSummary recount = b;
  recount.shard_count = 3;
  EXPECT_THROW(exec::merge_shard_summaries({a, recount}), exec::ExecError);

  // Shard 0 of any non-empty round-robin split can never be empty, so the
  // cell-count consistency check rejects this pair.
  scenario::CampaignSummary truncated = a;
  truncated.results.clear();
  EXPECT_THROW(exec::merge_shard_summaries({truncated, b}),
               exec::ExecError);
}

TEST(MergeTest, EmptyShardsOfAnOversplitCampaignMergeCleanly) {
  // 3-way split of a 2-cell campaign: shard 2 legitimately runs nothing,
  // and the merge must still reproduce the unsharded bytes.
  exec::LocalExecutor local;
  const scenario::CampaignSummary full =
      local.execute(campaign_request()).summary;

  std::vector<scenario::CampaignSummary> shards;
  for (std::size_t k = 0; k < 3; ++k) {
    exec::Request slice = campaign_request();
    slice.shard_index = k;
    slice.shard_count = 3;
    shards.push_back(local.execute(slice).summary);
  }
  EXPECT_EQ(shards[2].results.size(), 0u);
  EXPECT_EQ(exec::merge_shard_summaries(shards).to_json().dump(),
            full.to_json().dump());
}

TEST(MergeTest, SingleCellCampaignMergesAcrossAnySplit) {
  Json doc = tiny_campaign_doc();
  Json sweep = Json::object();
  sweep.set("clock.sigma_offset", Json(util::JsonArray{Json(0.0)}));
  doc.set("sweep", std::move(sweep));
  const exec::Request request = exec::Request::from_json(doc);
  ASSERT_EQ(request.expansion_size(), 1u);

  exec::LocalExecutor local;
  const scenario::CampaignSummary full = local.execute(request).summary;

  // A 1-shard "split" merges to itself; a 2-way split leaves shard 1
  // empty and still reproduces the unsharded bytes.
  EXPECT_EQ(exec::merge_shard_summaries({full}).to_json().dump(),
            full.to_json().dump());
  exec::Request shard0 = request, shard1 = request;
  shard0.shard_count = shard1.shard_count = 2;
  shard0.shard_index = 0;
  shard1.shard_index = 1;
  const scenario::CampaignSummary merged = exec::merge_shard_summaries(
      {local.execute(shard0).summary, local.execute(shard1).summary});
  EXPECT_EQ(merged.to_json().dump(), full.to_json().dump());
}

TEST(MergeTest, DuplicateShardIndexAcrossParsedSummariesIsRejected) {
  // Two files both claiming shard 0/2 — e.g. the same shard output passed
  // twice to `report --merge` under different names — must be rejected as
  // overlapping even though names and cell counts agree.
  exec::LocalExecutor local;
  exec::Request shard0 = campaign_request(), shard1 = campaign_request();
  shard0.shard_count = shard1.shard_count = 2;
  shard0.shard_index = 0;
  shard1.shard_index = 1;
  const scenario::CampaignSummary a = local.execute(shard0).summary;

  Json relabelled = local.execute(shard1).summary.to_json();
  ASSERT_NE(relabelled.find("shard"), nullptr);
  relabelled.find("shard")->set("index", 0);
  EXPECT_THROW(
      exec::merge_shard_summaries(
          {a, scenario::CampaignSummary::from_json(relabelled)}),
      exec::ExecError);
}

TEST(MergeTest, SummaryJsonRoundTripIsByteExact) {
  exec::LocalExecutor local;
  exec::Request request = campaign_request();
  request.shard_index = 1;
  request.shard_count = 2;
  const scenario::CampaignSummary shard = local.execute(request).summary;
  const std::string original = shard.to_json().dump();
  const scenario::CampaignSummary rebuilt =
      scenario::CampaignSummary::from_json(Json::parse(original));
  EXPECT_EQ(rebuilt.to_json().dump(), original);
  EXPECT_EQ(rebuilt.shard_index, 1u);
  EXPECT_EQ(rebuilt.shard_count, 2u);
}

// ---------------------------------------------------- observer + cancelling

TEST(ObserverTest, StreamsEveryCellWithGlobalIndices) {
  cache::ResultCache cache_store;
  exec::Request request = campaign_request();
  request.cache = &cache_store;

  exec::LocalExecutor local;
  RecordingObserver cold;
  local.execute(request, &cold);
  EXPECT_EQ(cold.begins, 1);
  EXPECT_EQ(cold.total_cells, 2u);
  EXPECT_EQ(cold.own_cells, 2u);
  EXPECT_EQ(cold.indices, (std::set<std::size_t>{0, 1}));
  EXPECT_EQ(cold.cached_cells, 0u);

  RecordingObserver warm;
  local.execute(request, &warm);
  EXPECT_EQ(warm.cached_cells, 2u);

  // A shard slice reports its own cell count but global indices.
  exec::Request slice = request;
  slice.shard_index = 1;
  slice.shard_count = 2;
  RecordingObserver sliced;
  local.execute(slice, &sliced);
  EXPECT_EQ(sliced.total_cells, 2u);
  EXPECT_EQ(sliced.own_cells, 1u);
  EXPECT_EQ(sliced.indices, (std::set<std::size_t>{1}));
}

TEST(ObserverTest, CancellationStopsTheCampaign) {
  // Single worker makes the poll order deterministic: cell 0 completes,
  // then the cancel flag is seen before cell 1 starts.
  struct CancelAfterFirst : RecordingObserver {
    bool cancelled() override {
      const std::lock_guard<std::mutex> lock(mutex_);
      return !indices.empty();
    }
  } observer;

  auto spec = scenario::CampaignSpec::from_json(tiny_campaign_doc());
  spec.threads = 1;
  exec::LocalExecutor local;
  EXPECT_THROW(
      local.execute(exec::Request::for_campaign(spec), &observer),
      exec::CancelledError);
  EXPECT_EQ(observer.indices.size(), 1u);
}

}  // namespace
}  // namespace clktune
