# Empty dependencies file for clktune_lib.
# This may be replaced when dependencies are built.
