// Quantized per-sample constraint constants — the kernel currency of the
// Monte-Carlo hot path.
//
// Every per-sample problem (ILP seeding, difference-constraint feasibility,
// yield checking) consumes the same two integers per sequential arc:
//
//   setup:  x_i - x_j <= setup_steps[e]
//   hold:   x_j - x_i <= hold_steps[e]
//
// derived from the realised arc delays by flooring onto the buffer-step
// grid.  This header centralises that derivation (one quantizer, one
// epsilon) and provides a cross-pass cache so a sample's constants are
// computed exactly once per insertion run instead of once per pass.
//
// Constants are stored structure-of-arrays as int32 (magnitudes are bounded
// by clock period / step, a few thousand), halving the footprint of the
// former int64 representation and keeping a 10k-sample cache line-friendly.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "mc/sample_cache.h"
#include "ssta/seq_graph.h"

namespace clktune::mc {

class Sampler;
struct ArcSample;

/// Grid quantizer shared by the sample solver and the yield evaluator:
/// floor with a fixed 1e-9 epsilon so values an ulp below a grid line still
/// land on it.  Saturates at the int32 range (unreachable for physical
/// timing values; saturation preserves the constraint's sign).
inline std::int32_t floor_steps(double value_ps, double step_ps) {
  const double q = std::floor(value_ps / step_ps + 1e-9);
  if (q >= 2147483647.0) return 2147483647;
  if (q <= -2147483648.0) return -2147483648;
  return static_cast<std::int32_t>(q);
}

/// Raw (unquantized) constraint constants of one arc given its realised
/// delays — the single source of the setup/hold slack formula that every
/// consumer (solver quantization, yield sign tests, fused kernel) either
/// floors or sign-tests.  Term order is part of the contract: reordering
/// changes double rounding and breaks bit-identical reuse.
inline void arc_slack(const ssta::SeqGraph& g, std::size_t e, double late,
                      double early, double clock_period_ps, double& setup_c,
                      double& hold_c) {
  const ssta::SeqArc& arc = g.arcs[e];
  const auto i = static_cast<std::size_t>(arc.src_ff);
  const auto j = static_cast<std::size_t>(arc.dst_ff);
  // Setup:  x_i - x_j <= T - s_j - dmax + q_j - q_i
  setup_c = clock_period_ps - g.setup_ps[j] - late + g.skew_ps[j] -
            g.skew_ps[i];
  // Hold:   x_j - x_i <= dmin - h_j + q_i - q_j
  hold_c = early - g.hold_ps[j] + g.skew_ps[i] - g.skew_ps[j];
}

/// One sample's quantized constants, SoA over arcs.
struct ArcConstants {
  std::vector<std::int32_t> setup_steps;
  std::vector<std::int32_t> hold_steps;

  void resize(std::size_t num_arcs) {
    setup_steps.resize(num_arcs);
    hold_steps.resize(num_arcs);
  }
};

/// Borrowed view of one sample's constants — either into the cross-pass
/// cache or into a caller-owned scratch buffer.
struct ArcConstantsView {
  const std::int32_t* setup_steps = nullptr;
  const std::int32_t* hold_steps = nullptr;
  std::size_t num_arcs = 0;
};

inline ArcConstantsView view_of(const ArcConstants& c) {
  return {c.setup_steps.data(), c.hold_steps.data(), c.setup_steps.size()};
}

/// Quantizes already-realised arc delays.  Arithmetic matches the historic
/// solver/yield formulas term for term, so results are bit-identical to the
/// previous per-call derivations.
void quantize_arc_constants(const ssta::SeqGraph& graph,
                            const ArcSample& sample, double clock_period_ps,
                            double step_ps, ArcConstants& out);

/// Kernel traits of the cross-pass constant cache (see SampleSliceCache
/// for the fill/get protocol).  Out-of-line definitions keep Sampler an
/// incomplete type here.
struct ConstantCacheTraits {
  using Elem = std::int32_t;
  using View = ArcConstantsView;
  using Scratch = ArcConstants;

  const Sampler* sampler = nullptr;
  double clock_period_ps = 0.0;
  double step_ps = 0.0;

  std::size_t num_arcs() const;
  void compute(std::uint64_t k, std::int32_t* setup,
               std::int32_t* hold) const;
  ArcConstantsView compute_scratch(std::uint64_t k, ArcConstants& s) const;
  ArcConstantsView view(const std::int32_t* setup, const std::int32_t* hold,
                        std::size_t n) const {
    return {setup, hold, n};
  }
};

/// Cross-pass sample-constant cache.  The first pass calls fill(k) for every
/// sample (computing with the fused sampler kernel and storing when the
/// whole run fits in `max_bytes`); later passes call get(k), which is a
/// pointer lookup when cached and a recomputation in streaming mode.
class SampleConstantCache {
 public:
  /// max_bytes == 0 disables caching outright (always stream).
  SampleConstantCache(const Sampler& sampler, double clock_period_ps,
                      double step_ps, std::uint64_t samples,
                      std::uint64_t max_bytes);

  bool caching() const { return impl_.caching(); }
  std::uint64_t samples() const { return impl_.samples(); }
  std::uint64_t bytes() const { return impl_.bytes(); }
  static std::uint64_t required_bytes(std::uint64_t samples,
                                      std::size_t num_arcs) {
    return SampleSliceCache<ConstantCacheTraits>::required_bytes(samples,
                                                                 num_arcs);
  }

  ArcConstantsView fill(std::uint64_t k, ArcConstants& scratch) {
    return impl_.fill(k, scratch);
  }
  ArcConstantsView get(std::uint64_t k, ArcConstants& scratch) const {
    return impl_.get(k, scratch);
  }

 private:
  SampleSliceCache<ConstantCacheTraits> impl_;
};

}  // namespace clktune::mc
