// Shared SPFA (queue-based Bellman-Ford) kernel over a caller-shaped
// adjacency, with reusable scratch.  Both difference-constraint solvers —
// the general pooled-edge DiffConstraints and the yield evaluator's
// static-topology graph — run on this one implementation, so the subtle
// parts (ring-buffer queue invariants, the relax_count > n negative-cycle
// bound) are maintained in exactly one place.
#pragma once

#include <cstdint>
#include <vector>

namespace clktune::feas {

/// Reusable SPFA scratch.  resize() keeps capacity when shrinking and
/// reuses it when growing back, so steady state is allocation-free; every
/// run reinitialises it wholesale, which also makes a run after a
/// negative-cycle bailout start from a clean slate.
struct SpfaScratch {
  std::vector<std::int64_t> dist;
  std::vector<int> relax_count;
  std::vector<char> queued;
  std::vector<int> queue;  ///< ring buffer of capacity n
};

/// Shortest-path potentials from an implicit super-source: all distances
/// start at 0, all nodes queued.  `head(v)` yields node v's first edge id
/// or -1; `next(e)`, `to(e)`, `weight(e)` walk the adjacency.  Returns
/// false on a negative cycle; true with exact shortest paths in ws.dist
/// otherwise — unique, hence independent of edge order and scratch
/// history.  The ring buffer never overflows: a node is enqueued only
/// while not already queued, so occupancy is at most n.
template <class HeadFn, class NextFn, class ToFn, class WeightFn>
bool spfa_potentials(int n, SpfaScratch& ws, const HeadFn& head,
                     const NextFn& next, const ToFn& to,
                     const WeightFn& weight) {
  const auto ns = static_cast<std::size_t>(n);
  ws.dist.resize(ns);
  ws.relax_count.resize(ns);
  ws.queued.resize(ns);
  ws.queue.resize(ns);
  for (int v = 0; v < n; ++v) {
    const auto vs = static_cast<std::size_t>(v);
    ws.dist[vs] = 0;
    ws.relax_count[vs] = 0;
    ws.queued[vs] = 1;
    ws.queue[vs] = v;
  }
  std::size_t qhead = 0;
  std::size_t qcount = ns;
  while (qcount > 0) {
    const int v = ws.queue[qhead];
    qhead = qhead + 1 == ns ? 0 : qhead + 1;
    --qcount;
    ws.queued[static_cast<std::size_t>(v)] = 0;
    for (int e = head(v); e != -1; e = next(e)) {
      const std::int64_t cand =
          ws.dist[static_cast<std::size_t>(v)] + weight(e);
      const int u = to(e);
      const auto us = static_cast<std::size_t>(u);
      if (cand < ws.dist[us]) {
        ws.dist[us] = cand;
        if (++ws.relax_count[us] > n) return false;  // negative cycle
        if (!ws.queued[us]) {
          ws.queued[us] = 1;
          std::size_t tail = qhead + qcount;
          if (tail >= ns) tail -= ns;
          ws.queue[tail] = u;
          ++qcount;
        }
      }
    }
  }
  return true;
}

}  // namespace clktune::feas
