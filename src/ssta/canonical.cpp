#include "ssta/canonical.h"

#include <algorithm>
#include <numbers>

namespace clktune::ssta {

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

double normal_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

Canon clark_max(const Canon& x, const Canon& y) {
  const double vx = x.variance();
  const double vy = y.variance();
  const double cxy = x.covariance(y);
  const double theta2 = std::max(vx + vy - 2.0 * cxy, 0.0);
  const double theta = std::sqrt(theta2);

  if (theta < 1e-12) {
    // Fully correlated / identical spread: max is just the larger mean.
    return x.mu >= y.mu ? x : y;
  }

  const double alpha = (x.mu - y.mu) / theta;
  const double phi = normal_pdf(alpha);
  const double big_phi = normal_cdf(alpha);
  const double big_phi_c = 1.0 - big_phi;

  Canon out;
  out.mu = x.mu * big_phi + y.mu * big_phi_c + theta * phi;
  // Blend global sensitivities by tightness probability.
  for (int p = 0; p < kParams; ++p)
    out.a[static_cast<std::size_t>(p)] =
        big_phi * x.a[static_cast<std::size_t>(p)] +
        big_phi_c * y.a[static_cast<std::size_t>(p)];
  // Second moment of the exact max.
  const double m2 = (x.mu * x.mu + vx) * big_phi +
                    (y.mu * y.mu + vy) * big_phi_c +
                    (x.mu + y.mu) * theta * phi;
  const double var = std::max(m2 - out.mu * out.mu, 0.0);
  double aglob2 = 0.0;
  for (double ap : out.a) aglob2 += ap * ap;
  out.aloc = std::sqrt(std::max(var - aglob2, 0.0));
  return out;
}

Canon clark_min(const Canon& x, const Canon& y) {
  const auto negate = [](const Canon& c) {
    Canon n = c;
    n.mu = -n.mu;
    for (double& ap : n.a) ap = -ap;
    return n;
  };
  return negate(clark_max(negate(x), negate(y)));
}

}  // namespace clktune::ssta
