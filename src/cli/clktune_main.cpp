// clktune — command-line driver for the scenario / campaign pipeline.
//
//   clktune run <scenario.json>        run one scenario, write an artifact
//   clktune sweep <campaign.json>      expand + run a parameter sweep
//   clktune report <result.json>       render a saved artifact as a table
//   clktune report --diff <a> <b>      compare two artifacts cell by cell
//   clktune report --merge <s...>      merge shard summaries into one
//   clktune serve                      long-running scenario service (TCP)
//   clktune submit <doc.json>          send a document to a running server
//   clktune fanout <doc.json>          fan a campaign out over a daemon
//                                      pool, work-stealing with requeue
//   clktune job status|attach|cancel <id>   inspect / stream / stop an
//                                      async job on a running server
//   clktune job list                   every job the server knows
//   clktune job prune [--keep N]       drop terminal job envelopes
//   clktune drain                      ask a server to drain and exit
//   clktune cache stats|gc|verify      maintain an on-disk result cache
//   clktune metrics [--prom]           fetch a running server's metrics
//                                      snapshot (JSON, or Prometheus text)
//   clktune fleet status               probe a daemon pool and render one
//                                      health/metrics table
//
// Every command is a thin composition over the clktune::exec layer: build
// an exec::Request from the document, pick an Executor (local for run and
// sweep, remote for submit, fleet::FleetExecutor for fanout), attach an
// exec::Observer for progress lines, and print the Outcome's artifact.
// docs/exec_api.md describes the API; docs/fleet.md the fanout flow.
//
// Common options:
//   -o, --output <path>   write the JSON artifact here (default: stdout)
//   -t, --threads <n>     worker threads (default: hardware concurrency)
//       --cache-dir <dir> content-addressed result cache (run/sweep/serve);
//                         repeated invocations skip already-solved cells
//       --shard <i/n>     sweep/submit: only expansion indices with
//                         idx % n == i (submit: sliced daemon-side)
//       --progress        run/sweep/submit: per-cell NDJSON progress
//                         lines on stderr (replaces the human lines)
//       --tolerance <y>   --diff: allowed tuned-yield drop (default 0.005)
//       --host <h>        submit/job: server host (default 127.0.0.1)
//       --detach          submit: enqueue as a durable async job and print
//                         its descriptor instead of waiting for results;
//                         follow up with `clktune job attach <id>`
//       --daemons <l>     fanout: comma-separated host:port pool
//       --fleet <f.json>  fanout: JSON fleet file (daemons + weights);
//                         combines with --daemons
//       --retries <n>     fanout: re-dispatches per work unit (default 3)
//       --unit <n>        fanout: expansion cells per work unit (default 1)
//       --reprobe <ms>    fanout: re-probe retired daemons this often so
//                         restarted ones rejoin (default 1000; 0 = never)
//       --connect-timeout <ms>  submit/fanout: daemon connect deadline
//                         (default 5000; 0 blocks forever)
//       --io-timeout <ms> submit/fanout: response-stream stall deadline
//                         (default 0 = none; must exceed the slowest cell)
//       --max-bytes <n>   cache gc: evict oldest entries beyond this size
//       --trace <file>    run/sweep: write Chrome-trace-event NDJSON spans
//                         (chrome://tracing / Perfetto; expand, per-cell,
//                         per-step) to <file>
//       --prom            metrics: Prometheus text exposition instead of
//                         the JSON snapshot
//       --json            cache stats: include process-local registry
//                         counters; fleet status: JSON instead of a table
//   -p, --port <n>        serve/submit: TCP port (default 20160; serve: 0
//                         picks an ephemeral port and prints it)
//       --timings         include wall-clock fields (artifact is then no
//                         longer bit-identical across runs)
//       --compact         single-line JSON instead of pretty-printed
//       --quiet           suppress progress lines on stderr
//
// Exit codes: 0 success, 1 usage error, 2 bad input file / structural diff
// mismatch / merge rejection, 3 a scenario missed its yield target or a
// diff cell regressed.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/maintenance.h"
#include "cache/result_cache.h"
#include "core/report.h"
#include "exec/local_executor.h"
#include "fleet/fleet_executor.h"
#include "fleet/fleet_spec.h"
#include "exec/merge.h"
#include "exec/observer.h"
#include "exec/remote_executor.h"
#include "exec/request.h"
#include "fault/fault.h"
#include "fleet/fleet_status.h"
#include "load/harness.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/campaign.h"
#include "scenario/scenario.h"
#include "scenario/summary_diff.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/json.h"

namespace {

using clktune::util::Json;

/// Default service port (after the paper's DATE 2016 venue).
constexpr std::uint16_t kDefaultPort = 20160;

struct Options {
  std::string command;
  std::vector<std::string> inputs;  ///< positional arguments after command
  std::string output;
  std::string cache_dir;
  std::string host = "127.0.0.1";
  std::string daemons;     ///< fanout: comma-separated host:port list
  std::string fleet_file;  ///< fanout: JSON fleet file
  int port = -1;  ///< -1 = command default
  int threads = 0;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::size_t retries = 3;
  std::size_t unit_cells = 1;
  int connect_timeout_ms = 5000;
  int io_timeout_ms = 0;
  int reprobe_interval_ms = 1000;  ///< fanout re-probe period (0 = never)
  std::uint64_t max_bytes = 0;
  bool max_bytes_set = false;
  double tolerance = 0.005;
  bool diff = false;
  bool merge = false;
  bool detach = false;
  bool progress = false;
  bool timings = false;
  bool compact = false;
  bool quiet = false;
  bool prom = false;       ///< metrics: Prometheus text exposition
  bool json = false;       ///< cache stats / fleet status: JSON output
  std::string trace_file;  ///< run/sweep: Chrome-trace NDJSON span file
  std::string fault_plan;  ///< fault-injection plan (inline JSON or path)
  std::size_t keep = 0;           ///< job prune: terminal envelopes kept
  int stall_timeout_ms = 0;       ///< serve: stuck-job watchdog (0 = off)
  int drain_grace_ms = 5000;      ///< serve: graceful-drain grace window
  // bench load
  std::string connect;            ///< target daemons, host:port[,...]
  std::string mix_spec;           ///< workload mix, inline JSON or a file
  std::string base_file;          ///< base scenario document
  std::size_t clients = 4;
  std::uint64_t requests = 0;
  std::uint64_t seed = 20160;
  double duration_seconds = 0.0;
  double rate = 0.0;
  double max_error_rate = 1.0;
  double xcheck_overhead = 0.0;   ///< 0 = library default
  bool no_xcheck = false;
};

void print_usage(std::FILE* to) {
  std::fputs(
      "usage: clktune <command> [args] [options]\n"
      "\n"
      "commands:\n"
      "  run <scenario.json>     execute one scenario (kind: yield,\n"
      "                          criticality or binning; docs/scenarios.md)\n"
      "  sweep <campaign.json>   expand and execute a parameter sweep\n"
      "  report <result.json>    print a saved result artifact as a table\n"
      "  report --diff <a> <b>   compare two artifacts, flag regressions\n"
      "  report --merge <s...>   merge disjoint shard summaries into one\n"
      "  serve                   run the scenario service (TCP, NDJSON)\n"
      "  submit <doc.json>       send a scenario/campaign to a server\n"
      "  fanout <doc.json>       work-stealing dispatch over a daemon pool\n"
      "  job status <id>         one lifecycle/progress frame for a job\n"
      "  job attach <id>         stream a job's results (replay or live)\n"
      "  job cancel <id>         cancel a queued or running job\n"
      "  job list                every job the server knows\n"
      "  job prune [--keep <n>]  drop terminal job envelopes beyond n\n"
      "  drain                   ask a server to drain gracefully and exit\n"
      "  cache stats|gc|verify   maintain an on-disk result cache\n"
      "  metrics                 fetch a running server's metrics snapshot\n"
      "  fleet status            probe a daemon pool, render a health table\n"
      "  bench load              closed-loop load generation against a\n"
      "                          daemon or fleet; writes BENCH_load.json\n"
      "\n"
      "options:\n"
      "  -o, --output <path>     write the JSON artifact to <path>\n"
      "  -t, --threads <n>       worker threads (0 = hardware concurrency)\n"
      "      --cache-dir <dir>   enable the content-addressed result cache\n"
      "      --shard <i/n>       run expansion indices idx %% n == i only\n"
      "      --progress          per-cell NDJSON progress lines on stderr\n"
      "      --tolerance <y>     allowed tuned-yield drop for --diff\n"
      "      --host <h>          server host for submit/job\n"
      "      --detach            submit: enqueue as an async job, print id\n"
      "      --daemons <list>    fanout pool as host:port,host:port,...\n"
      "      --fleet <f.json>    fanout pool from a JSON fleet file\n"
      "      --retries <n>       fanout re-dispatches per unit (default 3)\n"
      "      --unit <n>          fanout cells per work unit (default 1)\n"
      "      --reprobe <ms>      fanout daemon re-probe period (0 = never)\n"
      "      --connect-timeout <ms>  daemon connect deadline (default 5000)\n"
      "      --io-timeout <ms>   response stall deadline (default 0 = none)\n"
      "      --max-bytes <n>     cache gc size cap in bytes\n"
      "      --trace <file>      run/sweep: Chrome-trace NDJSON spans\n"
      "      --keep <n>          job prune: terminal envelopes kept\n"
      "      --stall-timeout <ms>  serve: re-queue jobs with no checkpoint\n"
      "                          progress for this long (default 0 = off)\n"
      "      --drain-grace <ms>  serve: drain wait for in-flight work\n"
      "                          before hard wind-down (default 5000)\n"
      "      --fault-plan <p>    arm the deterministic fault-injection\n"
      "                          registry: inline JSON or a plan file\n"
      "                          (docs/robustness.md; also via the\n"
      "                          CLKTUNE_FAULT_PLAN environment variable)\n"
      "      --connect <list>    bench load: target daemons host:port,...\n"
      "      --clients <n>       bench load: concurrent clients (default 4)\n"
      "      --duration <s>      bench load: run this long (default 5)\n"
      "      --requests <n>      bench load: fixed operation budget instead\n"
      "      --rate <rps>        bench load: open-loop arrivals per second\n"
      "                          (default closed loop)\n"
      "      --seed <n>          bench load: schedule seed (default 20160)\n"
      "      --mix <m>           bench load: workload mix weights, inline\n"
      "                          JSON or a file (docs/load.md)\n"
      "      --base <doc.json>   bench load: base scenario document\n"
      "      --max-error-rate <r>  bench load: fail (exit 3) above this\n"
      "      --no-xcheck         bench load: skip the client/server\n"
      "                          histogram cross-check\n"
      "      --xcheck-overhead <f>  bench load: allowed client/server\n"
      "                          latency overhead factor (default 16)\n"
      "      --prom              metrics: Prometheus text exposition\n"
      "      --json              cache stats: add registry counters;\n"
      "                          fleet status: JSON instead of a table\n"
      "  -p, --port <n>          server port (default 20160)\n"
      "      --timings           include wall-clock fields in artifacts\n"
      "      --compact           single-line JSON output\n"
      "      --quiet             no progress lines on stderr\n",
      to);
}

/// Strict deadline parse: a half-parsed "10s" must not silently become
/// 10 ms, nor "abc" become 0 — which this CLI defines as "no deadline".
bool parse_timeout_ms(const char* text, int& out) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0 || value > 86400000)
    return false;
  out = static_cast<int>(value);
  return true;
}

bool parse_shard(const std::string& text, Options& opt) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size())
    return false;
  char* end = nullptr;
  const unsigned long i = std::strtoul(text.c_str(), &end, 10);
  if (end != text.c_str() + slash) return false;
  const unsigned long n = std::strtoul(text.c_str() + slash + 1, &end, 10);
  if (*end != '\0' || n == 0 || i >= n) return false;
  opt.shard_index = i;
  opt.shard_count = n;
  return true;
}

int parse_options(int argc, char** argv, Options& opt) {
  if (argc < 2) {
    print_usage(stderr);
    return 1;
  }
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "-o" || arg == "--output") && i + 1 < argc) {
      opt.output = argv[++i];
    } else if ((arg == "-t" || arg == "--threads") && i + 1 < argc) {
      opt.threads = std::atoi(argv[++i]);
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      opt.cache_dir = argv[++i];
    } else if (arg == "--shard" && i + 1 < argc) {
      if (!parse_shard(argv[++i], opt)) {
        std::fprintf(stderr, "clktune: --shard wants i/n with 0 <= i < n\n");
        return 1;
      }
    } else if (arg == "--tolerance" && i + 1 < argc) {
      opt.tolerance = std::atof(argv[++i]);
    } else if (arg == "--host" && i + 1 < argc) {
      opt.host = argv[++i];
    } else if (arg == "--daemons" && i + 1 < argc) {
      opt.daemons = argv[++i];
    } else if (arg == "--fleet" && i + 1 < argc) {
      opt.fleet_file = argv[++i];
    } else if (arg == "--retries" && i + 1 < argc) {
      const long retries = std::atol(argv[++i]);
      if (retries < 0) {
        // A negative cast to size_t would mean "retry forever" and
        // defeat the fleet's bounded-retry guarantee.
        std::fprintf(stderr, "clktune: --retries wants >= 0\n");
        return 1;
      }
      opt.retries = static_cast<std::size_t>(retries);
    } else if (arg == "--unit" && i + 1 < argc) {
      const long unit = std::atol(argv[++i]);
      if (unit <= 0) {
        std::fprintf(stderr, "clktune: --unit wants a positive cell count\n");
        return 1;
      }
      opt.unit_cells = static_cast<std::size_t>(unit);
    } else if (arg == "--connect-timeout" && i + 1 < argc) {
      if (!parse_timeout_ms(argv[++i], opt.connect_timeout_ms)) {
        std::fprintf(stderr,
                     "clktune: --connect-timeout wants milliseconds\n");
        return 1;
      }
    } else if (arg == "--io-timeout" && i + 1 < argc) {
      if (!parse_timeout_ms(argv[++i], opt.io_timeout_ms)) {
        std::fprintf(stderr, "clktune: --io-timeout wants milliseconds\n");
        return 1;
      }
    } else if (arg == "--reprobe" && i + 1 < argc) {
      if (!parse_timeout_ms(argv[++i], opt.reprobe_interval_ms)) {
        std::fprintf(stderr, "clktune: --reprobe wants milliseconds\n");
        return 1;
      }
    } else if (arg == "--max-bytes" && i + 1 < argc) {
      // gc is destructive: a half-parsed "2GB" silently becoming 2 bytes
      // would wipe the cache, so the value must be a plain byte count.
      const char* text = argv[++i];
      char* end = nullptr;
      opt.max_bytes = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0') {
        std::fprintf(stderr,
                     "clktune: --max-bytes wants a plain byte count\n");
        return 1;
      }
      opt.max_bytes_set = true;
    } else if ((arg == "-p" || arg == "--port") && i + 1 < argc) {
      opt.port = std::atoi(argv[++i]);
      if (opt.port < 0 || opt.port > 65535) {
        std::fprintf(stderr, "clktune: --port wants 0..65535\n");
        return 1;
      }
    } else if (arg == "--trace" && i + 1 < argc) {
      opt.trace_file = argv[++i];
    } else if (arg == "--fault-plan" && i + 1 < argc) {
      opt.fault_plan = argv[++i];
    } else if (arg == "--keep" && i + 1 < argc) {
      const long keep = std::atol(argv[++i]);
      if (keep < 0) {
        std::fprintf(stderr, "clktune: --keep wants >= 0\n");
        return 1;
      }
      opt.keep = static_cast<std::size_t>(keep);
    } else if (arg == "--stall-timeout" && i + 1 < argc) {
      if (!parse_timeout_ms(argv[++i], opt.stall_timeout_ms)) {
        std::fprintf(stderr, "clktune: --stall-timeout wants milliseconds\n");
        return 1;
      }
    } else if (arg == "--drain-grace" && i + 1 < argc) {
      if (!parse_timeout_ms(argv[++i], opt.drain_grace_ms)) {
        std::fprintf(stderr, "clktune: --drain-grace wants milliseconds\n");
        return 1;
      }
    } else if (arg == "--connect" && i + 1 < argc) {
      opt.connect = argv[++i];
    } else if (arg == "--clients" && i + 1 < argc) {
      const long clients = std::atol(argv[++i]);
      if (clients <= 0) {
        std::fprintf(stderr, "clktune: --clients wants >= 1\n");
        return 1;
      }
      opt.clients = static_cast<std::size_t>(clients);
    } else if (arg == "--duration" && i + 1 < argc) {
      opt.duration_seconds = std::atof(argv[++i]);
      if (!(opt.duration_seconds > 0.0)) {
        std::fprintf(stderr, "clktune: --duration wants seconds > 0\n");
        return 1;
      }
    } else if (arg == "--requests" && i + 1 < argc) {
      const char* text = argv[++i];
      char* end = nullptr;
      opt.requests = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0' || opt.requests == 0) {
        std::fprintf(stderr, "clktune: --requests wants a count >= 1\n");
        return 1;
      }
    } else if (arg == "--rate" && i + 1 < argc) {
      opt.rate = std::atof(argv[++i]);
      if (!(opt.rate > 0.0)) {
        std::fprintf(stderr, "clktune: --rate wants arrivals/second > 0\n");
        return 1;
      }
    } else if (arg == "--seed" && i + 1 < argc) {
      const char* text = argv[++i];
      char* end = nullptr;
      opt.seed = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0') {
        std::fprintf(stderr, "clktune: --seed wants an integer\n");
        return 1;
      }
    } else if (arg == "--mix" && i + 1 < argc) {
      opt.mix_spec = argv[++i];
    } else if (arg == "--base" && i + 1 < argc) {
      opt.base_file = argv[++i];
    } else if (arg == "--max-error-rate" && i + 1 < argc) {
      opt.max_error_rate = std::atof(argv[++i]);
      if (opt.max_error_rate < 0.0 || opt.max_error_rate > 1.0) {
        std::fprintf(stderr, "clktune: --max-error-rate wants 0..1\n");
        return 1;
      }
    } else if (arg == "--no-xcheck") {
      opt.no_xcheck = true;
    } else if (arg == "--xcheck-overhead" && i + 1 < argc) {
      opt.xcheck_overhead = std::atof(argv[++i]);
      if (!(opt.xcheck_overhead >= 1.0)) {
        std::fprintf(stderr, "clktune: --xcheck-overhead wants >= 1\n");
        return 1;
      }
    } else if (arg == "--prom") {
      opt.prom = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--diff") {
      opt.diff = true;
    } else if (arg == "--detach") {
      opt.detach = true;
    } else if (arg == "--merge") {
      opt.merge = true;
    } else if (arg == "--progress") {
      opt.progress = true;
    } else if (arg == "--timings") {
      opt.timings = true;
    } else if (arg == "--compact") {
      opt.compact = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "clktune: unknown option '%s'\n", arg.c_str());
      print_usage(stderr);
      return 1;
    } else {
      opt.inputs.push_back(arg);
    }
  }
  return 0;
}

/// Enforces the command's positional-argument count.
bool expect_inputs(const Options& opt, std::size_t count) {
  if (opt.inputs.size() == count) return true;
  std::fprintf(stderr, "clktune: %s expects %zu file argument%s\n",
               opt.command.c_str(), count, count == 1 ? "" : "s");
  print_usage(stderr);
  return false;
}

void emit(const Options& opt, const Json& artifact) {
  const int indent = opt.compact ? -1 : 2;
  if (opt.output.empty()) {
    const std::string text = artifact.dump(indent);
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fputc('\n', stdout);
  } else {
    clktune::util::write_json_file(opt.output, artifact, indent);
    // --progress keeps stderr a pure NDJSON stream.
    if (!opt.quiet && !opt.progress)
      std::fprintf(stderr, "clktune: wrote %s\n", opt.output.c_str());
  }
}

std::unique_ptr<clktune::cache::ResultCache> make_cache(const Options& opt) {
  if (opt.cache_dir.empty()) return nullptr;
  return std::make_unique<clktune::cache::ResultCache>(opt.cache_dir);
}

/// Progress printer shared by run / sweep / submit: human lines by
/// default, machine-readable NDJSON with --progress, nothing with --quiet.
/// Cells finish on worker threads; each line is a single stdio call, so
/// lines never interleave.
/// Kind-aware one-line cell summary for human progress output ("yield
/// 61.20% -> 95.40%", "top-arc criticality ...", "12 bins ...").
std::string cell_summary(const clktune::scenario::ScenarioResult& result) {
  char buf[160];
  switch (result.kind) {
    case clktune::scenario::ScenarioKind::criticality: {
      const auto& arcs = result.criticality.arcs;
      std::snprintf(buf, sizeof(buf),
                    "top-arc criticality %.2f%% -> %.2f%% (%zu arcs ranked)",
                    arcs.empty() ? 0.0 : 100.0 * arcs.front().before,
                    arcs.empty() ? 0.0 : 100.0 * arcs.front().after,
                    arcs.size());
      break;
    }
    case clktune::scenario::ScenarioKind::binning:
      std::snprintf(buf, sizeof(buf),
                    "%zu bins  sell T=%.1f ps  unsellable %.2f%%",
                    result.binning.bins.size(),
                    result.binning.expected_sell_period_ps,
                    100.0 * result.binning.unsellable_fraction);
      break;
    case clktune::scenario::ScenarioKind::yield:
      std::snprintf(buf, sizeof(buf), "yield %.2f%% -> %.2f%%",
                    100.0 * result.yield.original.yield,
                    100.0 * result.yield.tuned.yield);
      break;
  }
  return buf;
}

/// Same summary from a raw result artifact — the detached-attach path
/// streams JSON frames and never materialises a ScenarioResult.
std::string cell_summary(const Json& result) {
  const Json* kind = result.find("kind");
  const std::string k = kind != nullptr ? kind->as_string() : "yield";
  char buf[160];
  if (k == "criticality") {
    const clktune::util::JsonArray& arcs =
        result.at("criticality").at("arcs").as_array();
    std::snprintf(buf, sizeof(buf),
                  "top-arc criticality %.2f%% -> %.2f%% (%zu arcs ranked)",
                  arcs.empty() ? 0.0
                               : 100.0 * arcs.front().at("before").as_double(),
                  arcs.empty() ? 0.0
                               : 100.0 * arcs.front().at("after").as_double(),
                  arcs.size());
  } else if (k == "binning") {
    const Json& binning = result.at("binning");
    std::snprintf(buf, sizeof(buf),
                  "%zu bins  sell T=%.1f ps  unsellable %.2f%%",
                  binning.at("bins").as_array().size(),
                  binning.at("expected_sell_period_ps").as_double(),
                  100.0 * binning.at("unsellable_fraction").as_double());
  } else {
    std::snprintf(buf, sizeof(buf), "yield %.2f%% -> %.2f%%",
                  100.0 * result.at("yield").at("original").at("yield")
                              .as_double(),
                  100.0 * result.at("yield").at("tuned").at("yield")
                              .as_double());
  }
  return buf;
}

class CliObserver : public clktune::exec::Observer {
 public:
  explicit CliObserver(const Options& opt) : opt_(opt) {}

  void on_begin(std::size_t total_cells, std::size_t) override {
    total_ = total_cells;
  }

  void on_cell(const clktune::exec::CellEvent& event) override {
    if (opt_.quiet) return;
    if (opt_.progress) {
      Json line = Json::object();
      line.set("event", "cell");
      line.set("index", static_cast<std::uint64_t>(event.index));
      line.set("name", event.result.name);
      line.set("cached", event.cached);
      line.set("seconds", event.seconds);
      const std::string text = line.dump(-1) + "\n";
      std::fputs(text.c_str(), stderr);
      return;
    }
    std::fprintf(stderr, "clktune: [%zu/%zu] %s  %s%s\n", event.index + 1,
                 total_, event.result.name.c_str(),
                 cell_summary(event.result).c_str(),
                 event.cached ? "  (cached)" : "");
  }

 private:
  const Options& opt_;
  std::size_t total_ = 1;
};

int cmd_run(const Options& opt) {
  const Json doc = clktune::util::read_json_file(opt.inputs[0]);
  clktune::exec::Request request = clktune::exec::Request::for_scenario(
      clktune::scenario::ScenarioSpec::from_json(doc));
  request.threads = opt.threads;
  const std::unique_ptr<clktune::cache::ResultCache> cache = make_cache(opt);
  request.cache = cache.get();

  // With a cache configured the scenario may be served without running;
  // announce the run upfront only when it is certain to compute.  With
  // --progress, stderr is the observer's NDJSON stream instead.
  if (!opt.quiet && !opt.progress && request.cache == nullptr)
    std::fprintf(stderr, "clktune: running scenario %s\n",
                 request.scenario.name.c_str());
  CliObserver observer(opt);
  clktune::exec::LocalExecutor executor;
  const clktune::obs::TraceSession trace(opt.trace_file);
  const clktune::exec::Outcome outcome =
      executor.execute(request, opt.progress ? &observer : nullptr);

  // A cache-served artifact carries no timing fields and stays the exact
  // bytes that were stored; recomputed results honour --timings.
  if (outcome.fully_cached() && !opt.quiet && !opt.progress) {
    std::fprintf(stderr, "clktune: %s served from cache\n",
                 outcome.result.name.c_str());
    if (opt.timings)
      std::fprintf(stderr,
                   "clktune: cached artifacts carry no timing fields\n");
  }
  emit(opt, outcome.artifact(opt.timings && !outcome.fully_cached()));
  if (!outcome.fully_cached() && !opt.quiet && !opt.progress)
    std::fprintf(stderr, "clktune: %s  T=%.1f ps  Nb=%d  %s  (%.1f s)\n",
                 outcome.result.name.c_str(), outcome.result.clock_period_ps,
                 outcome.result.insertion.plan.physical_buffers(),
                 cell_summary(outcome.result).c_str(),
                 outcome.result.seconds);
  return outcome.ok() ? 0 : 3;
}

int cmd_sweep(const Options& opt) {
  const Json doc = clktune::util::read_json_file(opt.inputs[0]);
  clktune::exec::Request request = clktune::exec::Request::for_campaign(
      clktune::scenario::CampaignSpec::from_json(doc));
  request.threads = opt.threads;
  request.shard_index = opt.shard_index;
  request.shard_count = opt.shard_count;
  const std::unique_ptr<clktune::cache::ResultCache> cache = make_cache(opt);
  request.cache = cache.get();

  // With --progress stderr is a pure NDJSON stream; the human header and
  // trailer lines would pollute it.
  if (!opt.quiet && !opt.progress) {
    if (opt.shard_count > 1)
      std::fprintf(stderr,
                   "clktune: campaign %s, shard %zu/%zu: %zu of %zu"
                   " scenarios\n",
                   request.campaign.name.c_str(), opt.shard_index,
                   opt.shard_count, request.shard_cells(),
                   request.expansion_size());
    else
      std::fprintf(stderr, "clktune: campaign %s, %zu scenarios\n",
                   request.campaign.name.c_str(), request.expansion_size());
  }

  CliObserver observer(opt);
  clktune::exec::LocalExecutor executor;
  const clktune::exec::Outcome outcome = [&] {
    const clktune::obs::TraceSession trace(opt.trace_file);
    return executor.execute(request, &observer);
  }();
  emit(opt, outcome.artifact(opt.timings));
  if (!opt.quiet && !opt.progress)
    std::fprintf(stderr,
                 "clktune: %llu scenarios (%llu from cache), %llu missed"
                 " target  (%.1f s)\n",
                 static_cast<unsigned long long>(outcome.scenarios_run),
                 static_cast<unsigned long long>(outcome.scenarios_cached),
                 static_cast<unsigned long long>(outcome.targets_missed),
                 outcome.seconds);
  return outcome.ok() ? 0 : 3;
}

clktune::serve::SubmitOptions submit_timeouts(const Options& opt) {
  clktune::serve::SubmitOptions timeouts;
  timeouts.connect_timeout_ms = opt.connect_timeout_ms;
  timeouts.io_timeout_ms = opt.io_timeout_ms;
  return timeouts;
}

std::uint16_t submit_port(const Options& opt) {
  return opt.port < 0 ? kDefaultPort : static_cast<std::uint16_t>(opt.port);
}

/// `submit --detach`: enqueue the document as a durable async job and
/// return immediately with its descriptor — admission is O(enqueue) on the
/// daemon, no cell is computed before this prints.  The id feeds
/// `clktune job status|attach|cancel`.
int cmd_submit_detached(const Options& opt, const Json& doc) {
  if (opt.shard_count > 1) {
    // Jobs persist the *whole* selection; a daemon-side shard slice of an
    // async job has no recovery story, so the combination is refused.
    std::fprintf(stderr, "clktune: --detach does not combine with --shard\n");
    return 1;
  }
  Json wire = Json::object();
  wire.set("cmd", "submit");
  wire.set("doc", doc);
  const clktune::serve::SubmitOutcome outcome = clktune::serve::submit_raw(
      opt.host, submit_port(opt), wire, {}, submit_timeouts(opt));
  const Json* event = outcome.final_event.find("event");
  if (event == nullptr || event->as_string() != "job") {
    const Json* message = outcome.final_event.find("message");
    std::fprintf(stderr, "clktune: submit rejected: %s\n",
                 message != nullptr ? message->as_string().c_str()
                                    : "connection closed");
    return 2;
  }
  emit(opt, outcome.final_event);
  if (!opt.quiet && !opt.progress)
    std::fprintf(stderr, "clktune: job %s queued; clktune job attach %s\n",
                 outcome.final_event.at("id").as_string().c_str(),
                 outcome.final_event.at("id").as_string().c_str());
  return 0;
}

int cmd_submit(const Options& opt) {
  const Json doc = clktune::util::read_json_file(opt.inputs[0]);
  if (opt.detach) return cmd_submit_detached(opt, doc);
  clktune::exec::Request request = clktune::exec::Request::from_json(doc);
  // The daemon honours the slice server-side, so N submit --shard i/N
  // invocations against N daemons fan one campaign out across hosts.
  request.shard_index = opt.shard_index;
  request.shard_count = opt.shard_count;
  clktune::exec::RemoteExecutor executor(opt.host, submit_port(opt),
                                         submit_timeouts(opt));
  CliObserver observer(opt);
  const clktune::exec::Outcome outcome = executor.execute(request, &observer);

  // A scenario document prints exactly the artifact `clktune run` would; a
  // campaign document prints the artifact array in expansion order (even
  // when the sweep expands to a single cell).
  if (request.kind == clktune::exec::Request::Kind::campaign) {
    Json array = Json::array();
    for (const clktune::scenario::ScenarioResult& result :
         outcome.summary.results)
      array.push_back(result.to_json());
    emit(opt, array);
  } else {
    emit(opt, outcome.result.to_json());
  }
  return outcome.ok() ? 0 : 3;
}

int cmd_fanout(const Options& opt) {
  if (opt.daemons.empty() && opt.fleet_file.empty()) {
    std::fprintf(stderr,
                 "clktune: fanout needs --daemons and/or --fleet\n");
    print_usage(stderr);
    return 1;
  }
  clktune::fleet::FleetSpec pool;
  if (!opt.fleet_file.empty())
    pool = clktune::fleet::FleetSpec::from_file(opt.fleet_file);
  if (!opt.daemons.empty())
    pool.merge(clktune::fleet::FleetSpec::parse_daemon_list(opt.daemons));

  clktune::fleet::FleetOptions fleet_options;
  fleet_options.unit_cells = opt.unit_cells;
  fleet_options.max_retries = opt.retries;
  fleet_options.connect_timeout_ms = opt.connect_timeout_ms;
  fleet_options.io_timeout_ms = opt.io_timeout_ms;
  fleet_options.reprobe_interval_ms = opt.reprobe_interval_ms;

  const Json doc = clktune::util::read_json_file(opt.inputs[0]);
  clktune::exec::Request request = clktune::exec::Request::from_json(doc);
  if (!opt.quiet && !opt.progress &&
      request.kind == clktune::exec::Request::Kind::campaign)
    std::fprintf(stderr,
                 "clktune: campaign %s, %zu scenarios over %zu daemons\n",
                 request.campaign.name.c_str(), request.expansion_size(),
                 pool.members.size());

  clktune::fleet::FleetExecutor executor(std::move(pool), fleet_options);
  CliObserver observer(opt);
  const clktune::exec::Outcome outcome = executor.execute(request, &observer);
  emit(opt, outcome.artifact(opt.timings));
  if (!opt.quiet && !opt.progress)
    std::fprintf(stderr,
                 "clktune: %llu scenarios (%llu from daemon caches), %llu"
                 " missed target  (%.1f s)\n",
                 static_cast<unsigned long long>(outcome.scenarios_run),
                 static_cast<unsigned long long>(outcome.scenarios_cached),
                 static_cast<unsigned long long>(outcome.targets_missed),
                 outcome.seconds);
  return outcome.ok() ? 0 : 3;
}

/// Emits a job lifecycle frame or an error diagnostic; exit 0 on a job
/// frame, 2 when the server answered with an error.
int emit_job_frame(const Options& opt,
                   const clktune::serve::SubmitOutcome& outcome) {
  const Json* event = outcome.final_event.find("event");
  if (event != nullptr && event->as_string() == "job") {
    emit(opt, outcome.final_event);
    return 0;
  }
  const Json* message = outcome.final_event.find("message");
  std::fprintf(stderr, "clktune: %s\n",
               message != nullptr ? message->as_string().c_str()
                                  : "connection closed");
  return 2;
}

/// `clktune job attach <id>`: stream the job's result frames — replayed
/// for finished cells, live otherwise — and rebuild the synchronous
/// artifact from them.  A done scenario job prints exactly what
/// `clktune run` would; a done campaign job exactly what `clktune sweep`
/// would (the byte-identity contract that makes a detached submit a
/// drop-in for the blocking commands).
int cmd_job_attach(const Options& opt, const std::string& id) {
  // A status round trip first: attach streams bare result frames, so the
  // job's kind and name (needed to rebuild a campaign summary) come from
  // the lifecycle frame.
  Json status_wire = Json::object();
  status_wire.set("cmd", "status");
  status_wire.set("id", id);
  const clktune::serve::SubmitOutcome status = clktune::serve::submit_raw(
      opt.host, submit_port(opt), status_wire, {}, submit_timeouts(opt));
  const Json* event = status.final_event.find("event");
  if (event == nullptr || event->as_string() != "job")
    return emit_job_frame(opt, status);
  const std::string kind = status.final_event.at("kind").as_string();
  const std::string name = status.final_event.at("name").as_string();
  const std::size_t total =
      static_cast<std::size_t>(status.final_event.at("cells_total").as_uint());

  std::size_t streamed = 0;
  const auto progress = [&](const Json& frame) {
    if (frame.at("event").as_string() != "result" || opt.quiet) return;
    const Json& result = frame.at("result");
    if (opt.progress) {
      Json line = Json::object();
      line.set("event", "cell");
      line.set("index", frame.at("index").as_uint());
      line.set("name", result.at("name").as_string());
      line.set("cached", frame.at("cached").as_bool());
      const std::string text = line.dump(-1) + "\n";
      std::fputs(text.c_str(), stderr);
      return;
    }
    std::fprintf(stderr, "clktune: [%zu/%zu] %s  %s%s\n", ++streamed, total,
                 result.at("name").as_string().c_str(),
                 cell_summary(result).c_str(),
                 frame.at("cached").as_bool() ? "  (cached)" : "");
  };
  Json attach_wire = Json::object();
  attach_wire.set("cmd", "attach");
  attach_wire.set("id", id);
  const clktune::serve::SubmitOutcome stream =
      clktune::serve::submit_raw(opt.host, submit_port(opt), attach_wire,
                                 progress, submit_timeouts(opt));

  if (!stream.ok()) {
    const Json* message = stream.final_event.find("message");
    std::fprintf(stderr, "clktune: %s\n",
                 message != nullptr ? message->as_string().c_str()
                                    : "connection closed mid-stream");
    return 2;
  }
  if (kind == "campaign") {
    clktune::scenario::CampaignSummary summary;
    summary.name = name;
    // Null slots appear only for jobs submitted with an explicit index
    // selection (the fleet's work units); the kept cells stay in
    // expansion order, exactly like a shard summary.
    for (const Json& artifact : stream.results)
      if (artifact.is_object())
        summary.results.push_back(
            clktune::scenario::ScenarioResult::from_json(artifact));
    summary.recount();
    emit(opt, summary.to_json(false));
  } else {
    emit(opt, stream.results.at(0));
  }
  return stream.targets_missed() == 0 ? 0 : 3;
}

/// `clktune job <verb>` — the client side of the async job service.
int cmd_job(const Options& opt) {
  const bool bare = !opt.inputs.empty() &&
                    (opt.inputs[0] == "list" || opt.inputs[0] == "prune");
  if ((bare && opt.inputs.size() != 1) || (!bare && opt.inputs.size() != 2) ||
      (!bare && opt.inputs[0] != "status" && opt.inputs[0] != "attach" &&
       opt.inputs[0] != "cancel")) {
    std::fprintf(stderr,
                 "clktune: job expects status|attach|cancel <id>, list or"
                 " prune\n");
    print_usage(stderr);
    return 1;
  }
  const std::string& verb = opt.inputs[0];

  if (verb == "prune") {
    Json wire = Json::object();
    wire.set("cmd", "prune");
    wire.set("keep", static_cast<std::uint64_t>(opt.keep));
    const clktune::serve::SubmitOutcome outcome = clktune::serve::submit_raw(
        opt.host, submit_port(opt), wire, {}, submit_timeouts(opt));
    const Json* event = outcome.final_event.find("event");
    if (event == nullptr || event->as_string() != "pruned")
      return emit_job_frame(opt, outcome);  // prints the error diagnostic
    emit(opt, outcome.final_event);
    return 0;
  }

  if (verb == "list") {
    Json wire = Json::object();
    wire.set("cmd", "jobs");
    const clktune::serve::SubmitOutcome outcome = clktune::serve::submit_raw(
        opt.host, submit_port(opt), wire, {}, submit_timeouts(opt));
    const Json* event = outcome.final_event.find("event");
    if (event == nullptr || event->as_string() != "jobs")
      return emit_job_frame(opt, outcome);  // prints the error diagnostic
    emit(opt, outcome.final_event.at("jobs"));
    return 0;
  }

  const std::string& id = opt.inputs[1];
  if (verb == "attach") return cmd_job_attach(opt, id);

  Json wire = Json::object();
  wire.set("cmd", verb);  // "status" or "cancel"
  wire.set("id", id);
  return emit_job_frame(
      opt, clktune::serve::submit_raw(opt.host, submit_port(opt), wire, {},
                                      submit_timeouts(opt)));
}

int cmd_cache(const Options& opt) {
  if (opt.inputs.size() != 1 ||
      (opt.inputs[0] != "stats" && opt.inputs[0] != "gc" &&
       opt.inputs[0] != "verify")) {
    std::fprintf(stderr, "clktune: cache expects stats, gc or verify\n");
    print_usage(stderr);
    return 1;
  }
  if (opt.cache_dir.empty()) {
    std::fprintf(stderr, "clktune: cache needs --cache-dir\n");
    return 1;
  }
  const std::string& verb = opt.inputs[0];

  if (verb == "stats") {
    const clktune::cache::DiskCacheStats stats =
        clktune::cache::disk_cache_stats(opt.cache_dir);
    Json artifact = Json::object();
    artifact.set("entries", stats.entries);
    artifact.set("bytes", stats.bytes);
    if (opt.json) {
      // Process-local registry counters (this invocation's cache traffic);
      // the disk numbers above describe the directory across processes.
      // Constructing a ResultCache registers the family, so every counter
      // is listed (at zero here — the stats scan bypasses the cache).
      const clktune::cache::ResultCache registrar;
      Json counters = Json::object();
      const Json snapshot = clktune::obs::Registry::global().snapshot_json();
      for (const auto& [id, value] : snapshot.at("counters").as_object())
        if (id.rfind("clktune_cache_", 0) == 0)
          counters.set(id, value);
      artifact.set("counters", std::move(counters));
    }
    emit(opt, artifact);
    return 0;
  }

  if (verb == "gc") {
    if (!opt.max_bytes_set) {
      std::fprintf(stderr, "clktune: cache gc needs --max-bytes\n");
      return 1;
    }
    const clktune::cache::GcReport report =
        clktune::cache::gc_cache_dir(opt.cache_dir, opt.max_bytes);
    Json artifact = Json::object();
    artifact.set("scanned", report.scanned);
    artifact.set("removed", report.removed);
    artifact.set("removed_bytes", report.removed_bytes);
    artifact.set("kept", report.kept);
    artifact.set("kept_bytes", report.kept_bytes);
    artifact.set("temp_files_removed", report.temp_files_removed);
    emit(opt, artifact);
    if (!opt.quiet)
      std::fprintf(stderr,
                   "clktune: evicted %llu of %llu entries (%llu bytes"
                   " freed)\n",
                   static_cast<unsigned long long>(report.removed),
                   static_cast<unsigned long long>(report.scanned),
                   static_cast<unsigned long long>(report.removed_bytes));
    return 0;
  }

  const clktune::cache::VerifyReport report =
      clktune::cache::verify_cache_dir(opt.cache_dir);
  Json issues = Json::array();
  for (const clktune::cache::VerifyIssue& issue : report.issues) {
    Json entry = Json::object();
    entry.set("file", issue.file);
    entry.set("what", issue.what);
    issues.push_back(std::move(entry));
  }
  Json artifact = Json::object();
  artifact.set("checked", report.checked);
  artifact.set("issues", std::move(issues));
  emit(opt, artifact);
  if (!opt.quiet)
    std::fprintf(stderr, "clktune: %llu entries checked, %zu issue(s)\n",
                 static_cast<unsigned long long>(report.checked),
                 report.issues.size());
  return report.ok() ? 0 : 3;
}

/// Rebuilds a TableRow from a serialised scenario-result object.
clktune::core::TableRow row_from_json(const Json& r) {
  clktune::core::TableRow row;
  row.circuit = r.at("name").as_string();
  row.setting = r.at("setting").as_string();
  row.clock_ps = r.at("clock_period_ps").as_double();
  const Json& design = r.at("design");
  row.ns = static_cast<int>(design.at("num_flipflops").as_int());
  row.ng = static_cast<int>(design.at("num_gates").as_int());
  const Json& plan = r.at("insertion").at("plan");
  row.nb = static_cast<int>(plan.at("physical_buffers").as_int());
  row.ab = plan.at("average_range").as_double();
  const Json& yield = r.at("yield");
  row.yield = 100.0 * yield.at("tuned").at("yield").as_double();
  row.yield_original = 100.0 * yield.at("original").at("yield").as_double();
  if (const Json* seconds = r.find("seconds"))
    row.runtime_s = seconds->as_double();
  return row;
}

int cmd_report_diff(const Options& opt) {
  const Json a = clktune::util::read_json_file(opt.inputs[0]);
  const Json b = clktune::util::read_json_file(opt.inputs[1]);
  const clktune::scenario::SummaryDiff diff =
      clktune::scenario::diff_summaries(a, b, opt.tolerance);

  std::printf("%-40s %10s %10s %9s\n", "cell", "yield_a", "yield_b", "delta");
  for (const clktune::scenario::CellDiff& cell : diff.cells)
    std::printf("%-40s %9.2f%% %9.2f%% %+8.2f%%%s%s\n", cell.name.c_str(),
                100.0 * cell.yield_a, 100.0 * cell.yield_b,
                100.0 * cell.delta(),
                cell.kind == "yield" ? "" : ("  [" + cell.kind + "]").c_str(),
                cell.regression ? "  REGRESSION" : "");
  for (const std::string& name : diff.only_in_a)
    std::printf("%-40s only in %s\n", name.c_str(), opt.inputs[0].c_str());
  for (const std::string& name : diff.only_in_b)
    std::printf("%-40s only in %s\n", name.c_str(), opt.inputs[1].c_str());
  for (const std::string& name : diff.incomparable)
    std::printf("%-40s incomparable (kind or ladder changed)\n",
                name.c_str());
  std::printf("%zu cells compared, %llu regression(s) beyond %.3f\n",
              diff.cells.size(),
              static_cast<unsigned long long>(diff.regressions),
              opt.tolerance);
  if (diff.structural_mismatch()) {
    std::fprintf(stderr,
                 "clktune: cell sets differ — not the same sweep\n");
    return 2;
  }
  return diff.regressions == 0 ? 0 : 3;
}

int cmd_report_merge(const Options& opt) {
  if (opt.inputs.size() < 2) {
    std::fprintf(stderr,
                 "clktune: report --merge expects at least 2 shard"
                 " summaries\n");
    print_usage(stderr);
    return 1;
  }
  std::vector<clktune::scenario::CampaignSummary> shards;
  shards.reserve(opt.inputs.size());
  for (const std::string& path : opt.inputs)
    shards.push_back(clktune::scenario::CampaignSummary::from_json(
        clktune::util::read_json_file(path)));
  const clktune::scenario::CampaignSummary merged =
      clktune::exec::merge_shard_summaries(shards);
  emit(opt, merged.to_json(opt.timings));
  if (!opt.quiet)
    std::fprintf(stderr,
                 "clktune: merged %zu shards into %llu cells, %llu missed"
                 " target\n",
                 opt.inputs.size(),
                 static_cast<unsigned long long>(merged.scenarios_run),
                 static_cast<unsigned long long>(merged.targets_missed));
  // Same yield gate as the unsharded sweep this summary stands in for.
  return merged.targets_missed == 0 ? 0 : 3;
}

/// Renders a kind-tagged (criticality / binning) result artifact.
void print_analysis_cell(const Json& r) {
  const std::string kind = r.at("kind").as_string();
  if (kind == "criticality") {
    const Json& crit = r.at("criticality");
    std::printf("criticality %s: T=%.1f ps, %llu samples, %llu untunable\n",
                r.at("name").as_string().c_str(),
                crit.at("clock_period_ps").as_double(),
                static_cast<unsigned long long>(
                    crit.at("samples").as_uint()),
                static_cast<unsigned long long>(
                    crit.at("untunable").as_uint()));
    std::printf("%8s %6s %6s %10s %10s\n", "arc", "src", "dst", "before",
                "after");
    for (const Json& arc : crit.at("arcs").as_array())
      std::printf("%8llu %6lld %6lld %9.2f%% %9.2f%%\n",
                  static_cast<unsigned long long>(arc.at("arc").as_uint()),
                  static_cast<long long>(arc.at("src_ff").as_int()),
                  static_cast<long long>(arc.at("dst_ff").as_int()),
                  100.0 * arc.at("before").as_double(),
                  100.0 * arc.at("after").as_double());
    return;
  }
  const Json& binning = r.at("binning");
  std::printf("binning %s: %llu samples, sell T=%.1f ps,"
              " unsellable %.2f%%\n",
              r.at("name").as_string().c_str(),
              static_cast<unsigned long long>(
                  binning.at("samples").as_uint()),
              binning.at("expected_sell_period_ps").as_double(),
              100.0 * binning.at("unsellable_fraction").as_double());
  std::printf("%12s %10s %10s %10s\n", "period_ps", "original", "tuned",
              "sell");
  for (const Json& bin : binning.at("bins").as_array())
    std::printf("%12.1f %9.2f%% %9.2f%% %9.2f%%\n",
                bin.at("period_ps").as_double(),
                100.0 * bin.at("original").at("yield").as_double(),
                100.0 * bin.at("tuned").at("yield").as_double(),
                100.0 * bin.at("sell_fraction").as_double());
}

int cmd_report(const Options& opt) {
  if (opt.diff) {
    if (!expect_inputs(opt, 2)) return 1;
    return cmd_report_diff(opt);
  }
  if (opt.merge) return cmd_report_merge(opt);
  if (!expect_inputs(opt, 1)) return 1;
  const Json doc = clktune::util::read_json_file(opt.inputs[0]);
  // Yield cells render as the paper's table; kind-tagged cells get their
  // own per-kind rendering below it.
  std::vector<clktune::core::TableRow> rows;
  std::vector<const Json*> analysis_cells;
  const auto classify = [&](const Json& r) {
    if (r.contains("kind"))
      analysis_cells.push_back(&r);
    else
      rows.push_back(row_from_json(r));
  };
  if (doc.contains("results")) {
    // Campaign summary.
    for (const Json& r : doc.at("results").as_array()) classify(r);
    std::printf("campaign %s: %llu scenarios, %llu missed target\n",
                doc.at("name").as_string().c_str(),
                static_cast<unsigned long long>(
                    doc.at("scenarios_run").as_uint()),
                static_cast<unsigned long long>(
                    doc.at("targets_missed").as_uint()));
  } else {
    classify(doc);
  }
  if (!rows.empty()) {
    std::ostringstream table;
    clktune::core::print_table(table, rows);
    std::fputs(table.str().c_str(), stdout);
  }
  for (const Json* r : analysis_cells) print_analysis_cell(*r);
  return 0;
}

/// `clktune metrics [--prom]`: one metrics round trip against a running
/// daemon.  JSON prints the whole frame (version + uptime + registry
/// snapshot); --prom prints the daemon's Prometheus text exposition raw —
/// suitable for piping into promtool or a scrape-file exporter.
int cmd_metrics(const Options& opt) {
  Json wire = Json::object();
  wire.set("cmd", "metrics");
  if (opt.prom) wire.set("format", "prometheus");
  const clktune::serve::SubmitOutcome outcome = clktune::serve::submit_raw(
      opt.host, submit_port(opt), wire, {}, submit_timeouts(opt));
  const Json* event = outcome.final_event.find("event");
  if (event == nullptr || event->as_string() != "metrics") {
    const Json* message = outcome.final_event.find("message");
    std::fprintf(stderr, "clktune: metrics failed: %s\n",
                 message != nullptr ? message->as_string().c_str()
                                    : "connection closed");
    return 2;
  }
  if (opt.prom) {
    const std::string& text = outcome.final_event.at("text").as_string();
    if (opt.output.empty()) {
      std::fwrite(text.data(), 1, text.size(), stdout);
    } else {
      std::ofstream out(opt.output, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "clktune: cannot write %s\n",
                     opt.output.c_str());
        return 2;
      }
      out << text;
    }
    return 0;
  }
  emit(opt, outcome.final_event);
  return 0;
}

/// `clktune fleet status`: probe every pool member and render one
/// aggregated health table (or, with --json, the full per-daemon frames).
/// Exit 0 with every member alive, 3 with some dead, 2 with none alive.
int cmd_fleet(const Options& opt) {
  if (opt.inputs.size() != 1 || opt.inputs[0] != "status") {
    std::fprintf(stderr, "clktune: fleet expects the status verb\n");
    print_usage(stderr);
    return 1;
  }
  if (opt.daemons.empty() && opt.fleet_file.empty()) {
    std::fprintf(stderr,
                 "clktune: fleet status needs --daemons and/or --fleet\n");
    print_usage(stderr);
    return 1;
  }
  clktune::fleet::FleetSpec pool;
  if (!opt.fleet_file.empty())
    pool = clktune::fleet::FleetSpec::from_file(opt.fleet_file);
  if (!opt.daemons.empty())
    pool.merge(clktune::fleet::FleetSpec::parse_daemon_list(opt.daemons));

  // Probes answer instantly by design, so they always get a bounded read
  // deadline — a wedged daemon must render as dead, not hang the table.
  clktune::serve::SubmitOptions timeouts = submit_timeouts(opt);
  if (timeouts.io_timeout_ms <= 0)
    timeouts.io_timeout_ms =
        timeouts.connect_timeout_ms > 0 ? timeouts.connect_timeout_ms : 5000;
  const clktune::fleet::PoolStatus status =
      clktune::fleet::probe_pool(pool, timeouts);

  if (opt.json) {
    emit(opt, status.to_json());
  } else {
    std::ostringstream table;
    clktune::fleet::render_pool_table(table, status);
    std::fputs(table.str().c_str(), stdout);
  }
  if (status.alive == 0) return 2;
  return status.dead == 0 ? 0 : 3;
}

/// `clktune bench load`: K-client load generation against a daemon or
/// fleet (src/load/harness.h).  Writes the gate-ready BENCH_load.json in
/// the working directory — the same artifact convention as the standalone
/// bench binaries — and prints a short human summary.  Exit 0 when every
/// gate held, 2 when no target answered the pre-flight probe or an input
/// file is bad, 3 when the error-rate or cross-check gate failed.
int cmd_bench(const Options& opt) {
  if (opt.inputs.size() != 1 || opt.inputs[0] != "load") {
    std::fprintf(stderr, "clktune: bench expects the load verb\n");
    print_usage(stderr);
    return 1;
  }
  if (opt.connect.empty() && opt.daemons.empty() && opt.fleet_file.empty()) {
    std::fprintf(stderr,
                 "clktune: bench load needs --connect, --daemons and/or"
                 " --fleet\n");
    print_usage(stderr);
    return 1;
  }

  clktune::load::LoadOptions load;
  if (!opt.fleet_file.empty())
    load.targets = clktune::fleet::FleetSpec::from_file(opt.fleet_file);
  if (!opt.connect.empty())
    load.targets.merge(
        clktune::fleet::FleetSpec::parse_daemon_list(opt.connect));
  if (!opt.daemons.empty())
    load.targets.merge(
        clktune::fleet::FleetSpec::parse_daemon_list(opt.daemons));
  if (!opt.mix_spec.empty())
    load.mix = clktune::load::WorkloadMix::from_spec(opt.mix_spec);
  if (!opt.base_file.empty())
    load.base_doc = clktune::util::read_json_file(opt.base_file);
  load.seed = opt.seed;
  load.clients = opt.clients;
  load.requests = opt.requests;
  load.duration_seconds = opt.duration_seconds;
  load.rate = opt.rate;
  load.connect_timeout_ms = opt.connect_timeout_ms;
  if (opt.io_timeout_ms > 0) load.io_timeout_ms = opt.io_timeout_ms;
  load.max_error_rate = opt.max_error_rate;
  load.cross_check = !opt.no_xcheck;
  if (opt.xcheck_overhead > 0.0)
    load.xcheck.overhead_factor = opt.xcheck_overhead;
  load.quiet = opt.quiet;

  const clktune::load::LoadResult result = clktune::load::run_load(load);

  clktune::util::write_json_file("BENCH_load.json", result.bench_artifact, 2);
  if (!opt.output.empty()) emit(opt, result.bench_artifact);
  if (!opt.quiet) {
    std::fprintf(stderr,
                 "clktune: load: %llu ops in %.2fs (%.1f rps), ok %llu,"
                 " busy %llu (%.2f%%), errors %llu (%.2f%%)\n",
                 static_cast<unsigned long long>(result.ops),
                 result.wall_seconds, result.throughput_rps(),
                 static_cast<unsigned long long>(result.ok),
                 static_cast<unsigned long long>(result.busy),
                 100.0 * result.busy_rate(),
                 static_cast<unsigned long long>(result.errors),
                 100.0 * result.error_rate());
    for (const clktune::load::VerbObservation& verb : result.verbs)
      std::fprintf(stderr,
                   "clktune:   %-7s n=%-6llu p50 %.4fs  p90 %.4fs"
                   "  p99 %.4fs\n",
                   verb.verb.c_str(),
                   static_cast<unsigned long long>(verb.count), verb.p50,
                   verb.p90, verb.p99);
    std::fprintf(stderr, "clktune: wrote BENCH_load.json\n");
  }
  for (const std::string& failure : result.gate_failures)
    std::fprintf(stderr, "clktune: load gate: %s\n", failure.c_str());
  return result.gate_exit_code();
}

/// `clktune drain`: ask a running server to stop admission, finish its
/// in-flight work and exit — the remote form of SIGTERM.
int cmd_drain(const Options& opt) {
  Json wire = Json::object();
  wire.set("cmd", "drain");
  const clktune::serve::SubmitOutcome outcome = clktune::serve::submit_raw(
      opt.host, submit_port(opt), wire, {}, submit_timeouts(opt));
  const Json* event = outcome.final_event.find("event");
  if (event == nullptr || event->as_string() != "draining")
    return emit_job_frame(opt, outcome);  // prints the error diagnostic
  emit(opt, outcome.final_event);
  return 0;
}

int cmd_serve(const Options& opt) {
  clktune::serve::ServeOptions serve_options;
  serve_options.port =
      opt.port < 0 ? kDefaultPort : static_cast<std::uint16_t>(opt.port);
  serve_options.threads = opt.threads;
  serve_options.cache_dir = opt.cache_dir;
  serve_options.quiet = opt.quiet;
  serve_options.job_stall_timeout_ms = opt.stall_timeout_ms;
  serve_options.drain_grace_ms = opt.drain_grace_ms;
  clktune::serve::ScenarioServer server(std::move(serve_options));

  // Graceful shutdown: block SIGTERM/SIGINT before any thread exists so
  // every thread the server spawns inherits the mask, then sink them in a
  // dedicated watcher.  The first signal drains (stop admission, finish
  // in-flight frames, checkpoint running jobs, exit 0 — a restarted
  // daemon recovers the rest); a second one exits immediately.
  sigset_t drain_signals;
  sigemptyset(&drain_signals);
  sigaddset(&drain_signals, SIGTERM);
  sigaddset(&drain_signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &drain_signals, nullptr);

  server.start();
  // Machine-readable so scripts can scrape the (possibly ephemeral) port.
  std::printf("clktune: serving on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  std::atomic<bool> watcher_done{false};
  std::thread watcher([&] {
    int seen = 0;
    while (!watcher_done.load()) {
      timespec wait{};
      wait.tv_nsec = 200 * 1000 * 1000;  // poll the done flag at 5 Hz
      const int sig = sigtimedwait(&drain_signals, nullptr, &wait);
      if (sig != SIGTERM && sig != SIGINT) continue;  // timeout or EINTR
      if (++seen == 1) {
        std::fprintf(stderr,
                     "clktune: caught signal %d, draining (again to force"
                     " exit)\n",
                     sig);
        server.drain();
      } else {
        std::fprintf(stderr, "clktune: second signal, exiting now\n");
        _exit(130);
      }
    }
  });

  server.serve_forever();
  watcher_done.store(true);
  watcher.join();
  if (!opt.quiet) std::fprintf(stderr, "clktune: server stopped\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A daemon writing to a client that already hung up must see EPIPE from
  // the send, not die; every other command tolerates it too.
  std::signal(SIGPIPE, SIG_IGN);
  Options opt;
  const int usage = parse_options(argc, argv, opt);
  if (usage != 0) return usage;
  try {
    // Fault injection arms before any command runs so every site in the
    // process — including cache construction — is covered.  A malformed
    // plan is a structural input error: exit 2 like any bad JSON file.
    if (!opt.fault_plan.empty())
      clktune::fault::arm_from_spec(opt.fault_plan);
    else
      clktune::fault::arm_from_environment();
    if (opt.command == "run")
      return expect_inputs(opt, 1) ? cmd_run(opt) : 1;
    if (opt.command == "sweep")
      return expect_inputs(opt, 1) ? cmd_sweep(opt) : 1;
    if (opt.command == "report") return cmd_report(opt);
    if (opt.command == "serve")
      return expect_inputs(opt, 0) ? cmd_serve(opt) : 1;
    if (opt.command == "submit")
      return expect_inputs(opt, 1) ? cmd_submit(opt) : 1;
    if (opt.command == "fanout")
      return expect_inputs(opt, 1) ? cmd_fanout(opt) : 1;
    if (opt.command == "job") return cmd_job(opt);
    if (opt.command == "drain")
      return expect_inputs(opt, 0) ? cmd_drain(opt) : 1;
    if (opt.command == "cache") return cmd_cache(opt);
    if (opt.command == "metrics")
      return expect_inputs(opt, 0) ? cmd_metrics(opt) : 1;
    if (opt.command == "fleet") return cmd_fleet(opt);
    if (opt.command == "bench") return cmd_bench(opt);
    std::fprintf(stderr, "clktune: unknown command '%s'\n",
                 opt.command.c_str());
    print_usage(stderr);
    return 1;
  } catch (const clktune::util::JsonError& e) {
    std::fprintf(stderr, "clktune: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "clktune: %s\n", e.what());
    return 2;
  }
}
