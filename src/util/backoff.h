// Jittered exponential backoff with a per-site cap.
//
// delay(attempt) = min(cap_ms, base_ms << attempt) scaled by a jitter
// factor drawn uniformly from [0.5, 1.0] out of a seeded xorshift stream,
// so concurrent retriers de-synchronise (no thundering herd against a
// recovering daemon) while a fixed seed keeps test schedules reproducible.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

namespace clktune::util {

class Backoff {
 public:
  Backoff(int base_ms, int cap_ms, std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : base_ms_(base_ms < 1 ? 1 : base_ms),
        cap_ms_(cap_ms < base_ms_ ? base_ms_ : cap_ms),
        state_(seed | 1) {}

  /// Jittered delay for the given 0-based attempt, in milliseconds.
  int delay_ms(std::size_t attempt) {
    // Saturating base << attempt, clamped to the cap before jitter so the
    // cap bounds the worst case, not the average.
    std::int64_t raw = base_ms_;
    for (std::size_t i = 0; i < attempt && raw < cap_ms_; ++i) raw <<= 1;
    raw = std::min<std::int64_t>(raw, cap_ms_);
    // xorshift64*: cheap, never zero (state seeded odd).
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const std::uint64_t bits = state_ * 0x2545f4914f6cdd1dULL;
    const double jitter = 0.5 + 0.5 * (static_cast<double>(bits >> 11) /
                                       9007199254740992.0);  // [0.5, 1.0)
    const int ms = static_cast<int>(static_cast<double>(raw) * jitter);
    return ms < 1 ? 1 : ms;
  }

  /// Sleeps for delay_ms(attempt).
  void pause(std::size_t attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms(attempt)));
  }

  int base_ms() const { return base_ms_; }
  int cap_ms() const { return cap_ms_; }

 private:
  int base_ms_;
  int cap_ms_;
  std::uint64_t state_;
};

}  // namespace clktune::util
