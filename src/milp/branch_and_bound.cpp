#include "milp/branch_and_bound.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace clktune::milp {
namespace {

class Solver {
 public:
  Solver(lp::Model& model, const std::vector<int>& integer_vars,
         const Options& options)
      : model_(model), int_vars_(integer_vars), opt_(options) {}

  Result run(const std::optional<Incumbent>& warm_start) {
    if (warm_start.has_value()) {
      CLKTUNE_EXPECTS(warm_start->x.size() ==
                      static_cast<std::size_t>(model_.num_variables()));
      best_ = *warm_start;
      have_best_ = true;
    }
    root_infeasible_ = false;
    root_unbounded_ = false;
    explore();
    Result result;
    result.nodes_explored = nodes_;
    if (root_unbounded_) {
      result.status = Status::unbounded;
      return result;
    }
    if (have_best_) {
      result.objective = best_.objective;
      result.x = best_.x;
      result.status = search_complete_ ? Status::optimal : Status::feasible;
    } else if (search_complete_) {
      result.status = Status::infeasible;
    } else {
      result.status = Status::node_limit;
    }
    return result;
  }

 private:
  // LP bound below which a node can still beat the incumbent.
  bool bound_can_improve(double lp_objective) const {
    if (!have_best_) return true;
    double bound = lp_objective;
    if (opt_.objective_is_integral)
      bound = std::ceil(lp_objective - 1e-6);
    return bound < best_.objective - opt_.absolute_gap;
  }

  void explore() {
    search_complete_ = true;
    recurse(0);
  }

  void recurse(int depth) {
    if (nodes_ >= opt_.max_nodes) {
      search_complete_ = false;
      return;
    }
    ++nodes_;
    const lp::Solution relax = lp::solve(model_, opt_.lp_options);
    if (relax.status == lp::Status::infeasible) {
      if (depth == 0) root_infeasible_ = true;
      return;
    }
    if (relax.status == lp::Status::unbounded) {
      if (depth == 0) root_unbounded_ = true;
      // An unbounded relaxation deeper in the tree cannot prove integer
      // unboundedness here; treat as not explored.
      search_complete_ = depth == 0 ? search_complete_ : false;
      return;
    }
    if (relax.status == lp::Status::iteration_limit) {
      search_complete_ = false;
      return;
    }
    if (!bound_can_improve(relax.objective)) return;

    // Branch on the most fractional integer variable (distance to the
    // nearest integer closest to 1/2).
    int branch_var = -1;
    double branch_val = 0.0;
    double best_dist = opt_.integrality_tolerance;
    for (int v : int_vars_) {
      const double xv = relax.x[static_cast<std::size_t>(v)];
      const double frac = xv - std::floor(xv);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist > best_dist) {
        best_dist = dist;
        branch_var = v;
        branch_val = xv;
      }
    }
    if (branch_var < 0) {
      // Integer feasible: round integer vars exactly and accept.
      Incumbent cand;
      cand.x = relax.x;
      for (int v : int_vars_) {
        const auto vs = static_cast<std::size_t>(v);
        cand.x[vs] = std::round(cand.x[vs]);
      }
      cand.objective = model_.objective_value(cand.x);
      if (!have_best_ || cand.objective < best_.objective - opt_.absolute_gap) {
        best_ = std::move(cand);
        have_best_ = true;
      }
      return;
    }

    const double old_lo = model_.lower(branch_var);
    const double old_hi = model_.upper(branch_var);
    const double floor_val = std::floor(branch_val);
    const double ceil_val = floor_val + 1.0;

    // Plunge toward the nearer integer first.
    const bool down_first = branch_val - floor_val <= 0.5;
    for (int pass = 0; pass < 2; ++pass) {
      const bool down = down_first == (pass == 0);
      if (down) {
        if (floor_val < old_lo - 1e-9) continue;
        model_.set_bounds(branch_var, old_lo, std::min(old_hi, floor_val));
      } else {
        if (ceil_val > old_hi + 1e-9) continue;
        model_.set_bounds(branch_var, std::max(old_lo, ceil_val), old_hi);
      }
      recurse(depth + 1);
      model_.set_bounds(branch_var, old_lo, old_hi);
    }
  }

  lp::Model& model_;
  const std::vector<int>& int_vars_;
  Options opt_;
  Incumbent best_;
  bool have_best_ = false;
  bool search_complete_ = true;
  bool root_infeasible_ = false;
  bool root_unbounded_ = false;
  long nodes_ = 0;
};

}  // namespace

Result solve(lp::Model& model, const std::vector<int>& integer_vars,
             const Options& options,
             const std::optional<Incumbent>& warm_start) {
  Solver solver(model, integer_vars, options);
  return solver.run(warm_start);
}

}  // namespace clktune::milp
