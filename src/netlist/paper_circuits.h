// The eight benchmark circuits of Table I, as synthetic analogues with the
// exact flip-flop (ns) and gate (ng) counts the paper reports.  See
// generator.h for why analogues are used instead of the original netlists.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netlist/generator.h"

namespace clktune::netlist {

/// Specs for s9234, s13207, s15850, s38584 (ISCAS89) and mem_ctrl,
/// usb_funct, ac97_ctrl, pci_bridge32 (TAU 2013), in Table I order.
std::vector<SyntheticSpec> paper_circuit_specs();

/// Spec by name; std::nullopt when unknown.
std::optional<SyntheticSpec> paper_circuit_spec(const std::string& name);

}  // namespace clktune::netlist
