// Deterministic mixed-workload schedules for the load harness.
//
// A WorkloadMix assigns weights to the operation kinds a production
// daemon actually sees — warm-cache repeat runs, uncached fresh
// documents, campaign sweeps, status probes and the detached
// submit -> status -> attach job flow — and make_schedule() turns the mix
// into a concrete operation sequence with a seeded generator.  The
// schedule is a pure function of (mix, seed, count, target weights):
// the same seed always produces the same request sequence, so a load run
// is replayable and two machines hammering the same fleet from the same
// seed issue identical traffic.  docs/load.md describes the mix schema.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace clktune::load {

/// Operation kinds in the mix.  `run_warm` resubmits the base document
/// (a daemon cache hit after the first client gets there); `run_fresh`
/// submits a never-seen variant (a guaranteed miss); `job_flow` is the
/// full detached lifecycle: submit --detach, status polls, attach.
enum class OpKind { run_warm, run_fresh, sweep, status_probe, job_flow };

const char* to_string(OpKind kind) noexcept;

/// Relative weights; any may be zero, the total must be positive.
struct WorkloadMix {
  double run_warm = 4.0;
  double run_fresh = 2.0;
  double sweep = 1.0;
  double status = 2.0;
  double job_flow = 1.0;

  double total() const {
    return run_warm + run_fresh + sweep + status + job_flow;
  }

  /// Parses {"run_warm":4,"run_fresh":2,"sweep":1,"status":2,"job_flow":1}
  /// — unspecified kinds get weight ZERO (a spec lists exactly the
  /// workload it wants), unknown members and negative weights rejected,
  /// zero total rejected.  Throws util::JsonError / std::invalid_argument.
  static WorkloadMix from_json(const util::Json& doc);
  /// Inline JSON when `spec` starts with '{', else a file path.
  static WorkloadMix from_spec(const std::string& spec);
  util::Json to_json() const;
};

/// One scheduled operation.  `fresh_ordinal` numbers the fresh-document
/// operations (run_fresh and job_flow) within the schedule so each gets a
/// distinct, deterministic document; `target` indexes the resolved fleet
/// member the operation is sent to.
struct Op {
  OpKind kind = OpKind::status_probe;
  std::uint64_t fresh_ordinal = 0;
  std::size_t target = 0;
};

/// Generates `count` operations.  Kind draws follow the mix weights and
/// target draws the per-member `target_weights` (a weight-2 daemon gets
/// twice the traffic), both from one seeded splitmix64 stream — no global
/// or platform-dependent randomness, so the sequence is bit-stable across
/// machines.  `target_weights` must be non-empty with a positive total.
std::vector<Op> make_schedule(const WorkloadMix& mix, std::uint64_t seed,
                              std::size_t count,
                              const std::vector<std::size_t>& target_weights);

/// Fresh-document operations (run_fresh + job_flow) in a schedule; the
/// harness uses it to keep document indices unique when a duration-mode
/// run wraps around the schedule.
std::uint64_t fresh_ops(const std::vector<Op>& schedule);

/// The built-in base scenario: small enough that one request costs
/// milliseconds (load tests measure the service, not the solver), large
/// enough to exercise the full insertion + evaluation pipeline.
util::Json default_base_scenario();

/// A variant of `base` no daemon has seen: bumps the synthetic design
/// seed by `index + 1` and suffixes the names, which changes the
/// content-address key, so the daemon must compute it.
util::Json fresh_scenario(const util::Json& base, std::uint64_t index);

/// Wraps `base` in a two-cell campaign (clock.sigma_offset 0 and 1) for
/// the sweep operations.
util::Json sweep_campaign(const util::Json& base);

}  // namespace clktune::load
