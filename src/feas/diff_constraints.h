// Difference-constraint feasibility via SPFA (queue-based Bellman-Ford)
// negative-cycle detection.
//
// A system of constraints  x_u - x_v <= w  is feasible iff its constraint
// graph (edge v -> u with weight w) has no negative cycle; shortest-path
// potentials then give a concrete solution.  With integer weights the
// constraint matrix is totally unimodular, so integer-feasible solutions
// exist whenever real ones do — which is why flooring the timing constants
// to the buffer-step grid preserves exactness for the discrete tunings.
//
// The object is a reusable workspace: reset() rewinds it in O(1) amortised
// time via epoch stamping (per-node adjacency heads are lazily invalidated,
// the edge pool keeps its capacity), and solve_inplace() reuses internal
// SPFA scratch (distance/queue arrays, a ring-buffer queue), so the
// steady-state Monte-Carlo inner loops that build one small system per
// sample perform zero heap allocations.  Results are independent of
// workspace history: a system solved from a dirty workspace yields exactly
// the potentials a fresh object would (shortest-path distances are unique),
// including after a negative-cycle bailout.
//
// Used for (a) yield evaluation of an inserted-buffer plan (does chip k have
// a feasible configuration?), (b) greedy warm starts for the per-sample
// ILPs, and (c) post-silicon configuration extraction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "feas/spfa.h"

namespace clktune::feas {

class DiffConstraints {
 public:
  DiffConstraints() = default;
  explicit DiffConstraints(int num_nodes) { reset(num_nodes); }

  /// Rewinds to an empty system over `num_nodes` nodes.  Keeps all buffer
  /// capacity; previously added edges become unreachable via epoch
  /// stamping, so the cost is O(1) plus any one-time growth.
  void reset(int num_nodes);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds constraint x_u - x_v <= w.
  void add(int u, int v, std::int64_t w);

  /// True iff the system admits a solution.
  bool feasible() { return solve_inplace() != nullptr; }

  /// Shortest-path potentials (a concrete solution) held in internal
  /// scratch, or nullptr when infeasible.  All-zero start vector, so an
  /// all-zero solution is returned when every constraint already holds
  /// at 0.  The pointee is valid until the next solve/reset/add.  Zero
  /// allocations in steady state.
  const std::vector<std::int64_t>* solve_inplace();

  /// Copying convenience wrapper around solve_inplace().
  std::optional<std::vector<std::int64_t>> solve() {
    const std::vector<std::int64_t>* dist = solve_inplace();
    if (dist == nullptr) return std::nullopt;
    return *dist;
  }

 private:
  struct Edge {
    int to = 0;
    std::int64_t weight = 0;
    int next = -1;
  };

  int head(int v) const {
    return head_epoch_[static_cast<std::size_t>(v)] == epoch_
               ? head_[static_cast<std::size_t>(v)]
               : -1;
  }

  int num_nodes_ = 0;
  std::uint64_t epoch_ = 0;
  // Adjacency: edge (v -> u, w) per constraint x_u - x_v <= w.  head_[v] is
  // meaningful only when head_epoch_[v] == epoch_.
  std::vector<int> head_;
  std::vector<std::uint64_t> head_epoch_;
  std::vector<Edge> edges_;  ///< pooled; cleared (capacity kept) on reset
  SpfaScratch scratch_;      ///< reinitialised per solve
};

}  // namespace clktune::feas
