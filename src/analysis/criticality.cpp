#include "analysis/criticality.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "core/baselines.h"
#include "feas/yield_eval.h"
#include "mc/arc_constants.h"
#include "mc/sampler.h"
#include "obs/metrics.h"
#include "util/assert.h"
#include "util/thread_pool.h"

namespace clktune::analysis {

using util::Json;

namespace {

struct CriticalityMetrics {
  obs::Counter& samples;

  static CriticalityMetrics& get() {
    static CriticalityMetrics m{
        obs::Registry::global().counter(
            "clktune_criticality_samples_total",
            "Monte-Carlo samples evaluated for criticality"),
    };
    return m;
  }
};

/// Per-worker integer tallies; summed in worker order so the totals are
/// bit-identical regardless of thread count.
struct Partial {
  std::vector<std::uint64_t> arc_before;
  std::vector<std::uint64_t> arc_after;
  std::vector<std::uint64_t> ff_before;
  std::vector<std::uint64_t> ff_after;
  std::uint64_t untunable = 0;

  Partial(std::size_t num_arcs, std::size_t num_ffs)
      : arc_before(num_arcs, 0),
        arc_after(num_arcs, 0),
        ff_before(num_ffs, 0),
        ff_after(num_ffs, 0) {}
};

/// Arcs attaining the minimum of `slack` (exact double ties all count).
void binding_arcs(const std::vector<double>& slack, std::vector<int>& out) {
  out.clear();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t e = 0; e < slack.size(); ++e) {
    if (slack[e] < best) {
      best = slack[e];
      out.clear();
      out.push_back(static_cast<int>(e));
    } else if (slack[e] == best) {
      out.push_back(static_cast<int>(e));
    }
  }
}

/// Counts the binding arcs and their endpoint registers (each register at
/// most once per sample, even when several tied arcs share it).
void tally(const ssta::SeqGraph& graph, const std::vector<int>& binding,
           std::vector<std::uint64_t>& arc_count,
           std::vector<std::uint64_t>& ff_count, std::vector<int>& ffs) {
  ffs.clear();
  for (const int e : binding) {
    ++arc_count[static_cast<std::size_t>(e)];
    const ssta::SeqArc& arc = graph.arcs[static_cast<std::size_t>(e)];
    for (const int f : {arc.src_ff, arc.dst_ff})
      if (std::find(ffs.begin(), ffs.end(), f) == ffs.end()) ffs.push_back(f);
  }
  for (const int f : ffs) ++ff_count[static_cast<std::size_t>(f)];
}

Json arc_json(const ArcCriticality& a) {
  Json j = Json::object();
  j.set("arc", static_cast<std::uint64_t>(a.arc));
  j.set("src_ff", a.src_ff);
  j.set("dst_ff", a.dst_ff);
  j.set("binding_before", a.binding_before);
  j.set("binding_after", a.binding_after);
  j.set("before", a.before);
  j.set("after", a.after);
  return j;
}

Json register_json(const RegisterCriticality& r) {
  Json j = Json::object();
  j.set("ff", r.ff);
  j.set("binding_before", r.binding_before);
  j.set("binding_after", r.binding_after);
  j.set("failing_incidence", r.failing_incidence);
  j.set("before", r.before);
  j.set("after", r.after);
  return j;
}

}  // namespace

Json CriticalityReport::to_json() const {
  Json j = Json::object();
  j.set("samples", samples);
  j.set("eval_seed", eval_seed);
  j.set("clock_period_ps", clock_period_ps);
  j.set("top_k", top_k);
  j.set("untunable", untunable);
  Json arc_list = Json::array();
  for (const ArcCriticality& a : arcs) arc_list.push_back(arc_json(a));
  j.set("arcs", std::move(arc_list));
  Json reg_list = Json::array();
  for (const RegisterCriticality& r : registers)
    reg_list.push_back(register_json(r));
  j.set("registers", std::move(reg_list));
  return j;
}

CriticalityReport CriticalityReport::from_json(const Json& j) {
  CriticalityReport report;
  report.samples = j.at("samples").as_uint();
  report.eval_seed = j.at("eval_seed").as_uint();
  report.clock_period_ps = j.at("clock_period_ps").as_double();
  report.top_k = static_cast<int>(j.at("top_k").as_int());
  report.untunable = j.at("untunable").as_uint();
  for (const Json& a : j.at("arcs").as_array()) {
    ArcCriticality arc;
    arc.arc = static_cast<std::size_t>(a.at("arc").as_uint());
    arc.src_ff = static_cast<int>(a.at("src_ff").as_int());
    arc.dst_ff = static_cast<int>(a.at("dst_ff").as_int());
    arc.binding_before = a.at("binding_before").as_uint();
    arc.binding_after = a.at("binding_after").as_uint();
    arc.before = a.at("before").as_double();
    arc.after = a.at("after").as_double();
    report.arcs.push_back(arc);
  }
  for (const Json& r : j.at("registers").as_array()) {
    RegisterCriticality reg;
    reg.ff = static_cast<int>(r.at("ff").as_int());
    reg.binding_before = r.at("binding_before").as_uint();
    reg.binding_after = r.at("binding_after").as_uint();
    reg.failing_incidence = r.at("failing_incidence").as_uint();
    reg.before = r.at("before").as_double();
    reg.after = r.at("after").as_double();
    report.registers.push_back(reg);
  }
  return report;
}

CriticalityReport compute_criticality(const ssta::SeqGraph& graph,
                                      const feas::TuningPlan& plan,
                                      double clock_period_ps,
                                      std::uint64_t eval_seed,
                                      std::uint64_t samples,
                                      const CriticalityOptions& options,
                                      int threads) {
  CLKTUNE_EXPECTS(clock_period_ps > 0.0);
  CLKTUNE_EXPECTS(options.top_k >= 1);
  const std::size_t num_arcs = graph.arcs.size();
  const std::size_t num_ffs = static_cast<std::size_t>(graph.num_ffs);

  const mc::Sampler sampler(graph, eval_seed);
  const feas::YieldEvaluator eval(graph, plan, clock_period_ps);
  const double step = plan.step_ps;

  const std::size_t workers = util::resolve_thread_count(
      threads <= 0 ? 0 : static_cast<std::size_t>(threads));
  std::vector<Partial> partial(workers, Partial(num_arcs, num_ffs));

  util::parallel_chunks(
      static_cast<std::size_t>(samples), workers,
      [&](std::size_t w, std::size_t begin, std::size_t end) {
        Partial& p = partial[w];
        mc::ArcSample scratch;
        std::vector<double> setup_c(num_arcs), hold_c(num_arcs);
        std::vector<double> slack(num_arcs);
        std::vector<int> binding, ffs;
        for (std::size_t k = begin; k < end; ++k) {
          sampler.evaluate(k, scratch);
          for (std::size_t e = 0; e < num_arcs; ++e) {
            mc::arc_slack(graph, e, scratch.dmax[e], scratch.dmin[e],
                          clock_period_ps, setup_c[e], hold_c[e]);
            slack[e] = std::min(setup_c[e], hold_c[e]);
          }
          binding_arcs(slack, binding);
          tally(graph, binding, p.arc_before, p.ff_before, ffs);

          const mc::ArcDelaysView view{scratch.dmax.data(),
                                       scratch.dmin.data(), num_arcs};
          const std::optional<std::vector<int>> config =
              eval.find_configuration(view);
          if (!config) {
            // Untunable chip: its critical path is the untuned one.
            ++p.untunable;
            tally(graph, binding, p.arc_after, p.ff_after, ffs);
            continue;
          }
          for (std::size_t e = 0; e < num_arcs; ++e) {
            const ssta::SeqArc& arc = graph.arcs[e];
            const int vi = eval.group_of_ff(arc.src_ff);
            const int vj = eval.group_of_ff(arc.dst_ff);
            const int xi = vi < 0 ? 0 : (*config)[static_cast<std::size_t>(vi)];
            const int xj = vj < 0 ? 0 : (*config)[static_cast<std::size_t>(vj)];
            slack[e] = std::min(setup_c[e] + step * (xj - xi),
                                hold_c[e] + step * (xi - xj));
          }
          binding_arcs(slack, binding);
          tally(graph, binding, p.arc_after, p.ff_after, ffs);
        }
        CriticalityMetrics::get().samples.inc(end - begin);
      });

  Partial total(num_arcs, num_ffs);
  for (const Partial& p : partial) {
    for (std::size_t e = 0; e < num_arcs; ++e) {
      total.arc_before[e] += p.arc_before[e];
      total.arc_after[e] += p.arc_after[e];
    }
    for (std::size_t f = 0; f < num_ffs; ++f) {
      total.ff_before[f] += p.ff_before[f];
      total.ff_after[f] += p.ff_after[f];
    }
    total.untunable += p.untunable;
  }

  // The baseline's ranking statistic, computed once and shared (same public
  // function core::top_k_criticality_plan ranks by).
  const std::vector<std::uint64_t> incidence =
      core::criticality_incidence(graph, sampler, clock_period_ps, samples,
                                  threads);

  CriticalityReport report;
  report.samples = samples;
  report.eval_seed = eval_seed;
  report.clock_period_ps = clock_period_ps;
  report.top_k = options.top_k;
  report.untunable = total.untunable;

  const double denom =
      samples == 0 ? 1.0 : static_cast<double>(samples);
  const auto rank = [](const std::vector<std::uint64_t>& before,
                       const std::vector<std::uint64_t>& after) {
    std::vector<std::size_t> order(before.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (before[a] != before[b]) return before[a] > before[b];
                       return after[a] > after[b];
                     });
    return order;
  };

  for (const std::size_t e : rank(total.arc_before, total.arc_after)) {
    if (static_cast<int>(report.arcs.size()) >= options.top_k) break;
    if (total.arc_before[e] == 0 && total.arc_after[e] == 0) break;
    ArcCriticality a;
    a.arc = e;
    a.src_ff = graph.arcs[e].src_ff;
    a.dst_ff = graph.arcs[e].dst_ff;
    a.binding_before = total.arc_before[e];
    a.binding_after = total.arc_after[e];
    a.before = static_cast<double>(a.binding_before) / denom;
    a.after = static_cast<double>(a.binding_after) / denom;
    report.arcs.push_back(a);
  }
  for (const std::size_t f : rank(total.ff_before, total.ff_after)) {
    if (static_cast<int>(report.registers.size()) >= options.top_k) break;
    if (total.ff_before[f] == 0 && total.ff_after[f] == 0) break;
    RegisterCriticality r;
    r.ff = static_cast<int>(f);
    r.binding_before = total.ff_before[f];
    r.binding_after = total.ff_after[f];
    r.failing_incidence = incidence[f];
    r.before = static_cast<double>(r.binding_before) / denom;
    r.after = static_cast<double>(r.binding_after) / denom;
    report.registers.push_back(r);
  }
  return report;
}

}  // namespace clktune::analysis
