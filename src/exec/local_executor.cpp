#include "exec/local_executor.h"

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "cache/result_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace clktune::exec {

using util::Json;

namespace {

/// Cell-level metrics: how many cells were computed vs. served from the
/// cache, and the wall-time distribution of the computed ones.
struct CellMetrics {
  obs::Counter& computed;
  obs::Counter& cached;
  obs::Histogram& cell_seconds;

  static CellMetrics& get() {
    static CellMetrics m{
        obs::Registry::global().counter("clktune_exec_cells_computed_total",
                                        "Scenario cells computed"),
        obs::Registry::global().counter(
            "clktune_exec_cells_cached_total",
            "Scenario cells served from the result cache"),
        obs::Registry::global().histogram(
            "clktune_exec_cell_seconds",
            "Wall time of one computed scenario cell", 1e-9),
    };
    return m;
  }
};

/// Fetches one cell: cache lookup by content key, else a fresh engine run
/// whose result is stored back.  `threads` caps the cell's inner loops.
scenario::ScenarioResult run_cell(const scenario::ScenarioSpec& spec,
                                  cache::ResultCache* cache, int threads,
                                  bool& cached) {
  if (cache != nullptr) {
    const std::string key = cache::scenario_cache_key(spec);
    if (std::optional<Json> artifact = cache->get(key)) {
      cached = true;
      CellMetrics::get().cached.inc();
      return scenario::ScenarioResult::from_json(*artifact);
    }
    scenario::ScenarioResult result = scenario::run_scenario(spec, threads);
    cache->put(key, result.to_json());
    cached = false;
    CellMetrics::get().computed.inc();
    CellMetrics::get().cell_seconds.record(
        static_cast<std::uint64_t>(result.seconds * 1e9));
    return result;
  }
  cached = false;
  CellMetrics& metrics = CellMetrics::get();
  scenario::ScenarioResult result = scenario::run_scenario(spec, threads);
  metrics.computed.inc();
  metrics.cell_seconds.record(
      static_cast<std::uint64_t>(result.seconds * 1e9));
  return result;
}

void notify(Observer* observer, std::size_t index,
            const scenario::ScenarioResult& result, bool cached) {
  if (observer == nullptr) return;
  CellEvent event{index, result, cached, cached ? 0.0 : result.seconds};
  observer->on_cell(event);
}

Outcome execute_scenario(const Request& request, Observer* observer) {
  const util::Stopwatch timer;
  if (observer != nullptr) {
    observer->on_begin(1, 1);
    if (observer->cancelled())
      throw CancelledError("exec: cancelled before the scenario started");
  }
  Outcome outcome;
  outcome.kind = Request::Kind::scenario;
  bool cached = false;
  {
    const obs::TraceSpan span("cell:" + request.scenario.name);
    outcome.result =
        run_cell(request.scenario, request.cache, request.threads, cached);
  }
  notify(observer, 0, outcome.result, cached);
  outcome.scenarios_run = 1;
  outcome.scenarios_cached = cached ? 1 : 0;
  outcome.targets_missed = outcome.result.met_target ? 0 : 1;
  outcome.seconds = timer.seconds();
  return outcome;
}

Outcome execute_campaign(const Request& request, Observer* observer) {
  const util::Stopwatch timer;
  std::vector<scenario::ScenarioSpec> all;
  {
    const obs::TraceSpan span("expand");
    all = request.campaign.expand();
  }

  // The expansion index is the unit of determinism, so any selection of it
  // partitions a campaign across processes/hosts without coordination: an
  // explicit index list (fleet work units) or a round-robin shard slice.
  std::vector<std::size_t> selected;
  if (!request.indices.empty()) {
    selected = request.indices;
  } else {
    selected.reserve(all.size() / request.shard_count + 1);
    for (std::size_t i = request.shard_index; i < all.size();
         i += request.shard_count)
      selected.push_back(i);
  }

  if (observer != nullptr) observer->on_begin(all.size(), selected.size());

  scenario::CampaignSummary summary;
  summary.name = request.campaign.name;
  summary.shard_index = request.shard_index;
  summary.shard_count = request.shard_count;
  summary.results.resize(selected.size());
  std::vector<char> cached(selected.size(), 0);

  // One worker thread per concurrent cell; each cell runs its inner loops
  // single-threaded so the batch scales with cell count.  Every worker
  // writes only its own result slots, and slots are ordered by expansion
  // index, so the summary is independent of scheduling.  Cache hits
  // substitute a stored artifact for the computation — ScenarioResult JSON
  // round trips are byte-exact, so the summary bytes cannot tell.
  const int requested =
      request.threads > 0 ? request.threads : request.campaign.threads;
  const std::size_t workers = util::resolve_thread_count(
      requested <= 0 ? 0 : static_cast<std::size_t>(requested));
  std::atomic<bool> cancel{false};
  util::parallel_chunks(
      selected.size(), workers,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          if (cancel.load(std::memory_order_relaxed)) return;
          if (observer != nullptr && observer->cancelled()) {
            cancel.store(true, std::memory_order_relaxed);
            return;
          }
          bool from_cache = false;
          {
            const obs::TraceSpan span(
                obs::trace_enabled() ? "cell:" + all[selected[i]].name
                                     : std::string());
            summary.results[i] = run_cell(all[selected[i]], request.cache,
                                          /*threads=*/1, from_cache);
          }
          cached[i] = from_cache ? 1 : 0;
          notify(observer, selected[i], summary.results[i], from_cache);
        }
      });
  if (cancel.load())
    throw CancelledError("exec: campaign cancelled by the observer");

  summary.recount();
  for (const char flag : cached) summary.scenarios_cached += flag;
  summary.total_seconds = timer.seconds();
  return Outcome::from_summary(std::move(summary), {});
}

}  // namespace

Outcome LocalExecutor::execute(const Request& request, Observer* observer) {
  request.validate();
  Outcome outcome = request.kind == Request::Kind::scenario
                        ? execute_scenario(request, observer)
                        : execute_campaign(request, observer);
  outcome.backend = name();
  return outcome;
}

}  // namespace clktune::exec
