#include "netlist/netlist.h"

#include <algorithm>
#include <stdexcept>

namespace clktune::netlist {

NodeId Netlist::add_node(Node node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (!node.name.empty()) {
    const auto [it, inserted] = by_name_.emplace(node.name, id);
    if (!inserted)
      throw std::invalid_argument("duplicate node name: " + node.name);
  }
  nodes_.push_back(std::move(node));
  finalized_ = false;
  return id;
}

NodeId Netlist::add_primary_input(std::string name) {
  const NodeId id =
      add_node(Node{NodeKind::primary_input, -1, std::move(name), {}, {}});
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_primary_output(std::string name, NodeId driver) {
  CLKTUNE_EXPECTS(driver >= 0 &&
                  driver < static_cast<NodeId>(nodes_.size()));
  const NodeId id = add_node(
      Node{NodeKind::primary_output, -1, std::move(name), {driver}, {}});
  outputs_.push_back(id);
  return id;
}

NodeId Netlist::add_gate(int cell, std::string name,
                         std::vector<NodeId> fanins) {
  CLKTUNE_EXPECTS(!fanins.empty());
  for (NodeId f : fanins)
    CLKTUNE_EXPECTS(f >= 0 && f < static_cast<NodeId>(nodes_.size()));
  const NodeId id = add_node(
      Node{NodeKind::gate, cell, std::move(name), std::move(fanins), {}});
  gates_.push_back(id);
  return id;
}

NodeId Netlist::add_flipflop(int cell, std::string name, NodeId d_driver) {
  std::vector<NodeId> fanins;
  if (d_driver != kNoNode) fanins.push_back(d_driver);
  const NodeId id = add_node(
      Node{NodeKind::flipflop, cell, std::move(name), std::move(fanins), {}});
  flipflops_.push_back(id);
  return id;
}

void Netlist::set_ff_driver(NodeId ff, NodeId d_driver) {
  Node& node = nodes_[static_cast<std::size_t>(ff)];
  CLKTUNE_EXPECTS(node.kind == NodeKind::flipflop);
  CLKTUNE_EXPECTS(d_driver >= 0 &&
                  d_driver < static_cast<NodeId>(nodes_.size()));
  node.fanins.assign(1, d_driver);
  finalized_ = false;
}

NodeId Netlist::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoNode : it->second;
}

void Netlist::finalize() {
  const std::size_t n = nodes_.size();
  for (Node& node : nodes_) node.fanouts.clear();
  for (std::size_t i = 0; i < n; ++i) {
    for (NodeId f : nodes_[i].fanins)
      nodes_[static_cast<std::size_t>(f)].fanouts.push_back(
          static_cast<NodeId>(i));
  }

  ff_index_.assign(n, -1);
  for (std::size_t i = 0; i < flipflops_.size(); ++i)
    ff_index_[static_cast<std::size_t>(flipflops_[i])] = static_cast<int>(i);

  // Kahn topological sort over the combinational gates.  Sequential
  // elements and primary I/O act as sources/sinks.
  topo_index_.assign(n, -1);
  topo_gates_.clear();
  topo_gates_.reserve(gates_.size());
  std::vector<int> pending(n, 0);
  std::vector<NodeId> ready;
  for (NodeId g : gates_) {
    int comb_fanins = 0;
    for (NodeId f : nodes_[static_cast<std::size_t>(g)].fanins)
      if (nodes_[static_cast<std::size_t>(f)].kind == NodeKind::gate)
        ++comb_fanins;
    pending[static_cast<std::size_t>(g)] = comb_fanins;
    if (comb_fanins == 0) ready.push_back(g);
  }
  while (!ready.empty()) {
    const NodeId g = ready.back();
    ready.pop_back();
    topo_index_[static_cast<std::size_t>(g)] =
        static_cast<int>(topo_gates_.size());
    topo_gates_.push_back(g);
    for (NodeId s : nodes_[static_cast<std::size_t>(g)].fanouts) {
      if (nodes_[static_cast<std::size_t>(s)].kind != NodeKind::gate) continue;
      if (--pending[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  if (topo_gates_.size() != gates_.size())
    throw std::logic_error(
        "combinational cycle detected in netlist (gates not coverable by a "
        "topological order)");
  finalized_ = true;
}

}  // namespace clktune::netlist
