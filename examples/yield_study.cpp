// Yield-vs-clock-period study: sweeps the target period around the measured
// distribution and prints yield curves for (a) no buffers, (b) the proposed
// insertion, (c) a buffer on every flip-flop — showing where tuning pays
// and where the unfixable tail takes over.
//
// The workload is declarative: examples/scenarios/yield_study.json is a
// campaign document sweeping clock.sigma_offset, so the same study is
// reproducible via `clktune sweep` (columns a and b) while this example adds
// the every-FF oracle column on top of the library API.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "exec/local_executor.h"
#include "exec/request.h"
#include "feas/yield_eval.h"
#include "scenario/campaign.h"
#include "scenario/scenario.h"
#include "ssta/seq_graph.h"
#include "util/env.h"
#include "util/json.h"

using namespace clktune;

namespace {

/// ctest/IDE working directories vary; look upward for the repo layout.
util::Json load_campaign_document() {
  const std::string rel = "examples/scenarios/yield_study.json";
  std::string prefix;
  for (int up = 0; up < 4; ++up) {
    try {
      return util::read_json_file(prefix + rel);
    } catch (const util::JsonError&) {
      throw;  // the file exists but is malformed — report that, not "missing"
    } catch (const std::exception&) {
      prefix += "../";
    }
  }
  throw std::runtime_error("cannot locate " + rel +
                           " (run from the repository root)");
}

}  // namespace

int main() try {
  const util::Json doc = load_campaign_document();
  scenario::CampaignSpec campaign = scenario::CampaignSpec::from_json(doc);
  campaign.threads =
      static_cast<int>(util::env_long("CLKTUNE_THREADS", campaign.threads));

  const std::vector<scenario::ScenarioSpec> specs = campaign.expand();
  exec::LocalExecutor executor;
  const scenario::CampaignSummary summary =
      executor.execute(exec::Request::for_campaign(campaign)).summary;

  std::printf("# %s: %zu scenarios from examples/scenarios/yield_study.json\n",
              campaign.name.c_str(), specs.size());
  std::printf("# setting  T_ps  original%%  proposed%%  every_ff%%  Nb\n");
  for (std::size_t i = 0; i < summary.results.size(); ++i) {
    const scenario::ScenarioResult& r = summary.results[i];

    // The every-FF oracle column: full symmetric windows on every flip-flop,
    // evaluated on the same out-of-sample chips as the scenario's report.
    const netlist::Design design = specs[i].design.build();
    const ssta::SeqGraph graph = ssta::extract_seq_graph(design);
    const feas::TuningPlan all = core::oracle_plan(
        graph, specs[i].insertion.steps, r.insertion.step_ps);
    const mc::Sampler eval(graph, specs[i].evaluation.seed);
    const double everyff =
        feas::YieldEvaluator(graph, all, r.clock_period_ps)
            .evaluate(eval, specs[i].evaluation.samples)
            .yield;

    std::printf("%9s  %8.1f  %8.2f  %8.2f  %8.2f  %3d\n", r.setting.c_str(),
                r.clock_period_ps, 100.0 * r.yield.original.yield,
                100.0 * r.yield.tuned.yield, 100.0 * everyff,
                r.insertion.plan.physical_buffers());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "yield_study: %s\n", e.what());
  return 1;
}
