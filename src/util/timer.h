// Wall-clock stopwatch for runtime columns (T(s) in Table I).
#pragma once

#include <chrono>

namespace clktune::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace clktune::util
