// Content-addressed result store for scenario artifacts.
//
// The flow is a pure function of the scenario document, so a result can be
// keyed by the document alone: the key is the SHA-256 of the canonical JSON
// (sorted members, compact) of the *resolved* spec — ScenarioSpec::to_json()
// after parsing, which normalises member order, fills defaults and drops
// redundant knobs — salted with a schema version so artifact-format changes
// invalidate old entries instead of mis-serving them.
//
// Two layers back the store: a bounded in-memory LRU for the hot set, and an
// optional on-disk artifact directory (one `<key>.json` envelope per result,
// written atomically via rename) that persists across processes and can be
// shared by concurrent clktune invocations.  `clktune cache` maintains the
// disk layer offline — stats, LRU eviction and integrity verification live
// in cache/maintenance.h.  `exec::LocalExecutor` consults the cache
// per expanded cell, which is what lets a repeated `clktune sweep` rerun
// zero scenarios, and `clktune serve` never recomputes a document it has
// seen.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "scenario/scenario.h"
#include "util/json.h"

namespace clktune::cache {

/// Counters of one cache's lifetime (process-local; disk entries written by
/// other processes still count as disk hits here).
struct CacheStats {
  std::uint64_t hits = 0;         ///< memory_hits + disk_hits
  std::uint64_t misses = 0;
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t evictions = 0;    ///< LRU entries dropped from memory
  std::uint64_t puts = 0;
  /// Corrupt disk entries detected (and treated as misses, so the
  /// recomputation overwrites them).
  std::uint64_t self_heals = 0;
  /// Disk commits that failed (ENOSPC, permissions, injected faults).
  /// The first failure flips the cache into read-only degraded mode.
  std::uint64_t write_failures = 0;

  util::Json to_json() const;
};

/// Cache key of a resolved scenario: sha256(salt + canonical document).
/// Stable across member-order permutations of the same document and across
/// processes/hosts; changes whenever any field that affects the result does.
std::string scenario_cache_key(const scenario::ScenarioSpec& spec);

/// The self-describing on-disk entry written for `key`:
/// {"key":key,"sha256":sha256(canonical artifact),"result":artifact}.
/// Embedding the key and a content digest is what lets `clktune cache
/// verify` re-hash every artifact against its key offline (see
/// cache/maintenance.h); get() unwraps the "result" member, so the served
/// artifact bytes stay exactly what was stored.
util::Json wrap_disk_entry(const std::string& key,
                           const util::Json& artifact);

/// Validates an envelope read back for `key` — embedded key must match,
/// and the artifact must re-hash to the recorded sha256 — and returns the
/// artifact.  Throws util::JsonError on any mismatch (or a non-envelope
/// document, e.g. a legacy bare artifact).  The one definition of entry
/// integrity: ResultCache::get treats a throw as a miss, `clktune cache
/// verify` reports it, so runtime and offline checks cannot drift apart.
util::Json unwrap_disk_entry(const std::string& key,
                             const util::Json& envelope);

class ResultCache {
 public:
  /// `directory` empty = memory-only.  `memory_capacity` bounds the LRU
  /// layer (0 disables it, leaving disk as the only layer).
  explicit ResultCache(std::string directory = {},
                       std::size_t memory_capacity = 256);

  /// Looks a key up in memory, then on disk (promoting a disk hit into the
  /// LRU).  Thread-safe.  A corrupt disk entry is treated as a miss.
  std::optional<util::Json> get(const std::string& key);

  /// Stores an artifact under `key` in both layers.  Thread-safe.  A disk
  /// commit failure (ENOSPC, ...) does NOT throw: the cache degrades to
  /// read-only mode — memory layer and existing disk entries keep serving,
  /// new artifacts are simply not persisted — because losing cache reuse
  /// must never abort a multi-hour campaign.
  void put(const std::string& key, const util::Json& artifact);

  /// True once a disk commit has failed and the disk layer went read-only.
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  CacheStats stats() const;
  const std::string& directory() const { return directory_; }
  std::size_t memory_size() const;

 private:
  std::string artifact_path(const std::string& key) const;
  void insert_memory_locked(const std::string& key,
                            const util::Json& artifact);

  void degrade(const char* reason);

  std::string directory_;
  std::size_t memory_capacity_;
  std::atomic<bool> degraded_{false};

  mutable std::mutex mutex_;
  /// Most-recently-used first; maps hold iterators into this list.
  std::list<std::pair<std::string, util::Json>> lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, util::Json>>::iterator>
      index_;
  CacheStats stats_;
};

}  // namespace clktune::cache
