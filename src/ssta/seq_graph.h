// Sequential timing graph: one arc per connected flip-flop pair (i -> j)
// carrying canonical max/min combinational delays (clk->Q included).  This
// is the object the paper's constraints (1)-(2) range over:
//
//   (q_i + x_i) + d_ij  <= (q_j + x_j) + T - s_j        (setup)
//   (q_i + x_i) + d_ij_ >= (q_j + x_j) + h_j            (hold)
//
// Extraction runs one canonical propagation per source flip-flop over its
// fanout cone (paths from other sources do not interfere with a pairwise
// delay, so side inputs are ignored during a source's propagation).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "ssta/canonical.h"

namespace clktune::ssta {

struct SeqArc {
  int src_ff = 0;  ///< launching FF (index into flipflops())
  int dst_ff = 0;  ///< capturing FF
  Canon dmax;      ///< late path delay clk->Q + combinational
  Canon dmin;      ///< early path delay
};

struct SeqGraph {
  int num_ffs = 0;
  std::vector<SeqArc> arcs;
  std::vector<double> setup_ps;  ///< per FF
  std::vector<double> hold_ps;   ///< per FF
  std::vector<double> skew_ps;   ///< per FF design clock skew q_i
  /// Arc indices incident to each FF (both directions), for pruning
  /// adjacency and reduction.
  std::vector<std::vector<int>> arcs_of_ff;

  double arcs_per_ff() const {
    return num_ffs == 0 ? 0.0
                        : static_cast<double>(arcs.size()) / num_ffs;
  }
};

/// Extracts the sequential graph of a finalized design.
SeqGraph extract_seq_graph(const netlist::Design& design);

/// Statistical estimate of the zero-tuning minimum period's mean (useful
/// sanity number; the Monte-Carlo module provides the sampled version).
double nominal_arc_period(const SeqGraph& graph);

}  // namespace clktune::ssta
