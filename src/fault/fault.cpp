#include "fault/fault.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "util/env.h"

namespace clktune::fault {

using util::Json;

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

/// One armed rule.  Mutated only under the plan mutex — injection sites
/// are I/O seams, so a lock on the *armed* path costs nothing compared to
/// the syscall it precedes (the disarmed path never reaches it).
struct Rule {
  Action action = Action::none;
  std::uint64_t nth = 0;     ///< fire exactly on this hit (1-based)
  std::uint64_t every = 0;   ///< fire on every k-th hit
  double probability = 0.0;  ///< else: fire per-hit with this probability
  std::uint64_t count = 0;   ///< max fires, 0 = unlimited
  int delay_ms = 0;
  std::size_t keep_bytes = 0;
  std::mt19937_64 rng{0};

  std::uint64_t hits = 0;
  std::uint64_t fires = 0;

  bool triggers() {
    ++hits;
    if (count != 0 && fires >= count) return false;
    if (nth != 0) return hits == nth;
    if (every != 0) return hits % every == 0;
    if (probability > 0.0)
      return std::uniform_real_distribution<double>(0.0, 1.0)(rng) <
             probability;
    return true;  // unconditional rule
  }
};

struct Plan {
  std::mutex mutex;
  std::map<std::string, Rule> rules;  ///< sorted: deterministic status_json
};

Plan& plan() {
  static Plan* p = new Plan;  // leaked: outlives every injection site
  return *p;
}

std::atomic<std::uint64_t> g_injected_total{0};

Action parse_action(const std::string& name) {
  if (name == "fail") return Action::fail;
  if (name == "timeout") return Action::timeout;
  if (name == "enospc") return Action::enospc;
  if (name == "delay") return Action::delay;
  if (name == "crash") return Action::crash;
  if (name == "reset") return Action::reset;
  if (name == "truncate") return Action::truncate;
  if (name == "short_write") return Action::short_write;
  throw std::invalid_argument("fault plan: unknown action '" + name + "'");
}

Rule parse_rule(const std::string& site, const Json& spec,
                std::uint64_t plan_seed) {
  if (!spec.is_object())
    throw std::invalid_argument("fault plan: site '" + site +
                                "' must map to an object");
  Rule rule;
  const Json* action = spec.find("action");
  if (action == nullptr)
    throw std::invalid_argument("fault plan: site '" + site +
                                "' is missing \"action\"");
  rule.action = parse_action(action->as_string());
  if (const Json* v = spec.find("nth")) rule.nth = v->as_uint();
  if (const Json* v = spec.find("every")) rule.every = v->as_uint();
  if (const Json* v = spec.find("probability")) {
    rule.probability = v->as_double();
    if (rule.probability < 0.0 || rule.probability > 1.0)
      throw std::invalid_argument("fault plan: site '" + site +
                                  "': probability must be in [0, 1]");
  }
  if (const Json* v = spec.find("count")) rule.count = v->as_uint();
  if (const Json* v = spec.find("delay_ms"))
    rule.delay_ms = static_cast<int>(v->as_int());
  if (const Json* v = spec.find("keep_bytes"))
    rule.keep_bytes = static_cast<std::size_t>(v->as_uint());

  // Per-site RNG stream: the site name hashed into the plan seed (or an
  // explicit per-site seed), so every site draws independently and two
  // runs of the same plan see the same schedule.
  std::uint64_t seed = plan_seed;
  if (const Json* v = spec.find("seed")) seed = v->as_uint();
  for (const char c : site) seed = seed * 1099511628211ULL + (unsigned char)c;
  rule.rng.seed(seed);
  return rule;
}

void count_fire(const char* site, Action action) {
  g_injected_total.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global()
      .counter("clktune_fault_injected_total", "Injected faults fired",
               {{"action", to_string(action)}, {"site", site}})
      .inc();
}

[[noreturn]] void crash_now(const char* site) {
  // A crash point models SIGKILL / power loss: no unwinding, no flushes,
  // no atexit.  137 = 128 + SIGKILL, matching what a supervisor reports.
  std::fprintf(stderr, "clktune: fault crash point '%s' fired, exiting\n",
               site);
  std::fflush(stderr);
  _exit(137);
}

}  // namespace

const char* to_string(Action action) noexcept {
  switch (action) {
    case Action::none: return "none";
    case Action::fail: return "fail";
    case Action::timeout: return "timeout";
    case Action::enospc: return "enospc";
    case Action::delay: return "delay";
    case Action::crash: return "crash";
    case Action::reset: return "reset";
    case Action::truncate: return "truncate";
    case Action::short_write: return "short_write";
  }
  return "none";
}

void arm(const Json& plan_doc) {
  if (!plan_doc.is_object())
    throw std::invalid_argument("fault plan: document must be an object");
  std::uint64_t plan_seed = 0;
  if (const Json* v = plan_doc.find("seed")) plan_seed = v->as_uint();
  const Json* sites = plan_doc.find("sites");
  if (sites == nullptr || !sites->is_object())
    throw std::invalid_argument("fault plan: missing \"sites\" object");

  std::map<std::string, Rule> rules;
  for (const auto& [site, spec] : sites->as_object())
    rules.emplace(site, parse_rule(site, spec, plan_seed));

  const bool any = !rules.empty();
  Plan& p = plan();
  {
    const std::lock_guard<std::mutex> lock(p.mutex);
    p.rules = std::move(rules);
  }
  detail::g_armed.store(any, std::memory_order_release);
}

void arm_from_spec(const std::string& spec) {
  const std::size_t start = spec.find_first_not_of(" \t\r\n");
  if (start != std::string::npos && spec[start] == '{') {
    arm(Json::parse(spec));
    return;
  }
  arm(util::read_json_file(spec));
}

bool arm_from_environment() {
  const std::string spec = util::env_string("CLKTUNE_FAULT_PLAN", "");
  if (spec.empty()) return false;
  arm_from_spec(spec);
  return armed();
}

void disarm() {
  Plan& p = plan();
  const std::lock_guard<std::mutex> lock(p.mutex);
  p.rules.clear();
  detail::g_armed.store(false, std::memory_order_release);
}

Fired poll(const char* site) {
  if (!armed()) return Fired{};
  Fired fired;
  {
    Plan& p = plan();
    const std::lock_guard<std::mutex> lock(p.mutex);
    const auto it = p.rules.find(site);
    if (it == p.rules.end() || !it->second.triggers()) return Fired{};
    Rule& rule = it->second;
    ++rule.fires;
    fired.action = rule.action;
    fired.delay_ms = rule.delay_ms;
    fired.keep_bytes = rule.keep_bytes;
  }
  count_fire(site, fired.action);
  if (fired.action == Action::crash) crash_now(site);
  if (fired.delay_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
  if (fired.action == Action::delay) return Fired{};  // slept; proceed
  return fired;
}

Fired check(const char* site) {
  const Fired fired = poll(site);
  switch (fired.action) {
    case Action::fail:
      throw std::runtime_error(std::string("fault injected at ") + site +
                               ": I/O failure");
    case Action::timeout:
      throw std::runtime_error(std::string("fault injected at ") + site +
                               ": operation timed out");
    case Action::reset:
      throw std::runtime_error(std::string("fault injected at ") + site +
                               ": connection reset by peer");
    case Action::enospc:
      throw std::runtime_error(std::string("fault injected at ") + site +
                               ": No space left on device (ENOSPC)");
    default:
      return fired;  // none, or a data-path action the caller honours
  }
}

std::uint64_t injected_total() noexcept {
  return g_injected_total.load(std::memory_order_relaxed);
}

Json status_json() {
  Json out = Json::object();
  out.set("armed", armed());
  Json sites = Json::object();
  Plan& p = plan();
  const std::lock_guard<std::mutex> lock(p.mutex);
  for (const auto& [site, rule] : p.rules) {
    Json entry = Json::object();
    entry.set("action", to_string(rule.action));
    if (rule.nth != 0) entry.set("nth", rule.nth);
    if (rule.every != 0) entry.set("every", rule.every);
    if (rule.probability > 0.0) entry.set("probability", rule.probability);
    if (rule.count != 0) entry.set("count", rule.count);
    if (rule.delay_ms != 0) entry.set("delay_ms", rule.delay_ms);
    if (rule.keep_bytes != 0)
      entry.set("keep_bytes", static_cast<std::uint64_t>(rule.keep_bytes));
    entry.set("hits", rule.hits);
    entry.set("fires", rule.fires);
    sites.set(site, std::move(entry));
  }
  out.set("sites", std::move(sites));
  out.set("injected_total", injected_total());
  return out;
}

}  // namespace clktune::fault
