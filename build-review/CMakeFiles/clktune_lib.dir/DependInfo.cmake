
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/result_cache.cpp" "CMakeFiles/clktune_lib.dir/src/cache/result_cache.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/cache/result_cache.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "CMakeFiles/clktune_lib.dir/src/core/baselines.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/core/baselines.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "CMakeFiles/clktune_lib.dir/src/core/engine.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/core/engine.cpp.o.d"
  "/root/repo/src/core/report.cpp" "CMakeFiles/clktune_lib.dir/src/core/report.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/core/report.cpp.o.d"
  "/root/repo/src/core/report_json.cpp" "CMakeFiles/clktune_lib.dir/src/core/report_json.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/core/report_json.cpp.o.d"
  "/root/repo/src/core/sample_solver.cpp" "CMakeFiles/clktune_lib.dir/src/core/sample_solver.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/core/sample_solver.cpp.o.d"
  "/root/repo/src/feas/diff_constraints.cpp" "CMakeFiles/clktune_lib.dir/src/feas/diff_constraints.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/feas/diff_constraints.cpp.o.d"
  "/root/repo/src/feas/tuning_plan.cpp" "CMakeFiles/clktune_lib.dir/src/feas/tuning_plan.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/feas/tuning_plan.cpp.o.d"
  "/root/repo/src/feas/yield_eval.cpp" "CMakeFiles/clktune_lib.dir/src/feas/yield_eval.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/feas/yield_eval.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "CMakeFiles/clktune_lib.dir/src/lp/simplex.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/lp/simplex.cpp.o.d"
  "/root/repo/src/mc/period_mc.cpp" "CMakeFiles/clktune_lib.dir/src/mc/period_mc.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/mc/period_mc.cpp.o.d"
  "/root/repo/src/mc/sampler.cpp" "CMakeFiles/clktune_lib.dir/src/mc/sampler.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/mc/sampler.cpp.o.d"
  "/root/repo/src/milp/branch_and_bound.cpp" "CMakeFiles/clktune_lib.dir/src/milp/branch_and_bound.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/milp/branch_and_bound.cpp.o.d"
  "/root/repo/src/netlist/bench_io.cpp" "CMakeFiles/clktune_lib.dir/src/netlist/bench_io.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/netlist/bench_io.cpp.o.d"
  "/root/repo/src/netlist/cell_library.cpp" "CMakeFiles/clktune_lib.dir/src/netlist/cell_library.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/netlist/cell_library.cpp.o.d"
  "/root/repo/src/netlist/generator.cpp" "CMakeFiles/clktune_lib.dir/src/netlist/generator.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/netlist/generator.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "CMakeFiles/clktune_lib.dir/src/netlist/netlist.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/nominal_sta.cpp" "CMakeFiles/clktune_lib.dir/src/netlist/nominal_sta.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/netlist/nominal_sta.cpp.o.d"
  "/root/repo/src/netlist/paper_circuits.cpp" "CMakeFiles/clktune_lib.dir/src/netlist/paper_circuits.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/netlist/paper_circuits.cpp.o.d"
  "/root/repo/src/scenario/campaign.cpp" "CMakeFiles/clktune_lib.dir/src/scenario/campaign.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/scenario/campaign.cpp.o.d"
  "/root/repo/src/scenario/scenario.cpp" "CMakeFiles/clktune_lib.dir/src/scenario/scenario.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/scenario/scenario.cpp.o.d"
  "/root/repo/src/scenario/summary_diff.cpp" "CMakeFiles/clktune_lib.dir/src/scenario/summary_diff.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/scenario/summary_diff.cpp.o.d"
  "/root/repo/src/serve/client.cpp" "CMakeFiles/clktune_lib.dir/src/serve/client.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/serve/client.cpp.o.d"
  "/root/repo/src/serve/server.cpp" "CMakeFiles/clktune_lib.dir/src/serve/server.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/serve/server.cpp.o.d"
  "/root/repo/src/ssta/canonical.cpp" "CMakeFiles/clktune_lib.dir/src/ssta/canonical.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/ssta/canonical.cpp.o.d"
  "/root/repo/src/ssta/seq_graph.cpp" "CMakeFiles/clktune_lib.dir/src/ssta/seq_graph.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/ssta/seq_graph.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "CMakeFiles/clktune_lib.dir/src/util/histogram.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/util/histogram.cpp.o.d"
  "/root/repo/src/util/json.cpp" "CMakeFiles/clktune_lib.dir/src/util/json.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/util/json.cpp.o.d"
  "/root/repo/src/util/sha256.cpp" "CMakeFiles/clktune_lib.dir/src/util/sha256.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/util/sha256.cpp.o.d"
  "/root/repo/src/util/socket.cpp" "CMakeFiles/clktune_lib.dir/src/util/socket.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/util/socket.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/clktune_lib.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/clktune_lib.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/clktune_lib.dir/src/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
