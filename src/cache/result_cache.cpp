#include "cache/result_cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "obs/metrics.h"
#include "util/fs.h"
#include "util/sha256.h"

namespace clktune::cache {

using util::Json;

namespace {

/// Process-wide cache counters (aggregated across every ResultCache
/// instance — the CLI's, the daemon's, the tests').  The per-instance
/// CacheStats struct stays the precise per-cache view; these feed the
/// obs registry so `clktune metrics` sees cache behaviour without a
/// handle on any particular instance.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& memory_hits;
  obs::Counter& disk_hits;
  obs::Counter& self_heals;
  obs::Counter& puts;
  obs::Counter& evictions;
  obs::Counter& bytes_written;
  obs::Counter& write_failures;
  obs::Gauge& degraded;

  static CacheMetrics& get() {
    static CacheMetrics m{
        obs::Registry::global().counter(
            "clktune_cache_hits_total",
            "Result-cache lookups served from memory or disk"),
        obs::Registry::global().counter(
            "clktune_cache_misses_total",
            "Result-cache lookups that had to compute"),
        obs::Registry::global().counter(
            "clktune_cache_memory_hits_total",
            "Cache hits served from the in-memory LRU layer"),
        obs::Registry::global().counter(
            "clktune_cache_disk_hits_total",
            "Cache hits served from the on-disk artifact layer"),
        obs::Registry::global().counter(
            "clktune_cache_self_heals_total",
            "Corrupt disk entries detected and treated as misses"),
        obs::Registry::global().counter(
            "clktune_cache_puts_total", "Artifacts stored into the cache"),
        obs::Registry::global().counter(
            "clktune_cache_evictions_total",
            "LRU entries dropped from the memory layer"),
        obs::Registry::global().counter(
            "clktune_cache_disk_bytes_written_total",
            "Bytes of artifact envelopes written to disk"),
        obs::Registry::global().counter(
            "clktune_cache_write_failures_total",
            "Disk commits of cache entries that failed"),
        obs::Registry::global().gauge(
            "clktune_cache_degraded",
            "1 when a cache instance has degraded to read-only after a "
            "disk write failure"),
    };
    return m;
  }
};

/// Bumped whenever the artifact schema, the flow's numeric behaviour or
/// the on-disk entry format changes, so stale entries read as misses
/// instead of wrong answers.  v2: disk entries became self-describing
/// envelopes ({"key","sha256","result"}) so `clktune cache verify` can
/// re-hash artifacts against their keys.  v3: scenario kinds (criticality /
/// binning) — new result shapes must never deserialize from v2 entries.
constexpr const char* kSchemaSalt = "clktune-scenario-result-v3\n";

}  // namespace

Json wrap_disk_entry(const std::string& key, const Json& artifact) {
  Json envelope = Json::object();
  envelope.set("key", key);
  envelope.set("sha256", util::sha256_hex(util::canonical_dump(artifact)));
  envelope.set("result", artifact);
  return envelope;
}

Json unwrap_disk_entry(const std::string& key, const Json& envelope) {
  const std::string& embedded = envelope.at("key").as_string();
  if (embedded != key)
    throw util::JsonError("cache: envelope key \"" + embedded +
                          "\" does not match \"" + key + "\"");
  Json artifact = envelope.at("result");
  const std::string digest =
      util::sha256_hex(util::canonical_dump(artifact));
  if (digest != envelope.at("sha256").as_string())
    throw util::JsonError("cache: artifact re-hash " + digest +
                          " does not match the recorded sha256 — entry"
                          " is corrupt");
  return artifact;
}

Json CacheStats::to_json() const {
  Json j = Json::object();
  j.set("hits", hits);
  j.set("misses", misses);
  j.set("memory_hits", memory_hits);
  j.set("disk_hits", disk_hits);
  j.set("evictions", evictions);
  j.set("puts", puts);
  j.set("self_heals", self_heals);
  j.set("write_failures", write_failures);
  return j;
}

std::string scenario_cache_key(const scenario::ScenarioSpec& spec) {
  util::Sha256 hasher;
  hasher.update(kSchemaSalt);
  hasher.update(util::canonical_dump(spec.to_json()));
  if (spec.design.kind == scenario::DesignSourceKind::bench_file) {
    // The document only names the .bench file; the result depends on its
    // bytes, so hash them too — editing the netlist must change the key
    // (and the same path from different working directories must not
    // collide on content that differs).
    std::ifstream in(spec.design.bench_path, std::ios::binary);
    if (!in)
      throw std::runtime_error("cache: cannot open " + spec.design.bench_path);
    char chunk[4096];
    while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0)
      hasher.update(chunk, static_cast<std::size_t>(in.gcount()));
  }
  return hasher.hex_digest();
}

ResultCache::ResultCache(std::string directory, std::size_t memory_capacity)
    : directory_(std::move(directory)), memory_capacity_(memory_capacity) {
  // Register the counter family eagerly so expositions (e.g. `clktune
  // cache stats --json`) list every cache counter at zero rather than
  // omitting the ones no operation has touched yet.
  CacheMetrics::get();
  if (!directory_.empty())
    std::filesystem::create_directories(directory_);
}

std::string ResultCache::artifact_path(const std::string& key) const {
  return directory_ + "/" + key + ".json";
}

void ResultCache::insert_memory_locked(const std::string& key,
                                       const Json& artifact) {
  if (memory_capacity_ == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = artifact;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, artifact);
  index_[key] = lru_.begin();
  while (lru_.size() > memory_capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    CacheMetrics::get().evictions.inc();
  }
}

std::optional<Json> ResultCache::get(const std::string& key) {
  CacheMetrics& metrics = CacheMetrics::get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      ++stats_.memory_hits;
      metrics.hits.inc();
      metrics.memory_hits.inc();
      return it->second->second;
    }
  }
  bool self_heal = false;
  if (!directory_.empty()) {
    try {
      // Disk entries are envelopes; a legacy bare artifact, a wrong-key
      // file, torn bytes or a corrupted artifact (digest mismatch) all
      // throw here and read as a miss — the recomputation then overwrites
      // the bad entry, so corruption self-heals instead of poisoning runs.
      Json artifact = unwrap_disk_entry(
          key, util::read_json_file(artifact_path(key)));
      std::lock_guard<std::mutex> lock(mutex_);
      insert_memory_locked(key, artifact);
      ++stats_.hits;
      ++stats_.disk_hits;
      metrics.hits.inc();
      metrics.disk_hits.inc();
      return artifact;
    } catch (const std::exception&) {
      // Missing or corrupt artifact: fall through to a miss.  A file
      // that exists but failed to unwrap is a corrupt entry the
      // recomputation will overwrite — the self-heal path.
      std::error_code ec;
      self_heal = std::filesystem::exists(artifact_path(key), ec) && !ec;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  metrics.misses.inc();
  if (self_heal) {
    ++stats_.self_heals;
    metrics.self_heals.inc();
  }
  return std::nullopt;
}

void ResultCache::degrade(const char* reason) {
  if (degraded_.exchange(true, std::memory_order_relaxed)) return;
  CacheMetrics::get().degraded.set(1);
  // One warning per instance, not one per put: a full disk would
  // otherwise turn a million-cell campaign into a million log lines.
  std::fprintf(stderr,
               "clktune: warning: cache disk write failed (%s); cache "
               "degraded to read-only — existing entries and the memory "
               "layer keep serving, new results are not persisted\n",
               reason);
}

void ResultCache::put(const std::string& key, const Json& artifact) {
  if (!directory_.empty() && !degraded_.load(std::memory_order_relaxed)) {
    std::string payload = wrap_disk_entry(key, artifact).dump(-1);
    payload.push_back('\n');
    try {
      // Crash-durable commit (fsync file + directory): a result that was
      // served is a result that survives power loss.  Readers racing the
      // rename see either the old complete entry or the new one.
      util::write_file_atomic(artifact_path(key), payload,
                              /*durable=*/true, /*fault_site=*/"cache");
      CacheMetrics::get().bytes_written.inc(payload.size());
    } catch (const std::exception& e) {
      // Losing persistence must never abort the run that is computing
      // results — degrade to read-only and keep going.
      CacheMetrics::get().write_failures.inc();
      degrade(e.what());
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.write_failures;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  insert_memory_locked(key, artifact);
  ++stats_.puts;
  CacheMetrics::get().puts.inc();
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ResultCache::memory_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace clktune::cache
