#include "scenario/campaign.h"

#include <utility>

#include "util/stats.h"

namespace clktune::scenario {

using util::Json;
using util::JsonError;

namespace {

/// Splits "insertion.num_samples" into path segments.
std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> segments;
  std::string current;
  for (const char c : path) {
    if (c == '.') {
      if (current.empty())
        throw JsonError("sweep: empty segment in path \"" + path + "\"");
      segments.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (current.empty())
    throw JsonError("sweep: empty segment in path \"" + path + "\"");
  segments.push_back(std::move(current));
  return segments;
}

/// Sets `value` at a dotted path, creating intermediate objects as needed.
void set_path(Json& root, const std::string& path, const Json& value) {
  const std::vector<std::string> segments = split_path(path);
  Json* node = &root;
  for (std::size_t s = 0; s + 1 < segments.size(); ++s) {
    if (!node->is_object())
      throw JsonError("sweep: path \"" + path +
                      "\" descends into a non-object");
    Json* child = node->find(segments[s]);
    if (child == nullptr) {
      node->set(segments[s], Json::object());
      child = node->find(segments[s]);
    }
    node = child;
  }
  if (!node->is_object())
    throw JsonError("sweep: path \"" + path + "\" descends into a non-object");
  node->set(segments.back(), value);
}

/// Human-readable value for scenario name suffixes ("s9234", "10000", ...).
std::string value_token(const Json& v) {
  if (v.is_string()) return v.as_string();
  return v.dump();
}

/// Last path segment ("insertion.num_samples" -> "num_samples").
std::string short_key(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(dot + 1);
}

}  // namespace

CampaignSpec CampaignSpec::from_json(const Json& j) {
  CampaignSpec spec;
  if (!j.is_object()) throw JsonError("campaign: expected a JSON object");
  for (const auto& [key, value] : j.as_object()) {
    if (key == "name") {
      spec.name = value.as_string();
    } else if (key == "base") {
      spec.base = value;
    } else if (key == "sweep") {
      for (const auto& [path, values] : value.as_object()) {
        SweepAxis axis;
        axis.path = path;
        for (const Json& v : values.as_array()) axis.values.push_back(v);
        if (axis.values.empty())
          throw JsonError("sweep: axis \"" + path + "\" has no values");
        spec.axes.push_back(std::move(axis));
      }
    } else if (key == "threads") {
      spec.threads = static_cast<int>(value.as_int());
    } else if (key == "seed_stride") {
      spec.seed_stride = value.as_uint();
    } else {
      throw JsonError("campaign: unknown key \"" + key + "\"");
    }
  }
  if (spec.name.empty()) throw JsonError("campaign: name must not be empty");
  if (!spec.base.is_object() || spec.base.as_object().empty())
    throw JsonError("campaign: missing \"base\" scenario");
  return spec;
}

Json CampaignSpec::to_json() const {
  Json j = Json::object();
  j.set("name", name);
  j.set("base", base);
  Json sweep = Json::object();
  for (const SweepAxis& axis : axes) {
    Json values = Json::array();
    for (const Json& v : axis.values) values.push_back(v);
    sweep.set(axis.path, std::move(values));
  }
  j.set("sweep", std::move(sweep));
  j.set("threads", threads);
  j.set("seed_stride", seed_stride);
  return j;
}

std::size_t CampaignSpec::expansion_size() const {
  std::size_t total = 1;
  for (const SweepAxis& axis : axes) {
    if (total > 100000 / axis.values.size())
      throw JsonError("campaign: sweep expands to more than 100000 scenarios");
    total *= axis.values.size();
  }
  return total;
}

std::vector<ScenarioSpec> CampaignSpec::expand() const {
  const std::size_t total = expansion_size();

  // An explicit sample_seed sweep axis must win over the stride: the user
  // asked for those exact seeds.
  bool seed_is_swept = false;
  for (const SweepAxis& axis : axes)
    seed_is_swept |= axis.path == "insertion.sample_seed";

  std::vector<ScenarioSpec> scenarios;
  scenarios.reserve(total);
  std::vector<std::size_t> choice(axes.size(), 0);
  for (std::size_t index = 0; index < total; ++index) {
    Json doc = base;
    std::string suffix;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const Json& value = axes[a].values[choice[a]];
      set_path(doc, axes[a].path, value);
      suffix += '/';
      suffix += short_key(axes[a].path);
      suffix += '=';
      suffix += value_token(value);
    }
    // Deterministic, distinct sampling seed per expanded scenario.
    if (seed_stride != 0 && !seed_is_swept) {
      std::uint64_t seed = core::InsertionConfig{}.sample_seed;
      if (const Json* insertion = doc.find("insertion")) {
        if (const Json* s = insertion->find("sample_seed"))
          seed = s->as_uint();
      } else {
        doc.set("insertion", Json::object());
      }
      doc.find("insertion")->set("sample_seed",
                                 Json(seed + index * seed_stride));
    }

    ScenarioSpec spec = ScenarioSpec::from_json(doc);
    if (!suffix.empty()) spec.name += suffix;
    scenarios.push_back(std::move(spec));

    // Odometer increment over the axes (last axis fastest).
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++choice[a] < axes[a].values.size()) break;
      choice[a] = 0;
    }
  }
  return scenarios;
}

Json CampaignSummary::to_json(bool include_timing) const {
  Json j = Json::object();
  j.set("name", name);
  if (shard_count > 1) {
    Json shard = Json::object();
    shard.set("index", static_cast<std::uint64_t>(shard_index));
    shard.set("count", static_cast<std::uint64_t>(shard_count));
    j.set("shard", std::move(shard));
  }
  j.set("scenarios_run", scenarios_run);
  j.set("targets_missed", targets_missed);

  util::OnlineStats tuned, improvement;
  std::uint64_t buffers = 0;
  for (const ScenarioResult& r : results) {
    tuned.add(r.yield.tuned.yield);
    improvement.add(r.yield.improvement());
    buffers += static_cast<std::uint64_t>(r.insertion.plan.physical_buffers());
  }
  Json agg = Json::object();
  agg.set("mean_tuned_yield", results.empty() ? 0.0 : tuned.mean());
  agg.set("mean_improvement", results.empty() ? 0.0 : improvement.mean());
  agg.set("total_physical_buffers", buffers);
  j.set("aggregate", std::move(agg));

  Json arr = Json::array();
  for (const ScenarioResult& r : results)
    arr.push_back(r.to_json(include_timing));
  j.set("results", std::move(arr));
  if (include_timing) j.set("total_seconds", total_seconds);
  return j;
}

CampaignSummary CampaignSummary::from_json(const Json& j) {
  CampaignSummary summary;
  summary.name = j.at("name").as_string();
  if (const Json* shard = j.find("shard")) {
    summary.shard_index =
        static_cast<std::size_t>(shard->at("index").as_uint());
    summary.shard_count =
        static_cast<std::size_t>(shard->at("count").as_uint());
    if (summary.shard_count == 0 ||
        summary.shard_index >= summary.shard_count)
      throw JsonError("summary: shard index must satisfy 0 <= i < n");
  }
  for (const Json& r : j.at("results").as_array())
    summary.results.push_back(ScenarioResult::from_json(r));
  // The counters are recomputed rather than trusted, so a hand-edited
  // artifact cannot disagree with its own cells; the aggregate block is
  // derived in to_json the same way.
  summary.recount();
  if (const Json* seconds = j.find("total_seconds"))
    summary.total_seconds = seconds->as_double();
  return summary;
}

void CampaignSummary::recount() {
  scenarios_run = results.size();
  targets_missed = 0;
  for (const ScenarioResult& r : results)
    targets_missed += r.met_target ? 0 : 1;
}

}  // namespace clktune::scenario
