#include "feas/diff_constraints.h"

#include "util/assert.h"

namespace clktune::feas {

void DiffConstraints::reset(int num_nodes) {
  CLKTUNE_EXPECTS(num_nodes >= 0);
  num_nodes_ = num_nodes;
  edges_.clear();
  ++epoch_;
  const auto n = static_cast<std::size_t>(num_nodes);
  if (head_.size() < n) {
    head_.resize(n);
    head_epoch_.resize(n, 0);
  }
}

void DiffConstraints::add(int u, int v, std::int64_t w) {
  CLKTUNE_EXPECTS(u >= 0 && u < num_nodes_);
  CLKTUNE_EXPECTS(v >= 0 && v < num_nodes_);
  const auto vs = static_cast<std::size_t>(v);
  if (head_epoch_[vs] != epoch_) {
    head_epoch_[vs] = epoch_;
    head_[vs] = -1;
  }
  edges_.push_back(Edge{u, w, head_[vs]});
  head_[vs] = static_cast<int>(edges_.size()) - 1;
}

const std::vector<std::int64_t>* DiffConstraints::solve_inplace() {
  const bool feasible = spfa_potentials(
      num_nodes_, scratch_, [&](int v) { return head(v); },
      [&](int e) { return edges_[static_cast<std::size_t>(e)].next; },
      [&](int e) { return edges_[static_cast<std::size_t>(e)].to; },
      [&](int e) { return edges_[static_cast<std::size_t>(e)].weight; });
  return feasible ? &scratch_.dist : nullptr;
}

}  // namespace clktune::feas
