#include "feas/diff_constraints.h"

#include <deque>

#include "util/assert.h"

namespace clktune::feas {

void DiffConstraints::add(int u, int v, std::int64_t w) {
  CLKTUNE_EXPECTS(u >= 0 && u < num_nodes());
  CLKTUNE_EXPECTS(v >= 0 && v < num_nodes());
  edges_.push_back(Edge{u, w, head_[static_cast<std::size_t>(v)]});
  head_[static_cast<std::size_t>(v)] = static_cast<int>(edges_.size()) - 1;
}

std::optional<std::vector<std::int64_t>> DiffConstraints::solve() const {
  const int n = num_nodes();
  // SPFA from an implicit super-source: start all distances at 0.
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n), 0);
  std::vector<int> relax_count(static_cast<std::size_t>(n), 0);
  std::vector<char> queued(static_cast<std::size_t>(n), 1);
  std::deque<int> queue;
  for (int v = 0; v < n; ++v) queue.push_back(v);

  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    queued[static_cast<std::size_t>(v)] = 0;
    for (int e = head_[static_cast<std::size_t>(v)]; e != -1;
         e = edges_[static_cast<std::size_t>(e)].next) {
      const Edge& edge = edges_[static_cast<std::size_t>(e)];
      const std::int64_t cand = dist[static_cast<std::size_t>(v)] + edge.weight;
      if (cand < dist[static_cast<std::size_t>(edge.to)]) {
        dist[static_cast<std::size_t>(edge.to)] = cand;
        if (++relax_count[static_cast<std::size_t>(edge.to)] > n)
          return std::nullopt;  // negative cycle
        if (!queued[static_cast<std::size_t>(edge.to)]) {
          queued[static_cast<std::size_t>(edge.to)] = 1;
          queue.push_back(edge.to);
        }
      }
    }
  }
  return dist;
}

}  // namespace clktune::feas
