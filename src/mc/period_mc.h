// Monte-Carlo distribution of the zero-tuning minimum clock period.
//
// Section IV of the paper derives its three evaluation clock periods from
// exactly this distribution: T in {muT, muT + sigmaT, muT + 2 sigmaT}, at
// which the original (no-buffer) yields are ~50 %, ~84.13 % and ~97.72 %.
#pragma once

#include <cstdint>

#include "mc/sampler.h"
#include "util/stats.h"

namespace clktune::mc {

struct PeriodStats {
  util::OnlineStats period;     ///< distribution of per-sample min period
  std::uint64_t hold_failures = 0;  ///< samples with a zero-tuning hold violation
  std::uint64_t samples = 0;

  double mu() const { return period.mean(); }
  double sigma() const { return period.stddev(); }
};

/// Samples the minimum feasible period (setup-limited, x = 0) and counts
/// zero-tuning hold violations.  Deterministic in (sampler seed, samples).
PeriodStats sample_min_period(const Sampler& sampler, std::uint64_t samples,
                              int threads = 0);

/// Per-sample minimum period (helper shared with benches/tests).
double sample_period(const Sampler& sampler, const ArcSample& arcs,
                     const ssta::SeqGraph& graph);

}  // namespace clktune::mc
