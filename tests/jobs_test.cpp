// Job-service tests.  The load-bearing properties are the acceptance
// criteria of the durable async path: a detached submit is admitted in
// O(enqueue) (the frame comes back `queued`, never computed), an attach
// stream — live or replayed, before or after a daemon restart on the same
// cache directory — is byte-identical to the synchronous run/sweep of the
// same document, and a daemon killed mid-job re-queues it on restart
// instead of losing it.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.h"
#include "exec/local_executor.h"
#include "exec/request.h"
#include "jobs/job.h"
#include "jobs/job_scheduler.h"
#include "jobs/job_store.h"
#include "scenario/scenario.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/json.h"

namespace clktune {
namespace {

using util::Json;

Json tiny_scenario_doc() {
  return Json::parse(R"({
    "name": "tiny",
    "design": {"synthetic": {"name": "tiny", "num_flipflops": 30,
                             "num_gates": 220, "seed": 5}},
    "clock": {"sigma_offset": 0.0, "period_samples": 400},
    "insertion": {"num_samples": 200, "steps": 8},
    "evaluation": {"samples": 400, "seed": 99}
  })");
}

Json tiny_campaign_doc() {
  Json doc = Json::object();
  doc.set("name", "tiny_campaign");
  doc.set("base", tiny_scenario_doc());
  Json sweep = Json::object();
  sweep.set("clock.sigma_offset",
            Json(util::JsonArray{Json(0.0), Json(1.0)}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

bool terminal_state(const std::string& state) {
  return state == "done" || state == "error" || state == "cancelled";
}

/// A daemon with a persistent cache directory (so jobs survive restarts),
/// restartable mid-test on the same directory.
class JobServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_dir_ = std::filesystem::temp_directory_path() /
                 ("clktune_jobs_test_" + std::to_string(::getpid()) + "_" +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(cache_dir_);
    start_server();
  }

  void TearDown() override {
    if (server_ != nullptr) stop_server();
    std::filesystem::remove_all(cache_dir_);
  }

  void start_server() {
    serve::ServeOptions options;
    options.port = 0;
    options.threads = 2;
    options.cache_dir = cache_dir_.string();
    server_ = std::make_unique<serve::ScenarioServer>(std::move(options));
    server_->start();
    thread_ = std::thread([s = server_.get()] { s->serve_forever(); });
  }

  void stop_server() {
    server_->stop();
    if (thread_.joinable()) thread_.join();
    server_.reset();
  }

  serve::SubmitOutcome raw(const Json& wire) {
    return serve::submit_raw("127.0.0.1", server_->port(), wire);
  }

  /// Detached admission; returns the job frame (or the error frame).
  Json submit_job(const Json& doc) {
    Json wire = Json::object();
    wire.set("cmd", "submit");
    wire.set("doc", doc);
    return raw(wire).final_event;
  }

  Json job_status(const std::string& id) {
    Json wire = Json::object();
    wire.set("cmd", "status");
    wire.set("id", id);
    return raw(wire).final_event;
  }

  Json wait_terminal(const std::string& id) {
    for (int i = 0; i < 600; ++i) {
      const Json frame = job_status(id);
      if (terminal_state(frame.at("state").as_string())) return frame;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return job_status(id);
  }

  serve::SubmitOutcome attach(const std::string& id) {
    Json wire = Json::object();
    wire.set("cmd", "attach");
    wire.set("id", id);
    return raw(wire);
  }

  std::unique_ptr<serve::ScenarioServer> server_;
  std::thread thread_;
  std::filesystem::path cache_dir_;
};

// ------------------------------------------------------------- admission

TEST_F(JobServiceFixture, DetachedSubmitIsQueuedInstantlyAndRunsToDone) {
  const Json frame = submit_job(tiny_campaign_doc());
  ASSERT_EQ(frame.at("event").as_string(), "job");
  // Admission is O(enqueue): the frame reports the job *queued*, with no
  // cell computed yet, no matter how fast a worker later claims it.
  EXPECT_EQ(frame.at("state").as_string(), "queued");
  EXPECT_EQ(frame.at("cells_total").as_uint(), 2u);
  EXPECT_EQ(frame.at("cells_done").as_uint(), 0u);

  // Id shape: 12 hex chars of content hash, '-', 8 hex chars of nonce.
  const std::string id = frame.at("id").as_string();
  ASSERT_EQ(id.size(), 21u);
  EXPECT_EQ(id[12], '-');
  EXPECT_EQ(id.find_first_not_of("0123456789abcdef-"), std::string::npos);

  const Json done = wait_terminal(id);
  EXPECT_EQ(done.at("state").as_string(), "done");
  EXPECT_EQ(done.at("cells_done").as_uint(), 2u);
  EXPECT_EQ(done.at("targets_missed").as_uint(), 0u);
}

TEST_F(JobServiceFixture, InvalidDocumentsAreRejectedAtAdmission) {
  // A typo'd key never reaches a worker; the submit itself errors.
  Json bad = tiny_scenario_doc();
  bad.set("numsamples", 5);
  const Json rejected = submit_job(bad);
  EXPECT_EQ(rejected.at("event").as_string(), "error");
  EXPECT_NE(rejected.at("message").as_string().find("numsamples"),
            std::string::npos);

  // A shard slice has no recovery story as a durable job: refused.
  Json sharded = Json::object();
  sharded.set("cmd", "submit");
  sharded.set("doc", tiny_campaign_doc());
  Json shard = Json::object();
  shard.set("index", 0);
  shard.set("count", 2);
  sharded.set("shard", std::move(shard));
  EXPECT_EQ(raw(sharded).final_event.at("event").as_string(), "error");

  // Unknown ids are structured errors naming the id.
  const Json unknown = job_status("deadbeef0000-00000000");
  EXPECT_EQ(unknown.at("event").as_string(), "error");
  EXPECT_NE(unknown.at("message").as_string().find("deadbeef0000"),
            std::string::npos);
}

// ---------------------------------------------------------- byte identity

TEST_F(JobServiceFixture, AttachReplayIsByteIdenticalToSynchronousSweep) {
  const Json doc = tiny_campaign_doc();
  exec::LocalExecutor local;
  const exec::Outcome reference =
      local.execute(exec::Request::from_json(doc));

  const Json frame = submit_job(doc);
  ASSERT_EQ(frame.at("event").as_string(), "job");
  const std::string id = frame.at("id").as_string();
  ASSERT_EQ(wait_terminal(id).at("state").as_string(), "done");

  const serve::SubmitOutcome stream = attach(id);
  ASSERT_TRUE(stream.ok());
  ASSERT_EQ(stream.results.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_EQ(stream.results[i].dump(),
              reference.summary.results[i].to_json().dump());
  EXPECT_EQ(stream.final_event.at("targets_missed").as_uint(), 0u);

  // Replayed cells come from the daemon's content-addressed cache.
  EXPECT_EQ(stream.cached, 2u);
}

TEST_F(JobServiceFixture, DetachedAnalysisJobsAttachByteIdentically) {
  // Kind-tagged documents through the whole async path: detached submit,
  // terminal state, attach replay — bytes equal to in-process execution.
  Json crit_doc = tiny_scenario_doc();
  crit_doc.set("kind", "criticality");
  Json options = Json::object();
  options.set("top_k", 5);
  crit_doc.set("criticality", std::move(options));

  Json bin_base = tiny_scenario_doc();
  bin_base.set("kind", "binning");
  Json bins = Json::object();
  bins.set("sigma_offsets",
           Json(util::JsonArray{Json(0.0), Json(2.0)}));
  bin_base.set("bins", std::move(bins));
  Json bin_campaign = Json::object();
  bin_campaign.set("name", "binning_campaign");
  bin_campaign.set("base", std::move(bin_base));
  Json sweep = Json::object();
  sweep.set("clock.sigma_offset",
            Json(util::JsonArray{Json(0.0), Json(1.0)}));
  bin_campaign.set("sweep", std::move(sweep));

  const std::string crit_id = submit_job(crit_doc).at("id").as_string();
  const std::string bin_id = submit_job(bin_campaign).at("id").as_string();
  ASSERT_EQ(wait_terminal(crit_id).at("state").as_string(), "done");
  ASSERT_EQ(wait_terminal(bin_id).at("state").as_string(), "done");

  const scenario::ScenarioResult crit_direct = scenario::run_scenario(
      scenario::ScenarioSpec::from_json(crit_doc), 2);
  const serve::SubmitOutcome crit_stream = attach(crit_id);
  ASSERT_TRUE(crit_stream.ok());
  ASSERT_EQ(crit_stream.results.size(), 1u);
  EXPECT_EQ(crit_stream.results[0].dump(), crit_direct.to_json().dump());
  EXPECT_EQ(crit_stream.results[0].at("kind").as_string(), "criticality");

  exec::LocalExecutor local;
  const exec::Outcome bin_reference =
      local.execute(exec::Request::from_json(bin_campaign));
  const serve::SubmitOutcome bin_stream = attach(bin_id);
  ASSERT_TRUE(bin_stream.ok());
  ASSERT_EQ(bin_stream.results.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_EQ(bin_stream.results[i].dump(),
              bin_reference.summary.results[i].to_json().dump());
}

TEST_F(JobServiceFixture, LiveAttachOfAScenarioJobMatchesDirectRun) {
  // Attach right after admission: the stream subscribes live (or replays,
  // if the worker already won the race) — the bytes cannot tell.
  const Json doc = tiny_scenario_doc();
  const Json frame = submit_job(doc);
  ASSERT_EQ(frame.at("event").as_string(), "job");
  const serve::SubmitOutcome stream = attach(frame.at("id").as_string());
  ASSERT_TRUE(stream.ok());
  ASSERT_EQ(stream.results.size(), 1u);

  const scenario::ScenarioResult direct = scenario::run_scenario(
      scenario::ScenarioSpec::from_json(doc), 2);
  EXPECT_EQ(stream.results[0].dump(), direct.to_json().dump());
}

// ------------------------------------------------------- restart recovery

TEST_F(JobServiceFixture, RestartRecoversFinishedJobsByteIdentically) {
  const Json doc = tiny_campaign_doc();
  const Json frame = submit_job(doc);
  const std::string id = frame.at("id").as_string();
  ASSERT_EQ(wait_terminal(id).at("state").as_string(), "done");
  const serve::SubmitOutcome before = attach(id);
  ASSERT_TRUE(before.ok());

  // Same cache directory, fresh daemon: the envelope and every artifact
  // must survive.
  stop_server();
  start_server();

  const Json recovered = job_status(id);
  ASSERT_EQ(recovered.at("event").as_string(), "job");
  EXPECT_EQ(recovered.at("state").as_string(), "done");
  EXPECT_EQ(recovered.at("cells_done").as_uint(), 2u);

  const serve::SubmitOutcome after = attach(id);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.results.size(), before.results.size());
  for (std::size_t i = 0; i < after.results.size(); ++i)
    EXPECT_EQ(after.results[i].dump(), before.results[i].dump());
}

TEST_F(JobServiceFixture, RestartRequeuesInterruptedJobsAndFinishesThem) {
  stop_server();

  // Forge the exact envelope a daemon killed mid-job leaves behind: state
  // `running`, nothing checkpointed.  (Killing a live daemon at a precise
  // instant is inherently racy; the on-disk state is the contract.)
  std::string id;
  {
    exec::Request request = exec::Request::from_json(tiny_campaign_doc());
    request.validate();
    jobs::JobStore store((cache_dir_ / "jobs").string());
    store.load();
    const jobs::JobRecord rec =
        store.create(request.document(), "campaign", request.campaign.name,
                     {}, request.expansion_size());
    store.set_state(rec.id, jobs::JobState::running);
    id = rec.id;
  }

  // A restarted daemon must reset it to queued, run it, and serve an
  // attach byte-identical to the synchronous sweep.
  start_server();
  const Json done = wait_terminal(id);
  ASSERT_EQ(done.at("state").as_string(), "done");
  EXPECT_EQ(done.at("cells_done").as_uint(), 2u);

  exec::LocalExecutor local;
  const exec::Outcome reference =
      local.execute(exec::Request::from_json(tiny_campaign_doc()));
  const serve::SubmitOutcome stream = attach(id);
  ASSERT_TRUE(stream.ok());
  ASSERT_EQ(stream.results.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_EQ(stream.results[i].dump(),
              reference.summary.results[i].to_json().dump());
}

// ----------------------------------------------------- cancel / list / status

TEST_F(JobServiceFixture, QueuedJobsCancelImmediatelyAndStayCancelled) {
  // Scheduler-level, unstarted: the queue never drains, so the cancel
  // deterministically hits a still-queued job.
  cache::ResultCache store((cache_dir_ / "unit_cache").string());
  jobs::JobScheduler scheduler((cache_dir_ / "unit_jobs").string(), &store,
                               jobs::JobSchedulerOptions{});
  const jobs::JobRecord job =
      scheduler.submit(tiny_campaign_doc(), {});
  EXPECT_EQ(job.state, jobs::JobState::queued);

  const jobs::JobRecord cancelled = scheduler.cancel(job.id);
  EXPECT_EQ(cancelled.state, jobs::JobState::cancelled);

  // Attaching to a cancelled job streams nothing and reports the state.
  std::size_t frames = 0;
  const jobs::JobRecord after = scheduler.attach(
      job.id, [&frames](const Json&) {
        ++frames;
        return true;
      });
  EXPECT_EQ(after.state, jobs::JobState::cancelled);
  EXPECT_EQ(frames, 0u);
}

TEST_F(JobServiceFixture, JobsListKeepsSubmissionOrderAndStatusCounts) {
  const std::string first =
      submit_job(tiny_scenario_doc()).at("id").as_string();
  const std::string second =
      submit_job(tiny_campaign_doc()).at("id").as_string();
  ASSERT_NE(first, second);

  Json wire = Json::object();
  wire.set("cmd", "jobs");
  const Json listing = raw(wire).final_event;
  ASSERT_EQ(listing.at("event").as_string(), "jobs");
  const auto& jobs = listing.at("jobs").as_array();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].at("id").as_string(), first);
  EXPECT_EQ(jobs[1].at("id").as_string(), second);

  // The daemon status frame carries per-state job counters.
  (void)wait_terminal(first);
  (void)wait_terminal(second);
  Json status_wire = Json::object();
  status_wire.set("cmd", "status");
  const Json status = raw(status_wire).final_event;
  ASSERT_EQ(status.at("event").as_string(), "status");
  EXPECT_EQ(status.at("jobs").at("done").as_uint(), 2u);
  EXPECT_EQ(status.at("jobs").at("queued").as_uint(), 0u);
}

// ------------------------------------------------------------ store layer

TEST(JobStoreTest, EnvelopesPersistAndInterruptedJobsRequeueOnLoad) {
  const std::string dir = testing::TempDir() + "clktune_job_store_test";
  std::filesystem::remove_all(dir);
  const Json doc = tiny_scenario_doc();

  std::string running_id, queued_id;
  {
    jobs::JobStore store(dir);
    const jobs::JobRecord a = store.create(doc, "scenario", "tiny", {}, 1);
    running_id = a.id;
    EXPECT_EQ(a.state, jobs::JobState::queued);
    store.set_state(a.id, jobs::JobState::running);

    // Same document, distinct nonce: ids share the content-hash prefix
    // but never collide.
    const jobs::JobRecord b = store.create(doc, "scenario", "tiny", {}, 1);
    queued_id = b.id;
    EXPECT_NE(a.id, b.id);
    EXPECT_EQ(a.id.substr(0, 12), b.id.substr(0, 12));
    // An explicit selection changes what the job runs — and its hash.
    const jobs::JobRecord c =
        store.create(doc, "scenario", "tiny", {0}, 1);
    EXPECT_NE(c.id.substr(0, 12), a.id.substr(0, 12));
  }

  jobs::JobStore reloaded(dir);
  EXPECT_EQ(reloaded.load(), 3u);
  // The interrupted job re-entered the queue; the untouched one is as
  // submitted.  claim_next() hands out the oldest queued job.
  EXPECT_EQ(reloaded.get(running_id)->state, jobs::JobState::queued);
  EXPECT_EQ(reloaded.get(queued_id)->state, jobs::JobState::queued);
  const auto claimed = reloaded.claim_next();
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->id, running_id);
  EXPECT_EQ(claimed->state, jobs::JobState::preparing);

  // Checkpoints are idempotent per index and survive the round trip.
  (void)reloaded.record_cell(running_id, 0, /*cached=*/false,
                             /*missed_target=*/true);
  const jobs::JobRecord twice =
      reloaded.record_cell(running_id, 0, false, true);
  EXPECT_EQ(twice.done_indices.size(), 1u);
  EXPECT_EQ(twice.targets_missed, 1u);

  jobs::JobStore again(dir);
  (void)again.load();
  EXPECT_EQ(again.get(running_id)->done_indices.size(), 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace clktune
