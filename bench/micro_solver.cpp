// Microbenchmarks of the optimisation substrate: bounded-variable simplex,
// branch & bound, difference-constraint feasibility (one-shot and
// workspace-reuse), and the per-sample solver end to end — both the engine
// hot path (cached constants + reusable workspace) and the from-scratch
// path (sampler draw + quantize + solve) it replaced.
#include <benchmark/benchmark.h>

#include <array>

#include "core/sample_solver.h"
#include "feas/diff_constraints.h"
#include "gbench_json.h"
#include "lp/simplex.h"
#include "mc/arc_constants.h"
#include "mc/sampler.h"
#include "milp/branch_and_bound.h"
#include "netlist/generator.h"
#include "netlist/nominal_sta.h"
#include "ssta/seq_graph.h"
#include "util/rng.h"

namespace {

using namespace clktune;

lp::Model random_lp(int vars, int rows, std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  lp::Model m;
  for (int j = 0; j < vars; ++j)
    m.add_variable(-5.0, 5.0, rng.next_double(-1.0, 1.0));
  for (int r = 0; r < rows; ++r) {
    std::vector<lp::Coefficient> coeffs;
    for (int j = 0; j < vars; ++j)
      coeffs.push_back({j, std::round(rng.next_double(-2.0, 2.0))});
    m.add_row(lp::Sense::less_equal, coeffs, rng.next_double(0.0, 6.0));
  }
  return m;
}

void BM_SimplexSolve(benchmark::State& state) {
  const lp::Model model =
      random_lp(static_cast<int>(state.range(0)),
                static_cast<int>(state.range(0)) * 2, 42);
  for (auto _ : state) {
    const lp::Solution s = lp::solve(model);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_SimplexSolve)->Arg(8)->Arg(16)->Arg(32);

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::SplitMix64 rng(7);
  lp::Model m;
  std::vector<int> bins;
  std::vector<lp::Coefficient> row;
  for (int i = 0; i < n; ++i) {
    bins.push_back(m.add_variable(0.0, 1.0, -rng.next_double(1.0, 10.0)));
    row.push_back({bins.back(), rng.next_double(1.0, 5.0)});
  }
  m.add_row(lp::Sense::less_equal, row, 1.5 * n);
  for (auto _ : state) {
    lp::Model scratch = m;
    const milp::Result r = milp::solve(scratch, bins);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(10)->Arg(16);

void BM_DiffConstraintFeasibility(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::SplitMix64 rng(5);
  feas::DiffConstraints sys(n);
  for (int e = 0; e < 4 * n; ++e) {
    const int u = static_cast<int>(rng.next_below(n));
    const int v = static_cast<int>(rng.next_below(n));
    if (u != v)
      sys.add(u, v, static_cast<std::int64_t>(rng.next_below(20)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.feasible());
  }
}
BENCHMARK(BM_DiffConstraintFeasibility)->Arg(32)->Arg(256);

// Full build-solve cycle on a reused workspace: reset + adds + solve, the
// shape of the greedy oracle and yield-check inner loops.
void BM_DiffConstraintRebuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::SplitMix64 rng(5);
  std::vector<std::array<int, 2>> pairs;
  for (int e = 0; e < 4 * n; ++e) {
    const int u = static_cast<int>(rng.next_below(n));
    const int v = static_cast<int>(rng.next_below(n));
    if (u != v) pairs.push_back({u, v});
  }
  feas::DiffConstraints sys;
  std::uint64_t w = 0;
  for (auto _ : state) {
    sys.reset(n);
    for (const auto& [u, v] : pairs)
      sys.add(u, v, static_cast<std::int64_t>(w++ % 20));
    benchmark::DoNotOptimize(sys.solve_inplace());
  }
}
BENCHMARK(BM_DiffConstraintRebuild)->Arg(32)->Arg(256);

struct SolverFixture {
  netlist::Design design;
  ssta::SeqGraph graph;
  double t0 = 0.0;

  SolverFixture() {
    netlist::SyntheticSpec spec;
    spec.num_flipflops = 211;
    spec.num_gates = 5597;
    spec.seed = 0x5923401;
    design = netlist::generate(spec);
    graph = ssta::extract_seq_graph(design);
    t0 = netlist::nominal_min_period(design);
  }
};

// The engine hot path: constants served from the cross-pass cache, solver
// running on a warm workspace.  One iteration = one sample.
void BM_PerSampleSolve(benchmark::State& state) {
  static const SolverFixture fx;
  const double tau = fx.t0 / 8.0;
  const std::uint64_t window = 512;
  const core::SampleSolver solver(
      fx.graph, tau / 20.0, fx.t0,
      core::CandidateWindows::floating(fx.graph.num_ffs, 20));
  const mc::Sampler sampler(fx.graph, 99);
  mc::SampleConstantCache cache(sampler, fx.t0, tau / 20.0, window,
                                1ull << 30);
  mc::ArcConstants scratch;
  for (std::uint64_t k = 0; k < window; ++k) cache.fill(k, scratch);
  core::SolveWorkspace ws;
  std::uint64_t k = 0;
  for (auto _ : state) {
    const core::SampleSolution sol =
        solver.solve(cache.get(k++ % window, scratch),
                     core::ConcentrateMode::toward_zero, nullptr, ws);
    benchmark::DoNotOptimize(sol.nk);
  }
}
BENCHMARK(BM_PerSampleSolve);

// The pre-cache shape: every sample pays a sampler draw and a quantize
// pass before the solve (what steps 2a/2b used to cost).
void BM_PerSampleSolveFromScratch(benchmark::State& state) {
  static const SolverFixture fx;
  const double tau = fx.t0 / 8.0;
  const core::SampleSolver solver(
      fx.graph, tau / 20.0, fx.t0,
      core::CandidateWindows::floating(fx.graph.num_ffs, 20));
  const mc::Sampler sampler(fx.graph, 99);
  mc::ArcSample arcs;
  std::uint64_t k = 0;
  for (auto _ : state) {
    sampler.evaluate(k++ % 512, arcs);
    const core::SampleSolution sol =
        solver.solve(arcs, core::ConcentrateMode::toward_zero);
    benchmark::DoNotOptimize(sol.nk);
  }
}
BENCHMARK(BM_PerSampleSolveFromScratch);

}  // namespace

int main(int argc, char** argv) {
  return clktune::bench::run_micro_benchmarks(argc, argv, "micro_solver",
                                              "BM_PerSampleSolve");
}
