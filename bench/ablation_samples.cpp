// Sample-count convergence: how many Monte-Carlo samples the flow needs
// before buffer locations, ranges and the resulting yield stabilise
// (the paper uses 10000).
#include <cstdio>

#include "bench_common.h"
#include "util/timer.h"

namespace {

using namespace clktune;

int run() {
  bench::BenchConfig cfg = bench::BenchConfig::from_env();
  bench::BenchReport report("ablation_samples");
  auto spec = *netlist::paper_circuit_spec(
      util::env_string("CLKTUNE_CONV_CIRCUIT", "s9234"));
  const bench::PreparedCircuit pc = bench::prepare(spec, cfg);
  const double t = pc.setting_period(0);
  const mc::Sampler eval(pc.graph, bench::kEvalSeed);
  const feas::YieldResult yo = feas::original_yield(
      pc.graph, t, eval, cfg.eval_samples, cfg.threads);

  std::printf("sample-count convergence on %s at T=%.1f ps (Yo=%.2f%%)\n\n",
              spec.name.c_str(), t, 100.0 * yo.yield);
  std::printf("%8s %4s %7s %8s %8s %9s\n", "samples", "Nb", "Ab", "Y(%)",
              "Yi(%)", "time(s)");
  for (std::uint64_t n : {250ull, 500ull, 1000ull, 2500ull, 5000ull,
                          10000ull, 20000ull}) {
    if (n > 2 * cfg.samples) break;
    core::InsertionConfig ic = cfg.insertion();
    ic.num_samples = n;
    util::Stopwatch sw;
    core::BufferInsertionEngine engine(pc.design, pc.graph, t, ic);
    const core::InsertionResult res = engine.run();
    const double secs = sw.seconds();
    report.count_insertion(res, n);
    report.count_samples(cfg.eval_samples);
    const feas::YieldResult y = feas::YieldEvaluator(pc.graph, res.plan, t)
                                    .evaluate(eval, cfg.eval_samples,
                                              cfg.threads);
    std::printf("%8llu %4d %7.2f %8.2f %8.2f %9.2f\n",
                static_cast<unsigned long long>(n),
                res.plan.physical_buffers(), res.plan.average_range(),
                100.0 * y.yield, 100.0 * (y.yield - yo.yield), secs);
    std::fflush(stdout);
  }
  return report.write();
}

}  // namespace

int main() { return run(); }
