// Quickstart: generate a small sequential circuit, run the sampling-based
// buffer-insertion flow at the mean minimum period, and measure the yield
// before and after.  ~40 lines of library use.
#include <cstdio>

#include "core/engine.h"
#include "feas/yield_eval.h"
#include "mc/period_mc.h"
#include "netlist/generator.h"
#include "ssta/seq_graph.h"

using namespace clktune;

int main() {
  // 1. A circuit: 150 flip-flops, 1200 gates, deterministic seed.
  netlist::SyntheticSpec spec;
  spec.name = "quickstart";
  spec.num_flipflops = 150;
  spec.num_gates = 1200;
  spec.seed = 7;
  const netlist::Design design = netlist::generate(spec);

  // 2. Sequential timing graph with canonical statistical delays.
  const ssta::SeqGraph graph = ssta::extract_seq_graph(design);
  std::printf("%s: %d flip-flops, %zu sequential arcs\n", spec.name.c_str(),
              graph.num_ffs, graph.arcs.size());

  // 3. The clock-period distribution over manufactured chips; target the
  //    mean (about half of all chips fail there).
  const mc::Sampler sampler(graph, /*seed=*/20160314);
  const mc::PeriodStats period = mc::sample_min_period(sampler, 5000);
  const double target = period.mu();
  std::printf("min period: mu=%.1f ps sigma=%.1f ps -> targeting T=%.1f ps\n",
              period.mu(), period.sigma(), target);

  // 4. Insert post-silicon tuning buffers (paper defaults: 10000 samples,
  //    20 discrete steps, tau = nominal period / 8).
  core::InsertionConfig config;
  config.num_samples = 5000;
  core::BufferInsertionEngine engine(design, graph, target, config);
  const core::InsertionResult result = engine.run();
  std::printf("inserted %d physical buffers (avg range %.1f of %d steps):\n",
              result.plan.physical_buffers(), result.plan.average_range(),
              config.steps);
  for (const core::BufferInfo& b : result.buffers)
    std::printf("  ff%-4d window [%d,%d] range [%d,%d] used in %llu samples "
                "(group %d)\n",
                b.ff, b.window_lo, b.window_hi, b.range_lo, b.range_hi,
                static_cast<unsigned long long>(b.usage_final), b.group);

  // 5. Yield before vs after, on fresh evaluation samples.
  const mc::Sampler eval(graph, /*seed=*/424242);
  const feas::YieldResult before =
      feas::original_yield(graph, target, eval, 5000);
  const feas::YieldEvaluator evaluator(graph, result.plan, target);
  const feas::YieldResult after = evaluator.evaluate(eval, 5000);
  std::printf("yield at T=%.1f ps: %.2f%% -> %.2f%% (+%.2f%%)\n", target,
              100.0 * before.yield, 100.0 * after.yield,
              100.0 * (after.yield - before.yield));
  return 0;
}
