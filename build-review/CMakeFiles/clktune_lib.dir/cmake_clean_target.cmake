file(REMOVE_RECURSE
  "libclktune_lib.a"
)
