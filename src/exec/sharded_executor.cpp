#include "exec/sharded_executor.h"

#include <atomic>
#include <exception>
#include <string>
#include <thread>
#include <utility>

#include "exec/merge.h"
#include "util/timer.h"

namespace clktune::exec {

ShardedExecutor::ShardedExecutor(
    std::vector<std::unique_ptr<Executor>> children)
    : children_(std::move(children)) {
  if (children_.empty())
    throw ExecError("sharded: needs at least one child executor");
  for (const std::unique_ptr<Executor>& child : children_)
    if (child == nullptr) throw ExecError("sharded: null child executor");
}

std::string ShardedExecutor::name() const {
  return "sharded(" + std::to_string(children_.size()) + ")";
}

Outcome ShardedExecutor::execute(const Request& request, Observer* observer) {
  request.validate();
  if (request.shard_count != 1)
    throw ExecError("sharded: request already carries a shard slice");
  if (!request.indices.empty())
    throw ExecError("sharded: request already carries an index selection");
  if (request.kind == Request::Kind::scenario)
    return children_.front()->execute(request, observer);

  const util::Stopwatch timer;
  const std::size_t n = children_.size();
  if (observer != nullptr)
    observer->on_begin(request.expansion_size(), request.expansion_size());

  // Children only see per-cell events; the single on_begin above already
  // announced the whole campaign.  A failed child flips the shared abort
  // flag so its siblings cancel at their next cell boundary instead of
  // computing slices whose merge can no longer happen.
  std::atomic<bool> abort{false};
  struct ForwardingObserver : Observer {
    ForwardingObserver(Observer* target, std::atomic<bool>& abort)
        : target_(target), abort_(abort) {}
    void on_begin(std::size_t, std::size_t) override {}
    void on_cell(const CellEvent& event) override {
      if (target_ != nullptr) target_->on_cell(event);
    }
    bool cancelled() override {
      return abort_.load(std::memory_order_relaxed) ||
             (target_ != nullptr && target_->cancelled());
    }
    Observer* target_;
    std::atomic<bool>& abort_;
  } forward{observer, abort};

  std::vector<scenario::CampaignSummary> shards(n);
  std::vector<std::exception_ptr> failures(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    threads.emplace_back([&, k] {
      try {
        Request slice = request;
        slice.shard_index = k;
        slice.shard_count = n;
        shards[k] = children_[k]->execute(slice, &forward).summary;
      } catch (...) {
        failures[k] = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Rethrow the root cause, not the CancelledError a sibling raised in
  // reaction to the abort flag (a genuine observer cancellation has no
  // non-cancel failure, so it still surfaces).
  std::exception_ptr primary;
  for (const std::exception_ptr& failure : failures) {
    if (!failure) continue;
    if (!primary) primary = failure;
    try {
      std::rethrow_exception(failure);
    } catch (const CancelledError&) {
    } catch (...) {
      primary = failure;
      break;
    }
  }
  if (primary) std::rethrow_exception(primary);

  scenario::CampaignSummary merged = merge_shard_summaries(shards);
  merged.total_seconds = timer.seconds();
  return Outcome::from_summary(std::move(merged), name());
}

}  // namespace clktune::exec
