#include "util/histogram.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/assert.h"

namespace clktune::util {

std::uint64_t IntHistogram::count_in_window(int lo, int hi) const {
  std::uint64_t sum = 0;
  for (auto it = counts_.lower_bound(lo);
       it != counts_.end() && it->first <= hi; ++it) {
    sum += it->second;
  }
  return sum;
}

int IntHistogram::best_window_lower_bound(int width) const {
  CLKTUNE_EXPECTS(width >= 0);
  if (counts_.empty()) return -width / 2;  // centre an empty window on zero
  const int lo_min = std::min(min_key(), 0) - width;
  const int lo_max = std::max(max_key(), 0);
  std::uint64_t best_mass = 0;
  int best_lo = lo_min;
  bool best_covers_zero = false;
  for (int lo = lo_min; lo <= lo_max; ++lo) {
    const std::uint64_t mass = count_in_window(lo, lo + width);
    const bool covers_zero = lo <= 0 && 0 <= lo + width;
    const bool better =
        mass > best_mass ||
        (mass == best_mass &&
         ((covers_zero && !best_covers_zero) ||
          (covers_zero == best_covers_zero &&
           std::abs(lo) < std::abs(best_lo))));
    if (better) {
      best_mass = mass;
      best_lo = lo;
      best_covers_zero = covers_zero;
    }
  }
  return best_lo;
}

double IntHistogram::mean() const {
  const std::uint64_t t = total();
  if (t == 0) return 0.0;
  double sum = 0.0;
  for (const auto& [k, c] : counts_)
    sum += static_cast<double>(k) * static_cast<double>(c);
  return sum / static_cast<double>(t);
}

std::string IntHistogram::to_ascii(int bar_width) const {
  std::ostringstream os;
  std::uint64_t peak = 1;
  for (const auto& [k, c] : counts_) peak = std::max(peak, c);
  for (const auto& [k, c] : counts_) {
    const int bars = static_cast<int>(
        (c * static_cast<std::uint64_t>(bar_width) + peak - 1) / peak);
    os << (k >= 0 ? " " : "") << k << "\t";
    for (int i = 0; i < bars; ++i) os << '#';
    os << "  (" << c << ")\n";
  }
  return os.str();
}

}  // namespace clktune::util
