#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace clktune::obs {

using util::Json;

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t shard_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

std::uint64_t Histogram::Snapshot::count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) total += c;
  return total;
}

double Histogram::Snapshot::upper_bound(std::size_t b) const {
  // Bucket 0 holds exactly the value 0; bucket b >= 1 holds [2^(b-1), 2^b).
  return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b)) * unit_scale;
}

double Histogram::Snapshot::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) >= rank) return upper_bound(b);
  }
  return upper_bound(kBuckets - 1);
}

Histogram::Snapshot Histogram::snapshot(double unit_scale) const {
  Snapshot snap;
  snap.unit_scale = unit_scale;
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b)
      snap.buckets[b] += shard.buckets[b].load(std::memory_order_acquire);
    snap.sum_raw += shard.sum.load(std::memory_order_acquire);
  }
  return snap;
}

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    if (alpha) continue;
    if (i > 0 && c >= '0' && c <= '9') continue;
    return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    if (alpha) continue;
    if (i > 0 && c >= '0' && c <= '9') continue;
    return false;
  }
  return true;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Canonical label suffix `{k="v",...}` with keys sorted; empty labels
/// yield an empty string.  This string is part of the metric identity.
std::string label_suffix(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += escape_label_value(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

/// Locale-independent shortest number formatting for exposition values.
std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer a shorter representation when it round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) return shorter;
  }
  return buf;
}

}  // namespace

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Entry& Registry::entry(Kind kind, const std::string& name,
                                 const std::string& help,
                                 const Labels& labels, double unit_scale) {
  if (!valid_metric_name(name))
    throw std::invalid_argument("obs: invalid metric name \"" + name + "\"");
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [key, value] : sorted) {
    (void)value;
    if (!valid_label_name(key))
      throw std::invalid_argument("obs: invalid label name \"" + key +
                                  "\" on metric " + name);
  }
  const std::string identity = name + label_suffix(sorted);

  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(identity);
  if (it != entries_.end()) {
    if (it->second.kind != kind)
      throw std::invalid_argument("obs: metric " + identity +
                                  " already registered as a different kind");
    if (kind == Kind::histogram && it->second.unit_scale != unit_scale)
      throw std::invalid_argument("obs: histogram " + identity +
                                  " already registered with a different"
                                  " unit_scale");
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.name = name;
  entry.labels = std::move(sorted);
  entry.help = help;
  entry.unit_scale = unit_scale;
  switch (kind) {
    case Kind::counter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::gauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::histogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return entries_.emplace(identity, std::move(entry)).first->second;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  return *entry(Kind::counter, name, help, labels, 1.0).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  return *entry(Kind::gauge, name, help, labels, 1.0).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help, double unit_scale,
                               const Labels& labels) {
  return *entry(Kind::histogram, name, help, labels, unit_scale).histogram;
}

util::Json Registry::snapshot_json() const {
  Json counters = Json::object();
  Json gauges = Json::object();
  Json histograms = Json::object();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [identity, entry] : entries_) {
    switch (entry.kind) {
      case Kind::counter:
        counters.set(identity, entry.counter->value());
        break;
      case Kind::gauge:
        gauges.set(identity,
                   static_cast<double>(entry.gauge->value()));
        break;
      case Kind::histogram: {
        const Histogram::Snapshot snap =
            entry.histogram->snapshot(entry.unit_scale);
        Json h = Json::object();
        h.set("count", snap.count());
        h.set("sum", snap.sum());
        h.set("p50", snap.quantile(0.50));
        h.set("p90", snap.quantile(0.90));
        h.set("p99", snap.quantile(0.99));
        Json buckets = Json::array();
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          if (snap.buckets[b] == 0) continue;
          Json pair = Json::array();
          pair.push_back(snap.upper_bound(b));
          pair.push_back(snap.buckets[b]);
          buckets.push_back(std::move(pair));
        }
        h.set("buckets", std::move(buckets));
        histograms.set(identity, std::move(h));
        break;
      }
    }
  }
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

std::string Registry::prometheus_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Group by family first: the identity ordering interleaves label-bearing
  // entries of one name with other names ("foo_bar" sorts between "foo"
  // and "foo{...}"), and the exposition format requires one HELP/TYPE
  // block per family with all its series together.
  std::map<std::string, std::vector<const Entry*>> families;
  for (const auto& [identity, entry] : entries_) {
    (void)identity;
    families[entry.name].push_back(&entry);
  }
  std::string out;
  for (const auto& [family, members] : families) {
    (void)family;
    const Entry& first = *members.front();
    out += "# HELP " + first.name + " " + first.help + "\n";
    out += "# TYPE " + first.name + " ";
    switch (first.kind) {
      case Kind::counter:
        out += "counter\n";
        break;
      case Kind::gauge:
        out += "gauge\n";
        break;
      case Kind::histogram:
        out += "histogram\n";
        break;
    }
    for (const Entry* member : members) {
      const Entry& entry = *member;
      const std::string suffix = label_suffix(entry.labels);
      switch (entry.kind) {
        case Kind::counter:
          out += entry.name + suffix + " " +
                 std::to_string(entry.counter->value()) + "\n";
          break;
        case Kind::gauge:
          out += entry.name + suffix + " " +
                 std::to_string(entry.gauge->value()) + "\n";
          break;
        case Kind::histogram: {
          const Histogram::Snapshot snap =
              entry.histogram->snapshot(entry.unit_scale);
          // Cumulative buckets; empty ranges are elided except the
          // mandatory +Inf.  The `le` label joins any user labels.
          std::string label_prefix = "{";
          for (const auto& [key, value] : entry.labels)
            label_prefix += key + "=\"" + escape_label_value(value) + "\",";
          std::uint64_t cumulative = 0;
          for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
            if (snap.buckets[b] == 0) continue;
            cumulative += snap.buckets[b];
            out += entry.name + "_bucket" + label_prefix + "le=\"" +
                   format_number(snap.upper_bound(b)) + "\"} " +
                   std::to_string(cumulative) + "\n";
          }
          out += entry.name + "_bucket" + label_prefix + "le=\"+Inf\"} " +
                 std::to_string(cumulative) + "\n";
          out += entry.name + "_sum" + suffix + " " +
                 format_number(snap.sum()) + "\n";
          out += entry.name + "_count" + suffix + " " +
                 std::to_string(cumulative) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace clktune::obs
