#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "netlist/bench_io.h"
#include "netlist/cell_library.h"
#include "netlist/generator.h"
#include "netlist/netlist.h"
#include "netlist/nominal_sta.h"
#include "netlist/paper_circuits.h"

namespace clktune::netlist {
namespace {

TEST(CellLibraryTest, StandardCellsResolvable) {
  const CellLibrary lib = CellLibrary::standard();
  for (const char* name : {"INV", "BUF", "NAND", "NOR", "AND", "OR", "XOR",
                           "XNOR", "NAND3", "NOR3", "DFF"})
    EXPECT_GE(lib.find(name), 0) << name;
  EXPECT_EQ(lib.find("FOO"), -1);
  EXPECT_GE(lib.dff_cell(), 0);
}

TEST(CellLibraryTest, LookupIsCaseInsensitive) {
  const CellLibrary lib = CellLibrary::standard();
  EXPECT_EQ(lib.find("nand"), lib.find("NAND"));
}

TEST(CellLibraryTest, VariationSigmaCombines) {
  VariationModel vm;
  const double total = vm.total_sigma();
  EXPECT_GT(total, vm.local_sigma);
  EXPECT_GT(total, vm.global_sens[0]);
  EXPECT_LT(total, 0.5);
}

TEST(NetlistTest, BuildAndTopologicalOrder) {
  Netlist nl;
  const CellLibrary lib = CellLibrary::standard();
  const NodeId ff1 = nl.add_flipflop(lib.dff_cell(), "ff1");
  const NodeId ff2 = nl.add_flipflop(lib.dff_cell(), "ff2");
  const NodeId g1 = nl.add_gate(lib.find("INV"), "g1", {ff1});
  const NodeId g2 = nl.add_gate(lib.find("NAND"), "g2", {g1, ff1});
  nl.set_ff_driver(ff2, g2);
  nl.finalize();
  EXPECT_EQ(nl.flipflops().size(), 2u);
  EXPECT_EQ(nl.gates().size(), 2u);
  EXPECT_LT(nl.topo_index(g1), nl.topo_index(g2));
  EXPECT_EQ(nl.node(ff1).fanouts.size(), 2u);
  EXPECT_EQ(nl.ff_index(ff2), 1);
}

TEST(NetlistTest, CombinationalCycleRejected) {
  Netlist nl;
  const CellLibrary lib = CellLibrary::standard();
  const NodeId ff = nl.add_flipflop(lib.dff_cell(), "ff");
  const NodeId g1 = nl.add_gate(lib.find("NAND"), "g1", {ff, ff});
  const NodeId g2 = nl.add_gate(lib.find("NAND"), "g2", {g1, g1});
  // Introduce a cycle g1 <- g2 by rebuilding g1's fanins via const_cast-free
  // path: construct a fresh netlist with a true cycle instead.
  (void)g2;
  Netlist bad;
  const NodeId f = bad.add_flipflop(lib.dff_cell(), "f");
  const NodeId a = bad.add_gate(lib.find("BUF"), "a", {f});
  const NodeId b = bad.add_gate(lib.find("NAND"), "b", {a, a});
  // Cheat: wire a's fanin to b by adding a new gate over b then aliasing is
  // not possible through the API; emulate cycle via b feeding a gate that b
  // also depends on is impossible by construction (fanins fixed at
  // creation).  The API makes cycles unrepresentable except through
  // set_ff_driver, which targets FFs only, so just assert finalize works.
  (void)b;
  EXPECT_NO_THROW(bad.finalize());
}

TEST(NetlistTest, DuplicateNamesRejected) {
  Netlist nl;
  nl.add_primary_input("x");
  EXPECT_THROW(nl.add_primary_input("x"), std::invalid_argument);
}

TEST(NetlistTest, FindByName) {
  Netlist nl;
  const NodeId in = nl.add_primary_input("alpha");
  EXPECT_EQ(nl.find("alpha"), in);
  EXPECT_EQ(nl.find("beta"), kNoNode);
}

TEST(ManhattanTest, Distance) {
  EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan({-1, 2}, {1, -2}), 6.0);
}

// --------------------------- bench I/O -------------------------------------

constexpr const char* kS27 = R"(# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
G17 = NOT(G11)
)";

TEST(BenchIoTest, ParsesS27) {
  std::istringstream in(kS27);
  const Design design = read_bench(in, "s27");
  EXPECT_EQ(design.netlist.flipflops().size(), 3u);
  EXPECT_EQ(design.netlist.primary_inputs().size(), 4u);
  EXPECT_EQ(design.netlist.primary_outputs().size(), 1u);
  EXPECT_EQ(design.netlist.gates().size(), 10u);
  EXPECT_TRUE(design.netlist.finalized());
  EXPECT_EQ(design.ff_position.size(), 3u);
}

TEST(BenchIoTest, RoundTripPreservesStructure) {
  std::istringstream in(kS27);
  const Design d1 = read_bench(in, "s27");
  std::ostringstream out;
  write_bench(out, d1);
  std::istringstream in2(out.str());
  const Design d2 = read_bench(in2, "s27rt");
  EXPECT_EQ(d1.netlist.flipflops().size(), d2.netlist.flipflops().size());
  EXPECT_EQ(d1.netlist.gates().size(), d2.netlist.gates().size());
  EXPECT_EQ(d1.netlist.primary_inputs().size(),
            d2.netlist.primary_inputs().size());
}

TEST(BenchIoTest, WideGatesCascade) {
  const char* text =
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(o)\n"
      "o = NAND(a, b, c, d)\n";
  std::istringstream in(text);
  const Design design = read_bench(in, "wide");
  // 4-input NAND -> three AND-tree gates + INV (or NAND3+..; cascade).
  EXPECT_GE(design.netlist.gates().size(), 3u);
  EXPECT_TRUE(design.netlist.finalized());
}

TEST(BenchIoTest, MalformedInputThrows) {
  std::istringstream in("o = NAND(a\n");
  EXPECT_THROW(read_bench(in, "bad"), std::runtime_error);
  std::istringstream in2("FROBNICATE(x)\n");
  EXPECT_THROW(read_bench(in2, "bad2"), std::runtime_error);
  std::istringstream in3("OUTPUT(u)\n");
  EXPECT_THROW(read_bench(in3, "bad3"), std::runtime_error);
}

TEST(BenchIoTest, SyntheticSkewIsDeterministic) {
  std::istringstream in(kS27);
  Design d = read_bench(in, "s27");
  apply_synthetic_skew(d, 5.0, 42);
  const std::vector<double> first = d.clock_skew_ps;
  apply_synthetic_skew(d, 5.0, 42);
  EXPECT_EQ(first, d.clock_skew_ps);
  apply_synthetic_skew(d, 5.0, 43);
  EXPECT_NE(first, d.clock_skew_ps);
}

// --------------------------- generator -------------------------------------

TEST(GeneratorTest, ExactCounts) {
  SyntheticSpec spec;
  spec.num_flipflops = 57;
  spec.num_gates = 491;
  spec.seed = 7;
  const Design d = generate(spec);
  EXPECT_EQ(d.netlist.flipflops().size(), 57u);
  EXPECT_EQ(d.netlist.gates().size(), 491u);
  EXPECT_TRUE(d.netlist.finalized());
}

TEST(GeneratorTest, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.num_flipflops = 40;
  spec.num_gates = 300;
  spec.seed = 11;
  const Design a = generate(spec);
  const Design b = generate(spec);
  ASSERT_EQ(a.netlist.num_nodes(), b.netlist.num_nodes());
  EXPECT_EQ(a.clock_skew_ps, b.clock_skew_ps);
  for (std::size_t i = 0; i < a.netlist.num_nodes(); ++i) {
    EXPECT_EQ(a.netlist.node(static_cast<NodeId>(i)).fanins,
              b.netlist.node(static_cast<NodeId>(i)).fanins);
  }
}

TEST(GeneratorTest, SeedChangesStructure) {
  SyntheticSpec spec;
  spec.num_flipflops = 40;
  spec.num_gates = 300;
  spec.seed = 1;
  const Design a = generate(spec);
  spec.seed = 2;
  const Design b = generate(spec);
  bool any_diff = a.clock_skew_ps != b.clock_skew_ps;
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, EveryFlipflopDrivenAndPlaced) {
  SyntheticSpec spec;
  spec.num_flipflops = 64;
  spec.num_gates = 500;
  spec.seed = 3;
  const Design d = generate(spec);
  for (NodeId ff : d.netlist.flipflops()) {
    EXPECT_FALSE(d.netlist.node(ff).fanins.empty());
    EXPECT_FALSE(d.netlist.node(ff).fanouts.empty());
  }
  EXPECT_EQ(d.ff_position.size(), 64u);
  EXPECT_EQ(d.clock_skew_ps.size(), 64u);
}

TEST(GeneratorTest, NominalPeriodPositiveAndDepthBounded) {
  SyntheticSpec spec;
  spec.num_flipflops = 100;
  spec.num_gates = 900;
  spec.seed = 5;
  const Design d = generate(spec);
  const double t0 = nominal_min_period(d);
  EXPECT_GT(t0, 0.0);
  // Very loose upper bound: max_depth gates of the slowest cell + margins.
  EXPECT_LT(t0, (spec.max_depth + 4) * 40.0);
}

TEST(GeneratorTest, SkewAmplitudeTracksNominalPeriod) {
  SyntheticSpec spec;
  spec.num_flipflops = 100;
  spec.num_gates = 900;
  spec.seed = 5;
  spec.skew_noise_ps = 0.0;
  const Design d = generate(spec);
  const double t0 = nominal_min_period(d);
  double max_abs = 0.0;
  for (double q : d.clock_skew_ps) max_abs = std::max(max_abs, std::abs(q));
  EXPECT_LE(max_abs, spec.skew_amplitude_factor * t0 + 1e-9);
  EXPECT_GT(max_abs, 0.0);
}

TEST(GeneratorTest, TinyCircuitWorks) {
  SyntheticSpec spec;
  spec.num_flipflops = 1;
  spec.num_gates = 3;
  spec.seed = 9;
  const Design d = generate(spec);
  EXPECT_EQ(d.netlist.flipflops().size(), 1u);
  EXPECT_EQ(d.netlist.gates().size(), 3u);
}

TEST(PaperCircuitsTest, AllEightRowsWithTableCounts) {
  const auto specs = paper_circuit_specs();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs[0].name, "s9234");
  EXPECT_EQ(specs[0].num_flipflops, 211);
  EXPECT_EQ(specs[0].num_gates, 5597);
  EXPECT_EQ(specs[7].name, "pci_bridge32");
  EXPECT_EQ(specs[7].num_flipflops, 3321);
  EXPECT_EQ(specs[7].num_gates, 12494);
  EXPECT_TRUE(paper_circuit_spec("s38584").has_value());
  EXPECT_FALSE(paper_circuit_spec("nonesuch").has_value());
}

TEST(NominalStaTest, HandComputedChain) {
  // ff1 -> INV -> NAND -> ff2; delays: clkq 22 + inv 8 + nand 12 + setup 12.
  Design d;
  const CellLibrary& lib = d.library;
  Netlist& nl = d.netlist;
  const NodeId ff1 = nl.add_flipflop(lib.dff_cell(), "ff1");
  const NodeId ff2 = nl.add_flipflop(lib.dff_cell(), "ff2");
  const NodeId g1 = nl.add_gate(lib.find("INV"), "g1", {ff1});
  const NodeId g2 = nl.add_gate(lib.find("NAND"), "g2", {g1, ff1});
  nl.set_ff_driver(ff2, g2);
  nl.finalize();
  d.clock_skew_ps.assign(2, 0.0);
  // g1 drives only g2 (fanout 1, no load adder); g2 drives only ff2.
  EXPECT_DOUBLE_EQ(nominal_min_period(d), 22.0 + 8.0 + 12.0 + 12.0);
}

}  // namespace
}  // namespace clktune::netlist
