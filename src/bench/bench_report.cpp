#include "bench/bench_report.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "fault/fault.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace clktune::bench {

std::string bench_git_sha() {
  const std::string env = util::env_string("GITHUB_SHA", "");
  if (!env.empty()) return env;
  std::string sha;
  if (std::FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      sha = buf;
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    }
    ::pclose(pipe);
  }
  return sha.empty() ? "unknown" : sha;
}

std::string bench_hostname() {
  char buf[256] = {};
  if (::gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf;
}

util::Json BenchReport::to_json() const {
  const double secs = wall_.seconds();
  util::Json j = util::Json::object();
  j.set("bench", name_);
  j.set("wall_seconds", secs);
  j.set("samples", samples_);
  const double sps = samples_per_sec_ >= 0.0
                         ? samples_per_sec_
                         : (secs > 0.0 && samples_ > 0
                                ? static_cast<double>(samples_) / secs
                                : 0.0);
  j.set("samples_per_sec", sps);
  j.set("milp_nodes", milp_nodes_);
  j.set("allocations", allocs_.delta());
  // Faults fired during the run — in this process, plus any a harness
  // observed on the system under test.  Nonzero means the numbers
  // describe a chaos experiment, not performance; scripts/perf_gate.sh
  // refuses such a report outright.
  j.set("faults_injected", fault::injected_total() + external_faults_);
  // Provenance stamp — which commit, where, how parallel — so a stored
  // BENCH_*.json is attributable long after the run.
  j.set("git_sha", bench_git_sha());
  j.set("hostname", bench_hostname());
  j.set("threads",
        static_cast<std::uint64_t>(util::resolve_thread_count(
            static_cast<std::size_t>(
                std::max(0L, util::env_long("CLKTUNE_THREADS", 0))))));
  for (const auto& [key, value] : extra_.as_object()) j.set(key, value);
  return j;
}

int BenchReport::write() const {
  const util::Json j = to_json();
  const std::string path = "BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
    return 1;
  }
  out << j.dump(2) << "\n";
  std::fprintf(stderr, "wrote %s (%.2f s, %.0f samples/s)\n", path.c_str(),
               j.at("wall_seconds").as_double(),
               j.at("samples_per_sec").as_double());
  return 0;
}

}  // namespace clktune::bench
