// Closed-loop load generation against a clktune daemon or fleet — the
// `clktune bench load` engine.
//
// K client threads replay a seeded workload schedule (load/workload.h)
// against the resolved targets.  Closed loop by default: each client
// issues its next operation the moment the previous one finishes, so
// throughput is the daemon's to set.  With `rate` > 0 the harness runs
// open loop instead: operation g is *scheduled* to start at g/rate
// seconds, latency is measured from that scheduled arrival (not from
// when a free client got around to it), so queueing delay under
// overload shows up in the percentiles instead of being coordinated
// away.
//
// Every exchange lands in a client-side per-verb obs::Histogram; the
// result carries p50/p90/p99 per verb, throughput, busy-frame and error
// rates, and the client/server cross-check of load/xcheck.h.  The whole
// run is stamped through bench::BenchReport into a BENCH_load.json
// artifact that scripts/perf_gate.sh holds against bench/baselines/.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet_spec.h"
#include "load/workload.h"
#include "load/xcheck.h"
#include "util/json.h"

namespace clktune::load {

struct LoadOptions {
  /// Daemons under load; weights steer the per-operation target draw.
  fleet::FleetSpec targets;
  WorkloadMix mix;
  std::uint64_t seed = 20160;
  std::size_t clients = 4;
  /// Budget: run until `requests` operations complete when > 0, else for
  /// `duration_seconds` (both 0 defaults to 5 seconds of load).
  std::uint64_t requests = 0;
  double duration_seconds = 0.0;
  /// > 0: open-loop arrivals per second across all clients.
  double rate = 0.0;
  /// Base scenario document; null uses workload.h's built-in tiny one.
  util::Json base_doc;
  int connect_timeout_ms = 5000;
  /// Response-stall deadline per exchange.  Nonzero by default: a load
  /// client must classify a wedged daemon as an error, never hang on it.
  int io_timeout_ms = 30000;
  /// Gate: error_rate above this fails the run (CLI exit 3).  1.0 = off.
  double max_error_rate = 1.0;
  /// Cross-check client vs server histograms after the run (exit 3 on
  /// disagreement).  The server snapshot is fetched either way, for the
  /// faults_injected stamp.
  bool cross_check = true;
  XcheckTolerance xcheck;
  bool quiet = true;
};

/// Client-observed latency of one verb over the whole run.
struct VerbObservation {
  std::string verb;
  std::uint64_t count = 0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, mean = 0.0;
};

struct LoadResult {
  std::uint64_t ops = 0;     ///< operations completed (schedule entries)
  std::uint64_t ok = 0;
  std::uint64_t busy = 0;    ///< operations answered with a busy frame
  std::uint64_t errors = 0;  ///< transport failures + error frames + failed jobs
  std::uint64_t transport_errors = 0;  ///< connect/stream-level failures
  double wall_seconds = 0.0;           ///< measured load window
  std::vector<VerbObservation> verbs;
  Agreement agreement;                  ///< empty when cross_check off
  std::uint64_t server_busy_rejections = 0;  ///< delta over the run
  std::uint64_t server_faults_injected = 0;  ///< delta over the run
  bool server_metrics_available = false;
  /// The full BENCH_load.json content (provenance-stamped, gate-ready).
  util::Json bench_artifact;

  double busy_rate() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(busy) / static_cast<double>(ops);
  }
  double error_rate() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(errors) / static_cast<double>(ops);
  }
  double throughput_rps() const {
    return wall_seconds > 0.0
               ? static_cast<double>(ops) / wall_seconds
               : 0.0;
  }

  /// 0 when every enabled gate held, 3 otherwise (the CLI's exit code;
  /// matches the yield-target convention).
  int gate_exit_code() const { return gates_ok ? 0 : 3; }
  bool gates_ok = true;
  std::vector<std::string> gate_failures;  ///< human diagnostics
};

/// Runs the load.  Throws std::runtime_error when no target answers the
/// pre-flight metrics probe (the CLI maps that to exit 2 — nothing was
/// measured).  Individual failures *during* the run are data, not
/// exceptions: they land in `errors` / `busy`.
LoadResult run_load(const LoadOptions& options);

}  // namespace clktune::load
