// Baseline insertion policies the proposed flow is compared against.
//
//  * top_k_criticality_plan — statistical criticality ranking with
//    symmetric windows, standing in for symmetric-range post-silicon-tunable
//    clock-tree methods in the spirit of Tsai et al. [2] (whose
//    implementation is not public).  Same buffer budget, no asymmetric
//    windows, no concentration, no grouping.
//  * oracle_plan — a tuning buffer with a full symmetric window on every
//    flip-flop: an upper bound on what clock tuning can possibly achieve.
#pragma once

#include <cstdint>
#include <vector>

#include "feas/tuning_plan.h"
#include "mc/delay_cache.h"
#include "mc/sampler.h"
#include "ssta/seq_graph.h"

namespace clktune::core {

/// Per-flip-flop incidence to failing setup arcs at x = 0 over `samples`
/// Monte-Carlo chips — the ranking statistic behind top_k_criticality_plan,
/// exposed so callers that need it more than once (several k values, or the
/// criticality analysis engine reporting it next to binding probabilities)
/// compute it exactly once.
std::vector<std::uint64_t> criticality_incidence(const ssta::SeqGraph& graph,
                                                 const mc::Sampler& sampler,
                                                 double clock_period_ps,
                                                 std::uint64_t samples,
                                                 int threads = 0);

/// Same statistic through a shared delay cache (fill=true computes and
/// stores the delays; fill=false reuses them).
std::vector<std::uint64_t> criticality_incidence(const ssta::SeqGraph& graph,
                                                 mc::SampleDelayCache& delays,
                                                 double clock_period_ps,
                                                 std::uint64_t samples,
                                                 int threads, bool fill);

/// Buffers the top `k` flip-flops of an incidence ranking with symmetric
/// windows of +-steps/2 (stable order: incidence desc, flip-flop index asc;
/// zero-incidence flip-flops are never buffered).
feas::TuningPlan plan_from_incidence(
    const ssta::SeqGraph& graph, const std::vector<std::uint64_t>& incidence,
    int k, int steps, double step_ps);

/// Ranks flip-flops by how often they are incident to a failing arc at
/// x = 0 over `samples` Monte-Carlo chips, then buffers the top `k` with
/// symmetric windows of +-steps/2.  Equivalent to plan_from_incidence over
/// criticality_incidence.
feas::TuningPlan top_k_criticality_plan(const ssta::SeqGraph& graph,
                                        const mc::Sampler& sampler,
                                        double clock_period_ps,
                                        std::uint64_t samples, int k,
                                        int steps, double step_ps,
                                        int threads = 0);

/// Same ranking through a shared delay cache (delays are clock-period
/// independent, so one cache serves every setting).  fill=true computes
/// and stores the delays; fill=false reuses them.
feas::TuningPlan top_k_criticality_plan(const ssta::SeqGraph& graph,
                                        mc::SampleDelayCache& delays,
                                        double clock_period_ps,
                                        std::uint64_t samples, int k,
                                        int steps, double step_ps,
                                        int threads, bool fill);

/// Buffers on every flip-flop, symmetric +-steps/2 windows.
feas::TuningPlan oracle_plan(const ssta::SeqGraph& graph, int steps,
                             double step_ps);

}  // namespace clktune::core
