# Empty compiler generated dependencies file for serve_roundtrip.
# This may be replaced when dependencies are built.
