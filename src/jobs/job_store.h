// Persistent job queue: one self-describing envelope per job, in a
// directory next to (or inside) the content-addressed result cache.
//
// The store is the durability layer of the job service.  Every mutation —
// admission, a state transition, each per-cell checkpoint — rewrites the
// job's envelope atomically (temp file + rename, the same discipline as
// cache::ResultCache), so a daemon killed at any instant leaves a
// directory that load() can fully reconstruct: terminal jobs stay
// terminal, and jobs caught in `preparing`/`running` are reset to
// `queued` so the scheduler simply runs them again.  Cells already
// computed land back instantly from the result cache, which is what makes
// the re-run cheap and the replayed artifact byte-identical.
//
// An empty directory string disables persistence: the store is then a
// plain in-memory queue (a daemon without --cache-dir still offers the
// async verbs, it just forgets jobs on restart).
//
// All operations are thread-safe; claim_next() is the single consumer
// entry point workers race on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "jobs/job.h"
#include "util/json.h"

namespace clktune::jobs {

class JobStore {
 public:
  /// Creates `directory` (and parents) when non-empty.
  explicit JobStore(std::string directory);

  /// Recovers every parseable envelope in the directory; interrupted jobs
  /// (preparing/running) are reset to queued and re-persisted.  Corrupt
  /// or foreign files are skipped.  Returns the number of jobs loaded.
  std::size_t load();

  /// Admits a new job: assigns `<hash12>-<nonce8>` id, the next sequence
  /// number and timestamps, persists the envelope, returns the record.
  JobRecord create(util::Json doc, std::string kind, std::string name,
                   std::vector<std::size_t> indices, std::size_t cells_total);

  std::optional<JobRecord> get(const std::string& id) const;
  /// Every job, in submission (sequence) order.
  std::vector<JobRecord> list() const;

  /// Claims the oldest queued job for a worker: queued → preparing,
  /// persisted.  nullopt when nothing is queued.
  std::optional<JobRecord> claim_next();

  /// Unconditional transition (the worker path: preparing → running,
  /// running → done/error/cancelled).  Throws JobError on an unknown id.
  JobRecord set_state(const std::string& id, JobState state,
                      const std::string& error = {});

  /// Atomic cancel-if-queued: a queued job becomes cancelled; any other
  /// state is returned unchanged (the caller then cancels cooperatively).
  /// Throws JobError on an unknown id.
  JobRecord cancel_if_queued(const std::string& id);

  /// One per-cell checkpoint: records the finished global index (idempotent
  /// per index), bumps the cached / targets-missed counters, persists.
  /// Throws JobError on an unknown id.
  JobRecord record_cell(const std::string& id, std::size_t index, bool cached,
                        bool missed_target);

  /// Drops the oldest terminal jobs beyond `keep` (memory and disk) so an
  /// immortal daemon's job history stays bounded.  Returns #removed.
  std::size_t prune_terminal(std::size_t keep);

  const std::string& directory() const { return directory_; }

 private:
  void persist_locked(const JobRecord& rec) const;
  void unlink_locked(const JobRecord& rec) const;

  std::string directory_;
  mutable std::mutex mutex_;
  std::map<std::string, JobRecord> jobs_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace clktune::jobs
