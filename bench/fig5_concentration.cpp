// Reproduces the data behind Fig. 5: the tuning-value histogram of one
// buffer across all Monte-Carlo samples at three points of the flow:
//   (a) after per-sample count minimisation only (scattered),
//   (b) after concentration toward zero + the assigned range window,
//   (c) after step-2 concentration toward the average -> reduced range.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace clktune;

int run() {
  bench::BenchConfig cfg = bench::BenchConfig::from_env();
  bench::BenchReport report("fig5_concentration");
  auto spec = *netlist::paper_circuit_spec(
      util::env_string("CLKTUNE_FIG5_CIRCUIT", "s9234"));
  const bench::PreparedCircuit pc = bench::prepare(spec, cfg);
  const double t = pc.setting_period(0);  // muT: most failures, most tunings

  core::BufferInsertionEngine engine(pc.design, pc.graph, t, cfg.insertion());
  const core::InsertionResult res = engine.run();
  report.count_insertion(res, cfg.samples);
  if (res.buffers.empty()) {
    std::printf("no buffers inserted; nothing to plot\n");
    return report.write();
  }
  // Most-used buffer, as in the figure.
  std::size_t best = 0;
  for (std::size_t i = 1; i < res.buffers.size(); ++i)
    if (res.buffers[i].usage_final > res.buffers[best].usage_final) best = i;
  const core::BufferInfo& info = res.buffers[best];
  const auto fs = static_cast<std::size_t>(info.ff);

  std::printf("Fig. 5 reproduction: circuit=%s T=%.1f ps buffer on ff%d\n",
              spec.name.c_str(), t, info.ff);
  std::printf("step size %.2f ps, window width %d steps (tau = %.1f ps)\n\n",
              res.step_ps, cfg.insertion().steps, res.tau_ps);

  const auto spread = [](const util::IntHistogram& h) {
    return h.empty() ? 0 : h.max_key() - h.min_key();
  };

  std::printf("(a) after count minimisation (scattered), spread=%d steps:\n%s\n",
              spread(res.hist_step1_min[fs]),
              res.hist_step1_min[fs].to_ascii().c_str());
  std::printf(
      "(b) after concentration toward zero, spread=%d steps;\n"
      "    assigned window [%d, %d]:\n%s\n",
      spread(res.hist_step1_conc[fs]), info.window_lo, info.window_hi,
      res.hist_step1_conc[fs].to_ascii().c_str());
  std::printf(
      "(c) after step-2 concentration toward the average (x_avg=%.2f),\n"
      "    reduced range [%d, %d] (%d steps vs max %d):\n%s\n",
      info.avg_k, info.range_lo, info.range_hi, info.range_hi - info.range_lo,
      cfg.insertion().steps, res.hist_step2[fs].to_ascii().c_str());

  // Aggregate view over all kept buffers (the claim behind Fig. 5c: ranges
  // shrink well below the 20-step maximum).
  double mass_a = 0, mass_b = 0;
  for (int f = 0; f < pc.graph.num_ffs; ++f) {
    for (const auto& [k, c] : res.hist_step1_min[static_cast<std::size_t>(f)]
                                  .cells())
      mass_a += std::abs(k) * static_cast<double>(c);
    for (const auto& [k, c] : res.hist_step1_conc[static_cast<std::size_t>(f)]
                                  .cells())
      mass_b += std::abs(k) * static_cast<double>(c);
  }
  std::printf(
      "aggregate |tuning| mass: %.0f (min-count) -> %.0f (concentrated), "
      "%.1f%% reduction\n",
      mass_a, mass_b, 100.0 * (1.0 - (mass_a > 0 ? mass_b / mass_a : 0.0)));
  std::printf("average final range over %d buffers: %.2f steps (max %d)\n",
              res.plan.physical_buffers(), res.plan.average_range(),
              cfg.insertion().steps);
  return report.write();
}

}  // namespace

int main() { return run(); }
