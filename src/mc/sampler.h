// Monte-Carlo sampling of manufactured chips.
//
// Sample k draws three chip-global parameter deviations (L, tox, Vth) and
// one local deviation per sequential arc, all through counter-based hashing:
// the delay of arc e in sample k is a pure function of (seed, k, e), so
// results are bit-identical across thread counts and evaluation order —
// a requirement for the deterministic parallel flow.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ssta/seq_graph.h"
#include "util/rng.h"

namespace clktune::mc {

/// Per-sample realised arc delays and derived constraint constants.
struct ArcSample {
  std::vector<double> dmax;
  std::vector<double> dmin;
};

class Sampler {
 public:
  Sampler(const ssta::SeqGraph& graph, std::uint64_t seed)
      : graph_(&graph), rng_(seed) {}

  /// Global parameter draws for sample k.
  std::array<double, ssta::kParams> globals(std::uint64_t k) const {
    std::array<double, ssta::kParams> z{};
    for (int p = 0; p < ssta::kParams; ++p)
      z[static_cast<std::size_t>(p)] =
          rng_.normal(k, 0x6000 + static_cast<std::uint64_t>(p));
    return z;
  }

  /// Fills `out` with every arc's realised late/early delay for sample k.
  /// Early delays are clamped to [0, dmax].
  void evaluate(std::uint64_t k, ArcSample& out) const;

  const ssta::SeqGraph& graph() const { return *graph_; }
  std::uint64_t seed() const { return rng_.seed(); }

 private:
  const ssta::SeqGraph* graph_;
  util::CounterRng rng_;
};

}  // namespace clktune::mc
