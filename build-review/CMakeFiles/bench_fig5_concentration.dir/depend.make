# Empty dependencies file for bench_fig5_concentration.
# This may be replaced when dependencies are built.
