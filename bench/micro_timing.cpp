// Microbenchmarks of the timing substrate: sequential-graph extraction,
// per-sample arc evaluation (split and fused-quantizing forms), period
// Monte-Carlo and yield checking (drawn and cached-delay forms).
#include <benchmark/benchmark.h>

#include "feas/yield_eval.h"
#include "gbench_json.h"
#include "mc/arc_constants.h"
#include "mc/delay_cache.h"
#include "mc/period_mc.h"
#include "mc/sampler.h"
#include "netlist/generator.h"
#include "ssta/seq_graph.h"

namespace {

using namespace clktune;

netlist::Design make_design(int ns, int ng) {
  netlist::SyntheticSpec spec;
  spec.num_flipflops = ns;
  spec.num_gates = ng;
  spec.seed = 21;
  return netlist::generate(spec);
}

void BM_SeqGraphExtraction(benchmark::State& state) {
  const netlist::Design design = make_design(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) * 8);
  for (auto _ : state) {
    const ssta::SeqGraph g = ssta::extract_seq_graph(design);
    benchmark::DoNotOptimize(g.arcs.size());
  }
}
BENCHMARK(BM_SeqGraphExtraction)->Arg(200)->Arg(1000);

void BM_ArcSampleEvaluation(benchmark::State& state) {
  static const netlist::Design design = make_design(500, 4000);
  static const ssta::SeqGraph graph = ssta::extract_seq_graph(design);
  const mc::Sampler sampler(graph, 3);
  mc::ArcSample arcs;
  std::uint64_t k = 0;
  for (auto _ : state) {
    sampler.evaluate(k++, arcs);
    benchmark::DoNotOptimize(arcs.dmax.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.arcs.size()));
}
BENCHMARK(BM_ArcSampleEvaluation);

// The fused kernel the insertion flow runs on: draw + quantize in one pass,
// no ArcSample materialisation.
void BM_FusedConstantEvaluation(benchmark::State& state) {
  static const netlist::Design design = make_design(500, 4000);
  static const ssta::SeqGraph graph = ssta::extract_seq_graph(design);
  const mc::Sampler sampler(graph, 3);
  const mc::PeriodStats ps = mc::sample_min_period(sampler, 200);
  mc::ArcConstants constants;
  constants.resize(graph.arcs.size());
  std::uint64_t k = 0;
  for (auto _ : state) {
    sampler.evaluate_constants(k++, ps.mu(), ps.mu() / 160.0,
                               constants.setup_steps.data(),
                               constants.hold_steps.data());
    benchmark::DoNotOptimize(constants.setup_steps.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.arcs.size()));
}
BENCHMARK(BM_FusedConstantEvaluation);

struct YieldFixture {
  const netlist::Design design = make_design(500, 4000);
  const ssta::SeqGraph graph = ssta::extract_seq_graph(design);
  mc::Sampler sampler{graph, 3};
  mc::PeriodStats ps = mc::sample_min_period(sampler, 500);

  feas::TuningPlan plan() const {
    feas::TuningPlan p;
    p.step_ps = ps.mu() / 160.0;
    for (int f = 0; f < 8; ++f)
      p.buffers.push_back(feas::BufferWindow{f * 10, -10, 10});
    p.reset_groups();
    return p;
  }
};

void BM_YieldCheckPerSample(benchmark::State& state) {
  static const YieldFixture fx;
  const feas::YieldEvaluator eval(fx.graph, fx.plan(), fx.ps.mu());
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.sample_feasible(fx.sampler, k++));
  }
}
BENCHMARK(BM_YieldCheckPerSample);

// The shared-delay-cache path measurements reuse across evaluations: the
// sampling work is gone, leaving sign tests plus a tiny SPFA.
void BM_YieldCheckCachedDelays(benchmark::State& state) {
  static const YieldFixture fx;
  const feas::YieldEvaluator eval(fx.graph, fx.plan(), fx.ps.mu());
  const std::uint64_t window = 512;
  mc::SampleDelayCache cache(fx.sampler, window, 1ull << 30);
  mc::ArcSample scratch;
  for (std::uint64_t k = 0; k < window; ++k) cache.fill(k, scratch);
  std::uint64_t k = 0;
  for (auto _ : state) {
    const mc::ArcDelaysView view = cache.get(k++ % window, scratch);
    benchmark::DoNotOptimize(eval.sample_feasible(view));
  }
}
BENCHMARK(BM_YieldCheckCachedDelays);

}  // namespace

int main(int argc, char** argv) {
  return clktune::bench::run_micro_benchmarks(argc, argv, "micro_timing",
                                              "BM_YieldCheckPerSample");
}
