// Ablation over the flow's design choices (DESIGN.md section 6): what each
// step buys.  Disables concentration / pruning / grouping one at a time and
// flips the x_avg averaging mode, reporting Nb, Ab, yield and runtime.
#include <cstdio>

#include "bench_common.h"
#include "util/timer.h"

namespace {

using namespace clktune;

struct Variant {
  const char* name;
  void (*tweak)(core::InsertionConfig&);
};

int run() {
  bench::BenchConfig cfg = bench::BenchConfig::from_env();
  bench::BenchReport report("ablation_steps");
  auto spec = *netlist::paper_circuit_spec(
      util::env_string("CLKTUNE_ABLATION_CIRCUIT", "s13207"));
  const bench::PreparedCircuit pc = bench::prepare(spec, cfg);
  const double t = pc.setting_period(0);
  const mc::Sampler eval(pc.graph, bench::kEvalSeed);

  const Variant variants[] = {
      {"full flow", [](core::InsertionConfig&) {}},
      {"no concentration",
       [](core::InsertionConfig& c) { c.enable_concentration = false; }},
      {"no pruning",
       [](core::InsertionConfig& c) { c.enable_pruning = false; }},
      {"no grouping",
       [](core::InsertionConfig& c) { c.enable_grouping = false; }},
      {"avg over all samples",
       [](core::InsertionConfig& c) { c.average_nonzero_only = false; }},
      {"capped at 4 buffers",
       [](core::InsertionConfig& c) { c.max_buffers = 4; }},
  };

  std::printf("ablation on %s at T=%.1f ps, samples=%llu\n\n",
              spec.name.c_str(), t,
              static_cast<unsigned long long>(cfg.samples));
  std::printf("%-22s %4s %7s %8s %8s %9s\n", "variant", "Nb", "Ab", "Y(%)",
              "Yi(%)", "time(s)");
  const feas::YieldResult yo = feas::original_yield(
      pc.graph, t, eval, cfg.eval_samples, cfg.threads);
  for (const Variant& v : variants) {
    core::InsertionConfig ic = cfg.insertion();
    v.tweak(ic);
    util::Stopwatch sw;
    core::BufferInsertionEngine engine(pc.design, pc.graph, t, ic);
    const core::InsertionResult res = engine.run();
    const double secs = sw.seconds();
    report.count_insertion(res, ic.num_samples);
    report.count_samples(cfg.eval_samples);
    const feas::YieldResult y = feas::YieldEvaluator(pc.graph, res.plan, t)
                                    .evaluate(eval, cfg.eval_samples,
                                              cfg.threads);
    std::printf("%-22s %4d %7.2f %8.2f %8.2f %9.2f\n", v.name,
                res.plan.physical_buffers(), res.plan.average_range(),
                100.0 * y.yield, 100.0 * (y.yield - yo.yield), secs);
    std::fflush(stdout);
  }
  return report.write();
}

}  // namespace

int main() { return run(); }
