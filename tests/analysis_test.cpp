// Tests for the src/analysis subsystem: criticality and clock-binning
// engines, their scenario-kind plumbing, and the determinism / one-pass
// sampling contracts the reports advertise.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/binning.h"
#include "analysis/criticality.h"
#include "core/baselines.h"
#include "mc/period_mc.h"
#include "mc/sampler.h"
#include "netlist/generator.h"
#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "ssta/seq_graph.h"
#include "util/json.h"

namespace clktune::analysis {
namespace {

using util::Json;
using util::JsonError;

struct Fixture {
  netlist::Design design;
  ssta::SeqGraph graph;
  double period_mu = 0.0;
  double period_sigma = 0.0;
  feas::TuningPlan plan;

  Fixture() {
    netlist::SyntheticSpec spec;
    spec.num_flipflops = 40;
    spec.num_gates = 300;
    spec.seed = 611;
    design = netlist::generate(spec);
    graph = ssta::extract_seq_graph(design);
    const mc::Sampler sampler(graph, 20160314);
    const mc::PeriodStats stats = mc::sample_min_period(sampler, 800);
    period_mu = stats.mu();
    period_sigma = stats.sigma();
    plan = core::top_k_criticality_plan(graph, sampler, period_mu, 400,
                                        /*k=*/6, /*steps=*/8, /*step_ps=*/4.0);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

// --------------------------------------------------------- criticality

TEST(CriticalityTest, ReportIsDeterministicAcrossThreadCounts) {
  const Fixture& f = fixture();
  CriticalityOptions options;
  options.top_k = 10;
  const CriticalityReport one = compute_criticality(
      f.graph, f.plan, f.period_mu, /*eval_seed=*/77, /*samples=*/500,
      options, /*threads=*/1);
  const CriticalityReport four = compute_criticality(
      f.graph, f.plan, f.period_mu, /*eval_seed=*/77, /*samples=*/500,
      options, /*threads=*/4);
  EXPECT_EQ(one.to_json().dump(), four.to_json().dump())
      << "integer partials summed in worker order must make the report "
         "bit-identical for any thread count";
}

TEST(CriticalityTest, ReportRoundTripsThroughJsonByteExactly) {
  const Fixture& f = fixture();
  CriticalityOptions options;
  options.top_k = 8;
  const CriticalityReport report = compute_criticality(
      f.graph, f.plan, f.period_mu, /*eval_seed=*/5, /*samples=*/300, options);
  const std::string bytes = report.to_json().dump();
  const CriticalityReport back = CriticalityReport::from_json(Json::parse(bytes));
  EXPECT_EQ(back.to_json().dump(), bytes);
}

TEST(CriticalityTest, RankingInvariantsHold) {
  const Fixture& f = fixture();
  CriticalityOptions options;
  options.top_k = 10;
  const std::uint64_t samples = 500;
  const CriticalityReport report = compute_criticality(
      f.graph, f.plan, f.period_mu, /*eval_seed=*/77, samples, options);

  ASSERT_FALSE(report.arcs.empty()) << "every chip has a binding arc";
  EXPECT_LE(report.arcs.size(), static_cast<std::size_t>(options.top_k));
  EXPECT_LE(report.registers.size(), static_cast<std::size_t>(options.top_k));
  EXPECT_EQ(report.samples, samples);
  EXPECT_LE(report.untunable, samples);
  for (std::size_t i = 0; i < report.arcs.size(); ++i) {
    const ArcCriticality& arc = report.arcs[i];
    EXPECT_GT(arc.binding_before, 0u) << "never-binding arcs are not ranked";
    EXPECT_LE(arc.binding_before, samples);
    EXPECT_LE(arc.binding_after, samples);
    EXPECT_DOUBLE_EQ(arc.before,
                     static_cast<double>(arc.binding_before) / samples);
    EXPECT_DOUBLE_EQ(arc.after,
                     static_cast<double>(arc.binding_after) / samples);
    if (i > 0) {
      EXPECT_GE(report.arcs[i - 1].binding_before, arc.binding_before)
          << "rank order is binding_before descending";
    }
    const ssta::SeqArc& topo = f.graph.arcs[arc.arc];
    EXPECT_EQ(topo.src_ff, arc.src_ff);
    EXPECT_EQ(topo.dst_ff, arc.dst_ff);
  }
  for (const RegisterCriticality& reg : report.registers) {
    EXPECT_GT(reg.binding_before, 0u);
    EXPECT_LE(reg.binding_before, samples);
    EXPECT_DOUBLE_EQ(reg.before,
                     static_cast<double>(reg.binding_before) / samples);
  }
}

// Satellite: the hoisted core::criticality_incidence must reproduce the
// exact plan top_k_criticality_plan builds — one statistic, two callers.
TEST(CriticalityTest, IncidenceAgreesWithBaselinePlan) {
  const Fixture& f = fixture();
  const mc::Sampler sampler(f.graph, 424242);
  const double t = f.period_mu;
  const std::uint64_t samples = 600;
  const int k = 5, steps = 8;
  const double step_ps = 3.0;

  const std::vector<std::uint64_t> incidence =
      core::criticality_incidence(f.graph, sampler, t, samples, /*threads=*/2);
  const feas::TuningPlan a =
      core::plan_from_incidence(f.graph, incidence, k, steps, step_ps);
  const feas::TuningPlan b = core::top_k_criticality_plan(
      f.graph, sampler, t, samples, k, steps, step_ps, /*threads=*/2);

  ASSERT_EQ(a.buffers.size(), b.buffers.size());
  for (std::size_t i = 0; i < a.buffers.size(); ++i) {
    EXPECT_EQ(a.buffers[i].ff, b.buffers[i].ff);
    EXPECT_EQ(a.buffers[i].k_lo, b.buffers[i].k_lo);
    EXPECT_EQ(a.buffers[i].k_hi, b.buffers[i].k_hi);
  }
  EXPECT_EQ(a.group_of, b.group_of);
  EXPECT_EQ(a.num_groups, b.num_groups);
  EXPECT_DOUBLE_EQ(a.step_ps, b.step_ps);
}

// ------------------------------------------------------------- binning

std::vector<double> three_rung_ladder(const Fixture& f) {
  return {f.period_mu - f.period_sigma, f.period_mu,
          f.period_mu + 2.0 * f.period_sigma};
}

TEST(BinningTest, ReportIsDeterministicAcrossThreadCounts) {
  const Fixture& f = fixture();
  const std::vector<double> ladder = three_rung_ladder(f);
  const BinningReport one = compute_binning(f.graph, f.plan, ladder,
                                            /*eval_seed=*/33, /*samples=*/500,
                                            /*threads=*/1);
  const BinningReport four = compute_binning(f.graph, f.plan, ladder,
                                             /*eval_seed=*/33, /*samples=*/500,
                                             /*threads=*/4);
  EXPECT_EQ(one.to_json().dump(), four.to_json().dump());
}

TEST(BinningTest, ReportRoundTripsThroughJsonByteExactly) {
  const Fixture& f = fixture();
  const BinningReport report =
      compute_binning(f.graph, f.plan, three_rung_ladder(f),
                      /*eval_seed=*/9, /*samples=*/300);
  const std::string bytes = report.to_json().dump();
  const BinningReport back = BinningReport::from_json(Json::parse(bytes));
  EXPECT_EQ(back.to_json().dump(), bytes);
}

TEST(BinningTest, SellHistogramInvariantsHold) {
  const Fixture& f = fixture();
  const std::vector<double> ladder = three_rung_ladder(f);
  const std::uint64_t samples = 600;
  const BinningReport report = compute_binning(f.graph, f.plan, ladder,
                                               /*eval_seed=*/33, samples);

  ASSERT_EQ(report.bins.size(), ladder.size());
  std::uint64_t sold = 0, cumulative = 0;
  for (std::size_t r = 0; r < report.bins.size(); ++r) {
    const BinYield& bin = report.bins[r];
    EXPECT_DOUBLE_EQ(bin.period_ps, ladder[r]);
    EXPECT_EQ(bin.tuned.samples, samples);
    EXPECT_EQ(bin.original.samples, samples);
    // Slower clock can only help setup and leaves hold untouched, so
    // feasibility — and therefore yield — is monotone up the ladder.
    if (r > 0) {
      EXPECT_GE(bin.tuned.passing, report.bins[r - 1].tuned.passing);
      EXPECT_GE(bin.original.passing, report.bins[r - 1].original.passing);
    }
    // Chips feasible at rung r are exactly the ones whose fastest
    // feasible bin is <= r.
    cumulative += bin.sell;
    EXPECT_EQ(bin.tuned.passing, cumulative);
    EXPECT_DOUBLE_EQ(bin.sell_fraction,
                     static_cast<double>(bin.sell) / samples);
    sold += bin.sell;
  }
  EXPECT_EQ(sold + report.unsellable, samples)
      << "every chip sells in exactly one bin or not at all";
  EXPECT_DOUBLE_EQ(report.unsellable_fraction,
                   static_cast<double>(report.unsellable) / samples);
  if (sold > 0) {
    EXPECT_GE(report.expected_sell_period_ps, ladder.front());
    EXPECT_LE(report.expected_sell_period_ps, ladder.back());
  }
}

// The ISSUE's headline binning property: one sampling pass regardless of
// ladder length.  The engine's counters expose exactly this — sampling
// passes advance by `samples`, rung evaluations by samples * rungs * 2
// (tuned + original per rung).
TEST(BinningTest, LadderSharesOneSamplingPass) {
  const Fixture& f = fixture();
  obs::Counter& passes = obs::Registry::global().counter(
      "clktune_binning_sampling_passes_total",
      "Monte-Carlo chips sampled by binning runs (one pass per chip, "
      "shared by every rung)");
  obs::Counter& evals = obs::Registry::global().counter(
      "clktune_binning_rung_evals_total",
      "Per-rung feasibility evaluations by binning runs (tuned and "
      "original count separately)");
  const std::uint64_t passes_before = passes.value();
  const std::uint64_t evals_before = evals.value();

  const std::uint64_t samples = 400;
  const std::vector<double> ladder = three_rung_ladder(f);
  compute_binning(f.graph, f.plan, ladder, /*eval_seed=*/12, samples);

  EXPECT_EQ(passes.value() - passes_before, samples)
      << "a longer ladder must not resample chips per rung";
  EXPECT_EQ(evals.value() - evals_before, samples * ladder.size() * 2);
}

TEST(BinningTest, RejectsMalformedLadders) {
  const Fixture& f = fixture();
  EXPECT_THROW(compute_binning(f.graph, f.plan, {}, 1, 10), JsonError);
  EXPECT_THROW(compute_binning(f.graph, f.plan, {500.0, 400.0}, 1, 10),
               JsonError)
      << "ladder must be strictly ascending";
  EXPECT_THROW(compute_binning(f.graph, f.plan, {400.0, 400.0}, 1, 10),
               JsonError);
  EXPECT_THROW(compute_binning(f.graph, f.plan, {-5.0, 400.0}, 1, 10),
               JsonError)
      << "periods must be positive";
}

// ------------------------------------------------- scenario-kind plumbing

Json tiny_scenario_doc() {
  Json design = Json::object();
  Json synth = Json::object();
  synth.set("name", "tiny");
  synth.set("num_flipflops", 30);
  synth.set("num_gates", 220);
  synth.set("seed", 5);
  design.set("synthetic", std::move(synth));

  Json clock = Json::object();
  clock.set("sigma_offset", 0.0);
  clock.set("period_samples", 400);

  Json insertion = Json::object();
  insertion.set("num_samples", 200);
  insertion.set("steps", 8);

  Json evaluation = Json::object();
  evaluation.set("samples", 400);
  evaluation.set("seed", 99);

  Json doc = Json::object();
  doc.set("name", "tiny");
  doc.set("design", std::move(design));
  doc.set("clock", std::move(clock));
  doc.set("insertion", std::move(insertion));
  doc.set("evaluation", std::move(evaluation));
  return doc;
}

Json criticality_doc() {
  Json doc = tiny_scenario_doc();
  doc.set("kind", "criticality");
  Json options = Json::object();
  options.set("top_k", 6);
  doc.set("criticality", std::move(options));
  return doc;
}

Json binning_doc() {
  Json doc = tiny_scenario_doc();
  doc.set("kind", "binning");
  Json bins = Json::object();
  Json rungs = Json::array();
  for (double offset : {-1.0, 0.0, 2.0}) rungs.push_back(Json(offset));
  bins.set("sigma_offsets", std::move(rungs));
  doc.set("bins", std::move(bins));
  return doc;
}

TEST(ScenarioKindTest, KindTaggedSpecsRoundTripByteExactly) {
  for (const Json& doc : {criticality_doc(), binning_doc()}) {
    const auto spec = scenario::ScenarioSpec::from_json(doc);
    const std::string bytes = spec.to_json().dump();
    const auto back = scenario::ScenarioSpec::from_json(Json::parse(bytes));
    EXPECT_EQ(back.to_json().dump(), bytes);
  }
}

TEST(ScenarioKindTest, YieldSpecAndResultCarryNoKindMember) {
  // Backward compatibility: documents and artifacts of the original
  // workload must serialise byte-identically to before kinds existed.
  const auto spec = scenario::ScenarioSpec::from_json(tiny_scenario_doc());
  EXPECT_EQ(spec.kind, scenario::ScenarioKind::yield);
  EXPECT_EQ(spec.to_json().find("kind"), nullptr);
  const scenario::ScenarioResult result = scenario::run_scenario(spec, 2);
  EXPECT_EQ(result.to_json().find("kind"), nullptr);
}

TEST(ScenarioKindTest, RejectsInvalidKindDocuments) {
  using scenario::ScenarioSpec;
  {  // unknown kind name
    Json doc = tiny_scenario_doc();
    doc.set("kind", "voltage");
    EXPECT_THROW(ScenarioSpec::from_json(doc), JsonError);
  }
  {  // criticality options on a yield scenario
    Json doc = tiny_scenario_doc();
    Json options = Json::object();
    options.set("top_k", 4);
    doc.set("criticality", std::move(options));
    EXPECT_THROW(ScenarioSpec::from_json(doc), JsonError);
  }
  {  // bins on a criticality scenario
    Json doc = criticality_doc();
    Json bins = Json::object();
    Json rungs = Json::array();
    rungs.push_back(Json(500.0));
    bins.set("periods_ps", std::move(rungs));
    doc.set("bins", std::move(bins));
    EXPECT_THROW(ScenarioSpec::from_json(doc), JsonError);
  }
  {  // binning without a ladder
    Json doc = tiny_scenario_doc();
    doc.set("kind", "binning");
    EXPECT_THROW(ScenarioSpec::from_json(doc), JsonError);
  }
  {  // both explicit periods and sigma rungs
    Json doc = binning_doc();
    Json bins = doc.at("bins");
    Json rungs = Json::array();
    rungs.push_back(Json(400.0));
    bins.set("periods_ps", std::move(rungs));
    doc.set("bins", std::move(bins));
    EXPECT_THROW(ScenarioSpec::from_json(doc), JsonError);
  }
  {  // non-ascending explicit ladder
    Json doc = binning_doc();
    Json bins = Json::object();
    Json rungs = Json::array();
    rungs.push_back(Json(500.0));
    rungs.push_back(Json(400.0));
    bins.set("periods_ps", std::move(rungs));
    doc.set("bins", std::move(bins));
    EXPECT_THROW(ScenarioSpec::from_json(doc), JsonError);
  }
  {  // yield_target is a yield-kind concept
    Json doc = criticality_doc();
    doc.set("yield_target", 0.9);
    EXPECT_THROW(ScenarioSpec::from_json(doc), JsonError);
  }
}

TEST(ScenarioKindTest, CriticalityResultRoundTripsByteExactly) {
  const auto spec = scenario::ScenarioSpec::from_json(criticality_doc());
  const scenario::ScenarioResult result = scenario::run_scenario(spec, 2);
  EXPECT_EQ(result.kind, scenario::ScenarioKind::criticality);
  const std::string bytes = result.to_json().dump();
  EXPECT_EQ(Json::parse(bytes).at("kind").as_string(), "criticality");
  const auto back = scenario::ScenarioResult::from_json(Json::parse(bytes));
  EXPECT_EQ(back.to_json().dump(), bytes);
  EXPECT_FALSE(back.criticality.arcs.empty());
}

TEST(ScenarioKindTest, BinningResultRoundTripsAndDerivesSigmaLadder) {
  const auto spec = scenario::ScenarioSpec::from_json(binning_doc());
  const scenario::ScenarioResult result = scenario::run_scenario(spec, 2);
  EXPECT_EQ(result.kind, scenario::ScenarioKind::binning);
  ASSERT_EQ(result.binning.bins.size(), 3u);
  // sigma_offsets rungs resolve against the measured period distribution:
  // mu + offset * sigma, ascending.
  for (std::size_t r = 0; r < 3; ++r) {
    const double offset = r == 0 ? -1.0 : (r == 1 ? 0.0 : 2.0);
    EXPECT_DOUBLE_EQ(result.binning.bins[r].period_ps,
                     result.period_mu_ps + offset * result.period_sigma_ps);
  }
  const std::string bytes = result.to_json().dump();
  const auto back = scenario::ScenarioResult::from_json(Json::parse(bytes));
  EXPECT_EQ(back.to_json().dump(), bytes);
}

}  // namespace
}  // namespace clktune::analysis
