// Machine-readable benchmark artifacts (BENCH_<name>.json).
//
// BenchReport is the one way a performance number leaves this codebase:
// the reproduction benches under bench/, and the `clktune bench load`
// harness, all write their results through it, so every BENCH_*.json in
// existence carries the same provenance stamp (git_sha / hostname /
// threads), the same throughput fields, and the same `faults_injected`
// guard that lets scripts/perf_gate.sh refuse chaos-polluted runs.
// It lives in the library (not bench/bench_common.h, which also drags in
// circuit preparation) precisely so the CLI can produce gateable
// artifacts without linking the reproduction benches.
#pragma once

#include <cstdint>
#include <string>

#include "core/engine.h"
#include "util/alloc_counter.h"
#include "util/json.h"
#include "util/timer.h"

namespace clktune::bench {

/// The commit the bench binary ran against: GITHUB_SHA when CI exports it,
/// otherwise `git rev-parse` against the working tree, otherwise
/// "unknown".  Advisory provenance — never used for comparisons.
std::string bench_git_sha();

std::string bench_hostname();

/// Machine-readable benchmark artifact: construct one at the top of a bench
/// main, feed it counters as the run progresses, and `return report.write()`
/// at the end.  Writes BENCH_<name>.json into the working directory with
/// wall-clock seconds, samples/sec throughput, total MILP nodes and the
/// main thread's heap-allocation count, so perf trajectories are diffable
/// across commits (CI uploads them as artifacts; scripts/perf_gate.sh
/// holds the checked-in bench/baselines/ trajectory against them).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Monte-Carlo sample problems processed (solves, yield checks, draws).
  void count_samples(std::uint64_t n) { samples_ += n; }
  void count_milp_nodes(std::uint64_t n) { milp_nodes_ += n; }
  /// One engine run: its configured sample count plus its MILP nodes.
  void count_insertion(const core::InsertionResult& res,
                       std::uint64_t samples) {
    samples_ += samples;
    milp_nodes_ += res.step1.milp_nodes + res.step2a.milp_nodes +
                   res.step2b.milp_nodes;
  }
  /// Faults observed outside this process (a load-tested daemon's
  /// clktune_fault_injected_total, say).  Added to the report's
  /// faults_injected so the perf gate rejects a run whose *server* was a
  /// chaos experiment, not just one whose client was.
  void count_external_faults(std::uint64_t n) { external_faults_ += n; }
  /// Extra named metric, appended after the standard fields.
  void metric(const std::string& key, double value) {
    extra_.set(key, value);
  }
  /// Extra structured member (per-verb breakdowns, cross-check verdicts);
  /// the perf gate only reads top-level numbers, so nested detail is free.
  void metric_json(const std::string& key, util::Json value) {
    extra_.set(key, std::move(value));
  }
  /// Headline samples/sec measured externally (micro benches); by default
  /// the report derives it as samples / wall_seconds.
  void override_samples_per_sec(double sps) { samples_per_sec_ = sps; }

  /// The artifact as it would be written (wall clock read now).
  util::Json to_json() const;

  /// Writes BENCH_<name>.json into the working directory; returns 0 on
  /// success, 1 on an I/O failure (bench mains return this from main()).
  int write() const;

 private:
  std::string name_;
  util::Stopwatch wall_;
  util::AllocCounterScope allocs_;
  std::uint64_t samples_ = 0;
  std::uint64_t milp_nodes_ = 0;
  std::uint64_t external_faults_ = 0;
  double samples_per_sec_ = -1.0;
  util::Json extra_ = util::Json::object();
};

}  // namespace clktune::bench
