#include "load/workload.h"

#include <array>
#include <stdexcept>

namespace clktune::load {

namespace {

/// splitmix64 (Steele, Lea, Flood 2014): tiny, stateless-per-step and
/// fully specified, so schedules are bit-identical on every platform —
/// std::discrete_distribution offers no such guarantee.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  /// Uniform double in [0, 1).
  double next_unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

}  // namespace

const char* to_string(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::run_warm:
      return "run_warm";
    case OpKind::run_fresh:
      return "run_fresh";
    case OpKind::sweep:
      return "sweep";
    case OpKind::status_probe:
      return "status";
    case OpKind::job_flow:
      return "job_flow";
  }
  return "unknown";
}

WorkloadMix WorkloadMix::from_json(const util::Json& doc) {
  // A spec lists exactly the kinds it wants: unspecified weights are zero,
  // so `{"status": 1}` means a status-only workload, not "defaults plus
  // more status".
  WorkloadMix mix;
  mix.run_warm = mix.run_fresh = mix.sweep = mix.status = mix.job_flow = 0.0;
  struct Member {
    const char* key;
    double* weight;
  };
  const Member members[] = {
      {"run_warm", &mix.run_warm}, {"run_fresh", &mix.run_fresh},
      {"sweep", &mix.sweep},       {"status", &mix.status},
      {"job_flow", &mix.job_flow},
  };
  for (const auto& [key, value] : doc.as_object()) {
    bool known = false;
    for (const Member& member : members) {
      if (key != member.key) continue;
      const double weight = value.as_double();
      if (weight < 0.0)
        throw std::invalid_argument("workload mix weight \"" + key +
                                    "\" must be >= 0");
      *member.weight = weight;
      known = true;
      break;
    }
    if (!known)
      throw std::invalid_argument("unknown workload mix member \"" + key +
                                  "\"");
  }
  if (!(mix.total() > 0.0))
    throw std::invalid_argument("workload mix weights sum to zero");
  return mix;
}

WorkloadMix WorkloadMix::from_spec(const std::string& spec) {
  if (!spec.empty() && spec[0] == '{')
    return from_json(util::Json::parse(spec));
  return from_json(util::read_json_file(spec));
}

util::Json WorkloadMix::to_json() const {
  util::Json j = util::Json::object();
  j.set("run_warm", run_warm);
  j.set("run_fresh", run_fresh);
  j.set("sweep", sweep);
  j.set("status", status);
  j.set("job_flow", job_flow);
  return j;
}

std::vector<Op> make_schedule(const WorkloadMix& mix, std::uint64_t seed,
                              std::size_t count,
                              const std::vector<std::size_t>& target_weights) {
  if (target_weights.empty())
    throw std::invalid_argument("make_schedule: no targets");
  std::size_t weight_total = 0;
  for (std::size_t w : target_weights) weight_total += w;
  if (weight_total == 0)
    throw std::invalid_argument("make_schedule: target weights sum to zero");
  if (!(mix.total() > 0.0))
    throw std::invalid_argument("make_schedule: mix weights sum to zero");

  const std::array<std::pair<OpKind, double>, 5> kinds = {{
      {OpKind::run_warm, mix.run_warm},
      {OpKind::run_fresh, mix.run_fresh},
      {OpKind::sweep, mix.sweep},
      {OpKind::status_probe, mix.status},
      {OpKind::job_flow, mix.job_flow},
  }};

  SplitMix64 rng{seed};
  std::vector<Op> schedule;
  schedule.reserve(count);
  std::uint64_t fresh = 0;
  for (std::size_t i = 0; i < count; ++i) {
    Op op;
    // Kind draw: walk the cumulative mix weights.
    double r = rng.next_unit() * mix.total();
    op.kind = kinds.back().first;
    for (const auto& [kind, weight] : kinds) {
      if (r < weight) {
        op.kind = kind;
        break;
      }
      r -= weight;
    }
    if (op.kind == OpKind::run_fresh || op.kind == OpKind::job_flow)
      op.fresh_ordinal = fresh++;
    // Target draw: integer arithmetic over the member weights.
    std::uint64_t t = rng.next() % weight_total;
    for (std::size_t member = 0; member < target_weights.size(); ++member) {
      if (t < target_weights[member]) {
        op.target = member;
        break;
      }
      t -= target_weights[member];
    }
    schedule.push_back(op);
  }
  return schedule;
}

std::uint64_t fresh_ops(const std::vector<Op>& schedule) {
  std::uint64_t fresh = 0;
  for (const Op& op : schedule)
    fresh += op.kind == OpKind::run_fresh || op.kind == OpKind::job_flow;
  return fresh;
}

util::Json default_base_scenario() {
  return util::Json::parse(R"({
    "name": "load",
    "design": {"synthetic": {"name": "load", "num_flipflops": 30,
                             "num_gates": 220, "seed": 5}},
    "clock": {"sigma_offset": 0.0, "period_samples": 400},
    "insertion": {"num_samples": 200, "steps": 8},
    "evaluation": {"samples": 400, "seed": 99}
  })");
}

util::Json fresh_scenario(const util::Json& base, std::uint64_t index) {
  util::Json doc = base;  // deep copy (value semantics)
  const std::string suffix = "_f" + std::to_string(index);
  doc.set("name", base.at("name").as_string() + suffix);
  util::Json* design = doc.find("design");
  util::Json* synthetic =
      design != nullptr ? design->find("synthetic") : nullptr;
  if (synthetic == nullptr)
    throw util::JsonError("fresh_scenario: base lacks design.synthetic");
  synthetic->set("name", synthetic->at("name").as_string() + suffix);
  synthetic->set("seed",
                 synthetic->at("seed").as_uint() + 1 + index);
  return doc;
}

util::Json sweep_campaign(const util::Json& base) {
  util::Json doc = util::Json::object();
  doc.set("name", base.at("name").as_string() + "_campaign");
  doc.set("base", base);
  util::Json sweep = util::Json::object();
  sweep.set("clock.sigma_offset",
            util::Json(util::JsonArray{util::Json(0.0), util::Json(1.0)}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

}  // namespace clktune::load
