// Process-wide observability metrics: counters, gauges and fixed-bucket
// latency histograms behind one registry, exposed as a JSON snapshot and
// as Prometheus text exposition.
//
// Design constraints, in order:
//   1. Hot-path recording must be cheap enough for the Monte-Carlo kernel:
//      a Counter::inc / Histogram::record is one relaxed atomic RMW on a
//      thread-sharded cache line — no locks, no allocation, no branches on
//      the recording path.  Call sites cache the metric reference (a
//      function-local static), so the registry's name lookup happens once
//      per process, never per event.
//   2. Reads are snapshot-consistent per metric: value() / snapshot() sum
//      the shards with acquire ordering.  Concurrent recording never loses
//      events — a snapshot taken mid-burst sees a valid prefix.
//   3. Exposition is deterministic: the registry iterates metrics in
//      sorted identity order, so two snapshots of the same state are
//      byte-identical.
//
// Histograms use fixed log2 buckets: a raw value v (an integer, typically
// nanoseconds) lands in bucket bit_width(v) — 65 buckets cover the whole
// uint64 range with one `std::bit_width` instruction and no configuration.
// `unit_scale` converts raw units into exposition units (1e-9 for ns →
// seconds), so Prometheus `le` bounds come out in seconds as the naming
// convention requires.
//
// Naming follows Prometheus: metric names match [a-zA-Z_:][a-zA-Z0-9_:]*,
// counters end in `_total`, duration histograms in `_seconds`.  Metric
// identity is name + sorted label set; registering the same identity twice
// returns the same object, registering it as a different kind throws.
// docs/observability.md is the metric catalog.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"

namespace clktune::obs {

/// Monotonic nanoseconds (steady_clock).  Every duration metric in the
/// process derives from this — never from wall-clock time, which steps.
std::uint64_t steady_now_ns() noexcept;

/// Recording shards per metric.  Threads are assigned a fixed slot
/// round-robin, so two concurrent recorders usually touch different cache
/// lines; readers sum all shards.
inline constexpr std::size_t kShards = 8;

/// This thread's shard slot (stable for the thread's lifetime).
std::size_t shard_slot() noexcept;

/// Monotonically increasing event count.  Thread-safe, lock-free.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    shards_[shard_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_)
      total += shard.v.load(std::memory_order_acquire);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// A point-in-time signed level (queue depth, in-flight units).  Writers
/// use add()/set(); a gauge is not sharded — levels are updated at event
/// granularity, not sample granularity.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed log2-bucket histogram over non-negative integer values (raw
/// units; by convention nanoseconds for durations).  Recording is one
/// bit_width plus two relaxed adds on this thread's shard.
class Histogram {
 public:
  /// Bucket b holds values with bit_width(v) == b: b=0 is exactly 0,
  /// b>=1 covers [2^(b-1), 2^b).  65 buckets span all of uint64.
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v) noexcept {
    Shard& shard = shards_[shard_slot()];
    shard.buckets[static_cast<std::size_t>(std::bit_width(v))].fetch_add(
        1, std::memory_order_relaxed);
    shard.sum.fetch_add(v, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};  ///< non-cumulative
    std::uint64_t sum_raw = 0;
    double unit_scale = 1.0;

    /// Total recordings — derived from the buckets, so count and buckets
    /// are consistent by construction within one snapshot.
    std::uint64_t count() const;
    double sum() const { return static_cast<double>(sum_raw) * unit_scale; }
    /// Inclusive upper bound of bucket b, in exposition units.
    double upper_bound(std::size_t b) const;
    /// Upper-bound estimate of the q-quantile (0 < q <= 1) in exposition
    /// units; 0 when empty.
    double quantile(double q) const;
  };

  /// unit_scale set by the registry at registration (1e-9 for ns).
  Snapshot snapshot(double unit_scale) const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  Shard shards_[kShards];
};

/// Sorted key/value label pairs; part of a metric's identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// The process-wide metric directory.  global() is the instance every
/// layer records into; standalone instances exist for tests.  Lookup
/// methods are mutex-guarded (cache the returned reference on hot paths);
/// returned references stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  /// Find-or-create.  `help` is recorded on first registration.  Throws
  /// std::invalid_argument on an invalid name/label or when the identity
  /// is already registered as a different kind (or, for histograms, a
  /// different unit_scale).
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       double unit_scale, const Labels& labels = {});

  /// {"counters":{id:n,...},"gauges":{id:v,...},
  ///  "histograms":{id:{"count","sum","p50","p90","p99",
  ///                    "buckets":[[le,count],...]},...}}
  /// Identities are `name` or `name{k="v",...}` with labels sorted;
  /// histogram buckets list only non-empty ones, non-cumulative.
  util::Json snapshot_json() const;

  /// Prometheus text exposition format (HELP/TYPE per metric family,
  /// cumulative `_bucket{le=...}` + `_sum` + `_count` for histograms,
  /// label values escaped per the spec).
  std::string prometheus_text() const;

 private:
  enum class Kind { counter, gauge, histogram };
  struct Entry {
    Kind kind;
    std::string name;
    Labels labels;
    std::string help;
    double unit_scale = 1.0;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(Kind kind, const std::string& name, const std::string& help,
               const Labels& labels, double unit_scale);

  mutable std::mutex mutex_;
  /// Keyed by the exposition identity; sorted, so iteration (and thus
  /// every exposition) is deterministic.
  std::map<std::string, Entry> entries_;
};

/// Records elapsed steady-clock nanoseconds into a histogram at scope
/// exit.  The histogram should be registered with unit_scale 1e-9.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) : h_(&h), start_(steady_now_ns()) {}
  ~ScopedTimer() { h_->record(steady_now_ns() - start_); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::uint64_t start_;
};

}  // namespace clktune::obs
