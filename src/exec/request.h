// The unit of work of the execution layer.
//
// A Request is a *resolved* scenario or campaign document plus the knobs
// that are orthogonal to it: a result cache, a thread budget and a shard
// slice.  None of the knobs may change result bytes — only where results
// come from (cache), how fast they arrive (threads) and which slice of the
// campaign expansion runs (shard).  An Outcome is the matching artifact —
// ScenarioResult or CampaignSummary — together with execution diagnostics,
// and Outcome::artifact() is byte-for-byte what `clktune run` / `sweep`
// print for the same inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/campaign.h"
#include "scenario/scenario.h"
#include "util/json.h"

namespace clktune::cache {
class ResultCache;
}

namespace clktune::exec {

/// A malformed or unsupported execution request (bad shard bounds, a
/// backend asked to run a kind it cannot, a remote failure).
class ExecError : public std::runtime_error {
 public:
  explicit ExecError(const std::string& what) : std::runtime_error(what) {}
};

/// Cells a round-robin shard slice covers: of `total` expansion indices,
/// shard `index` of `count` runs those with idx % count == index.  The one
/// definition of the slice arithmetic — Request::shard_cells and the merge
/// validation both derive from it, keeping `report --merge` the exact
/// inverse of `--shard`.
constexpr std::size_t shard_cell_count(std::size_t total, std::size_t index,
                                       std::size_t count) {
  return total / count + (index < total % count ? 1 : 0);
}

struct Request {
  enum class Kind { scenario, campaign };

  Kind kind = Kind::scenario;
  scenario::ScenarioSpec scenario;  ///< kind == scenario
  scenario::CampaignSpec campaign;  ///< kind == campaign

  /// Thread budget override.  For a scenario request this caps the inner
  /// (Monte-Carlo) loops; for a campaign it is the worker count across
  /// cells (each cell runs its inner loops single-threaded).  0 keeps the
  /// campaign document's own `threads` (or hardware concurrency).
  int threads = 0;

  /// Optional content-addressed result cache, not owned.  Backends look
  /// every cell up by content key before computing and store computed
  /// results back.  RemoteExecutor ignores it — the daemon owns its own.
  cache::ResultCache* cache = nullptr;

  /// Run only expansion indices with index % shard_count == shard_index.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;

  /// Explicit expansion-index selection (campaign only): when non-empty the
  /// request runs exactly these global indices — the work-unit form that
  /// fleet dispatch feeds to daemons, strictly increasing, in range, and
  /// mutually exclusive with a shard slice.  The resulting summary is a
  /// partial (its cells cover just these indices); callers reassemble the
  /// full campaign from the streamed per-cell events, not from it.
  std::vector<std::size_t> indices;

  static Request for_scenario(scenario::ScenarioSpec spec);
  static Request for_campaign(scenario::CampaignSpec spec);

  /// Parses a scenario or campaign document, auto-detected by its shape
  /// (a campaign has a "base" member).  Throws util::JsonError.
  static Request from_json(const util::Json& doc);

  /// The resolved document (ScenarioSpec / CampaignSpec::to_json) — the
  /// wire form RemoteExecutor sends; parsing it back reproduces the spec.
  util::Json document() const;

  /// Number of cells the request expands to (1 for a scenario).
  std::size_t expansion_size() const;

  /// Number of cells this request's selection covers: the explicit index
  /// list when present, the shard slice otherwise.
  std::size_t shard_cells() const;

  /// Throws ExecError on out-of-range shard bounds (or a sharded
  /// scenario), and on an explicit index list that is non-campaign,
  /// combined with a shard slice, out of range or not strictly increasing.
  void validate() const;
};

struct Outcome {
  Request::Kind kind = Request::Kind::scenario;
  scenario::ScenarioResult result;   ///< kind == scenario
  scenario::CampaignSummary summary; ///< kind == campaign

  // Diagnostics (never serialised into the artifact).
  std::string backend;                 ///< which executor produced this
  std::uint64_t scenarios_run = 0;     ///< cells produced (computed + cached)
  std::uint64_t scenarios_cached = 0;  ///< cells served from a cache
  std::uint64_t targets_missed = 0;    ///< cells below their yield target
  double seconds = 0.0;                ///< wall clock of the whole request

  bool ok() const { return targets_missed == 0; }
  bool fully_cached() const {
    return scenarios_run > 0 && scenarios_cached == scenarios_run;
  }

  /// The artifact `clktune run` / `clktune sweep` print: the scenario
  /// result or the campaign summary, timing-free (deterministic) unless
  /// `include_timing`.
  util::Json artifact(bool include_timing = false) const;

  /// Builds a campaign outcome from its finished summary, deriving every
  /// diagnostic counter — the one place backends map a summary onto an
  /// Outcome, so a new diagnostic field cannot be copied in some
  /// backends and forgotten in others.
  static Outcome from_summary(scenario::CampaignSummary summary,
                              std::string backend);
};

}  // namespace clktune::exec
