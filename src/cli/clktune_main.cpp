// clktune — command-line driver for the scenario / campaign pipeline.
//
//   clktune run <scenario.json>    run one scenario, write a result artifact
//   clktune sweep <campaign.json>  expand + run a parameter sweep
//   clktune report <result.json>   render a saved artifact as a table
//
// Common options:
//   -o, --output <path>   write the JSON artifact here (default: stdout)
//   -t, --threads <n>     worker threads (default: hardware concurrency)
//       --timings         include wall-clock fields (artifact is then no
//                         longer bit-identical across runs)
//       --compact         single-line JSON instead of pretty-printed
//       --quiet           suppress progress lines on stderr
//
// Exit codes: 0 success, 1 usage error, 2 bad input file, 3 a scenario
// missed its yield target.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.h"
#include "scenario/campaign.h"
#include "scenario/scenario.h"
#include "util/json.h"

namespace {

using clktune::util::Json;

struct Options {
  std::string command;
  std::string input;
  std::string output;
  int threads = 0;
  bool timings = false;
  bool compact = false;
  bool quiet = false;
};

void print_usage(std::FILE* to) {
  std::fputs(
      "usage: clktune <command> <file> [options]\n"
      "\n"
      "commands:\n"
      "  run <scenario.json>    execute one scenario\n"
      "  sweep <campaign.json>  expand and execute a parameter sweep\n"
      "  report <result.json>   print a saved result artifact as a table\n"
      "\n"
      "options:\n"
      "  -o, --output <path>    write the JSON artifact to <path>\n"
      "  -t, --threads <n>      worker threads (0 = hardware concurrency)\n"
      "      --timings          include wall-clock fields in artifacts\n"
      "      --compact          single-line JSON output\n"
      "      --quiet            no progress lines on stderr\n",
      to);
}

int parse_options(int argc, char** argv, Options& opt) {
  if (argc < 3) {
    print_usage(stderr);
    return 1;
  }
  opt.command = argv[1];
  opt.input = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "-o" || arg == "--output") && i + 1 < argc) {
      opt.output = argv[++i];
    } else if ((arg == "-t" || arg == "--threads") && i + 1 < argc) {
      opt.threads = std::atoi(argv[++i]);
    } else if (arg == "--timings") {
      opt.timings = true;
    } else if (arg == "--compact") {
      opt.compact = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      std::fprintf(stderr, "clktune: unknown option '%s'\n", arg.c_str());
      print_usage(stderr);
      return 1;
    }
  }
  return 0;
}

void emit(const Options& opt, const Json& artifact) {
  const int indent = opt.compact ? -1 : 2;
  if (opt.output.empty()) {
    const std::string text = artifact.dump(indent);
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fputc('\n', stdout);
  } else {
    clktune::util::write_json_file(opt.output, artifact, indent);
    if (!opt.quiet)
      std::fprintf(stderr, "clktune: wrote %s\n", opt.output.c_str());
  }
}

int cmd_run(const Options& opt) {
  const Json doc = clktune::util::read_json_file(opt.input);
  const auto spec = clktune::scenario::ScenarioSpec::from_json(doc);
  if (!opt.quiet)
    std::fprintf(stderr, "clktune: running scenario %s\n", spec.name.c_str());
  const clktune::scenario::ScenarioResult result =
      clktune::scenario::run_scenario(spec, opt.threads);
  emit(opt, result.to_json(opt.timings));
  if (!opt.quiet)
    std::fprintf(stderr,
                 "clktune: %s  T=%.1f ps  Nb=%d  yield %.2f%% -> %.2f%%"
                 "  (%.1f s)\n",
                 result.name.c_str(), result.clock_period_ps,
                 result.insertion.plan.physical_buffers(),
                 100.0 * result.yield.original.yield,
                 100.0 * result.yield.tuned.yield, result.seconds);
  return result.met_target ? 0 : 3;
}

int cmd_sweep(const Options& opt) {
  const Json doc = clktune::util::read_json_file(opt.input);
  auto spec = clktune::scenario::CampaignSpec::from_json(doc);
  if (opt.threads > 0) spec.threads = opt.threads;
  const clktune::scenario::CampaignRunner runner(std::move(spec));
  const std::size_t total = runner.spec().expansion_size();
  if (!opt.quiet)
    std::fprintf(stderr, "clktune: campaign %s, %zu scenarios\n",
                 runner.spec().name.c_str(), total);

  const clktune::scenario::CampaignSummary summary = runner.run(
      [&](std::size_t index, const clktune::scenario::ScenarioResult& r) {
        if (!opt.quiet)
          std::fprintf(stderr,
                       "clktune: [%zu/%zu] %s  yield %.2f%% -> %.2f%%\n",
                       index + 1, total, r.name.c_str(),
                       100.0 * r.yield.original.yield,
                       100.0 * r.yield.tuned.yield);
      });
  emit(opt, summary.to_json(opt.timings));
  if (!opt.quiet)
    std::fprintf(stderr,
                 "clktune: %llu scenarios, %llu missed target  (%.1f s)\n",
                 static_cast<unsigned long long>(summary.scenarios_run),
                 static_cast<unsigned long long>(summary.targets_missed),
                 summary.total_seconds);
  return summary.targets_missed == 0 ? 0 : 3;
}

/// Rebuilds a TableRow from a serialised scenario-result object.
clktune::core::TableRow row_from_json(const Json& r) {
  clktune::core::TableRow row;
  row.circuit = r.at("name").as_string();
  row.setting = r.at("setting").as_string();
  row.clock_ps = r.at("clock_period_ps").as_double();
  const Json& design = r.at("design");
  row.ns = static_cast<int>(design.at("num_flipflops").as_int());
  row.ng = static_cast<int>(design.at("num_gates").as_int());
  const Json& plan = r.at("insertion").at("plan");
  row.nb = static_cast<int>(plan.at("physical_buffers").as_int());
  row.ab = plan.at("average_range").as_double();
  const Json& yield = r.at("yield");
  row.yield = 100.0 * yield.at("tuned").at("yield").as_double();
  row.yield_original = 100.0 * yield.at("original").at("yield").as_double();
  if (const Json* seconds = r.find("seconds"))
    row.runtime_s = seconds->as_double();
  return row;
}

int cmd_report(const Options& opt) {
  const Json doc = clktune::util::read_json_file(opt.input);
  std::vector<clktune::core::TableRow> rows;
  if (doc.contains("results")) {
    // Campaign summary.
    for (const Json& r : doc.at("results").as_array())
      rows.push_back(row_from_json(r));
    std::printf("campaign %s: %llu scenarios, %llu missed target\n",
                doc.at("name").as_string().c_str(),
                static_cast<unsigned long long>(
                    doc.at("scenarios_run").as_uint()),
                static_cast<unsigned long long>(
                    doc.at("targets_missed").as_uint()));
  } else {
    rows.push_back(row_from_json(doc));
  }
  std::ostringstream table;
  clktune::core::print_table(table, rows);
  std::fputs(table.str().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  const int usage = parse_options(argc, argv, opt);
  if (usage != 0) return usage;
  try {
    if (opt.command == "run") return cmd_run(opt);
    if (opt.command == "sweep") return cmd_sweep(opt);
    if (opt.command == "report") return cmd_report(opt);
    std::fprintf(stderr, "clktune: unknown command '%s'\n",
                 opt.command.c_str());
    print_usage(stderr);
    return 1;
  } catch (const clktune::util::JsonError& e) {
    std::fprintf(stderr, "clktune: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "clktune: %s\n", e.what());
    return 2;
  }
}
