// Gate-level sequential netlist: primary I/O, combinational gates and
// flip-flops, with fanin/fanout connectivity and a topological order over
// the combinational portion.
//
// A single clock domain is assumed (as in the paper); per-flip-flop clock
// skew and placement live in the enclosing Design.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/cell_library.h"
#include "util/assert.h"

namespace clktune::netlist {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

enum class NodeKind : std::uint8_t {
  primary_input,
  primary_output,
  gate,
  flipflop,
};

struct Node {
  NodeKind kind = NodeKind::gate;
  int cell = -1;  ///< CellLibrary id (gates and flip-flops)
  std::string name;
  std::vector<NodeId> fanins;   ///< for a flip-flop: the single D driver
  std::vector<NodeId> fanouts;  ///< driven nodes (derived by finalize())
};

class Netlist {
 public:
  NodeId add_primary_input(std::string name);
  /// A primary output taps exactly one driver.
  NodeId add_primary_output(std::string name, NodeId driver);
  NodeId add_gate(int cell, std::string name, std::vector<NodeId> fanins);
  /// Flip-flop; D driver may be attached later with set_ff_driver().
  NodeId add_flipflop(int cell, std::string name, NodeId d_driver = kNoNode);
  void set_ff_driver(NodeId ff, NodeId d_driver);

  /// Computes fanouts and the combinational topological order; validates
  /// that the combinational subgraph is acyclic.  Must be called after
  /// construction and before timing queries.
  void finalize();

  bool finalized() const { return finalized_; }

  const Node& node(NodeId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  std::size_t num_nodes() const { return nodes_.size(); }

  const std::vector<NodeId>& flipflops() const { return flipflops_; }
  const std::vector<NodeId>& gates() const { return gates_; }
  const std::vector<NodeId>& primary_inputs() const { return inputs_; }
  const std::vector<NodeId>& primary_outputs() const { return outputs_; }

  /// Gates in combinational topological order (sources first).
  const std::vector<NodeId>& topo_gates() const {
    CLKTUNE_EXPECTS(finalized_);
    return topo_gates_;
  }
  /// Position of a gate in topo_gates(); -1 for non-gates.
  int topo_index(NodeId id) const {
    return topo_index_[static_cast<std::size_t>(id)];
  }

  /// Index of a flip-flop within flipflops(); -1 otherwise.
  int ff_index(NodeId id) const {
    return ff_index_[static_cast<std::size_t>(id)];
  }

  NodeId find(const std::string& name) const;

 private:
  NodeId add_node(Node node);

  std::vector<Node> nodes_;
  std::vector<NodeId> flipflops_, gates_, inputs_, outputs_;
  std::vector<NodeId> topo_gates_;
  std::vector<int> topo_index_, ff_index_;
  std::unordered_map<std::string, NodeId> by_name_;
  bool finalized_ = false;
};

/// 2-D placement point (abstract distance units).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

inline double manhattan(const Point& a, const Point& b) {
  const double dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const double dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

/// A complete design: netlist + library + per-FF clock skew + placement.
struct Design {
  std::string name;
  Netlist netlist;
  CellLibrary library = CellLibrary::standard();
  /// Clock arrival offset (ps) per flip-flop, indexed like
  /// netlist.flipflops().  Deterministic design-time skew ("we added clock
  /// skews so that they have more critical paths", Section IV).
  std::vector<double> clock_skew_ps;
  /// Placement per flip-flop, indexed like netlist.flipflops().
  std::vector<Point> ff_position;
  /// Minimum spacing between flip-flops (distance unit for grouping).
  double ff_pitch = 10.0;

  double skew(int ff_idx) const {
    return clock_skew_ps.empty() ? 0.0
                                 : clock_skew_ps[static_cast<std::size_t>(ff_idx)];
  }
};

}  // namespace clktune::netlist
