file(REMOVE_RECURSE
  "CMakeFiles/clktune.dir/src/cli/clktune_main.cpp.o"
  "CMakeFiles/clktune.dir/src/cli/clktune_main.cpp.o.d"
  "clktune"
  "clktune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clktune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
