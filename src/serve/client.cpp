#include "serve/client.h"

#include <utility>

#include "util/socket.h"

namespace clktune::serve {

using util::Json;

bool SubmitOutcome::ok() const {
  const Json* event = final_event.find("event");
  if (event == nullptr || event->as_string() != "done") return false;
  const Json* ok_flag = final_event.find("ok");
  return ok_flag != nullptr && ok_flag->as_bool();
}

std::uint64_t SubmitOutcome::targets_missed() const {
  const Json* missed = final_event.find("targets_missed");
  return missed == nullptr ? 0 : missed->as_uint();
}

SubmitOutcome submit_raw(const std::string& host, std::uint16_t port,
                         const Json& request, const EventCallback& on_event,
                         const SubmitOptions& options) {
  const util::TcpSocket connection =
      util::tcp_connect(host, port, options.connect_timeout_ms);
  if (options.io_timeout_ms > 0)
    util::tcp_set_recv_timeout(connection, options.io_timeout_ms);
  util::tcp_write_all(connection, request.dump(-1) + "\n");

  SubmitOutcome outcome;
  util::LineReader reader(connection);
  std::string line;
  while (reader.read_line(line)) {
    if (line.empty()) continue;
    Json event = Json::parse(line);
    if (on_event) on_event(event);
    const std::string kind = event.at("event").as_string();
    if (kind == "result") {
      const std::size_t index = event.at("index").as_uint();
      if (outcome.results.size() <= index) outcome.results.resize(index + 1);
      outcome.cached += event.at("cached").as_bool() ? 1 : 0;
      outcome.results[index] = event.at("result");
      continue;
    }
    outcome.final_event = std::move(event);
    break;  // done / status / error terminates the exchange
  }
  return outcome;
}

SubmitOutcome submit_request(const std::string& host, std::uint16_t port,
                             const std::string& cmd, const Json& doc,
                             const EventCallback& on_event) {
  Json request = Json::object();
  request.set("cmd", cmd);
  if (!doc.is_null()) request.set("doc", doc);
  return submit_raw(host, port, request, on_event);
}

SubmitOutcome submit_document(const std::string& host, std::uint16_t port,
                              const Json& doc,
                              const EventCallback& on_event) {
  const std::string cmd = doc.contains("base") ? "sweep" : "run";
  return submit_request(host, port, cmd, doc, on_event);
}

}  // namespace clktune::serve
