#include "feas/yield_eval.h"

#include <algorithm>
#include <cmath>

#include "feas/diff_constraints.h"
#include "util/assert.h"
#include "util/thread_pool.h"

namespace clktune::feas {
namespace {

std::int64_t floor_steps(double value_ps, double step_ps) {
  return static_cast<std::int64_t>(std::floor(value_ps / step_ps + 1e-9));
}

}  // namespace

YieldEvaluator::YieldEvaluator(const ssta::SeqGraph& graph, TuningPlan plan,
                               double clock_period_ps)
    : graph_(&graph), plan_(std::move(plan)), clock_period_(clock_period_ps) {
  CLKTUNE_EXPECTS(clock_period_ps > 0.0);
  if (plan_.group_of.size() != plan_.buffers.size()) plan_.reset_groups();
  var_of_ff_.assign(static_cast<std::size_t>(graph.num_ffs), -1);
  for (std::size_t i = 0; i < plan_.buffers.size(); ++i) {
    const int ff = plan_.buffers[i].ff;
    CLKTUNE_EXPECTS(ff >= 0 && ff < graph.num_ffs);
    var_of_ff_[static_cast<std::size_t>(ff)] = plan_.group_of[i];
  }
  group_windows_.clear();
  for (int g = 0; g < plan_.num_groups; ++g)
    group_windows_.push_back(plan_.group_window(g));
}

std::optional<std::vector<std::int64_t>> YieldEvaluator::solve_sample(
    const mc::Sampler& sampler, std::uint64_t k) const {
  const ssta::SeqGraph& graph = *graph_;
  thread_local mc::ArcSample arc_sample;
  sampler.evaluate(k, arc_sample);

  const double step = plan_.step_ps;
  const int ref = plan_.num_groups;  // reference node (x = 0)
  DiffConstraints system(plan_.num_groups + 1);

  // Window bounds vs the reference node.
  for (int g = 0; g < plan_.num_groups; ++g) {
    system.add(g, ref, group_windows_[static_cast<std::size_t>(g)].k_hi);
    system.add(ref, g, -group_windows_[static_cast<std::size_t>(g)].k_lo);
  }

  for (std::size_t e = 0; e < graph.arcs.size(); ++e) {
    const ssta::SeqArc& arc = graph.arcs[e];
    const auto i = static_cast<std::size_t>(arc.src_ff);
    const auto j = static_cast<std::size_t>(arc.dst_ff);
    // Setup:  x_i - x_j <= T - s_j - dmax + q_j - q_i
    const double setup_c = clock_period_ - graph.setup_ps[j] -
                           arc_sample.dmax[e] + graph.skew_ps[j] -
                           graph.skew_ps[i];
    // Hold:   x_j - x_i <= dmin - h_j + q_i - q_j
    const double hold_c = arc_sample.dmin[e] - graph.hold_ps[j] +
                          graph.skew_ps[i] - graph.skew_ps[j];
    const int vi = var_of_ff_[i];
    const int vj = var_of_ff_[j];
    const int ui = vi < 0 ? ref : vi;
    const int uj = vj < 0 ? ref : vj;
    if (ui == uj) {
      // Same variable (or both unbuffered): tuning cancels.
      if (setup_c < 0.0 || hold_c < 0.0) return std::nullopt;
      continue;
    }
    system.add(ui, uj, floor_steps(setup_c, step));
    system.add(uj, ui, floor_steps(hold_c, step));
  }

  auto potentials = system.solve();
  if (!potentials.has_value()) return std::nullopt;
  // Normalise so the reference node sits at zero.
  const std::int64_t base = (*potentials)[static_cast<std::size_t>(ref)];
  for (std::int64_t& p : *potentials) p -= base;
  return potentials;
}

bool YieldEvaluator::sample_feasible(const mc::Sampler& sampler,
                                     std::uint64_t k) const {
  return solve_sample(sampler, k).has_value();
}

std::optional<std::vector<int>> YieldEvaluator::find_configuration(
    const mc::Sampler& sampler, std::uint64_t k) const {
  auto potentials = solve_sample(sampler, k);
  if (!potentials.has_value()) return std::nullopt;
  std::vector<int> config(static_cast<std::size_t>(plan_.num_groups));
  for (int g = 0; g < plan_.num_groups; ++g)
    config[static_cast<std::size_t>(g)] =
        static_cast<int>((*potentials)[static_cast<std::size_t>(g)]);
  return config;
}

YieldResult YieldEvaluator::evaluate(const mc::Sampler& sampler,
                                     std::uint64_t samples,
                                     int threads) const {
  const std::size_t workers = util::resolve_thread_count(
      threads <= 0 ? 0 : static_cast<std::size_t>(threads));
  std::vector<std::uint64_t> passing(workers, 0);
  util::parallel_chunks(static_cast<std::size_t>(samples), workers,
                        [&](std::size_t w, std::size_t begin, std::size_t end) {
                          for (std::size_t k = begin; k < end; ++k)
                            passing[w] += sample_feasible(sampler, k) ? 1 : 0;
                        });
  YieldResult result;
  result.samples = samples;
  for (std::uint64_t p : passing) result.passing += p;
  result.yield = samples == 0
                     ? 0.0
                     : static_cast<double>(result.passing) /
                           static_cast<double>(samples);
  result.ci95 = util::yield_ci95(result.yield, samples);
  return result;
}

YieldResult original_yield(const ssta::SeqGraph& graph, double clock_period_ps,
                           const mc::Sampler& sampler, std::uint64_t samples,
                           int threads) {
  TuningPlan empty;
  empty.step_ps = 1.0;
  empty.reset_groups();
  const YieldEvaluator eval(graph, std::move(empty), clock_period_ps);
  return eval.evaluate(sampler, samples, threads);
}

YieldReport evaluate_yield_report(const ssta::SeqGraph& graph,
                                  const TuningPlan& plan,
                                  double clock_period_ps,
                                  std::uint64_t eval_seed,
                                  std::uint64_t samples, int threads) {
  YieldReport report;
  report.clock_period_ps = clock_period_ps;
  report.eval_seed = eval_seed;
  const mc::Sampler sampler(graph, eval_seed);
  report.original =
      original_yield(graph, clock_period_ps, sampler, samples, threads);
  report.tuned = YieldEvaluator(graph, plan, clock_period_ps)
                     .evaluate(sampler, samples, threads);
  return report;
}

}  // namespace clktune::feas
