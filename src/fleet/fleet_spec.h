// Fleet pool specifications: which daemons a campaign fans out across.
//
// A fleet is a list of `clktune serve` endpoints with per-daemon weights.
// It comes from either a compact CLI list ("hostA:7001,hostB:7002") or a
// JSON fleet file:
//
//   {
//     "daemons": [
//       {"host": "127.0.0.1", "port": 7001, "weight": 2},
//       {"host": "10.0.0.7", "port": 7001},
//       "10.0.0.8:7001"
//     ]
//   }
//
// The weight is the number of work units a daemon holds in flight
// concurrently (its dispatcher-thread count in FleetExecutor) — a
// twice-as-wide machine gets weight 2 and is simply handed units twice as
// fast by the work-stealing queue; no static split is ever computed from
// the weights.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace clktune::fleet {

struct FleetMember {
  std::string host;
  std::uint16_t port = 0;
  /// Concurrent in-flight work units this daemon serves (>= 1).
  std::size_t weight = 1;

  std::string endpoint() const {
    return host + ":" + std::to_string(port);
  }
};

struct FleetSpec {
  std::vector<FleetMember> members;

  /// Parses a comma-separated "host:port[,host:port...]" list (the
  /// `--daemons` CLI form, every weight 1).  Throws exec::ExecError on an
  /// empty list, a missing port or one outside 1..65535.
  static FleetSpec parse_daemon_list(const std::string& list);

  /// Parses a fleet document: {"daemons":[...]} where each entry is either
  /// a "host:port" string or {"host","port"[,"weight"]} (unknown members
  /// rejected, weight >= 1).  Throws util::JsonError on shape errors and
  /// exec::ExecError on value errors.
  static FleetSpec from_json(const util::Json& doc);

  /// Reads and parses a fleet file.
  static FleetSpec from_file(const std::string& path);

  /// Appends another spec's members (CLI `--daemons` + `--fleet` combine).
  void merge(const FleetSpec& other);
};

}  // namespace clktune::fleet
