#include <gtest/gtest.h>

#include <cmath>

#include "core/sample_solver.h"
#include "mc/sampler.h"
#include "ssta/seq_graph.h"

namespace clktune::core {
namespace {

// Deterministic graph helpers: canonical forms with zero spread so arc
// delays equal their means exactly (sample index is irrelevant).
ssta::Canon fixed_delay(double mu) {
  ssta::Canon c;
  c.mu = mu;
  return c;
}

ssta::SeqGraph make_graph(int num_ffs,
                          std::vector<std::tuple<int, int, double, double>>
                              arcs /* src, dst, dmax, dmin */,
                          double setup = 2.0, double hold = 0.5) {
  ssta::SeqGraph g;
  g.num_ffs = num_ffs;
  g.setup_ps.assign(static_cast<std::size_t>(num_ffs), setup);
  g.hold_ps.assign(static_cast<std::size_t>(num_ffs), hold);
  g.skew_ps.assign(static_cast<std::size_t>(num_ffs), 0.0);
  for (const auto& [s, d, dmax, dmin] : arcs) {
    ssta::SeqArc arc;
    arc.src_ff = s;
    arc.dst_ff = d;
    arc.dmax = fixed_delay(dmax);
    arc.dmin = fixed_delay(dmin);
    g.arcs.push_back(arc);
  }
  g.arcs_of_ff.assign(static_cast<std::size_t>(num_ffs), {});
  for (std::size_t e = 0; e < g.arcs.size(); ++e) {
    g.arcs_of_ff[static_cast<std::size_t>(g.arcs[e].src_ff)].push_back(
        static_cast<int>(e));
    if (g.arcs[e].dst_ff != g.arcs[e].src_ff)
      g.arcs_of_ff[static_cast<std::size_t>(g.arcs[e].dst_ff)].push_back(
          static_cast<int>(e));
  }
  return g;
}

mc::ArcSample sample_of(const ssta::SeqGraph& g) {
  mc::ArcSample s;
  const mc::Sampler sampler(g, 1);
  sampler.evaluate(0, s);
  return s;
}

TEST(CandidateWindowsTest, FactoryFunctions) {
  const CandidateWindows f = CandidateWindows::floating(5, 20);
  EXPECT_EQ(f.count(), 5);
  EXPECT_EQ(f.k_lo[2], -20);
  EXPECT_EQ(f.k_hi[2], 20);
  const CandidateWindows n = CandidateWindows::none(5);
  EXPECT_EQ(n.count(), 0);
}

TEST(SampleSolverTest, PassingChipNeedsNoBuffers) {
  // Two-FF ring with lots of slack at T = 100.
  auto g = make_graph(2, {{0, 1, 50.0, 30.0}, {1, 0, 40.0, 25.0}});
  const SampleSolver solver(g, 1.0, 100.0, CandidateWindows::floating(2, 20));
  const SampleSolution sol =
      solver.solve(sample_of(g), ConcentrateMode::none);
  EXPECT_TRUE(sol.fixable);
  EXPECT_EQ(sol.nk, 0);
  EXPECT_TRUE(sol.tunings.empty());
}

TEST(SampleSolverTest, SingleViolationFixedWithOneBuffer) {
  // Arc 0->1 needs 105 > T=100; arc 1->0 has slack; shifting FF1 later by
  // >= 7 steps fixes it (setup=2).
  auto g = make_graph(2, {{0, 1, 103.0, 60.0}, {1, 0, 40.0, 25.0}});
  const SampleSolver solver(g, 1.0, 100.0, CandidateWindows::floating(2, 20));
  const SampleSolution sol =
      solver.solve(sample_of(g), ConcentrateMode::toward_zero);
  EXPECT_TRUE(sol.fixable);
  EXPECT_EQ(sol.nk, 1);
  ASSERT_EQ(sol.tunings.size(), 1u);
  // Minimal |x|: either x1 = +5 or x0 = -5 (T - s - d = -5).
  EXPECT_EQ(std::abs(sol.tunings[0].second), 5);
}

TEST(SampleSolverTest, ConcentrationMinimisesMagnitudeNotJustCount) {
  auto g = make_graph(2, {{0, 1, 103.0, 60.0}, {1, 0, 40.0, 25.0}});
  const SampleSolver solver(g, 1.0, 100.0, CandidateWindows::floating(2, 20));
  const SampleSolution with_conc =
      solver.solve(sample_of(g), ConcentrateMode::toward_zero);
  const SampleSolution without =
      solver.solve(sample_of(g), ConcentrateMode::none);
  EXPECT_EQ(with_conc.nk, without.nk);
  int conc_mag = 0;
  for (const auto& [ff, k] : with_conc.tunings) conc_mag += std::abs(k);
  EXPECT_EQ(conc_mag, 5);  // exactly the violation amount
}

TEST(SampleSolverTest, SelfLoopViolationIsUnfixable) {
  auto g = make_graph(1, {{0, 0, 103.0, 60.0}});
  const SampleSolver solver(g, 1.0, 100.0, CandidateWindows::floating(1, 20));
  const SampleSolution sol =
      solver.solve(sample_of(g), ConcentrateMode::none);
  EXPECT_FALSE(sol.fixable);
}

TEST(SampleSolverTest, NonCandidateArcViolationIsUnfixable) {
  auto g = make_graph(2, {{0, 1, 103.0, 60.0}});
  CandidateWindows w = CandidateWindows::none(2);
  const SampleSolver solver(g, 1.0, 100.0, w);
  const SampleSolution sol =
      solver.solve(sample_of(g), ConcentrateMode::none);
  EXPECT_FALSE(sol.fixable);
}

TEST(SampleSolverTest, ChainRequiresTwoBuffers) {
  // Three stages in a line, two independent violations that share no FF:
  // 0->1 and 2->3 both fail; no single buffer fixes both.
  auto g = make_graph(4, {{0, 1, 104.0, 60.0},
                          {1, 2, 50.0, 30.0},
                          {2, 3, 104.0, 60.0}});
  const SampleSolver solver(g, 1.0, 100.0, CandidateWindows::floating(4, 20));
  const SampleSolution sol =
      solver.solve(sample_of(g), ConcentrateMode::toward_zero);
  EXPECT_TRUE(sol.fixable);
  EXPECT_EQ(sol.nk, 2);
}

TEST(SampleSolverTest, CascadedViolationUsesLazyConstraints) {
  // 0->1 fails; delaying FF1 pushes 1->2 to the brink, so the solver must
  // discover 1->2 lazily and either split the shift or use FF2 as well.
  // Arc 1->2 has slack 3 at x=0; fixing 0->1 alone needs x1 >= 6.
  auto g = make_graph(3, {{0, 1, 104.0, 60.0},   // slack -6
                          {1, 2, 95.0, 55.0}});  // slack  3
  const SampleSolver solver(g, 1.0, 100.0, CandidateWindows::floating(3, 20));
  const SampleSolution sol =
      solver.solve(sample_of(g), ConcentrateMode::toward_zero);
  EXPECT_TRUE(sol.fixable);
  // One buffer can still do it: x0 = -6 touches nothing else.  The solver
  // must find nk = 1 (not 2) and a *globally* valid assignment.
  EXPECT_EQ(sol.nk, 1);
  // Verify global feasibility of the returned assignment.
  std::vector<int> x(3, 0);
  for (const auto& [ff, k] : sol.tunings) x[static_cast<std::size_t>(ff)] = k;
  EXPECT_LE(x[0] + 104.0 + 2.0, 100.0 + x[1] + 1e-9);
  EXPECT_LE(x[1] + 95.0 + 2.0, 100.0 + x[2] + 1e-9);
  EXPECT_GE(x[0] + 60.0, x[1] + 0.5 - 1e-9);
  EXPECT_GE(x[1] + 55.0, x[2] + 0.5 - 1e-9);
}

TEST(SampleSolverTest, HoldViolationFixedByTuning) {
  // Arc 0->1 min delay too small: dmin 0.3 < hold 0.5.  Pulling FF1's clock
  // earlier (x1 < 0) fixes hold; setup has slack.
  auto g = make_graph(2, {{0, 1, 50.0, 0.3}, {1, 0, 40.0, 25.0}});
  const SampleSolver solver(g, 0.1, 100.0, CandidateWindows::floating(2, 20));
  const SampleSolution sol =
      solver.solve(sample_of(g), ConcentrateMode::toward_zero);
  EXPECT_TRUE(sol.fixable);
  EXPECT_EQ(sol.nk, 1);
  std::vector<double> x(2, 0.0);
  for (const auto& [ff, k] : sol.tunings)
    x[static_cast<std::size_t>(ff)] = k * 0.1;
  EXPECT_GE(x[0] + 0.3, x[1] + 0.5 - 1e-9);  // hold met after tuning
}

TEST(SampleSolverTest, InsufficientWindowMakesChipUnfixable) {
  // Violation of 30 steps but windows only reach +-20.
  auto g = make_graph(2, {{0, 1, 130.0, 80.0}});
  CandidateWindows w = CandidateWindows::floating(2, 10);
  const SampleSolver solver(g, 1.0, 100.0, w);
  const SampleSolution sol =
      solver.solve(sample_of(g), ConcentrateMode::none);
  // x0 - x1 must be <= -32; windows allow at most 10 + 10 = 20.
  EXPECT_FALSE(sol.fixable);
}

TEST(SampleSolverTest, CombinedWindowsJustSuffice) {
  auto g = make_graph(2, {{0, 1, 115.0, 80.0}});  // needs x1 - x0 >= 17
  CandidateWindows w = CandidateWindows::floating(2, 10);
  const SampleSolver solver(g, 1.0, 100.0, w);
  const SampleSolution sol =
      solver.solve(sample_of(g), ConcentrateMode::toward_zero);
  EXPECT_TRUE(sol.fixable);
  EXPECT_EQ(sol.nk, 2);  // both buffers needed
}

TEST(SampleSolverTest, FixedAsymmetricWindowsRespected) {
  // FF1 window only positive [0, 10]; FF0 pinned (non-candidate).
  auto g = make_graph(2, {{0, 1, 104.0, 60.0}});
  CandidateWindows w = CandidateWindows::none(2);
  w.candidate[1] = 1;
  w.k_lo[1] = 0;
  w.k_hi[1] = 10;
  const SampleSolver solver(g, 1.0, 100.0, w);
  const SampleSolution sol =
      solver.solve(sample_of(g), ConcentrateMode::toward_zero);
  EXPECT_TRUE(sol.fixable);
  ASSERT_EQ(sol.tunings.size(), 1u);
  EXPECT_EQ(sol.tunings[0].first, 1);
  EXPECT_EQ(sol.tunings[0].second, 6);
}

TEST(SampleSolverTest, ConcentrateTowardTargetHitsTarget) {
  // Feasible band for x1 is [6, ~30); target 9 should be matched exactly.
  auto g = make_graph(2, {{0, 1, 104.0, 60.0}});
  CandidateWindows w = CandidateWindows::none(2);
  w.candidate[1] = 1;
  w.k_lo[1] = 0;
  w.k_hi[1] = 20;
  const SampleSolver solver(g, 1.0, 100.0, w);
  std::vector<double> targets = {0.0, 9.0};
  const SampleSolution sol =
      solver.solve(sample_of(g), ConcentrateMode::toward_target, &targets);
  ASSERT_EQ(sol.tunings.size(), 1u);
  EXPECT_EQ(sol.tunings[0].second, 9);
  // And the scattered pre-concentration value is recorded separately.
  ASSERT_EQ(sol.mincount_tunings.size(), 1u);
}

TEST(SampleSolverTest, ArcConstantsUseFlooring) {
  auto g = make_graph(2, {{0, 1, 50.0, 30.0}});
  const SampleSolver solver(g, 3.0, 100.0, CandidateWindows::floating(2, 20));
  std::vector<std::int64_t> setup, hold;
  solver.arc_constants(sample_of(g), setup, hold);
  ASSERT_EQ(setup.size(), 1u);
  // setup_c = 100 - 2 - 50 = 48 -> floor(48/3) = 16.
  EXPECT_EQ(setup[0], 16);
  // hold_c = 30 - 0.5 = 29.5 -> floor(29.5/3) = 9.
  EXPECT_EQ(hold[0], 9);
}

TEST(SampleSolverTest, TwoIndependentComponentsBothSolved) {
  auto g = make_graph(4, {{0, 1, 104.0, 60.0}, {2, 3, 107.0, 60.0}});
  const SampleSolver solver(g, 1.0, 100.0, CandidateWindows::floating(4, 20));
  const SampleSolution sol =
      solver.solve(sample_of(g), ConcentrateMode::toward_zero);
  EXPECT_TRUE(sol.fixable);
  EXPECT_EQ(sol.nk, 2);
  int mag = 0;
  for (const auto& [ff, k] : sol.tunings) mag += std::abs(k);
  EXPECT_EQ(mag, 6 + 9);
}

}  // namespace
}  // namespace clktune::core
