// Cross-module integration and property tests.
//
// The strongest invariant in the system: the per-sample ILP solver
// (core::SampleSolver) and the yield evaluator (feas::YieldEvaluator) are
// independent implementations of the same feasibility question — MILP with
// big-M indicators on one side, Bellman-Ford difference constraints on the
// other.  For identical windows they must agree chip by chip.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/baselines.h"
#include "core/engine.h"
#include "core/sample_solver.h"
#include "feas/yield_eval.h"
#include "mc/period_mc.h"
#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "netlist/nominal_sta.h"
#include "ssta/seq_graph.h"

namespace clktune {
namespace {

struct World {
  netlist::Design design;
  ssta::SeqGraph graph;
  double t = 0.0;
  double step = 0.0;

  explicit World(std::uint64_t seed, int ns = 90, int ng = 800) {
    netlist::SyntheticSpec spec;
    spec.num_flipflops = ns;
    spec.num_gates = ng;
    spec.seed = seed;
    design = netlist::generate(spec);
    graph = ssta::extract_seq_graph(design);
    const mc::Sampler sampler(graph, 77);
    t = mc::sample_min_period(sampler, 1500).mu();
    step = netlist::nominal_min_period(design) / 8.0 / 20.0;
  }
};

class SolverEvaluatorAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SolverEvaluatorAgreement, FixableIffFeasible) {
  const World w(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  // Windows: every FF carries a buffer with a fixed asymmetric window.
  core::CandidateWindows windows = core::CandidateWindows::none(w.graph.num_ffs);
  feas::TuningPlan plan;
  plan.step_ps = w.step;
  for (int f = 0; f < w.graph.num_ffs; ++f) {
    const int lo = -(f % 15);       // varied asymmetric windows, all
    const int hi = 3 + (f % 18);    // containing zero
    windows.candidate[static_cast<std::size_t>(f)] = 1;
    windows.k_lo[static_cast<std::size_t>(f)] = lo;
    windows.k_hi[static_cast<std::size_t>(f)] = hi;
    plan.buffers.push_back(feas::BufferWindow{f, lo, hi});
  }
  plan.reset_groups();

  const core::SampleSolver solver(w.graph, w.step, w.t, windows);
  const feas::YieldEvaluator evaluator(w.graph, plan, w.t);
  const mc::Sampler sampler(w.graph, 1234);

  mc::ArcSample arcs;
  int disagreements = 0;
  int fixable = 0, infeasible = 0;
  for (std::uint64_t k = 0; k < 400; ++k) {
    sampler.evaluate(k, arcs);
    const core::SampleSolution sol =
        solver.solve(arcs, core::ConcentrateMode::none);
    const bool evaluator_ok = evaluator.sample_feasible(sampler, k);
    disagreements += sol.fixable != evaluator_ok;
    fixable += sol.fixable;
    infeasible += !evaluator_ok;
  }
  EXPECT_EQ(disagreements, 0);
  EXPECT_GT(fixable, 0);  // the comparison must exercise both outcomes
}

INSTANTIATE_TEST_SUITE_P(Sweep, SolverEvaluatorAgreement,
                         ::testing::Range(0, 6));

TEST(SolverSolutionValidity, TuningsSatisfyEveryArcConstraint) {
  const World w(17);
  const core::SampleSolver solver(
      w.graph, w.step, w.t,
      core::CandidateWindows::floating(w.graph.num_ffs, 20));
  const mc::Sampler sampler(w.graph, 42);
  mc::ArcSample arcs;
  std::vector<std::int64_t> setup, hold;
  int checked = 0;
  for (std::uint64_t k = 0; k < 250; ++k) {
    sampler.evaluate(k, arcs);
    const core::SampleSolution sol =
        solver.solve(arcs, core::ConcentrateMode::toward_zero);
    if (!sol.fixable || sol.nk == 0) continue;
    ++checked;
    solver.arc_constants(arcs, setup, hold);
    std::vector<std::int64_t> x(static_cast<std::size_t>(w.graph.num_ffs), 0);
    for (const auto& [ff, kv] : sol.tunings)
      x[static_cast<std::size_t>(ff)] = kv;
    for (std::size_t e = 0; e < w.graph.arcs.size(); ++e) {
      const ssta::SeqArc& arc = w.graph.arcs[e];
      const std::int64_t xi = x[static_cast<std::size_t>(arc.src_ff)];
      const std::int64_t xj = x[static_cast<std::size_t>(arc.dst_ff)];
      EXPECT_LE(xi - xj, setup[e]) << "sample " << k << " arc " << e;
      EXPECT_LE(xj - xi, hold[e]) << "sample " << k << " arc " << e;
    }
    // And the support size matches the reported optimum.
    EXPECT_EQ(static_cast<int>(sol.tunings.size()), sol.nk);
  }
  EXPECT_GT(checked, 20);
}

TEST(SolverOptimality, CountMatchesExhaustiveOnSmallChips) {
  // On a tiny graph, compare the solver's n_k with brute force over all
  // single- and two-buffer supports (values via difference constraints).
  const World w(23, 16, 140);
  const core::SampleSolver solver(
      w.graph, w.step, w.t,
      core::CandidateWindows::floating(w.graph.num_ffs, 20));
  const mc::Sampler sampler(w.graph, 9);
  mc::ArcSample arcs;
  std::vector<std::int64_t> setup, hold;

  const auto feasible_with_support = [&](const std::vector<int>& support) {
    feas::TuningPlan p;
    p.step_ps = w.step;
    for (int ff : support) p.buffers.push_back(feas::BufferWindow{ff, -20, 20});
    p.reset_groups();
    // Evaluate via the independent Bellman-Ford path.
    const feas::YieldEvaluator ev(w.graph, p, w.t);
    return ev;
  };

  int compared = 0;
  for (std::uint64_t k = 0; k < 300 && compared < 40; ++k) {
    sampler.evaluate(k, arcs);
    const core::SampleSolution sol =
        solver.solve(arcs, core::ConcentrateMode::none);
    if (!sol.fixable || sol.nk == 0 || sol.nk > 2) continue;
    ++compared;
    // No empty-support solution can exist (there are violations).
    feas::TuningPlan empty;
    empty.step_ps = w.step;
    empty.reset_groups();
    EXPECT_FALSE(feas::YieldEvaluator(w.graph, empty, w.t)
                     .sample_feasible(sampler, k));
    if (sol.nk == 2) {
      // No single buffer may suffice.
      for (int f = 0; f < w.graph.num_ffs; ++f) {
        EXPECT_FALSE(
            feasible_with_support({f}).sample_feasible(sampler, k))
            << "solver claimed nk=2 but ff" << f << " alone fixes sample "
            << k;
      }
    }
  }
  EXPECT_GT(compared, 10);
}

TEST(EndToEnd, BenchFileThroughWholeFlow) {
  // s27 from assets, through skew injection, insertion and configuration.
  // Falls back to an embedded copy when the test runs outside the repo
  // root (ctest working directories vary).
  netlist::Design design;
  bool loaded = false;
  for (const char* path : {"assets/s27.bench", "../assets/s27.bench",
                           "../../assets/s27.bench",
                           "../../../assets/s27.bench"}) {
    try {
      design = netlist::read_bench_file(path);
      loaded = true;
      break;
    } catch (const std::exception&) {
    }
  }
  if (!loaded) {
    std::istringstream s27(
        "INPUT(G0)\nINPUT(G1)\nINPUT(G2)\nINPUT(G3)\nOUTPUT(G17)\n"
        "G5 = DFF(G10)\nG6 = DFF(G11)\nG7 = DFF(G13)\nG14 = NOT(G0)\n"
        "G8 = AND(G14, G6)\nG15 = OR(G12, G8)\nG16 = OR(G3, G8)\n"
        "G9 = NAND(G16, G15)\nG10 = NOR(G14, G11)\nG11 = NOR(G5, G9)\n"
        "G12 = NOR(G1, G7)\nG13 = NOR(G2, G12)\nG17 = NOT(G11)\n");
    design = netlist::read_bench(s27, "s27");
  }
  const double t0 = netlist::nominal_min_period(design);
  netlist::apply_synthetic_skew(design, 0.05 * t0, 3);
  const ssta::SeqGraph graph = ssta::extract_seq_graph(design);
  const mc::Sampler sampler(graph, 20160314);
  const mc::PeriodStats ps = mc::sample_min_period(sampler, 2000);
  core::InsertionConfig config;
  config.num_samples = 1500;
  core::BufferInsertionEngine engine(design, graph, ps.mu(), config);
  const core::InsertionResult res = engine.run();
  const mc::Sampler eval(graph, 555);
  const double before =
      feas::original_yield(graph, ps.mu(), eval, 2000).yield;
  const feas::YieldEvaluator evaluator(graph, res.plan, ps.mu());
  const double after = evaluator.evaluate(eval, 2000).yield;
  EXPECT_GE(after, before);
  // Rescued chips must get valid register settings.
  int configs = 0;
  for (std::uint64_t chip = 0; chip < 50; ++chip)
    configs += evaluator.find_configuration(eval, chip).has_value();
  EXPECT_GT(configs, 0);
}

TEST(EndToEnd, MaxRangeOverrideRespected) {
  const World w(29);
  core::InsertionConfig config;
  config.num_samples = 400;
  config.max_range_ps = 33.0;
  core::BufferInsertionEngine engine(w.design, w.graph, w.t, config);
  EXPECT_NEAR(engine.tau_ps(), 33.0, 1e-12);
  EXPECT_NEAR(engine.step_ps(), 33.0 / 20.0, 1e-12);
  const core::InsertionResult res = engine.run();
  for (const feas::BufferWindow& b : res.plan.buffers)
    EXPECT_LE(b.range(), 20);
}

TEST(EndToEnd, BaselinePlansAreWellFormed) {
  const World w(31);
  const mc::Sampler sampler(w.graph, 4);
  const feas::TuningPlan topk = core::top_k_criticality_plan(
      w.graph, sampler, w.t, 500, 5, 20, w.step);
  EXPECT_LE(topk.buffers.size(), 5u);
  for (const feas::BufferWindow& b : topk.buffers) {
    EXPECT_EQ(b.k_lo, -10);
    EXPECT_EQ(b.k_hi, 10);
  }
  const feas::TuningPlan all = core::oracle_plan(w.graph, 20, w.step);
  EXPECT_EQ(all.buffers.size(), static_cast<std::size_t>(w.graph.num_ffs));
  EXPECT_EQ(all.physical_buffers(), w.graph.num_ffs);
}

TEST(EndToEnd, UnfixableSamplesAreEvaluatorInfeasibleToo) {
  // Samples the engine marks unfixable under floating windows must also be
  // infeasible for the evaluator given every-FF full windows.
  const World w(37);
  const core::SampleSolver solver(
      w.graph, w.step, w.t,
      core::CandidateWindows::floating(w.graph.num_ffs, 20));
  feas::TuningPlan full;
  full.step_ps = w.step;
  for (int f = 0; f < w.graph.num_ffs; ++f)
    full.buffers.push_back(feas::BufferWindow{f, -20, 20});
  full.reset_groups();
  const feas::YieldEvaluator evaluator(w.graph, full, w.t);
  const mc::Sampler sampler(w.graph, 11);
  mc::ArcSample arcs;
  int unfixable = 0;
  for (std::uint64_t k = 0; k < 300; ++k) {
    sampler.evaluate(k, arcs);
    const core::SampleSolution sol =
        solver.solve(arcs, core::ConcentrateMode::none);
    if (!sol.fixable) {
      ++unfixable;
      EXPECT_FALSE(evaluator.sample_feasible(sampler, k)) << "sample " << k;
    }
  }
  // (The converse is covered by SolverEvaluatorAgreement.)
  SUCCEED() << unfixable << " unfixable samples cross-checked";
}

}  // namespace
}  // namespace clktune
