#include "mc/period_mc.h"

#include <algorithm>
#include <vector>

#include "util/thread_pool.h"

namespace clktune::mc {

double sample_period(const Sampler&, const ArcSample& arc_sample,
                     const ssta::SeqGraph& graph) {
  double period = 0.0;
  for (std::size_t e = 0; e < graph.arcs.size(); ++e) {
    const ssta::SeqArc& arc = graph.arcs[e];
    const double t = arc_sample.dmax[e] +
                     graph.setup_ps[static_cast<std::size_t>(arc.dst_ff)] +
                     graph.skew_ps[static_cast<std::size_t>(arc.src_ff)] -
                     graph.skew_ps[static_cast<std::size_t>(arc.dst_ff)];
    period = std::max(period, t);
  }
  return period;
}

PeriodStats sample_min_period(const Sampler& sampler, std::uint64_t samples,
                              int threads) {
  const ssta::SeqGraph& graph = sampler.graph();
  const std::size_t workers = util::resolve_thread_count(
      threads <= 0 ? 0 : static_cast<std::size_t>(threads));
  std::vector<PeriodStats> partial(workers);

  util::parallel_chunks(
      static_cast<std::size_t>(samples), workers,
      [&](std::size_t w, std::size_t begin, std::size_t end) {
        ArcSample arc_sample;
        PeriodStats& acc = partial[w];
        for (std::size_t k = begin; k < end; ++k) {
          sampler.evaluate(k, arc_sample);
          acc.period.add(sample_period(sampler, arc_sample, graph));
          bool hold_fail = false;
          for (std::size_t e = 0; e < graph.arcs.size() && !hold_fail; ++e) {
            const ssta::SeqArc& arc = graph.arcs[e];
            const double margin =
                arc_sample.dmin[e] -
                graph.hold_ps[static_cast<std::size_t>(arc.dst_ff)] -
                graph.skew_ps[static_cast<std::size_t>(arc.dst_ff)] +
                graph.skew_ps[static_cast<std::size_t>(arc.src_ff)];
            hold_fail = margin < 0.0;
          }
          acc.hold_failures += hold_fail ? 1 : 0;
          ++acc.samples;
        }
      });

  PeriodStats total;
  for (const PeriodStats& p : partial) {
    total.period.merge(p.period);
    total.hold_failures += p.hold_failures;
    total.samples += p.samples;
  }
  return total;
}

}  // namespace clktune::mc
