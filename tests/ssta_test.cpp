#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "netlist/generator.h"
#include "ssta/canonical.h"
#include "ssta/seq_graph.h"
#include "util/rng.h"
#include "util/stats.h"

namespace clktune::ssta {
namespace {

Canon make(double mu, double a0, double a1, double a2, double aloc) {
  Canon c;
  c.mu = mu;
  c.a = {a0, a1, a2};
  c.aloc = aloc;
  return c;
}

TEST(CanonTest, VarianceAndSigma) {
  const Canon c = make(10.0, 3.0, 4.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(c.variance(), 25.0);
  EXPECT_DOUBLE_EQ(c.sigma(), 5.0);
}

TEST(CanonTest, SerialCompositionAddsGlobalsRssLocals) {
  const Canon a = make(5.0, 1.0, 0.0, 0.0, 3.0);
  const Canon b = make(7.0, 2.0, 1.0, 0.0, 4.0);
  const Canon s = a + b;
  EXPECT_DOUBLE_EQ(s.mu, 12.0);
  EXPECT_DOUBLE_EQ(s.a[0], 3.0);
  EXPECT_DOUBLE_EQ(s.a[1], 1.0);
  EXPECT_DOUBLE_EQ(s.aloc, 5.0);  // sqrt(9 + 16)
}

TEST(CanonTest, CovarianceUsesGlobalsOnly) {
  const Canon a = make(0.0, 1.0, 2.0, 0.0, 10.0);
  const Canon b = make(0.0, 3.0, -1.0, 0.0, 20.0);
  EXPECT_DOUBLE_EQ(a.covariance(b), 1.0);
}

TEST(CanonTest, EvalRealisesLinearForm) {
  const Canon c = make(10.0, 1.0, -2.0, 0.5, 3.0);
  EXPECT_DOUBLE_EQ(c.eval({1.0, 1.0, 2.0}, -1.0), 10.0 + 1.0 - 2.0 + 1.0 - 3.0);
  EXPECT_DOUBLE_EQ(c.eval({0.0, 0.0, 0.0}, 0.0), 10.0);
}

TEST(NormalHelpersTest, CdfPdfValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804, 1e-9);
}

TEST(ClarkMaxTest, DominantInputWins) {
  const Canon big = make(100.0, 1.0, 0.0, 0.0, 1.0);
  const Canon small = make(10.0, 0.0, 1.0, 0.0, 1.0);
  const Canon m = clark_max(big, small);
  EXPECT_NEAR(m.mu, 100.0, 1e-6);
  EXPECT_NEAR(m.a[0], 1.0, 1e-6);
  EXPECT_NEAR(m.a[1], 0.0, 1e-6);
}

TEST(ClarkMaxTest, SymmetricCaseMatchesTheory) {
  // For iid N(mu, s^2): E[max] = mu + s/sqrt(pi).
  const double s = 2.0;
  const Canon a = make(10.0, 0.0, 0.0, 0.0, s);
  const Canon b = make(10.0, 0.0, 0.0, 0.0, s);
  const Canon m = clark_max(a, b);
  EXPECT_NEAR(m.mu, 10.0 + s / std::sqrt(std::numbers::pi), 1e-9);
}

TEST(ClarkMaxTest, IdenticalCorrelatedInputsPassThrough) {
  const Canon a = make(10.0, 2.0, 1.0, 0.0, 0.0);
  const Canon m = clark_max(a, a);
  EXPECT_DOUBLE_EQ(m.mu, 10.0);
  EXPECT_DOUBLE_EQ(m.a[0], 2.0);
}

TEST(ClarkMaxTest, MatchesMonteCarloMoments) {
  const Canon a = make(50.0, 4.0, 1.0, 0.0, 3.0);
  const Canon b = make(48.0, 1.0, 3.0, 2.0, 5.0);
  const Canon m = clark_max(a, b);
  util::SplitMix64 rng(2024);
  util::OnlineStats mc;
  for (int k = 0; k < 400000; ++k) {
    const std::array<double, 3> z = {rng.next_normal(), rng.next_normal(),
                                     rng.next_normal()};
    const double va = a.eval(z, rng.next_normal());
    const double vb = b.eval(z, rng.next_normal());
    mc.add(std::max(va, vb));
  }
  EXPECT_NEAR(m.mu, mc.mean(), 0.05);
  EXPECT_NEAR(m.sigma(), mc.stddev(), 0.1);
}

TEST(ClarkMinTest, MirrorsMax) {
  const Canon a = make(50.0, 4.0, 1.0, 0.0, 3.0);
  const Canon b = make(48.0, 1.0, 3.0, 2.0, 5.0);
  const Canon lo = clark_min(a, b);
  EXPECT_LT(lo.mu, std::min(a.mu, b.mu) + 1e-9);
  util::SplitMix64 rng(99);
  util::OnlineStats mc;
  for (int k = 0; k < 200000; ++k) {
    const std::array<double, 3> z = {rng.next_normal(), rng.next_normal(),
                                     rng.next_normal()};
    mc.add(std::min(a.eval(z, rng.next_normal()), b.eval(z, rng.next_normal())));
  }
  EXPECT_NEAR(lo.mu, mc.mean(), 0.05);
}

TEST(ClarkMaxTest, VarianceNeverNegative) {
  // Stress odd configurations; aloc must stay real.
  util::SplitMix64 rng(5);
  for (int t = 0; t < 2000; ++t) {
    const Canon a = make(rng.next_double(-10, 10), rng.next_double(-3, 3),
                         rng.next_double(-3, 3), rng.next_double(-3, 3),
                         rng.next_double(0, 3));
    const Canon b = make(rng.next_double(-10, 10), rng.next_double(-3, 3),
                         rng.next_double(-3, 3), rng.next_double(-3, 3),
                         rng.next_double(0, 3));
    const Canon m = clark_max(a, b);
    EXPECT_TRUE(std::isfinite(m.mu));
    EXPECT_TRUE(std::isfinite(m.aloc));
    EXPECT_GE(m.aloc, 0.0);
    EXPECT_GE(m.mu, std::max(a.mu, b.mu) - 1e-9);  // E[max] >= max of means
  }
}

// ------------------------- sequential graph --------------------------------

netlist::Design chain_design() {
  // ff0 -> INV -> NAND -> ff1, plus direct ff0 -> ff1 side path via NAND.
  netlist::Design d;
  auto& nl = d.netlist;
  const auto& lib = d.library;
  const auto ff0 = nl.add_flipflop(lib.dff_cell(), "ff0");
  const auto ff1 = nl.add_flipflop(lib.dff_cell(), "ff1");
  const auto g1 = nl.add_gate(lib.find("INV"), "g1", {ff0});
  const auto g2 = nl.add_gate(lib.find("NAND"), "g2", {g1, ff0});
  nl.set_ff_driver(ff1, g2);
  nl.finalize();
  d.clock_skew_ps.assign(2, 0.0);
  d.ff_position.assign(2, {});
  return d;
}

TEST(SeqGraphTest, ChainProducesSingleArcWithReconvergentMax) {
  const netlist::Design d = chain_design();
  const SeqGraph g = extract_seq_graph(d);
  ASSERT_EQ(g.num_ffs, 2);
  ASSERT_EQ(g.arcs.size(), 1u);
  const SeqArc& arc = g.arcs[0];
  EXPECT_EQ(arc.src_ff, 0);
  EXPECT_EQ(arc.dst_ff, 1);
  // Long path: clkq + inv + nand; short: clkq + nand.  Clark max mean must
  // be >= the longer path's mean; Clark min <= the shorter path's mean.
  const auto& lib = d.library;
  const double clkq = lib.cell(lib.dff_cell()).delay_ps;
  const double long_path = clkq + lib.cell(lib.find("INV")).delay_ps +
                           lib.cell(lib.find("NAND")).delay_ps;
  EXPECT_GE(arc.dmax.mu, long_path - 1e-9);
  EXPECT_LT(arc.dmax.mu, long_path + 6.0);
  const double short_min = lib.cell(lib.dff_cell()).min_delay_ps +
                           lib.cell(lib.find("NAND")).min_delay_ps;
  EXPECT_LE(arc.dmin.mu, short_min + 1e-9);
  EXPECT_GT(arc.dmin.mu, short_min - 3.0);
  EXPECT_LT(arc.dmin.mu, arc.dmax.mu);
}

TEST(SeqGraphTest, DirectQToDConnection) {
  netlist::Design d;
  auto& nl = d.netlist;
  const auto ff0 = nl.add_flipflop(d.library.dff_cell(), "ff0");
  const auto ff1 = nl.add_flipflop(d.library.dff_cell(), "ff1", ff0);
  (void)ff1;
  (void)ff0;
  nl.finalize();
  d.clock_skew_ps.assign(2, 0.0);
  const SeqGraph g = extract_seq_graph(d);
  ASSERT_EQ(g.arcs.size(), 1u);
  EXPECT_NEAR(g.arcs[0].dmax.mu, 22.0, 1e-9);  // bare clk->Q
}

TEST(SeqGraphTest, SelfLoopDetected) {
  netlist::Design d;
  auto& nl = d.netlist;
  const auto ff0 = nl.add_flipflop(d.library.dff_cell(), "ff0");
  const auto g1 = nl.add_gate(d.library.find("INV"), "g1", {ff0});
  nl.set_ff_driver(ff0, g1);
  nl.finalize();
  d.clock_skew_ps.assign(1, 0.0);
  const SeqGraph g = extract_seq_graph(d);
  ASSERT_EQ(g.arcs.size(), 1u);
  EXPECT_EQ(g.arcs[0].src_ff, g.arcs[0].dst_ff);
}

TEST(SeqGraphTest, GeneratedCircuitArcsBounded) {
  netlist::SyntheticSpec spec;
  spec.num_flipflops = 150;
  spec.num_gates = 1200;
  spec.seed = 77;
  const netlist::Design d = netlist::generate(spec);
  const SeqGraph g = extract_seq_graph(d);
  EXPECT_EQ(g.num_ffs, 150);
  EXPECT_GT(g.arcs.size(), 100u);      // well connected
  EXPECT_LT(g.arcs_per_ff(), 40.0);    // but not all-pairs
  for (const SeqArc& arc : g.arcs) {
    EXPECT_GT(arc.dmax.mu, 0.0);
    EXPECT_GE(arc.dmax.mu, arc.dmin.mu - 1e-9);
    EXPECT_GT(arc.dmax.sigma(), 0.0);
  }
  EXPECT_GT(nominal_arc_period(g), 0.0);
}

TEST(SeqGraphTest, AdjacencyListsConsistent) {
  netlist::SyntheticSpec spec;
  spec.num_flipflops = 60;
  spec.num_gates = 420;
  spec.seed = 13;
  const netlist::Design d = netlist::generate(spec);
  const SeqGraph g = extract_seq_graph(d);
  std::size_t total = 0;
  for (int f = 0; f < g.num_ffs; ++f) {
    for (int e : g.arcs_of_ff[static_cast<std::size_t>(f)]) {
      const SeqArc& arc = g.arcs[static_cast<std::size_t>(e)];
      EXPECT_TRUE(arc.src_ff == f || arc.dst_ff == f);
    }
    total += g.arcs_of_ff[static_cast<std::size_t>(f)].size();
  }
  std::size_t expected = 0;
  for (const SeqArc& arc : g.arcs)
    expected += arc.src_ff == arc.dst_ff ? 1u : 2u;
  EXPECT_EQ(total, expected);
}

}  // namespace
}  // namespace clktune::ssta
