// First-order canonical delay form (Visweswariah et al. [3], which the paper
// cites as the mechanism that folds process variation into the pairwise
// delays d_ij):
//
//   d = mu + sum_p a_p * z_p + a_loc * z_loc
//
// with z_p chip-global standard normals (shared across all delays) and z_loc
// an independent local term.  Serial composition adds means and global
// sensitivities and RSS-combines local terms; max/min use Clark's moment
// matching with the residual variance folded into a_loc.
#pragma once

#include <array>
#include <cmath>

#include "netlist/cell_library.h"

namespace clktune::ssta {

inline constexpr int kParams = netlist::kNumGlobalParams;

struct Canon {
  double mu = 0.0;
  std::array<double, kParams> a{};
  double aloc = 0.0;

  double variance() const {
    double v = aloc * aloc;
    for (double ai : a) v += ai * ai;
    return v;
  }
  double sigma() const { return std::sqrt(variance()); }

  /// Covariance with another canonical form (locals independent).
  double covariance(const Canon& other) const {
    double c = 0.0;
    for (int p = 0; p < kParams; ++p)
      c += a[static_cast<std::size_t>(p)] *
           other.a[static_cast<std::size_t>(p)];
    return c;
  }

  /// Serial composition (path concatenation).
  Canon& operator+=(const Canon& other) {
    mu += other.mu;
    for (int p = 0; p < kParams; ++p)
      a[static_cast<std::size_t>(p)] += other.a[static_cast<std::size_t>(p)];
    aloc = std::sqrt(aloc * aloc + other.aloc * other.aloc);
    return *this;
  }
  friend Canon operator+(Canon lhs, const Canon& rhs) { return lhs += rhs; }

  /// Sample realisation given global draws and this delay's local draw.
  double eval(const std::array<double, kParams>& z_global,
              double z_local) const {
    double d = mu + aloc * z_local;
    for (int p = 0; p < kParams; ++p)
      d += a[static_cast<std::size_t>(p)] * z_global[static_cast<std::size_t>(p)];
    return d;
  }
};

inline Canon make_const(double value) { return Canon{value, {}, 0.0}; }

/// Canonical max via Clark's two-moment matching; the variance not explained
/// by the blended global sensitivities is assigned to the local term.
Canon clark_max(const Canon& x, const Canon& y);

/// Canonical min: -max(-x, -y).
Canon clark_min(const Canon& x, const Canon& y);

/// Standard normal CDF / PDF helpers (exposed for tests).
double normal_cdf(double x);
double normal_pdf(double x);

}  // namespace clktune::ssta
