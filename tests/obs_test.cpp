// Observability tests: the metrics registry's concurrency guarantees
// (lossless sharded recording, snapshot consistency), its exposition
// formats (JSON snapshot, Prometheus text), and the end-to-end wiring —
// a daemon's `metrics` verb reflecting real cache/serve activity, and
// `fleet status` aggregation across a pool with a dead member.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet_spec.h"
#include "fleet/fleet_status.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/json.h"

namespace clktune {
namespace {

using util::Json;

// ------------------------------------------------------------- primitives

TEST(ObsCounterTest, ConcurrentIncrementsAreLossless) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("test_events_total", "events");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsHistogramTest, BucketPlacementFollowsBitWidth) {
  obs::Registry registry;
  obs::Histogram& h =
      registry.histogram("test_latency_seconds", "latency", 1.0);
  h.record(0);    // bucket 0: exactly zero
  h.record(1);    // bucket 1: [1, 2)
  h.record(100);  // bucket 7: [64, 128)
  const obs::Histogram::Snapshot snap = h.snapshot(1.0);
  EXPECT_EQ(snap.count(), 3u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[7], 1u);
  EXPECT_DOUBLE_EQ(snap.sum(), 101.0);
  // The quantile estimate is the containing bucket's upper bound (here
  // 128 = 2^7): it can overshoot the true value but never undershoot it.
  EXPECT_GE(snap.quantile(1.0), 100.0);
  EXPECT_LE(snap.quantile(1.0), 128.0);
  EXPECT_GT(snap.upper_bound(7), snap.upper_bound(1));
}

TEST(ObsHistogramTest, ConcurrentRecordingIsLosslessAndScaled) {
  obs::Registry registry;
  // ns -> seconds scaling, as every duration histogram registers it.
  obs::Histogram& h =
      registry.histogram("test_scaled_seconds", "scaled", 1e-9);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.record(1000);
    });
  for (std::thread& w : workers) w.join();
  const obs::Histogram::Snapshot snap = h.snapshot(1e-9);
  EXPECT_EQ(snap.count(), kThreads * kPerThread);
  // 160k records of 1000 ns = 160 microseconds total, in seconds.
  EXPECT_NEAR(snap.sum(), kThreads * kPerThread * 1000 * 1e-9, 1e-12);
  // Snapshot consistency: count() derives from the buckets, so the two
  // can never disagree — verify the invariant explicitly anyway.
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count());
}

TEST(ObsRegistryTest, IdentityIsNamePlusSortedLabels) {
  obs::Registry registry;
  obs::Counter& a =
      registry.counter("reqs_total", "requests", {{"verb", "run"}});
  obs::Counter& b =
      registry.counter("reqs_total", "requests", {{"verb", "run"}});
  obs::Counter& c =
      registry.counter("reqs_total", "requests", {{"verb", "sweep"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  // Same identity as a different kind, or a histogram re-registered with
  // a different unit scale, is a programming error — loud, not silent.
  EXPECT_THROW(registry.gauge("reqs_total", "", {{"verb", "run"}}),
               std::invalid_argument);
  registry.histogram("lat_seconds", "latency", 1e-9);
  EXPECT_THROW(registry.histogram("lat_seconds", "latency", 1.0),
               std::invalid_argument);
  // Invalid Prometheus names and label keys are rejected at registration.
  EXPECT_THROW(registry.counter("1bad", "leading digit"),
               std::invalid_argument);
  EXPECT_THROW(registry.counter("ok_total", "bad label", {{"1k", "v"}}),
               std::invalid_argument);
}

TEST(ObsRegistryTest, SnapshotJsonListsEveryKindDeterministically) {
  obs::Registry registry;
  registry.counter("z_total", "last").inc(3);
  registry.gauge("depth", "queue").set(-2);
  registry.histogram("d_seconds", "dur", 1e-9).record(1500);
  const Json snap = registry.snapshot_json();
  EXPECT_EQ(snap.at("counters").at("z_total").as_uint(), 3u);
  EXPECT_EQ(snap.at("gauges").at("depth").as_int(), -2);
  const Json& hist = snap.at("histograms").at("d_seconds");
  EXPECT_EQ(hist.at("count").as_uint(), 1u);
  EXPECT_NEAR(hist.at("sum").as_double(), 1500e-9, 1e-12);
  // Deterministic exposition: identical state, byte-identical dumps.
  EXPECT_EQ(snap.dump(), registry.snapshot_json().dump());
}

TEST(ObsRegistryTest, PrometheusExpositionEscapesAndGroupsFamilies) {
  obs::Registry registry;
  // Label values with every escapable character: backslash, quote,
  // newline.
  registry
      .counter("files_total", "files seen", {{"path", "a\\b\"c\nd"}})
      .inc();
  registry.counter("files_total", "files seen", {{"path", "plain"}}).inc(2);
  registry.gauge("load", "current load").set(7);
  registry.histogram("wait_seconds", "wait", 1e-9).record(1000);
  const std::string text = registry.prometheus_text();

  // One HELP/TYPE pair per family even with several labeled children.
  std::size_t type_lines = 0, pos = 0;
  while ((pos = text.find("# TYPE files_total", pos)) != std::string::npos) {
    ++type_lines;
    pos += 1;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("# TYPE files_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE load gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wait_seconds histogram"), std::string::npos);

  // Escaped label value per the exposition spec: \\ \" \n.
  EXPECT_NE(text.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos);
  EXPECT_NE(text.find("files_total{path=\"plain\"} 2"), std::string::npos);

  // Histogram exposition: cumulative buckets ending at +Inf, plus sum
  // and count series.
  EXPECT_NE(text.find("wait_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("wait_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("wait_seconds_sum"), std::string::npos);
}

// --------------------------------------------------------- serve exposure

Json tiny_scenario_doc() {
  return Json::parse(R"({
    "name": "tiny",
    "design": {"synthetic": {"name": "tiny", "num_flipflops": 30,
                             "num_gates": 220, "seed": 5}},
    "clock": {"sigma_offset": 0.0, "period_samples": 400},
    "insertion": {"num_samples": 200, "steps": 8},
    "evaluation": {"samples": 400, "seed": 99}
  })");
}

Json tiny_campaign_doc() {
  Json doc = Json::object();
  doc.set("name", "tiny_campaign");
  doc.set("base", tiny_scenario_doc());
  Json sweep = Json::object();
  sweep.set("clock.sigma_offset",
            Json(util::JsonArray{Json(0.0), Json(1.0)}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

/// Reads a named counter out of a metrics frame; 0 when absent.  The
/// global registry accumulates across every test in this binary, so
/// integration assertions below compare before/after deltas, never
/// absolute values.
std::uint64_t counter_of(const Json& frame, const std::string& id) {
  const Json* counters = frame.at("metrics").find("counters");
  if (counters == nullptr) return 0;
  const Json* value = counters->find(id);
  return value == nullptr ? 0 : value->as_uint();
}

class ObsServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    serve::ServeOptions options;
    options.port = 0;
    options.threads = 2;
    server_ = std::make_unique<serve::ScenarioServer>(std::move(options));
    server_->start();
    thread_ = std::thread([this] { server_->serve_forever(); });
  }

  void TearDown() override {
    server_->stop();
    if (thread_.joinable()) thread_.join();
  }

  Json fetch_metrics(const std::string& format = "") {
    Json wire = Json::object();
    wire.set("cmd", "metrics");
    if (!format.empty()) wire.set("format", format);
    const serve::SubmitOutcome outcome =
        serve::submit_raw("127.0.0.1", server_->port(), wire);
    EXPECT_EQ(outcome.final_event.at("event").as_string(), "metrics");
    return outcome.final_event;
  }

  std::unique_ptr<serve::ScenarioServer> server_;
  std::thread thread_;
};

TEST_F(ObsServerFixture, MetricsVerbReflectsCacheAndVerbActivity) {
  const Json before = fetch_metrics();
  EXPECT_EQ(before.at("version").as_uint(), serve::kProtocolVersion);
  EXPECT_GE(before.at("uptime_seconds").as_double(), 0.0);

  // Cold sweep computes both cells; the warm repeat is all cache hits.
  const Json doc = tiny_campaign_doc();
  ASSERT_TRUE(serve::submit_request("127.0.0.1", server_->port(), "sweep",
                                    doc)
                  .ok());
  ASSERT_TRUE(serve::submit_request("127.0.0.1", server_->port(), "sweep",
                                    doc)
                  .ok());

  const Json after = fetch_metrics();
  EXPECT_GE(counter_of(after, "clktune_cache_misses_total") -
                counter_of(before, "clktune_cache_misses_total"),
            2u);
  EXPECT_GE(counter_of(after, "clktune_cache_hits_total") -
                counter_of(before, "clktune_cache_hits_total"),
            2u);
  EXPECT_GE(
      counter_of(after, "clktune_serve_requests_total{verb=\"sweep\"}") -
          counter_of(before, "clktune_serve_requests_total{verb=\"sweep\"}"),
      2u);
  EXPECT_GE(counter_of(after, "clktune_exec_cells_computed_total") -
                counter_of(before, "clktune_exec_cells_computed_total"),
            2u);
  // Per-verb latency histograms recorded the sweeps too.  The timer fires
  // at handler scope exit, just *after* the reply frame is written, so a
  // fetch on another handler thread can race it — poll until it settles.
  std::uint64_t sweep_latencies = 0;
  for (int i = 0; i < 100 && sweep_latencies < 2; ++i) {
    const Json frame = fetch_metrics();
    const Json* hist = frame.at("metrics").at("histograms").find(
        "clktune_serve_request_seconds{verb=\"sweep\"}");
    ASSERT_NE(hist, nullptr);
    sweep_latencies = hist->at("count").as_uint();
    if (sweep_latencies < 2)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(sweep_latencies, 2u);
}

TEST_F(ObsServerFixture, StatusFrameCarriesVersionAndSteadyUptime) {
  const serve::SubmitOutcome status =
      serve::submit_request("127.0.0.1", server_->port(), "status", Json());
  EXPECT_EQ(status.final_event.at("event").as_string(), "status");
  EXPECT_EQ(status.final_event.at("version").as_uint(),
            serve::kProtocolVersion);
  EXPECT_GE(status.final_event.at("uptime_seconds").as_double(), 0.0);
  EXPECT_LT(status.final_event.at("uptime_seconds").as_double(), 3600.0);
}

TEST_F(ObsServerFixture, PrometheusFormatReturnsTextExposition) {
  const Json frame = fetch_metrics("prometheus");
  EXPECT_EQ(frame.at("format").as_string(), "prometheus");
  const std::string& text = frame.at("text").as_string();
  EXPECT_NE(text.find("# TYPE clktune_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE clktune_serve_queue_depth gauge"),
            std::string::npos);

  // An unknown format is a structured error, not a silent default.
  Json wire = Json::object();
  wire.set("cmd", "metrics");
  wire.set("format", "xml");
  const serve::SubmitOutcome bad =
      serve::submit_raw("127.0.0.1", server_->port(), wire);
  EXPECT_EQ(bad.final_event.at("event").as_string(), "error");
}

// --------------------------------------------------------- fleet exposure

TEST(ObsFleetStatusTest, ProbeAggregatesLiveMembersAndReportsDead) {
  serve::ServeOptions options_a;
  options_a.port = 0;
  options_a.threads = 2;
  serve::ScenarioServer server_a(std::move(options_a));
  server_a.start();
  std::thread thread_a([&server_a] { server_a.serve_forever(); });

  serve::ServeOptions options_b;
  options_b.port = 0;
  options_b.threads = 2;
  serve::ScenarioServer server_b(std::move(options_b));
  server_b.start();
  std::thread thread_b([&server_b] { server_b.serve_forever(); });

  // Give one member real traffic so the aggregated totals are nonzero.
  ASSERT_TRUE(serve::submit_request("127.0.0.1", server_a.port(), "sweep",
                                    tiny_campaign_doc())
                  .ok());

  fleet::FleetSpec spec;
  spec.members.push_back({"127.0.0.1", server_a.port(), 1});
  spec.members.push_back({"127.0.0.1", server_b.port(), 1});
  spec.members.push_back({"127.0.0.1", 1, 1});  // nothing listens here

  serve::SubmitOptions timeouts;
  timeouts.connect_timeout_ms = 2000;
  timeouts.io_timeout_ms = 5000;
  const fleet::PoolStatus pool = fleet::probe_pool(spec, timeouts);

  ASSERT_EQ(pool.daemons.size(), 3u);
  EXPECT_EQ(pool.alive, 2u);
  EXPECT_EQ(pool.dead, 1u);
  EXPECT_GE(pool.scenarios_run, 2u);
  EXPECT_GE(pool.requests, 2u);
  EXPECT_GE(pool.cache_misses, 2u);

  // Order is preserved; the dead member names its failure.
  EXPECT_TRUE(pool.daemons[0].alive);
  EXPECT_TRUE(pool.daemons[1].alive);
  EXPECT_FALSE(pool.daemons[2].alive);
  EXPECT_FALSE(pool.daemons[2].error.empty());
  // Live members carry their metrics snapshot alongside the status frame.
  EXPECT_NE(pool.daemons[0].metrics.find("metrics"), nullptr);

  // The rendered table has one row per member plus the TOTAL summary.
  std::ostringstream table;
  fleet::render_pool_table(table, pool);
  const std::string rendered = table.str();
  EXPECT_NE(rendered.find("DAEMON"), std::string::npos);
  EXPECT_NE(rendered.find("127.0.0.1:1"), std::string::npos);
  EXPECT_NE(rendered.find("dead"), std::string::npos);
  EXPECT_NE(rendered.find("TOTAL"), std::string::npos);
  EXPECT_NE(rendered.find("2/3"), std::string::npos);

  // The JSON form mirrors the struct for scripting.
  const Json as_json = pool.to_json();
  EXPECT_EQ(as_json.at("alive").as_uint(), 2u);
  EXPECT_EQ(as_json.at("dead").as_uint(), 1u);
  EXPECT_EQ(as_json.at("daemons").as_array().size(), 3u);

  server_a.stop();
  server_b.stop();
  thread_a.join();
  thread_b.join();
}

}  // namespace
}  // namespace clktune
