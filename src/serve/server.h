// `clktune serve` — a long-running scenario service.
//
// The daemon listens on a loopback TCP port and speaks newline-delimited
// JSON: each request line is an object with a "cmd" member, each response
// line an object with an "event" member.  The PR-1 artifact layer is the
// wire format — a streamed "result" event carries exactly the JSON that
// `clktune run` would have written for the same document.
// docs/serve_protocol.md is the normative wire specification.
//
//   request                                  response lines
//   {"cmd":"run","doc":{scenario}}       -> result, done
//   {"cmd":"sweep","doc":{campaign}}     -> result per finished cell, done
//   {"cmd":"status"}                     -> status
//   {"cmd":"metrics"}                    -> metrics (obs registry snapshot;
//                                           {"format":"prometheus"} swaps
//                                           the JSON snapshot for text
//                                           exposition in a "text" member)
//   {"cmd":"shutdown"}                   -> done (then the server exits)
//   {"cmd":"drain"}                      -> draining (stop admission,
//                                           finish in-flight work, then
//                                           exit — SIGTERM semantics)
//   {"cmd":"prune","keep":N}             -> pruned (drop the oldest
//                                           terminal job envelopes
//                                           beyond N)
//
// Async job verbs (the durable submission path, backed by jobs::
// JobScheduler; see docs/jobs.md):
//   {"cmd":"submit","doc":{...}}         -> job (queued; returns at once)
//   {"cmd":"status","id":j}              -> job (lifecycle + progress)
//   {"cmd":"attach","id":j}              -> result per cell, then done /
//                                           error — replayed for finished
//                                           jobs, live otherwise, byte-
//                                           identical to run/sweep
//   {"cmd":"cancel","id":j}              -> job
//   {"cmd":"jobs"}                       -> jobs (every known job)
// A submit may carry {"indices":[...]} exactly like sweep.  With a
// --cache-dir, job envelopes persist under <cache_dir>/jobs and a
// restarted daemon recovers every job: finished ones replay from the
// result cache, interrupted ones re-queue.
//
// A sweep request may carry one of two selection members:
//   {"shard":{"index":i,"count":n}}   run expansion indices idx % n == i,
//                                     exactly like `clktune sweep --shard`
//   {"indices":[i0,i1,...]}           run exactly these global expansion
//                                     indices (strictly increasing)
// The shard form backs static fan-out (exec::ShardedExecutor over
// exec::RemoteExecutors); the indices form is the work-unit interface that
// fleet::FleetExecutor feeds daemons work-stealing style.
//
//   result: {"event":"result","index":i,"cached":bool,"result":{artifact}}
//   done:   {"event":"done","ok":true,"scenarios_run":n,
//            "targets_missed":m,"cached":c}
//   status: {"event":"status","version":v,"uptime_seconds":s,"requests":r,
//            "connections":k,"rejected":j,"scenarios_run":n,
//            "cache":{hits,misses,...},"jobs":{queued,...}}
//   metrics:{"event":"metrics","version":v,"uptime_seconds":s,
//            "metrics":{counters,gauges,histograms} | "format":
//            "prometheus","text":"..."}
//   error:  {"event":"error","message":"..."[,"code":"busy"]}
//
// Sweep results stream in completion order, tagged with their global
// expansion index.  Connections are admitted concurrently: the accept loop
// pushes each connection onto a bounded queue drained by a pool of handler
// threads, so one slow client no longer blocks the rest of a fleet.  When
// the queue is full the daemon answers with a structured backpressure
// frame ({"event":"error","code":"busy",...}) and closes — callers treat
// it like any other daemon failure and retry elsewhere.  Requests execute
// through exec::LocalExecutor — the same backend the CLI uses — with a
// streaming exec::Observer as the wire adapter, and every result goes
// through the content-addressed ResultCache, so the daemon never
// recomputes a document it has already solved, across requests and across
// clients.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.h"
#include "util/socket.h"

namespace clktune::jobs {
class JobScheduler;
}

namespace clktune::serve {

/// Wire protocol version, carried by the status and metrics frames.
/// Bumped on incompatible frame-shape changes (additive members do not
/// count); v1 is the first versioned protocol.
inline constexpr std::uint64_t kProtocolVersion = 1;

struct ServeOptions {
  std::uint16_t port = 0;   ///< 0 = ephemeral (query via ScenarioServer::port)
  int threads = 0;          ///< campaign workers; 0 = hardware concurrency
  std::string cache_dir;    ///< empty = in-memory cache only
  std::size_t cache_capacity = 256;  ///< LRU entries held in memory
  bool quiet = true;        ///< suppress per-request stderr lines
  /// Connection handlers running concurrently (admission parallelism).
  std::size_t admission_threads = 4;
  /// Accepted-but-unclaimed connections held while every handler is busy;
  /// beyond this the daemon rejects with a "busy" backpressure frame.
  std::size_t queue_capacity = 16;
  /// Async jobs executing concurrently (the submit-verb worker pool).
  std::size_t job_workers = 2;
  /// Terminal jobs retained before the oldest envelopes are pruned.
  std::size_t job_retain = 512;
  /// Stuck-job watchdog deadline passed to the JobScheduler (0 = off).
  int job_stall_timeout_ms = 0;
  /// Graceful-drain grace period: how long serve_forever waits for
  /// in-flight connections to finish before severing them.
  int drain_grace_ms = 5000;
};

class ScenarioServer {
 public:
  explicit ScenarioServer(ServeOptions options);
  ~ScenarioServer();

  /// Binds and listens; after this, port() is the actual port.
  void start();
  std::uint16_t port() const { return port_; }

  /// Accept loop; returns after a shutdown request or stop(), with every
  /// handler joined.  Connections are admitted onto the bounded queue and
  /// handled by the pool; each may carry any number of request lines.
  void serve_forever();

  /// Thread-safe: asks the accept loop to exit, unblocks it, and severs
  /// in-flight connections so handlers wind down.
  void stop();

  /// Graceful drain, the SIGTERM semantics: stop admission (close the
  /// listener) but let in-flight frames finish — serve_forever waits up
  /// to drain_grace_ms for active connections to complete before winding
  /// down.  Running jobs are asked to yield at their next checkpoint and
  /// stay `running` on disk, so a restarted daemon recovers them.
  /// Thread-safe and idempotent; also exposed as the `drain` serve verb.
  void drain();
  bool draining() const { return draining_.load(); }

  cache::ResultCache& cache() { return cache_; }
  jobs::JobScheduler& scheduler() { return *jobs_; }

 private:
  void handler_loop();
  void handle_connection(util::TcpSocket connection);
  /// Parses one request line and times its dispatch into the per-verb
  /// latency histogram.
  void handle_request(const util::TcpSocket& connection,
                      const std::string& line);
  void handle_command(const util::TcpSocket& connection,
                      const std::string& cmd, const util::Json& request);
  double uptime_seconds() const;
  /// Registry of fds handlers are blocked on, so stop() can sever them.
  void track_connection(int fd, bool add);
  /// Serialised listener close: the shutdown verb runs on handler
  /// threads, so concurrent shutdowns (or shutdown racing stop()) must
  /// not double-close the listener fd.
  void close_listener();

  ServeOptions options_;
  cache::ResultCache cache_;
  /// The async-job service; envelopes live under <cache_dir>/jobs when a
  /// cache directory is configured (in-memory otherwise).
  std::unique_ptr<jobs::JobScheduler> jobs_;
  std::mutex listener_mutex_;
  util::TcpSocket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  /// start() time; uptime_seconds derives from this, steady so it never
  /// jumps with wall-clock adjustments.
  std::chrono::steady_clock::time_point started_at_{};

  std::mutex queue_mutex_;
  std::condition_variable queue_ready_;
  std::deque<util::TcpSocket> queue_;  ///< accepted, awaiting a handler

  std::mutex active_mutex_;
  std::set<int> active_fds_;  ///< connections currently owned by handlers

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> rejected_{0};  ///< busy backpressure rejections
  std::atomic<std::uint64_t> scenarios_run_{0};  ///< computed + cache-served
};

}  // namespace clktune::serve
