#include "exec/request.h"

#include <utility>

namespace clktune::exec {

using util::Json;

Request Request::for_scenario(scenario::ScenarioSpec spec) {
  Request request;
  request.kind = Kind::scenario;
  request.scenario = std::move(spec);
  return request;
}

Request Request::for_campaign(scenario::CampaignSpec spec) {
  Request request;
  request.kind = Kind::campaign;
  request.campaign = std::move(spec);
  return request;
}

Request Request::from_json(const Json& doc) {
  if (doc.contains("base"))
    return for_campaign(scenario::CampaignSpec::from_json(doc));
  return for_scenario(scenario::ScenarioSpec::from_json(doc));
}

Json Request::document() const {
  return kind == Kind::scenario ? scenario.to_json() : campaign.to_json();
}

std::size_t Request::expansion_size() const {
  return kind == Kind::scenario ? 1 : campaign.expansion_size();
}

std::size_t Request::shard_cells() const {
  if (!indices.empty()) return indices.size();
  return shard_cell_count(expansion_size(), shard_index, shard_count);
}

void Request::validate() const {
  if (shard_count == 0 || shard_index >= shard_count)
    throw ExecError("exec: shard index must satisfy 0 <= i < n");
  if (kind == Kind::scenario && shard_count != 1)
    throw ExecError("exec: a scenario request cannot be sharded");
  if (indices.empty()) return;
  if (kind == Kind::scenario)
    throw ExecError("exec: a scenario request cannot carry indices");
  if (shard_count != 1)
    throw ExecError("exec: indices and a shard slice are mutually"
                    " exclusive");
  const std::size_t total = expansion_size();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= total)
      throw ExecError("exec: index " + std::to_string(indices[i]) +
                      " out of range for a " + std::to_string(total) +
                      "-cell campaign");
    if (i > 0 && indices[i] <= indices[i - 1])
      throw ExecError("exec: indices must be strictly increasing");
  }
}

Json Outcome::artifact(bool include_timing) const {
  return kind == Request::Kind::scenario ? result.to_json(include_timing)
                                         : summary.to_json(include_timing);
}

Outcome Outcome::from_summary(scenario::CampaignSummary summary,
                              std::string backend) {
  Outcome outcome;
  outcome.kind = Request::Kind::campaign;
  outcome.backend = std::move(backend);
  outcome.scenarios_run = summary.scenarios_run;
  outcome.scenarios_cached = summary.scenarios_cached;
  outcome.targets_missed = summary.targets_missed;
  outcome.seconds = summary.total_seconds;
  outcome.summary = std::move(summary);
  return outcome;
}

}  // namespace clktune::exec
