// Process-wide deterministic fault injection.
//
// A FaultPlan names *injection sites* — stable string identifiers compiled
// into the I/O seams of the codebase (socket connect/read/write, the
// atomic file-commit path of the cache and job store, scheduler and fleet
// dispatch crash points) — and attaches a *rule* to each: which fault to
// fire (`action`), when (`nth` hit, `every` k-th hit, or `probability`
// with a per-site seeded RNG), and how often at most (`count`).  The plan
// is armed once per process, from the `CLKTUNE_FAULT_PLAN` environment
// variable (a file path or inline JSON) or the `--fault-plan` CLI flag,
// and every fired fault is reported through the obs registry as
// `clktune_fault_injected_total{site,action}`.
//
// Cost model: when no plan is armed — every production run — a site is a
// single relaxed atomic load (`armed()`) and an untaken branch.  No
// allocation, no lock, no registry lookup.  All bookkeeping (hit counters,
// RNG state, metrics) lives behind the armed branch, so the zero-alloc
// kernel assertions and the perf gate hold with the subsystem linked in.
//
// Determinism: rule evaluation depends only on the per-site hit counter
// and the per-site seeded RNG stream, never on wall-clock time or global
// randomness.  Two runs that issue the same sequence of polls at a site
// observe the same fault schedule.  (Across threads the *interleaving* of
// polls is scheduling-dependent — a seeded plan gives a reproducible fault
// *distribution*, which is exactly what the chaos soak needs: randomized
// but re-runnable.)
//
// Plan JSON schema (see docs/robustness.md for the site catalog):
//
//   {
//     "seed": 42,                      // optional, mixed into site seeds
//     "sites": {
//       "socket.write": {"action": "truncate", "every": 7,
//                         "keep_bytes": 40, "count": 3},
//       "cache.write": {"action": "enospc", "nth": 1},
//       "scheduler.checkpoint": {"action": "crash", "probability": 0.01,
//                                 "seed": 7}
//     }
//   }
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/json.h"

namespace clktune::fault {

/// What a fired fault does.  `fail`, `enospc` and `timeout` throw from
/// check(); `delay` sleeps and continues; `crash` terminates the process
/// with _exit(137) — no destructors, exactly like SIGKILL.  `truncate`,
/// `short_write` and `reset` are data-path actions: poll() returns them
/// to the call site, which owns the byte-level behaviour (write only
/// `keep_bytes` then throw, throw a connection-reset error, ...).
enum class Action {
  none,
  fail,         ///< generic injected I/O failure (throws)
  timeout,      ///< injected deadline expiry (throws)
  enospc,       ///< injected "No space left on device" (throws)
  delay,        ///< sleep delay_ms, then continue normally
  crash,        ///< _exit(137): a crash point, not an exception
  reset,        ///< connection reset by peer (call-site interpreted)
  truncate,     ///< deliver/write only keep_bytes, then fail (torn frame)
  short_write,  ///< persist only keep_bytes of a file, then fail
};

const char* to_string(Action action) noexcept;

/// The outcome of polling a site.  Converts to false when nothing fired.
struct Fired {
  Action action = Action::none;
  int delay_ms = 0;
  std::size_t keep_bytes = 0;
  explicit operator bool() const noexcept { return action != Action::none; }
};

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True when a fault plan is armed.  This relaxed load is the entire cost
/// of an injection site on the disarmed path; guard every poll()/check()
/// with it.
inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Arms the process-wide registry from a FaultPlan document.  Replaces any
/// previously armed plan.  Throws util::JsonError / std::invalid_argument
/// on schema violations (unknown action, missing action, bad trigger).
void arm(const util::Json& plan);

/// Arms from a JSON file, or from inline JSON when `spec` starts with '{'.
void arm_from_spec(const std::string& spec);

/// Arms from $CLKTUNE_FAULT_PLAN when set and non-empty; no-op otherwise.
/// Returns true when a plan was armed.
bool arm_from_environment();

/// Clears the plan and disarms every site (tests arm/disarm repeatedly;
/// hit counters and fire counts are discarded).
void disarm();

/// Evaluates `site` against the armed plan.  Returns the fired fault, or
/// a false Fired when disarmed / unmatched / the rule did not trigger.
/// A `delay` action is slept here; every fire is counted in
/// clktune_fault_injected_total{site,action} and a `crash` fire does not
/// return.  Callers own `reset`/`truncate`/`short_write` semantics.
Fired poll(const char* site);

/// poll() for control-path sites: additionally converts throwing actions
/// into exceptions (fail/timeout/reset -> std::runtime_error, enospc ->
/// std::system_error-equivalent runtime_error mentioning ENOSPC).  Data
/// actions that need call-site bytes (`truncate`, `short_write`) are
/// returned for the caller to honour.
Fired check(const char* site);

/// Total faults fired by this process since start (all sites, all plans).
/// Cheap enough to stamp into bench reports.
std::uint64_t injected_total() noexcept;

/// Diagnostic snapshot of the armed plan: {"armed":bool,"sites":{site:
/// {"action",...,"hits":n,"fires":n}}}.  Deterministic order.
util::Json status_json();

}  // namespace clktune::fault
