// End-to-end serve tests: a real daemon on an ephemeral loopback port, real
// client connections.  A submitted scenario must stream back exactly the
// artifact `clktune run` (run_scenario) produces for the same document; a
// submitted campaign streams one result per cell and serves a repeat
// submission entirely from the cache.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "scenario/scenario.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/socket.h"

namespace clktune {
namespace {

using util::Json;

Json tiny_scenario_doc() {
  return Json::parse(R"({
    "name": "tiny",
    "design": {"synthetic": {"name": "tiny", "num_flipflops": 30,
                             "num_gates": 220, "seed": 5}},
    "clock": {"sigma_offset": 0.0, "period_samples": 400},
    "insertion": {"num_samples": 200, "steps": 8},
    "evaluation": {"samples": 400, "seed": 99}
  })");
}

Json tiny_campaign_doc() {
  Json doc = Json::object();
  doc.set("name", "tiny_campaign");
  doc.set("base", tiny_scenario_doc());
  Json sweep = Json::object();
  sweep.set("clock.sigma_offset",
            Json(util::JsonArray{Json(0.0), Json(1.0)}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

/// Daemon on an ephemeral port with its accept loop on a worker thread;
/// shut down via the wire protocol (or stop() as a fallback).
class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    serve::ServeOptions options;
    options.port = 0;
    options.threads = 2;
    server_ = std::make_unique<serve::ScenarioServer>(std::move(options));
    server_->start();
    thread_ = std::thread([this] { server_->serve_forever(); });
  }

  void TearDown() override {
    server_->stop();
    if (thread_.joinable()) thread_.join();
  }

  serve::SubmitOutcome submit(const std::string& cmd, const Json& doc) {
    return serve::submit_request("127.0.0.1", server_->port(), cmd, doc);
  }

  std::unique_ptr<serve::ScenarioServer> server_;
  std::thread thread_;
};

TEST_F(ServerFixture, RunMatchesDirectExecutionByteForByte) {
  const Json doc = tiny_scenario_doc();
  const serve::SubmitOutcome outcome =
      serve::submit_document("127.0.0.1", server_->port(), doc);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.results.size(), 1u);
  EXPECT_EQ(outcome.cached, 0u);
  EXPECT_EQ(outcome.targets_missed(), 0u);

  const auto spec = scenario::ScenarioSpec::from_json(doc);
  const scenario::ScenarioResult local = scenario::run_scenario(spec, 2);
  EXPECT_EQ(outcome.results[0].dump(), local.to_json().dump());

  // The same document again is served from the cache, byte-identically.
  const serve::SubmitOutcome warm =
      serve::submit_document("127.0.0.1", server_->port(), doc);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.cached, 1u);
  EXPECT_EQ(warm.results[0].dump(), outcome.results[0].dump());
}

TEST_F(ServerFixture, SweepStreamsOneResultPerCellAndCachesRepeats) {
  const Json doc = tiny_campaign_doc();
  std::size_t result_events = 0;
  const serve::SubmitOutcome cold = serve::submit_request(
      "127.0.0.1", server_->port(), "sweep", doc, [&](const Json& event) {
        result_events += event.at("event").as_string() == "result";
      });
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(result_events, 2u);
  ASSERT_EQ(cold.results.size(), 2u);
  EXPECT_EQ(cold.final_event.at("scenarios_run").as_uint(), 2u);
  EXPECT_EQ(cold.cached, 0u);
  // Expansion-index order regardless of completion order.
  EXPECT_EQ(cold.results[0].at("setting").as_string(), "muT");
  EXPECT_EQ(cold.results[1].at("setting").as_string(), "muT+s");

  const serve::SubmitOutcome warm =
      serve::submit_request("127.0.0.1", server_->port(), "sweep", doc);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.cached, 2u);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_EQ(warm.results[i].dump(), cold.results[i].dump());

  // The base document is not any expanded cell (name suffix, seed stride),
  // so submitting it directly computes fresh under its own content key.
  const serve::SubmitOutcome run =
      serve::submit_document("127.0.0.1", server_->port(),
                             tiny_scenario_doc());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.cached, 0u);
}

TEST_F(ServerFixture, StatusReportsCountersAndCacheStats) {
  (void)submit("run", tiny_scenario_doc());
  const serve::SubmitOutcome status = submit("status", Json());
  EXPECT_EQ(status.final_event.at("event").as_string(), "status");
  EXPECT_EQ(status.final_event.at("scenarios_run").as_uint(), 1u);
  EXPECT_GE(status.final_event.at("requests").as_uint(), 2u);
  EXPECT_EQ(status.final_event.at("cache").at("misses").as_uint(), 1u);
}

TEST_F(ServerFixture, MalformedAndInvalidRequestsReportErrors) {
  // Unknown command.
  const serve::SubmitOutcome unknown = submit("frobnicate", Json());
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.final_event.at("event").as_string(), "error");

  // Invalid scenario document (typo'd key) — loud, structured error.
  Json bad = tiny_scenario_doc();
  bad.set("numsamples", 5);
  const serve::SubmitOutcome invalid = submit("run", bad);
  EXPECT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.final_event.at("event").as_string(), "error");
  EXPECT_NE(invalid.final_event.at("message").as_string().find("numsamples"),
            std::string::npos);

  // Garbage bytes: an error line comes back and the connection closes.
  const util::TcpSocket connection =
      util::tcp_connect("127.0.0.1", server_->port());
  util::tcp_write_all(connection, "this is not json\n");
  util::LineReader reader(connection);
  std::string line;
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(Json::parse(line).at("event").as_string(), "error");
}

TEST_F(ServerFixture, ShutdownRequestStopsTheAcceptLoop) {
  const serve::SubmitOutcome outcome = submit("shutdown", Json());
  EXPECT_TRUE(outcome.ok());
  thread_.join();  // serve_forever() must return on its own
}

}  // namespace
}  // namespace clktune
