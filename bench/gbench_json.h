// Glue between the Google Benchmark micro benches and the BENCH_<name>.json
// artifact: a console reporter that also captures per-iteration times, and
// a shared main() body that runs the registered benchmarks and writes the
// report with a designated benchmark's rate as the headline samples/sec.
#pragma once

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "bench_common.h"

namespace clktune::bench {

class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations <= 0) continue;
      per_iter_seconds[run.benchmark_name()] =
          run.real_accumulated_time / static_cast<double>(run.iterations);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::map<std::string, double> per_iter_seconds;
};

/// Runs all registered benchmarks and writes BENCH_<name>.json.  The
/// headline samples/sec is 1 / per-iteration-time of `headline_benchmark`
/// (one iteration there processes one Monte-Carlo sample); every
/// benchmark's per-iteration seconds are recorded as extra metrics.
inline int run_micro_benchmarks(int argc, char** argv, const char* name,
                                const char* headline_benchmark) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchReport report(name);
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  for (const auto& [bench_name, seconds] : reporter.per_iter_seconds) {
    report.metric("sec_per_iter/" + bench_name, seconds);
    // Micro reports intentionally carry samples = 0: the headline rate is
    // the designated kernel's per-iteration rate, not samples / wall.
    if (bench_name == headline_benchmark && seconds > 0.0)
      report.override_samples_per_sec(1.0 / seconds);
  }
  return report.write();
}

}  // namespace clktune::bench
