// Monte-Carlo sampling of manufactured chips.
//
// Sample k draws three chip-global parameter deviations (L, tox, Vth) and
// one local deviation per sequential arc, all through counter-based hashing:
// the delay of arc e in sample k is a pure function of (seed, k, e), so
// results are bit-identical across thread counts and evaluation order —
// a requirement for the deterministic parallel flow.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "mc/arc_constants.h"
#include "ssta/seq_graph.h"
#include "util/rng.h"

namespace clktune::mc {

/// Per-sample realised arc delays and derived constraint constants.
struct ArcSample {
  std::vector<double> dmax;
  std::vector<double> dmin;
};

class Sampler {
 public:
  Sampler(const ssta::SeqGraph& graph, std::uint64_t seed)
      : graph_(&graph), rng_(seed) {}

  /// Global parameter draws for sample k.
  std::array<double, ssta::kParams> globals(std::uint64_t k) const {
    std::array<double, ssta::kParams> z{};
    for (int p = 0; p < ssta::kParams; ++p)
      z[static_cast<std::size_t>(p)] =
          rng_.normal(k, 0x6000 + static_cast<std::uint64_t>(p));
    return z;
  }

  /// Fills `out` with every arc's realised late/early delay for sample k.
  /// Early delays are clamped to [0, dmax].
  void evaluate(std::uint64_t k, ArcSample& out) const;

  /// Pointer-based evaluate(): writes into caller-owned arrays of
  /// graph().arcs.size() entries (cache slices, preallocated scratch).
  void evaluate_into(std::uint64_t k, double* dmax, double* dmin) const;

  /// Realised late/early delay of a single arc of sample k, given the
  /// sample's global draws (from globals(k)).  A pure function of
  /// (seed, k, e): evaluating arcs one at a time, in any order or subset,
  /// yields exactly the values evaluate() would store — this is what lets
  /// the yield evaluator early-exit without materialising an ArcSample.
  void arc_delays(std::uint64_t k, std::size_t e,
                  const std::array<double, ssta::kParams>& z, double& late,
                  double& early) const {
    const double zloc = rng_.normal(k, 0x10000 + e);
    late = graph_->arcs[e].dmax.eval(z, zloc);
    early = graph_->arcs[e].dmin.eval(z, zloc);
    late = std::max(late, 0.0);
    early = std::clamp(early, 0.0, late);
  }

  /// Fused kernel: draws sample k and writes the quantized constraint
  /// constants straight into `setup`/`hold` (each graph().arcs.size() long)
  /// without materialising the intermediate ArcSample.  Arithmetic is
  /// identical to evaluate() followed by quantize_arc_constants(), so the
  /// results are bit-identical — this is the hot path the insertion flow
  /// and its cross-pass cache run on.
  void evaluate_constants(std::uint64_t k, double clock_period_ps,
                          double step_ps, std::int32_t* setup,
                          std::int32_t* hold) const;

  const ssta::SeqGraph& graph() const { return *graph_; }
  std::uint64_t seed() const { return rng_.seed(); }

 private:
  const ssta::SeqGraph* graph_;
  util::CounterRng rng_;
};

}  // namespace clktune::mc
