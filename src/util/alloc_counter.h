// Thread-local heap-allocation counter.
//
// Referencing any symbol from this header pulls in replacement global
// operator new/delete that bump a thread-local counter (one relaxed TLS
// increment per allocation; free of atomics and locks).  Binaries that
// never reference it link the standard operators and are unaffected.
//
// This is the measurement hook behind the zero-allocation guarantees of the
// sample kernel: tests and benches snapshot alloc_count() around a
// steady-state region and assert (or report) the delta.
#pragma once

#include <cstdint>

namespace clktune::util {

/// Number of operator-new calls made by the calling thread since start.
std::uint64_t alloc_count() noexcept;

/// Delta helper: captures the calling thread's count at construction.
class AllocCounterScope {
 public:
  AllocCounterScope() : start_(alloc_count()) {}
  std::uint64_t delta() const noexcept { return alloc_count() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace clktune::util
