// Fault-tolerant multi-daemon campaign orchestration: work-stealing
// dispatch over a pool of `clktune serve` daemons.
//
// FleetExecutor supersedes static `i/n` sharding (exec::ShardedExecutor
// over exec::RemoteExecutors) for cross-host fan-out: instead of fixing
// each daemon's slice up front, it splits a campaign's expansion indices
// into small work units on a single shared queue and lets every daemon
// pull the next unit the moment it finishes one — a fast machine simply
// takes more units, and an uneven campaign never leaves half the pool
// idle.  Each unit travels as a `{"cmd":"sweep","indices":[...]}` request
// (docs/serve_protocol.md), so the daemons need no fleet awareness at all.
//
// Units travel through each daemon's durable job queue: the dispatcher
// submits the unit as an async job ({"cmd":"submit","indices":[...]}) and
// then attaches to stream its cells.  Admission is O(enqueue) on the
// daemon, and because the job outlives the connection, a dispatcher that
// loses its stream mid-unit re-attaches to the *same* job on retry —
// cells the daemon kept computing replay instantly from its cache.
//
// Fault tolerance: when a daemon dies, times out or rejects with
// backpressure mid-unit, the cells it already streamed are kept (they are
// deterministic), the remainder of the unit is requeued for a surviving
// daemon, and the dead daemon is retired from the pool.  With re-probing
// enabled (reprobe_interval_ms) retired daemons are health-checked
// periodically and rejoin the pool when they answer again — a restarted
// daemon picks work back up mid-campaign.  Retries per unit are bounded;
// exhaustion — or the death of every daemon — fails the campaign with a
// per-unit diagnostic naming the last error.  Results are merged in
// expansion order, so a fleet summary is byte-identical to an unsharded
// LocalExecutor sweep of the same document, even when daemons were lost
// mid-campaign.
#pragma once

#include <cstddef>
#include <string>

#include "exec/executor.h"
#include "fleet/fleet_spec.h"

namespace clktune::fleet {

struct FleetOptions {
  /// Expansion indices per work unit.  Small units steal well and requeue
  /// cheaply; large units amortise connection overhead.
  std::size_t unit_cells = 1;
  /// Re-dispatches allowed per unit beyond the first attempt; once a
  /// unit's attempts exceed this, the campaign fails with its diagnostic.
  /// Busy backpressure frames do not count individually — a saturated
  /// daemon is not a failed one — but an unbroken busy streak slowly
  /// bleeds into the budget, so a permanently saturated pool fails
  /// instead of spinning forever.
  std::size_t max_retries = 3;
  /// Deadline for connecting to a daemon (0 = block indefinitely).
  int connect_timeout_ms = 5000;
  /// Deadline between response bytes of one unit (0 = none); must exceed
  /// the slowest single cell, since a computing daemon is silent.
  int io_timeout_ms = 0;
  /// Health-check every daemon with a status probe before dispatching and
  /// retire the unreachable ones up front (dispatch discovers deaths
  /// either way; the probe just fails faster and cheaper).
  bool probe = true;
  /// Period, in milliseconds, for re-probing retired daemons during a
  /// campaign so transiently dead members rejoin the pool (0 = never).
  /// With re-probing on, losing *every* daemon pauses dispatch instead of
  /// failing it; the campaign fails only after max_retries + 1
  /// consecutive all-dead probe rounds.
  int reprobe_interval_ms = 0;
};

/// exec::Executor backend that fans a request out over a daemon pool.
/// Campaigns are dispatched work-stealing style as described above; a
/// scenario request is a single unit, failed over across the pool.  The
/// request's cache pointer is ignored — each daemon owns its own cache.
class FleetExecutor : public exec::Executor {
 public:
  /// Throws exec::ExecError on an empty pool.
  explicit FleetExecutor(FleetSpec spec, FleetOptions options = {});

  /// Throws exec::ExecError when the request already carries a selection
  /// (shard slice or index list), when no daemon is healthy, or when a
  /// unit exhausts its retries; exec::CancelledError when the observer
  /// cancels.  Observer cells arrive with global expansion indices, each
  /// exactly once, from dispatcher threads.
  exec::Outcome execute(const exec::Request& request,
                        exec::Observer* observer = nullptr) override;

  std::string name() const override {
    return "fleet(" + std::to_string(spec_.members.size()) + ")";
  }

 private:
  FleetSpec spec_;
  FleetOptions options_;
};

}  // namespace clktune::fleet
