#include "load/xcheck.h"

#include <cmath>
#include <stdexcept>

namespace clktune::load {

namespace {

using util::Json;

/// Extracts the verb from a registry identity like
/// `clktune_serve_request_seconds{verb="run"}`; empty when `id` is not a
/// per-verb latency histogram.
std::string verb_of(const std::string& id) {
  static const std::string prefix = "clktune_serve_request_seconds{verb=\"";
  if (id.rfind(prefix, 0) != 0) return "";
  const std::size_t end = id.find('"', prefix.size());
  if (end == std::string::npos) return "";
  return id.substr(prefix.size(), end - prefix.size());
}

}  // namespace

std::uint64_t WireHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& [le, n] : buckets) total += n;
  return total;
}

double WireHistogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const auto rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (const auto& [le, n] : buckets) {  // std::map: ascending le
    seen += n;
    if (seen >= rank) return le;
  }
  return buckets.rbegin()->first;
}

void WireHistogram::merge(const WireHistogram& other) {
  for (const auto& [le, n] : other.buckets) buckets[le] += n;
  sum_seconds += other.sum_seconds;
}

ServerSnapshot ServerSnapshot::delta(const ServerSnapshot& before,
                                     const ServerSnapshot& after) {
  ServerSnapshot d;
  d.busy_rejections = after.busy_rejections - before.busy_rejections;
  d.faults_injected = after.faults_injected - before.faults_injected;
  for (const auto& [verb, hist] : after.verb_latency) {
    WireHistogram dh = hist;
    const auto it = before.verb_latency.find(verb);
    if (it != before.verb_latency.end()) {
      for (const auto& [le, n] : it->second.buckets) {
        auto bucket = dh.buckets.find(le);
        if (bucket != dh.buckets.end())
          bucket->second -= n <= bucket->second ? n : bucket->second;
      }
      dh.sum_seconds -= it->second.sum_seconds;
    }
    // Drop emptied buckets so count() and quantile() see only the run.
    for (auto it2 = dh.buckets.begin(); it2 != dh.buckets.end();)
      it2 = it2->second == 0 ? dh.buckets.erase(it2) : std::next(it2);
    if (!dh.buckets.empty()) d.verb_latency[verb] = std::move(dh);
  }
  return d;
}

ServerSnapshot fetch_server_snapshot(const fleet::FleetSpec& targets,
                                     const serve::SubmitOptions& timeouts) {
  ServerSnapshot snapshot;
  for (const fleet::FleetMember& member : targets.members) {
    Json wire = Json::object();
    wire.set("cmd", "metrics");
    serve::SubmitOutcome outcome;
    try {
      outcome =
          serve::submit_raw(member.host, member.port, wire, {}, timeouts);
    } catch (const std::exception& e) {
      throw std::runtime_error("metrics fetch from " + member.endpoint() +
                               " failed: " + e.what());
    }
    const Json* event = outcome.final_event.find("event");
    if (event == nullptr || event->as_string() != "metrics")
      throw std::runtime_error("daemon " + member.endpoint() +
                               " answered the metrics verb with an error");
    const Json& metrics = outcome.final_event.at("metrics");
    for (const auto& [id, value] : metrics.at("counters").as_object()) {
      if (id == "clktune_serve_busy_rejections_total")
        snapshot.busy_rejections += value.as_uint();
      else if (id.rfind("clktune_fault_injected_total", 0) == 0)
        snapshot.faults_injected += value.as_uint();
    }
    for (const auto& [id, value] : metrics.at("histograms").as_object()) {
      const std::string verb = verb_of(id);
      if (verb.empty()) continue;
      WireHistogram hist;
      for (const Json& bucket : value.at("buckets").as_array()) {
        const util::JsonArray& pair = bucket.as_array();
        hist.buckets[pair.at(0).as_double()] += pair.at(1).as_uint();
      }
      hist.sum_seconds = value.at("sum").as_double();
      snapshot.verb_latency[verb].merge(hist);
    }
  }
  return snapshot;
}

Json VerbAgreement::to_json() const {
  Json j = Json::object();
  j.set("verb", verb);
  j.set("client_count", client_count);
  j.set("server_count", server_count);
  j.set("client_p50_seconds", client_p50);
  j.set("server_p50_seconds", server_p50);
  j.set("client_p99_seconds", client_p99);
  j.set("server_p99_seconds", server_p99);
  j.set("ok", ok);
  if (!note.empty()) j.set("note", note);
  return j;
}

Json Agreement::to_json() const {
  Json j = Json::object();
  j.set("ok", ok);
  Json array = Json::array();
  for (const VerbAgreement& verb : verbs) array.push_back(verb.to_json());
  j.set("verbs", std::move(array));
  return j;
}

Agreement cross_check(const std::vector<ClientVerb>& client,
                      const ServerSnapshot& server_delta,
                      std::uint64_t transport_errors,
                      const XcheckTolerance& tolerance) {
  Agreement agreement;
  for (const ClientVerb& observed : client) {
    if (observed.count == 0) continue;
    VerbAgreement verdict;
    verdict.verb = observed.verb;
    verdict.client_count = observed.count;
    verdict.client_p50 = observed.p50;
    verdict.client_p99 = observed.p99;

    const auto it = server_delta.verb_latency.find(observed.verb);
    if (it == server_delta.verb_latency.end()) {
      verdict.ok = false;
      verdict.note = "verb missing from the server's latency histograms";
      agreement.verbs.push_back(verdict);
      agreement.ok = false;
      continue;
    }
    const WireHistogram& server = it->second;
    verdict.server_count = server.count();
    verdict.server_p50 = server.quantile(0.5);
    verdict.server_p99 = server.quantile(0.99);

    // Counts: the server must have seen every exchange the client
    // completed; a request that died on the wire may be counted on
    // either side, so transport errors widen the window.
    const std::uint64_t lo =
        observed.count > transport_errors ? observed.count - transport_errors
                                          : 0;
    const std::uint64_t hi = observed.count + transport_errors;
    if (verdict.server_count < lo || verdict.server_count > hi) {
      verdict.ok = false;
      verdict.note = "request counts disagree beyond the transport-error"
                     " window";
    }
    // Physics: server handling cannot exceed the client's end-to-end
    // observation by more than one log2 bucket (both quantiles are
    // bucket upper bounds) plus the absolute slack.
    const double slack = tolerance.slack_seconds;
    if (verdict.ok && (verdict.server_p50 >
                           verdict.client_p50 * 2.0 + slack ||
                       verdict.server_p99 >
                           verdict.client_p99 * 2.0 + slack)) {
      verdict.ok = false;
      verdict.note = "server-side latency exceeds the client observation";
    }
    // Overhead: the client may add wire, connect and queue-wait cost,
    // but only within the configured factor.
    if (verdict.ok &&
        (verdict.client_p50 >
             verdict.server_p50 * tolerance.overhead_factor + slack ||
         verdict.client_p99 >
             verdict.server_p99 * tolerance.overhead_factor + slack)) {
      verdict.ok = false;
      verdict.note = "client-observed latency exceeds the overhead"
                     " tolerance";
    }
    agreement.ok = agreement.ok && verdict.ok;
    agreement.verbs.push_back(verdict);
  }
  return agreement;
}

}  // namespace clktune::load
