#include "core/report_json.h"

#include <cstddef>

namespace clktune::core {

using util::Json;

Json buffer_info_json(const BufferInfo& info) {
  Json j = Json::object();
  j.set("ff", info.ff);
  j.set("window", Json(util::JsonArray{Json(info.window_lo),
                                       Json(info.window_hi)}));
  j.set("range", Json(util::JsonArray{Json(info.range_lo),
                                      Json(info.range_hi)}));
  j.set("usage_step1", info.usage_step1);
  j.set("usage_final", info.usage_final);
  j.set("avg_k", info.avg_k);
  j.set("group", info.group);
  return j;
}

Json phase_diagnostics_json(const PhaseDiagnostics& diag,
                            bool include_timing) {
  Json j = Json::object();
  if (include_timing) j.set("seconds", diag.seconds);
  j.set("samples_with_violations", diag.samples_with_violations);
  j.set("unfixable_samples", diag.unfixable_samples);
  j.set("milps_solved", diag.milps_solved);
  j.set("milp_nodes", diag.milp_nodes);
  j.set("truncated_milps", diag.truncated_milps);
  j.set("lazy_rounds", diag.lazy_rounds);
  return j;
}

namespace {

Json histogram_summary_json(const std::vector<util::IntHistogram>& hists) {
  // Summaries only: per-FF total mass and support bounds.  Full Fig.-5
  // dumps stay in the bench binaries.
  Json arr = Json::array();
  for (const util::IntHistogram& h : hists) {
    Json j = Json::object();
    j.set("total", h.total());
    j.set("min_key", h.min_key());
    j.set("max_key", h.max_key());
    arr.push_back(std::move(j));
  }
  return arr;
}

}  // namespace

Json insertion_result_json(const InsertionResult& result,
                           bool include_timing) {
  Json j = Json::object();
  j.set("step_ps", result.step_ps);
  j.set("tau_ps", result.tau_ps);
  j.set("clock_period_ps", result.clock_period_ps);

  Json buffers = Json::array();
  for (const BufferInfo& b : result.buffers)
    buffers.push_back(buffer_info_json(b));
  j.set("buffers", std::move(buffers));

  Json plan = Json::object();
  plan.set("physical_buffers", result.plan.physical_buffers());
  plan.set("average_range", result.plan.average_range());
  Json groups = Json::array();
  for (int g : result.plan.group_of) groups.push_back(Json(g));
  plan.set("group_of", std::move(groups));
  j.set("plan", std::move(plan));

  j.set("step1", phase_diagnostics_json(result.step1, include_timing));
  j.set("step2a", phase_diagnostics_json(result.step2a, include_timing));
  j.set("step2b", phase_diagnostics_json(result.step2b, include_timing));
  j.set("step2a_skipped", result.step2a_skipped);
  j.set("out_of_window_fraction", result.out_of_window_fraction);
  j.set("pruned_count", result.pruned_count);
  j.set("hist_step1_min", histogram_summary_json(result.hist_step1_min));
  j.set("hist_step2", histogram_summary_json(result.hist_step2));
  if (include_timing) j.set("total_seconds", result.total_seconds);
  return j;
}

Json yield_result_json(const feas::YieldResult& result) {
  Json j = Json::object();
  j.set("yield", result.yield);
  j.set("ci95", result.ci95);
  j.set("passing", result.passing);
  j.set("samples", result.samples);
  return j;
}

Json yield_report_json(const feas::YieldReport& report) {
  Json j = Json::object();
  j.set("clock_period_ps", report.clock_period_ps);
  j.set("eval_seed", report.eval_seed);
  j.set("original", yield_result_json(report.original));
  j.set("tuned", yield_result_json(report.tuned));
  j.set("improvement", report.improvement());
  return j;
}

Json table_row_json(const TableRow& row, bool include_timing) {
  Json j = Json::object();
  j.set("circuit", row.circuit);
  j.set("ns", row.ns);
  j.set("ng", row.ng);
  j.set("setting", row.setting);
  j.set("clock_ps", row.clock_ps);
  j.set("nb", row.nb);
  j.set("ab", row.ab);
  j.set("yield", row.yield);
  j.set("yield_original", row.yield_original);
  j.set("improvement", row.improvement());
  if (include_timing) j.set("runtime_s", row.runtime_s);
  return j;
}

BufferInfo buffer_info_from_json(const util::Json& j) {
  BufferInfo info;
  info.ff = static_cast<int>(j.at("ff").as_int());
  const util::JsonArray& window = j.at("window").as_array();
  const util::JsonArray& range = j.at("range").as_array();
  if (window.size() != 2 || range.size() != 2)
    throw util::JsonError("result: window / range must be [lo, hi]");
  info.window_lo = static_cast<int>(window[0].as_int());
  info.window_hi = static_cast<int>(window[1].as_int());
  info.range_lo = static_cast<int>(range[0].as_int());
  info.range_hi = static_cast<int>(range[1].as_int());
  info.usage_step1 = j.at("usage_step1").as_uint();
  info.usage_final = j.at("usage_final").as_uint();
  info.avg_k = j.at("avg_k").as_double();
  info.group = static_cast<int>(j.at("group").as_int());
  return info;
}

PhaseDiagnostics phase_diagnostics_from_json(const util::Json& j) {
  PhaseDiagnostics diag;
  if (const util::Json* seconds = j.find("seconds"))
    diag.seconds = seconds->as_double();
  diag.samples_with_violations = j.at("samples_with_violations").as_uint();
  diag.unfixable_samples = j.at("unfixable_samples").as_uint();
  diag.milps_solved = j.at("milps_solved").as_uint();
  diag.milp_nodes = j.at("milp_nodes").as_uint();
  diag.truncated_milps = j.at("truncated_milps").as_uint();
  diag.lazy_rounds = j.at("lazy_rounds").as_uint();
  return diag;
}

namespace {

std::vector<util::IntHistogram> histograms_from_summary_json(
    const util::Json& j) {
  // The artifact stores per-FF summaries only (total, support bounds); a
  // minimal histogram with the same summary re-serialises identically.
  std::vector<util::IntHistogram> hists;
  for (const util::Json& s : j.as_array()) {
    util::IntHistogram h;
    const std::uint64_t total = s.at("total").as_uint();
    const int min_key = static_cast<int>(s.at("min_key").as_int());
    const int max_key = static_cast<int>(s.at("max_key").as_int());
    if (total > 0) {
      h.add(min_key, total);
      if (max_key != min_key) h.add(max_key, 0);  // extend support only
    }
    hists.push_back(std::move(h));
  }
  return hists;
}

}  // namespace

InsertionResult insertion_result_from_json(const util::Json& j) {
  InsertionResult result;
  result.step_ps = j.at("step_ps").as_double();
  result.tau_ps = j.at("tau_ps").as_double();
  result.clock_period_ps = j.at("clock_period_ps").as_double();
  for (const util::Json& b : j.at("buffers").as_array())
    result.buffers.push_back(buffer_info_from_json(b));
  result.plan = tuning_plan_from_json(j);
  result.step1 = phase_diagnostics_from_json(j.at("step1"));
  result.step2a = phase_diagnostics_from_json(j.at("step2a"));
  result.step2b = phase_diagnostics_from_json(j.at("step2b"));
  result.step2a_skipped = j.at("step2a_skipped").as_bool();
  result.out_of_window_fraction = j.at("out_of_window_fraction").as_double();
  result.pruned_count = static_cast<int>(j.at("pruned_count").as_int());
  result.hist_step1_min = histograms_from_summary_json(j.at("hist_step1_min"));
  result.hist_step2 = histograms_from_summary_json(j.at("hist_step2"));
  if (const util::Json* seconds = j.find("total_seconds"))
    result.total_seconds = seconds->as_double();
  return result;
}

feas::YieldResult yield_result_from_json(const util::Json& j) {
  feas::YieldResult result;
  result.yield = j.at("yield").as_double();
  result.ci95 = j.at("ci95").as_double();
  result.passing = j.at("passing").as_uint();
  result.samples = j.at("samples").as_uint();
  return result;
}

feas::YieldReport yield_report_from_json(const util::Json& j) {
  feas::YieldReport report;
  report.clock_period_ps = j.at("clock_period_ps").as_double();
  report.eval_seed = j.at("eval_seed").as_uint();
  report.original = yield_result_from_json(j.at("original"));
  report.tuned = yield_result_from_json(j.at("tuned"));
  return report;
}

feas::TuningPlan tuning_plan_from_json(const util::Json& result_json) {
  feas::TuningPlan plan;
  plan.step_ps = result_json.at("step_ps").as_double();
  if (plan.step_ps <= 0.0)
    throw util::JsonError("result: step_ps must be positive");
  const util::JsonArray& buffers = result_json.at("buffers").as_array();
  const util::JsonArray& groups =
      result_json.at("plan").at("group_of").as_array();
  if (groups.size() != buffers.size())
    throw util::JsonError("result: group_of and buffers length mismatch");
  int max_group = -1;
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const util::Json& b = buffers[i];
    feas::BufferWindow w;
    w.ff = static_cast<int>(b.at("ff").as_int());
    // The plan's windows are the *reduced* ranges (what the evaluator
    // measures), not the wider assigned windows.
    const util::JsonArray& range = b.at("range").as_array();
    if (range.size() != 2)
      throw util::JsonError("result: range must be [lo, hi]");
    w.k_lo = static_cast<int>(range[0].as_int());
    w.k_hi = static_cast<int>(range[1].as_int());
    if (w.ff < 0 || w.k_lo > w.k_hi)
      throw util::JsonError("result: malformed buffer window");
    plan.buffers.push_back(w);
    const int g = static_cast<int>(groups[i].as_int());
    if (g < 0) throw util::JsonError("result: negative group id");
    plan.group_of.push_back(g);
    if (g > max_group) max_group = g;
  }
  plan.num_groups = max_group + 1;
  return plan;
}

}  // namespace clktune::core
