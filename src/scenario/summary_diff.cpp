#include "scenario/summary_diff.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

namespace clktune::scenario {

using util::Json;
using util::JsonError;

namespace {

struct Cell {
  std::string name;
  std::string kind;
  /// Kind-specific comparison metrics, keyed deterministically:
  /// yield → {"tuned"}, criticality → {"arc:<index>"} (after-tuning
  /// probability), binning → {"<period_ps>"} (tuned yield per rung).
  std::vector<std::pair<std::string, double>> metrics;
};

/// Extracts comparison cells from a campaign summary (its "results" array)
/// or a bare scenario-result artifact.
std::vector<Cell> extract_cells(const Json& artifact) {
  std::vector<Cell> cells;
  const auto read_one = [&](const Json& r) {
    Cell cell;
    cell.name = r.at("name").as_string();
    const Json* kind = r.find("kind");
    cell.kind = kind != nullptr ? kind->as_string() : "yield";
    if (cell.kind == "criticality") {
      for (const Json& arc : r.at("criticality").at("arcs").as_array())
        cell.metrics.emplace_back(
            "arc:" + Json(arc.at("arc").as_uint()).dump(),
            arc.at("after").as_double());
    } else if (cell.kind == "binning") {
      for (const Json& bin : r.at("binning").at("bins").as_array())
        cell.metrics.emplace_back(
            Json(bin.at("period_ps").as_double()).dump(),
            bin.at("tuned").at("yield").as_double());
    } else {
      cell.metrics.emplace_back(
          "tuned", r.at("yield").at("tuned").at("yield").as_double());
    }
    cells.push_back(std::move(cell));
  };
  if (const Json* results = artifact.find("results")) {
    for (const Json& r : results->as_array()) read_one(r);
  } else {
    read_one(artifact);
  }
  return cells;
}

double lookup(const Cell& cell, const std::string& key, double missing) {
  for (const auto& [k, v] : cell.metrics)
    if (k == key) return v;
  return missing;
}

/// The scalar shown in the diff table: tuned yield (yield), the highest
/// after-tuning arc criticality (criticality), the lowest per-bin tuned
/// yield (binning).
double scalar_of(const Cell& cell) {
  if (cell.metrics.empty()) return 0.0;
  double value = cell.metrics.front().second;
  for (const auto& [k, v] : cell.metrics)
    value = cell.kind == "criticality" ? std::max(value, v)
                                       : std::min(value, v);
  return value;
}

/// Compares one matched cell pair; sets `regression`, or returns false when
/// the pair is incomparable (different binning ladders).
bool compare_cells(const Cell& a, const Cell& b, double tolerance,
                   CellDiff& d) {
  if (a.kind == "criticality") {
    // Top-K rank sets under tolerance: an arc ranked on one side only
    // counts as probability 0 on the other.
    for (const auto& [key, va] : a.metrics)
      if (std::abs(lookup(b, key, 0.0) - va) > tolerance) d.regression = true;
    for (const auto& [key, vb] : b.metrics)
      if (std::abs(lookup(a, key, 0.0) - vb) > tolerance) d.regression = true;
    return true;
  }
  if (a.kind == "binning") {
    // Same ladder required; then every rung's tuned yield may not drop.
    if (a.metrics.size() != b.metrics.size()) return false;
    for (std::size_t r = 0; r < a.metrics.size(); ++r)
      if (a.metrics[r].first != b.metrics[r].first) return false;
    for (std::size_t r = 0; r < a.metrics.size(); ++r)
      if (b.metrics[r].second < a.metrics[r].second - tolerance)
        d.regression = true;
    return true;
  }
  d.regression = scalar_of(b) < scalar_of(a) - tolerance;
  return true;
}

}  // namespace

SummaryDiff diff_summaries(const Json& a, const Json& b, double tolerance) {
  if (tolerance < 0.0)
    throw JsonError("diff: tolerance must be >= 0");
  const std::vector<Cell> cells_a = extract_cells(a);
  const std::vector<Cell> cells_b = extract_cells(b);

  std::unordered_map<std::string, const Cell*> by_name_b;
  for (const Cell& cell : cells_b)
    if (!by_name_b.emplace(cell.name, &cell).second)
      throw JsonError("diff: duplicate cell \"" + cell.name + "\"");

  SummaryDiff diff;
  std::unordered_map<std::string, bool> seen_in_a;
  for (const Cell& cell : cells_a) {
    if (!seen_in_a.emplace(cell.name, true).second)
      throw JsonError("diff: duplicate cell \"" + cell.name + "\"");
    const auto match = by_name_b.find(cell.name);
    if (match == by_name_b.end()) {
      diff.only_in_a.push_back(cell.name);
      continue;
    }
    const Cell& other = *match->second;
    if (cell.kind != other.kind) {
      diff.incomparable.push_back(cell.name);
      continue;
    }
    CellDiff d;
    d.name = cell.name;
    d.kind = cell.kind;
    d.yield_a = scalar_of(cell);
    d.yield_b = scalar_of(other);
    if (!compare_cells(cell, other, tolerance, d)) {
      diff.incomparable.push_back(cell.name);
      continue;
    }
    diff.regressions += d.regression ? 1 : 0;
    diff.cells.push_back(std::move(d));
  }
  for (const Cell& cell : cells_b)
    if (seen_in_a.find(cell.name) == seen_in_a.end())
      diff.only_in_b.push_back(cell.name);
  return diff;
}

}  // namespace clktune::scenario
