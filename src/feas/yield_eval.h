// Yield evaluation of a tuning plan: a chip (Monte-Carlo sample) passes when
// a feasible assignment of discrete buffer delays exists that meets all
// setup and hold constraints at clock period T.
//
// With a fixed plan this is a pure feasibility question over difference
// constraints (buffered flip-flops are variables, everything else is pinned
// to zero, windows become bounds against a reference node), solved per
// sample on grid-floored constants.  The arc partition is computed once at
// construction:
//
//   * check-only arcs — both endpoints unbuffered, so tuning cancels: per
//     sample they reduce to a sign test on the raw constants, evaluated
//     first with early exit (a failing chip is rejected before most of its
//     arcs are even sampled);
//   * edge arcs — incident to a tuned group: their constraint-graph
//     topology is static, so the SPFA graph is built once and only the two
//     weights per arc are rewritten per sample.
//
// This collapses the per-sample graph from |E| to the handful of
// buffer-adjacent arcs, and the steady-state check performs zero heap
// allocations (per-thread workspace).  Evaluation uses its own seed so
// reported yields are out-of-sample relative to the insertion run.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "feas/spfa.h"
#include "feas/tuning_plan.h"
#include "mc/delay_cache.h"
#include "mc/sampler.h"
#include "ssta/seq_graph.h"
#include "util/stats.h"

namespace clktune::feas {

struct YieldResult {
  double yield = 0.0;
  double ci95 = 0.0;  ///< 95 % confidence half-width
  std::uint64_t passing = 0;
  std::uint64_t samples = 0;
};

class YieldEvaluator {
 public:
  YieldEvaluator(const ssta::SeqGraph& graph, TuningPlan plan,
                 double clock_period_ps);

  /// Does sample k (drawn via `sampler`) admit a feasible configuration?
  /// Zero heap allocations in steady state (per-thread workspace).
  bool sample_feasible(const mc::Sampler& sampler, std::uint64_t k) const;

  /// Same question over precomputed delays (a delay-cache slice).
  bool sample_feasible(const mc::ArcDelaysView& delays) const;

  /// Buffer configuration (delay steps per physical group) for sample k, or
  /// nullopt when the chip cannot be rescued.  This is the post-silicon
  /// "testing and configuration" step the paper lists as future work.
  std::optional<std::vector<int>> find_configuration(
      const mc::Sampler& sampler, std::uint64_t k) const;

  /// Same question over precomputed delays (a delay-cache slice), so a
  /// caller that already materialised a sample's delays — the criticality
  /// engine visits every arc anyway — does not pay a second sampling pass.
  std::optional<std::vector<int>> find_configuration(
      const mc::ArcDelaysView& delays) const;

  /// Group variable of flip-flop `ff` under the plan's grouping; -1 when
  /// the flip-flop carries no tuning buffer.  Configurations returned by
  /// find_configuration are indexed by this variable.
  int group_of_ff(int ff) const {
    return var_of_ff_[static_cast<std::size_t>(ff)];
  }

  /// Yield over `samples` Monte-Carlo chips.
  YieldResult evaluate(const mc::Sampler& sampler, std::uint64_t samples,
                       int threads = 0) const;

  /// Yield through a shared delay cache: with fill=true this evaluation
  /// computes (and stores) every sample's delays; with fill=false it reuses
  /// them, skipping the sampling work entirely when the cache is resident.
  /// Results are bit-identical to the plain overload.
  YieldResult evaluate(mc::SampleDelayCache& delays, std::uint64_t samples,
                       int threads, bool fill) const;

  const TuningPlan& plan() const { return plan_; }
  double clock_period_ps() const { return clock_period_; }
  /// Arc-partition sizes (check-only vs buffer-adjacent), for diagnostics.
  std::size_t check_arc_count() const { return check_arcs_.size(); }
  std::size_t edge_arc_count() const { return edge_arcs_.size(); }

 private:
  /// Per-thread scratch; contents carry only capacity between calls.
  struct Workspace {
    std::vector<std::int64_t> weights;
    SpfaScratch spfa;
  };

  /// A buffer-adjacent arc: its constraint edges live at fixed slots of the
  /// static SPFA graph; only the weights change per sample.
  struct EdgeArc {
    int arc = 0;         ///< index into graph.arcs
    int setup_slot = 0;  ///< weight slot of  x_ui - x_uj <= setup
    int hold_slot = 0;   ///< weight slot of  x_uj - x_ui <= hold
  };

  /// Feasibility of sample k; on success ws.dist holds the potentials.
  bool solve_sample(const mc::Sampler& sampler, std::uint64_t k,
                    Workspace& ws) const;
  /// Per-group delay steps from a feasible workspace (reference at zero).
  std::vector<int> config_from_workspace(const Workspace& ws) const;
  template <class Delays>
  bool solve_sample_impl(const Delays& delays, Workspace& ws) const;

  void add_static_edge(int u, int v, std::int64_t w);

  const ssta::SeqGraph* graph_;
  TuningPlan plan_;
  double clock_period_;
  /// Group variable per FF; -1 when the FF has no buffer.
  std::vector<int> var_of_ff_;
  /// Per-group window (union of members).
  std::vector<BufferWindow> group_windows_;

  // Arc partition (III-style split, computed once).
  std::vector<int> check_arcs_;
  std::vector<EdgeArc> edge_arcs_;

  // Static constraint-graph topology over num_groups + 1 nodes (the last is
  // the pinned reference): CSR-ish adjacency with a parallel weight
  // template.  Window-bound weights are final; edge-arc slots are
  // placeholders rewritten into the workspace copy per sample.
  std::vector<int> head_;
  std::vector<int> edge_to_;
  std::vector<int> edge_next_;
  std::vector<std::int64_t> weights_template_;
};

/// Yield with no buffers at all (the paper's Yo).
YieldResult original_yield(const ssta::SeqGraph& graph, double clock_period_ps,
                           const mc::Sampler& sampler, std::uint64_t samples,
                           int threads = 0);

/// original_yield through a shared delay cache (see YieldEvaluator).
YieldResult original_yield(const ssta::SeqGraph& graph, double clock_period_ps,
                           mc::SampleDelayCache& delays,
                           std::uint64_t samples, int threads, bool fill);

/// Before/after yield measurement of a tuning plan at one clock period,
/// evaluated out-of-sample (its own seed): the paper's Yo, Y and Yi columns
/// as one machine-readable artifact.
struct YieldReport {
  double clock_period_ps = 0.0;
  std::uint64_t eval_seed = 0;
  YieldResult original;  ///< Yo: no buffers
  YieldResult tuned;     ///< Y: with the plan's buffers

  /// Yi = Y - Yo, in probability (not percent).
  double improvement() const { return tuned.yield - original.yield; }
};

/// Evaluates original and tuned yield over `samples` fresh Monte-Carlo chips
/// drawn with `eval_seed`.
YieldReport evaluate_yield_report(const ssta::SeqGraph& graph,
                                  const TuningPlan& plan,
                                  double clock_period_ps,
                                  std::uint64_t eval_seed,
                                  std::uint64_t samples, int threads = 0);

}  // namespace clktune::feas
