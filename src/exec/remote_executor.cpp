#include "exec/remote_executor.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "serve/client.h"
#include "util/timer.h"

namespace clktune::exec {

using util::Json;

namespace {

struct RemoteCell {
  std::size_t index = 0;  ///< global expansion index from the wire
  scenario::ScenarioResult result;
  bool cached = false;
};

}  // namespace

Outcome RemoteExecutor::execute(const Request& request, Observer* observer) {
  request.validate();
  const util::Stopwatch timer;

  Json wire = Json::object();
  wire.set("cmd",
           request.kind == Request::Kind::scenario ? "run" : "sweep");
  wire.set("doc", request.document());
  if (request.shard_count > 1) {
    Json shard = Json::object();
    shard.set("index", static_cast<std::uint64_t>(request.shard_index));
    shard.set("count", static_cast<std::uint64_t>(request.shard_count));
    wire.set("shard", std::move(shard));
  }
  if (!request.indices.empty()) {
    Json indices = Json::array();
    for (const std::size_t index : request.indices)
      indices.push_back(static_cast<std::uint64_t>(index));
    wire.set("indices", std::move(indices));
  }

  if (observer != nullptr)
    observer->on_begin(request.expansion_size(), request.shard_cells());

  std::vector<RemoteCell> cells;
  serve::SubmitOutcome stream;
  try {
    stream = serve::submit_raw(
        host_, port_, wire,
        [&](const Json& event) {
          if (event.at("event").as_string() != "result") return;
          if (observer != nullptr && observer->cancelled())
            throw CancelledError("exec: remote stream cancelled");
          RemoteCell cell;
          cell.index = event.at("index").as_uint();
          cell.result =
              scenario::ScenarioResult::from_json(event.at("result"));
          cell.cached = event.at("cached").as_bool();
          if (observer != nullptr) {
            CellEvent forwarded{cell.index, cell.result, cell.cached,
                                cell.cached ? 0.0 : cell.result.seconds};
            observer->on_cell(forwarded);
          }
          cells.push_back(std::move(cell));
        },
        timeouts_);
  } catch (const CancelledError&) {
    throw;
  } catch (const util::JsonError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw ExecError(name() + ": " + e.what());
  }

  if (!stream.ok()) {
    const Json* message = stream.final_event.find("message");
    throw ExecError(name() + ": " +
                    (message != nullptr ? message->as_string()
                                        : "connection closed"));
  }

  // Streamed completion order back to expansion order — the daemon tags
  // every cell with its global expansion index.
  std::sort(cells.begin(), cells.end(),
            [](const RemoteCell& a, const RemoteCell& b) {
              return a.index < b.index;
            });

  // The daemon must have honoured the selection — shard slice or explicit
  // index list: exactly the requested cells, none duplicated.  A daemon
  // that ignored the "shard" / "indices" member would otherwise corrupt a
  // downstream merge silently instead of failing here.
  if (request.kind == Request::Kind::campaign) {
    if (cells.size() != request.shard_cells())
      throw ExecError(name() + ": server sent " +
                      std::to_string(cells.size()) + " cells, expected " +
                      std::to_string(request.shard_cells()));
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const bool belongs =
          request.indices.empty()
              ? cells[i].index % request.shard_count == request.shard_index
              : cells[i].index == request.indices[i];
      if (!belongs || (i > 0 && cells[i].index == cells[i - 1].index))
        throw ExecError(name() + ": cell index " +
                        std::to_string(cells[i].index) +
                        " does not belong to the requested " +
                        (request.indices.empty() ? "shard slice"
                                                 : "index list"));
    }
  }

  if (request.kind == Request::Kind::scenario) {
    if (cells.size() != 1)
      throw ExecError(name() + ": server sent no result");
    Outcome outcome;
    outcome.kind = Request::Kind::scenario;
    outcome.result = std::move(cells.front().result);
    outcome.scenarios_run = 1;
    outcome.scenarios_cached = cells.front().cached ? 1 : 0;
    outcome.targets_missed = outcome.result.met_target ? 0 : 1;
    outcome.seconds = timer.seconds();
    outcome.backend = name();
    return outcome;
  }

  scenario::CampaignSummary summary;
  summary.name = request.campaign.name;
  summary.shard_index = request.shard_index;
  summary.shard_count = request.shard_count;
  summary.results.reserve(cells.size());
  for (RemoteCell& cell : cells) {
    summary.scenarios_cached += cell.cached ? 1 : 0;
    summary.results.push_back(std::move(cell.result));
  }
  summary.recount();
  summary.total_seconds = timer.seconds();
  return Outcome::from_summary(std::move(summary), name());
}

}  // namespace clktune::exec
