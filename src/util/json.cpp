#include "util/json.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fault/fault.h"

namespace clktune::util {

namespace {

const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::null: return "null";
    case Json::Type::boolean: return "boolean";
    case Json::Type::number: return "number";
    case Json::Type::string: return "string";
    case Json::Type::array: return "array";
    case Json::Type::object: return "object";
  }
  return "?";
}

}  // namespace

void Json::require(Type t) const {
  if (type_ != t)
    throw JsonError(std::string("json: expected ") + type_name(t) + ", got " +
                    type_name(type_));
}

std::int64_t Json::as_int() const {
  require(Type::number);
  const double r = std::nearbyint(num_);
  if (r != num_)
    throw JsonError("json: expected integer, got " + std::to_string(num_));
  return static_cast<std::int64_t>(r);
}

std::uint64_t Json::as_uint() const {
  const std::int64_t v = as_int();
  if (v < 0)
    throw JsonError("json: expected non-negative integer, got " +
                    std::to_string(v));
  return static_cast<std::uint64_t>(v);
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  require(Type::object);
  const Json* v = find(key);
  if (v == nullptr) throw JsonError("json: missing key \"" + key + "\"");
  return *v;
}

Json& Json::set(const std::string& key, Json value) {
  require(Type::object);
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(value));
  return *this;
}

// ------------------------------------------------------------------ writer

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double d) {
  if (!std::isfinite(d))
    throw JsonError("json: cannot serialise non-finite number");
  // Integers within the exact-double range print without a decimal point.
  const double r = std::nearbyint(d);
  if (r == d && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(r));
    out += buf;
    return;
  }
  // Shortest representation that round-trips (locale-independent).
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  out.append(buf, res.ptr);
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::null: out += "null"; break;
    case Type::boolean: out += bool_ ? "true" : "false"; break;
    case Type::number: dump_number(out, num_); break;
    case Type::string: dump_string(out, str_); break;
    case Type::array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) newline_pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) newline_pad(depth);
      out += ']';
      break;
    }
    case Type::object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) newline_pad(depth + 1);
        dump_string(out, obj_[i].first);
        out += pretty ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ------------------------------------------------------------------ parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("json parse error at line " + std::to_string(line) +
                    ", column " + std::to_string(col) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p)
      if (pos_ >= text_.size() || text_[pos_++] != *p)
        fail(std::string("invalid literal (expected \"") + word + "\")");
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_word("true"); return Json(true);
      case 'f': expect_word("false"); return Json(false);
      case 'n': expect_word("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      for (const auto& [k, v] : members)
        if (k == key) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Json(std::move(members));
  }

  Json parse_array() {
    expect('[');
    JsonArray items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Json(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: --pos_; fail("invalid escape character");
      }
    }
    return out;
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9')
        cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        cp |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("invalid hex digit in \\u escape");
    }
    if (cp >= 0xd800 && cp <= 0xdfff)
      fail("surrogate \\u escapes are not supported");
    // UTF-8 encode the basic-plane code point.
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("invalid number");
    const bool leading_zero = text_[pos_] == '0';
    ++pos_;
    if (leading_zero && pos_ < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("leading zeros are not allowed");
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("digit required after decimal point");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("digit required in exponent");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    double value = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_)
      fail("unrepresentable number");
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

namespace {

Json canonicalized(const Json& j) {
  switch (j.type()) {
    case Json::Type::array: {
      Json out = Json::array();
      for (const Json& v : j.as_array()) out.push_back(canonicalized(v));
      return out;
    }
    case Json::Type::object: {
      JsonObject members;
      for (const auto& [k, v] : j.as_object())
        members.emplace_back(k, canonicalized(v));
      std::sort(members.begin(), members.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      return Json(std::move(members));
    }
    default:
      return j;
  }
}

}  // namespace

std::string canonical_dump(const Json& value) {
  return canonicalized(value).dump(-1);
}

Json read_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return Json::parse(buf.str());
  } catch (const JsonError& e) {
    throw JsonError(path + ": " + e.what());
  }
}

void write_json_file(const std::string& path, const Json& value, int indent) {
  std::string payload = value.dump(indent);
  payload.push_back('\n');
  // Injection: `fail`/`enospc` model an unwritable artifact, `truncate`
  // leaves a torn document behind (keep_bytes of the payload).
  if (fault::armed()) {
    const fault::Fired fired = fault::check("json.write");
    if (fired.action == fault::Action::truncate ||
        fired.action == fault::Action::short_write)
      payload.resize(std::min(payload.size(), fired.keep_bytes));
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << payload;
  out.flush();  // surface buffered-write failures (ENOSPC) before the check
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace clktune::util
