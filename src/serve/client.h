// Client side of the serve protocol: connect, send one request line, stream
// response events until "done" / "status" / "error" (or EOF).  Used by
// `clktune submit`, the end-to-end tests and the serve_roundtrip example.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/json.h"

namespace clktune::serve {

struct SubmitOutcome {
  /// "result" events' artifacts, reordered by expansion index (so a sweep
  /// submission yields the same ordering as the local summary).
  std::vector<util::Json> results;
  /// How many of the results were served from the daemon's cache.
  std::uint64_t cached = 0;
  /// The terminal event ("done" / "status" / "error"); object() on EOF.
  util::Json final_event = util::Json::object();

  bool ok() const;             ///< terminal event is a successful "done"
  std::uint64_t targets_missed() const;
};

/// Progress observer: every response event, in arrival order; may be empty.
using EventCallback = std::function<void(const util::Json&)>;

/// Client-side deadlines for one exchange.  0 = no deadline (block
/// indefinitely, the historical behaviour).  A connect that exceeds its
/// deadline, and a response stream that stalls longer than `io_timeout_ms`
/// between bytes, both throw std::runtime_error whose message contains
/// "timed out" — the diagnostic callers show instead of hanging on an
/// unreachable or wedged daemon.
struct SubmitOptions {
  int connect_timeout_ms = 0;
  int io_timeout_ms = 0;
};

/// Sends one pre-built request line verbatim and collects the response
/// stream — the layer RemoteExecutor and fleet::FleetExecutor build on,
/// for requests that carry members beyond cmd/doc (e.g. a "shard" slice or
/// an "indices" work unit).  Throws std::runtime_error on connection
/// failure or an expired deadline and util::JsonError on a malformed
/// response line; exceptions from `on_event` propagate (closing the
/// connection), which is how an observer aborts a stream.
SubmitOutcome submit_raw(const std::string& host, std::uint16_t port,
                         const util::Json& request,
                         const EventCallback& on_event = {},
                         const SubmitOptions& options = {});

/// Sends `{"cmd":cmd,"doc":doc}` (doc omitted when null) and collects the
/// response stream.  Throws std::runtime_error on connection failure and
/// util::JsonError on a malformed response line.
SubmitOutcome submit_request(const std::string& host, std::uint16_t port,
                             const std::string& cmd, const util::Json& doc,
                             const EventCallback& on_event = {});

/// Convenience: submit a scenario or campaign document, auto-detected by
/// its shape (a campaign has a "base" member).
SubmitOutcome submit_document(const std::string& host, std::uint16_t port,
                              const util::Json& doc,
                              const EventCallback& on_event = {});

}  // namespace clktune::serve
