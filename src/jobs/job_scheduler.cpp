#include "jobs/job_scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "cache/result_cache.h"
#include "exec/local_executor.h"
#include "exec/observer.h"
#include "exec/request.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "scenario/campaign.h"
#include "scenario/scenario.h"

namespace clktune::jobs {

using util::Json;

namespace {

/// Job-service metrics in the process-wide obs registry.  Per-state
/// gauges are sampled from JobStore at exposition time (see the serve
/// metrics verb), so only event counters and latencies live here.
struct JobMetrics {
  obs::Counter& submitted;
  obs::Counter& checkpoints;
  obs::Counter& stall_requeues;
  obs::Histogram& queue_wait;
  obs::Histogram& run_seconds;

  static JobMetrics& get() {
    static JobMetrics m{
        obs::Registry::global().counter("clktune_jobs_submitted_total",
                                        "Jobs admitted via submit"),
        obs::Registry::global().counter(
            "clktune_jobs_checkpoints_total",
            "Per-cell checkpoints persisted to job envelopes"),
        obs::Registry::global().counter(
            "clktune_jobs_stall_requeues_total",
            "Running jobs re-queued by the stuck-job watchdog"),
        obs::Registry::global().histogram(
            "clktune_jobs_queue_wait_seconds",
            "Submit-to-claim latency of the job queue", 1e-9),
        obs::Registry::global().histogram(
            "clktune_jobs_run_seconds",
            "Executor wall time of one job, claim to terminal", 1e-9),
    };
    return m;
  }
};

obs::Counter& jobs_completed(const char* state) {
  return obs::Registry::global().counter(
      "clktune_jobs_completed_total", "Jobs reaching a terminal state",
      {{"state", state}});
}

/// Observer adapter: the scheduler wires per-job lambdas in, so the
/// checkpoint/broadcast plumbing stays inside JobScheduler.
class CallbackObserver : public exec::Observer {
 public:
  CallbackObserver(std::function<void(const exec::CellEvent&)> on_cell,
                   std::function<bool()> cancelled)
      : on_cell_(std::move(on_cell)), cancelled_(std::move(cancelled)) {}

  void on_cell(const exec::CellEvent& event) override { on_cell_(event); }
  bool cancelled() override { return cancelled_(); }

 private:
  std::function<void(const exec::CellEvent&)> on_cell_;
  std::function<bool()> cancelled_;
};

/// The wire "result" frame — member order matches the serve layer's
/// result_event, so job streams are byte-compatible with run/sweep
/// streams.
Json result_frame(std::size_t index, bool cached, Json artifact) {
  Json frame = Json::object();
  frame.set("event", "result");
  frame.set("index", static_cast<std::uint64_t>(index));
  frame.set("cached", cached);
  frame.set("result", std::move(artifact));
  return frame;
}

/// The scenario specs a job's cells run, indexed by global expansion
/// index (a scenario job is its own single cell).
std::vector<scenario::ScenarioSpec> specs_of(const JobRecord& rec) {
  if (rec.kind == "campaign")
    return scenario::CampaignSpec::from_json(rec.doc).expand();
  return {scenario::ScenarioSpec::from_json(rec.doc)};
}

}  // namespace

JobScheduler::JobScheduler(std::string directory, cache::ResultCache* cache,
                           JobSchedulerOptions options)
    : store_(std::move(directory)), cache_(cache), options_(options) {
  if (options_.workers == 0) options_.workers = 1;
}

JobScheduler::~JobScheduler() { stop(); }

void JobScheduler::start() {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  if (started_) return;
  started_ = true;
  store_.load();
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  if (options_.stall_timeout_ms > 0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
}

void JobScheduler::stop() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_.store(true);
  }
  queue_ready_.notify_all();
  // Close every live attach before joining: attach loops block on
  // subscription queues, not sockets, so this is what unblocks them.
  {
    const std::lock_guard<std::mutex> lock(sub_mutex_);
    for (auto& [id, subscribers] : subs_) {
      for (const std::shared_ptr<Subscription>& sub : subscribers) {
        {
          const std::lock_guard<std::mutex> sub_lock(sub->mutex);
          sub->closed = true;
        }
        sub->ready.notify_all();
      }
    }
    subs_.clear();
  }
  std::vector<std::thread> workers;
  std::thread watchdog;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    workers.swap(workers_);
    watchdog.swap(watchdog_);
  }
  for (std::thread& worker : workers)
    if (worker.joinable()) worker.join();
  if (watchdog.joinable()) watchdog.join();
}

JobRecord JobScheduler::submit(const util::Json& doc,
                               std::vector<std::size_t> indices) {
  // Validate at admission: a malformed document must fail the submit
  // verb, never a worker minutes later.  The *resolved* document is what
  // gets persisted, so recovery and replay never depend on parser
  // defaults staying stable.
  exec::Request request = exec::Request::from_json(doc);
  request.indices = indices;
  request.validate();
  const bool campaign = request.kind == exec::Request::Kind::campaign;
  const std::size_t cells_total =
      indices.empty() ? request.expansion_size() : indices.size();
  JobRecord rec = store_.create(
      request.document(), campaign ? "campaign" : "scenario",
      campaign ? request.campaign.name : request.scenario.name,
      std::move(indices), cells_total);
  store_.prune_terminal(options_.retain_terminal);
  JobMetrics::get().submitted.inc();
  {
    const std::lock_guard<std::mutex> lock(obs_mutex_);
    queued_at_ns_[rec.id] = obs::steady_now_ns();
  }
  queue_ready_.notify_one();
  return rec;
}

std::optional<JobRecord> JobScheduler::get(const std::string& id) const {
  return store_.get(id);
}

std::vector<JobRecord> JobScheduler::list() const { return store_.list(); }

JobRecord JobScheduler::cancel(const std::string& id) {
  {
    const std::lock_guard<std::mutex> lock(cancel_mutex_);
    cancel_requested_.insert(id);
  }
  // Atomic in the store: a queued job dies right here; anything already
  // claimed is cancelled cooperatively by the flag above.
  const JobRecord rec = store_.cancel_if_queued(id);
  if (is_terminal(rec.state)) {
    {
      const std::lock_guard<std::mutex> lock(cancel_mutex_);
      cancel_requested_.erase(id);
    }
    close_subscribers(id);
  }
  return rec;
}

bool JobScheduler::cancel_requested(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(cancel_mutex_);
  return cancel_requested_.count(id) != 0;
}

bool JobScheduler::stall_requested(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(cancel_mutex_);
  return stall_requested_.count(id) != 0;
}

void JobScheduler::stamp_progress(const std::string& id) {
  const std::lock_guard<std::mutex> lock(obs_mutex_);
  progress_ns_[id] = obs::steady_now_ns();
}

void JobScheduler::watchdog_loop() {
  const std::uint64_t deadline_ns =
      static_cast<std::uint64_t>(options_.stall_timeout_ms) * 1000000ull;
  // Scan a few times per deadline so detection latency stays a fraction
  // of the timeout itself.
  const auto interval =
      std::chrono::milliseconds(std::max(options_.stall_timeout_ms / 4, 10));
  std::unique_lock<std::mutex> lock(queue_mutex_);
  while (!stopping_.load()) {
    queue_ready_.wait_for(lock, interval);
    if (stopping_.load()) return;
    const std::uint64_t now = obs::steady_now_ns();
    std::vector<std::string> stalled;
    {
      const std::lock_guard<std::mutex> obs_lock(obs_mutex_);
      for (const auto& [id, stamp] : progress_ns_)
        if (now - stamp > deadline_ns) stalled.push_back(id);
    }
    // The flag is advisory: the executor notices it at its next
    // cancelled() poll and run_job translates the yield into a re-queue
    // (counted there, where it actually happens).
    const std::lock_guard<std::mutex> cancel_lock(cancel_mutex_);
    for (const std::string& id : stalled) stall_requested_.insert(id);
  }
}

util::Json JobScheduler::counters() const {
  std::size_t by_state[6] = {0, 0, 0, 0, 0, 0};
  for (const JobRecord& rec : store_.list())
    ++by_state[static_cast<int>(rec.state)];
  Json j = Json::object();
  j.set("queued", static_cast<std::uint64_t>(
                      by_state[static_cast<int>(JobState::queued)]));
  j.set("preparing", static_cast<std::uint64_t>(
                         by_state[static_cast<int>(JobState::preparing)]));
  j.set("running", static_cast<std::uint64_t>(
                       by_state[static_cast<int>(JobState::running)]));
  j.set("done", static_cast<std::uint64_t>(
                    by_state[static_cast<int>(JobState::done)]));
  j.set("error", static_cast<std::uint64_t>(
                     by_state[static_cast<int>(JobState::error)]));
  j.set("cancelled", static_cast<std::uint64_t>(
                         by_state[static_cast<int>(JobState::cancelled)]));
  return j;
}

void JobScheduler::worker_loop() {
  for (;;) {
    std::optional<JobRecord> job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_ready_.wait(lock, [&] {
        if (stopping_.load()) return true;
        job = store_.claim_next();
        return job.has_value();
      });
      // A job claimed in the same instant the stop arrived stays
      // `preparing` on disk; the next start's recovery re-queues it.
      if (stopping_.load()) return;
    }
    if (job) run_job(std::move(*job));
  }
}

void JobScheduler::run_job(JobRecord job) {
  const std::string id = job.id;
  {
    const std::lock_guard<std::mutex> lock(obs_mutex_);
    const auto stamp = queued_at_ns_.find(id);
    if (stamp != queued_at_ns_.end()) {
      JobMetrics::get().queue_wait.record(obs::steady_now_ns() -
                                          stamp->second);
      queued_at_ns_.erase(stamp);
    }
  }
  if (cancel_requested(id)) {
    store_.set_state(id, JobState::cancelled);
    jobs_completed("cancelled").inc();
    {
      const std::lock_guard<std::mutex> lock(cancel_mutex_);
      cancel_requested_.erase(id);
    }
    close_subscribers(id);
    return;
  }

  exec::Request request;
  try {
    request = exec::Request::from_json(job.doc);
    request.threads = options_.threads;
    request.cache = cache_;
    request.indices = job.indices;
    request.validate();
  } catch (const std::exception& e) {
    // submit() validated this document once, but a recovered envelope
    // could have aged across schema changes — fail the job, not the pool.
    store_.set_state(id, JobState::error, e.what());
    jobs_completed("error").inc();
    close_subscribers(id);
    return;
  }

  // Crash point: a daemon dying between claiming a job and running it —
  // the envelope is `preparing`, which recovery re-queues.
  if (fault::armed()) fault::poll("scheduler.claim");

  store_.set_state(id, JobState::running);
  stamp_progress(id);

  CallbackObserver observer(
      [this, &id](const exec::CellEvent& event) {
        // Crash point: dying between a computed cell and its checkpoint —
        // the cell's artifact is already in the result cache, so the
        // recovered job replays it for free.
        if (fault::armed()) fault::poll("scheduler.checkpoint");
        // The per-cell checkpoint: persist first, then broadcast —
        // a subscriber snapshot can only ever lag the live stream, and
        // the attach-side index dedup absorbs the overlap.
        try {
          store_.record_cell(id, event.index, event.cached,
                             !event.result.met_target);
        } catch (const std::exception&) {
          // Observer contract: never throw from on_cell.
        }
        stamp_progress(id);
        JobMetrics::get().checkpoints.inc();
        broadcast(id, result_frame(event.index, event.cached,
                                   event.result.to_json()));
      },
      [this, &id] {
        return cancel_requested(id) || stall_requested(id) ||
               stopping_.load();
      });

  exec::LocalExecutor executor;
  const std::uint64_t run_start_ns = obs::steady_now_ns();
  bool requeued = false;
  try {
    executor.execute(request, &observer);
    store_.set_state(id, JobState::done);
    jobs_completed("done").inc();
  } catch (const exec::CancelledError&) {
    if (cancel_requested(id)) {
      store_.set_state(id, JobState::cancelled);
      jobs_completed("cancelled").inc();
    } else if (stall_requested(id)) {
      // The watchdog yanked a stalled job: back to `queued`, where any
      // worker (including this one) re-claims it.  Checkpointed cells
      // replay from the result cache, so only the stalled remainder
      // recomputes; live attach subscriptions survive the hand-off.
      store_.set_state(id, JobState::queued);
      JobMetrics::get().stall_requeues.inc();
      requeued = true;
    } else if (!stopping_.load()) {
      store_.set_state(id, JobState::cancelled);
      jobs_completed("cancelled").inc();
    }
    // else: daemon wind-down, not a user cancel — the envelope stays
    // `running` on disk so recovery re-queues the job on restart.
  } catch (const std::exception& e) {
    store_.set_state(id, JobState::error, e.what());
    jobs_completed("error").inc();
  }
  JobMetrics::get().run_seconds.record(obs::steady_now_ns() - run_start_ns);
  {
    const std::lock_guard<std::mutex> lock(obs_mutex_);
    progress_ns_.erase(id);
  }
  {
    const std::lock_guard<std::mutex> lock(cancel_mutex_);
    cancel_requested_.erase(id);
    stall_requested_.erase(id);
  }
  if (requeued) {
    queue_ready_.notify_one();
    return;  // subscribers stay attached across the re-run
  }
  close_subscribers(id);
}

void JobScheduler::broadcast(const std::string& id, const util::Json& frame) {
  std::vector<std::shared_ptr<Subscription>> targets;
  {
    const std::lock_guard<std::mutex> lock(sub_mutex_);
    const auto it = subs_.find(id);
    if (it == subs_.end()) return;
    targets = it->second;
  }
  for (const std::shared_ptr<Subscription>& sub : targets) {
    {
      const std::lock_guard<std::mutex> sub_lock(sub->mutex);
      if (sub->closed) continue;
      sub->frames.push_back(frame);
    }
    sub->ready.notify_all();
  }
}

void JobScheduler::close_subscribers(const std::string& id) {
  std::vector<std::shared_ptr<Subscription>> targets;
  {
    const std::lock_guard<std::mutex> lock(sub_mutex_);
    const auto it = subs_.find(id);
    if (it == subs_.end()) return;
    targets = std::move(it->second);
    subs_.erase(it);
  }
  for (const std::shared_ptr<Subscription>& sub : targets) {
    {
      const std::lock_guard<std::mutex> sub_lock(sub->mutex);
      sub->closed = true;
    }
    sub->ready.notify_all();
  }
}

void JobScheduler::remove_subscriber(
    const std::string& id, const std::shared_ptr<Subscription>& sub) {
  const std::lock_guard<std::mutex> lock(sub_mutex_);
  const auto it = subs_.find(id);
  if (it == subs_.end()) return;
  auto& subscribers = it->second;
  subscribers.erase(std::remove(subscribers.begin(), subscribers.end(), sub),
                    subscribers.end());
  if (subscribers.empty()) subs_.erase(it);
}

JobRecord JobScheduler::attach(
    const std::string& id, const std::function<bool(const util::Json&)>& sink) {
  const std::optional<JobRecord> admitted = store_.get(id);
  if (!admitted) throw JobError("unknown job id \"" + id + "\"");

  // Subscribe *before* snapshotting progress: a cell checkpointed before
  // the snapshot replays from the cache, one checkpointed after arrives
  // on the subscription, and the overlap is deduplicated by index — no
  // interleaving can lose a cell.
  std::shared_ptr<Subscription> sub;
  if (!is_terminal(admitted->state)) {
    const std::lock_guard<std::mutex> lock(sub_mutex_);
    if (!stopping_.load()) {
      sub = std::make_shared<Subscription>();
      subs_[id].push_back(sub);
    }
  }

  std::optional<JobRecord> snapshot = store_.get(id);
  if (!snapshot) {  // pruned in the gap — treat like unknown
    if (sub != nullptr) remove_subscriber(id, sub);
    throw JobError("unknown job id \"" + id + "\"");
  }
  JobRecord rec = *snapshot;

  // Replay the checkpointed cells from the content-addressed cache.  The
  // artifacts are pure functions of the document, so a cache miss (e.g. a
  // memory-only daemon restarted) recomputes the exact same bytes — the
  // replayed stream is indistinguishable from the live one.
  std::vector<scenario::ScenarioSpec> specs;
  if (!rec.done_indices.empty()) specs = specs_of(rec);
  std::set<std::size_t> sent;
  for (const std::size_t index : rec.done_indices) {
    const scenario::ScenarioSpec& spec =
        rec.kind == "campaign" ? specs.at(index) : specs.at(0);
    const std::string key = cache::scenario_cache_key(spec);
    Json artifact;
    bool cached = true;
    if (std::optional<Json> hit = cache_->get(key)) {
      artifact = std::move(*hit);
    } else {
      const scenario::ScenarioResult result = scenario::run_scenario(
          spec, rec.kind == "campaign" ? 1 : options_.threads);
      artifact = result.to_json();
      cache_->put(key, artifact);
      cached = false;
    }
    sent.insert(index);
    if (!sink(result_frame(index, cached, std::move(artifact)))) {
      if (sub != nullptr) remove_subscriber(id, sub);
      return rec;
    }
  }

  // Terminal already (or scheduler stopping): the stream is complete.
  if (sub == nullptr) return rec;
  if (is_terminal(rec.state)) {
    remove_subscriber(id, sub);
    return rec;
  }

  // Live phase: drain the subscription until the worker closes it.
  for (;;) {
    Json frame;
    {
      std::unique_lock<std::mutex> lock(sub->mutex);
      sub->ready.wait(lock,
                      [&] { return sub->closed || !sub->frames.empty(); });
      if (sub->frames.empty()) break;  // closed and fully drained
      frame = std::move(sub->frames.front());
      sub->frames.pop_front();
    }
    const std::size_t index =
        static_cast<std::size_t>(frame.at("index").as_uint());
    if (!sent.insert(index).second) continue;  // replay overlap
    if (!sink(frame)) break;
  }
  remove_subscriber(id, sub);
  const std::optional<JobRecord> final_state = store_.get(id);
  return final_state ? *final_state : rec;
}

}  // namespace clktune::jobs
