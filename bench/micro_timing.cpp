// Microbenchmarks of the timing substrate: sequential-graph extraction,
// per-sample arc evaluation, period Monte-Carlo and yield checking.
#include <benchmark/benchmark.h>

#include "feas/yield_eval.h"
#include "mc/period_mc.h"
#include "mc/sampler.h"
#include "netlist/generator.h"
#include "ssta/seq_graph.h"

namespace {

using namespace clktune;

netlist::Design make_design(int ns, int ng) {
  netlist::SyntheticSpec spec;
  spec.num_flipflops = ns;
  spec.num_gates = ng;
  spec.seed = 21;
  return netlist::generate(spec);
}

void BM_SeqGraphExtraction(benchmark::State& state) {
  const netlist::Design design = make_design(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) * 8);
  for (auto _ : state) {
    const ssta::SeqGraph g = ssta::extract_seq_graph(design);
    benchmark::DoNotOptimize(g.arcs.size());
  }
}
BENCHMARK(BM_SeqGraphExtraction)->Arg(200)->Arg(1000);

void BM_ArcSampleEvaluation(benchmark::State& state) {
  static const netlist::Design design = make_design(500, 4000);
  static const ssta::SeqGraph graph = ssta::extract_seq_graph(design);
  const mc::Sampler sampler(graph, 3);
  mc::ArcSample arcs;
  std::uint64_t k = 0;
  for (auto _ : state) {
    sampler.evaluate(k++, arcs);
    benchmark::DoNotOptimize(arcs.dmax.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.arcs.size()));
}
BENCHMARK(BM_ArcSampleEvaluation);

void BM_YieldCheckPerSample(benchmark::State& state) {
  static const netlist::Design design = make_design(500, 4000);
  static const ssta::SeqGraph graph = ssta::extract_seq_graph(design);
  const mc::Sampler sampler(graph, 3);
  const mc::PeriodStats ps = mc::sample_min_period(sampler, 500);
  feas::TuningPlan plan;
  plan.step_ps = ps.mu() / 160.0;
  for (int f = 0; f < 8; ++f)
    plan.buffers.push_back(feas::BufferWindow{f * 10, -10, 10});
  plan.reset_groups();
  const feas::YieldEvaluator eval(graph, plan, ps.mu());
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.sample_feasible(sampler, k++));
  }
}
BENCHMARK(BM_YieldCheckPerSample);

}  // namespace

BENCHMARK_MAIN();
