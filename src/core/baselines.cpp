#include "core/baselines.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/thread_pool.h"

namespace clktune::core {

namespace {

/// Shared ranking body: `delays_of(s, scratch)` yields sample s's realised
/// delays (drawn directly or through a cache).
template <class DelaysOf>
std::vector<std::uint64_t> criticality_incidence_impl(
    const ssta::SeqGraph& graph, double clock_period_ps,
    std::uint64_t samples, int threads, const DelaysOf& delays_of) {
  const std::size_t workers = util::resolve_thread_count(
      threads <= 0 ? 0 : static_cast<std::size_t>(threads));
  std::vector<std::vector<std::uint64_t>> partial(
      workers,
      std::vector<std::uint64_t>(static_cast<std::size_t>(graph.num_ffs), 0));

  util::parallel_chunks(
      static_cast<std::size_t>(samples), workers,
      [&](std::size_t w, std::size_t begin, std::size_t end) {
        mc::ArcSample scratch;
        for (std::size_t s = begin; s < end; ++s) {
          const mc::ArcDelaysView view = delays_of(s, scratch);
          for (std::size_t e = 0; e < graph.arcs.size(); ++e) {
            const ssta::SeqArc& arc = graph.arcs[e];
            const auto i = static_cast<std::size_t>(arc.src_ff);
            const auto j = static_cast<std::size_t>(arc.dst_ff);
            const double slack = clock_period_ps - graph.setup_ps[j] -
                                 view.dmax[e] + graph.skew_ps[j] -
                                 graph.skew_ps[i];
            if (slack < 0.0) {
              ++partial[w][i];
              if (i != j) ++partial[w][j];
            }
          }
        }
      });

  std::vector<std::uint64_t> incidence(static_cast<std::size_t>(graph.num_ffs),
                                       0);
  for (const auto& p : partial)
    for (std::size_t f = 0; f < incidence.size(); ++f) incidence[f] += p[f];
  return incidence;
}

}  // namespace

std::vector<std::uint64_t> criticality_incidence(const ssta::SeqGraph& graph,
                                                 const mc::Sampler& sampler,
                                                 double clock_period_ps,
                                                 std::uint64_t samples,
                                                 int threads) {
  return criticality_incidence_impl(
      graph, clock_period_ps, samples, threads,
      [&](std::size_t s, mc::ArcSample& scratch) {
        sampler.evaluate(s, scratch);
        return mc::ArcDelaysView{scratch.dmax.data(), scratch.dmin.data(),
                                 graph.arcs.size()};
      });
}

std::vector<std::uint64_t> criticality_incidence(const ssta::SeqGraph& graph,
                                                 mc::SampleDelayCache& delays,
                                                 double clock_period_ps,
                                                 std::uint64_t samples,
                                                 int threads, bool fill) {
  return criticality_incidence_impl(
      graph, clock_period_ps, samples, threads,
      [&](std::size_t s, mc::ArcSample& scratch) {
        return fill ? delays.fill(s, scratch) : delays.get(s, scratch);
      });
}

feas::TuningPlan plan_from_incidence(
    const ssta::SeqGraph& graph, const std::vector<std::uint64_t>& incidence,
    int k, int steps, double step_ps) {
  std::vector<int> order(static_cast<std::size_t>(graph.num_ffs));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return incidence[static_cast<std::size_t>(a)] >
           incidence[static_cast<std::size_t>(b)];
  });

  feas::TuningPlan plan;
  plan.step_ps = step_ps;
  const int half = steps / 2;
  for (int i = 0; i < k && i < graph.num_ffs; ++i) {
    const int ff = order[static_cast<std::size_t>(i)];
    if (incidence[static_cast<std::size_t>(ff)] == 0) break;
    plan.buffers.push_back(feas::BufferWindow{ff, -half, half});
  }
  plan.reset_groups();
  return plan;
}

feas::TuningPlan top_k_criticality_plan(const ssta::SeqGraph& graph,
                                        const mc::Sampler& sampler,
                                        double clock_period_ps,
                                        std::uint64_t samples, int k,
                                        int steps, double step_ps,
                                        int threads) {
  return plan_from_incidence(
      graph,
      criticality_incidence(graph, sampler, clock_period_ps, samples,
                            threads),
      k, steps, step_ps);
}

feas::TuningPlan top_k_criticality_plan(const ssta::SeqGraph& graph,
                                        mc::SampleDelayCache& delays,
                                        double clock_period_ps,
                                        std::uint64_t samples, int k,
                                        int steps, double step_ps,
                                        int threads, bool fill) {
  return plan_from_incidence(
      graph,
      criticality_incidence(graph, delays, clock_period_ps, samples, threads,
                            fill),
      k, steps, step_ps);
}

feas::TuningPlan oracle_plan(const ssta::SeqGraph& graph, int steps,
                             double step_ps) {
  feas::TuningPlan plan;
  plan.step_ps = step_ps;
  const int half = steps / 2;
  for (int f = 0; f < graph.num_ffs; ++f)
    plan.buffers.push_back(feas::BufferWindow{f, -half, half});
  plan.reset_groups();
  return plan;
}

}  // namespace clktune::core
