// The execution abstraction: one interface, three backends.
//
// Every entry point of the system — the `clktune` CLI, the serve daemon,
// tests and library users — runs scenarios and campaigns by composing a
// Request with an Executor:
//
//   LocalExecutor     in-process: engine + thread pool + ResultCache
//   RemoteExecutor    a `clktune serve` daemon over the NDJSON protocol
//   ShardedExecutor   a campaign split across N child executors by the
//                     `--shard i/n` expansion slice, merged back in
//                     expansion order
//
// All backends produce byte-identical artifacts for the same request: the
// Outcome is a pure function of the resolved document (plus the shard
// slice), never of the backend that computed it.  That invariant is what
// makes the composition safe — ShardedExecutor over RemoteExecutors is a
// multi-daemon fan-out whose merged summary matches a single local run.
#pragma once

#include <string>

#include "exec/observer.h"
#include "exec/request.h"

namespace clktune::exec {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs the request to completion.  Observer events stream while cells
  /// finish; `observer` may be null.  Throws CancelledError when the
  /// observer cancels, ExecError on backend failures and util::JsonError
  /// on invalid documents.
  virtual Outcome execute(const Request& request,
                          Observer* observer = nullptr) = 0;

  /// Diagnostic backend label ("local", "remote(host:port)", "sharded(n)").
  virtual std::string name() const = 0;
};

}  // namespace clktune::exec
