// The output artifact of buffer insertion: which flip-flops carry a tuning
// buffer, each buffer's discrete window, and how buffers are grouped into
// shared physical buffers.
#pragma once

#include <vector>

#include "util/assert.h"

namespace clktune::feas {

/// One tuning buffer on flip-flop `ff` with discrete window
/// [k_lo, k_hi] in step units (delay = k * step_ps).
struct BufferWindow {
  int ff = 0;
  int k_lo = 0;
  int k_hi = 0;

  int range() const { return k_hi - k_lo; }
};

struct TuningPlan {
  double step_ps = 1.0;
  std::vector<BufferWindow> buffers;
  /// Group id per buffer (same id = one shared physical buffer whose delay
  /// all members see).  Identity when ungrouped.
  std::vector<int> group_of;
  int num_groups = 0;

  bool empty() const { return buffers.empty(); }

  /// Number of physical buffers (groups).
  int physical_buffers() const { return num_groups; }

  /// Average range of physical buffers, in steps (the paper's Ab column).
  /// For a group, the window is the union of member windows.
  double average_range() const;

  /// Sets identity grouping (every buffer its own group).
  void reset_groups() {
    group_of.resize(buffers.size());
    for (std::size_t i = 0; i < buffers.size(); ++i)
      group_of[i] = static_cast<int>(i);
    num_groups = static_cast<int>(buffers.size());
  }

  /// Window of physical group g: union of member windows.
  BufferWindow group_window(int g) const;
};

}  // namespace clktune::feas
