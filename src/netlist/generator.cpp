#include "netlist/generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>
#include <vector>

#include "netlist/nominal_sta.h"
#include "util/assert.h"
#include "util/rng.h"

namespace clktune::netlist {
namespace {

/// Allocates `total` units across n cones following a log-normal draw with
/// a floor of `floor_size`, hitting the total exactly (largest-remainder
/// rounding).  The floor keeps every launch->capture path at least a couple
/// of gates deep, which is what keeps short paths hold-safe.
std::vector<int> allocate_cone_sizes(int n, int total, int floor_size,
                                     double sigma,
                                     const std::vector<bool>& forced_deep,
                                     util::SplitMix64& rng) {
  CLKTUNE_EXPECTS(total >= n);
  floor_size = std::max(1, std::min(floor_size, total / n));
  std::vector<double> weight(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    double w = std::exp(sigma * rng.next_normal());
    if (forced_deep[static_cast<std::size_t>(i)]) w *= 8.0;
    weight[static_cast<std::size_t>(i)] = w;
  }
  const double wsum = std::accumulate(weight.begin(), weight.end(), 0.0);
  std::vector<int> size(static_cast<std::size_t>(n), floor_size);
  int assigned = n * floor_size;
  const int distributable = total - assigned;
  std::vector<std::pair<double, int>> fractions;
  for (int i = 0; i < n; ++i) {
    const double ideal =
        weight[static_cast<std::size_t>(i)] / wsum * distributable;
    const int extra = std::max(0, static_cast<int>(std::floor(ideal)));
    size[static_cast<std::size_t>(i)] += extra;
    assigned += extra;
    fractions.emplace_back(ideal - std::floor(ideal), i);
  }
  std::sort(fractions.begin(), fractions.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t cursor = 0;
  while (assigned < total) {
    size[static_cast<std::size_t>(fractions[cursor % fractions.size()].second)]++;
    ++assigned;
    ++cursor;
  }
  while (assigned > total) {
    // Take back units from the largest cones.
    const auto it = std::max_element(size.begin(), size.end());
    if (*it <= 1) break;
    --*it;
    --assigned;
  }
  CLKTUNE_ENSURES(assigned == total);
  return size;
}

struct GridIndex {
  int side = 1;
  double pitch = 10.0;

  Point position(int ff) const {
    return Point{pitch * static_cast<double>(ff % side),
                 pitch * static_cast<double>(ff / side)};
  }
};

/// Picks `want` distinct source FFs near `center`, expanding the search
/// radius until enough candidates exist.
std::vector<int> pick_nearby_ffs(int center, int want, int total,
                                 const GridIndex& grid,
                                 util::SplitMix64& rng) {
  std::vector<int> chosen;
  const int cx = center % grid.side;
  const int cy = center / grid.side;
  int radius = 2;
  std::vector<int> pool;
  while (static_cast<int>(pool.size()) < 3 * want && radius < 4 * grid.side) {
    pool.clear();
    for (int dy = -radius; dy <= radius; ++dy) {
      for (int dx = -radius; dx <= radius; ++dx) {
        const int x = cx + dx;
        const int y = cy + dy;
        if (x < 0 || y < 0 || x >= grid.side) continue;
        const int idx = y * grid.side + x;
        if (idx >= 0 && idx < total && idx != center) pool.push_back(idx);
      }
    }
    radius *= 2;
  }
  if (pool.empty())
    for (int i = 0; i < total; ++i)
      if (i != center) pool.push_back(i);
  for (int k = 0; k < want && !pool.empty(); ++k) {
    const std::size_t pick = rng.next_below(pool.size());
    chosen.push_back(pool[pick]);
    pool[pick] = pool.back();
    pool.pop_back();
  }
  return chosen;
}

}  // namespace

Design generate(const SyntheticSpec& spec) {
  CLKTUNE_EXPECTS(spec.num_flipflops >= 1);
  CLKTUNE_EXPECTS(spec.num_gates >= spec.num_flipflops);

  Design design;
  design.name = spec.name;
  Netlist& nl = design.netlist;
  util::SplitMix64 rng(util::hash_u64(spec.seed, 0xC1AC0));

  const int ns = spec.num_flipflops;
  const int npi = spec.num_primary_inputs >= 0 ? spec.num_primary_inputs
                                               : ns / 20 + 2;
  const int npo = spec.num_primary_outputs >= 0 ? spec.num_primary_outputs
                                                : ns / 10 + 2;

  GridIndex grid;
  grid.side = std::max(1, static_cast<int>(std::ceil(
                              std::sqrt(static_cast<double>(ns)))));
  grid.pitch = design.ff_pitch;

  std::vector<NodeId> pis;
  for (int i = 0; i < npi; ++i)
    pis.push_back(nl.add_primary_input("pi" + std::to_string(i)));
  std::vector<NodeId> ffs;
  for (int i = 0; i < ns; ++i)
    ffs.push_back(
        nl.add_flipflop(design.library.dff_cell(), "ff" + std::to_string(i)));

  // Criticality seeds: a few cones forced deep.
  std::vector<bool> forced_deep(static_cast<std::size_t>(ns), false);
  const int n_deep = std::max(
      1, static_cast<int>(std::lround(spec.forced_deep_fraction * ns)));
  for (int k = 0; k < n_deep; ++k)
    forced_deep[rng.next_below(static_cast<std::uint64_t>(ns))] = true;

  const std::vector<int> cone_size =
      allocate_cone_sizes(ns, spec.num_gates, spec.min_depth,
                          spec.cone_size_sigma, forced_deep, rng);

  // Cell ids by arity.
  const CellLibrary& lib = design.library;
  const std::vector<int> cells1 = {lib.find("INV"), lib.find("BUF")};
  const std::vector<int> cells2 = {lib.find("NAND"), lib.find("NOR"),
                                   lib.find("AND"), lib.find("OR"),
                                   lib.find("XOR")};
  const std::vector<int> cells3 = {lib.find("NAND3"), lib.find("NOR3")};

  int gate_serial = 0;
  for (int f = 0; f < ns; ++f) {
    const int cs = cone_size[static_cast<std::size_t>(f)];
    // Depth: spine length within [min_depth, max_depth], capped by cone
    // size; forced-deep cones stretch toward the cap.
    // Two clearly separated depth tiers: ordinary cones stay below 60 % of
    // the cap while criticality-seed cones reach for it.  The resulting gap
    // (a few sigma of path delay) is what concentrates failures on a
    // handful of flip-flops instead of smearing them across the circuit.
    const bool deep = forced_deep[static_cast<std::size_t>(f)] != 0;
    const double fill =
        deep ? rng.next_double(0.9, 1.0) : rng.next_double(0.35, 0.75);
    const int cap = deep ? spec.max_depth
                         : std::max(spec.min_depth,
                                    static_cast<int>(0.6 * spec.max_depth));
    int depth = std::max(std::min(cs, spec.min_depth),
                         std::min({cs, cap,
                                   static_cast<int>(std::lround(cs * fill))}));
    depth = std::max(1, depth);

    // Source flip-flops for this cone.
    const int extra_sources = static_cast<int>(
        std::floor(rng.next_double() * (2.0 * (spec.avg_sources - 1.0)) + 0.5));
    std::vector<int> sources =
        pick_nearby_ffs(f, std::max(1, 1 + extra_sources), ns, grid, rng);
    // Self-loops (state-register feedback): common on shallow cones, where
    // they are timing-harmless, plus a controlled fraction of the deep
    // criticality seeds (accumulator-style registers).  A self-loop path
    // cannot be rescued by clock tuning (x_i - x_i = 0), so the deep ones
    // set the hard ceiling on reachable yield.
    const bool shallow = cs <= std::max(2, spec.num_gates / spec.num_flipflops);
    const bool wants_self =
        deep ? rng.next_double() < spec.deep_self_loop_frac
             : shallow && rng.next_double() < spec.self_loop_prob;
    if (sources.empty() || wants_self) sources.push_back(f);

    // Build the cone as an in-tree rooted at the FF's D input.  `open`
    // holds (gate, depth) pairs with at least one unfilled fanin slot.
    struct OpenSlot {
      std::vector<NodeId> fanins;  // filled so far
      int arity;
      int depth;   // depth of this gate below the root (root = 1)
      int serial;  // creation order (stable ids)
    };
    std::vector<OpenSlot> gates_in_cone;
    gates_in_cone.reserve(static_cast<std::size_t>(cs));

    auto new_gate = [&](int depth_below_root) {
      OpenSlot slot;
      const double r = rng.next_double();
      slot.arity = r < 0.18 ? 1 : (r < 0.9 ? 2 : 3);
      // The root gate is kept single-input (spine only) when the cone has
      // at least two gates: this forces every launch->capture path through
      // >= 2 gates, which keeps short paths hold-safe under the skew field.
      if (depth_below_root == 1 && cs >= 2) slot.arity = 1;
      slot.depth = depth_below_root;
      slot.serial = gate_serial++;
      gates_in_cone.push_back(std::move(slot));
      return static_cast<int>(gates_in_cone.size()) - 1;
    };

    // Spine: chain of `depth` gates; gates_in_cone[k] is at depth k+1 and
    // (for k < depth-1) takes gate k+1 as its first fanin placeholder.
    for (int k = 0; k < depth; ++k) new_gate(k + 1);
    // Remaining gates attach below any gate with spare depth budget.
    for (int k = depth; k < cs; ++k) {
      // Parent candidates: gates at depth < max usable depth with free slot.
      // Choose uniformly; retry a few times if the chosen parent is full.
      int parent = -1;
      for (int attempt = 0; attempt < 8 && parent < 0; ++attempt) {
        const int cand = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(gates_in_cone.size())));
        OpenSlot& p = gates_in_cone[static_cast<std::size_t>(cand)];
        const int used =
            static_cast<int>(p.fanins.size()) +
            ((cand + 1 < depth && cand < depth) ? 1 : 0);  // spine child slot
        // Side subtrees hang off the deep half of the cone only, so their
        // register taps sit at depth >= depth/2 (hold padding, see below).
        if (used < p.arity && p.depth < spec.max_depth &&
            2 * p.depth >= depth)
          parent = cand;
      }
      if (parent < 0) {
        // Fall back: bump arity of gate 0's subtree by attaching to any gate
        // with capacity ignoring depth cap.
        for (std::size_t cand = 0; cand < gates_in_cone.size(); ++cand) {
          OpenSlot& p = gates_in_cone[cand];
          const int used = static_cast<int>(p.fanins.size()) +
                           ((static_cast<int>(cand) + 1 < depth) ? 1 : 0);
          if (used < p.arity) {
            parent = static_cast<int>(cand);
            break;
          }
        }
      }
      if (parent < 0) {
        // Everything full: enlarge some gate's arity (capacity grows ~0.9
        // slots per created gate, so a non-full gate must exist).
        bool bumped = false;
        for (auto& p : gates_in_cone)
          if (p.arity < 3) {
            ++p.arity;
            bumped = true;
            break;
          }
        CLKTUNE_ASSERT(bumped);
        --k;
        continue;
      }
      const int child = new_gate(
          gates_in_cone[static_cast<std::size_t>(parent)].depth + 1);
      // Record linkage via a sentinel: fanins of parent get negative child
      // reference encoded as -(child+2).
      gates_in_cone[static_cast<std::size_t>(parent)].fanins.push_back(
          -(child + 2));
    }

    // Materialise gates bottom-up (children before parents): process in
    // reverse creation order, which is a valid topological order of the
    // in-tree (children are always created after their parent... the
    // *linkage* is parent->child, so children must be materialised first;
    // creation order has parents first, hence reverse order works).
    std::vector<NodeId> materialized(gates_in_cone.size(), kNoNode);
    auto leaf_source = [&]() -> NodeId {
      if (!pis.empty() && rng.next_double() < spec.pi_tap_prob)
        return pis[rng.next_below(pis.size())];
      const int src =
          sources[rng.next_below(static_cast<std::uint64_t>(sources.size()))];
      return ffs[static_cast<std::size_t>(src)];
    };
    for (int k = static_cast<int>(gates_in_cone.size()) - 1; k >= 0; --k) {
      OpenSlot& slot = gates_in_cone[static_cast<std::size_t>(k)];
      std::vector<NodeId> fanins;
      // Spine child: gate k+1 feeds gate k (both on the spine).
      if (k + 1 < depth) {
        fanins.push_back(materialized[static_cast<std::size_t>(k) + 1]);
      }
      for (int enc : slot.fanins) {
        CLKTUNE_ASSERT(enc <= -2);
        fanins.push_back(materialized[static_cast<std::size_t>(-enc - 2)]);
      }
      // Hold padding: gates in the shallow half of the cone duplicate their
      // gate fanin instead of tapping a launch register directly.  This
      // keeps every launch->capture min path at roughly half the cone
      // depth, which is what gives the clock-tuning window room to pull
      // launch clocks earlier without creating hold violations (real
      // designs achieve the same with min-delay padding).
      const bool pad_hold = slot.depth < (depth + 1) / 2 && !fanins.empty() &&
                            nl.node(fanins[0]).kind == NodeKind::gate;
      while (static_cast<int>(fanins.size()) < slot.arity)
        fanins.push_back(pad_hold ? fanins[0] : leaf_source());
      const std::vector<int>& pool =
          slot.arity == 1 ? cells1 : (slot.arity == 2 ? cells2 : cells3);
      int cell = pool[rng.next_below(pool.size())];
      // XOR is slow; keep it rare even within 2-input picks.
      if (design.library.cell(cell).name == "XOR" && rng.next_double() < 0.6)
        cell = cells2[0];
      std::string gate_name = std::to_string(slot.serial);
      gate_name.insert(0, 1, 'g');
      materialized[static_cast<std::size_t>(k)] =
          nl.add_gate(cell, std::move(gate_name), std::move(fanins));
    }
    nl.set_ff_driver(ffs[static_cast<std::size_t>(f)], materialized[0]);
  }

  // Primary outputs tap random gates; flip-flops with no fanout also get a
  // PO so no state element dangles.
  nl.finalize();
  int po_serial = 0;
  for (int i = 0; i < npo; ++i) {
    const NodeId g = nl.gates()[rng.next_below(nl.gates().size())];
    nl.add_primary_output("po" + std::to_string(po_serial++), g);
  }
  for (NodeId ff : nl.flipflops())
    if (nl.node(ff).fanouts.empty())
      nl.add_primary_output("po" + std::to_string(po_serial++), ff);
  nl.finalize();

  // Placement.
  design.ff_position.resize(static_cast<std::size_t>(ns));
  for (int i = 0; i < ns; ++i)
    design.ff_position[static_cast<std::size_t>(i)] = grid.position(i);

  // Clock-skew field: two smooth sinusoidal modes + white noise, scaled to
  // the nominal period.
  const double t0 = nominal_min_period(design);
  const double amplitude = spec.skew_amplitude_factor * t0;
  const double extent = grid.pitch * grid.side;
  const util::CounterRng skew_rng(util::hash_u64(spec.seed, 0x5BE3));
  design.clock_skew_ps.assign(static_cast<std::size_t>(ns), 0.0);
  const double phase1 = skew_rng.uniform(1) * 2.0 * std::numbers::pi;
  const double phase2 = skew_rng.uniform(2) * 2.0 * std::numbers::pi;
  const double wavelength =
      std::max(extent, 1.0) * spec.skew_wavelength_factor;
  for (int i = 0; i < ns; ++i) {
    const Point p = grid.position(i);
    const double s1 =
        std::sin(2.0 * std::numbers::pi * p.x / wavelength + phase1);
    const double s2 =
        std::sin(2.0 * std::numbers::pi * p.y / wavelength + phase2);
    design.clock_skew_ps[static_cast<std::size_t>(i)] =
        amplitude * 0.5 * (s1 + s2) +
        spec.skew_noise_ps * skew_rng.normal(static_cast<std::uint64_t>(i), 3);
  }
  return design;
}

}  // namespace clktune::netlist
