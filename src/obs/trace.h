// Scoped trace spans emitting Chrome-trace-event NDJSON.
//
// Tracing is a process-wide switch: start_trace(path) opens the output
// file and arms span recording, stop_trace() flushes and disarms.  While
// disarmed (the default), constructing a TraceSpan costs one relaxed
// atomic load and records nothing — spans are safe to leave in place on
// every path that is not sample-hot.
//
// Each completed span becomes one line:
//   {"name":"cell s9234_muT","cat":"clktune","ph":"X","ts":12.3,
//    "dur":4567.8,"pid":1234,"tid":2}
// ts/dur are microseconds; ts is relative to start_trace, from
// steady_clock.  The line stream loads directly into chrome://tracing or
// Perfetto (JSON Array Format accepts a bare event-per-line list wrapped
// in [] — `clktune run --trace` emits NDJSON; wrap or use Perfetto's
// ndjson ingestion).  Spans nest by time on one tid, which is how the
// expand → per-cell → per-step hierarchy renders.
#pragma once

#include <cstdint>
#include <string>

namespace clktune::obs {

/// True between start_trace and stop_trace.  Relaxed load; hot-path
/// callers may check it to skip building span names.
bool trace_enabled() noexcept;

/// Opens (truncates) `path` and arms tracing.  Throws std::runtime_error
/// when the file cannot be opened.  Calling while already armed switches
/// the output file.
void start_trace(const std::string& path);

/// Disarms tracing and flushes + closes the output.  No-op when disarmed.
void stop_trace();

/// RAII span: records [construction, destruction) as one complete ("X")
/// event when tracing is armed at construction.  The name is copied only
/// when armed, so a disarmed span never allocates beyond its argument.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  explicit TraceSpan(const std::string& name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

/// Arms tracing for a scope (the CLI's --trace flag): start on
/// construction when a path is given, stop on destruction — exceptions
/// included, so a failed run still leaves a loadable trace file.
class TraceSession {
 public:
  explicit TraceSession(const std::string& path) : armed_(!path.empty()) {
    if (armed_) start_trace(path);
  }
  ~TraceSession() {
    if (armed_) stop_trace();
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  bool armed_;
};

}  // namespace clktune::obs
