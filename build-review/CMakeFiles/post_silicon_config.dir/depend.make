# Empty dependencies file for post_silicon_config.
# This may be replaced when dependencies are built.
