// BufferInsertionEngine: the paper's complete flow (Fig. 3).
//
//   step 1  (III-A)  floating lower bounds: per-sample minimise buffer
//                    count, concentrate tunings toward zero, prune rarely
//                    used buffers, assign each kept buffer a range window
//                    by sliding-window coverage maximisation;
//   step 2  (III-B)  fixed lower bounds: re-simulate (skippable by the
//                    0.1 % rule), concentrate tunings toward the average,
//                    derive final reduced ranges from min/max tunings;
//   step 3  (III-C)  group buffers by tuning correlation and Manhattan
//                    distance; optionally cap the physical buffer count.
//
// The output TuningPlan carries the *reduced* ranges (Fig. 5c), which is
// what the yield evaluator measures.
#pragma once

#include <cstdint>
#include <vector>

#include "core/insertion_config.h"
#include "feas/tuning_plan.h"
#include "netlist/netlist.h"
#include "ssta/seq_graph.h"
#include "util/histogram.h"

namespace clktune::core {

struct BufferInfo {
  int ff = 0;
  /// Assigned range window (III-A4), always covering 0.
  int window_lo = 0, window_hi = 0;
  /// Final reduced range (min/max tuning, extended to cover the resting
  /// value 0 when inside the window).
  int range_lo = 0, range_hi = 0;
  std::uint64_t usage_step1 = 0;  ///< samples adjusting this buffer, step 1
  std::uint64_t usage_final = 0;  ///< samples adjusting it in step 2
  double avg_k = 0.0;             ///< x_avg,i in step units
  int group = -1;                 ///< physical buffer id after grouping
};

struct PhaseDiagnostics {
  double seconds = 0.0;
  std::uint64_t samples_with_violations = 0;
  std::uint64_t unfixable_samples = 0;
  std::uint64_t milps_solved = 0;
  std::uint64_t milp_nodes = 0;
  std::uint64_t truncated_milps = 0;
  std::uint64_t lazy_rounds = 0;

  void merge(const PhaseDiagnostics& o) {
    samples_with_violations += o.samples_with_violations;
    unfixable_samples += o.unfixable_samples;
    milps_solved += o.milps_solved;
    milp_nodes += o.milp_nodes;
    truncated_milps += o.truncated_milps;
    lazy_rounds += o.lazy_rounds;
  }
};

struct InsertionResult {
  feas::TuningPlan plan;            ///< final buffers, ranges and groups
  std::vector<BufferInfo> buffers;  ///< aligned with plan.buffers
  double step_ps = 0.0;
  double tau_ps = 0.0;  ///< maximum window width (paper: T_nominal / 8)
  double clock_period_ps = 0.0;

  PhaseDiagnostics step1, step2a, step2b;
  bool step2a_skipped = false;
  double out_of_window_fraction = 0.0;
  double total_seconds = 0.0;

  /// Per-FF usage counts after step 1 (Fig. 4's node numbers).
  std::vector<std::uint64_t> step1_usage;
  /// Survivors of the pruning rule.
  std::vector<char> kept_after_prune;
  int pruned_count = 0;

  /// Tuning-value histograms of Fig. 5 per flip-flop: (a) after count
  /// minimisation, (b) after concentration toward zero, (c) after step-2
  /// concentration toward the average.
  std::vector<util::IntHistogram> hist_step1_min;
  std::vector<util::IntHistogram> hist_step1_conc;
  std::vector<util::IntHistogram> hist_step2;

  /// Pairwise tuning correlation over plan.buffers (step-3 input).
  std::vector<std::vector<double>> correlation;
};

class BufferInsertionEngine {
 public:
  BufferInsertionEngine(const netlist::Design& design,
                        const ssta::SeqGraph& graph, double clock_period_ps,
                        InsertionConfig config);

  InsertionResult run();

  double tau_ps() const { return tau_ps_; }
  double step_ps() const { return step_ps_; }

 private:
  const netlist::Design* design_;
  const ssta::SeqGraph* graph_;
  double clock_period_;
  InsertionConfig config_;
  double tau_ps_ = 0.0;
  double step_ps_ = 0.0;
};

}  // namespace clktune::core
