// Table-I style reporting: one row per (circuit, clock setting) with buffer
// count Nb, average range Ab, yield Y, improvement Yi and runtime T(s).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace clktune::core {

struct TableRow {
  std::string circuit;
  int ns = 0;          ///< flip-flops
  int ng = 0;          ///< logic gates
  std::string setting; ///< "muT", "muT+s", "muT+2s"
  double clock_ps = 0.0;
  int nb = 0;          ///< physical buffers after grouping
  double ab = 0.0;     ///< average range (steps)
  double yield = 0.0;          ///< Y (%)
  double yield_original = 0.0; ///< Yo (%)
  double runtime_s = 0.0;

  double improvement() const { return yield - yield_original; }
};

/// Prints the Table-I header followed by the rows, grouped by circuit.
void print_table(std::ostream& os, const std::vector<TableRow>& rows);

/// One-line render of a row (used in logs).
std::string format_row(const TableRow& row);

}  // namespace clktune::core
