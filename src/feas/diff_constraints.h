// Difference-constraint feasibility via Bellman-Ford negative-cycle
// detection.
//
// A system of constraints  x_u - x_v <= w  is feasible iff its constraint
// graph (edge v -> u with weight w) has no negative cycle; shortest-path
// potentials then give a concrete solution.  With integer weights the
// constraint matrix is totally unimodular, so integer-feasible solutions
// exist whenever real ones do — which is why flooring the timing constants
// to the buffer-step grid preserves exactness for the discrete tunings.
//
// Used for (a) yield evaluation of an inserted-buffer plan (does chip k have
// a feasible configuration?), (b) greedy warm starts for the per-sample
// ILPs, and (c) post-silicon configuration extraction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace clktune::feas {

class DiffConstraints {
 public:
  explicit DiffConstraints(int num_nodes) : head_(num_nodes, -1) {}

  int num_nodes() const { return static_cast<int>(head_.size()); }

  /// Adds constraint x_u - x_v <= w.
  void add(int u, int v, std::int64_t w);

  /// True iff the system admits a solution.
  bool feasible() const { return solve().has_value(); }

  /// Shortest-path potentials (a concrete solution), or nullopt when
  /// infeasible.  All-zero start vector, so an all-zero solution is returned
  /// when every constraint already holds at 0.
  std::optional<std::vector<std::int64_t>> solve() const;

 private:
  struct Edge {
    int to = 0;
    std::int64_t weight = 0;
    int next = -1;
  };
  // Adjacency: edge (v -> u, w) per constraint x_u - x_v <= w.
  std::vector<int> head_;
  std::vector<Edge> edges_;
};

}  // namespace clktune::feas
