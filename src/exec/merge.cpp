#include "exec/merge.h"

#include <string>
#include <utility>
#include <vector>

#include "exec/request.h"

namespace clktune::exec {

scenario::CampaignSummary merge_shard_summaries(
    const std::vector<scenario::CampaignSummary>& shards) {
  if (shards.empty()) throw ExecError("merge: no summaries given");
  const std::string& name = shards.front().name;
  const std::size_t n = shards.front().shard_count;
  for (const scenario::CampaignSummary& shard : shards) {
    if (shard.name != name)
      throw ExecError("merge: campaign names differ (\"" + name +
                      "\" vs \"" + shard.name + "\")");
    if (shard.shard_count != n)
      throw ExecError("merge: shard counts differ (" + std::to_string(n) +
                      " vs " + std::to_string(shard.shard_count) + ")");
  }

  // Exactly the n disjoint slices, each seen once.
  std::vector<const scenario::CampaignSummary*> by_index(n, nullptr);
  for (const scenario::CampaignSummary& shard : shards) {
    if (shard.shard_index >= n)
      throw ExecError("merge: shard index " +
                      std::to_string(shard.shard_index) + " out of range");
    if (by_index[shard.shard_index] != nullptr)
      throw ExecError("merge: overlapping summaries for shard " +
                      std::to_string(shard.shard_index) + "/" +
                      std::to_string(n));
    by_index[shard.shard_index] = &shard;
  }
  for (std::size_t i = 0; i < n; ++i)
    if (by_index[i] == nullptr)
      throw ExecError("merge: missing shard " + std::to_string(i) + "/" +
                      std::to_string(n));

  // A round-robin slice of T cells gives shard i exactly
  // T/n + (i < T%n) of them; anything else means the summaries do not come
  // from one expansion.
  std::size_t total = 0;
  for (const scenario::CampaignSummary* shard : by_index)
    total += shard->results.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t expected = shard_cell_count(total, i, n);
    if (by_index[i]->results.size() != expected)
      throw ExecError("merge: shard " + std::to_string(i) + " has " +
                      std::to_string(by_index[i]->results.size()) +
                      " cells, expected " + std::to_string(expected) +
                      " of a " + std::to_string(total) + "-cell campaign");
  }

  scenario::CampaignSummary merged;
  merged.name = name;
  merged.shard_index = 0;
  merged.shard_count = 1;
  merged.results.resize(total);
  for (std::size_t i = 0; i < n; ++i) {
    const scenario::CampaignSummary& shard = *by_index[i];
    for (std::size_t k = 0; k < shard.results.size(); ++k)
      merged.results[i + k * n] = shard.results[k];
    merged.scenarios_cached += shard.scenarios_cached;
    merged.total_seconds += shard.total_seconds;
  }
  merged.recount();
  return merged;
}

}  // namespace clktune::exec
