// Deterministic (nominal-corner) static timing used for quick critical-path
// queries: the "original clock period" that sizes the tuning range (the
// paper uses tau = T/8) and generator self-calibration.
#pragma once

#include "netlist/netlist.h"

namespace clktune::netlist {

/// Nominal max (late) delay of one gate arc including fanout load.
double nominal_gate_delay(const Design& design, NodeId gate);
/// Nominal min (early) delay of one gate arc including fanout load.
double nominal_gate_min_delay(const Design& design, NodeId gate);

/// Minimum feasible zero-skew clock period at the nominal corner:
///   max over FF->FF paths of (clk->Q + combinational + setup).
/// Clock skews are deliberately ignored: this is the pre-skew design period
/// that the buffer range is derived from.
double nominal_min_period(const Design& design);

}  // namespace clktune::netlist
