file(REMOVE_RECURSE
  "CMakeFiles/yield_study.dir/examples/yield_study.cpp.o"
  "CMakeFiles/yield_study.dir/examples/yield_study.cpp.o.d"
  "yield_study"
  "yield_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yield_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
