#include <gtest/gtest.h>

#include <cmath>

#include "feas/diff_constraints.h"
#include "feas/tuning_plan.h"
#include "feas/yield_eval.h"
#include "mc/period_mc.h"
#include "mc/sampler.h"
#include "netlist/generator.h"
#include "ssta/seq_graph.h"

namespace clktune {
namespace {

using feas::BufferWindow;
using feas::DiffConstraints;
using feas::TuningPlan;
using feas::YieldEvaluator;

// A small generated design shared by the MC tests.
const netlist::Design& test_design() {
  static const netlist::Design design = [] {
    netlist::SyntheticSpec spec;
    spec.num_flipflops = 120;
    spec.num_gates = 1000;
    spec.seed = 4242;
    return netlist::generate(spec);
  }();
  return design;
}

const ssta::SeqGraph& test_graph() {
  static const ssta::SeqGraph graph = ssta::extract_seq_graph(test_design());
  return graph;
}

TEST(SamplerTest, DeterministicAcrossCalls) {
  const mc::Sampler sampler(test_graph(), 9);
  mc::ArcSample a, b;
  sampler.evaluate(17, a);
  sampler.evaluate(17, b);
  EXPECT_EQ(a.dmax, b.dmax);
  EXPECT_EQ(a.dmin, b.dmin);
}

TEST(SamplerTest, SamplesDiffer) {
  const mc::Sampler sampler(test_graph(), 9);
  mc::ArcSample a, b;
  sampler.evaluate(1, a);
  sampler.evaluate(2, b);
  EXPECT_NE(a.dmax, b.dmax);
}

TEST(SamplerTest, EarlyNeverExceedsLate) {
  const mc::Sampler sampler(test_graph(), 9);
  mc::ArcSample s;
  for (std::uint64_t k = 0; k < 50; ++k) {
    sampler.evaluate(k, s);
    for (std::size_t e = 0; e < s.dmax.size(); ++e) {
      EXPECT_LE(s.dmin[e], s.dmax[e] + 1e-12);
      EXPECT_GE(s.dmin[e], 0.0);
    }
  }
}

TEST(SamplerTest, MeanDelayTracksCanonicalMu) {
  const ssta::SeqGraph& g = test_graph();
  const mc::Sampler sampler(g, 21);
  mc::ArcSample s;
  const std::size_t arc = 0;
  util::OnlineStats stats;
  for (std::uint64_t k = 0; k < 20000; ++k) {
    sampler.evaluate(k, s);
    stats.add(s.dmax[arc]);
  }
  EXPECT_NEAR(stats.mean(), g.arcs[arc].dmax.mu,
              0.05 * g.arcs[arc].dmax.mu + 3.0 * g.arcs[arc].dmax.sigma() /
                                              std::sqrt(20000.0));
  EXPECT_NEAR(stats.stddev(), g.arcs[arc].dmax.sigma(),
              0.1 * g.arcs[arc].dmax.sigma() + 0.2);
}

TEST(PeriodMcTest, MomentsStableAndHoldSafe) {
  const mc::Sampler sampler(test_graph(), 33);
  const mc::PeriodStats stats = mc::sample_min_period(sampler, 4000);
  EXPECT_EQ(stats.samples, 4000u);
  EXPECT_GT(stats.mu(), 0.0);
  EXPECT_GT(stats.sigma(), 0.0);
  EXPECT_LT(stats.sigma(), stats.mu());
  // A small rate of zero-tuning hold escapes is expected (the regional
  // variation term also widens early-path spread); they count against the
  // original yield and are repairable by tuning, but they must stay a
  // minor effect so setup failures dominate the period distribution.
  EXPECT_LT(static_cast<double>(stats.hold_failures) / 4000.0, 0.03);
}

TEST(PeriodMcTest, ThreadCountDoesNotChangeResult) {
  const mc::Sampler sampler(test_graph(), 33);
  const mc::PeriodStats seq = mc::sample_min_period(sampler, 1000, 1);
  const mc::PeriodStats par = mc::sample_min_period(sampler, 1000, 4);
  EXPECT_NEAR(seq.mu(), par.mu(), 1e-9);
  EXPECT_NEAR(seq.sigma(), par.sigma(), 1e-9);
}

TEST(PeriodMcTest, OriginalYieldAtDerivedPeriods) {
  // By construction of muT/sigmaT, the no-buffer yields at muT, +1s, +2s
  // are ~50 %, ~84 %, ~97.7 % (paper, Section IV).
  const mc::Sampler sampler(test_graph(), 33);
  const mc::PeriodStats stats = mc::sample_min_period(sampler, 6000);
  const struct {
    double period;
    double expect;
    double tol;
  } cases[] = {
      {stats.mu(), 0.50, 0.06},
      {stats.mu() + stats.sigma(), 0.8413, 0.05},
      {stats.mu() + 2.0 * stats.sigma(), 0.9772, 0.03},
  };
  for (const auto& c : cases) {
    const feas::YieldResult y =
        feas::original_yield(test_graph(), c.period, sampler, 6000);
    EXPECT_NEAR(y.yield, c.expect, c.tol) << "T=" << c.period;
  }
}

// ------------------------- difference constraints --------------------------

TEST(DiffConstraintsTest, FeasibleChainAndSolution) {
  DiffConstraints sys(3);
  sys.add(1, 0, 5);   // x1 - x0 <= 5
  sys.add(2, 1, -2);  // x2 - x1 <= -2
  const auto sol = sys.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_LE((*sol)[1] - (*sol)[0], 5);
  EXPECT_LE((*sol)[2] - (*sol)[1], -2);
}

TEST(DiffConstraintsTest, NegativeCycleInfeasible) {
  DiffConstraints sys(2);
  sys.add(1, 0, 3);
  sys.add(0, 1, -4);  // x0 - x1 <= -4 and x1 - x0 <= 3 -> cycle weight -1
  EXPECT_FALSE(sys.feasible());
}

TEST(DiffConstraintsTest, ZeroCycleFeasible) {
  DiffConstraints sys(2);
  sys.add(1, 0, 3);
  sys.add(0, 1, -3);
  EXPECT_TRUE(sys.feasible());
}

TEST(DiffConstraintsTest, AllZeroWhenUnconstrained) {
  DiffConstraints sys(4);
  sys.add(1, 0, 2);
  const auto sol = sys.solve();
  ASSERT_TRUE(sol.has_value());
  for (std::int64_t v : *sol) EXPECT_LE(v, 0);  // potentials start at 0
}

TEST(DiffConstraintsTest, RandomSystemsSelfConsistent) {
  util::SplitMix64 rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(6));
    DiffConstraints sys(n);
    struct E {
      int u, v;
      std::int64_t w;
    };
    std::vector<E> edges;
    const int m = 1 + static_cast<int>(rng.next_below(12));
    for (int e = 0; e < m; ++e) {
      const int u = static_cast<int>(rng.next_below(n));
      const int v = static_cast<int>(rng.next_below(n));
      if (u == v) continue;
      const auto w =
          static_cast<std::int64_t>(rng.next_below(17)) - 8;
      sys.add(u, v, w);
      edges.push_back({u, v, w});
    }
    const auto sol = sys.solve();
    if (sol.has_value()) {
      for (const E& e : edges)
        EXPECT_LE((*sol)[static_cast<std::size_t>(e.u)] -
                      (*sol)[static_cast<std::size_t>(e.v)],
                  e.w);
    }
  }
}

// ---------------------------- yield evaluation -----------------------------

// Hand-built two-FF imbalanced pipeline where tuning provably helps:
// stage ff0->ff1 is long, stage ff1->ff0 is short; shifting ff1's clock later
// rebalances.
ssta::SeqGraph imbalanced_graph() {
  ssta::SeqGraph g;
  g.num_ffs = 2;
  g.setup_ps = {2.0, 2.0};
  g.hold_ps = {0.5, 0.5};
  g.skew_ps = {0.0, 0.0};
  ssta::SeqArc long_arc;
  long_arc.src_ff = 0;
  long_arc.dst_ff = 1;
  long_arc.dmax.mu = 100.0;
  long_arc.dmax.aloc = 8.0;
  long_arc.dmin.mu = 60.0;
  long_arc.dmin.aloc = 4.0;
  ssta::SeqArc short_arc;
  short_arc.src_ff = 1;
  short_arc.dst_ff = 0;
  short_arc.dmax.mu = 60.0;
  short_arc.dmax.aloc = 5.0;
  short_arc.dmin.mu = 40.0;
  short_arc.dmin.aloc = 3.0;
  g.arcs = {long_arc, short_arc};
  g.arcs_of_ff = {{0, 1}, {0, 1}};
  return g;
}

TEST(YieldEvaluatorTest, BuffersImproveImbalancedPipeline) {
  const ssta::SeqGraph g = imbalanced_graph();
  const mc::Sampler sampler(g, 555);
  const double t = 104.0;  // slightly above the long stage mean + setup
  const feas::YieldResult before = feas::original_yield(g, t, sampler, 4000);

  TuningPlan plan;
  plan.step_ps = 1.0;
  plan.buffers.push_back(BufferWindow{1, 0, 20});  // delay ff1 clock
  plan.reset_groups();
  const YieldEvaluator eval(g, plan, t);
  const feas::YieldResult after = eval.evaluate(sampler, 4000);

  EXPECT_GT(after.yield, before.yield + 0.15);
}

TEST(YieldEvaluatorTest, SelfLoopArcCannotBeHelped) {
  ssta::SeqGraph g;
  g.num_ffs = 1;
  g.setup_ps = {2.0};
  g.hold_ps = {0.5};
  g.skew_ps = {0.0};
  ssta::SeqArc self;
  self.src_ff = 0;
  self.dst_ff = 0;
  self.dmax.mu = 100.0;
  self.dmax.aloc = 10.0;
  self.dmin.mu = 50.0;
  self.dmin.aloc = 2.0;
  g.arcs = {self};
  g.arcs_of_ff = {{0}};
  const mc::Sampler sampler(g, 1);
  const double t = 102.0;
  const feas::YieldResult before = feas::original_yield(g, t, sampler, 3000);
  TuningPlan plan;
  plan.step_ps = 1.0;
  plan.buffers.push_back(BufferWindow{0, -10, 10});
  plan.reset_groups();
  const YieldEvaluator eval(g, plan, t);
  const feas::YieldResult after = eval.evaluate(sampler, 3000);
  EXPECT_NEAR(after.yield, before.yield, 1e-9);
}

TEST(YieldEvaluatorTest, ConfigurationSatisfiesConstraints) {
  const ssta::SeqGraph g = imbalanced_graph();
  const mc::Sampler sampler(g, 555);
  TuningPlan plan;
  plan.step_ps = 1.0;
  plan.buffers.push_back(BufferWindow{0, -10, 10});
  plan.buffers.push_back(BufferWindow{1, 0, 20});
  plan.reset_groups();
  const double t = 104.0;
  const YieldEvaluator eval(g, plan, t);
  int checked = 0;
  mc::ArcSample arcs;
  for (std::uint64_t k = 0; k < 300; ++k) {
    const auto config = eval.find_configuration(sampler, k);
    if (!config.has_value()) continue;
    ++checked;
    sampler.evaluate(k, arcs);
    const double x0 = (*config)[0];
    const double x1 = (*config)[1];
    EXPECT_GE(x0, plan.buffers[0].k_lo);
    EXPECT_LE(x0, plan.buffers[0].k_hi);
    EXPECT_GE(x1, plan.buffers[1].k_lo);
    EXPECT_LE(x1, plan.buffers[1].k_hi);
    // Setup on both arcs.
    EXPECT_LE(x0 + arcs.dmax[0] + g.setup_ps[1], t + x1 + 1e-9);
    EXPECT_LE(x1 + arcs.dmax[1] + g.setup_ps[0], t + x0 + 1e-9);
    // Hold on both arcs.
    EXPECT_GE(x0 + arcs.dmin[0], x1 + g.hold_ps[1] - 1e-9);
    EXPECT_GE(x1 + arcs.dmin[1], x0 + g.hold_ps[0] - 1e-9);
  }
  EXPECT_GT(checked, 200);
}

TEST(YieldEvaluatorTest, GroupedBuffersShareOneVariable) {
  const ssta::SeqGraph g = imbalanced_graph();
  const mc::Sampler sampler(g, 555);
  const double t = 104.0;
  // Two buffers forced into one group: their tunings cancel on the
  // 0 -> 1 arc, so the plan behaves like no tuning at all.
  TuningPlan plan;
  plan.step_ps = 1.0;
  plan.buffers.push_back(BufferWindow{0, 0, 20});
  plan.buffers.push_back(BufferWindow{1, 0, 20});
  plan.group_of = {0, 0};
  plan.num_groups = 1;
  const YieldEvaluator eval(g, plan, t);
  const feas::YieldResult grouped = eval.evaluate(sampler, 3000);
  const feas::YieldResult original = feas::original_yield(g, t, sampler, 3000);
  EXPECT_NEAR(grouped.yield, original.yield, 1e-9);
}

TEST(TuningPlanTest, GroupWindowsAndAverageRange) {
  TuningPlan plan;
  plan.step_ps = 2.0;
  plan.buffers = {BufferWindow{0, -2, 6}, BufferWindow{1, 0, 4},
                  BufferWindow{2, -5, 1}};
  plan.group_of = {0, 0, 1};
  plan.num_groups = 2;
  const BufferWindow g0 = plan.group_window(0);
  EXPECT_EQ(g0.k_lo, -2);
  EXPECT_EQ(g0.k_hi, 6);
  const BufferWindow g1 = plan.group_window(1);
  EXPECT_EQ(g1.range(), 6);
  EXPECT_DOUBLE_EQ(plan.average_range(), (8.0 + 6.0) / 2.0);
  EXPECT_EQ(plan.physical_buffers(), 2);
}

TEST(YieldEvaluatorTest, EvaluationIsThreadCountInvariant) {
  const ssta::SeqGraph& g = test_graph();
  const mc::Sampler sampler(g, 99);
  const mc::PeriodStats ps = mc::sample_min_period(sampler, 1500);
  TuningPlan plan;
  plan.step_ps = ps.mu() / 160.0;
  plan.buffers.push_back(BufferWindow{3, -10, 10});
  plan.buffers.push_back(BufferWindow{10, -10, 10});
  plan.reset_groups();
  const YieldEvaluator eval(g, plan, ps.mu());
  const feas::YieldResult a = eval.evaluate(sampler, 1500, 1);
  const feas::YieldResult b = eval.evaluate(sampler, 1500, 8);
  EXPECT_EQ(a.passing, b.passing);
}

}  // namespace
}  // namespace clktune
