#include "mc/sampler.h"

namespace clktune::mc {

void Sampler::evaluate(std::uint64_t k, ArcSample& out) const {
  out.dmax.resize(graph_->arcs.size());
  out.dmin.resize(graph_->arcs.size());
  evaluate_into(k, out.dmax.data(), out.dmin.data());
}

void Sampler::evaluate_into(std::uint64_t k, double* dmax,
                            double* dmin) const {
  const auto& arcs = graph_->arcs;
  const std::array<double, ssta::kParams> z = globals(k);
  for (std::size_t e = 0; e < arcs.size(); ++e) {
    // One local draw per arc, shared by the late and early delay so their
    // order is preserved almost surely.
    arc_delays(k, e, z, dmax[e], dmin[e]);
  }
}

void Sampler::evaluate_constants(std::uint64_t k, double clock_period_ps,
                                 double step_ps, std::int32_t* setup,
                                 std::int32_t* hold) const {
  const ssta::SeqGraph& g = *graph_;
  const auto& arcs = g.arcs;
  const std::array<double, ssta::kParams> z = globals(k);
  for (std::size_t e = 0; e < arcs.size(); ++e) {
    double late = 0.0, early = 0.0;
    arc_delays(k, e, z, late, early);
    double setup_c = 0.0, hold_c = 0.0;
    arc_slack(g, e, late, early, clock_period_ps, setup_c, hold_c);
    setup[e] = floor_steps(setup_c, step_ps);
    hold[e] = floor_steps(hold_c, step_ps);
  }
}

}  // namespace clktune::mc
