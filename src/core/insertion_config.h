// Configuration of the sampling-based buffer-insertion flow (Section III).
// Defaults mirror the paper's experimental setup (Section IV).
#pragma once

#include <cstdint>

namespace clktune::core {

struct InsertionConfig {
  /// Monte-Carlo samples used to locate buffers (paper: 10 000).
  std::uint64_t num_samples = 10000;
  std::uint64_t sample_seed = 20160314;

  /// Discrete tuning steps per window (paper: 20, after the de-skew buffer
  /// of [4]).
  int steps = 20;
  /// Maximum window width in ps; <= 0 derives tau = T_nominal / 8 (paper).
  double max_range_ps = 0.0;

  /// Pruning (III-A2): remove buffers adjusted in <= prune_usage_max
  /// samples unless adjacent to a critical buffer (>= critical_usage).
  /// Values are given per 10 000 samples and scaled to num_samples.
  double prune_usage_max_per_10k = 1.0;
  double critical_usage_per_10k = 5.0;
  /// Final keep rule: buffers adjusted in fewer than this many samples
  /// (per 10 000) after step 2 are dropped from the plan.
  double final_usage_min_per_10k = 5.0;

  /// Skip rule (III-B1): skip the fixed-bound re-simulation when fewer than
  /// this fraction of samples have tunings outside the assigned windows.
  double window_skip_fraction = 1e-3;

  /// Grouping (III-C): correlation threshold r_t and distance threshold as
  /// a multiple of the minimum flip-flop pitch (paper: 0.8 and 10x).
  double corr_threshold = 0.8;
  double dist_factor = 10.0;
  /// Designer cap on physical buffers; < 0 means unlimited.
  int max_buffers = -1;

  /// Average x_avg,i over non-zero tunings only (default) or over all
  /// samples (literal III-B2 reading); ablation covers both.
  bool average_nonzero_only = true;

  /// Ablation switches for the concentration / pruning / grouping steps.
  bool enable_concentration = true;
  bool enable_pruning = true;
  bool enable_grouping = true;

  /// Worker threads; 0 = hardware concurrency.  Results are identical for
  /// any thread count.
  int threads = 0;

  /// Cross-pass sample-constant cache: step 1 quantizes every sample's arc
  /// constants once and steps 2a/2b reuse them instead of re-deriving
  /// (sampler + floor) per pass.  Purely an execution detail — results are
  /// bit-identical with the cache on, off, or overflowing.
  bool enable_sample_cache = true;
  /// Byte budget for the cache (2 * int32 * samples * arcs).  Runs whose
  /// constants would not fit fall back to streaming (recompute per pass),
  /// so million-sample campaigns run in bounded memory.
  std::uint64_t sample_cache_max_bytes = 512ull << 20;

  /// Branch & bound node budget per per-sample ILP.
  long milp_max_nodes = 50000;

  // -- scaled thresholds -----------------------------------------------------
  std::uint64_t scaled(double per_10k) const {
    const double v = per_10k * static_cast<double>(num_samples) / 10000.0;
    return v < 1.0 ? 1 : static_cast<std::uint64_t>(v + 0.5);
  }
  std::uint64_t prune_usage_max() const {
    return scaled(prune_usage_max_per_10k);
  }
  std::uint64_t critical_usage() const {
    const std::uint64_t c = scaled(critical_usage_per_10k);
    return c < 2 ? 2 : c;
  }
  std::uint64_t final_usage_min() const {
    return scaled(final_usage_min_per_10k);
  }
};

}  // namespace clktune::core
