#!/bin/sh
# Perf-trajectory gate for BenchReport artifacts (src/bench/bench_report.h).
#
# Directory mode — gate every baselined bench, or a named subset:
#
#   perf_gate.sh <baselines_dir> <current_dir> [bench ...]
#
# Holds each <current_dir>/BENCH_<bench>.json against its checked-in
# <baselines_dir>/BENCH_<bench>.json, metric by metric, under the rules in
# <baselines_dir>/gate.conf.  One rule per line:
#
#   <bench|*> <metric> <mode> <value>
#
#   table1  wall_seconds    max_increase_pct  20   # slower than baseline
#   load    throughput_rps  max_decrease_pct  50   # lower than baseline
#   load    busy_rate       max_abs_increase  0.2  # baseline + 0.2 tops
#   load    wall_seconds    ignore                 # duration-budgeted run
#   *       wall_seconds    max_increase_pct  20   # default for the rest
#
# A bench-specific rule overrides the `*` rule for the same metric
# (including with `ignore`).  Metrics are the flat numeric top-level
# members of the artifact.  Without bench arguments every BENCH_*.json in
# the baselines directory is gated, so a new checked-in baseline joins the
# trajectory automatically.
#
# Legacy mode (kept for existing callers):
#
#   perf_gate.sh <baseline.json> <current.json> <max_regression_pct>
#
# gates that one file pair on wall_seconds only.
#
# Exit codes: 0 every rule held, 1 a metric moved beyond its tolerance,
# 2 structural failure — missing file, missing metric, unknown mode, or a
# current artifact stamped with injected faults (a chaos experiment, not a
# performance run).  Baselines are refreshed deliberately: rerun the bench
# with the same CLKTUNE_* env on the reference machine and copy its
# BENCH_*.json over.
set -eu

usage() {
  echo "usage: perf_gate.sh <baselines_dir> <current_dir> [bench ...]" >&2
  echo "       perf_gate.sh <baseline.json> <current.json> <max_pct>" >&2
  exit 2
}

# Flat top-level member of a BenchReport artifact (2-space indent, numeric
# value).  Anchoring to the indent keeps same-named members of nested
# objects (verbs, workload, ...) out of the match.
metric_of() {
  sed -n 's/^  "'"$2"'": *\([0-9.eE+-]*\),\{0,1\}$/\1/p' "$1" | head -n 1
}

require_file() {
  if [ ! -f "$1" ]; then
    # A missing bench file means the bench never ran (or wrote elsewhere)
    # — that must hard-fail the gate, not slip through as an empty
    # comparison.
    echo "perf_gate: bench file $1 does not exist" >&2
    exit 2
  fi
}

# A bench that ran with the fault registry armed measured a chaos
# experiment, not performance — never gate (or baseline) on it.
require_fault_free() {
  faults=$(metric_of "$1" faults_injected)
  if [ -n "$faults" ] && [ "$faults" -ne 0 ]; then
    echo "perf_gate: $1 ran with $faults injected faults" \
         "(fault registry armed) — not a performance run" >&2
    exit 2
  fi
}

# check <bench> <metric> <mode> <limit> <base> <cur>: prints one verdict
# line, returns 1 when the metric moved beyond its tolerance.
check() {
  awk -v bench="$1" -v m="$2" -v mode="$3" -v lim="$4" \
      -v base="$5" -v cur="$6" 'BEGIN {
    fail = 0
    if (mode == "max_increase_pct") {
      pct = base != 0 ? (cur - base) / base * 100.0 : (cur > 0 ? 1e9 : 0)
      verdict = sprintf("%+.1f%%, limit +%g%%", pct, lim)
      fail = cur > base * (1.0 + lim / 100.0)
    } else if (mode == "max_decrease_pct") {
      pct = base != 0 ? (cur - base) / base * 100.0 : 0
      verdict = sprintf("%+.1f%%, limit -%g%%", pct, lim)
      fail = cur < base * (1.0 - lim / 100.0)
    } else if (mode == "max_abs_increase") {
      verdict = sprintf("%+g, limit +%g", cur - base, lim)
      fail = cur > base + lim
    } else {
      printf "perf_gate: unknown gate mode \"%s\"\n", mode > "/dev/stderr"
      exit 2
    }
    printf "perf_gate: %s %s %g vs baseline %g (%s)%s\n",
           bench, m, cur, base, verdict, fail ? "  FAIL" : ""
    exit fail ? 1 : 0
  }'
}

# ---- legacy single-pair mode ------------------------------------------
if [ $# -eq 3 ] && [ -f "$1" ]; then
  require_file "$1"
  require_file "$2"
  require_fault_free "$2"
  base=$(metric_of "$1" wall_seconds)
  cur=$(metric_of "$2" wall_seconds)
  if [ -z "$base" ] || [ -z "$cur" ]; then
    echo "perf_gate: wall_seconds missing in $1 or $2" >&2
    exit 2
  fi
  check "$(basename "$2")" wall_seconds max_increase_pct "$3" \
        "$base" "$cur"
  exit $?
fi

# ---- directory (trajectory) mode --------------------------------------
[ $# -ge 2 ] || usage
bdir=$1
cdir=$2
shift 2
if [ ! -d "$bdir" ] || [ ! -d "$cdir" ]; then
  echo "perf_gate: $bdir and $cdir must be directories" >&2
  usage
fi
conf="$bdir/gate.conf"
if [ ! -f "$conf" ]; then
  echo "perf_gate: no gate rules at $conf" >&2
  exit 2
fi

if [ $# -gt 0 ]; then
  benches=$*
else
  benches=$(ls "$bdir"/BENCH_*.json 2>/dev/null \
            | sed 's|.*/BENCH_\(.*\)\.json|\1|')
  if [ -z "$benches" ]; then
    echo "perf_gate: no BENCH_*.json baselines in $bdir" >&2
    exit 2
  fi
fi

rules=$(mktemp)
trap 'rm -f "$rules"' EXIT
status=0

for bench in $benches; do
  base_file="$bdir/BENCH_$bench.json"
  cur_file="$cdir/BENCH_$bench.json"
  require_file "$base_file"
  require_file "$cur_file"
  require_fault_free "$cur_file"

  # Resolve this bench's rules: its own lines, plus `*` lines for metrics
  # it does not configure itself.  Later duplicates win.
  awk -v bench="$bench" '
    /^[[:space:]]*(#|$)/ { next }
    $1 == bench { if (!($2 in own)) order[n++] = $2; own[$2] = $3 " " $4 }
    $1 == "*"   { if (!($2 in any)) worder[m++] = $2; any[$2] = $3 " " $4 }
    END {
      for (i = 0; i < m; i++)
        if (!(worder[i] in own)) print worder[i], any[worder[i]]
      for (i = 0; i < n; i++) print order[i], own[order[i]]
    }' "$conf" > "$rules"

  if [ ! -s "$rules" ]; then
    echo "perf_gate: no gate rules apply to bench \"$bench\"" >&2
    exit 2
  fi

  while read -r metric mode limit; do
    [ "$mode" = ignore ] && continue
    base=$(metric_of "$base_file" "$metric")
    cur=$(metric_of "$cur_file" "$metric")
    if [ -z "$base" ] || [ -z "$cur" ]; then
      echo "perf_gate: metric \"$metric\" missing in $base_file or" \
           "$cur_file" >&2
      exit 2
    fi
    rc=0
    check "$bench" "$metric" "$mode" "${limit:-}" "$base" "$cur" || rc=$?
    if [ "$rc" -eq 2 ]; then
      exit 2
    elif [ "$rc" -ne 0 ]; then
      status=1
    fi
  done < "$rules"
done

exit $status
