// Merging disjoint shard summaries back into a full-campaign summary.
//
// `clktune sweep --shard i/n` runs the expansion indices with
// idx % n == i and records the slice in its summary; this module is the
// inverse: given all n shard summaries it interleaves their cells back
// into expansion order and produces a summary byte-identical to the one an
// unsharded sweep of the same campaign would have written.  Backs
// `clktune report --merge` and ShardedExecutor.
#pragma once

#include <vector>

#include "scenario/campaign.h"

namespace clktune::exec {

/// Merges the complete set of shard summaries of one campaign.  The inputs
/// may arrive in any order; the output covers the whole expansion with
/// shard_count 1 (so its JSON carries no "shard" member, like an unsharded
/// sweep).  Throws ExecError when the inputs are not exactly the n
/// disjoint shards of one campaign: mismatched names or shard counts,
/// duplicate (overlapping) shard indices, missing shards, or cell counts
/// inconsistent with a single expansion size.
scenario::CampaignSummary merge_shard_summaries(
    const std::vector<scenario::CampaignSummary>& shards);

}  // namespace clktune::exec
