#include "util/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "fault/fault.h"

namespace clktune::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

/// "<prefix>.<suffix>" built without allocating on the disarmed path —
/// callers only invoke this under fault::armed().
std::string site_name(const char* prefix, const char* suffix) {
  return std::string(prefix) + "." + suffix;
}

class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// close() surfaced as a return value: a failed close on a written file
  /// is a write failure.
  int close_now() {
    const int rc = fd_ >= 0 ? ::close(fd_) : 0;
    fd_ = -1;
    return rc;
  }
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_;
};

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view contents,
                       bool durable, const char* fault_site) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);

  // Unique per process + call: concurrent committers to the same final
  // path never share a temporary, and a crashed process's leftovers can
  // never be renamed by anyone else.
  static std::atomic<std::uint64_t> sequence{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(sequence.fetch_add(1));

  Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
  if (!fd.valid()) fail("open", tmp);

  try {
    std::size_t size = contents.size();
    if (fault_site != nullptr && fault::armed()) {
      const fault::Fired fired =
          fault::check(site_name(fault_site, "write").c_str());
      if (fired.action == fault::Action::short_write) {
        // Persist a prefix, then fail the commit: models a torn write
        // that a crash would leave behind in the temporary.
        write_all(fd.get(), contents.data(),
                  std::min(size, fired.keep_bytes), tmp);
        errno = EIO;
        fail("write (injected short write)", tmp);
      }
      if (fired.action == fault::Action::truncate)
        size = std::min(size, fired.keep_bytes);
    }
    write_all(fd.get(), contents.data(), size, tmp);

    if (durable) {
      if (fault_site != nullptr && fault::armed())
        fault::check(site_name(fault_site, "fsync").c_str());
      if (::fsync(fd.get()) != 0) fail("fsync", tmp);
    }
    if (fd.close_now() != 0) fail("close", tmp);

    if (fault_site != nullptr && fault::armed())
      fault::check(site_name(fault_site, "rename").c_str());
    if (::rename(tmp.c_str(), path.c_str()) != 0) fail("rename", path);
  } catch (...) {
    fd.reset();
    ::unlink(tmp.c_str());
    throw;
  }

  if (fault_site != nullptr && fault::armed())
    fault::check(site_name(fault_site, "commit").c_str());
  if (durable) {
    // fsync the directory so the rename itself survives power loss.  Some
    // filesystems refuse fsync on a directory fd; that is not a torn
    // commit, so only real failures are surfaced.
    Fd dfd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
    if (dfd.valid()) {
      if (::fsync(dfd.get()) != 0 && errno != EINVAL && errno != ENOTSUP)
        fail("fsync (directory)", dir);
    }
  }
}

}  // namespace clktune::util
