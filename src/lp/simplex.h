// Two-phase primal simplex for bounded variables, dense tableau.
//
// Replaces the commercial ILP solver used in the paper (Gurobi [6]) as the LP
// engine underneath branch & bound.  The per-sample models produced by the
// insertion flow are small (tens of variables after component reduction), so
// a dense full-tableau method with Bland anti-cycling is both simple and
// fast enough; correctness is what matters and is covered by randomized
// comparison tests against brute force.
#pragma once

#include <vector>

#include "lp/model.h"

namespace clktune::lp {

enum class Status {
  optimal,
  infeasible,
  unbounded,
  iteration_limit,
};

struct Solution {
  Status status = Status::iteration_limit;
  double objective = 0.0;
  std::vector<double> x;  // structural variables only
  long iterations = 0;
};

struct SimplexOptions {
  double pivot_tolerance = 1e-9;
  double feasibility_tolerance = 1e-7;
  double cost_tolerance = 1e-9;
  long iteration_limit = 50000;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int stall_threshold = 40;
};

Solution solve(const Model& model, const SimplexOptions& options = {});

}  // namespace clktune::lp
