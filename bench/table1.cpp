// Reproduces Table I: for each of the eight benchmark circuits and each
// clock setting T in {muT, muT+sigmaT, muT+2sigmaT}, runs the full
// sampling-based insertion flow and reports buffer count Nb, average range
// Ab (steps), yield Y(%), improvement Yi(%) and runtime T(s), plus the two
// baselines (top-K symmetric criticality insertion and buffer-everywhere).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/report.h"
#include "util/timer.h"

namespace {

using namespace clktune;

int run() {
  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  bench::BenchReport report("table1");
  std::printf(
      "Table I reproduction: samples=%llu eval=%llu (paper: 10000)\n"
      "yields from an out-of-sample Monte-Carlo run; Yo = no buffers;\n"
      "topK = symmetric-window criticality baseline at the same buffer "
      "count;\nallbuf = symmetric window on every flip-flop\n\n",
      static_cast<unsigned long long>(cfg.samples),
      static_cast<unsigned long long>(cfg.eval_samples));
  std::printf(
      "%-13s %5s %6s | %7s %9s | %3s %6s %7s %7s %8s | %7s %7s\n",
      "circuit", "ns", "ng", "setting", "T(ps)", "Nb", "Ab", "Y(%)", "Yi(%)",
      "T(s)", "topK(%)", "allbuf%");
  std::printf("%s\n", std::string(110, '-').c_str());

  std::vector<core::TableRow> rows;
  for (const netlist::SyntheticSpec& spec : netlist::paper_circuit_specs()) {
    if (!cfg.wants(spec.name)) continue;
    const bench::PreparedCircuit pc = bench::prepare(spec, cfg);
    const mc::Sampler eval_sampler(pc.graph, bench::kEvalSeed);
    const mc::Sampler insert_sampler(pc.graph, 20160314);
    // Evaluation delays depend only on (seed, sample, arc): one cache
    // serves all twelve evaluations of this circuit (4 plans x 3 clock
    // settings), and a second serves the criticality baseline's
    // insertion-seed delays.  The first use of each fills it.  The pair
    // shares the CLKTUNE_EVAL_CACHE_MB budget: the high-reuse eval cache
    // takes exactly what it needs when it fits, the remainder goes to the
    // insert cache, and the total never exceeds the documented bound.
    const std::uint64_t total_budget = cfg.eval_cache_bytes();
    const std::uint64_t eval_need = mc::SampleDelayCache::required_bytes(
        cfg.eval_samples, pc.graph.arcs.size());
    const std::uint64_t eval_budget =
        eval_need <= total_budget ? eval_need : 0;
    mc::SampleDelayCache eval_delays(eval_sampler, cfg.eval_samples,
                                     eval_budget);
    bool fill_delays = true;
    mc::SampleDelayCache insert_delays(insert_sampler, cfg.samples,
                                       total_budget - eval_budget);
    bool fill_insert = true;

    for (int sigmas = 0; sigmas <= 2; ++sigmas) {
      const double t = pc.setting_period(sigmas);
      util::Stopwatch sw;
      core::BufferInsertionEngine engine(pc.design, pc.graph, t,
                                         cfg.insertion());
      const core::InsertionResult res = engine.run();
      const double runtime = sw.seconds();
      report.count_insertion(res, cfg.samples);
      report.count_samples(cfg.samples);          // criticality baseline
      report.count_samples(4 * cfg.eval_samples);  // yo / ours / topk / allbuf

      const feas::YieldResult yo =
          feas::original_yield(pc.graph, t, eval_delays, cfg.eval_samples,
                               cfg.threads, fill_delays);
      fill_delays = false;
      const feas::YieldEvaluator ours(pc.graph, res.plan, t);
      const feas::YieldResult y =
          ours.evaluate(eval_delays, cfg.eval_samples, cfg.threads, false);

      const feas::TuningPlan topk = core::top_k_criticality_plan(
          pc.graph, insert_delays, t, cfg.samples,
          res.plan.physical_buffers(), cfg.insertion().steps, res.step_ps,
          cfg.threads, fill_insert);
      fill_insert = false;
      const double y_topk =
          feas::YieldEvaluator(pc.graph, topk, t)
              .evaluate(eval_delays, cfg.eval_samples, cfg.threads, false)
              .yield;
      const feas::TuningPlan allbuf =
          core::oracle_plan(pc.graph, cfg.insertion().steps, res.step_ps);
      const double y_all =
          feas::YieldEvaluator(pc.graph, allbuf, t)
              .evaluate(eval_delays, cfg.eval_samples, cfg.threads, false)
              .yield;

      core::TableRow row;
      row.circuit = spec.name;
      row.ns = spec.num_flipflops;
      row.ng = spec.num_gates;
      row.setting = bench::setting_name(sigmas);
      row.clock_ps = t;
      row.nb = res.plan.physical_buffers();
      row.ab = res.plan.average_range();
      row.yield = 100.0 * y.yield;
      row.yield_original = 100.0 * yo.yield;
      row.runtime_s = runtime;
      rows.push_back(row);

      std::printf(
          "%-13s %5d %6d | %7s %9.1f | %3d %6.2f %7.2f %7.2f %8.2f | %7.2f "
          "%7.2f\n",
          spec.name.c_str(), spec.num_flipflops, spec.num_gates,
          bench::setting_name(sigmas), t, row.nb, row.ab, row.yield,
          row.improvement(), runtime, 100.0 * y_topk, 100.0 * y_all);
      std::fflush(stdout);
    }
  }

  std::printf("\npaper reference (Table I):\n");
  std::printf(
      "  s9234    muT: Nb=2  Ab=12.50 Y=77.11 Yi=27.11 | +1s: Nb=2  Yi=11.81 "
      "| +2s: Nb=2 Yi=1.46\n"
      "  s13207   muT: Nb=5  Ab=9.80  Y=72.37 Yi=22.37 | +1s: Nb=5  Yi=12.29 "
      "| +2s: Nb=6 Yi=1.81\n"
      "  s15850   muT: Nb=5  Ab=19.80 Y=69.34 Yi=19.34 | +1s: Nb=5  Yi=10.20 "
      "| +2s: Nb=5 Yi=1.40\n"
      "  s38584   muT: Nb=11 Ab=9.74  Y=85.97 Yi=35.97 | +1s: Nb=7  Yi=14.35 "
      "| +2s: Nb=7 Yi=1.22\n"
      "  mem_ctrl muT: Nb=10 Ab=11.90 Y=67.11 Yi=17.11 | +1s: Nb=10 Yi=10.45 "
      "| +2s: Nb=10 Yi=1.19\n"
      "  usb_funct muT: Nb=17 Ab=17.18 Y=71.77 Yi=21.77 | +1s: Nb=17 "
      "Yi=12.44 | +2s: Nb=9 Yi=1.01\n"
      "  ac97_ctrl muT: Nb=21 Ab=15.10 Y=75.05 Yi=25.05 | +1s: Nb=21 "
      "Yi=10.79 | +2s: Nb=8 Yi=0.01\n"
      "  pci_bridge32 muT: Nb=32 Ab=13.84 Y=73.66 Yi=23.66 | +1s: Nb=32 "
      "Yi=12.63 | +2s: Nb=8 Yi=0.95\n");
  return report.write();
}

}  // namespace

int main() { return run(); }
