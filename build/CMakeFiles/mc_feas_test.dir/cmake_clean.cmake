file(REMOVE_RECURSE
  "CMakeFiles/mc_feas_test.dir/tests/mc_feas_test.cpp.o"
  "CMakeFiles/mc_feas_test.dir/tests/mc_feas_test.cpp.o.d"
  "mc_feas_test"
  "mc_feas_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_feas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
