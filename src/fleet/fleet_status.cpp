#include "fleet/fleet_status.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <thread>
#include <utility>

namespace clktune::fleet {

using util::Json;

namespace {

std::uint64_t uint_of(const Json& object, const char* key) {
  const Json* member = object.find(key);
  return member != nullptr ? member->as_uint() : 0;
}

/// "42s", "3m12s", "2h03m" — compact enough for a table cell.
std::string format_uptime(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  const auto total = static_cast<std::uint64_t>(seconds);
  char buf[32];
  if (total < 60) {
    std::snprintf(buf, sizeof(buf), "%llus",
                  static_cast<unsigned long long>(total));
  } else if (total < 3600) {
    std::snprintf(buf, sizeof(buf), "%llum%02llus",
                  static_cast<unsigned long long>(total / 60),
                  static_cast<unsigned long long>(total % 60));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluh%02llum",
                  static_cast<unsigned long long>(total / 3600),
                  static_cast<unsigned long long>(total % 3600 / 60));
  }
  return buf;
}

void probe_one(const FleetMember& member,
               const serve::SubmitOptions& timeouts, DaemonProbe& probe) {
  probe.member = member;
  Json status_cmd = Json::object();
  status_cmd.set("cmd", "status");
  try {
    const serve::SubmitOutcome outcome = serve::submit_raw(
        member.host, member.port, status_cmd, {}, timeouts);
    const Json* event = outcome.final_event.find("event");
    if (event != nullptr && event->as_string() == "status") {
      probe.alive = true;
      probe.status = outcome.final_event;
    } else {
      const Json* code = outcome.final_event.find("code");
      if (code != nullptr && code->is_string() &&
          code->as_string() == "busy") {
        // Saturated but alive: it answered, it just has no free handler —
        // report it alive with the backpressure note, no stats.
        probe.alive = true;
        probe.error = "busy (admission queue full)";
        return;
      }
      const Json* message = outcome.final_event.find("message");
      probe.error = message != nullptr ? message->as_string()
                                       : "no status response";
      return;
    }
  } catch (const std::exception& e) {
    probe.error = e.what();
    return;
  }
  // Best-effort metrics snapshot; a daemon predating the verb answers
  // with an error frame and stays alive with an empty metrics object.
  Json metrics_cmd = Json::object();
  metrics_cmd.set("cmd", "metrics");
  try {
    const serve::SubmitOutcome outcome = serve::submit_raw(
        member.host, member.port, metrics_cmd, {}, timeouts);
    const Json* event = outcome.final_event.find("event");
    if (event != nullptr && event->as_string() == "metrics")
      probe.metrics = outcome.final_event;
  } catch (const std::exception&) {
    // Health already established by the status round trip.
  }
}

}  // namespace

Json DaemonProbe::to_json() const {
  Json j = Json::object();
  j.set("daemon", member.endpoint());
  j.set("alive", alive);
  if (!error.empty()) j.set("error", error);
  if (alive && status.find("event") != nullptr) j.set("status", status);
  if (alive && metrics.find("event") != nullptr) j.set("metrics", metrics);
  return j;
}

Json PoolStatus::to_json() const {
  Json listing = Json::array();
  for (const DaemonProbe& probe : daemons) listing.push_back(probe.to_json());
  Json totals = Json::object();
  totals.set("requests", requests);
  totals.set("scenarios_run", scenarios_run);
  totals.set("rejected", rejected);
  totals.set("cache_hits", cache_hits);
  totals.set("cache_misses", cache_misses);
  totals.set("jobs_queued", jobs_queued);
  totals.set("jobs_running", jobs_running);
  Json j = Json::object();
  j.set("daemons", std::move(listing));
  j.set("alive", static_cast<std::uint64_t>(alive));
  j.set("dead", static_cast<std::uint64_t>(dead));
  j.set("totals", std::move(totals));
  return j;
}

PoolStatus probe_pool(const FleetSpec& spec,
                      const serve::SubmitOptions& timeouts) {
  PoolStatus pool;
  pool.daemons.resize(spec.members.size());
  std::vector<std::thread> probes;
  probes.reserve(spec.members.size());
  for (std::size_t m = 0; m < spec.members.size(); ++m)
    probes.emplace_back([&spec, &timeouts, &pool, m] {
      probe_one(spec.members[m], timeouts, pool.daemons[m]);
    });
  for (std::thread& probe : probes) probe.join();

  for (const DaemonProbe& probe : pool.daemons) {
    if (!probe.alive) {
      ++pool.dead;
      continue;
    }
    ++pool.alive;
    const Json& status = probe.status;
    if (status.find("event") == nullptr) continue;  // busy: no stats
    pool.requests += uint_of(status, "requests");
    pool.scenarios_run += uint_of(status, "scenarios_run");
    pool.rejected += uint_of(status, "rejected");
    if (const Json* cache = status.find("cache")) {
      pool.cache_hits += uint_of(*cache, "hits");
      pool.cache_misses += uint_of(*cache, "misses");
    }
    if (const Json* jobs = status.find("jobs")) {
      pool.jobs_queued += uint_of(*jobs, "queued");
      pool.jobs_running += uint_of(*jobs, "running");
    }
  }
  return pool;
}

void render_pool_table(std::ostream& out, const PoolStatus& pool) {
  std::size_t width = 6;  // len("DAEMON")
  for (const DaemonProbe& probe : pool.daemons)
    width = std::max(width, probe.member.endpoint().size());

  char line[256];
  std::snprintf(line, sizeof(line),
                "%-*s  %-5s  %8s  %8s  %8s  %6s  %6s\n",
                static_cast<int>(width), "DAEMON", "STATE", "UPTIME",
                "REQS", "SCEN", "HIT%", "JOBS");
  out << line;
  for (const DaemonProbe& probe : pool.daemons) {
    const std::string endpoint = probe.member.endpoint();
    if (!probe.alive) {
      std::snprintf(line, sizeof(line),
                    "%-*s  %-5s  %8s  %8s  %8s  %6s  %6s  %s\n",
                    static_cast<int>(width), endpoint.c_str(), "dead",
                    "-", "-", "-", "-", "-", probe.error.c_str());
      out << line;
      continue;
    }
    const Json& status = probe.status;
    if (status.find("event") == nullptr) {
      std::snprintf(line, sizeof(line),
                    "%-*s  %-5s  %8s  %8s  %8s  %6s  %6s  %s\n",
                    static_cast<int>(width), endpoint.c_str(), "busy",
                    "-", "-", "-", "-", "-", probe.error.c_str());
      out << line;
      continue;
    }
    const std::uint64_t hits =
        status.find("cache") ? uint_of(*status.find("cache"), "hits") : 0;
    const std::uint64_t misses =
        status.find("cache") ? uint_of(*status.find("cache"), "misses") : 0;
    const std::uint64_t lookups = hits + misses;
    char hit_pct[16];
    if (lookups == 0)
      std::snprintf(hit_pct, sizeof(hit_pct), "-");
    else
      std::snprintf(hit_pct, sizeof(hit_pct), "%.0f%%",
                    100.0 * static_cast<double>(hits) /
                        static_cast<double>(lookups));
    std::uint64_t jobs_active = 0;
    if (const Json* jobs = status.find("jobs"))
      jobs_active = uint_of(*jobs, "queued") + uint_of(*jobs, "running");
    const Json* uptime = status.find("uptime_seconds");
    std::snprintf(
        line, sizeof(line),
        "%-*s  %-5s  %8s  %8llu  %8llu  %6s  %6llu\n",
        static_cast<int>(width), endpoint.c_str(), "up",
        format_uptime(uptime != nullptr ? uptime->as_double() : 0.0).c_str(),
        static_cast<unsigned long long>(uint_of(status, "requests")),
        static_cast<unsigned long long>(uint_of(status, "scenarios_run")),
        hit_pct, static_cast<unsigned long long>(jobs_active));
    out << line;
  }

  const std::uint64_t lookups = pool.cache_hits + pool.cache_misses;
  char hit_pct[16];
  if (lookups == 0)
    std::snprintf(hit_pct, sizeof(hit_pct), "-");
  else
    std::snprintf(hit_pct, sizeof(hit_pct), "%.0f%%",
                  100.0 * static_cast<double>(pool.cache_hits) /
                      static_cast<double>(lookups));
  std::snprintf(
      line, sizeof(line), "%-*s  %zu/%zu  %8s  %8llu  %8llu  %6s  %6llu\n",
      static_cast<int>(width), "TOTAL", pool.alive,
      pool.alive + pool.dead, "-",
      static_cast<unsigned long long>(pool.requests),
      static_cast<unsigned long long>(pool.scenarios_run), hit_pct,
      static_cast<unsigned long long>(pool.jobs_queued + pool.jobs_running));
  out << line;
}

}  // namespace clktune::fleet
