#include "ssta/seq_graph.h"

#include <algorithm>

#include "netlist/nominal_sta.h"
#include "util/assert.h"

namespace clktune::ssta {
namespace {

using netlist::Design;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;

/// Canonical delay of one gate arc (nominal x relative variation model).
Canon gate_canon(const Design& design, NodeId gate, bool late) {
  const double nominal = late ? netlist::nominal_gate_delay(design, gate)
                              : netlist::nominal_gate_min_delay(design, gate);
  const netlist::VariationModel& vm = design.library.variation();
  Canon c;
  c.mu = nominal;
  for (int p = 0; p < kParams; ++p)
    c.a[static_cast<std::size_t>(p)] =
        nominal * vm.global_sens[static_cast<std::size_t>(p)];
  c.aloc = nominal * vm.local_sigma;
  return c;
}

Canon clkq_canon(const Design& design, NodeId ff, bool late) {
  return gate_canon(design, ff, late);
}

}  // namespace

SeqGraph extract_seq_graph(const Design& design) {
  const Netlist& nl = design.netlist;
  CLKTUNE_EXPECTS(nl.finalized());

  SeqGraph graph;
  graph.num_ffs = static_cast<int>(nl.flipflops().size());
  graph.setup_ps.assign(static_cast<std::size_t>(graph.num_ffs),
                        design.library.setup_ps());
  graph.hold_ps.assign(static_cast<std::size_t>(graph.num_ffs),
                       design.library.hold_ps());
  graph.skew_ps.resize(static_cast<std::size_t>(graph.num_ffs));
  for (int i = 0; i < graph.num_ffs; ++i)
    graph.skew_ps[static_cast<std::size_t>(i)] = design.skew(i);

  // Scratch arrays reused across sources; `stamp` marks cone membership.
  const std::size_t n = nl.num_nodes();
  std::vector<int> stamp(n, -1);
  std::vector<Canon> arr_max(n), arr_min(n);
  std::vector<NodeId> cone;

  for (int src = 0; src < graph.num_ffs; ++src) {
    const NodeId src_node = nl.flipflops()[static_cast<std::size_t>(src)];
    // Collect the combinational fanout cone via DFS.
    cone.clear();
    std::vector<NodeId> stack;
    for (NodeId s : nl.node(src_node).fanouts) stack.push_back(s);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      if (nl.node(v).kind != NodeKind::gate) continue;
      if (stamp[static_cast<std::size_t>(v)] == src) continue;
      stamp[static_cast<std::size_t>(v)] = src;
      cone.push_back(v);
      for (NodeId s : nl.node(v).fanouts) stack.push_back(s);
    }
    // Process cone gates in global topological order.
    std::sort(cone.begin(), cone.end(), [&nl](NodeId a, NodeId b) {
      return nl.topo_index(a) < nl.topo_index(b);
    });

    const Canon launch_max = clkq_canon(design, src_node, true);
    const Canon launch_min = clkq_canon(design, src_node, false);

    for (NodeId g : cone) {
      bool have = false;
      Canon in_max, in_min;
      for (NodeId f : nl.node(g).fanins) {
        const Node& fn = nl.node(f);
        Canon fmax, fmin;
        if (f == src_node) {
          fmax = launch_max;
          fmin = launch_min;
        } else if (fn.kind == NodeKind::gate &&
                   stamp[static_cast<std::size_t>(f)] == src) {
          fmax = arr_max[static_cast<std::size_t>(f)];
          fmin = arr_min[static_cast<std::size_t>(f)];
        } else {
          continue;  // side input: not on a src->dst path
        }
        if (!have) {
          in_max = fmax;
          in_min = fmin;
          have = true;
        } else {
          in_max = clark_max(in_max, fmax);
          in_min = clark_min(in_min, fmin);
        }
      }
      CLKTUNE_ASSERT(have);  // cone membership implies an in-cone fanin
      arr_max[static_cast<std::size_t>(g)] = in_max + gate_canon(design, g, true);
      arr_min[static_cast<std::size_t>(g)] = in_min + gate_canon(design, g, false);
    }

    // Emit arcs into every flip-flop whose D driver lies in the cone (or is
    // the source itself: direct Q->D connection).
    for (int dst = 0; dst < graph.num_ffs; ++dst) {
      const NodeId dst_node = nl.flipflops()[static_cast<std::size_t>(dst)];
      const Node& dn = nl.node(dst_node);
      if (dn.fanins.empty()) continue;
      const NodeId driver = dn.fanins[0];
      Canon dmax, dmin;
      if (driver == src_node) {
        dmax = launch_max;
        dmin = launch_min;
      } else if (nl.node(driver).kind == NodeKind::gate &&
                 stamp[static_cast<std::size_t>(driver)] == src) {
        dmax = arr_max[static_cast<std::size_t>(driver)];
        dmin = arr_min[static_cast<std::size_t>(driver)];
      } else {
        continue;
      }
      // Fold in the spatially-correlated within-die component: it scales
      // with the whole path (one region per cone), so it joins the arc's
      // local term un-attenuated.  dmax/dmin of one arc share the sampling
      // draw, which keeps their regional parts correlated.
      const double regional = design.library.variation().regional_sigma;
      dmax.aloc = std::sqrt(dmax.aloc * dmax.aloc +
                            regional * dmax.mu * regional * dmax.mu);
      dmin.aloc = std::sqrt(dmin.aloc * dmin.aloc +
                            regional * dmin.mu * regional * dmin.mu);
      graph.arcs.push_back(SeqArc{src, dst, dmax, dmin});
    }
  }

  graph.arcs_of_ff.assign(static_cast<std::size_t>(graph.num_ffs), {});
  for (std::size_t e = 0; e < graph.arcs.size(); ++e) {
    const SeqArc& arc = graph.arcs[e];
    graph.arcs_of_ff[static_cast<std::size_t>(arc.src_ff)].push_back(
        static_cast<int>(e));
    if (arc.dst_ff != arc.src_ff)
      graph.arcs_of_ff[static_cast<std::size_t>(arc.dst_ff)].push_back(
          static_cast<int>(e));
  }
  return graph;
}

double nominal_arc_period(const SeqGraph& graph) {
  double period = 0.0;
  for (const SeqArc& arc : graph.arcs) {
    const double t = arc.dmax.mu +
                     graph.setup_ps[static_cast<std::size_t>(arc.dst_ff)] +
                     graph.skew_ps[static_cast<std::size_t>(arc.src_ff)] -
                     graph.skew_ps[static_cast<std::size_t>(arc.dst_ff)];
    period = std::max(period, t);
  }
  return period;
}

}  // namespace clktune::ssta
