// End-to-end serve tests: a real daemon on an ephemeral loopback port, real
// client connections.  A submitted scenario must stream back exactly the
// artifact `clktune run` (run_scenario) produces for the same document; a
// submitted campaign streams one result per cell and serves a repeat
// submission entirely from the cache.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "scenario/scenario.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/socket.h"

namespace clktune {
namespace {

using util::Json;

Json tiny_scenario_doc() {
  return Json::parse(R"({
    "name": "tiny",
    "design": {"synthetic": {"name": "tiny", "num_flipflops": 30,
                             "num_gates": 220, "seed": 5}},
    "clock": {"sigma_offset": 0.0, "period_samples": 400},
    "insertion": {"num_samples": 200, "steps": 8},
    "evaluation": {"samples": 400, "seed": 99}
  })");
}

Json tiny_campaign_doc() {
  Json doc = Json::object();
  doc.set("name", "tiny_campaign");
  doc.set("base", tiny_scenario_doc());
  Json sweep = Json::object();
  sweep.set("clock.sigma_offset",
            Json(util::JsonArray{Json(0.0), Json(1.0)}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

/// Daemon on an ephemeral port with its accept loop on a worker thread;
/// shut down via the wire protocol (or stop() as a fallback).
class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    serve::ServeOptions options;
    options.port = 0;
    options.threads = 2;
    server_ = std::make_unique<serve::ScenarioServer>(std::move(options));
    server_->start();
    thread_ = std::thread([this] { server_->serve_forever(); });
  }

  void TearDown() override {
    server_->stop();
    if (thread_.joinable()) thread_.join();
  }

  serve::SubmitOutcome submit(const std::string& cmd, const Json& doc) {
    return serve::submit_request("127.0.0.1", server_->port(), cmd, doc);
  }

  std::unique_ptr<serve::ScenarioServer> server_;
  std::thread thread_;
};

TEST_F(ServerFixture, RunMatchesDirectExecutionByteForByte) {
  const Json doc = tiny_scenario_doc();
  const serve::SubmitOutcome outcome =
      serve::submit_document("127.0.0.1", server_->port(), doc);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.results.size(), 1u);
  EXPECT_EQ(outcome.cached, 0u);
  EXPECT_EQ(outcome.targets_missed(), 0u);

  const auto spec = scenario::ScenarioSpec::from_json(doc);
  const scenario::ScenarioResult local = scenario::run_scenario(spec, 2);
  EXPECT_EQ(outcome.results[0].dump(), local.to_json().dump());

  // The same document again is served from the cache, byte-identically.
  const serve::SubmitOutcome warm =
      serve::submit_document("127.0.0.1", server_->port(), doc);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.cached, 1u);
  EXPECT_EQ(warm.results[0].dump(), outcome.results[0].dump());
}

TEST_F(ServerFixture, SweepStreamsOneResultPerCellAndCachesRepeats) {
  const Json doc = tiny_campaign_doc();
  std::size_t result_events = 0;
  const serve::SubmitOutcome cold = serve::submit_request(
      "127.0.0.1", server_->port(), "sweep", doc, [&](const Json& event) {
        result_events += event.at("event").as_string() == "result";
      });
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(result_events, 2u);
  ASSERT_EQ(cold.results.size(), 2u);
  EXPECT_EQ(cold.final_event.at("scenarios_run").as_uint(), 2u);
  EXPECT_EQ(cold.cached, 0u);
  // Expansion-index order regardless of completion order.
  EXPECT_EQ(cold.results[0].at("setting").as_string(), "muT");
  EXPECT_EQ(cold.results[1].at("setting").as_string(), "muT+s");

  const serve::SubmitOutcome warm =
      serve::submit_request("127.0.0.1", server_->port(), "sweep", doc);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.cached, 2u);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_EQ(warm.results[i].dump(), cold.results[i].dump());

  // The base document is not any expanded cell (name suffix, seed stride),
  // so submitting it directly computes fresh under its own content key.
  const serve::SubmitOutcome run =
      serve::submit_document("127.0.0.1", server_->port(),
                             tiny_scenario_doc());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.cached, 0u);
}

TEST_F(ServerFixture, StatusReportsCountersAndCacheStats) {
  (void)submit("run", tiny_scenario_doc());
  const serve::SubmitOutcome status = submit("status", Json());
  EXPECT_EQ(status.final_event.at("event").as_string(), "status");
  EXPECT_EQ(status.final_event.at("scenarios_run").as_uint(), 1u);
  EXPECT_GE(status.final_event.at("requests").as_uint(), 2u);
  EXPECT_EQ(status.final_event.at("cache").at("misses").as_uint(), 1u);
}

TEST_F(ServerFixture, MalformedAndInvalidRequestsReportErrors) {
  // Unknown command.
  const serve::SubmitOutcome unknown = submit("frobnicate", Json());
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.final_event.at("event").as_string(), "error");

  // Invalid scenario document (typo'd key) — loud, structured error.
  Json bad = tiny_scenario_doc();
  bad.set("numsamples", 5);
  const serve::SubmitOutcome invalid = submit("run", bad);
  EXPECT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.final_event.at("event").as_string(), "error");
  EXPECT_NE(invalid.final_event.at("message").as_string().find("numsamples"),
            std::string::npos);

  // Garbage bytes: an error line comes back and the connection closes.
  const util::TcpSocket connection =
      util::tcp_connect("127.0.0.1", server_->port());
  util::tcp_write_all(connection, "this is not json\n");
  util::LineReader reader(connection);
  std::string line;
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(Json::parse(line).at("event").as_string(), "error");
}

TEST_F(ServerFixture, ShutdownRequestStopsTheAcceptLoop) {
  const serve::SubmitOutcome outcome = submit("shutdown", Json());
  EXPECT_TRUE(outcome.ok());
  thread_.join();  // serve_forever() must return on its own
}

// -------------------------------------------------- work units ("indices")

TEST_F(ServerFixture, IndicesSweepRunsExactlyTheRequestedCells) {
  Json wire = Json::object();
  wire.set("cmd", "sweep");
  wire.set("doc", tiny_campaign_doc());
  wire.set("indices", Json(util::JsonArray{Json(1)}));
  const serve::SubmitOutcome unit =
      serve::submit_raw("127.0.0.1", server_->port(), wire);
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ(unit.final_event.at("scenarios_run").as_uint(), 1u);
  // submit_raw stores results by index, so slot 0 stays empty.
  ASSERT_EQ(unit.results.size(), 2u);
  EXPECT_TRUE(unit.results[0].is_null());
  EXPECT_EQ(unit.results[1].at("setting").as_string(), "muT+s");

  // The same cell through the full sweep is byte-identical — a work unit
  // is just a selection, never a different computation.
  const serve::SubmitOutcome full = serve::submit_request(
      "127.0.0.1", server_->port(), "sweep", tiny_campaign_doc());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(unit.results[1].dump(), full.results[1].dump());

  // Out-of-range and unsorted index lists are structured errors.
  wire.set("indices", Json(util::JsonArray{Json(7)}));
  EXPECT_FALSE(serve::submit_raw("127.0.0.1", server_->port(), wire).ok());
  wire.set("indices", Json(util::JsonArray{Json(1), Json(0)}));
  EXPECT_FALSE(serve::submit_raw("127.0.0.1", server_->port(), wire).ok());
}

// ---------------------------------------------- admission and backpressure

TEST(ServerBackpressureTest, QueueFullConnectionsGetBusyFrames) {
  serve::ServeOptions options;
  options.port = 0;
  options.threads = 1;
  options.admission_threads = 1;  // one handler: a held connection owns it
  options.queue_capacity = 1;
  serve::ScenarioServer server(std::move(options));
  server.start();
  std::thread accept_thread([&server] { server.serve_forever(); });

  {
    // Occupy the only handler: a status round trip proves the handler has
    // claimed this connection, and keeping it open keeps the handler
    // blocked on its next line.
    const util::TcpSocket held = util::tcp_connect("127.0.0.1",
                                                   server.port());
    util::tcp_write_all(held, "{\"cmd\":\"status\"}\n");
    util::LineReader held_reader(held);
    std::string line;
    ASSERT_TRUE(held_reader.read_line(line));
    EXPECT_EQ(Json::parse(line).at("event").as_string(), "status");

    // Fill the queue with a second idle connection...
    const util::TcpSocket queued = util::tcp_connect("127.0.0.1",
                                                     server.port());
    // ...then the third must be rejected with the structured busy frame.
    // Like a real fleet client it writes its request line immediately —
    // the server must still deliver the frame (closing with the request
    // unread would reset the connection and discard it).
    const util::TcpSocket rejected = util::tcp_connect("127.0.0.1",
                                                       server.port());
    util::tcp_write_all(rejected, "{\"cmd\":\"status\"}\n");
    util::LineReader rejected_reader(rejected);
    ASSERT_TRUE(rejected_reader.read_line(line));
    const Json busy = Json::parse(line);
    EXPECT_EQ(busy.at("event").as_string(), "error");
    EXPECT_EQ(busy.at("code").as_string(), "busy");
    EXPECT_FALSE(rejected_reader.read_line(line));  // and closed

    // Releasing the held connection frees the handler for the queued one.
  }
  // The handler drains the queued connection asynchronously, so a status
  // request may race it and be busy-rejected too — poll until admitted.
  serve::SubmitOutcome after;
  bool got_status = false;
  for (int i = 0; i < 200 && !got_status; ++i) {
    after = serve::submit_request("127.0.0.1", server.port(), "status",
                                  Json());
    const Json* event = after.final_event.find("event");
    got_status = event != nullptr && event->as_string() == "status";
    if (!got_status)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Stop before asserting: an early ASSERT return past the joinable
  // accept thread would escalate a failure into std::terminate.
  server.stop();
  accept_thread.join();
  ASSERT_TRUE(got_status);
  EXPECT_GE(after.final_event.at("rejected").as_uint(), 1u);
}

TEST_F(ServerFixture, SlowClientDoesNotBlockOtherConnections) {
  // An idle connection pins one handler indefinitely; with concurrent
  // admission the next client is served by another handler instead of
  // waiting for the first to finish (the pre-hardening behaviour).
  const util::TcpSocket idle = util::tcp_connect("127.0.0.1",
                                                 server_->port());
  const serve::SubmitOutcome outcome = submit("run", tiny_scenario_doc());
  EXPECT_TRUE(outcome.ok());
}

// ------------------------------------------------------- client deadlines

TEST(ClientTimeoutTest, SilentPeerSurfacesAsTimedOutNotEof) {
  // A listener that never responds: connects succeed (loopback backlog),
  // but no response line ever arrives.
  const util::TcpSocket silent = util::tcp_listen(0);
  serve::SubmitOptions timeouts;
  timeouts.io_timeout_ms = 100;
  try {
    serve::submit_raw("127.0.0.1", util::tcp_local_port(silent),
                      Json::parse(R"({"cmd":"status"})"), {}, timeouts);
    FAIL() << "expected a timeout";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
}

TEST(ClientTimeoutTest, UnreachableDaemonReportsTheEndpoint) {
  // Grab an ephemeral port and release it: connecting must now fail fast
  // with a diagnostic naming the endpoint rather than hanging.
  std::uint16_t port;
  {
    const util::TcpSocket listener = util::tcp_listen(0);
    port = util::tcp_local_port(listener);
  }
  serve::SubmitOptions timeouts;
  timeouts.connect_timeout_ms = 2000;
  try {
    serve::submit_raw("127.0.0.1", port, Json::parse(R"({"cmd":"status"})"),
                      {}, timeouts);
    FAIL() << "expected a connection failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(std::to_string(port)),
              std::string::npos);
  }
}

}  // namespace
}  // namespace clktune
