#include "mc/delay_cache.h"

#include "mc/sampler.h"

namespace clktune::mc {

std::size_t DelayCacheTraits::num_arcs() const {
  return sampler->graph().arcs.size();
}

void DelayCacheTraits::compute(std::uint64_t k, double* dmax,
                               double* dmin) const {
  sampler->evaluate_into(k, dmax, dmin);
}

ArcDelaysView DelayCacheTraits::compute_scratch(std::uint64_t k,
                                                ArcSample& s) const {
  sampler->evaluate(k, s);
  return {s.dmax.data(), s.dmin.data(), num_arcs()};
}

SampleDelayCache::SampleDelayCache(const Sampler& sampler,
                                   std::uint64_t samples,
                                   std::uint64_t max_bytes)
    : impl_(DelayCacheTraits{&sampler}, samples, max_bytes) {}

}  // namespace clktune::mc
