// clktune — command-line driver for the scenario / campaign pipeline.
//
//   clktune run <scenario.json>        run one scenario, write an artifact
//   clktune sweep <campaign.json>      expand + run a parameter sweep
//   clktune report <result.json>       render a saved artifact as a table
//   clktune report --diff <a> <b>      compare two artifacts cell by cell
//   clktune serve                      long-running scenario service (TCP)
//   clktune submit <doc.json>          send a document to a running server
//
// Common options:
//   -o, --output <path>   write the JSON artifact here (default: stdout)
//   -t, --threads <n>     worker threads (default: hardware concurrency)
//       --cache-dir <dir> content-addressed result cache (run/sweep/serve);
//                         repeated invocations skip already-solved cells
//       --shard <i/n>     sweep only expansion indices with idx % n == i
//       --tolerance <y>   --diff: allowed tuned-yield drop (default 0.005)
//       --host <h>        submit: server host (default 127.0.0.1)
//   -p, --port <n>        serve/submit: TCP port (default 20160; serve: 0
//                         picks an ephemeral port and prints it)
//       --timings         include wall-clock fields (artifact is then no
//                         longer bit-identical across runs)
//       --compact         single-line JSON instead of pretty-printed
//       --quiet           suppress progress lines on stderr
//
// Exit codes: 0 success, 1 usage error, 2 bad input file / structural diff
// mismatch, 3 a scenario missed its yield target or a diff cell regressed.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cache/result_cache.h"
#include "core/report.h"
#include "scenario/campaign.h"
#include "scenario/scenario.h"
#include "scenario/summary_diff.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/json.h"

namespace {

using clktune::util::Json;

/// Default service port (after the paper's DATE 2016 venue).
constexpr std::uint16_t kDefaultPort = 20160;

struct Options {
  std::string command;
  std::vector<std::string> inputs;  ///< positional arguments after command
  std::string output;
  std::string cache_dir;
  std::string host = "127.0.0.1";
  int port = -1;  ///< -1 = command default
  int threads = 0;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  double tolerance = 0.005;
  bool diff = false;
  bool timings = false;
  bool compact = false;
  bool quiet = false;
};

void print_usage(std::FILE* to) {
  std::fputs(
      "usage: clktune <command> [args] [options]\n"
      "\n"
      "commands:\n"
      "  run <scenario.json>     execute one scenario\n"
      "  sweep <campaign.json>   expand and execute a parameter sweep\n"
      "  report <result.json>    print a saved result artifact as a table\n"
      "  report --diff <a> <b>   compare two artifacts, flag regressions\n"
      "  serve                   run the scenario service (TCP, NDJSON)\n"
      "  submit <doc.json>       send a scenario/campaign to a server\n"
      "\n"
      "options:\n"
      "  -o, --output <path>     write the JSON artifact to <path>\n"
      "  -t, --threads <n>       worker threads (0 = hardware concurrency)\n"
      "      --cache-dir <dir>   enable the content-addressed result cache\n"
      "      --shard <i/n>       run expansion indices idx %% n == i only\n"
      "      --tolerance <y>     allowed tuned-yield drop for --diff\n"
      "      --host <h>          server host for submit\n"
      "  -p, --port <n>          server port (default 20160)\n"
      "      --timings           include wall-clock fields in artifacts\n"
      "      --compact           single-line JSON output\n"
      "      --quiet             no progress lines on stderr\n",
      to);
}

bool parse_shard(const std::string& text, Options& opt) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size())
    return false;
  char* end = nullptr;
  const unsigned long i = std::strtoul(text.c_str(), &end, 10);
  if (end != text.c_str() + slash) return false;
  const unsigned long n = std::strtoul(text.c_str() + slash + 1, &end, 10);
  if (*end != '\0' || n == 0 || i >= n) return false;
  opt.shard_index = i;
  opt.shard_count = n;
  return true;
}

int parse_options(int argc, char** argv, Options& opt) {
  if (argc < 2) {
    print_usage(stderr);
    return 1;
  }
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "-o" || arg == "--output") && i + 1 < argc) {
      opt.output = argv[++i];
    } else if ((arg == "-t" || arg == "--threads") && i + 1 < argc) {
      opt.threads = std::atoi(argv[++i]);
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      opt.cache_dir = argv[++i];
    } else if (arg == "--shard" && i + 1 < argc) {
      if (!parse_shard(argv[++i], opt)) {
        std::fprintf(stderr, "clktune: --shard wants i/n with 0 <= i < n\n");
        return 1;
      }
    } else if (arg == "--tolerance" && i + 1 < argc) {
      opt.tolerance = std::atof(argv[++i]);
    } else if (arg == "--host" && i + 1 < argc) {
      opt.host = argv[++i];
    } else if ((arg == "-p" || arg == "--port") && i + 1 < argc) {
      opt.port = std::atoi(argv[++i]);
      if (opt.port < 0 || opt.port > 65535) {
        std::fprintf(stderr, "clktune: --port wants 0..65535\n");
        return 1;
      }
    } else if (arg == "--diff") {
      opt.diff = true;
    } else if (arg == "--timings") {
      opt.timings = true;
    } else if (arg == "--compact") {
      opt.compact = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "clktune: unknown option '%s'\n", arg.c_str());
      print_usage(stderr);
      return 1;
    } else {
      opt.inputs.push_back(arg);
    }
  }
  return 0;
}

/// Enforces the command's positional-argument count.
bool expect_inputs(const Options& opt, std::size_t count) {
  if (opt.inputs.size() == count) return true;
  std::fprintf(stderr, "clktune: %s expects %zu file argument%s\n",
               opt.command.c_str(), count, count == 1 ? "" : "s");
  print_usage(stderr);
  return false;
}

void emit(const Options& opt, const Json& artifact) {
  const int indent = opt.compact ? -1 : 2;
  if (opt.output.empty()) {
    const std::string text = artifact.dump(indent);
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fputc('\n', stdout);
  } else {
    clktune::util::write_json_file(opt.output, artifact, indent);
    if (!opt.quiet)
      std::fprintf(stderr, "clktune: wrote %s\n", opt.output.c_str());
  }
}

std::unique_ptr<clktune::cache::ResultCache> make_cache(const Options& opt) {
  if (opt.cache_dir.empty()) return nullptr;
  return std::make_unique<clktune::cache::ResultCache>(opt.cache_dir);
}

int cmd_run(const Options& opt) {
  const Json doc = clktune::util::read_json_file(opt.inputs[0]);
  const auto spec = clktune::scenario::ScenarioSpec::from_json(doc);
  const std::unique_ptr<clktune::cache::ResultCache> cache = make_cache(opt);
  if (cache != nullptr) {
    const std::string key = clktune::cache::scenario_cache_key(spec);
    if (const auto artifact = cache->get(key)) {
      if (!opt.quiet)
        std::fprintf(stderr, "clktune: %s served from cache (%s)\n",
                     spec.name.c_str(), key.substr(0, 12).c_str());
      if (opt.timings && !opt.quiet)
        std::fprintf(stderr,
                     "clktune: cached artifacts carry no timing fields\n");
      emit(opt, *artifact);
      return artifact->at("met_target").as_bool() ? 0 : 3;
    }
  }
  if (!opt.quiet)
    std::fprintf(stderr, "clktune: running scenario %s\n", spec.name.c_str());
  const clktune::scenario::ScenarioResult result =
      clktune::scenario::run_scenario(spec, opt.threads);
  if (cache != nullptr)
    cache->put(clktune::cache::scenario_cache_key(spec), result.to_json());
  emit(opt, result.to_json(opt.timings));
  if (!opt.quiet)
    std::fprintf(stderr,
                 "clktune: %s  T=%.1f ps  Nb=%d  yield %.2f%% -> %.2f%%"
                 "  (%.1f s)\n",
                 result.name.c_str(), result.clock_period_ps,
                 result.insertion.plan.physical_buffers(),
                 100.0 * result.yield.original.yield,
                 100.0 * result.yield.tuned.yield, result.seconds);
  return result.met_target ? 0 : 3;
}

int cmd_sweep(const Options& opt) {
  const Json doc = clktune::util::read_json_file(opt.inputs[0]);
  auto spec = clktune::scenario::CampaignSpec::from_json(doc);
  if (opt.threads > 0) spec.threads = opt.threads;
  const clktune::scenario::CampaignRunner runner(std::move(spec));
  const std::size_t total = runner.spec().expansion_size();
  const std::size_t mine =
      total / opt.shard_count + (opt.shard_index < total % opt.shard_count);
  if (!opt.quiet) {
    if (opt.shard_count > 1)
      std::fprintf(stderr,
                   "clktune: campaign %s, shard %zu/%zu: %zu of %zu"
                   " scenarios\n",
                   runner.spec().name.c_str(), opt.shard_index,
                   opt.shard_count, mine, total);
    else
      std::fprintf(stderr, "clktune: campaign %s, %zu scenarios\n",
                   runner.spec().name.c_str(), total);
  }

  const std::unique_ptr<clktune::cache::ResultCache> cache = make_cache(opt);
  clktune::scenario::CampaignRunOptions run_options;
  run_options.cache = cache.get();
  run_options.shard_index = opt.shard_index;
  run_options.shard_count = opt.shard_count;
  run_options.on_done = [&](std::size_t index,
                            const clktune::scenario::ScenarioResult& r,
                            bool cached) {
    if (!opt.quiet)
      std::fprintf(stderr, "clktune: [%zu/%zu] %s  yield %.2f%% -> %.2f%%%s\n",
                   index + 1, total, r.name.c_str(),
                   100.0 * r.yield.original.yield,
                   100.0 * r.yield.tuned.yield, cached ? "  (cached)" : "");
  };
  const clktune::scenario::CampaignSummary summary = runner.run(run_options);
  emit(opt, summary.to_json(opt.timings));
  if (!opt.quiet)
    std::fprintf(stderr,
                 "clktune: %llu scenarios (%llu from cache), %llu missed"
                 " target  (%.1f s)\n",
                 static_cast<unsigned long long>(summary.scenarios_run),
                 static_cast<unsigned long long>(summary.scenarios_cached),
                 static_cast<unsigned long long>(summary.targets_missed),
                 summary.total_seconds);
  return summary.targets_missed == 0 ? 0 : 3;
}

/// Rebuilds a TableRow from a serialised scenario-result object.
clktune::core::TableRow row_from_json(const Json& r) {
  clktune::core::TableRow row;
  row.circuit = r.at("name").as_string();
  row.setting = r.at("setting").as_string();
  row.clock_ps = r.at("clock_period_ps").as_double();
  const Json& design = r.at("design");
  row.ns = static_cast<int>(design.at("num_flipflops").as_int());
  row.ng = static_cast<int>(design.at("num_gates").as_int());
  const Json& plan = r.at("insertion").at("plan");
  row.nb = static_cast<int>(plan.at("physical_buffers").as_int());
  row.ab = plan.at("average_range").as_double();
  const Json& yield = r.at("yield");
  row.yield = 100.0 * yield.at("tuned").at("yield").as_double();
  row.yield_original = 100.0 * yield.at("original").at("yield").as_double();
  if (const Json* seconds = r.find("seconds"))
    row.runtime_s = seconds->as_double();
  return row;
}

int cmd_report_diff(const Options& opt) {
  const Json a = clktune::util::read_json_file(opt.inputs[0]);
  const Json b = clktune::util::read_json_file(opt.inputs[1]);
  const clktune::scenario::SummaryDiff diff =
      clktune::scenario::diff_summaries(a, b, opt.tolerance);

  std::printf("%-40s %10s %10s %9s\n", "cell", "yield_a", "yield_b", "delta");
  for (const clktune::scenario::CellDiff& cell : diff.cells)
    std::printf("%-40s %9.2f%% %9.2f%% %+8.2f%%%s\n", cell.name.c_str(),
                100.0 * cell.yield_a, 100.0 * cell.yield_b,
                100.0 * cell.delta(),
                cell.regression ? "  REGRESSION" : "");
  for (const std::string& name : diff.only_in_a)
    std::printf("%-40s only in %s\n", name.c_str(), opt.inputs[0].c_str());
  for (const std::string& name : diff.only_in_b)
    std::printf("%-40s only in %s\n", name.c_str(), opt.inputs[1].c_str());
  std::printf("%zu cells compared, %llu regression(s) beyond %.3f\n",
              diff.cells.size(),
              static_cast<unsigned long long>(diff.regressions),
              opt.tolerance);
  if (diff.structural_mismatch()) {
    std::fprintf(stderr, "clktune: cell sets differ — not the same sweep\n");
    return 2;
  }
  return diff.regressions == 0 ? 0 : 3;
}

int cmd_report(const Options& opt) {
  if (opt.diff) {
    if (!expect_inputs(opt, 2)) return 1;
    return cmd_report_diff(opt);
  }
  if (!expect_inputs(opt, 1)) return 1;
  const Json doc = clktune::util::read_json_file(opt.inputs[0]);
  std::vector<clktune::core::TableRow> rows;
  if (doc.contains("results")) {
    // Campaign summary.
    for (const Json& r : doc.at("results").as_array())
      rows.push_back(row_from_json(r));
    std::printf("campaign %s: %llu scenarios, %llu missed target\n",
                doc.at("name").as_string().c_str(),
                static_cast<unsigned long long>(
                    doc.at("scenarios_run").as_uint()),
                static_cast<unsigned long long>(
                    doc.at("targets_missed").as_uint()));
  } else {
    rows.push_back(row_from_json(doc));
  }
  std::ostringstream table;
  clktune::core::print_table(table, rows);
  std::fputs(table.str().c_str(), stdout);
  return 0;
}

int cmd_serve(const Options& opt) {
  clktune::serve::ServeOptions serve_options;
  serve_options.port =
      opt.port < 0 ? kDefaultPort : static_cast<std::uint16_t>(opt.port);
  serve_options.threads = opt.threads;
  serve_options.cache_dir = opt.cache_dir;
  serve_options.quiet = opt.quiet;
  clktune::serve::ScenarioServer server(std::move(serve_options));
  server.start();
  // Machine-readable so scripts can scrape the (possibly ephemeral) port.
  std::printf("clktune: serving on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);
  server.serve_forever();
  if (!opt.quiet) std::fprintf(stderr, "clktune: server stopped\n");
  return 0;
}

int cmd_submit(const Options& opt) {
  const Json doc = clktune::util::read_json_file(opt.inputs[0]);
  const std::uint16_t port =
      opt.port < 0 ? kDefaultPort : static_cast<std::uint16_t>(opt.port);
  const clktune::serve::SubmitOutcome outcome =
      clktune::serve::submit_document(
          opt.host, port, doc, [&](const Json& event) {
            if (opt.quiet) return;
            if (event.at("event").as_string() != "result") return;
            const Json& r = event.at("result");
            std::fprintf(stderr, "clktune: [%llu] %s  yield %.2f%%%s\n",
                         static_cast<unsigned long long>(
                             event.at("index").as_uint()),
                         r.at("name").as_string().c_str(),
                         100.0 *
                             r.at("yield").at("tuned").at("yield").as_double(),
                         event.at("cached").as_bool() ? "  (cached)" : "");
          });
  if (!outcome.ok()) {
    const Json* message = outcome.final_event.find("message");
    std::fprintf(stderr, "clktune: submit failed: %s\n",
                 message != nullptr ? message->as_string().c_str()
                                    : "connection closed");
    return 2;
  }
  // A scenario document prints exactly the artifact `clktune run` would; a
  // campaign document prints the artifact array in expansion order (even
  // when the sweep expands to a single cell).
  if (doc.contains("base")) {
    Json array = Json::array();
    for (const Json& artifact : outcome.results) array.push_back(artifact);
    emit(opt, array);
  } else if (!outcome.results.empty()) {
    emit(opt, outcome.results[0]);
  } else {
    std::fprintf(stderr, "clktune: server sent no result\n");
    return 2;
  }
  return outcome.targets_missed() == 0 ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  const int usage = parse_options(argc, argv, opt);
  if (usage != 0) return usage;
  try {
    if (opt.command == "run")
      return expect_inputs(opt, 1) ? cmd_run(opt) : 1;
    if (opt.command == "sweep")
      return expect_inputs(opt, 1) ? cmd_sweep(opt) : 1;
    if (opt.command == "report") return cmd_report(opt);
    if (opt.command == "serve")
      return expect_inputs(opt, 0) ? cmd_serve(opt) : 1;
    if (opt.command == "submit")
      return expect_inputs(opt, 1) ? cmd_submit(opt) : 1;
    std::fprintf(stderr, "clktune: unknown command '%s'\n",
                 opt.command.c_str());
    print_usage(stderr);
    return 1;
  } catch (const clktune::util::JsonError& e) {
    std::fprintf(stderr, "clktune: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "clktune: %s\n", e.what());
    return 2;
  }
}
