// Benchmarks the analysis subsystem: per-arc criticality (before/after
// tuning) and the clock-binning ladder, per benchmark circuit at muT.
// The plan under analysis is the top-K symmetric criticality baseline —
// cheap to build, so the run time is dominated by the engines this bench
// exists to gate: compute_criticality's single-pass binding scan and
// compute_binning's shared-sample ladder.
#include <cstdio>
#include <vector>

#include "analysis/binning.h"
#include "analysis/criticality.h"
#include "bench_common.h"
#include "core/baselines.h"

namespace {

using namespace clktune;

int run() {
  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  bench::BenchReport report("criticality");
  std::printf(
      "analysis bench: criticality + binning at muT, top-K plan (k=5)\n"
      "samples=%llu eval=%llu\n\n",
      static_cast<unsigned long long>(cfg.samples),
      static_cast<unsigned long long>(cfg.eval_samples));
  std::printf("%-13s %5s %6s | %9s %9s %7s | %9s %7s | %8s %8s\n", "circuit",
              "ns", "ng", "top(bef)", "top(aft)", "untun%", "E[sell]",
              "unsel%", "crit(s)", "bins(s)");
  std::printf("%s\n", std::string(100, '-').c_str());

  for (const netlist::SyntheticSpec& spec : netlist::paper_circuit_specs()) {
    if (!cfg.wants(spec.name)) continue;
    const bench::PreparedCircuit pc = bench::prepare(spec, cfg);
    const double t = pc.setting_period(0);
    const mc::Sampler insert_sampler(pc.graph, 20160314);

    const feas::TuningPlan plan = core::top_k_criticality_plan(
        pc.graph, insert_sampler, t, cfg.samples, /*k=*/5, /*steps=*/16,
        /*step_ps=*/0.01 * t, cfg.threads);
    report.count_samples(cfg.samples);

    util::Stopwatch crit_sw;
    analysis::CriticalityOptions options;
    const analysis::CriticalityReport crit = analysis::compute_criticality(
        pc.graph, plan, t, bench::kEvalSeed, cfg.eval_samples, options,
        cfg.threads);
    const double crit_s = crit_sw.seconds();
    // One sampling pass covers the binding scan and the incidence
    // statistic; the feasibility re-solve per chip is the second problem.
    report.count_samples(3 * cfg.eval_samples);

    const std::vector<double> ladder = {pc.setting_period(0),
                                        pc.setting_period(1),
                                        pc.setting_period(2)};
    util::Stopwatch bins_sw;
    const analysis::BinningReport bins = analysis::compute_binning(
        pc.graph, plan, ladder, bench::kEvalSeed, cfg.eval_samples,
        cfg.threads);
    const double bins_s = bins_sw.seconds();
    // One sampling pass, 2 * rungs feasibility evaluations per chip.
    report.count_samples(cfg.eval_samples * (1 + 2 * ladder.size()));

    const double top_before = crit.arcs.empty() ? 0.0 : crit.arcs[0].before;
    const double top_after = crit.arcs.empty() ? 0.0 : crit.arcs[0].after;
    std::printf(
        "%-13s %5d %6d | %9.4f %9.4f %7.2f | %9.1f %7.2f | %8.2f %8.2f\n",
        spec.name.c_str(), spec.num_flipflops, spec.num_gates, top_before,
        top_after,
        100.0 * static_cast<double>(crit.untunable) / crit.samples,
        bins.expected_sell_period_ps, 100.0 * bins.unsellable_fraction,
        crit_s, bins_s);
    std::fflush(stdout);
  }

  return report.write();
}

}  // namespace

int main() { return run(); }
