// Demonstrates the scenario service end to end, in one process: start a
// `clktune serve`-equivalent daemon on an ephemeral port, submit the
// quickstart scenario twice over TCP, and show that the second submission
// is served from the content-addressed cache with byte-identical bytes.
//
// Equivalent shell session against the real daemon:
//
//   clktune serve --port 20160 --cache-dir artifacts/cache &
//   clktune submit examples/scenarios/quickstart.json --port 20160
//   clktune submit examples/scenarios/quickstart.json --port 20160  # cached
#include <cstdio>
#include <exception>
#include <string>
#include <thread>

#include "serve/client.h"
#include "serve/server.h"
#include "util/env.h"
#include "util/json.h"
#include "util/timer.h"

int main() {
  using clktune::util::Json;
  namespace serve = clktune::serve;

  serve::ServeOptions options;
  options.port = 0;  // ephemeral
  options.threads = static_cast<int>(clktune::util::env_long(
      "CLKTUNE_THREADS", 0));
  serve::ScenarioServer server(std::move(options));
  server.start();
  std::thread accept_loop([&server] { server.serve_forever(); });
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  // ctest/IDE working directories vary; look upward for the repo layout.
  Json doc;
  {
    std::string prefix;
    for (int up = 0; up < 4; ++up) {
      try {
        doc = clktune::util::read_json_file(
            prefix + "examples/scenarios/quickstart.json");
        break;
      } catch (const std::exception&) {
        prefix += "../";
      }
    }
  }
  if (doc.is_null()) {
    std::fprintf(stderr, "cannot find examples/scenarios/quickstart.json\n");
    return 1;
  }
  // Shrink the budgets so the demo stays snappy (overridable via env).
  const long samples = clktune::util::env_long("CLKTUNE_SAMPLES", 1000);
  doc.find("insertion")->set("num_samples", samples);
  doc.find("evaluation")->set("samples", samples);
  doc.find("clock")->set("period_samples", samples);

  for (const char* label : {"cold", "warm"}) {
    const clktune::util::Stopwatch timer;
    const serve::SubmitOutcome outcome =
        serve::submit_document("127.0.0.1", server.port(), doc);
    if (!outcome.ok() || outcome.results.size() != 1) {
      std::fprintf(stderr, "submit failed\n");
      return 1;
    }
    const Json& result = outcome.results[0];
    std::printf(
        "%s submit: %s  T=%.1f ps  tuned yield %.2f%%  cached=%llu"
        "  (%.2f s)\n",
        label, result.at("name").as_string().c_str(),
        result.at("clock_period_ps").as_double(),
        100.0 * result.at("yield").at("tuned").at("yield").as_double(),
        static_cast<unsigned long long>(outcome.cached), timer.seconds());
  }

  serve::submit_request("127.0.0.1", server.port(), "shutdown", Json());
  accept_loop.join();
  return 0;
}
