// Thin RAII wrappers over POSIX TCP sockets, just enough for the
// newline-delimited-JSON service protocol: a loopback listener, blocking
// accept/connect, full-buffer writes and a buffered line reader.  All
// failures surface as std::runtime_error with errno text; no global state,
// no third-party dependency.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace clktune::util {

/// Move-only owner of a socket file descriptor.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() { close(); }

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Idempotent; also safe to call from another thread to unblock a
  /// blocking accept()/read() on this socket.
  void close();

 private:
  int fd_ = -1;
};

/// Listens on 127.0.0.1:`port` (0 = ephemeral, query via tcp_local_port).
TcpSocket tcp_listen(std::uint16_t port, int backlog = 16);

/// Port a bound socket actually listens on.
std::uint16_t tcp_local_port(const TcpSocket& socket);

/// Blocks for the next connection; returns an invalid socket when the
/// listener has been closed (the orderly-shutdown path).
TcpSocket tcp_accept(const TcpSocket& listener);

/// Connects to `host`:`port` (name resolution included).
TcpSocket tcp_connect(const std::string& host, std::uint16_t port);

/// Writes all of `data`, looping over partial sends.
void tcp_write_all(const TcpSocket& socket, std::string_view data);

/// Buffered reader of '\n'-terminated lines from one socket.
class LineReader {
 public:
  explicit LineReader(const TcpSocket& socket) : socket_(&socket) {}

  /// Next line without the terminator; false on clean EOF (a trailing
  /// unterminated fragment is returned as a final line first).
  bool read_line(std::string& line);

 private:
  const TcpSocket* socket_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace clktune::util
