// Cell-by-cell comparison of two campaign summaries (or single-scenario
// result artifacts): same sweep run against different code or config, did
// any cell's tuned yield regress?  Backs `clktune report --diff`, whose
// nonzero exit turns a yield regression into a CI failure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace clktune::scenario {

/// One cell present in both summaries, matched by scenario name.
struct CellDiff {
  std::string name;
  double yield_a = 0.0;  ///< tuned yield in the baseline artifact
  double yield_b = 0.0;  ///< tuned yield in the candidate artifact
  bool regression = false;  ///< yield_b < yield_a - tolerance

  double delta() const { return yield_b - yield_a; }
};

struct SummaryDiff {
  std::vector<CellDiff> cells;            ///< in baseline order
  std::vector<std::string> only_in_a;     ///< cells the candidate lost
  std::vector<std::string> only_in_b;     ///< cells the candidate grew
  std::uint64_t regressions = 0;

  /// Cell sets differ — the two artifacts are not the same sweep.
  bool structural_mismatch() const {
    return !only_in_a.empty() || !only_in_b.empty();
  }
};

/// Diffs two artifacts parsed from `clktune run` / `clktune sweep` output.
/// A cell regresses when its tuned yield drops by more than `tolerance`
/// (probability, not percent).  Throws util::JsonError on malformed input
/// or duplicate cell names.
SummaryDiff diff_summaries(const util::Json& a, const util::Json& b,
                           double tolerance);

}  // namespace clktune::scenario
