// Thin RAII wrappers over POSIX TCP sockets, just enough for the
// newline-delimited-JSON service protocol: a loopback listener, blocking
// accept/connect (optionally bounded by a connect timeout), full-buffer
// writes and a buffered line reader with an optional receive deadline.  All
// failures surface as std::runtime_error with errno text — a timed-out
// connect or read says so explicitly, which is what lets callers tell an
// unreachable daemon from a closed one; no global state, no third-party
// dependency.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace clktune::util {

/// Move-only owner of a socket file descriptor.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() { close(); }

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Idempotent; also safe to call from another thread to unblock a
  /// blocking accept()/read() on this socket.
  void close();

 private:
  int fd_ = -1;
};

/// Listens on 127.0.0.1:`port` (0 = ephemeral, query via tcp_local_port).
TcpSocket tcp_listen(std::uint16_t port, int backlog = 16);

/// Port a bound socket actually listens on.
std::uint16_t tcp_local_port(const TcpSocket& socket);

/// Blocks for the next connection; returns an invalid socket when the
/// listener has been closed (the orderly-shutdown path).
TcpSocket tcp_accept(const TcpSocket& listener);

/// Connects to `host`:`port` (name resolution included).
/// `connect_timeout_ms` > 0 bounds the connect attempt; 0 blocks
/// indefinitely.  A timeout throws std::runtime_error whose message
/// contains "timed out".
TcpSocket tcp_connect(const std::string& host, std::uint16_t port,
                      int connect_timeout_ms = 0);

/// Bounds every subsequent recv() on `socket` (SO_RCVTIMEO); 0 removes the
/// deadline.  A read that hits the deadline surfaces from LineReader as a
/// std::runtime_error containing "timed out".
void tcp_set_recv_timeout(const TcpSocket& socket, int timeout_ms);

/// Writes all of `data`, looping over partial sends.
void tcp_write_all(const TcpSocket& socket, std::string_view data);

/// Discards whatever is already buffered in the socket's receive queue
/// without blocking.  Closing a socket with unread data makes TCP reset
/// the connection and discard in-flight response bytes — a server that
/// answers-then-closes without reading the request (the backpressure
/// path) must drain first or the client never sees the answer.
void tcp_drain_pending(const TcpSocket& socket);

/// Buffered reader of '\n'-terminated lines from one socket.
class LineReader {
 public:
  explicit LineReader(const TcpSocket& socket) : socket_(&socket) {}

  /// Next line without the terminator; false on clean EOF (a trailing
  /// unterminated fragment is returned as a final line first).  When the
  /// socket carries a recv deadline (tcp_set_recv_timeout) and it expires,
  /// throws std::runtime_error("socket: recv() timed out ...") instead of
  /// masquerading as EOF — a stalled daemon must look different from a
  /// closed connection.
  bool read_line(std::string& line);

 private:
  const TcpSocket* socket_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace clktune::util
