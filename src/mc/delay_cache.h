// Cross-evaluation sample-delay cache.
//
// Realised arc delays are a pure function of (seed, sample, arc) — they do
// not depend on the clock period, the step grid or the tuning plan under
// evaluation.  A measurement that evaluates several plans over the same
// sampler (original vs tuned vs baseline yield, or one plan at several
// clock settings) therefore re-derives identical delays once per
// evaluation.  This cache stores them once — SoA double arrays, one slice
// per sample — on the shared SampleSliceCache protocol (byte budget,
// streaming fallback, per-slot fill tracking).
#pragma once

#include <cstdint>
#include <vector>

#include "mc/sample_cache.h"

namespace clktune::mc {

class Sampler;
struct ArcSample;

/// Borrowed view of one sample's realised delays.
struct ArcDelaysView {
  const double* dmax = nullptr;
  const double* dmin = nullptr;
  std::size_t num_arcs = 0;
};

/// Kernel traits of the delay cache (see SampleSliceCache for the fill/get
/// protocol).  Out-of-line definitions keep Sampler incomplete here.
struct DelayCacheTraits {
  using Elem = double;
  using View = ArcDelaysView;
  using Scratch = ArcSample;

  const Sampler* sampler = nullptr;

  std::size_t num_arcs() const;
  void compute(std::uint64_t k, double* dmax, double* dmin) const;
  ArcDelaysView compute_scratch(std::uint64_t k, ArcSample& s) const;
  ArcDelaysView view(const double* dmax, const double* dmin,
                     std::size_t n) const {
    return {dmax, dmin, n};
  }
};

class SampleDelayCache {
 public:
  /// max_bytes == 0 disables caching outright (always stream).
  SampleDelayCache(const Sampler& sampler, std::uint64_t samples,
                   std::uint64_t max_bytes);

  bool caching() const { return impl_.caching(); }
  std::uint64_t samples() const { return impl_.samples(); }
  std::uint64_t bytes() const { return impl_.bytes(); }
  static std::uint64_t required_bytes(std::uint64_t samples,
                                      std::size_t num_arcs) {
    return SampleSliceCache<DelayCacheTraits>::required_bytes(samples,
                                                              num_arcs);
  }

  /// Fill accessor: compute (and store, when caching) sample k.
  ArcDelaysView fill(std::uint64_t k, ArcSample& scratch) {
    return impl_.fill(k, scratch);
  }
  /// Read accessor: cached delays, or recompute into scratch.  Asserts
  /// slot k was filled — an unfilled slot holds zero delays, which would
  /// read as a chip with no path delay at all (a bogus ~100 % pass rate).
  ArcDelaysView get(std::uint64_t k, ArcSample& scratch) const {
    return impl_.get(k, scratch);
  }

 private:
  SampleSliceCache<DelayCacheTraits> impl_;
};

}  // namespace clktune::mc
