#include "scenario/summary_diff.h"

#include <unordered_map>
#include <utility>

namespace clktune::scenario {

using util::Json;
using util::JsonError;

namespace {

struct Cell {
  std::string name;
  double tuned_yield = 0.0;
};

/// Extracts (name, tuned yield) per cell from a campaign summary (its
/// "results" array) or a bare scenario-result artifact.
std::vector<Cell> extract_cells(const Json& artifact) {
  std::vector<Cell> cells;
  const auto read_one = [&](const Json& r) {
    Cell cell;
    cell.name = r.at("name").as_string();
    cell.tuned_yield = r.at("yield").at("tuned").at("yield").as_double();
    cells.push_back(std::move(cell));
  };
  if (const Json* results = artifact.find("results")) {
    for (const Json& r : results->as_array()) read_one(r);
  } else {
    read_one(artifact);
  }
  return cells;
}

}  // namespace

SummaryDiff diff_summaries(const Json& a, const Json& b, double tolerance) {
  if (tolerance < 0.0)
    throw JsonError("diff: tolerance must be >= 0");
  const std::vector<Cell> cells_a = extract_cells(a);
  const std::vector<Cell> cells_b = extract_cells(b);

  std::unordered_map<std::string, double> by_name_b;
  for (const Cell& cell : cells_b)
    if (!by_name_b.emplace(cell.name, cell.tuned_yield).second)
      throw JsonError("diff: duplicate cell \"" + cell.name + "\"");

  SummaryDiff diff;
  std::unordered_map<std::string, bool> seen_in_a;
  for (const Cell& cell : cells_a) {
    if (!seen_in_a.emplace(cell.name, true).second)
      throw JsonError("diff: duplicate cell \"" + cell.name + "\"");
    const auto match = by_name_b.find(cell.name);
    if (match == by_name_b.end()) {
      diff.only_in_a.push_back(cell.name);
      continue;
    }
    CellDiff d;
    d.name = cell.name;
    d.yield_a = cell.tuned_yield;
    d.yield_b = match->second;
    d.regression = d.yield_b < d.yield_a - tolerance;
    diff.regressions += d.regression ? 1 : 0;
    diff.cells.push_back(std::move(d));
  }
  for (const Cell& cell : cells_b)
    if (seen_in_a.find(cell.name) == seen_in_a.end())
      diff.only_in_b.push_back(cell.name);
  return diff;
}

}  // namespace clktune::scenario
