#include "util/stats.h"

namespace clktune::util {

double correlation(std::span<const double> a, std::span<const double> b) {
  CLKTUNE_EXPECTS(a.size() == b.size());
  OnlineCorrelation acc;
  for (std::size_t i = 0; i < a.size(); ++i) acc.add(a[i], b[i]);
  return acc.correlation();
}

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace clktune::util
