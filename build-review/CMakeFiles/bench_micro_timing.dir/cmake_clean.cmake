file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_timing.dir/bench/micro_timing.cpp.o"
  "CMakeFiles/bench_micro_timing.dir/bench/micro_timing.cpp.o.d"
  "bench_micro_timing"
  "bench_micro_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
