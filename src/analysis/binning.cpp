#include "analysis/binning.h"

#include <utility>

#include "core/report_json.h"
#include "mc/delay_cache.h"
#include "mc/sampler.h"
#include "obs/metrics.h"
#include "util/assert.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace clktune::analysis {

using util::Json;
using util::JsonError;

namespace {

/// The pair that proves the ladder shares sample constants: sampling passes
/// grow by `samples` per report, rung evaluations by samples * rungs * 2
/// (original + tuned).  A per-rung resampling bug would show up as passes
/// scaling with the rung count.
struct BinningMetrics {
  obs::Counter& sampling_passes;
  obs::Counter& rung_evals;

  static BinningMetrics& get() {
    static BinningMetrics m{
        obs::Registry::global().counter(
            "clktune_binning_sampling_passes_total",
            "Monte-Carlo chips sampled by binning reports (once per chip, "
            "shared across all rungs)"),
        obs::Registry::global().counter(
            "clktune_binning_rung_evals_total",
            "Per-rung feasibility evaluations over shared sample delays"),
    };
    return m;
  }
};

feas::TuningPlan empty_plan() {
  feas::TuningPlan plan;
  plan.step_ps = 1.0;
  plan.reset_groups();
  return plan;
}

feas::YieldResult make_result(std::uint64_t passing, std::uint64_t samples) {
  feas::YieldResult r;
  r.passing = passing;
  r.samples = samples;
  r.yield = samples == 0 ? 0.0
                         : static_cast<double>(passing) /
                               static_cast<double>(samples);
  r.ci95 = util::yield_ci95(r.yield, samples);
  return r;
}

Json bin_json(const BinYield& bin) {
  Json j = Json::object();
  j.set("period_ps", bin.period_ps);
  j.set("original", core::yield_result_json(bin.original));
  j.set("tuned", core::yield_result_json(bin.tuned));
  j.set("sell", bin.sell);
  j.set("sell_fraction", bin.sell_fraction);
  return j;
}

}  // namespace

Json BinningReport::to_json() const {
  Json j = Json::object();
  j.set("samples", samples);
  j.set("eval_seed", eval_seed);
  Json bin_list = Json::array();
  for (const BinYield& bin : bins) bin_list.push_back(bin_json(bin));
  j.set("bins", std::move(bin_list));
  j.set("unsellable", unsellable);
  j.set("unsellable_fraction", unsellable_fraction);
  j.set("expected_sell_period_ps", expected_sell_period_ps);
  return j;
}

BinningReport BinningReport::from_json(const Json& j) {
  BinningReport report;
  report.samples = j.at("samples").as_uint();
  report.eval_seed = j.at("eval_seed").as_uint();
  for (const Json& b : j.at("bins").as_array()) {
    BinYield bin;
    bin.period_ps = b.at("period_ps").as_double();
    bin.original = core::yield_result_from_json(b.at("original"));
    bin.tuned = core::yield_result_from_json(b.at("tuned"));
    bin.sell = b.at("sell").as_uint();
    bin.sell_fraction = b.at("sell_fraction").as_double();
    report.bins.push_back(std::move(bin));
  }
  report.unsellable = j.at("unsellable").as_uint();
  report.unsellable_fraction = j.at("unsellable_fraction").as_double();
  report.expected_sell_period_ps =
      j.at("expected_sell_period_ps").as_double();
  return report;
}

BinningReport compute_binning(const ssta::SeqGraph& graph,
                              const feas::TuningPlan& plan,
                              const std::vector<double>& periods_ps,
                              std::uint64_t eval_seed, std::uint64_t samples,
                              int threads) {
  if (periods_ps.empty())
    throw JsonError("binning: the period ladder must not be empty");
  for (std::size_t r = 0; r < periods_ps.size(); ++r) {
    if (periods_ps[r] <= 0.0)
      throw JsonError("binning: ladder periods must be positive");
    if (r > 0 && periods_ps[r] <= periods_ps[r - 1])
      throw JsonError("binning: ladder periods must be strictly ascending");
  }
  const std::size_t rungs = periods_ps.size();

  // One evaluator pair per rung; the constraint-graph topology is built
  // once here, only per-sample weights change inside the loop.
  std::vector<feas::YieldEvaluator> tuned, original;
  tuned.reserve(rungs);
  original.reserve(rungs);
  for (const double period : periods_ps) {
    tuned.emplace_back(graph, plan, period);
    original.emplace_back(graph, empty_plan(), period);
  }

  const mc::Sampler sampler(graph, eval_seed);
  // Stream-mode delay cache: the fill protocol computes each chip's delays
  // exactly once per pass, and there is exactly one pass — every rung reads
  // the same view.
  mc::SampleDelayCache delays(sampler, samples, 0);

  struct Partial {
    std::vector<std::uint64_t> original_passing;
    std::vector<std::uint64_t> tuned_passing;
    std::vector<std::uint64_t> sell;
    std::uint64_t unsellable = 0;

    explicit Partial(std::size_t rungs)
        : original_passing(rungs, 0), tuned_passing(rungs, 0),
          sell(rungs, 0) {}
  };

  const std::size_t workers = util::resolve_thread_count(
      threads <= 0 ? 0 : static_cast<std::size_t>(threads));
  std::vector<Partial> partial(workers, Partial(rungs));

  util::parallel_chunks(
      static_cast<std::size_t>(samples), workers,
      [&](std::size_t w, std::size_t begin, std::size_t end) {
        Partial& p = partial[w];
        mc::ArcSample scratch;
        for (std::size_t k = begin; k < end; ++k) {
          const mc::ArcDelaysView view = delays.fill(k, scratch);
          bool sold = false;
          for (std::size_t r = 0; r < rungs; ++r) {
            p.original_passing[r] += original[r].sample_feasible(view) ? 1 : 0;
            const bool ok = tuned[r].sample_feasible(view);
            p.tuned_passing[r] += ok ? 1 : 0;
            if (ok && !sold) {
              // Ascending ladder: the first feasible rung is the fastest
              // clock this chip sells at.
              ++p.sell[r];
              sold = true;
            }
          }
          if (!sold) ++p.unsellable;
        }
        BinningMetrics& metrics = BinningMetrics::get();
        metrics.sampling_passes.inc(end - begin);
        metrics.rung_evals.inc((end - begin) * rungs * 2);
      });

  Partial total(rungs);
  for (const Partial& p : partial) {
    for (std::size_t r = 0; r < rungs; ++r) {
      total.original_passing[r] += p.original_passing[r];
      total.tuned_passing[r] += p.tuned_passing[r];
      total.sell[r] += p.sell[r];
    }
    total.unsellable += p.unsellable;
  }

  BinningReport report;
  report.samples = samples;
  report.eval_seed = eval_seed;
  report.unsellable = total.unsellable;
  const double denom = samples == 0 ? 1.0 : static_cast<double>(samples);
  report.unsellable_fraction =
      static_cast<double>(total.unsellable) / denom;

  std::uint64_t sellable = 0;
  double sell_period_sum = 0.0;
  for (std::size_t r = 0; r < rungs; ++r) {
    BinYield bin;
    bin.period_ps = periods_ps[r];
    bin.original = make_result(total.original_passing[r], samples);
    bin.tuned = make_result(total.tuned_passing[r], samples);
    bin.sell = total.sell[r];
    bin.sell_fraction = static_cast<double>(bin.sell) / denom;
    sellable += bin.sell;
    sell_period_sum += static_cast<double>(bin.sell) * bin.period_ps;
    report.bins.push_back(std::move(bin));
  }
  report.expected_sell_period_ps =
      sellable == 0 ? 0.0 : sell_period_sum / static_cast<double>(sellable);
  return report;
}

}  // namespace clktune::analysis
