// Shared protocol of the per-sample slice caches (quantized constants,
// realised delays): two SoA arrays of Elem per sample under a byte budget,
// with a streaming fallback for runs that would not fit and per-slot fill
// tracking so a read of a never-filled slot fails loudly instead of
// silently returning zeros.
//
// Traits supply the concrete kernel:
//   using Elem / View / Scratch;
//   std::size_t num_arcs() const;
//   void compute(std::uint64_t k, Elem* a, Elem* b) const;   // into slices
//   View compute_scratch(std::uint64_t k, Scratch& s) const; // streaming
//   View view(const Elem* a, const Elem* b, std::size_t n) const;
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace clktune::mc {

template <class Traits>
class SampleSliceCache {
 public:
  using View = typename Traits::View;
  using Scratch = typename Traits::Scratch;
  using Elem = typename Traits::Elem;

  /// max_bytes == 0 disables caching outright (always stream).
  SampleSliceCache(Traits traits, std::uint64_t samples,
                   std::uint64_t max_bytes)
      : traits_(std::move(traits)),
        samples_(samples),
        num_arcs_(traits_.num_arcs()),
        caching_(max_bytes > 0 &&
                 required_bytes(samples, num_arcs_) <= max_bytes) {
    if (caching_) {
      a_.resize(samples_ * num_arcs_);
      b_.resize(samples_ * num_arcs_);
      filled_.assign(samples_, 0);
    }
  }

  bool caching() const { return caching_; }
  std::uint64_t samples() const { return samples_; }
  /// Resident footprint of the slice arrays (0 in streaming mode).
  std::uint64_t bytes() const {
    return caching_ ? required_bytes(samples_, num_arcs_) : 0;
  }
  /// Footprint a run of this shape would need to cache fully.
  static std::uint64_t required_bytes(std::uint64_t samples,
                                      std::size_t num_arcs) {
    return 2ull * sizeof(Elem) * samples * num_arcs;
  }

  /// Fill accessor: compute (and store, when caching) sample k.  May be
  /// called concurrently for distinct k — each writes a disjoint slice.
  View fill(std::uint64_t k, Scratch& scratch) {
    if (!caching_) return traits_.compute_scratch(k, scratch);
    CLKTUNE_EXPECTS(k < samples_);
    Elem* a = a_.data() + k * num_arcs_;
    Elem* b = b_.data() + k * num_arcs_;
    traits_.compute(k, a, b);
    filled_[static_cast<std::size_t>(k)] = 1;
    return traits_.view(a, b, num_arcs_);
  }

  /// Read accessor: cached slice, or recompute into scratch.  In caching
  /// mode asserts slot k was filled (the fill pass's thread join orders
  /// the flag write before this read) — an unfilled slot holds zeros and
  /// would silently corrupt everything downstream.
  View get(std::uint64_t k, Scratch& scratch) const {
    if (!caching_) return traits_.compute_scratch(k, scratch);
    CLKTUNE_EXPECTS(k < samples_);
    CLKTUNE_EXPECTS(filled_[static_cast<std::size_t>(k)] != 0);
    return traits_.view(a_.data() + k * num_arcs_, b_.data() + k * num_arcs_,
                        num_arcs_);
  }

 private:
  Traits traits_;
  std::uint64_t samples_;
  std::size_t num_arcs_;
  bool caching_;
  std::vector<Elem> a_, b_;     ///< samples_ x num_arcs_ each, when caching
  std::vector<char> filled_;    ///< per-sample fill flags, when caching
};

}  // namespace clktune::mc
