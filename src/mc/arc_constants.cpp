#include "mc/arc_constants.h"

#include "mc/sampler.h"
#include "util/assert.h"

namespace clktune::mc {

void quantize_arc_constants(const ssta::SeqGraph& graph,
                            const ArcSample& sample, double clock_period_ps,
                            double step_ps, ArcConstants& out) {
  const std::size_t n = graph.arcs.size();
  CLKTUNE_EXPECTS(sample.dmax.size() == n && sample.dmin.size() == n);
  out.resize(n);
  for (std::size_t e = 0; e < n; ++e) {
    double setup_c = 0.0, hold_c = 0.0;
    arc_slack(graph, e, sample.dmax[e], sample.dmin[e], clock_period_ps,
              setup_c, hold_c);
    out.setup_steps[e] = floor_steps(setup_c, step_ps);
    out.hold_steps[e] = floor_steps(hold_c, step_ps);
  }
}

std::size_t ConstantCacheTraits::num_arcs() const {
  return sampler->graph().arcs.size();
}

void ConstantCacheTraits::compute(std::uint64_t k, std::int32_t* setup,
                                  std::int32_t* hold) const {
  sampler->evaluate_constants(k, clock_period_ps, step_ps, setup, hold);
}

ArcConstantsView ConstantCacheTraits::compute_scratch(std::uint64_t k,
                                                      ArcConstants& s) const {
  s.resize(num_arcs());
  sampler->evaluate_constants(k, clock_period_ps, step_ps,
                              s.setup_steps.data(), s.hold_steps.data());
  return view_of(s);
}

SampleConstantCache::SampleConstantCache(const Sampler& sampler,
                                         double clock_period_ps,
                                         double step_ps,
                                         std::uint64_t samples,
                                         std::uint64_t max_bytes)
    : impl_(ConstantCacheTraits{&sampler, clock_period_ps, step_ps}, samples,
            max_bytes) {}

}  // namespace clktune::mc
