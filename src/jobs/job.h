// The durable async-job model: one record per submitted document.
//
// A job is a scenario or campaign submission with a persistent lifecycle
// that outlives the TCP connection that created it — the fire-and-forget
// admission path of the serve daemon.  Its state machine is explicit and
// monotone:
//
//     queued ──▶ preparing ──▶ running ──▶ done
//                                │    └──▶ error
//        └──────────┴────────────┴───────▶ cancelled
//
// `queued` means admitted and persisted; `preparing` that a scheduler
// worker has claimed it (parse + validate + expansion); `running` that
// cells are executing; the three terminal states never change again.  A
// daemon killed mid-`preparing`/`running` leaves the envelope in that
// state on disk — recovery (JobStore::load) resets it to `queued` so the
// job simply runs again, warm from the result cache.
//
// Job ids are `<content-hash-12>-<nonce-8>`: a SHA-256 prefix of the
// canonical resolved document (plus the explicit index selection) names
// *what* runs, the submission nonce distinguishes repeated submissions of
// the same document — resubmitting is always a new job, but the shared
// prefix makes duplicates visible to an operator at a glance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/json.h"

namespace clktune::jobs {

/// A job-layer failure surfaced to the protocol (unknown id, bad verb
/// usage).  Execution failures are not exceptions — they are the `error`
/// terminal state of the job itself.
class JobError : public std::runtime_error {
 public:
  explicit JobError(const std::string& what) : std::runtime_error(what) {}
};

enum class JobState {
  queued,     ///< admitted, persisted, waiting for a worker
  preparing,  ///< claimed by a worker, not yet executing cells
  running,    ///< cells executing
  done,       ///< terminal: every selected cell finished
  error,      ///< terminal: execution failed (see JobRecord::error)
  cancelled,  ///< terminal: cancelled by request
};

const char* to_string(JobState state);
/// Throws util::JsonError on an unknown name (a corrupt envelope).
JobState job_state_from_string(const std::string& name);
bool is_terminal(JobState state);

/// One job: identity, lifecycle, the resolved document it runs and the
/// per-cell progress checkpoints.  Serialises to a self-describing
/// envelope (schema-tagged, all state embedded) so a jobs directory is
/// recoverable with no side tables.
struct JobRecord {
  std::string id;
  std::uint64_t seq = 0;  ///< submission order within one store
  JobState state = JobState::queued;
  std::string kind;  ///< "scenario" | "campaign"
  std::string name;  ///< scenario/campaign name, for humans
  util::Json doc;    ///< resolved document (exec::Request::document)
  /// Explicit expansion-index selection (campaign work units); empty =
  /// the whole expansion.
  std::vector<std::size_t> indices;
  std::size_t cells_total = 0;  ///< cells the selection covers
  /// Global expansion indices already finished, sorted — the per-cell
  /// checkpoints that make a half-run job resumable and replayable.
  std::vector<std::size_t> done_indices;
  std::uint64_t cached = 0;          ///< finished cells served from cache
  std::uint64_t targets_missed = 0;  ///< finished cells below yield target
  std::string error;                 ///< diagnostic for the error state
  std::uint64_t created_ms = 0;      ///< Unix epoch milliseconds
  std::uint64_t updated_ms = 0;

  /// The global expansion indices this job covers, in streaming order:
  /// the explicit list when present, 0..cells_total otherwise.
  std::vector<std::size_t> selection() const;

  /// Self-describing persistence envelope.
  util::Json to_json() const;
  /// Throws util::JsonError on a non-envelope or corrupt document.
  static JobRecord from_json(const util::Json& j);

  /// The wire "job" frame of the serve protocol (docs/serve_protocol.md):
  /// identity + lifecycle + progress, never the document or the cells.
  util::Json status_json() const;
};

}  // namespace clktune::jobs
