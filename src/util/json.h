// Minimal self-contained JSON reader / writer (no external dependencies).
//
// Scenario and campaign specifications, as well as machine-readable result
// artifacts, are plain JSON so that experiments are declarative, diffable
// and scriptable.  The subset implemented is exactly RFC 8259 minus \u
// surrogate pairs (basic-plane escapes are supported); numbers are stored
// as double, which is lossless for the integer ranges this project emits
// (< 2^53).
//
// Object member order is preserved on parse and round-trips through dump(),
// so serialisation is deterministic: the same value always produces the
// same bytes.  That property backs the campaign pipeline's bit-identical
// reproducibility guarantee.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace clktune::util {

/// Error thrown on malformed JSON input or a type-mismatched access.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json;
using JsonArray = std::vector<Json>;
/// Members in insertion order (JSON objects are small here; linear lookup).
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  enum class Type { null, boolean, number, string, array, object };

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::boolean), bool_(b) {}
  Json(double d) : type_(Type::number), num_(d) {}
  Json(int i) : type_(Type::number), num_(i) {}
  Json(long i) : type_(Type::number), num_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : type_(Type::number), num_(static_cast<double>(u)) {}
  Json(const char* s) : type_(Type::string), str_(s) {}
  Json(std::string s) : type_(Type::string), str_(std::move(s)) {}
  Json(JsonArray a) : type_(Type::array), arr_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::object), obj_(std::move(o)) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::null; }
  bool is_bool() const { return type_ == Type::boolean; }
  bool is_number() const { return type_ == Type::number; }
  bool is_string() const { return type_ == Type::string; }
  bool is_array() const { return type_ == Type::array; }
  bool is_object() const { return type_ == Type::object; }

  bool as_bool() const {
    require(Type::boolean);
    return bool_;
  }
  double as_double() const {
    require(Type::number);
    return num_;
  }
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const {
    require(Type::string);
    return str_;
  }
  const JsonArray& as_array() const {
    require(Type::array);
    return arr_;
  }
  JsonArray& as_array() {
    require(Type::array);
    return arr_;
  }
  const JsonObject& as_object() const {
    require(Type::object);
    return obj_;
  }

  /// Object member lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  Json* find(const std::string& key) {
    return const_cast<Json*>(std::as_const(*this).find(key));
  }
  /// Object member access; throws JsonError when absent.
  const Json& at(const std::string& key) const;
  /// Presence test for object members.
  bool contains(const std::string& key) const { return find(key) != nullptr; }

  /// Sets (or replaces) an object member, preserving first-set order.
  Json& set(const std::string& key, Json value);
  /// Appends an array element.
  void push_back(Json value) {
    require(Type::array);
    arr_.push_back(std::move(value));
  }

  /// Serialise.  indent < 0: compact single line; indent >= 0: pretty with
  /// that many spaces per level.  Number formatting is locale-independent
  /// and shortest-round-trip, so output is byte-deterministic.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; trailing non-whitespace is an error.
  /// Throws JsonError with 1-based line/column on malformed input.
  static Json parse(const std::string& text);

 private:
  void require(Type t) const;
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Canonical serialisation for content addressing: compact (indent -1)
/// with object members recursively sorted by key bytes, so two documents
/// that differ only in member order hash identically.  dump() itself stays
/// order-preserving — artifacts keep their authored layout.
std::string canonical_dump(const Json& value);

/// Reads a whole file and parses it; throws JsonError (parse) or
/// std::runtime_error (I/O).
Json read_json_file(const std::string& path);

/// Writes `value.dump(indent)` plus a trailing newline; throws
/// std::runtime_error on I/O failure.
void write_json_file(const std::string& path, const Json& value,
                     int indent = 2);

}  // namespace clktune::util
