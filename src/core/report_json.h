// JSON serialisation of insertion results and yield reports, so experiment
// outputs are machine-readable artifacts instead of printf logs.  The
// scenario/campaign pipeline and the `clktune` CLI build on these.
//
// All writers are deterministic: member order is fixed and numbers are
// emitted in shortest-round-trip form.  Wall-clock fields (`seconds`,
// `total_seconds`) are only included when `include_timing` is set, so that
// two runs with identical seeds produce bit-identical artifacts by default.
#pragma once

#include "core/engine.h"
#include "core/report.h"
#include "feas/yield_eval.h"
#include "util/json.h"

namespace clktune::core {

/// One tuning buffer: window, reduced range, usage counters, group.
util::Json buffer_info_json(const BufferInfo& info);

/// Solver / sampling counters of one flow phase.
util::Json phase_diagnostics_json(const PhaseDiagnostics& diag,
                                  bool include_timing = false);

/// Full insertion result: plan geometry, per-buffer detail, per-phase
/// diagnostics and summary statistics.  Histograms and the correlation
/// matrix are summarised (counts, support), not dumped cell by cell.
util::Json insertion_result_json(const InsertionResult& result,
                                 bool include_timing = false);

/// Yield measurement (passing counts, yield, 95 % CI half-width).
util::Json yield_result_json(const feas::YieldResult& result);

/// Before/after yield report at one clock period.
util::Json yield_report_json(const feas::YieldReport& report);

/// Table-I row (used by campaign summaries).
util::Json table_row_json(const TableRow& row, bool include_timing = false);

/// Parses a plan serialised by insertion_result_json back into a TuningPlan
/// (the "buffers" array plus "step_ps"); throws util::JsonError on shape
/// errors.  This is what lets `clktune report` re-evaluate saved results.
feas::TuningPlan tuning_plan_from_json(const util::Json& result_json);

// Inverse readers for the result-cache round trip: a deterministic artifact
// parsed back and re-serialised must reproduce the original bytes, so a
// cache hit is indistinguishable from a recomputation.  Fields the artifact
// does not carry (timing, full histograms, the correlation matrix) come
// back empty; histogram summaries are reconstructed to re-emit the same
// total / min_key / max_key triple.

BufferInfo buffer_info_from_json(const util::Json& j);
PhaseDiagnostics phase_diagnostics_from_json(const util::Json& j);
InsertionResult insertion_result_from_json(const util::Json& j);
feas::YieldResult yield_result_from_json(const util::Json& j);
feas::YieldReport yield_report_from_json(const util::Json& j);

}  // namespace clktune::core
