// Standard-cell library with a first-order process-variation model.
//
// The paper maps its benchmark circuits to "a library from an industry
// partner" with transistor-length / oxide-thickness / threshold-voltage
// standard deviations of 15.7 % / 5.3 % / 4.4 % of nominal.  That library is
// not public, so this module provides an industry-like synthetic equivalent:
// each cell arc has a nominal rise-max delay and a min (early) delay, both
// scaled by a common variation factor
//
//   f(g) = 1 + a_L z_L + a_tox z_tox + a_vth z_vth + a_loc z_loc(g)
//
// where z_L, z_tox, z_vth are chip-global standard normals and z_loc is an
// independent per-gate term.  The a_* coefficients fold the parameter sigmas
// into delay space via first-order sensitivities.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.h"

namespace clktune::netlist {

/// Number of global (chip-wide) process parameters: L, tox, Vth.
inline constexpr int kNumGlobalParams = 3;

struct CellType {
  std::string name;
  int num_inputs = 1;
  double delay_ps = 10.0;      ///< nominal max (late) propagation delay
  double min_delay_ps = 6.0;   ///< nominal min (early) propagation delay
  double load_ps = 1.0;        ///< extra delay per fanout beyond the first
};

/// Delay sensitivities shared by all cells (relative units per sigma).
///
/// The parameter sigmas follow the paper (sigma(L)=15.7 %, sigma(tox)=5.3 %,
/// sigma(Vth)=4.4 % of nominal); the delay sensitivities are chosen so that
/// die-to-die (global) and within-die (local mismatch) delay variation end
/// up comparable, which is the documented regime at such nodes and the one
/// in which post-silicon *rebalancing* can rescue chips at all: a purely
/// chip-wide slowdown shifts every stage equally and no clock tuning can
/// buy it back.
struct VariationModel {
  std::array<double, kNumGlobalParams> global_sens = {0.35 * 0.157,
                                                      0.30 * 0.053,
                                                      0.50 * 0.044};
  /// Independent per-gate mismatch sigma (relative); RSS-attenuated along
  /// paths, so the per-path local spread is local_sigma / sqrt(depth).
  double local_sigma = 0.25;

  /// Spatially-correlated within-die sigma at path granularity (relative).
  /// Unlike per-gate mismatch it does NOT attenuate with path depth (all
  /// gates of a cone sit in the same region), so it dominates the per-path
  /// spread of long paths.  This is what makes a slice of failures exceed
  /// the tuning windows' reach -- the rescued-yield ceiling of Table I.
  double regional_sigma = 0.12;

  /// Standard deviation of the combined relative variation factor.
  double total_sigma() const;
};

class CellLibrary {
 public:
  /// Builds the default library (INV/BUF/NAND/NOR/AND/OR/XOR/XNOR + DFF).
  static CellLibrary standard();

  int add_cell(CellType cell);

  const CellType& cell(int id) const {
    return cells_[static_cast<std::size_t>(id)];
  }
  int num_cells() const { return static_cast<int>(cells_.size()); }

  /// Lookup by name; -1 if missing.  Matching is case-insensitive.
  int find(std::string_view name) const;

  const VariationModel& variation() const { return variation_; }
  VariationModel& variation() { return variation_; }

  /// Flip-flop timing: setup / hold nominal values (ps).
  double setup_ps() const { return setup_ps_; }
  double hold_ps() const { return hold_ps_; }
  void set_ff_timing(double setup_ps, double hold_ps) {
    CLKTUNE_EXPECTS(setup_ps >= 0.0 && hold_ps >= 0.0);
    setup_ps_ = setup_ps;
    hold_ps_ = hold_ps;
  }

  int dff_cell() const { return dff_cell_; }

 private:
  std::vector<CellType> cells_;
  VariationModel variation_;
  double setup_ps_ = 12.0;
  double hold_ps_ = 4.0;
  int dff_cell_ = -1;
};

}  // namespace clktune::netlist
