#include "netlist/bench_io.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace clktune::netlist {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

struct PendingGate {
  std::string output;
  std::string op;
  std::vector<std::string> inputs;
};

}  // namespace

Design read_bench(std::istream& in, std::string design_name,
                  CellLibrary library) {
  Design design;
  design.name = std::move(design_name);
  design.library = std::move(library);
  Netlist& nl = design.netlist;

  std::vector<std::string> input_names, output_names;
  std::vector<PendingGate> pending;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      const std::size_t open = line.find('(');
      const std::size_t close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open)
        throw std::runtime_error("bench parse error at line " +
                                 std::to_string(lineno) + ": " + line);
      const std::string kw = upper(trim(line.substr(0, open)));
      const std::string arg = trim(line.substr(open + 1, close - open - 1));
      if (kw == "INPUT")
        input_names.push_back(arg);
      else if (kw == "OUTPUT")
        output_names.push_back(arg);
      else
        throw std::runtime_error("bench parse error at line " +
                                 std::to_string(lineno) +
                                 ": unknown directive " + kw);
      continue;
    }

    PendingGate g;
    g.output = trim(line.substr(0, eq));
    const std::string rhs = trim(line.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open)
      throw std::runtime_error("bench parse error at line " +
                               std::to_string(lineno) + ": " + line);
    g.op = upper(trim(rhs.substr(0, open)));
    std::stringstream args(rhs.substr(open + 1, close - open - 1));
    std::string tok;
    while (std::getline(args, tok, ',')) {
      tok = trim(tok);
      if (!tok.empty()) g.inputs.push_back(tok);
    }
    if (g.inputs.empty())
      throw std::runtime_error("bench parse error at line " +
                               std::to_string(lineno) + ": no inputs");
    pending.push_back(std::move(g));
  }

  std::unordered_map<std::string, NodeId> ids;
  for (const std::string& n : input_names)
    ids.emplace(n, nl.add_primary_input(n));
  // Declare flip-flops first so forward references resolve.
  for (const PendingGate& g : pending)
    if (g.op == "DFF")
      ids.emplace(g.output,
                  nl.add_flipflop(design.library.dff_cell(), g.output));

  // Iteratively admit gates whose fanins are all known (bench files may be
  // in any order).
  std::vector<bool> done(pending.size(), false);
  std::size_t remaining = 0;
  for (const PendingGate& g : pending) remaining += g.op != "DFF" ? 1 : 0;
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const PendingGate& g = pending[i];
      if (done[i] || g.op == "DFF") continue;
      bool resolvable = true;
      std::vector<NodeId> fanins;
      fanins.reserve(g.inputs.size());
      for (const std::string& in_name : g.inputs) {
        const auto it = ids.find(in_name);
        if (it == ids.end()) {
          resolvable = false;
          break;
        }
        fanins.push_back(it->second);
      }
      if (!resolvable) continue;

      std::string op = g.op;
      if (op == "BUFF") op = "BUF";
      if (op == "NOT") op = "INV";
      // Find a cell of matching arity, cascading if necessary.
      NodeId out = kNoNode;
      int cell = design.library.find(
          g.inputs.size() == 3 && (op == "NAND" || op == "NOR") ? op + "3"
                                                                : op);
      if (cell >= 0 &&
          design.library.cell(cell).num_inputs >=
              static_cast<int>(fanins.size())) {
        out = nl.add_gate(cell, g.output, fanins);
      } else {
        // Cascade wide AND/OR/NAND/NOR into 2-input trees.
        std::string base = op;
        bool invert_last = false;
        if (op == "NAND") {
          base = "AND";
          invert_last = true;
        } else if (op == "NOR") {
          base = "OR";
          invert_last = true;
        }
        const int base_cell = design.library.find(base);
        if (base_cell < 0)
          throw std::runtime_error("bench: unsupported gate op " + g.op);
        NodeId acc = fanins[0];
        for (std::size_t k = 1; k < fanins.size(); ++k) {
          const bool last = k + 1 == fanins.size();
          const std::string nm =
              last && !invert_last ? g.output
                                   : g.output + "_c" + std::to_string(k);
          acc = nl.add_gate(base_cell, nm, {acc, fanins[k]});
        }
        if (invert_last)
          acc = nl.add_gate(design.library.find("INV"), g.output, {acc});
        out = acc;
      }
      ids[g.output] = out;
      done[i] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0)
    throw std::runtime_error(
        "bench: unresolved gate inputs (undriven nets or combinational "
        "cycle)");

  // Attach flip-flop D drivers.
  for (const PendingGate& g : pending) {
    if (g.op != "DFF") continue;
    const auto out_it = ids.find(g.output);
    const auto in_it = ids.find(g.inputs[0]);
    if (in_it == ids.end())
      throw std::runtime_error("bench: DFF input not found: " + g.inputs[0]);
    nl.set_ff_driver(out_it->second, in_it->second);
  }
  for (const std::string& n : output_names) {
    const auto it = ids.find(n);
    if (it == ids.end())
      throw std::runtime_error("bench: OUTPUT refers to unknown net " + n);
    nl.add_primary_output(n + "_po", it->second);
  }

  nl.finalize();
  design.clock_skew_ps.assign(nl.flipflops().size(), 0.0);
  apply_grid_placement(design);
  return design;
}

Design read_bench_file(const std::string& path, CellLibrary library) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open bench file: " + path);
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return read_bench(in, name, std::move(library));
}

void write_bench(std::ostream& out, const Design& design) {
  const Netlist& nl = design.netlist;
  out << "# " << design.name << " (written by clktune)\n";
  for (NodeId id : nl.primary_inputs())
    out << "INPUT(" << nl.node(id).name << ")\n";
  for (NodeId id : nl.primary_outputs())
    out << "OUTPUT(" << nl.node(nl.node(id).fanins[0]).name << ")\n";
  for (NodeId id : nl.flipflops()) {
    const Node& ff = nl.node(id);
    CLKTUNE_EXPECTS(!ff.fanins.empty());
    out << ff.name << " = DFF(" << nl.node(ff.fanins[0]).name << ")\n";
  }
  for (NodeId id : nl.topo_gates()) {
    const Node& g = nl.node(id);
    out << g.name << " = " << design.library.cell(g.cell).name << "(";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i > 0) out << ", ";
      out << nl.node(g.fanins[i]).name;
    }
    out << ")\n";
  }
}

void apply_grid_placement(Design& design) {
  const std::size_t n = design.netlist.flipflops().size();
  design.ff_position.resize(n);
  const int side = std::max(1, static_cast<int>(std::ceil(std::sqrt(
                                   static_cast<double>(n)))));
  for (std::size_t i = 0; i < n; ++i) {
    design.ff_position[i] =
        Point{design.ff_pitch * static_cast<double>(static_cast<int>(i) % side),
              design.ff_pitch * static_cast<double>(static_cast<int>(i) / side)};
  }
}

void apply_synthetic_skew(Design& design, double sigma_ps,
                          std::uint64_t seed) {
  const std::size_t n = design.netlist.flipflops().size();
  design.clock_skew_ps.resize(n);
  const util::CounterRng rng(seed);
  for (std::size_t i = 0; i < n; ++i)
    design.clock_skew_ps[i] = sigma_ps * rng.normal(i, 0xC10C);
}

}  // namespace clktune::netlist
