#include "serve/server.h"

#include <cstdio>
#include <exception>
#include <mutex>

#include "exec/local_executor.h"
#include "exec/observer.h"
#include "exec/request.h"
#include "scenario/campaign.h"
#include "scenario/scenario.h"
#include "util/json.h"

namespace clktune::serve {

using util::Json;

namespace {

void send_event(const util::TcpSocket& connection, const Json& event) {
  util::tcp_write_all(connection, event.dump(-1) + "\n");
}

void send_error(const util::TcpSocket& connection, const std::string& what) {
  Json event = Json::object();
  event.set("event", "error");
  event.set("message", what);
  send_event(connection, event);
}

Json result_event(std::size_t index, bool cached, const Json& artifact) {
  Json event = Json::object();
  event.set("event", "result");
  event.set("index", static_cast<std::uint64_t>(index));
  event.set("cached", cached);
  event.set("result", artifact);
  return event;
}

Json done_event(std::uint64_t scenarios_run, std::uint64_t targets_missed,
                std::uint64_t cached) {
  Json event = Json::object();
  event.set("event", "done");
  event.set("ok", true);
  event.set("scenarios_run", scenarios_run);
  event.set("targets_missed", targets_missed);
  event.set("cached", cached);
  return event;
}

/// The wire adapter of the exec layer: every finished cell becomes one
/// streamed "result" line.  Cells finish on worker threads, hence the
/// lock; a dead peer stops the stream but never the computation — results
/// still land in the cache.
class StreamObserver : public exec::Observer {
 public:
  explicit StreamObserver(const util::TcpSocket& connection)
      : connection_(connection) {}

  void on_cell(const exec::CellEvent& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (peer_gone_) return;
    try {
      send_event(connection_,
                 result_event(event.index, event.cached,
                              event.result.to_json()));
    } catch (const std::exception&) {
      peer_gone_ = true;
    }
  }

  bool peer_gone() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return peer_gone_;
  }

 private:
  const util::TcpSocket& connection_;
  mutable std::mutex mutex_;
  bool peer_gone_ = false;
};

}  // namespace

ScenarioServer::ScenarioServer(ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_dir, options_.cache_capacity) {}

void ScenarioServer::start() {
  listener_ = util::tcp_listen(options_.port);
  port_ = util::tcp_local_port(listener_);
}

void ScenarioServer::serve_forever() {
  while (!stop_.load()) {
    util::TcpSocket connection = util::tcp_accept(listener_);
    if (!connection.valid()) break;  // listener closed by stop()
    ++connections_;
    handle_connection(std::move(connection));
  }
}

void ScenarioServer::stop() {
  stop_.store(true);
  listener_.close();
}

void ScenarioServer::handle_connection(util::TcpSocket connection) {
  util::LineReader reader(connection);
  std::string line;
  while (!stop_.load() && reader.read_line(line)) {
    if (line.empty()) continue;
    try {
      handle_request(connection, line);
    } catch (const std::exception& e) {
      // Parse/validation/runtime failure of one request; the connection
      // stays usable because requests are line-framed.
      try {
        send_error(connection, e.what());
      } catch (const std::exception&) {
        return;  // peer gone mid-error: drop the connection
      }
    }
  }
}

void ScenarioServer::handle_request(const util::TcpSocket& connection,
                                    const std::string& line) {
  const Json request = Json::parse(line);
  const std::string cmd = request.at("cmd").as_string();
  ++requests_;
  if (!options_.quiet)
    std::fprintf(stderr, "clktune-serve: %s\n", cmd.c_str());

  if (cmd == "status") {
    Json event = Json::object();
    event.set("event", "status");
    event.set("requests", requests_);
    event.set("connections", connections_);
    event.set("scenarios_run", scenarios_run_);
    event.set("cache", cache_.stats().to_json());
    send_event(connection, event);
    return;
  }

  if (cmd == "shutdown") {
    stop_.store(true);
    listener_.close();
    send_event(connection, done_event(0, 0, 0));
    return;
  }

  if (cmd == "run" || cmd == "sweep") {
    exec::Request exec_request =
        cmd == "run"
            ? exec::Request::for_scenario(
                  scenario::ScenarioSpec::from_json(request.at("doc")))
            : exec::Request::for_campaign(
                  scenario::CampaignSpec::from_json(request.at("doc")));
    exec_request.threads = options_.threads;
    exec_request.cache = &cache_;
    if (const Json* shard = request.find("shard")) {
      exec_request.shard_index =
          static_cast<std::size_t>(shard->at("index").as_uint());
      exec_request.shard_count =
          static_cast<std::size_t>(shard->at("count").as_uint());
    }
    exec::LocalExecutor executor;
    StreamObserver observer(connection);
    const exec::Outcome outcome = executor.execute(exec_request, &observer);
    scenarios_run_ += outcome.scenarios_run;
    if (!observer.peer_gone())
      send_event(connection,
                 done_event(outcome.scenarios_run, outcome.targets_missed,
                            outcome.scenarios_cached));
    return;
  }

  send_error(connection, "unknown cmd \"" + cmd + "\"");
}

}  // namespace clktune::serve
